/**
 * @file
 * The uncontended-fast-path contract, at three levels:
 *
 *  - sim::InlineVec unit suite (inline storage, heap spill, reuse,
 *    move-only elements — ASan covers the growth paths);
 *  - coro::SimMutex timed reservations (tryLock / tryReserve /
 *    lockedUntil, lazy release materialization, FIFO equivalence with
 *    the eager lock+scheduleUnlock protocol);
 *  - end-to-end identity: every figure-grid cell (ConfigKind x
 *    MacKind) must produce bit-identical KernelResults and memory/BM
 *    fingerprints with the fast paths on and off, forced-contention
 *    cases must fall back without changing a single cycle, and the
 *    WISYNC_NO_FASTPATH env kill switch must reach the configs.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <utility>

#include "core/machine.hh"
#include "coro/primitives.hh"
#include "noc/mesh.hh"
#include "sim/engine.hh"
#include "sim/inline_vec.hh"
#include "workloads/cas_kernels.hh"
#include "workloads/kernel_result.hh"
#include "workloads/tight_loop.hh"

namespace {

using wisync::core::ConfigKind;
using wisync::core::Machine;
using wisync::core::MachineConfig;
using wisync::coro::SimMutex;
using wisync::coro::spawnNow;
using wisync::coro::Task;
using wisync::noc::Mesh;
using wisync::noc::MeshConfig;
using wisync::sim::Cycle;
using wisync::sim::Engine;
using wisync::sim::InlineVec;
using wisync::sim::NodeId;
using wisync::wireless::MacKind;

// ---- InlineVec --------------------------------------------------------

TEST(InlineVec, StaysInlineUpToCapacity)
{
    InlineVec<std::uint32_t, 4> v;
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.capacity(), 4u);
    for (std::uint32_t i = 0; i < 4; ++i)
        v.push_back(i * 3);
    EXPECT_TRUE(v.inlineStorage());
    EXPECT_EQ(v.size(), 4u);
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_EQ(v[i], i * 3);
}

TEST(InlineVec, SpillsToHeapAndKeepsContents)
{
    InlineVec<std::uint32_t, 4> v;
    for (std::uint32_t i = 0; i < 100; ++i)
        v.push_back(i);
    EXPECT_FALSE(v.inlineStorage());
    EXPECT_EQ(v.size(), 100u);
    EXPECT_GE(v.capacity(), 100u);
    for (std::uint32_t i = 0; i < 100; ++i)
        EXPECT_EQ(v[i], i);
    EXPECT_EQ(v.front(), 0u);
    EXPECT_EQ(v.back(), 99u);
}

TEST(InlineVec, ClearKeepsSpilledCapacityForReuse)
{
    InlineVec<std::uint32_t, 2> v;
    for (std::uint32_t i = 0; i < 50; ++i)
        v.push_back(i);
    const auto cap = v.capacity();
    const auto *data = v.data();
    v.clear();
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.capacity(), cap);
    for (std::uint32_t i = 0; i < 50; ++i)
        v.push_back(i + 1);
    EXPECT_EQ(v.data(), data); // same spilled buffer, no realloc
    EXPECT_EQ(v[49], 50u);
}

TEST(InlineVec, MoveStealsHeapBufferAndCopiesInline)
{
    InlineVec<std::uint64_t, 4> big;
    for (std::uint64_t i = 0; i < 32; ++i)
        big.push_back(i);
    const auto *buf = big.data();
    InlineVec<std::uint64_t, 4> stolen(std::move(big));
    EXPECT_EQ(stolen.data(), buf); // heap buffer moved wholesale
    EXPECT_EQ(stolen.size(), 32u);
    EXPECT_TRUE(big.empty());
    EXPECT_TRUE(big.inlineStorage());

    InlineVec<std::uint64_t, 4> small;
    small.push_back(7);
    InlineVec<std::uint64_t, 4> copied(std::move(small));
    EXPECT_TRUE(copied.inlineStorage());
    EXPECT_EQ(copied.size(), 1u);
    EXPECT_EQ(copied[0], 7u);
}

TEST(InlineVec, SupportsMoveOnlyElements)
{
    InlineVec<std::unique_ptr<int>, 2> v;
    for (int i = 0; i < 10; ++i)
        v.push_back(std::make_unique<int>(i));
    EXPECT_EQ(v.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(*v[i], i);
    InlineVec<std::unique_ptr<int>, 2> w(std::move(v));
    EXPECT_EQ(*w[9], 9);
    w.pop_back();
    EXPECT_EQ(w.size(), 9u);
    w.clear();
    EXPECT_TRUE(w.empty());
}

TEST(InlineVec, MoveAssignReplacesContents)
{
    InlineVec<std::uint32_t, 2> a;
    a.push_back(1);
    InlineVec<std::uint32_t, 2> b;
    for (std::uint32_t i = 0; i < 20; ++i)
        b.push_back(i);
    a = std::move(b);
    EXPECT_EQ(a.size(), 20u);
    EXPECT_EQ(a[19], 19u);
}

// ---- SimMutex timed reservations --------------------------------------

TEST(SimMutexReserve, TryLockAndTryReserveBasics)
{
    Engine eng;
    SimMutex m(eng);
    EXPECT_TRUE(m.available());
    EXPECT_TRUE(m.tryLock());
    EXPECT_FALSE(m.tryLock());
    EXPECT_EQ(m.lockedUntil(), 0u); // plain lock, not a reservation
    m.unlock();
    EXPECT_FALSE(m.locked());
}

TEST(SimMutexReserve, UncontestedReservationExpiresWithNoEvents)
{
    Engine eng;
    SimMutex m(eng);
    bool second_ok = false;
    spawnNow(eng, [&]() -> Task<void> {
        EXPECT_TRUE(m.tryReserve(eng.now() + 5));
        EXPECT_EQ(m.lockedUntil(), eng.now() + 5);
        EXPECT_FALSE(m.tryReserve(eng.now() + 9)); // held
        co_await wisync::coro::delay(eng, 10);
        // Expired long ago: a fresh reservation succeeds immediately.
        EXPECT_TRUE(m.tryReserve(eng.now() + 3));
        second_ok = true;
    });
    eng.run();
    EXPECT_TRUE(second_ok);
}

TEST(SimMutexReserve, ContenderWaitsExactlyLikeEagerUnlock)
{
    // A reservation [t, t+7) and an eager lock+scheduleUnlock(7) must
    // grant a queued contender at the same cycle.
    auto run = [](bool reserve) {
        Engine eng;
        SimMutex m(eng);
        Cycle granted = 0;
        spawnNow(eng, [&]() -> Task<void> {
            if (reserve) {
                EXPECT_TRUE(m.tryReserve(eng.now() + 7));
            } else {
                co_await m.lock();
                m.scheduleUnlock(7);
            }
            co_return;
        });
        spawnNow(eng, [&]() -> Task<void> {
            co_await wisync::coro::delay(eng, 3);
            co_await m.lock(); // queues; release materializes at t=7
            granted = eng.now();
            m.unlock();
        });
        eng.run();
        return granted;
    };
    EXPECT_EQ(run(true), run(false));
    EXPECT_EQ(run(true), 7u);
}

TEST(SimMutexReserve, FifoOrderAcrossMixedProtocols)
{
    Engine eng;
    SimMutex m(eng);
    std::vector<int> order;
    spawnNow(eng, [&]() -> Task<void> {
        EXPECT_TRUE(m.tryReserve(eng.now() + 6));
        co_return;
    });
    auto waiter = [&](int id, Cycle start) -> Task<void> {
        co_await wisync::coro::delay(eng, start);
        co_await m.lock();
        order.push_back(id);
        m.unlock();
    };
    spawnNow(eng, waiter, 1, Cycle{2});
    spawnNow(eng, waiter, 2, Cycle{4});
    eng.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 2);
}

// ---- Mesh fast path ---------------------------------------------------

MeshConfig
meshCfg(bool fastpath)
{
    MeshConfig c;
    c.numNodes = 64;
    c.fastpath = fastpath;
    return c;
}

TEST(MeshFastpath, UncontendedLatencyMatchesZeroLoadBothModes)
{
    for (const bool fp : {true, false}) {
        Engine eng;
        Mesh mesh(eng, meshCfg(fp));
        Cycle ctrl = 0, data = 0;
        spawnNow(eng, [&]() -> Task<void> {
            co_await mesh.send(0, 63, 64); // 1 flit
            ctrl = eng.now();
            co_await mesh.send(63, 0, 576); // 5 flits
            data = eng.now();
        });
        eng.run();
        EXPECT_EQ(ctrl, mesh.zeroLoadLatency(0, 63, 64)) << "fp=" << fp;
        EXPECT_EQ(data - ctrl, mesh.zeroLoadLatency(63, 0, 576))
            << "fp=" << fp;
        if (fp) {
            EXPECT_EQ(mesh.stats().fastpathHits.value(), 2u);
            EXPECT_EQ(mesh.stats().fastpathFallbacks.value(), 0u);
        } else {
            EXPECT_EQ(mesh.stats().fastpathHits.value(), 0u);
        }
    }
}

/** Two same-cycle senders crossing one shared link, both directions of
 *  the timing comparison: the later sender must fall back and every
 *  completion cycle must match the fastpath-off run exactly. */
TEST(MeshFastpath, ForcedContentionFallsBackCycleExact)
{
    auto run = [](bool fp, Cycle *a_done, Cycle *b_done,
                  std::uint64_t *fallbacks) {
        Engine eng;
        Mesh mesh(eng, meshCfg(fp));
        // Both routes share the row-0 links eastward: 0->7 and 1->7.
        spawnNow(eng, [&, a_done]() -> Task<void> {
            co_await mesh.send(0, 7, 576);
            *a_done = eng.now();
        });
        spawnNow(eng, [&, b_done]() -> Task<void> {
            co_await mesh.send(1, 7, 576);
            *b_done = eng.now();
        });
        eng.run();
        *fallbacks = mesh.stats().fastpathFallbacks.value();
    };
    Cycle a_on = 0, b_on = 0, a_off = 0, b_off = 0;
    std::uint64_t fb_on = 0, fb_off = 0;
    run(true, &a_on, &b_on, &fb_on);
    run(false, &a_off, &b_off, &fb_off);
    EXPECT_EQ(a_on, a_off);
    EXPECT_EQ(b_on, b_off);
    EXPECT_GE(fb_on, 1u); // the blocked head converted to the wormhole
    EXPECT_EQ(fb_off, 0u);
}

/** hopCycles == 0 makes the wormhole path lock a whole route inside
 *  one event (inline delay(0) awaiters); the step chain cannot
 *  reproduce that grant order, so send() must keep such configs on
 *  the wormhole path even with the fast path enabled. */
TEST(MeshFastpath, ZeroHopLatencyStaysCycleIdentical)
{
    auto run = [](bool fp) {
        Engine eng;
        MeshConfig c = meshCfg(fp);
        c.hopCycles = 0;
        Mesh mesh(eng, c);
        Cycle a = 0, b = 0;
        spawnNow(eng, [&]() -> Task<void> {
            co_await mesh.send(0, 3, 1024);
            a = eng.now();
        });
        spawnNow(eng, [&]() -> Task<void> {
            co_await mesh.send(1, 2, 128);
            b = eng.now();
        });
        eng.run();
        return std::pair{a, b};
    };
    EXPECT_EQ(run(true), run(false));
}

/** Saturating random traffic: heavy link contention, mid-route
 *  conversions, reservations expiring under later traffic — the
 *  completion time of every message must match the wormhole run. */
TEST(MeshFastpath, RandomStormIsCycleIdenticalToWormhole)
{
    auto run = [](bool fp) {
        Engine eng;
        Mesh mesh(eng, meshCfg(fp));
        std::uint64_t checksum = 0;
        wisync::sim::Rng rng(0xF00D);
        for (int t = 0; t < 48; ++t) {
            const NodeId src = static_cast<NodeId>(rng.below(64));
            const NodeId dst = static_cast<NodeId>(rng.below(64));
            const Cycle start = rng.below(40);
            const std::uint32_t bits = rng.chance(0.5) ? 64 : 576;
            wisync::coro::spawnFn(
                eng, start,
                [&eng, &mesh, &checksum, src, dst, bits,
                 t]() -> Task<void> {
                    co_await mesh.send(src, dst, bits);
                    checksum ^= (eng.now() * 1315423911u) + t;
                });
        }
        eng.run();
        return checksum;
    };
    EXPECT_EQ(run(true), run(false));
}

// ---- Full figure-grid identity ---------------------------------------

struct GridPoint
{
    wisync::workloads::KernelResult result;
    std::uint64_t memFp = 0;
    std::uint64_t bmFp = 0;
    std::uint64_t cycles = 0;
};

GridPoint
runPoint(ConfigKind kind, MacKind mac, bool fastpath, bool cas)
{
    auto cfg = MachineConfig::make(kind, 16);
    cfg.wireless.macKind = mac;
    cfg.setFastpath(fastpath);
    Machine m(cfg);
    GridPoint p;
    if (cas) {
        wisync::workloads::CasKernelParams params;
        params.duration = 30'000;
        p.result = wisync::workloads::runCasKernelOn(
            wisync::workloads::CasKernel::Lifo, m, params);
    } else {
        wisync::workloads::TightLoopParams params;
        params.iterations = 6;
        p.result = wisync::workloads::runTightLoopOn(m, params);
    }
    p.memFp = m.memory().fingerprint();
    p.bmFp = m.bm() ? m.bm()->storeArray().fingerprint() : 0;
    p.cycles = m.engine().now();
    return p;
}

class MeshFastpathGrid
    : public ::testing::TestWithParam<std::tuple<ConfigKind, MacKind>>
{};

INSTANTIATE_TEST_SUITE_P(
    Cells, MeshFastpathGrid,
    ::testing::Combine(::testing::Values(ConfigKind::Baseline,
                                         ConfigKind::BaselinePlus,
                                         ConfigKind::WiSyncNoT,
                                         ConfigKind::WiSync),
                       ::testing::Values(MacKind::Brs, MacKind::Token,
                                         MacKind::FuzzyToken,
                                         MacKind::Adaptive)));

TEST_P(MeshFastpathGrid, OnVsOffBitIdenticalFingerprints)
{
    const auto [kind, mac] = GetParam();
    for (const bool cas : {false, true}) {
        const auto on = runPoint(kind, mac, true, cas);
        const auto off = runPoint(kind, mac, false, cas);
        SCOPED_TRACE(cas ? "cas-lifo" : "tightloop");
        EXPECT_TRUE(wisync::workloads::bitIdentical(on.result,
                                                    off.result));
        EXPECT_EQ(on.cycles, off.cycles);
        EXPECT_EQ(on.memFp, off.memFp);
        EXPECT_EQ(on.bmFp, off.bmFp);
        // And the fast path must actually have carried traffic when on.
        EXPECT_GT(on.result.fastpathHits, 0u);
        EXPECT_EQ(off.result.fastpathHits, 0u);
    }
}

TEST(MeshFastpath, EnvKillSwitchReachesConfigs)
{
    setenv("WISYNC_NO_FASTPATH", "1", 1);
    const auto off = MachineConfig::make(ConfigKind::WiSync, 16);
    unsetenv("WISYNC_NO_FASTPATH");
    const auto on = MachineConfig::make(ConfigKind::WiSync, 16);
    EXPECT_FALSE(off.mesh.fastpath);
    EXPECT_FALSE(off.mem.fastpath);
    EXPECT_FALSE(off.wireless.fastpath);
    EXPECT_TRUE(on.mesh.fastpath);
    EXPECT_TRUE(on.mem.fastpath);
    EXPECT_TRUE(on.wireless.fastpath);
}

} // namespace
