/**
 * @file
 * Workload tests: functional correctness against serial references
 * and cross-configuration performance sanity (who should win, wins).
 */

#include <gtest/gtest.h>

#include <vector>

#include "workloads/apps.hh"
#include "workloads/cas_kernels.hh"
#include "workloads/livermore.hh"
#include "workloads/tight_loop.hh"

namespace {

using wisync::core::ConfigKind;
using wisync::workloads::appByName;
using wisync::workloads::appSuite;
using wisync::workloads::CasKernel;
using wisync::workloads::CasKernelParams;
using wisync::workloads::iccgReference;
using wisync::workloads::innerProductReference;
using wisync::workloads::linearRecurrenceReference;
using wisync::workloads::LivermoreLoop;
using wisync::workloads::LivermoreParams;
using wisync::workloads::livermoreInput;
using wisync::workloads::runCasKernel;
using wisync::workloads::runLivermore;
using wisync::workloads::runLivermoreVerified;
using wisync::workloads::runTightLoop;
using wisync::workloads::TightLoopParams;

TEST(TightLoop, CompletesOnAllConfigs)
{
    TightLoopParams params;
    params.iterations = 5;
    for (const auto kind :
         {ConfigKind::Baseline, ConfigKind::BaselinePlus,
          ConfigKind::WiSyncNoT, ConfigKind::WiSync}) {
        const auto r = runTightLoop(kind, 16, params);
        EXPECT_TRUE(r.completed);
        EXPECT_GT(r.cycles, 0u);
    }
}

TEST(TightLoop, WiSyncBeatsBaselineAndBaselinePlus)
{
    TightLoopParams params;
    params.iterations = 10;
    const auto base = runTightLoop(ConfigKind::Baseline, 32, params);
    const auto plus = runTightLoop(ConfigKind::BaselinePlus, 32, params);
    const auto not_ = runTightLoop(ConfigKind::WiSyncNoT, 32, params);
    const auto full = runTightLoop(ConfigKind::WiSync, 32, params);
    // Paper Fig. 7 ordering: WiSync < WiSyncNoT < Baseline+ < Baseline.
    EXPECT_LT(full.cycles, not_.cycles);
    EXPECT_LT(not_.cycles, plus.cycles);
    EXPECT_LT(plus.cycles, base.cycles);
    // And the gap to Baseline is large (orders of magnitude at scale).
    EXPECT_LT(full.cycles * 5, base.cycles);
}

TEST(TightLoop, WiSyncIterationCostIsTensOfCycles)
{
    TightLoopParams params;
    params.iterations = 20;
    const auto r = runTightLoop(ConfigKind::WiSync, 64, params);
    // ~50 loads (2 cyc) + adds + tone barrier: well under 1000
    // cycles/iteration (Fig. 7 shows ~2-3x10^2 at 64 cores).
    EXPECT_LT(r.cycles / r.operations, 1000u);
    EXPECT_GT(r.cycles / r.operations, 50u);
}

TEST(Livermore, InputsAreDeterministic)
{
    EXPECT_EQ(livermoreInput(0, 5), livermoreInput(0, 5));
    EXPECT_NE(livermoreInput(0, 5), livermoreInput(1, 5));
}

class LivermoreVerify
    : public ::testing::TestWithParam<std::tuple<ConfigKind, int>>
{};

INSTANTIATE_TEST_SUITE_P(
    Sweep, LivermoreVerify,
    ::testing::Combine(::testing::Values(ConfigKind::Baseline,
                                         ConfigKind::WiSync),
                       ::testing::Values(16, 64)));

TEST_P(LivermoreVerify, IccgMatchesSerialReference)
{
    const auto [kind, n] = GetParam();
    LivermoreParams params;
    params.n = static_cast<std::uint32_t>(n);
    params.passes = 1;
    const auto out =
        runLivermoreVerified(LivermoreLoop::Iccg, kind, 8, params);
    ASSERT_TRUE(out.result.completed);

    std::vector<std::uint64_t> x, v;
    for (std::uint32_t i = 0;
         i < wisync::workloads::iccgArraySize(params.n); ++i) {
        x.push_back(livermoreInput(0, i));
        v.push_back(livermoreInput(1, i));
    }
    const auto expect = iccgReference(x, v, params.n);
    ASSERT_EQ(out.values.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
        ASSERT_EQ(out.values[i], expect[i]) << "x[" << i << "]";
}

TEST_P(LivermoreVerify, InnerProductMatchesSerialReference)
{
    const auto [kind, n] = GetParam();
    LivermoreParams params;
    params.n = static_cast<std::uint32_t>(n);
    params.passes = 2;
    const auto out = runLivermoreVerified(LivermoreLoop::InnerProduct,
                                          kind, 8, params);
    ASSERT_TRUE(out.result.completed);

    std::vector<std::uint64_t> z, x;
    for (std::uint32_t i = 0; i < params.n; ++i) {
        z.push_back(livermoreInput(0, i));
        x.push_back(livermoreInput(1, i));
    }
    ASSERT_EQ(out.values.size(), 1u);
    EXPECT_EQ(out.values[0], innerProductReference(z, x));
}

TEST_P(LivermoreVerify, LinearRecurrenceMatchesSerialReference)
{
    const auto [kind, n] = GetParam();
    LivermoreParams params;
    params.n = static_cast<std::uint32_t>(n);
    params.passes = 1;
    const auto out = runLivermoreVerified(LivermoreLoop::LinearRecurrence,
                                          kind, 8, params);
    ASSERT_TRUE(out.result.completed);

    std::vector<std::uint64_t> w, b;
    for (std::uint32_t i = 0; i < params.n; ++i)
        w.push_back(livermoreInput(0, i));
    b.resize(static_cast<std::size_t>(params.n) * params.n);
    for (std::uint32_t i = 0; i < params.n; ++i)
        for (std::uint32_t k = 0; k < params.n; ++k)
            b[static_cast<std::size_t>(i) * params.n + k] =
                livermoreInput(2, i * params.n + k);
    const auto expect = linearRecurrenceReference(w, b, params.n);
    ASSERT_EQ(out.values.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
        ASSERT_EQ(out.values[i], expect[i]) << "w[" << i << "]";
}

TEST(Livermore, WiSyncWinsAtSmallVectors)
{
    // Fig. 8: gains are highest with small vector lengths where the
    // barrier dominates.
    LivermoreParams params;
    params.n = 64;
    const auto base =
        runLivermore(LivermoreLoop::Iccg, ConfigKind::Baseline, 16,
                     params);
    const auto full =
        runLivermore(LivermoreLoop::Iccg, ConfigKind::WiSync, 16, params);
    EXPECT_LT(full.cycles * 2, base.cycles);
}

TEST(CasKernels, AllKernelsProduceSuccessesOnBothConfigs)
{
    CasKernelParams params;
    params.criticalSectionInstr = 256;
    params.duration = 50'000;
    for (const auto kernel :
         {CasKernel::Add, CasKernel::Lifo, CasKernel::Fifo}) {
        for (const auto kind : {ConfigKind::Baseline, ConfigKind::WiSync}) {
            const auto r = runCasKernel(kernel, kind, 16, params);
            EXPECT_TRUE(r.completed);
            EXPECT_GT(r.operations, 0u)
                << "kernel " << static_cast<int>(kernel) << " kind "
                << static_cast<int>(kind);
        }
    }
}

TEST(CasKernels, WiSyncThroughputHigherUnderContention)
{
    // Fig. 9: with small critical sections, WiSync sustains much
    // higher CAS throughput than Baseline.
    CasKernelParams params;
    params.criticalSectionInstr = 64;
    params.duration = 100'000;
    const auto base =
        runCasKernel(CasKernel::Add, ConfigKind::Baseline, 32, params);
    const auto wis =
        runCasKernel(CasKernel::Add, ConfigKind::WiSync, 32, params);
    EXPECT_GT(wis.operations, base.operations * 2);
}

TEST(CasKernels, ConfigsConvergeWithHugeCriticalSections)
{
    // Fig. 9: at 8-16K+ instructions between CASes, there is little
    // or no difference between the architectures.
    CasKernelParams params;
    params.criticalSectionInstr = 16384;
    params.duration = 400'000;
    const auto base =
        runCasKernel(CasKernel::Add, ConfigKind::Baseline, 16, params);
    const auto wis =
        runCasKernel(CasKernel::Add, ConfigKind::WiSync, 16, params);
    ASSERT_GT(base.operations, 0u);
    const double ratio = static_cast<double>(wis.operations) /
                         static_cast<double>(base.operations);
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.6);
}

TEST(Apps, SuiteHas26Applications)
{
    EXPECT_EQ(appSuite().size(), 26u);
    int parsec = 0, splash = 0;
    for (const auto &app : appSuite()) {
        if (app.suite == "PARSEC")
            ++parsec;
        else if (app.suite == "SPLASH-2")
            ++splash;
    }
    EXPECT_EQ(parsec, 12);
    EXPECT_EQ(splash, 14);
}

TEST(Apps, LookupByNameWorks)
{
    EXPECT_EQ(appByName("streamcluster").name, "streamcluster");
    EXPECT_GT(appByName("dedup").numLocks, 2048u)
        << "dedup must overflow the 16KB BM";
    EXPECT_GT(appByName("fluidanimate").numLocks, 2048u);
}

TEST(Apps, BarrierHeavyAppSpeedsUpOnWiSync)
{
    const auto &app = appByName("streamcluster");
    const auto base = runApp(app, ConfigKind::Baseline, 16);
    const auto wis = runApp(app, ConfigKind::WiSync, 16);
    ASSERT_TRUE(base.completed);
    ASSERT_TRUE(wis.completed);
    EXPECT_LT(wis.cycles, base.cycles);
}

TEST(Apps, SyncLightAppIsUnaffected)
{
    const auto &app = appByName("blackscholes");
    const auto base = runApp(app, ConfigKind::Baseline, 16);
    const auto wis = runApp(app, ConfigKind::WiSync, 16);
    const double speedup = static_cast<double>(base.cycles) /
                           static_cast<double>(wis.cycles);
    EXPECT_GT(speedup, 0.95);
    EXPECT_LT(speedup, 1.1);
}

TEST(Apps, OverflowingLockArrayStillRuns)
{
    // dedup: 3000 locks > 2048 BM words -> mixed BM/memory locks.
    const auto &app = appByName("dedup");
    const auto wis = runApp(app, ConfigKind::WiSync, 16);
    EXPECT_TRUE(wis.completed);
}

} // namespace
