/**
 * @file
 * Unit, integration, and property tests for the MOESI hierarchy.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "coro/primitives.hh"
#include "mem/mem_system.hh"
#include "noc/mesh.hh"
#include "sim/engine.hh"

namespace {

using wisync::coro::spawnNow;
using wisync::coro::Task;
using wisync::mem::CohState;
using wisync::mem::MemConfig;
using wisync::mem::Memory;
using wisync::mem::MemSystem;
using wisync::noc::Mesh;
using wisync::noc::MeshConfig;
using wisync::sim::Addr;
using wisync::sim::Cycle;
using wisync::sim::Engine;
using wisync::sim::NodeId;

/** A small chip: engine + mesh + memory + hierarchy. */
struct Chip
{
    explicit Chip(std::uint32_t nodes, bool tree = false)
        : mesh(engine, meshCfg(nodes, tree)),
          mem(engine, mesh, memory, nodes, MemConfig{})
    {}

    static MeshConfig
    meshCfg(std::uint32_t nodes, bool tree)
    {
        MeshConfig c;
        c.numNodes = nodes;
        c.treeMulticast = tree;
        return c;
    }

    Engine engine;
    Mesh mesh;
    Memory memory;
    MemSystem mem;
};

TEST(MemSystem, ColdLoadGoesToDram)
{
    Chip chip(16);
    Cycle done = 0;
    std::uint64_t val = 1;
    spawnNow(chip.engine, [&]() -> Task<void> {
        val = co_await chip.mem.load(0, 0x10000);
        done = chip.engine.now();
    });
    chip.engine.run();
    EXPECT_EQ(val, 0u);
    // Must include the 110-cycle DRAM round trip.
    EXPECT_GT(done, 110u);
    EXPECT_EQ(chip.mem.stats().dramFetches.value(), 1u);
    EXPECT_EQ(chip.mem.stats().l1Misses.value(), 1u);
}

TEST(MemSystem, SecondLoadHitsL1AtConfiguredLatency)
{
    Chip chip(16);
    Cycle first = 0, second = 0;
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.mem.load(0, 0x10000);
        first = chip.engine.now();
        co_await chip.mem.load(0, 0x10000);
        second = chip.engine.now();
    });
    chip.engine.run();
    EXPECT_EQ(second - first, 2u); // L1 RT
    EXPECT_EQ(chip.mem.stats().l1Hits.value(), 1u);
}

TEST(MemSystem, SoleReaderGetsExclusive)
{
    Chip chip(16);
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.mem.load(3, 0x20000);
    });
    chip.engine.run();
    EXPECT_EQ(chip.mem.l1State(3, 0x20000), CohState::Exclusive);
}

TEST(MemSystem, ExclusiveUpgradesToModifiedSilently)
{
    Chip chip(16);
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.mem.load(3, 0x20000);
        const auto misses = chip.mem.stats().l1Misses.value();
        co_await chip.mem.store(3, 0x20000, 42);
        // The store must not be a miss or an upgrade transaction.
        EXPECT_EQ(chip.mem.stats().l1Misses.value(), misses);
        EXPECT_EQ(chip.mem.stats().upgrades.value(), 0u);
    });
    chip.engine.run();
    EXPECT_EQ(chip.mem.l1State(3, 0x20000), CohState::Modified);
    EXPECT_EQ(chip.memory.read64(0x20000), 42u);
}

TEST(MemSystem, ReadAfterRemoteWriteSuppliesDirtyData)
{
    Chip chip(16);
    std::uint64_t seen = 0;
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.mem.store(0, 0x30000, 1234);
        seen = co_await chip.mem.load(5, 0x30000);
    });
    chip.engine.run();
    EXPECT_EQ(seen, 1234u);
    // MOESI: writer keeps the dirty line in Owned; reader is Shared.
    EXPECT_EQ(chip.mem.l1State(0, 0x30000), CohState::Owned);
    EXPECT_EQ(chip.mem.l1State(5, 0x30000), CohState::Shared);
}

TEST(MemSystem, WriteInvalidatesAllSharers)
{
    Chip chip(16);
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.mem.load(0, 0x40000);
        co_await chip.mem.load(1, 0x40000);
        co_await chip.mem.load(2, 0x40000);
        co_await chip.mem.store(3, 0x40000, 9);
    });
    chip.engine.run();
    EXPECT_EQ(chip.mem.l1State(0, 0x40000), CohState::Invalid);
    EXPECT_EQ(chip.mem.l1State(1, 0x40000), CohState::Invalid);
    EXPECT_EQ(chip.mem.l1State(2, 0x40000), CohState::Invalid);
    EXPECT_EQ(chip.mem.l1State(3, 0x40000), CohState::Modified);
    EXPECT_GE(chip.mem.stats().invalidations.value(), 3u);
}

TEST(MemSystem, UpgradeFromSharedCountsAsUpgrade)
{
    Chip chip(16);
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.mem.load(0, 0x50000);
        co_await chip.mem.load(1, 0x50000); // both Shared now
        co_await chip.mem.store(0, 0x50000, 5);
    });
    chip.engine.run();
    EXPECT_EQ(chip.mem.stats().upgrades.value(), 1u);
    EXPECT_EQ(chip.mem.l1State(0, 0x50000), CohState::Modified);
    EXPECT_EQ(chip.mem.l1State(1, 0x50000), CohState::Invalid);
}

TEST(MemSystem, CasSemantics)
{
    Chip chip(16);
    spawnNow(chip.engine, [&]() -> Task<void> {
        auto r1 = co_await chip.mem.cas(0, 0x60000, 0, 10);
        EXPECT_TRUE(r1.success);
        EXPECT_EQ(r1.oldValue, 0u);
        auto r2 = co_await chip.mem.cas(1, 0x60000, 0, 20);
        EXPECT_FALSE(r2.success);
        EXPECT_EQ(r2.oldValue, 10u);
        auto r3 = co_await chip.mem.cas(1, 0x60000, 10, 20);
        EXPECT_TRUE(r3.success);
    });
    chip.engine.run();
    EXPECT_EQ(chip.memory.read64(0x60000), 20u);
}

TEST(MemSystem, FetchAddReturnsOldAndAccumulates)
{
    Chip chip(16);
    spawnNow(chip.engine, [&]() -> Task<void> {
        EXPECT_EQ(co_await chip.mem.fetchAdd(0, 0x70000, 5), 0u);
        EXPECT_EQ(co_await chip.mem.fetchAdd(1, 0x70000, 3), 5u);
        EXPECT_EQ(co_await chip.mem.fetchAdd(0, 0x70000, 1), 8u);
    });
    chip.engine.run();
    EXPECT_EQ(chip.memory.read64(0x70000), 9u);
}

TEST(MemSystem, TestAndSetReturnsPrevious)
{
    Chip chip(16);
    spawnNow(chip.engine, [&]() -> Task<void> {
        EXPECT_EQ(co_await chip.mem.testAndSet(0, 0x71000), 0u);
        EXPECT_EQ(co_await chip.mem.testAndSet(1, 0x71000), 1u);
    });
    chip.engine.run();
    EXPECT_EQ(chip.memory.read64(0x71000), 1u);
}

/** Property: concurrent fetchAdd from all nodes never loses updates. */
class FetchAddSweep : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(FetchAddSweep, NoLostUpdates)
{
    const std::uint32_t nodes = GetParam();
    Chip chip(nodes);
    constexpr int kIters = 20;
    const Addr counter = 0x80000;

    auto worker = [&](NodeId n) -> Task<void> {
        for (int i = 0; i < kIters; ++i)
            co_await chip.mem.fetchAdd(n, counter, 1);
    };
    for (NodeId n = 0; n < nodes; ++n)
        spawnNow(chip.engine, worker, n);
    ASSERT_TRUE(chip.engine.run(50'000'000));
    EXPECT_EQ(chip.memory.read64(counter),
              static_cast<std::uint64_t>(nodes) * kIters);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FetchAddSweep,
                         ::testing::Values(2u, 4u, 16u, 64u));

/** Property: concurrent CAS — exactly one winner per round. */
TEST(MemSystem, ConcurrentCasSingleWinnerPerRound)
{
    constexpr std::uint32_t kNodes = 16;
    Chip chip(kNodes);
    const Addr slot = 0x90000;
    int wins = 0;

    auto contender = [&](NodeId n) -> Task<void> {
        const auto r = co_await chip.mem.cas(n, slot, 0, n + 1);
        if (r.success)
            ++wins;
    };
    for (NodeId n = 0; n < kNodes; ++n)
        spawnNow(chip.engine, contender, n);
    chip.engine.run();
    EXPECT_EQ(wins, 1);
    const auto v = chip.memory.read64(slot);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, kNodes);
}

TEST(MemSystem, SpinUntilWakesOnWrite)
{
    Chip chip(16);
    const Addr flag = 0xA0000;
    Cycle woke_at = 0;
    std::uint64_t seen = 0;

    spawnNow(chip.engine, [&]() -> Task<void> {
        seen = co_await chip.mem.spinUntil(1, flag,
                                           [](std::uint64_t v) {
                                               return v != 0;
                                           });
        woke_at = chip.engine.now();
    });
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await wisync::coro::delay(chip.engine, 5000);
        co_await chip.mem.store(0, flag, 77);
    });
    chip.engine.run();
    EXPECT_EQ(seen, 77u);
    EXPECT_GT(woke_at, 5000u);
    // Event-driven spin: a handful of loads, not thousands of polls.
    EXPECT_LT(chip.mem.stats().loads.value(), 10u);
}

TEST(MemSystem, SpinUntilImmediateWhenPredicateHolds)
{
    Chip chip(16);
    const Addr flag = 0xA1000;
    std::uint64_t seen = 1;
    spawnNow(chip.engine, [&]() -> Task<void> {
        seen = co_await chip.mem.spinUntil(2, flag,
                                           [](std::uint64_t v) {
                                               return v == 0;
                                           });
    });
    chip.engine.run();
    EXPECT_EQ(seen, 0u);
}

TEST(MemSystem, CapacityEvictionsWriteBackDirtyLines)
{
    Chip chip(16);
    // L1: 32KB 2-way, 64B lines -> 256 sets. Write 3 dirty lines that
    // map to the same set (stride = 256 * 64 = 16KB).
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.mem.store(0, 0x100000, 1);
        co_await chip.mem.store(0, 0x104000, 2);
        co_await chip.mem.store(0, 0x108000, 3);
    });
    chip.engine.run();
    EXPECT_EQ(chip.mem.stats().writebacks.value(), 1u);
    // All values remain correct regardless of timing.
    EXPECT_EQ(chip.memory.read64(0x100000), 1u);
    EXPECT_EQ(chip.memory.read64(0x104000), 2u);
    EXPECT_EQ(chip.memory.read64(0x108000), 3u);
}

TEST(MemSystem, DeterministicAcrossRuns)
{
    auto run = [] {
        Chip chip(16);
        auto worker = [&chip](NodeId n) -> Task<void> {
            for (int i = 0; i < 10; ++i) {
                co_await chip.mem.fetchAdd(n, 0xB0000, 1);
                co_await chip.mem.load(n, 0xB0000 + 64 * (n % 4));
            }
        };
        for (NodeId n = 0; n < 16; ++n)
            spawnNow(chip.engine, worker, n);
        chip.engine.run();
        return chip.engine.now();
    };
    EXPECT_EQ(run(), run());
}

TEST(MemSystem, TreeMulticastReducesInvalidationTime)
{
    // Many sharers, then one writer: Baseline+ (tree) should finish
    // the invalidation no later than Baseline (serial unicasts).
    auto run = [](bool tree) {
        Chip chip(64, tree);
        Cycle store_done = 0;
        auto readers = [&chip]() -> Task<void> {
            for (NodeId n = 0; n < 64; ++n)
                co_await chip.mem.load(n, 0xC0000);
        };
        auto writer = [&chip, &store_done]() -> Task<void> {
            co_await chip.mem.store(1, 0xC0000, 1);
            store_done = chip.engine.now();
        };
        Cycle readers_done = 0;
        spawnNow(chip.engine, [&]() -> Task<void> {
            co_await readers();
            readers_done = chip.engine.now();
            co_await writer();
        });
        chip.engine.run();
        return store_done - readers_done;
    };
    const Cycle serial = run(false);
    const Cycle treed = run(true);
    EXPECT_LE(treed, serial);
}

TEST(MemSystem, MissLatencyIsTracked)
{
    Chip chip(16);
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.mem.load(0, 0xD0000);
        co_await chip.mem.load(1, 0xD0000);
    });
    chip.engine.run();
    EXPECT_EQ(chip.mem.stats().missLatency.count(), 2u);
    EXPECT_GT(chip.mem.stats().missLatency.mean(), 0.0);
}

TEST(MemSystem, HomeBankIsAddressInterleaved)
{
    Chip chip(16);
    EXPECT_EQ(chip.mem.homeOf(0), 0u);
    EXPECT_EQ(chip.mem.homeOf(64), 1u);
    EXPECT_EQ(chip.mem.homeOf(64 * 15), 15u);
    EXPECT_EQ(chip.mem.homeOf(64 * 16), 0u);
}

} // namespace
