#!/usr/bin/env python3
"""Kill/restart durability test for wisync_sweepd --serve --cache-file.

Scenario:
  1. Run the request once in one-shot mode: the cold reference.
  2. Start a daemon with a cache file, send the request, and SIGKILL
     the process as soon as the first result record hits the disk --
     usually mid-batch, always mid-lifetime.
  3. Restart the daemon on the same cache file. The salvage load must
     recover at least one record (kill -9 loses at most the record
     being written), the rerun must report those records as cache
     hits, and every per-point result must be bit-identical to the
     cold reference (the JSON response carries exact fingerprints and
     canonically formatted result fields, so dict equality is bit
     equality).
  4. Closing stdin must end the serve loop with exit code 0.

Usage: daemon_restart_test.py /path/to/wisync_sweepd
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time


def fail(message):
    print("FAIL: " + message, file=sys.stderr)
    sys.exit(1)


def request_line(num_points):
    points = []
    for seed in range(1, num_points + 1):
        points.append({
            "config": {"kind": "WiSync", "cores": 4, "seed": seed},
            "workload": {"kind": "tightloop", "iterations": 2},
        })
    return json.dumps({"points": points}, separators=(",", ":"))


def results_by_index(response):
    results = {}
    for entry in response["results"]:
        if not entry["ok"]:
            fail("point %d errored: %s" % (entry["index"],
                                           entry.get("error")))
        results[entry["index"]] = (entry["fingerprint"], entry["result"])
    return results


def main():
    if len(sys.argv) != 2:
        fail("usage: daemon_restart_test.py /path/to/wisync_sweepd")
    sweepd = sys.argv[1]
    num_points = 6
    line = request_line(num_points)

    with tempfile.TemporaryDirectory(prefix="wisync_restart_") as tmp:
        cache = os.path.join(tmp, "cache.bin")
        req = os.path.join(tmp, "request.json")
        ref = os.path.join(tmp, "reference.json")
        with open(req, "w") as f:
            f.write(line + "\n")

        # 1. Cold one-shot reference.
        proc = subprocess.run(
            [sweepd, "--threads", "1", "--input", req, "--output", ref],
            capture_output=True, timeout=120)
        if proc.returncode != 0:
            fail("reference run failed: " + proc.stderr.decode())
        with open(ref) as f:
            reference = results_by_index(json.load(f))
        if len(reference) != num_points:
            fail("reference answered %d/%d points" %
                 (len(reference), num_points))

        # 2. Daemon, killed as soon as a record lands on disk.
        serve_cmd = [sweepd, "--serve", "--cache-file", cache,
                     "--threads", "1"]
        daemon = subprocess.Popen(
            serve_cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL)
        daemon.stdin.write((line + "\n").encode())
        daemon.stdin.flush()
        header_bytes = 16
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            try:
                if os.path.getsize(cache) > header_bytes:
                    break
            except OSError:
                pass
            time.sleep(0.01)
        else:
            daemon.kill()
            fail("no record reached the cache file within 60s")
        daemon.send_signal(signal.SIGKILL)
        daemon.wait(timeout=60)

        # 3. Restart on the same cache file, rerun, compare.
        daemon = subprocess.Popen(
            serve_cmd, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL)
        try:
            daemon.stdin.write((line + "\n").encode())
            daemon.stdin.flush()
            raw = daemon.stdout.readline()
            if not raw:
                fail("restarted daemon closed stdout without answering")
            response = json.loads(raw)
            if "error" in response and "results" not in response:
                fail("restarted daemon errored: %s" % response["error"])
            hits = response["stats"]["cacheHits"]
            if hits < 1:
                fail("restart answered 0 cache hits; the salvaged "
                     "records were lost")
            warm = results_by_index(response)
            if warm != reference:
                fail("warm restart results diverged from the cold "
                     "reference")
        finally:
            # 4. EOF on stdin ends the loop gracefully.
            daemon.stdin.close()
            if daemon.wait(timeout=60) != 0:
                fail("daemon exit code %d after stdin EOF" %
                     daemon.returncode)

        print("DAEMON RESTART TEST PASS (%d points, %d warm hits)" %
              (num_points, hits))


if __name__ == "__main__":
    main()
