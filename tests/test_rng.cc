/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "sim/rng.hh"

namespace {

using wisync::sim::Rng;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng r(0);
    std::set<std::uint64_t> vals;
    for (int i = 0; i < 64; ++i)
        vals.insert(r.next());
    EXPECT_GT(vals.size(), 60u);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
        for (int i = 0; i < 500; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowZeroBoundReturnsZero)
{
    Rng r(7);
    EXPECT_EQ(r.below(0), 0u);
}

TEST(Rng, BetweenIsInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.between(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean of U(0,1) is 0.5; loose statistical bound.
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng parent(123);
    Rng child = parent.fork();
    // The child must not replay the parent's stream.
    Rng parent2(123);
    parent2.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (child.next() == parent.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng r(77);
    constexpr int buckets = 8;
    int counts[buckets] = {};
    constexpr int draws = 80000;
    for (int i = 0; i < draws; ++i)
        ++counts[r.below(buckets)];
    for (int b = 0; b < buckets; ++b)
        EXPECT_NEAR(counts[b], draws / buckets, draws / buckets * 0.1);
}

} // namespace
