/**
 * @file
 * Unit tests for coroutine timing/synchronization primitives.
 */

#include <gtest/gtest.h>

#include <vector>

#include "coro/primitives.hh"
#include "coro/task.hh"
#include "sim/engine.hh"

namespace {

using wisync::coro::CondVar;
using wisync::coro::delay;
using wisync::coro::Future;
using wisync::coro::Resource;
using wisync::coro::scopedLock;
using wisync::coro::SimMutex;
using wisync::coro::spawnNow;
using wisync::coro::Task;
using wisync::sim::Cycle;
using wisync::sim::Engine;

TEST(SpawnDetached, PendingSpawnReleasedOnEngineTeardown)
{
    // An engine destroyed before the spawn cycle must release the
    // wrapper frame and the task moved into it (the spawn event owns
    // them until fired). The assertion body is trivial; the real check
    // is LeakSanitizer in the debug-asan-ubsan CI job.
    bool ran = false;
    {
        Engine eng;
        auto body = [&ran](Engine &e) -> Task<void> {
            co_await delay(e, 5);
            ran = true;
        };
        wisync::coro::spawnFn(eng, 10, body, std::ref(eng));
        EXPECT_EQ(eng.pendingEvents(), 1u);
        // Never run: teardown with the launcher still queued.
    }
    EXPECT_FALSE(ran);
}

TEST(SimMutex, SerializesCriticalSections)
{
    Engine eng;
    SimMutex mtx(eng);
    std::vector<std::pair<int, Cycle>> entries;

    auto worker = [&](int id) -> Task<void> {
        co_await mtx.lock();
        entries.emplace_back(id, eng.now());
        co_await delay(eng, 10);
        mtx.unlock();
    };
    for (int i = 0; i < 4; ++i)
        spawnNow(eng, worker, i);
    eng.run();

    ASSERT_EQ(entries.size(), 4u);
    // FIFO admission, each 10 cycles after the previous.
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(entries[i].first, i);
        EXPECT_EQ(entries[i].second, static_cast<Cycle>(10 * i));
    }
}

TEST(SimMutex, ScopedLockReleases)
{
    Engine eng;
    SimMutex mtx(eng);
    int in_section = 0, max_in_section = 0;

    auto worker = [&]() -> Task<void> {
        auto guard = co_await scopedLock(mtx);
        ++in_section;
        max_in_section = std::max(max_in_section, in_section);
        co_await delay(eng, 5);
        --in_section;
    };
    for (int i = 0; i < 8; ++i)
        spawnNow(eng, worker);
    eng.run();
    EXPECT_EQ(max_in_section, 1);
    EXPECT_FALSE(mtx.locked());
}

TEST(Resource, CapacityBoundsConcurrency)
{
    Engine eng;
    Resource res(eng, 3);
    int active = 0, peak = 0;

    auto worker = [&]() -> Task<void> {
        co_await res.acquire();
        ++active;
        peak = std::max(peak, active);
        co_await delay(eng, 7);
        --active;
        res.release();
    };
    for (int i = 0; i < 10; ++i)
        spawnNow(eng, worker);
    eng.run();
    EXPECT_EQ(peak, 3);
    EXPECT_EQ(active, 0);
    EXPECT_EQ(res.available(), 3u);
}

TEST(CondVar, NotifyWakesAllWaiters)
{
    Engine eng;
    CondVar cv(eng);
    int woken = 0;

    auto waiter = [&]() -> Task<void> {
        co_await cv.wait();
        ++woken;
    };
    for (int i = 0; i < 5; ++i)
        spawnNow(eng, waiter);
    spawnNow(eng, [&]() -> Task<void> {
        co_await delay(eng, 50);
        cv.notifyAll();
    });
    eng.run();
    EXPECT_EQ(woken, 5);
    EXPECT_EQ(eng.now(), 50u);
}

TEST(CondVar, NotifyWithNoWaitersIsNoop)
{
    Engine eng;
    CondVar cv(eng);
    cv.notifyAll();
    EXPECT_TRUE(eng.run());
}

TEST(CondVar, WaitersAfterNotifyNeedNextNotify)
{
    Engine eng;
    CondVar cv(eng);
    std::vector<Cycle> wake_times;

    spawnNow(eng, [&]() -> Task<void> {
        co_await cv.wait();
        wake_times.push_back(eng.now());
        co_await cv.wait();
        wake_times.push_back(eng.now());
    });
    spawnNow(eng, [&]() -> Task<void> {
        co_await delay(eng, 10);
        cv.notifyAll();
        co_await delay(eng, 10);
        cv.notifyAll();
    });
    eng.run();
    ASSERT_EQ(wake_times.size(), 2u);
    EXPECT_EQ(wake_times[0], 10u);
    EXPECT_EQ(wake_times[1], 20u);
}

TEST(Future, DeliversValueToLateAndEarlyWaiters)
{
    Engine eng;
    Future<int> fut(eng);
    std::vector<int> seen;

    // Early waiter: blocks until set().
    spawnNow(eng, [&]() -> Task<void> {
        seen.push_back(co_await fut);
    });
    // Producer.
    spawnNow(eng, [&]() -> Task<void> {
        co_await delay(eng, 5);
        fut.set(99);
    });
    // Late waiter: awaits after set(), must not block.
    spawnNow(eng, [&]() -> Task<void> {
        co_await delay(eng, 20);
        seen.push_back(co_await fut);
    });
    eng.run();
    EXPECT_EQ(seen, (std::vector<int>{99, 99}));
}

TEST(Future, ReadyFlagTracksState)
{
    Engine eng;
    Future<int> fut(eng);
    EXPECT_FALSE(fut.ready());
    fut.set(1);
    EXPECT_TRUE(fut.ready());
}

TEST(SimMutex, HandoffKeepsCycleAccurate)
{
    // A lock released and re-acquired in the same cycle must not lose
    // or add time.
    Engine eng;
    SimMutex mtx(eng);
    std::vector<Cycle> times;
    auto worker = [&]() -> Task<void> {
        co_await mtx.lock();
        times.push_back(eng.now());
        mtx.unlock(); // zero-cycle critical section
    };
    for (int i = 0; i < 3; ++i)
        spawnNow(eng, worker);
    eng.run();
    EXPECT_EQ(times, (std::vector<Cycle>{0, 0, 0}));
}

} // namespace
