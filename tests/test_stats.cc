/**
 * @file
 * Unit tests for counters, accumulators, and histograms.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

namespace {

using wisync::sim::Accumulator;
using wisync::sim::Counter;
using wisync::sim::Histogram;
using wisync::sim::StatSet;

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(9);
    EXPECT_EQ(c.value(), 10u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, TracksMinMaxMean)
{
    Accumulator a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(2);
    a.sample(4);
    a.sample(12);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 12.0);
    EXPECT_DOUBLE_EQ(a.mean(), 6.0);
}

TEST(Accumulator, SingleSample)
{
    Accumulator a;
    a.sample(-3.5);
    EXPECT_DOUBLE_EQ(a.min(), -3.5);
    EXPECT_DOUBLE_EQ(a.max(), -3.5);
    EXPECT_DOUBLE_EQ(a.mean(), -3.5);
}

TEST(Histogram, Log2Buckets)
{
    Histogram h;
    h.sample(0); // bucket 0
    h.sample(1); // bucket 0
    h.sample(2); // bucket 1
    h.sample(3); // bucket 1
    h.sample(4); // bucket 2
    h.sample(1024); // bucket 10
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(10), 1u);
    EXPECT_EQ(h.bucket(63), 0u);
    EXPECT_EQ(h.acc().count(), 6u);
}

TEST(StatSet, DumpAndLookup)
{
    Counter hits, misses;
    hits.inc(7);
    misses.inc(3);
    Accumulator lat;
    lat.sample(10);
    lat.sample(20);

    StatSet set;
    set.addCounter("l1.hits", hits);
    set.addCounter("l1.misses", misses);
    set.addAccumulator("l1.latency", lat);

    EXPECT_EQ(set.counterValue("l1.hits"), 7u);
    EXPECT_EQ(set.counterValue("does.not.exist"), 0u);

    std::ostringstream os;
    set.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("l1.hits 7"), std::string::npos);
    EXPECT_NE(out.find("l1.misses 3"), std::string::npos);
    EXPECT_NE(out.find("l1.latency.mean 15"), std::string::npos);
}

} // namespace
