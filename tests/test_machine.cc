/**
 * @file
 * Tests for MachineConfig (Tables 1/2/6) and the Machine facade.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/machine_config.hh"

namespace {

using wisync::core::ConfigKind;
using wisync::core::Machine;
using wisync::core::MachineConfig;
using wisync::core::ThreadCtx;
using wisync::core::Variant;
using wisync::coro::Task;
using wisync::sim::Addr;
using wisync::sim::BmAddr;
using wisync::sim::Cycle;
using wisync::sim::NodeId;

TEST(MachineConfig, KindsMapToHardware)
{
    const auto base = MachineConfig::make(ConfigKind::Baseline, 16);
    EXPECT_FALSE(base.hasWireless());
    EXPECT_FALSE(base.hasTone());
    EXPECT_FALSE(base.mesh.treeMulticast);

    const auto plus = MachineConfig::make(ConfigKind::BaselinePlus, 16);
    EXPECT_FALSE(plus.hasWireless());
    EXPECT_TRUE(plus.mesh.treeMulticast);

    const auto not_ = MachineConfig::make(ConfigKind::WiSyncNoT, 16);
    EXPECT_TRUE(not_.hasWireless());
    EXPECT_FALSE(not_.hasTone());

    const auto full = MachineConfig::make(ConfigKind::WiSync, 16);
    EXPECT_TRUE(full.hasWireless());
    EXPECT_TRUE(full.hasTone());
}

TEST(MachineConfig, Table6Variants)
{
    const auto def = MachineConfig::make(ConfigKind::WiSync, 16);
    EXPECT_EQ(def.mesh.hopCycles, 4u);
    EXPECT_EQ(def.mem.l2RtCycles, 6u);
    EXPECT_EQ(def.bm.bmRtCycles, 2u);

    const auto slow =
        MachineConfig::make(ConfigKind::WiSync, 16, Variant::SlowNet);
    EXPECT_EQ(slow.mesh.hopCycles, 6u);

    const auto slow_l2 =
        MachineConfig::make(ConfigKind::WiSync, 16, Variant::SlowNetL2);
    EXPECT_EQ(slow_l2.mesh.hopCycles, 6u);
    EXPECT_EQ(slow_l2.mem.l2RtCycles, 12u);

    const auto fast =
        MachineConfig::make(ConfigKind::WiSync, 16, Variant::FastNet);
    EXPECT_EQ(fast.mesh.hopCycles, 2u);

    const auto slow_bm =
        MachineConfig::make(ConfigKind::WiSync, 16, Variant::SlowBmem);
    EXPECT_EQ(slow_bm.bm.bmRtCycles, 4u);
}

TEST(MachineConfig, Table1Defaults)
{
    const auto cfg = MachineConfig::make(ConfigKind::WiSync, 64);
    EXPECT_EQ(cfg.issueWidth, 2u);                    // 2-issue core
    EXPECT_EQ(cfg.mem.l1SizeBytes, 32u * 1024);       // 32KB L1
    EXPECT_EQ(cfg.mem.l1Assoc, 2u);                   // 2-way
    EXPECT_EQ(cfg.mem.l1RtCycles, 2u);                // 2-cycle RT
    EXPECT_EQ(cfg.mem.l2BankSizeBytes, 512u * 1024);  // 512KB banks
    EXPECT_EQ(cfg.mem.l2Assoc, 8u);                   // 8-way
    EXPECT_EQ(cfg.mem.dramRtCycles, 110u);            // 110-cycle RT
    EXPECT_EQ(cfg.mem.numMemCtrls, 4u);               // 4 controllers
    EXPECT_EQ(cfg.mesh.linkBits, 128u);               // 128-bit links
    EXPECT_EQ(cfg.bm.bmBytes, 16u * 1024);            // 16KB BM
    EXPECT_EQ(cfg.wireless.dataCycles, 5u);           // 5-cycle transfer
    EXPECT_EQ(cfg.wireless.collisionCycles, 2u);      // detect cycle 2
}

TEST(Machine, BaselineHasNoBm)
{
    Machine m(MachineConfig::make(ConfigKind::Baseline, 16));
    EXPECT_EQ(m.bm(), nullptr);
}

TEST(Machine, WiSyncHasBmAndTone)
{
    Machine m(MachineConfig::make(ConfigKind::WiSync, 16));
    ASSERT_NE(m.bm(), nullptr);
    EXPECT_TRUE(m.bm()->hasTone());

    Machine m2(MachineConfig::make(ConfigKind::WiSyncNoT, 16));
    ASSERT_NE(m2.bm(), nullptr);
    EXPECT_FALSE(m2.bm()->hasTone());
}

TEST(Machine, ThreadsRunToCompletion)
{
    Machine m(MachineConfig::make(ConfigKind::Baseline, 4));
    int done = 0;
    for (NodeId n = 0; n < 4; ++n) {
        m.spawnThread(n, [&done](ThreadCtx &ctx) -> Task<void> {
            co_await ctx.compute(100);
            ++done;
        });
    }
    EXPECT_EQ(m.liveThreads(), 4u);
    EXPECT_TRUE(m.run());
    EXPECT_EQ(done, 4);
    EXPECT_EQ(m.liveThreads(), 0u);
}

TEST(Machine, ComputeChargesIssueWidthCycles)
{
    Machine m(MachineConfig::make(ConfigKind::Baseline, 1));
    Cycle took = 0;
    m.spawnThread(0, [&](ThreadCtx &ctx) -> Task<void> {
        co_await ctx.compute(100); // 2-issue -> 50 cycles
        took = ctx.machine().engine().now();
    });
    m.run();
    EXPECT_EQ(took, 50u);
}

TEST(Machine, ThreadsTalkThroughSharedMemory)
{
    Machine m(MachineConfig::make(ConfigKind::Baseline, 2));
    const Addr flag = m.allocMem(8);
    std::uint64_t got = 0;
    m.spawnThread(0, [&](ThreadCtx &ctx) -> Task<void> {
        co_await ctx.compute(500);
        co_await ctx.store(flag, 7);
    });
    m.spawnThread(1, [&](ThreadCtx &ctx) -> Task<void> {
        got = co_await ctx.spinUntil(flag,
                                     [](std::uint64_t v) { return v != 0; });
    });
    EXPECT_TRUE(m.run());
    EXPECT_EQ(got, 7u);
}

TEST(Machine, ThreadsTalkThroughBm)
{
    Machine m(MachineConfig::make(ConfigKind::WiSync, 2));
    // Tag a BM word for PID 1 directly (OS-level allocation is tested
    // in the sync layer).
    m.bm()->storeArray().setTag(0, 1);
    std::uint64_t got = 0;
    m.spawnThread(0, [&](ThreadCtx &ctx) -> Task<void> {
        co_await ctx.compute(100);
        co_await ctx.bmStore(0, 99);
    });
    m.spawnThread(1, [&](ThreadCtx &ctx) -> Task<void> {
        got = co_await ctx.bmSpinUntil(
            0, [](std::uint64_t v) { return v != 0; });
    });
    EXPECT_TRUE(m.run());
    EXPECT_EQ(got, 99u);
}

TEST(Machine, MemAllocatorAligns)
{
    Machine m(MachineConfig::make(ConfigKind::Baseline, 1));
    const Addr a = m.allocMem(8, 64);
    const Addr b = m.allocMem(100, 64);
    const Addr c = m.allocMem(8, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_EQ(c % 64, 0u);
    EXPECT_GE(b, a + 8);
    EXPECT_GE(c, b + 100);
}

TEST(Machine, BmAllocatorExhausts)
{
    Machine m(MachineConfig::make(ConfigKind::WiSync, 2));
    BmAddr addr = 0;
    const std::uint32_t cap = m.bm()->config().words();
    EXPECT_TRUE(m.allocBm(cap - 1, addr));
    EXPECT_EQ(addr, 0u);
    EXPECT_TRUE(m.allocBm(1, addr));
    EXPECT_EQ(addr, cap - 1);
    EXPECT_FALSE(m.allocBm(1, addr)) << "BM exhausted -> fall back";
}

TEST(Machine, RunWithLimitReportsUnfinished)
{
    Machine m(MachineConfig::make(ConfigKind::Baseline, 1));
    m.spawnThread(0, [](ThreadCtx &ctx) -> Task<void> {
        co_await ctx.compute(1'000'000); // 500k cycles
    });
    EXPECT_FALSE(m.run(1000));
    EXPECT_EQ(m.liveThreads(), 1u);
    EXPECT_TRUE(m.run()); // finish the remainder
}

} // namespace

// --- Context switching and thread migration (paper §5.2) -----------

#include "bm/bm_system.hh"
#include "sync/wisync_sync.hh"

#include "sync/factory.hh"

namespace {

TEST(Migration, PreemptedThreadSeesBmUpdatesOnResume)
{
    Machine m(MachineConfig::make(ConfigKind::WiSync, 4));
    m.bm()->storeArray().setTag(0, 1);
    std::uint64_t seen = 0;
    m.spawnThread(0, [&](ThreadCtx &ctx) -> Task<void> {
        co_await ctx.preempt(5000); // descheduled while node 1 writes
        seen = co_await ctx.bmLoad(0);
    });
    m.spawnThread(1, [&](ThreadCtx &ctx) -> Task<void> {
        co_await ctx.compute(100);
        co_await ctx.bmStore(0, 777);
    });
    EXPECT_TRUE(m.run());
    EXPECT_EQ(seen, 777u);
}

TEST(Migration, MigratedThreadResumesSeamlessly)
{
    Machine m(MachineConfig::make(ConfigKind::WiSync, 8));
    m.bm()->storeArray().setTag(0, 1);
    const auto mem_addr = m.allocMem(8);
    std::uint64_t bm_seen = 0, mem_seen = 0;
    wisync::sim::NodeId node_after = 0;
    m.spawnThread(2, [&](ThreadCtx &ctx) -> Task<void> {
        co_await ctx.bmStore(0, 42);        // write from node 2
        co_await ctx.store(mem_addr, 43);   // dirty line at node 2
        co_await ctx.migrate(6);
        node_after = ctx.node();
        bm_seen = co_await ctx.bmLoad(0);   // identical replica
        mem_seen = co_await ctx.load(mem_addr); // coherence supplies
    });
    EXPECT_TRUE(m.run());
    EXPECT_EQ(node_after, 6u);
    EXPECT_EQ(bm_seen, 42u);
    EXPECT_EQ(mem_seen, 43u);
}

TEST(Migration, RefusedWhileToneBarrierArmsNode)
{
    Machine m(MachineConfig::make(ConfigKind::WiSync, 4));
    wisync::sync::SyncFactory factory(m);
    std::vector<wisync::sim::NodeId> nodes{0, 1, 2, 3};
    auto barrier = factory.makeBarrier(nodes); // tone: arms all nodes
    bool refused = false;
    m.spawnThread(0, [&](ThreadCtx &ctx) -> Task<void> {
        try {
            co_await ctx.migrate(1);
        } catch (const std::runtime_error &) {
            refused = true;
        }
    });
    EXPECT_TRUE(m.run());
    EXPECT_TRUE(refused);
    (void)barrier;
}

TEST(Migration, AllowedOnWiSyncNoT)
{
    // Without the Tone channel there is no per-node armed state, so
    // migration is always legal (§5.2).
    Machine m(MachineConfig::make(ConfigKind::WiSyncNoT, 4));
    bool migrated = false;
    m.spawnThread(0, [&](ThreadCtx &ctx) -> Task<void> {
        co_await ctx.migrate(3);
        migrated = ctx.node() == 3;
    });
    EXPECT_TRUE(m.run());
    EXPECT_TRUE(migrated);
}

} // namespace
