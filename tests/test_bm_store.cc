/**
 * @file
 * Unit tests for the replicated Broadcast Memory arrays.
 */

#include <gtest/gtest.h>

#include "bm/bm_store.hh"
#include "sim/engine.hh"

namespace {

using wisync::bm::BmStore;
using wisync::bm::kNoPid;
using wisync::sim::Engine;

TEST(BmStore, StartsZeroedAndConsistent)
{
    Engine eng;
    BmStore bm(eng, 8, 2048);
    EXPECT_EQ(bm.words(), 2048u);
    EXPECT_EQ(bm.nodes(), 8u);
    EXPECT_EQ(bm.read(0, 0), 0u);
    EXPECT_EQ(bm.read(7, 2047), 0u);
    EXPECT_TRUE(bm.replicasConsistent());
}

TEST(BmStore, WriteAllUpdatesEveryReplica)
{
    Engine eng;
    BmStore bm(eng, 8, 64);
    bm.writeAll(5, 0xABCD);
    for (std::uint32_t n = 0; n < 8; ++n)
        EXPECT_EQ(bm.read(n, 5), 0xABCDu);
    EXPECT_TRUE(bm.replicasConsistent());
}

TEST(BmStore, ToggleFlipsZeroAndNonZero)
{
    Engine eng;
    BmStore bm(eng, 4, 64);
    bm.toggleAll(3);
    EXPECT_EQ(bm.read(0, 3), 1u);
    bm.toggleAll(3);
    EXPECT_EQ(bm.read(2, 3), 0u);
    // Non-zero values toggle to zero.
    bm.writeAll(3, 77);
    bm.toggleAll(3);
    EXPECT_EQ(bm.read(1, 3), 0u);
}

TEST(BmStore, PidTags)
{
    Engine eng;
    BmStore bm(eng, 4, 64);
    EXPECT_EQ(bm.tag(10), kNoPid);
    bm.setTag(10, 3);
    EXPECT_EQ(bm.tag(10), 3u);
    EXPECT_EQ(bm.tag(11), kNoPid);
}

TEST(BmStore, WatchRaisesOnWrite)
{
    Engine eng;
    BmStore bm(eng, 4, 64);
    auto &w0 = bm.watch(0, 7);
    auto &w3 = bm.watch(3, 7);
    auto &other = bm.watch(1, 9);
    const auto g0 = w0.gen(), g3 = w3.gen(), go = other.gen();
    bm.writeAll(7, 1);
    EXPECT_GT(w0.gen(), g0);
    EXPECT_GT(w3.gen(), g3);
    EXPECT_EQ(other.gen(), go) << "unrelated word must not be raised";
}

} // namespace
