/**
 * @file
 * Cross-configuration tests of the synchronization library: the same
 * properties (mutual exclusion, barrier separation, no lost updates)
 * must hold on Baseline, Baseline+, WiSyncNoT, and WiSync.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/machine.hh"
#include "sync/factory.hh"

namespace {

using wisync::core::ConfigKind;
using wisync::core::Machine;
using wisync::core::MachineConfig;
using wisync::core::ThreadCtx;
using wisync::coro::Task;
using wisync::sim::Cycle;
using wisync::sim::NodeId;
using wisync::sync::Barrier;
using wisync::sync::Lock;
using wisync::sync::ProducerConsumer;
using wisync::sync::Multicaster;
using wisync::sync::SyncFactory;
using wisync::sync::ToneBarrier;

class AllConfigs : public ::testing::TestWithParam<ConfigKind>
{};

INSTANTIATE_TEST_SUITE_P(
    Configs, AllConfigs,
    ::testing::Values(ConfigKind::Baseline, ConfigKind::BaselinePlus,
                      ConfigKind::WiSyncNoT, ConfigKind::WiSync),
    [](const auto &info) {
        switch (info.param) {
          case ConfigKind::Baseline:
            return "Baseline";
          case ConfigKind::BaselinePlus:
            return "BaselinePlus";
          case ConfigKind::WiSyncNoT:
            return "WiSyncNoT";
          case ConfigKind::WiSync:
            return "WiSync";
        }
        return "Unknown";
    });

TEST_P(AllConfigs, LockProvidesMutualExclusion)
{
    constexpr std::uint32_t kThreads = 8;
    Machine m(MachineConfig::make(GetParam(), kThreads));
    SyncFactory factory(m);
    auto lock = factory.makeLock();

    int in_section = 0, peak = 0, entries = 0;
    for (NodeId n = 0; n < kThreads; ++n) {
        m.spawnThread(n, [&](ThreadCtx &ctx) -> Task<void> {
            for (int i = 0; i < 5; ++i) {
                co_await lock->acquire(ctx);
                ++in_section;
                ++entries;
                peak = std::max(peak, in_section);
                co_await ctx.compute(50);
                --in_section;
                co_await lock->release(ctx);
                co_await ctx.compute(20);
            }
        });
    }
    ASSERT_TRUE(m.run(50'000'000));
    EXPECT_EQ(peak, 1) << "two threads in the critical section";
    EXPECT_EQ(entries, static_cast<int>(kThreads) * 5);
}

TEST_P(AllConfigs, LockGuardedCounterHasNoLostUpdates)
{
    constexpr std::uint32_t kThreads = 8;
    constexpr int kIters = 10;
    Machine m(MachineConfig::make(GetParam(), kThreads));
    SyncFactory factory(m);
    auto lock = factory.makeLock();
    const auto counter = m.allocMem(8);

    for (NodeId n = 0; n < kThreads; ++n) {
        m.spawnThread(n, [&](ThreadCtx &ctx) -> Task<void> {
            for (int i = 0; i < kIters; ++i) {
                co_await lock->acquire(ctx);
                const auto v = co_await ctx.load(counter);
                co_await ctx.store(counter, v + 1);
                co_await lock->release(ctx);
            }
        });
    }
    ASSERT_TRUE(m.run(50'000'000));
    EXPECT_EQ(m.memory().read64(counter),
              static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST_P(AllConfigs, BarrierSeparatesPhases)
{
    constexpr std::uint32_t kThreads = 16;
    constexpr int kPhases = 6;
    Machine m(MachineConfig::make(GetParam(), kThreads));
    SyncFactory factory(m);
    std::vector<NodeId> nodes;
    for (NodeId n = 0; n < kThreads; ++n)
        nodes.push_back(n);
    auto barrier = factory.makeBarrier(nodes);

    std::vector<int> arrivals(kThreads, 0);
    bool violated = false;
    for (NodeId n = 0; n < kThreads; ++n) {
        m.spawnThread(n, [&, n](ThreadCtx &ctx) -> Task<void> {
            for (int p = 0; p < kPhases; ++p) {
                // Uneven work so arrivals are staggered.
                co_await ctx.compute((n + 1) * 20);
                arrivals[n] = p + 1;
                co_await barrier->wait(ctx);
                // After the barrier, everyone must have arrived at
                // phase p.
                for (std::uint32_t t = 0; t < kThreads; ++t)
                    if (arrivals[t] < p + 1)
                        violated = true;
            }
        });
    }
    ASSERT_TRUE(m.run(50'000'000));
    EXPECT_FALSE(violated);
}

TEST_P(AllConfigs, ReducerAccumulatesExactly)
{
    constexpr std::uint32_t kThreads = 8;
    constexpr int kIters = 10;
    Machine m(MachineConfig::make(GetParam(), kThreads));
    SyncFactory factory(m);
    auto red = factory.makeReducer();

    for (NodeId n = 0; n < kThreads; ++n) {
        m.spawnThread(n, [&, n](ThreadCtx &ctx) -> Task<void> {
            for (int i = 0; i < kIters; ++i)
                co_await red->add(ctx, n + 1);
        });
    }
    ASSERT_TRUE(m.run(50'000'000));

    // Sum = iters * (1 + 2 + ... + kThreads).
    std::uint64_t expect = 0;
    for (std::uint32_t n = 1; n <= kThreads; ++n)
        expect += n;
    expect *= kIters;

    Machine check(MachineConfig::make(GetParam(), 1));
    (void)check; // reader runs on the same machine:
    std::uint64_t got = 0;
    m.spawnThread(0, [&](ThreadCtx &ctx) -> Task<void> {
        got = co_await red->read(ctx);
    });
    ASSERT_TRUE(m.run(1'000'000));
    EXPECT_EQ(got, expect);
}

TEST_P(AllConfigs, OrBarrierReleasesEveryoneOnTrigger)
{
    constexpr std::uint32_t kThreads = 6;
    Machine m(MachineConfig::make(GetParam(), kThreads));
    SyncFactory factory(m);
    auto eureka = factory.makeOrBarrier();

    int woken = 0;
    Cycle trigger_at = 0;
    for (NodeId n = 1; n < kThreads; ++n) {
        m.spawnThread(n, [&](ThreadCtx &ctx) -> Task<void> {
            co_await eureka->await(ctx);
            ++woken;
        });
    }
    m.spawnThread(0, [&](ThreadCtx &ctx) -> Task<void> {
        co_await ctx.compute(2000); // "search" until the eureka moment
        trigger_at = ctx.machine().engine().now();
        co_await eureka->trigger(ctx);
    });
    ASSERT_TRUE(m.run(10'000'000));
    EXPECT_EQ(woken, static_cast<int>(kThreads) - 1);
    EXPECT_GE(trigger_at, 1000u);
}

TEST(SyncWiSync, ToneBarrierFasterThanBaselineCentral)
{
    // The headline property: a WiSync tone barrier costs a fraction of
    // a Baseline centralized barrier at the same core count.
    auto barrier_time = [](ConfigKind kind) {
        constexpr std::uint32_t kThreads = 32;
        Machine m(MachineConfig::make(kind, kThreads));
        SyncFactory factory(m);
        std::vector<NodeId> nodes;
        for (NodeId n = 0; n < kThreads; ++n)
            nodes.push_back(n);
        auto barrier = factory.makeBarrier(nodes);
        for (NodeId n = 0; n < kThreads; ++n) {
            m.spawnThread(n, [&](ThreadCtx &ctx) -> Task<void> {
                for (int i = 0; i < 10; ++i)
                    co_await barrier->wait(ctx);
            });
        }
        EXPECT_TRUE(m.run(100'000'000));
        return m.engine().now();
    };
    const Cycle baseline = barrier_time(ConfigKind::Baseline);
    const Cycle wisync = barrier_time(ConfigKind::WiSync);
    EXPECT_LT(wisync * 5, baseline)
        << "tone barrier should be >5x faster at 32 cores";
}

TEST(SyncWiSync, ToneBarrierFallsBackWhenAllocBOverflows)
{
    constexpr std::uint32_t kThreads = 4;
    auto cfg = MachineConfig::make(ConfigKind::WiSync, kThreads);
    cfg.bm.allocSlots = 1; // tiny AllocB
    Machine m(cfg);
    SyncFactory factory(m);
    std::vector<NodeId> nodes{0, 1, 2, 3};
    auto b1 = factory.makeBarrier(nodes); // takes the only slot
    auto b2 = factory.makeBarrier(nodes); // must fall back, not throw
    ASSERT_NE(b2, nullptr);

    // Both barriers still work.
    for (NodeId n = 0; n < kThreads; ++n) {
        m.spawnThread(n, [&](ThreadCtx &ctx) -> Task<void> {
            co_await b1->wait(ctx);
            co_await b2->wait(ctx);
        });
    }
    EXPECT_TRUE(m.run(10'000'000));
}

TEST(SyncWiSync, ProducerConsumerDeliversInOrder)
{
    Machine m(MachineConfig::make(ConfigKind::WiSync, 2));
    ProducerConsumer pc(m, 1);
    constexpr int kMsgs = 8;
    std::vector<std::uint64_t> received;

    m.spawnThread(0, [&](ThreadCtx &ctx) -> Task<void> {
        for (int i = 0; i < kMsgs; ++i)
            co_await pc.produce(ctx, {std::uint64_t(i), std::uint64_t(i) * 2,
                                      std::uint64_t(i) * 3,
                                      std::uint64_t(i) * 4});
    });
    m.spawnThread(1, [&](ThreadCtx &ctx) -> Task<void> {
        for (int i = 0; i < kMsgs; ++i) {
            const auto data = co_await pc.consume(ctx);
            received.push_back(data[0]);
            EXPECT_EQ(data[1], data[0] * 2);
            EXPECT_EQ(data[3], data[0] * 4);
        }
    });
    ASSERT_TRUE(m.run(10'000'000));
    ASSERT_EQ(received.size(), static_cast<std::size_t>(kMsgs));
    for (int i = 0; i < kMsgs; ++i)
        EXPECT_EQ(received[static_cast<std::size_t>(i)],
                  static_cast<std::uint64_t>(i));
}

TEST(SyncWiSync, MulticastReachesAllReaders)
{
    constexpr std::uint32_t kReaders = 7;
    Machine m(MachineConfig::make(ConfigKind::WiSync, kReaders + 1));
    Multicaster mc(m, 1, kReaders);
    constexpr int kRounds = 5;
    std::vector<std::vector<std::uint64_t>> got(kReaders);

    m.spawnThread(0, [&](ThreadCtx &ctx) -> Task<void> {
        for (int r = 0; r < kRounds; ++r)
            co_await mc.publish(ctx, 100 + static_cast<std::uint64_t>(r));
    });
    for (NodeId n = 1; n <= kReaders; ++n) {
        m.spawnThread(n, [&, n](ThreadCtx &ctx) -> Task<void> {
            for (int r = 0; r < kRounds; ++r)
                got[n - 1].push_back(co_await mc.receive(ctx));
        });
    }
    ASSERT_TRUE(m.run(10'000'000));
    for (std::uint32_t r = 0; r < kReaders; ++r) {
        ASSERT_EQ(got[r].size(), static_cast<std::size_t>(kRounds));
        for (int i = 0; i < kRounds; ++i)
            EXPECT_EQ(got[r][static_cast<std::size_t>(i)],
                      100 + static_cast<std::uint64_t>(i));
    }
}

TEST(SyncBaseline, McsLockIsFifoFair)
{
    // MCS hands the lock to waiters in queue order.
    constexpr std::uint32_t kThreads = 6;
    Machine m(MachineConfig::make(ConfigKind::BaselinePlus, kThreads));
    SyncFactory factory(m);
    auto lock = factory.makeLock();
    std::vector<int> order;

    for (NodeId n = 0; n < kThreads; ++n) {
        m.spawnThread(n, [&, n](ThreadCtx &ctx) -> Task<void> {
            // Stagger arrivals so the queue order is deterministic.
            co_await ctx.compute(n * 2000);
            co_await lock->acquire(ctx);
            order.push_back(static_cast<int>(n));
            co_await ctx.compute(4000); // hold long enough to queue all
            co_await lock->release(ctx);
        });
    }
    ASSERT_TRUE(m.run(50'000'000));
    ASSERT_EQ(order.size(), kThreads);
    for (std::uint32_t i = 0; i < kThreads; ++i)
        EXPECT_EQ(order[i], static_cast<int>(i)) << "MCS order violated";
}

} // namespace
