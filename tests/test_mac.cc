/**
 * @file
 * Tests for the pluggable MAC subsystem (wireless/mac/).
 *
 * Three layers:
 *  - golden bit-identity: with MacKind::Brs (the default) the channel
 *    statistics of whole-machine runs are pinned to the values the
 *    pre-refactor hard-coded MAC produced, so the extraction is
 *    provably behavior-preserving;
 *  - protocol-level properties on a bare engine + channel harness
 *    (token exclusivity, ring-order grants, hold-window timing,
 *    fuzzy deterministic resolution, adaptive switching);
 *  - machine-level contracts for every MacKind: determinism across
 *    repeats, fresh-vs-reset equivalence, protocol swapping through
 *    Machine::reset, and thread-count independence through
 *    harness::ParallelSweep.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/machine.hh"
#include "coro/primitives.hh"
#include "harness/parallel_sweep.hh"
#include "sim/engine.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "workloads/cas_kernels.hh"
#include "workloads/tight_loop.hh"
#include "wireless/data_channel.hh"
#include "wireless/mac/adaptive_mac.hh"
#include "wireless/mac/brs_mac.hh"
#include "wireless/mac/fuzzy_token_mac.hh"
#include "wireless/mac/mac_protocol.hh"
#include "wireless/mac/token_mac.hh"

namespace {

using wisync::coro::delay;
using wisync::coro::spawnNow;
using wisync::coro::Task;
using wisync::sim::Cycle;
using wisync::sim::Engine;
using wisync::wireless::DataChannel;
using wisync::wireless::Mac;
using wisync::wireless::MacKind;
using wisync::wireless::MacProtocol;
using wisync::wireless::WirelessConfig;
using wisync::core::ConfigKind;
using wisync::core::Machine;
using wisync::core::MachineConfig;
using wisync::workloads::KernelResult;

constexpr MacKind kAllMacs[] = {MacKind::Brs, MacKind::Token,
                                MacKind::FuzzyToken, MacKind::Adaptive};

/** Bare-metal harness: engine + channel + one protocol + N MACs. */
struct ProtoNet
{
    ProtoNet(std::uint32_t nodes, const WirelessConfig &cfg)
        : channel(engine, cfg),
          protocol(wisync::wireless::makeMacProtocol(cfg, engine, channel,
                                                     nodes))
    {
        wisync::sim::Rng seeder(4242);
        for (std::uint32_t n = 0; n < nodes; ++n)
            macs.push_back(std::make_unique<Mac>(engine, channel,
                                                 *protocol, n,
                                                 seeder.fork()));
    }

    Engine engine;
    DataChannel channel;
    std::unique_ptr<MacProtocol> protocol;
    std::vector<std::unique_ptr<Mac>> macs;
};

/** Run TightLoop on a machine configured with @p mac. */
KernelResult
runTight(ConfigKind kind, MacKind mac, std::uint32_t cores,
         std::uint32_t iterations, Machine *reuse = nullptr)
{
    auto cfg = MachineConfig::make(kind, cores);
    cfg.wireless.macKind = mac;
    std::unique_ptr<Machine> owned;
    if (reuse != nullptr)
        reuse->reset(cfg);
    else
        owned = std::make_unique<Machine>(cfg);
    Machine &m = reuse != nullptr ? *reuse : *owned;
    wisync::workloads::TightLoopParams params;
    params.iterations = iterations;
    params.runLimit = 20'000'000;
    return wisync::workloads::runTightLoopOn(m, params);
}

// ---- Golden bit-identity of the extracted BRS ---------------------
//
// The pinned numbers were captured from the pre-refactor tree (the
// hard-coded exponential-backoff Mac in data_channel.cc) and must
// never drift: MacKind::Brs is the paper's §5.3 scheme and the
// figure benches depend on it byte-for-byte.

TEST(MacProtoGolden, BrsTightLoopWiSyncNoT16MatchesPreRefactor)
{
    Machine m(MachineConfig::make(ConfigKind::WiSyncNoT, 16));
    wisync::workloads::TightLoopParams p;
    p.iterations = 8;
    const auto r = wisync::workloads::runTightLoopOn(m, p);
    EXPECT_EQ(r.cycles, 5984u);
    EXPECT_EQ(r.operations, 8u);
    const auto &ch = m.bm()->dataChannel().stats();
    EXPECT_EQ(ch.messages.value(), 144u);
    EXPECT_EQ(ch.collisions.value(), 55u);
    EXPECT_EQ(ch.busyCycles.value(), 830u);
    std::uint64_t retries = 0;
    for (std::uint32_t n = 0; n < 16; ++n)
        retries += m.bm()->mac(n).retries();
    EXPECT_EQ(retries, 251u);
    EXPECT_EQ(m.bm()->macProtocol().kind(), MacKind::Brs);
}

TEST(MacProtoGolden, BrsTightLoopWiSync32MatchesPreRefactor)
{
    Machine m(MachineConfig::make(ConfigKind::WiSync, 32));
    wisync::workloads::TightLoopParams p;
    p.iterations = 6;
    const auto r = wisync::workloads::runTightLoopOn(m, p);
    EXPECT_EQ(r.cycles, 3007u);
    const auto &ch = m.bm()->dataChannel().stats();
    EXPECT_EQ(ch.messages.value(), 6u);
    EXPECT_EQ(ch.collisions.value(), 22u);
    EXPECT_EQ(ch.busyCycles.value(), 74u);
    std::uint64_t retries = 0;
    for (std::uint32_t n = 0; n < 32; ++n)
        retries += m.bm()->mac(n).retries();
    EXPECT_EQ(retries, 280u);
}

TEST(MacProtoGolden, BrsCasLifoWiSyncNoT16MatchesPreRefactor)
{
    Machine m(MachineConfig::make(ConfigKind::WiSyncNoT, 16));
    wisync::workloads::CasKernelParams p;
    p.criticalSectionInstr = 128;
    p.duration = 60'000;
    const auto r = wisync::workloads::runCasKernelOn(
        wisync::workloads::CasKernel::Lifo, m, p);
    EXPECT_EQ(r.cycles, 60'000u);
    EXPECT_EQ(r.operations, 2197u);
    const auto &ch = m.bm()->dataChannel().stats();
    EXPECT_EQ(ch.messages.value(), 2197u);
    EXPECT_EQ(ch.collisions.value(), 179u);
    EXPECT_EQ(ch.busyCycles.value(), 11'343u);
    std::uint64_t retries = 0;
    for (std::uint32_t n = 0; n < 16; ++n)
        retries += m.bm()->mac(n).retries();
    EXPECT_EQ(retries, 392u);
}

// ---- TokenMac properties ------------------------------------------

TEST(MacProtoToken, ExclusiveGrantsNeverCollide)
{
    WirelessConfig cfg;
    cfg.macKind = MacKind::Token;
    ProtoNet net(16, cfg);
    int delivered = 0;
    auto sender = [&](int mac) -> Task<void> {
        for (int i = 0; i < 5; ++i)
            co_await net.macs[static_cast<std::size_t>(mac)]->send(
                false, [&] { ++delivered; });
    };
    for (int m = 0; m < 16; ++m)
        spawnNow(net.engine, sender, m);
    ASSERT_TRUE(net.engine.run(10'000'000));
    EXPECT_EQ(delivered, 80);
    EXPECT_EQ(net.channel.stats().collisions.value(), 0u);
    EXPECT_EQ(net.channel.stats().messages.value(), 80u);
    const auto &s = net.protocol->stats();
    EXPECT_GT(s.tokenRotations.value(), 0u);
    EXPECT_GT(s.tokenWaits.value(), 0u);
    EXPECT_EQ(s.backoffCycles.value(), 0u);
}

TEST(MacProtoToken, ParkedTokenCostsRingDistance)
{
    WirelessConfig cfg;
    cfg.macKind = MacKind::Token;
    cfg.tokenPassCycles = 2;
    ProtoNet net(8, cfg);
    Cycle delivered_at = 0;
    // The token parks at node 0; node 3 must fetch it over 3 hops of
    // 2 cycles before its 5-cycle transfer.
    spawnNow(net.engine, [&]() -> Task<void> {
        co_await net.macs[3]->send(
            false, [&] { delivered_at = net.engine.now(); });
    });
    net.engine.run();
    EXPECT_EQ(delivered_at, 3u * 2u + 5u);
    EXPECT_EQ(net.protocol->stats().tokenRotations.value(), 3u);
}

TEST(MacProtoToken, HoldCyclesReserveTheChannelPerGrant)
{
    auto second_delivery = [](std::uint32_t hold) {
        WirelessConfig cfg;
        cfg.macKind = MacKind::Token;
        cfg.tokenHoldCycles = hold;
        ProtoNet net(4, cfg);
        std::vector<Cycle> deliveries;
        auto sender = [&](int mac) -> Task<void> {
            co_await net.macs[static_cast<std::size_t>(mac)]->send(
                false, [&] { deliveries.push_back(net.engine.now()); });
        };
        spawnNow(net.engine, sender, 0);
        spawnNow(net.engine, sender, 1);
        net.engine.run();
        EXPECT_EQ(deliveries.size(), 2u);
        return deliveries.back();
    };
    // hold=0: node 0 delivers at 5, token passes 1 hop (1 cycle),
    // node 1 transmits 6..11. hold=20: the token may not depart
    // before cycle 20, so node 1 transmits 21..26.
    EXPECT_EQ(second_delivery(0), 11u);
    EXPECT_EQ(second_delivery(20), 26u);

    // The parked path honours the window too: node 0 delivers at 5
    // with no waiters and the token parks; node 1 requests at 8
    // (inside the hold window) and must still wait for cycle 20 + the
    // 1-hop pass before its 5-cycle transfer.
    auto parked_delivery = [](std::uint32_t hold) {
        WirelessConfig cfg;
        cfg.macKind = MacKind::Token;
        cfg.tokenHoldCycles = hold;
        ProtoNet net(4, cfg);
        Cycle second = 0;
        spawnNow(net.engine, [&]() -> Task<void> {
            co_await net.macs[0]->send(false, [] {});
        });
        spawnNow(net.engine, [&]() -> Task<void> {
            co_await delay(net.engine, 8);
            co_await net.macs[1]->send(
                false, [&] { second = net.engine.now(); });
        });
        net.engine.run();
        return second;
    };
    EXPECT_EQ(parked_delivery(0), 14u);  // 8 + 1 hop + 5
    EXPECT_EQ(parked_delivery(20), 26u); // departs at 20, +1 hop, +5
}

TEST(MacProtoToken, AutoPassPriceMatchesLegacyConstant)
{
    auto parked_fetch = [](std::uint32_t pass_cycles,
                           std::uint32_t frame_bits) {
        WirelessConfig cfg;
        cfg.macKind = MacKind::Token;
        cfg.tokenPassCycles = pass_cycles;
        cfg.tokenFrameBits = frame_bits;
        ProtoNet net(8, cfg);
        Cycle delivered_at = 0;
        spawnNow(net.engine, [&]() -> Task<void> {
            co_await net.macs[3]->send(
                false, [&] { delivered_at = net.engine.now(); });
        });
        net.engine.run();
        return delivered_at;
    };
    // tokenPassCycles = 0 (the default) prices the hop through the RF
    // model: a 16-bit token frame at the 16 Gb/s WiSync transceiver is
    // exactly the legacy 1-cycle constant, so the default machine
    // timing is unchanged.
    EXPECT_EQ(parked_fetch(0, 16), parked_fetch(1, 16));
    EXPECT_EQ(parked_fetch(0, 16), 3u * 1u + 5u);
    // Wider control frames cost more slots: 48 bits -> 3 cycles/hop.
    EXPECT_EQ(parked_fetch(0, 48), 3u * 3u + 5u);
    // An explicit nonzero constant still wins over the RF pricing.
    EXPECT_EQ(parked_fetch(2, 48), 3u * 2u + 5u);
}

TEST(MacProtoToken, IdleRingSchedulesNoEvents)
{
    WirelessConfig cfg;
    cfg.macKind = MacKind::Token;
    ProtoNet net(64, cfg);
    net.engine.run();
    // Demand-driven token: an idle ring must not spin the clock.
    EXPECT_EQ(net.engine.now(), 0u);
}

// ---- FuzzyTokenMac properties -------------------------------------

TEST(MacProtoFuzzy, UncontendedSendPaysNoTokenLatency)
{
    WirelessConfig cfg;
    cfg.macKind = MacKind::FuzzyToken;
    ProtoNet net(16, cfg);
    Cycle delivered_at = 0;
    // Node 9 is far from the parked token but the channel is idle:
    // CSMA wins, no ring latency (unlike TokenMac's 9 hops).
    spawnNow(net.engine, [&]() -> Task<void> {
        co_await net.macs[9]->send(
            false, [&] { delivered_at = net.engine.now(); });
    });
    net.engine.run();
    EXPECT_EQ(delivered_at, 5u);
}

TEST(MacProtoFuzzy, StormResolvesDeterministicallyByRingOrder)
{
    auto run = [] {
        WirelessConfig cfg;
        cfg.macKind = MacKind::FuzzyToken;
        ProtoNet net(32, cfg);
        int delivered = 0;
        auto sender = [&](int mac) -> Task<void> {
            for (int i = 0; i < 4; ++i)
                co_await net.macs[static_cast<std::size_t>(mac)]->send(
                    false, [&] { ++delivered; });
        };
        for (int m = 0; m < 32; ++m)
            spawnNow(net.engine, sender, m);
        EXPECT_TRUE(net.engine.run(10'000'000));
        EXPECT_EQ(delivered, 128);
        EXPECT_GT(net.protocol->stats().fuzzyGrabs.value(), 0u);
        EXPECT_GT(net.protocol->stats().tokenRotations.value(), 0u);
        return net.engine.now();
    };
    // RNG-free by construction: repeats are identical.
    EXPECT_EQ(run(), run());
}

// ---- AdaptiveMac properties ---------------------------------------

TEST(MacProtoAdaptive, BarrierStormTriggersTokenMode)
{
    const auto r = runTight(ConfigKind::WiSyncNoT, MacKind::Adaptive, 16,
                            10);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.macModeSwitches, 1u);
    EXPECT_GT(r.macTokenWaits, 0u);
}

TEST(MacProtoAdaptive, HugeWindowNeverSwitchesAndMatchesBrsExactly)
{
    auto cfg = MachineConfig::make(ConfigKind::WiSyncNoT, 16);
    cfg.wireless.macKind = MacKind::Adaptive;
    cfg.wireless.adaptWindowEvents = 1'000'000'000;
    Machine adaptive(cfg);
    wisync::workloads::TightLoopParams p;
    p.iterations = 8;
    const auto a = wisync::workloads::runTightLoopOn(adaptive, p);

    Machine brs(MachineConfig::make(ConfigKind::WiSyncNoT, 16));
    const auto b = wisync::workloads::runTightLoopOn(brs, p);

    EXPECT_EQ(a.macModeSwitches, 0u);
    EXPECT_TRUE(wisync::workloads::bitIdentical(a, b));
}

TEST(MacProtoAdaptive, TryAcquireDelegatesToActivePolicy)
{
    // In BRS mode (the initial policy) the frameless fast path is
    // granted immediately, recording the granting sub-policy exactly
    // as acquire() would...
    WirelessConfig cfg;
    cfg.macKind = MacKind::Adaptive;
    ProtoNet net(4, cfg);
    EXPECT_TRUE(net.protocol->tryAcquire(2));
    net.protocol->release(2, true);
    // ...while the token family keeps the default refusal, leaving no
    // trace (its senders always take the coroutine path).
    WirelessConfig tcfg;
    tcfg.macKind = MacKind::Token;
    ProtoNet tnet(4, tcfg);
    EXPECT_FALSE(tnet.protocol->tryAcquire(2));
}

TEST(MacProtoAdaptive, BrsModeSendsTakeTheFastPath)
{
    auto cfg = MachineConfig::make(ConfigKind::WiSyncNoT, 16);
    cfg.wireless.macKind = MacKind::Adaptive;
    cfg.setFastpath(true);
    Machine m(cfg);
    wisync::workloads::TightLoopParams p;
    p.iterations = 4;
    (void)wisync::workloads::runTightLoopOn(m, p);
    // Before tryAcquire delegated to the active sub-policy, adaptive
    // machines could never arm the frameless broadcast path.
    EXPECT_GT(m.bm()->dataChannel().stats().fastpathHits.value(), 0u);
}

// ---- Machine-level contracts for every MacKind --------------------

class MacProtoMachine : public ::testing::TestWithParam<MacKind>
{};

INSTANTIATE_TEST_SUITE_P(Kinds, MacProtoMachine,
                         ::testing::ValuesIn(kAllMacs));

TEST_P(MacProtoMachine, DeterministicAcrossRepeats)
{
    const auto a = runTight(ConfigKind::WiSyncNoT, GetParam(), 16, 6);
    const auto b = runTight(ConfigKind::WiSyncNoT, GetParam(), 16, 6);
    ASSERT_TRUE(a.completed);
    EXPECT_TRUE(wisync::workloads::bitIdentical(a, b));
}

TEST_P(MacProtoMachine, FreshVsResetReuseIdentical)
{
    const auto fresh = runTight(ConfigKind::WiSync, GetParam(), 16, 5);
    Machine persistent(MachineConfig::make(ConfigKind::WiSync, 16));
    const auto reused =
        runTight(ConfigKind::WiSync, GetParam(), 16, 5, &persistent);
    ASSERT_TRUE(fresh.completed);
    EXPECT_TRUE(wisync::workloads::bitIdentical(fresh, reused));
}

TEST_P(MacProtoMachine, ToneConfigCompletesWithEveryMac)
{
    // The tone-barrier announcement path rides the same MAC; the full
    // WiSync config must complete under every protocol.
    const auto r = runTight(ConfigKind::WiSync, GetParam(), 32, 4);
    EXPECT_TRUE(r.completed);
}

TEST(MacProtoMachine, ResetSwapsProtocolsAndMatchesFreshRuns)
{
    // One machine cycles through all four protocols (exercising the
    // rebuild-on-kind-change path in BmSystem::reset) and back; every
    // leg must match a fresh machine bit-for-bit.
    Machine persistent(MachineConfig::make(ConfigKind::WiSyncNoT, 16));
    const MacKind sequence[] = {MacKind::Token, MacKind::FuzzyToken,
                                MacKind::Adaptive, MacKind::Brs,
                                MacKind::Token, MacKind::Brs};
    for (const auto mac : sequence) {
        const auto fresh = runTight(ConfigKind::WiSyncNoT, mac, 16, 5);
        const auto reused =
            runTight(ConfigKind::WiSyncNoT, mac, 16, 5, &persistent);
        ASSERT_TRUE(fresh.completed);
        EXPECT_TRUE(wisync::workloads::bitIdentical(fresh, reused))
            << "mac=" << toString(mac);
        EXPECT_EQ(persistent.bm()->macProtocol().kind(), mac);
    }
}

TEST(MacProtoMachine, TelemetryRegistersInStatSet)
{
    auto cfg = MachineConfig::make(ConfigKind::WiSyncNoT, 16);
    cfg.wireless.macKind = MacKind::Token;
    Machine m(cfg);
    wisync::workloads::TightLoopParams p;
    p.iterations = 4;
    (void)wisync::workloads::runTightLoopOn(m, p);

    wisync::sim::StatSet set;
    m.bm()->macProtocol().registerStats(set, "mac");
    EXPECT_GT(set.counterValue("mac.acquires"), 0u);
    EXPECT_GT(set.counterValue("mac.token_rotations"), 0u);
    EXPECT_EQ(set.counterValue("mac.backoff_cycles"), 0u);
    EXPECT_EQ(set.counterValue("mac.nonexistent"), 0u);
}

TEST(MacProtoParallelSweep, GridIsThreadCountIndependent)
{
    wisync::workloads::TightLoopParams params;
    params.iterations = 3;
    wisync::harness::ParallelSweep sweep;
    for (const auto mac : kAllMacs) {
        for (const std::uint32_t cores : {8u, 16u}) {
            auto cfg = MachineConfig::make(ConfigKind::WiSyncNoT, cores);
            cfg.wireless.macKind = mac;
            sweep.add(cfg, [params](Machine &m) {
                return wisync::workloads::runTightLoopOn(m, params);
            });
        }
    }
    const auto serial = sweep.run(1);
    for (const unsigned threads : {2u, 4u}) {
        const auto parallel = sweep.run(threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            EXPECT_TRUE(
                wisync::workloads::bitIdentical(serial[i], parallel[i]))
                << "point " << i << " threads " << threads;
    }
}

} // namespace
