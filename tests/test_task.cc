/**
 * @file
 * Unit tests for the coroutine Task type.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "coro/frame_pool.hh"
#include "coro/primitives.hh"
#include "coro/task.hh"
#include "sim/engine.hh"

namespace {

using wisync::coro::delay;
using wisync::coro::spawnDetached;
using wisync::coro::spawnFn;
using wisync::coro::spawnNow;
using wisync::coro::Task;
using wisync::sim::Engine;

Task<int>
answer()
{
    co_return 42;
}

Task<int>
addOne(Task<int> inner)
{
    const int v = co_await inner;
    co_return v + 1;
}

TEST(Task, ReturnsValueThroughAwaitChain)
{
    Engine eng;
    int result = 0;
    spawnNow(eng, [&]() -> Task<void> {
        result = co_await addOne(answer());
    });
    eng.run();
    EXPECT_EQ(result, 43);
}

TEST(Task, LazyUntilAwaited)
{
    Engine eng;
    bool started = false;
    auto child = [&started]() -> Task<void> {
        started = true;
        co_return;
    };
    EXPECT_FALSE(started);
    spawnNow(eng, child);
    EXPECT_FALSE(started); // still queued on the engine
    eng.run();
    EXPECT_TRUE(started);
}

Task<int>
nest(int depth)
{
    if (depth == 0)
        co_return 0;
    co_return 1 + co_await nest(depth - 1);
}

TEST(Task, DeepChainUsesConstantStack)
{
    Engine eng;
    // A 50k-deep child chain would overflow the host stack without
    // symmetric transfer. Under AddressSanitizer the transfer cannot
    // be a real tail call (ASan's function-exit instrumentation blocks
    // sibling-call optimization), so the chain degenerates to host
    // recursion; keep the depth stack-safe there.
#if defined(__SANITIZE_ADDRESS__)
    constexpr int kDepth = 100;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    constexpr int kDepth = 100;
#else
    constexpr int kDepth = 50000;
#endif
#else
    constexpr int kDepth = 50000;
#endif
    int result = -1;
    spawnNow(eng, [&result]() -> Task<void> {
        result = co_await nest(kDepth);
    });
    eng.run();
    EXPECT_EQ(result, kDepth);
}

TEST(Task, DelaysAccumulateTime)
{
    Engine eng;
    spawnNow(eng, [&eng]() -> Task<void> {
        co_await delay(eng, 10);
        co_await delay(eng, 5);
        co_await delay(eng, 0); // zero-delay must not hang
    });
    eng.run();
    EXPECT_EQ(eng.now(), 15u);
}

Task<int>
thrower()
{
    throw std::runtime_error("boom");
    co_return 0;
}

TEST(Task, ExceptionPropagatesToAwaiter)
{
    Engine eng;
    bool caught = false;
    spawnNow(eng, [&caught]() -> Task<void> {
        try {
            co_await thrower();
        } catch (const std::runtime_error &) {
            caught = true;
        }
    });
    eng.run();
    EXPECT_TRUE(caught);
}

Task<void>
delayBody(Engine &eng, wisync::sim::Cycle n)
{
    co_await delay(eng, n);
}

TEST(Task, CompletionCallbackFires)
{
    Engine eng;
    bool done = false;
    spawnDetached(eng, delayBody(eng, 3), [&] { done = true; });
    eng.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(eng.now(), 3u);
}

TEST(Task, SpawnDelayStartsLater)
{
    Engine eng;
    wisync::sim::Cycle started_at = 0;
    spawnFn(eng, 100, [&]() -> Task<void> {
        started_at = eng.now();
        co_return;
    });
    eng.run();
    EXPECT_EQ(started_at, 100u);
}

TEST(Task, ParallelRootsInterleaveByTime)
{
    Engine eng;
    std::vector<int> order;
    auto body = [&eng, &order](int id, int step) -> Task<void> {
        for (int i = 0; i < 3; ++i) {
            co_await delay(eng, step);
            order.push_back(id);
        }
    };
    spawnNow(eng, body, 1, 10); // fires at 10, 20, 30
    spawnNow(eng, body, 2, 15); // fires at 15, 30, 45
    eng.run();
    // At cycle 30 task 2's event was scheduled (at cycle 15) before
    // task 1's (at cycle 20), so task 2 runs first.
    EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

TEST(Task, FramesAreFreedWhenEngineDiesBeforeTheSpawnCycle)
{
    // A root spawned into the future owns its callable and arguments;
    // destroying the engine before the spawn cycle must release them
    // (the detached-root registry destroys the suspended frame).
    const auto live_before = wisync::coro::framePool().liveFrames();
    auto sentinel = std::make_shared<int>(7);
    std::weak_ptr<int> watch = sentinel;
    {
        Engine eng;
        spawnFn(eng, 1000,
                [](std::shared_ptr<int> keep) -> Task<void> {
                    (void)*keep;
                    co_return;
                },
                std::move(sentinel));
        EXPECT_FALSE(watch.expired()); // alive inside the frame
        // Engine destroyed without ever running.
    }
    EXPECT_TRUE(watch.expired());
    EXPECT_EQ(wisync::coro::framePool().liveFrames(), live_before);
}

TEST(Task, FramesAreFreedWhenEngineDiesMidAwait)
{
    // Destroy the engine while a parent/child chain is suspended on a
    // delay: the registry destroys the root, the root's frame destroys
    // the child Task, and every pooled frame returns to the pool.
    const auto live_before = wisync::coro::framePool().liveFrames();
    auto sentinel = std::make_shared<int>(7);
    std::weak_ptr<int> watch = sentinel;
    {
        Engine eng;
        spawnFn(eng, 0,
                [&eng](std::shared_ptr<int> keep) -> Task<void> {
                    (void)keep;
                    co_await delayBody(eng, 1'000'000);
                },
                std::move(sentinel));
        eng.run(10);
        EXPECT_FALSE(watch.expired()); // suspended mid-await
    }
    EXPECT_TRUE(watch.expired());
    EXPECT_EQ(wisync::coro::framePool().liveFrames(), live_before);
}

TEST(Task, RootRegistryTracksLiveRoots)
{
    Engine eng;
    EXPECT_EQ(eng.liveRootCount(), 0u);
    spawnNow(eng, [&eng]() -> Task<void> { co_await delay(eng, 5); });
    spawnNow(eng, [&eng]() -> Task<void> { co_await delay(eng, 9); });
    EXPECT_EQ(eng.liveRootCount(), 2u);
    eng.run(5);
    EXPECT_EQ(eng.liveRootCount(), 1u); // first completed, released
    eng.run();
    EXPECT_EQ(eng.liveRootCount(), 0u);
}

TEST(Task, ArgumentsAreCopiedIntoFrame)
{
    Engine eng;
    std::vector<int> seen;
    auto body = [&eng, &seen](std::vector<int> data) -> Task<void> {
        co_await delay(eng, 5);
        // `data` must still be alive after the spawning scope ended.
        for (int v : data)
            seen.push_back(v);
    };
    {
        std::vector<int> local{7, 8, 9};
        spawnNow(eng, body, local);
        // `local` destroyed before the coroutine body runs.
    }
    eng.run();
    EXPECT_EQ(seen, (std::vector<int>{7, 8, 9}));
}

} // namespace
