/**
 * @file
 * Persistence and daemon tests: CacheStore's durable file format
 * (atomic save, record-by-record salvage of bit-flipped / truncated /
 * version-mismatched files, streaming appender), and the Daemon serve
 * loop's containment contract (per-line errors, bounded request
 * size, warm cache across lines and across daemon lifetimes, forced
 * fingerprint-collision warnings).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/machine_config.hh"
#include "service/cache_store.hh"
#include "service/config_codec.hh"
#include "service/daemon.hh"
#include "service/result_cache.hh"
#include "service/sweep_service.hh"
#include "workloads/kernel_result.hh"

namespace {

using wisync::core::ConfigKind;
using wisync::core::MachineConfig;
using wisync::service::CacheStore;
using wisync::service::ConfigCodec;
using wisync::service::Daemon;
using wisync::service::DaemonOptions;
using wisync::service::RequestPoint;
using wisync::service::ResultCache;
using wisync::service::ServiceOutcome;
using wisync::service::SweepRequest;
using wisync::service::SweepService;
using wisync::service::writeFileAtomic;
using wisync::workloads::bitIdentical;
using wisync::workloads::KernelResult;

// ---- helpers ----------------------------------------------------

/** A unique-per-process scratch path, removed on scope exit. */
struct TempFile
{
    explicit TempFile(const std::string &stem)
        : path(::testing::TempDir() + "wisync_" + stem + "_" +
               std::to_string(static_cast<long long>(::getpid())) +
               ".bin")
    {
        std::remove(path.c_str());
    }
    ~TempFile()
    {
        std::remove(path.c_str());
        std::remove((path + ".tmp").c_str());
    }
    std::string path;
};

std::string
readRaw(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

void
writeRaw(const std::string &path, const std::string &data)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(data.data(), static_cast<std::streamsize>(data.size()));
    ASSERT_TRUE(bool(f)) << "cannot write " << path;
}

bool
fileExists(const std::string &path)
{
    return bool(std::ifstream(path));
}

RequestPoint
pointWithSeed(std::uint64_t seed)
{
    RequestPoint p;
    p.config = MachineConfig::make(ConfigKind::WiSync, 8);
    p.config.seed = seed;
    return p;
}

KernelResult
resultWithCycles(std::uint64_t cycles)
{
    KernelResult r;
    r.cycles = cycles;
    r.completed = true;
    return r;
}

/** A small real request (distinct seeds, no duplicates). */
SweepRequest
smallRequest(std::uint64_t seed_base = 1, std::size_t n = 3)
{
    SweepRequest request;
    for (std::size_t i = 0; i < n; ++i) {
        RequestPoint p;
        p.config = MachineConfig::make(ConfigKind::WiSync, 4);
        p.config.seed = seed_base + i;
        p.workload.tightLoop.iterations = 2;
        request.points.push_back(p);
    }
    return request;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::istringstream ss(text);
    for (std::string line; std::getline(ss, line);)
        lines.push_back(line);
    return lines;
}

// Independent re-implementation of the record framing, pinning the
// on-disk constants: these must never drift without a formatVersion
// bump, or old files would mis-parse instead of being rejected.
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001B3ull;
    }
    return h;
}

std::string
frameRecord(const std::string &payload)
{
    const auto putU32 = [](std::string &out, std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    };
    const auto putU64 = [](std::string &out, std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    };
    std::string out;
    const auto len = static_cast<std::uint32_t>(payload.size());
    putU32(out, len);
    putU32(out, (len * 0x9E3779B9u) ^ 0x57534352u);
    putU64(out, fnv1a(payload));
    out += payload;
    return out;
}

// ---- Persist: format + salvage ----------------------------------

TEST(Persist, OnDiskFramingConstantsAreStable)
{
    const std::string header = CacheStore::encodeHeader();
    ASSERT_EQ(header.size(), 16u);
    EXPECT_EQ(header.substr(0, 8), "WSCSTORE");

    const std::string record =
        CacheStore::encodeRecord(pointWithSeed(1), resultWithCycles(7));
    ASSERT_GT(record.size(), 16u);
    EXPECT_EQ(record, frameRecord(record.substr(16)));
}

TEST(Persist, SaveLoadRoundTripPreservesContentsAndRecency)
{
    TempFile file("roundtrip");
    const auto pa = pointWithSeed(1);
    const auto pb = pointWithSeed(2);
    const auto pc = pointWithSeed(3);

    ResultCache cache(3);
    cache.insert(pa, resultWithCycles(101));
    cache.insert(pb, resultWithCycles(102));
    cache.insert(pc, resultWithCycles(103));
    cache.lookup(pa); // refresh: b is now the coldest entry

    std::string error;
    ASSERT_TRUE(CacheStore::save(cache, file.path, &error)) << error;

    ResultCache loaded(3);
    const auto stats = CacheStore::load(loaded, file.path);
    EXPECT_TRUE(stats.fileFound);
    EXPECT_TRUE(stats.headerOk);
    EXPECT_FALSE(stats.versionMismatch);
    EXPECT_EQ(stats.loaded, 3u);
    EXPECT_EQ(stats.discarded, 0u);
    EXPECT_TRUE(stats.error.empty()) << stats.error;
    EXPECT_EQ(loaded.size(), 3u);

    // Recency replayed, not just contents: the next eviction must hit
    // b (the pre-save LRU), exactly as it would have in the original.
    loaded.insert(pointWithSeed(4), resultWithCycles(104));
    EXPECT_EQ(loaded.lookup(pb), nullptr);
    const auto *hit = loaded.lookup(pa);
    ASSERT_NE(hit, nullptr);
    EXPECT_TRUE(bitIdentical(*hit, resultWithCycles(101)));
    ASSERT_NE(loaded.lookup(pc), nullptr);
}

TEST(Persist, VersionMismatchRefusesTheWholeFile)
{
    TempFile file("version");
    std::string data = CacheStore::encodeHeader() +
                       CacheStore::encodeRecord(pointWithSeed(1),
                                                resultWithCycles(1));
    data[8] = static_cast<char>(data[8] ^ 0x5A); // version word
    writeRaw(file.path, data);

    ResultCache cache(4);
    const auto stats = CacheStore::load(cache, file.path);
    EXPECT_TRUE(stats.fileFound);
    EXPECT_TRUE(stats.headerOk);
    EXPECT_TRUE(stats.versionMismatch);
    EXPECT_EQ(stats.loaded, 0u);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(Persist, BadMagicLoadsNothing)
{
    TempFile file("magic");
    std::string data = CacheStore::encodeHeader() +
                       CacheStore::encodeRecord(pointWithSeed(1),
                                                resultWithCycles(1));
    data[0] = static_cast<char>(data[0] ^ 0xFF);
    writeRaw(file.path, data);

    ResultCache cache(4);
    const auto stats = CacheStore::load(cache, file.path);
    EXPECT_TRUE(stats.fileFound);
    EXPECT_FALSE(stats.headerOk);
    EXPECT_EQ(stats.loaded, 0u);
    EXPECT_FALSE(stats.error.empty());
}

TEST(Persist, TruncatedTailSalvagesThePrefix)
{
    TempFile file("truncate");
    const std::string header = CacheStore::encodeHeader();
    const std::string r1 =
        CacheStore::encodeRecord(pointWithSeed(1), resultWithCycles(1));
    const std::string r2 =
        CacheStore::encodeRecord(pointWithSeed(2), resultWithCycles(2));
    const std::string r3 =
        CacheStore::encodeRecord(pointWithSeed(3), resultWithCycles(3));

    // Cut inside r3's record header (a killed appender's tail).
    writeRaw(file.path, header + r1 + r2 + r3.substr(0, 7));
    ResultCache cache(8);
    auto stats = CacheStore::load(cache, file.path);
    EXPECT_EQ(stats.loaded, 2u);
    EXPECT_EQ(stats.discarded, 1u);
    EXPECT_EQ(cache.size(), 2u);

    // Cut inside r3's payload: framing says the record runs past EOF.
    writeRaw(file.path, header + r1 + r2 + r3.substr(0, r3.size() / 2));
    ResultCache cache2(8);
    stats = CacheStore::load(cache2, file.path);
    EXPECT_EQ(stats.loaded, 2u);
    EXPECT_EQ(stats.discarded, 1u);
    ASSERT_NE(cache2.lookup(pointWithSeed(2)), nullptr);
    EXPECT_EQ(cache2.lookup(pointWithSeed(3)), nullptr);
}

TEST(Persist, BitFlipIsolatesOneRecordAndSalvageContinues)
{
    TempFile file("bitflip");
    const std::string header = CacheStore::encodeHeader();
    const std::string r1 =
        CacheStore::encodeRecord(pointWithSeed(1), resultWithCycles(1));
    const std::string r2 =
        CacheStore::encodeRecord(pointWithSeed(2), resultWithCycles(2));
    const std::string r3 =
        CacheStore::encodeRecord(pointWithSeed(3), resultWithCycles(3));
    std::string data = header + r1 + r2 + r3;
    // Flip one payload byte of r2 (past its 16-byte record header):
    // the checksum must reject r2 alone while r3 still loads.
    data[header.size() + r1.size() + 16 + 5] ^= 0x10;
    writeRaw(file.path, data);

    ResultCache cache(8);
    const auto stats = CacheStore::load(cache, file.path);
    EXPECT_EQ(stats.loaded, 2u);
    EXPECT_EQ(stats.discarded, 1u);
    EXPECT_NE(stats.error.find("checksum"), std::string::npos)
        << stats.error;
    ASSERT_NE(cache.lookup(pointWithSeed(1)), nullptr);
    EXPECT_EQ(cache.lookup(pointWithSeed(2)), nullptr);
    ASSERT_NE(cache.lookup(pointWithSeed(3)), nullptr);
}

TEST(Persist, FramingCorruptionAbandonsTheRest)
{
    TempFile file("framing");
    const std::string header = CacheStore::encodeHeader();
    const std::string r1 =
        CacheStore::encodeRecord(pointWithSeed(1), resultWithCycles(1));
    const std::string r2 =
        CacheStore::encodeRecord(pointWithSeed(2), resultWithCycles(2));
    std::string data = header + r1 + r2;
    // Corrupt r2's length field: the frame check fails, the length
    // cannot be trusted, so everything from r2 on is one opaque blob.
    data[header.size() + r1.size()] ^= 0x01;
    writeRaw(file.path, data);

    ResultCache cache(8);
    const auto stats = CacheStore::load(cache, file.path);
    EXPECT_EQ(stats.loaded, 1u);
    EXPECT_EQ(stats.discarded, 1u);
    EXPECT_NE(stats.error.find("framing"), std::string::npos)
        << stats.error;
}

TEST(Persist, StoredFingerprintMustMatchTheRecomputedOne)
{
    TempFile file("fpmismatch");
    const std::string record =
        CacheStore::encodeRecord(pointWithSeed(1), resultWithCycles(5));
    // Corrupt the stored fingerprint but re-frame so length and
    // checksum are valid: only the semantic cross-check can catch it.
    std::string payload = record.substr(16);
    payload[0] = static_cast<char>(payload[0] ^ 0x01);
    writeRaw(file.path, CacheStore::encodeHeader() + frameRecord(payload));

    ResultCache cache(4);
    const auto stats = CacheStore::load(cache, file.path);
    EXPECT_EQ(stats.loaded, 0u);
    EXPECT_EQ(stats.discarded, 1u);
    EXPECT_NE(stats.error.find("fingerprint mismatch"), std::string::npos)
        << stats.error;
}

TEST(Persist, AppenderStreamsLoadableRecordsAcrossReopens)
{
    TempFile file("appender");
    {
        CacheStore::Appender ap;
        std::string error;
        ASSERT_TRUE(ap.open(file.path, &error)) << error;
        EXPECT_TRUE(ap.append(pointWithSeed(1), resultWithCycles(1)));
        EXPECT_TRUE(ap.append(pointWithSeed(2), resultWithCycles(2)));
    }
    {
        // Reopen appends after the existing records — the header must
        // not be written twice.
        CacheStore::Appender ap;
        ASSERT_TRUE(ap.open(file.path));
        EXPECT_TRUE(ap.append(pointWithSeed(3), resultWithCycles(3)));
    }
    ResultCache cache(8);
    auto stats = CacheStore::load(cache, file.path);
    EXPECT_EQ(stats.loaded, 3u);
    EXPECT_EQ(stats.discarded, 0u);

    // A kill mid-append leaves a partial record: salvage keeps the
    // three whole ones and counts exactly one casualty.
    writeRaw(file.path, readRaw(file.path) + "\x30\x00\x00");
    ResultCache cache2(8);
    stats = CacheStore::load(cache2, file.path);
    EXPECT_EQ(stats.loaded, 3u);
    EXPECT_EQ(stats.discarded, 1u);
}

TEST(Persist, WarmFromDiskBatchIsByteIdenticalAndFullyCached)
{
    TempFile file("warm");
    const auto request = smallRequest();
    SweepService reference(0);
    const auto expect = reference.runBatch(request, 1);

    {
        SweepService svc(32);
        svc.runBatch(request, 2);
        std::string error;
        ASSERT_TRUE(CacheStore::save(svc.cache(), file.path, &error))
            << error;
    }

    SweepService warm(32);
    const auto stats = CacheStore::load(warm.cache(), file.path);
    EXPECT_EQ(stats.loaded, request.points.size());
    const auto got = warm.runBatch(request, 2);
    EXPECT_EQ(warm.lastBatch().simulated, 0u);
    EXPECT_EQ(warm.lastBatch().cacheHits, request.points.size());
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(got[i].ok);
        EXPECT_TRUE(got[i].cacheHit);
        EXPECT_TRUE(bitIdentical(got[i].result, expect[i].result))
            << "point " << i;
        EXPECT_EQ(got[i].fingerprint, expect[i].fingerprint);
    }
}

TEST(Persist, WriteFileAtomicReplacesWholeFilesAndFailsCleanly)
{
    TempFile file("atomic");
    std::string error;
    ASSERT_TRUE(writeFileAtomic(file.path, "hello", &error)) << error;
    EXPECT_EQ(readRaw(file.path), "hello");
    ASSERT_TRUE(writeFileAtomic(file.path, "world", &error)) << error;
    EXPECT_EQ(readRaw(file.path), "world");
    EXPECT_FALSE(fileExists(file.path + ".tmp"));

    EXPECT_FALSE(writeFileAtomic(
        "/nonexistent-wisync-dir/impossible.bin", "x", &error));
    EXPECT_FALSE(error.empty());
}

// ---- Daemon: the serve loop -------------------------------------

TEST(Daemon, ServeAnswersEveryLineAndStaysWarmAcrossLines)
{
    DaemonOptions opt;
    opt.threads = 2;
    Daemon daemon(opt);
    const std::string line =
        ConfigCodec::serializeRequest(smallRequest());
    std::istringstream in(line + "\n" + line + "\n");
    std::ostringstream out;
    EXPECT_EQ(daemon.serve(in, out), 2u);

    const auto lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"results\""), std::string::npos);
    // The daemon owns one SweepService: the second request answers
    // entirely from the cache the first one warmed.
    EXPECT_NE(lines[1].find("\"simulated\":0"), std::string::npos);
    EXPECT_EQ(daemon.service().lastBatch().cacheHits, 3u);
}

TEST(Daemon, BadLineAnswersAnErrorAndTheLoopContinues)
{
    DaemonOptions opt;
    opt.threads = 1;
    Daemon daemon(opt);
    const std::string line =
        ConfigCodec::serializeRequest(smallRequest());
    std::istringstream in(
        "this is not json\n"
        R"({"points":[{"config":{"kind":"Nope","cores":4},)"
        R"("workload":{"kind":"tightloop"}}]})"
        "\n" +
        line + "\n");
    std::ostringstream out;
    EXPECT_EQ(daemon.serve(in, out), 3u);

    const auto lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_NE(lines[0].find("\"error\""), std::string::npos);
    EXPECT_NE(lines[1].find("\"error\""), std::string::npos);
    EXPECT_NE(lines[1].find("points[0]"), std::string::npos)
        << "a strictness error must name the offending field path";
    EXPECT_NE(lines[2].find("\"results\""), std::string::npos);
}

TEST(Daemon, OversizedLineIsRejectedBeforeParsingAndTheLoopContinues)
{
    const std::string line =
        ConfigCodec::serializeRequest(smallRequest());
    DaemonOptions opt;
    opt.threads = 1;
    opt.maxRequestBytes = line.size() + 1;
    Daemon daemon(opt);

    const std::string oversized(line.size() + 100, 'x');
    std::istringstream in(oversized + "\n" + line + "\n");
    std::ostringstream out;
    EXPECT_EQ(daemon.serve(in, out), 2u);

    const auto lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[0].find("\"error\""), std::string::npos);
    EXPECT_NE(lines[0].find("exceeds"), std::string::npos);
    EXPECT_NE(lines[1].find("\"results\""), std::string::npos);
}

TEST(Daemon, EmptyLinesAreIgnored)
{
    DaemonOptions opt;
    opt.threads = 1;
    Daemon daemon(opt);
    const std::string line =
        ConfigCodec::serializeRequest(smallRequest(1, 1));
    std::istringstream in("\n\n" + line + "\n\n");
    std::ostringstream out;
    EXPECT_EQ(daemon.serve(in, out), 1u);
    EXPECT_EQ(splitLines(out.str()).size(), 1u);
}

TEST(Daemon, ForcedCollisionWarnsAndStaysExact)
{
    DaemonOptions opt;
    opt.threads = 1;
    // Degenerate hasher: every point maps to the same cache key, so
    // the second (different) point must take the collision path.
    opt.hasherOverride = [](const RequestPoint &) { return 42ull; };
    Daemon daemon(opt);
    std::vector<std::string> warnings;
    daemon.setWarningSink(
        [&](const std::string &message) { warnings.push_back(message); });

    const std::string line1 =
        ConfigCodec::serializeRequest(smallRequest(1, 1));
    const std::string line2 =
        ConfigCodec::serializeRequest(smallRequest(2, 1));
    std::istringstream in(line1 + "\n" + line2 + "\n");
    std::ostringstream out;
    EXPECT_EQ(daemon.serve(in, out), 2u);

    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings[0].find("collision"), std::string::npos);

    // Exactness beats hash trust: the colliding point degrades to a
    // counted miss and simulates — never answers the other's result.
    const auto lines = splitLines(out.str());
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_NE(lines[1].find("\"collisions\":1"), std::string::npos);
    EXPECT_NE(lines[1].find("\"errors\":0"), std::string::npos);
    EXPECT_NE(lines[1].find("\"simulated\":1"), std::string::npos);
}

TEST(Daemon, OneShotHandleRequestReportsSuccess)
{
    DaemonOptions opt;
    opt.threads = 1;
    Daemon daemon(opt);
    bool ok = false;
    const std::string response = daemon.handleRequest(
        ConfigCodec::serializeRequest(smallRequest(1, 1)), &ok);
    EXPECT_TRUE(ok);
    EXPECT_NE(response.find("\"results\""), std::string::npos);

    const std::string bad = daemon.handleRequest("garbage", &ok);
    EXPECT_FALSE(ok);
    EXPECT_NE(bad.find("\"error\""), std::string::npos);
}

TEST(Daemon, CacheFileWarmsAcrossDaemonLifetimes)
{
    TempFile file("daemon_cache");
    const std::string line =
        ConfigCodec::serializeRequest(smallRequest());
    DaemonOptions opt;
    opt.threads = 1;
    opt.cacheFile = file.path;

    {
        Daemon daemon(opt);
        std::string error;
        const auto stats = daemon.start(&error);
        EXPECT_TRUE(error.empty()) << error;
        EXPECT_EQ(stats.loaded, 0u);
        std::istringstream in(line + "\n");
        std::ostringstream out;
        EXPECT_EQ(daemon.serve(in, out), 1u);
    } // every insert was appended + flushed; nothing to save on exit

    Daemon daemon(opt);
    std::string error;
    const auto stats = daemon.start(&error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(stats.loaded, 3u);
    EXPECT_EQ(stats.discarded, 0u);

    std::istringstream in(line + "\n");
    std::ostringstream out;
    EXPECT_EQ(daemon.serve(in, out), 1u);
    EXPECT_NE(out.str().find("\"simulated\":0"), std::string::npos);
    EXPECT_EQ(daemon.service().lastBatch().cacheHits, 3u);
}

} // namespace
