/**
 * @file
 * Tests for the Gilbert–Elliott burst model, the per-frequency-channel
 * loss profiles and the lossy retrying ChipBridge.
 *
 * Five layers:
 *  - BurstParams/BurstState math: stationary bad fraction, equal-mean
 *    parametrization, one-draw-per-step determinism;
 *  - channel-level burst semantics on the bare engine + channel
 *    harness (the deterministic alternating chain, SNR-table
 *    composition, reset clearing, the ack/retry invariant under
 *    bursty drops, burst-off byte-identity to the golden run);
 *  - per-channel loss profiles: FrequencyPlan::channelLossDb folded
 *    into the per-chip attenuation matrices (chips sharing a slot
 *    share its physics);
 *  - the lossy ChipBridge: exact retry/give-up/re-issue timing on the
 *    deterministic alternating chain, the drop-accounting invariant,
 *    never-lost delivery, machine-level bridge loss at 2–4 chips and
 *    the ideal-bridge identity;
 *  - describe() labels: bridge knobs always print on multi-chip
 *    configs (the PR's bugfix), burst/profile/bridge-loss knobs print
 *    only off their defaults.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bm/bm_system.hh"
#include "core/machine.hh"
#include "coro/primitives.hh"
#include "noc/chip_bridge.hh"
#include "sim/engine.hh"
#include "sim/rng.hh"
#include "wireless/burst.hh"
#include "wireless/data_channel.hh"
#include "wireless/frequency_plan.hh"
#include "wireless/mac/mac_protocol.hh"
#include "wireless/rf_model.hh"
#include "workloads/kernel_result.hh"
#include "workloads/tight_loop.hh"

namespace {

using wisync::bm::BmConfig;
using wisync::bm::BmSystem;
using wisync::core::ConfigKind;
using wisync::core::Machine;
using wisync::core::MachineConfig;
using wisync::coro::spawnNow;
using wisync::coro::Task;
using wisync::noc::BridgeConfig;
using wisync::noc::ChipBridge;
using wisync::sim::BmAddr;
using wisync::sim::Cycle;
using wisync::sim::Engine;
using wisync::sim::Rng;
using wisync::wireless::BurstParams;
using wisync::wireless::BurstState;
using wisync::wireless::DataChannel;
using wisync::wireless::FrequencyPlan;
using wisync::wireless::Mac;
using wisync::wireless::MacKind;
using wisync::wireless::MacProtocol;
using wisync::wireless::SendOutcome;
using wisync::wireless::WirelessConfig;
using wisync::workloads::KernelResult;

/** The deterministic chain: alternates Bad (always drop) / Good
 *  (always deliver), starting with a drop — every uniform draw is
 *  < 1, so the transitions fire regardless of the RNG values. */
BurstParams
alternatingChain()
{
    BurstParams p;
    p.enabled = true;
    p.goodLossPct = 0.0;
    p.badLossPct = 100.0;
    p.pGoodToBad = 1.0;
    p.pBadToGood = 1.0;
    return p;
}

/** Bare harness with a configurable channel (mirrors test_loss.cc). */
struct BurstyNet
{
    BurstyNet(std::uint32_t nodes, const WirelessConfig &cfg)
        : channel(engine, cfg),
          protocol(wisync::wireless::makeMacProtocol(cfg, engine, channel,
                                                     nodes))
    {
        Rng seeder(4242);
        for (std::uint32_t n = 0; n < nodes; ++n)
            macs.push_back(std::make_unique<Mac>(engine, channel,
                                                 *protocol, n,
                                                 seeder.fork()));
    }

    Engine engine;
    DataChannel channel;
    std::unique_ptr<MacProtocol> protocol;
    std::vector<std::unique_ptr<Mac>> macs;
};

/** TightLoop on a machine with an arbitrary config tweak. */
KernelResult
runTweaked(ConfigKind kind, std::uint32_t cores, std::uint32_t iterations,
           const std::function<void(MachineConfig &)> &tweak,
           Machine *reuse = nullptr)
{
    auto cfg = MachineConfig::make(kind, cores);
    if (tweak)
        tweak(cfg);
    std::unique_ptr<Machine> owned;
    if (reuse != nullptr)
        reuse->reset(cfg);
    else
        owned = std::make_unique<Machine>(cfg);
    Machine &m = reuse != nullptr ? *reuse : *owned;
    wisync::workloads::TightLoopParams params;
    params.iterations = iterations;
    params.runLimit = 40'000'000;
    return wisync::workloads::runTightLoopOn(m, params);
}

// ---------------------------------------------------------------------
// BurstParams / BurstState math.

TEST(BurstParams, StationaryFractionAndMeanLoss)
{
    BurstParams p;
    p.enabled = true;
    p.goodLossPct = 1.0;
    p.badLossPct = 50.0;
    p.pGoodToBad = 0.1;
    p.pBadToGood = 0.3;
    EXPECT_DOUBLE_EQ(p.badFraction(), 0.25);
    EXPECT_DOUBLE_EQ(p.meanLossPct(), 1.0 * 0.75 + 50.0 * 0.25);
    // Degenerate: no transitions at all means the chain never leaves
    // Good, so the stationary bad fraction is 0 by convention.
    BurstParams frozen;
    EXPECT_DOUBLE_EQ(frozen.badFraction(), 0.0);
}

TEST(BurstParams, FromMeanHitsTheRequestedAverageLoss)
{
    for (const double mean : {1.0, 5.0, 20.0}) {
        for (const double len : {1.0, 4.0, 16.0}) {
            const auto p = BurstParams::fromMean(mean, len);
            EXPECT_TRUE(p.enabled);
            EXPECT_TRUE(p.lossy());
            EXPECT_NEAR(p.meanLossPct(), mean, 1e-9)
                << "mean " << mean << " len " << len;
            EXPECT_NEAR(1.0 / p.pBadToGood, len, 1e-9);
        }
    }
    // Burst length 1 degenerates to an i.i.d. draw at the mean rate:
    // leaving Bad is certain, so consecutive drops are uncorrelated.
    EXPECT_DOUBLE_EQ(BurstParams::fromMean(30.0, 1.0).pBadToGood, 1.0);
}

TEST(BurstParams, LossyRequiresAReachableLossState)
{
    BurstParams p;
    EXPECT_FALSE(p.lossy()); // disabled
    p.enabled = true;
    EXPECT_FALSE(p.lossy()); // enabled but Bad is unreachable
    p.pGoodToBad = 0.1;
    EXPECT_TRUE(p.lossy()); // Bad reachable and 100% lossy
    p.badLossPct = 0.0;
    EXPECT_FALSE(p.lossy()); // both states clean
    p.goodLossPct = 2.0;
    EXPECT_TRUE(p.lossy()); // Good itself drops
}

TEST(BurstState, OneDrawPerStepAndDeterministicReplay)
{
    const auto p = BurstParams::fromMean(20.0, 4.0);
    Rng a(7), b(7);
    BurstState sa, sb;
    for (int i = 0; i < 1000; ++i)
        EXPECT_DOUBLE_EQ(sa.step(p, a), sb.step(p, b)) << "step " << i;
    // Exactly one draw per step: both streams stay in lockstep.
    EXPECT_EQ(a.next(), b.next());
}

TEST(BurstState, SojournTimesMatchTheParametrization)
{
    // Mean burst length 1/pBadToGood, long-run loss near the mean.
    const auto p = BurstParams::fromMean(20.0, 5.0);
    Rng rng(123);
    BurstState s;
    int bad_steps = 0;
    const int kSteps = 200'000;
    for (int i = 0; i < kSteps; ++i)
        if (s.step(p, rng) > 0.5)
            ++bad_steps;
    const double frac = static_cast<double>(bad_steps) / kSteps;
    EXPECT_NEAR(frac, 0.2, 0.01);
}

// ---------------------------------------------------------------------
// Channel-level burst semantics.

TEST(BurstChannel, DisabledChainDrawsNothing)
{
    Engine engine;
    WirelessConfig cfg;
    // Odd knob settings with the gate off: dead state.
    cfg.burst.goodLossPct = 7.0;
    cfg.burst.pGoodToBad = 0.5;
    DataChannel channel(engine, cfg);
    EXPECT_FALSE(channel.lossy());
    EXPECT_FALSE(cfg.burst.lossy());
}

TEST(BurstChannel, EnabledChainArmsTheLossMachinery)
{
    Engine engine;
    WirelessConfig cfg;
    cfg.burst = BurstParams::fromMean(10.0, 4.0);
    DataChannel channel(engine, cfg);
    EXPECT_TRUE(channel.lossy());
    // reset to the ideal config disarms and clears the chain states.
    channel.reset(WirelessConfig{});
    EXPECT_FALSE(channel.lossy());
    EXPECT_FALSE(channel.burstBad(0));
}

TEST(BurstChannel, AlternatingChainDropsExactlyEveryOtherSend)
{
    WirelessConfig cfg;
    cfg.burst = alternatingChain();
    cfg.maxRetries = 8;
    cfg.ackTimeoutCycles = 4;
    cfg.retryBackoffMaxExp = 1;
    BurstyNet net(2, cfg);
    Cycle done = 0;
    spawnNow(net.engine, [&]() -> Task<void> {
        co_await net.macs[0]->send(false, [] {});
        done = net.engine.now();
    });
    ASSERT_TRUE(net.engine.run(10'000));
    // tx 0..5 enters Bad -> drop; ack 4 + backoff 2 -> retransmit at
    // 11; tx 11..16 leaves Bad -> delivered at 16.
    EXPECT_EQ(done, 16u);
    EXPECT_EQ(net.channel.stats().messages.value(), 2u);
    EXPECT_EQ(net.channel.stats().drops.value(), 1u);
    const auto &s = net.protocol->stats();
    EXPECT_EQ(s.ackTimeouts.value(), 1u);
    EXPECT_EQ(s.retransmits.value(), 1u);
    EXPECT_EQ(s.giveUps.value(), 0u);
    // After the delivering (Good-state) transmission the chain sits in
    // Good, visible through the introspection hook.
    EXPECT_FALSE(net.channel.burstBad(0));
}

TEST(BurstChannel, PerTransmitterChainsAreIndependent)
{
    WirelessConfig cfg;
    cfg.burst = alternatingChain();
    BurstyNet net(4, cfg);
    // Node 0 transmits once (entering Bad); node 1 never transmits, so
    // its chain must still be in the initial Good state.
    spawnNow(net.engine, [&]() -> Task<void> {
        co_await net.macs[0]->send(false, [] {});
    });
    ASSERT_TRUE(net.engine.run(10'000));
    EXPECT_FALSE(net.channel.burstBad(1));
    EXPECT_GE(net.channel.stats().drops.value(), 1u);
}

TEST(BurstChannel, SnrTableComposesWithTheChainState)
{
    Engine engine;
    WirelessConfig cfg;
    cfg.burst = alternatingChain();
    cfg.burst.badLossPct = 50.0;
    DataChannel channel(engine, cfg);
    channel.setDropTable({0.5}, {0.5});
    // The chain replaces only the uniform lossPct knob; the SNR table
    // is an independent corruption source, so in the Bad state the
    // composed drop probability is 1 - 0.5 * 0.5. (Probed indirectly:
    // dropProbability covers the i.i.d. path and must ignore burst.)
    EXPECT_DOUBLE_EQ(channel.dropProbability(0, false), 0.5);
}

TEST(BurstChannel, InvariantHoldsUnderRandomBurstLoss)
{
    WirelessConfig cfg;
    cfg.burst = BurstParams::fromMean(30.0, 4.0);
    BurstyNet net(8, cfg);
    int delivered = 0, gaveup = 0;
    auto sender = [&](int mac) -> Task<void> {
        for (int i = 0; i < 5; ++i) {
            const auto out =
                co_await net.macs[static_cast<std::size_t>(mac)]->send(
                    false, [] {});
            (out == SendOutcome::Delivered ? delivered : gaveup)++;
        }
    };
    for (int m = 0; m < 8; ++m)
        spawnNow(net.engine, sender, m);
    ASSERT_TRUE(net.engine.run(10'000'000));
    EXPECT_EQ(delivered + gaveup, 40);
    EXPECT_GE(net.channel.stats().drops.value(), 1u);
    // Bursty drops ride the same reliability contract as i.i.d. ones:
    // drop == ack timeout == retransmit-or-give-up, nothing lost.
    const auto &s = net.protocol->stats();
    EXPECT_EQ(s.ackTimeouts.value(), net.channel.stats().drops.value());
    EXPECT_EQ(s.ackTimeouts.value(),
              s.retransmits.value() + s.giveUps.value());
}

TEST(BurstChannel, BurstyRunsAreSeedDeterministic)
{
    auto run = [] {
        WirelessConfig cfg;
        cfg.burst = BurstParams::fromMean(25.0, 6.0);
        BurstyNet net(16, cfg);
        auto sender = [&](int mac) -> Task<void> {
            for (int i = 0; i < 5; ++i)
                co_await net.macs[static_cast<std::size_t>(mac)]->send(
                    false, [] {});
        };
        for (int m = 0; m < 16; ++m)
            spawnNow(net.engine, sender, m);
        EXPECT_TRUE(net.engine.run(10'000'000));
        return std::pair{net.engine.now(),
                         net.channel.stats().drops.value()};
    };
    EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------
// Machine-level burst contracts.

TEST(BurstMachine, BurstOffMatchesTheGoldenRun)
{
    // The identity contract, pinned to the same golden number as the
    // loss layer's: a disabled chain — even with every burst knob
    // moved off its default — cannot move a cycle.
    const auto r = runTweaked(ConfigKind::WiSyncNoT, 16, 8,
                              [](MachineConfig &cfg) {
                                  cfg.wireless.burst.goodLossPct = 9.0;
                                  cfg.wireless.burst.badLossPct = 80.0;
                                  cfg.wireless.burst.pGoodToBad = 0.4;
                                  cfg.wireless.burst.pBadToGood = 0.2;
                              });
    EXPECT_EQ(r.cycles, 5984u);
    EXPECT_EQ(r.wirelessDrops, 0u);

    const auto base =
        runTweaked(ConfigKind::WiSyncNoT, 16, 8, {});
    EXPECT_TRUE(wisync::workloads::bitIdentical(base, r));
}

TEST(BurstMachine, BurstyRunTerminatesWithTheInvariant)
{
    auto tweak = [](MachineConfig &cfg) {
        cfg.wireless.burst = BurstParams::fromMean(20.0, 4.0);
    };
    const auto a = runTweaked(ConfigKind::WiSyncNoT, 16, 5, tweak);
    const auto b = runTweaked(ConfigKind::WiSyncNoT, 16, 5, tweak);
    ASSERT_TRUE(a.completed);
    EXPECT_TRUE(wisync::workloads::bitIdentical(a, b));
    EXPECT_GE(a.wirelessDrops, 1u);
    EXPECT_EQ(a.wirelessDrops, a.macAckTimeouts);
    EXPECT_EQ(a.macAckTimeouts, a.macRetransmits + a.macGiveups);
}

TEST(BurstMachine, FreshVsResetIdenticalUnderBurstLoss)
{
    auto tweak = [](MachineConfig &cfg) {
        cfg.wireless.burst = BurstParams::fromMean(40.0, 3.0);
    };
    const auto fresh = runTweaked(ConfigKind::WiSync, 16, 4, tweak);
    Machine persistent(MachineConfig::make(ConfigKind::WiSync, 16));
    const auto reused =
        runTweaked(ConfigKind::WiSync, 16, 4, tweak, &persistent);
    ASSERT_TRUE(fresh.completed);
    EXPECT_TRUE(wisync::workloads::bitIdentical(fresh, reused));
    EXPECT_GE(fresh.wirelessDrops, 1u);
}

TEST(BurstMachine, EqualMeanBurstDivergesFromIid)
{
    // The sensitivity claim behind the whole model: at equal average
    // loss, correlated drops walk the bounded backoff differently
    // than i.i.d. drops, so the retry cost (and the cycle count)
    // measurably moves.
    const auto iid = runTweaked(ConfigKind::WiSyncNoT, 16, 8,
                                [](MachineConfig &cfg) {
                                    cfg.wireless.lossPct = 20.0;
                                });
    const auto burst =
        runTweaked(ConfigKind::WiSyncNoT, 16, 8, [](MachineConfig &cfg) {
            cfg.wireless.burst = BurstParams::fromMean(20.0, 8.0);
        });
    ASSERT_TRUE(iid.completed);
    ASSERT_TRUE(burst.completed);
    EXPECT_GE(iid.wirelessDrops, 1u);
    EXPECT_GE(burst.wirelessDrops, 1u);
    EXPECT_NE(iid.cycles, burst.cycles);
}

// ---------------------------------------------------------------------
// Per-frequency-channel loss profiles.

TEST(ChannelProfile, FrequencyPlanExposesPerSlotLoss)
{
    const FrequencyPlan plan(4, 2, 3.0, 2.5);
    EXPECT_DOUBLE_EQ(plan.channelLossDb(0), 3.0);
    EXPECT_DOUBLE_EQ(plan.channelLossDb(1), 5.5);
    // Default plan: every slot identical, zero extra loss.
    const FrequencyPlan flat(4, 4);
    EXPECT_DOUBLE_EQ(flat.channelLossDb(3), 0.0);
    // The profile is part of the plan's identity (reset retiming
    // rebuilds the topology when it changes).
    EXPECT_FALSE(plan == FrequencyPlan(4, 2));
}

TEST(ChannelProfile, ExtraLossShiftsTheAttenuationMatrix)
{
    wisync::wireless::RfChannelConfig base;
    wisync::wireless::RfChannelConfig shifted = base;
    shifted.extraLossDb = 12.0;
    const wisync::wireless::RfChannelModel a(16, base);
    const wisync::wireless::RfChannelModel b(16, shifted);
    for (std::uint32_t tx = 0; tx < 16; tx += 5)
        for (std::uint32_t rx = 0; rx < 16; rx += 3)
            EXPECT_DOUBLE_EQ(b.pathLossDb(tx, rx),
                             a.pathLossDb(tx, rx) + 12.0);
    EXPECT_DOUBLE_EQ(b.snrDb(0, 15), a.snrDb(0, 15) - 12.0);
}

TEST(ChannelProfile, ChipsSharingASlotShareItsPhysics)
{
    // 4 chips over 2 slots: chips {0,2} on slot 0, {1,3} on slot 1.
    // A steep per-slot step at marginal transmit power separates the
    // two slots' drop rates while keeping slot-mates identical.
    Engine engine;
    WirelessConfig wcfg;
    wcfg.berFromSnr = true;
    wcfg.txPowerDbm = 0.0;
    wcfg.spectrumSlots = 2;
    wcfg.channelLossStepDb = 6.0;
    BmSystem bm(engine, 16, BmConfig{}, wcfg, Rng(99), true, 4);
    ASSERT_EQ(bm.channelCount(), 2u);
    // Channel-local id 0 is chip 0's transmitter 0 on channel 0 and
    // chip 1's transmitter 0 on channel 1; the slot-1 profile adds
    // 6 dB, so its loss must be strictly worse.
    const double slot0 = bm.dataChannel(0).dropProbability(0, false);
    const double slot1 = bm.dataChannel(1).dropProbability(0, false);
    EXPECT_GT(slot1, slot0);
    // Slot-mates (chips 0 and 2 on channel 0) see identical physics:
    // same geometry, same profile -> same per-transmitter rate.
    const std::uint32_t chip2_first = 1 * 4; // coresPerChip = 4
    EXPECT_DOUBLE_EQ(
        bm.dataChannel(0).dropProbability(chip2_first, false), slot0);
}

TEST(ChannelProfile, ProfileSpreadIsDeterministicAndVisible)
{
    auto tweak_for = [](double step) {
        return [step](MachineConfig &cfg) {
            cfg.numChips = 4;
            cfg.wireless.spectrumSlots = 2;
            cfg.wireless.berFromSnr = true;
            cfg.wireless.txPowerDbm = 0.0;
            cfg.wireless.channelLossStepDb = step;
        };
    };
    const auto flat = runTweaked(ConfigKind::WiSync, 32, 4,
                                 tweak_for(0.0));
    const auto spread = runTweaked(ConfigKind::WiSync, 32, 4,
                                   tweak_for(8.0));
    ASSERT_TRUE(flat.completed);
    ASSERT_TRUE(spread.completed);
    // The profile moves real loss into the high slots.
    EXPECT_GT(spread.wirelessDrops, flat.wirelessDrops);
    const auto replay = runTweaked(ConfigKind::WiSync, 32, 4,
                                   tweak_for(8.0));
    EXPECT_TRUE(wisync::workloads::bitIdentical(spread, replay));
}

// ---------------------------------------------------------------------
// The lossy ChipBridge.

TEST(BridgeLoss, IdealBridgeDrawsNothing)
{
    Engine eng;
    ChipBridge bridge(eng, {});
    EXPECT_FALSE(bridge.lossy());
    // Burst knobs without a reachable loss state stay ideal too.
    BridgeConfig cfg;
    cfg.burst.enabled = true;
    ChipBridge clean(eng, cfg);
    EXPECT_FALSE(clean.lossy());
}

TEST(BridgeLoss, AlternatingChainRetryTiming)
{
    Engine eng;
    BridgeConfig cfg;
    cfg.latencyCycles = 10;
    cfg.widthBits = 64;
    cfg.headerBits = 32;
    cfg.burst = alternatingChain();
    cfg.ackTimeoutCycles = 4;
    cfg.maxRetries = 8;
    cfg.retryBackoffMaxExp = 6;
    ChipBridge bridge(eng, cfg);
    bridge.setRng(Rng(1));
    ASSERT_TRUE(bridge.lossy());

    // 96 bits over 64-bit width = 2 serialization cycles. Attempt 1
    // (0..2) enters Bad -> drop; retry waits ack 4 + 2^1 = 6, so the
    // retransmission starts at 8, serializes 8..10, leaves Bad ->
    // delivers at 10 + 10.
    Cycle arrived = 0;
    bridge.post(64, [&] { arrived = eng.now(); });
    eng.run();
    EXPECT_EQ(arrived, 20u);
    EXPECT_EQ(bridge.stats().frames.value(), 1u);
    EXPECT_EQ(bridge.stats().busyCycles.value(), 4u);
    EXPECT_EQ(bridge.stats().drops.value(), 1u);
    EXPECT_EQ(bridge.stats().ackTimeouts.value(), 1u);
    EXPECT_EQ(bridge.stats().retransmits.value(), 1u);
    EXPECT_EQ(bridge.stats().giveUps.value(), 0u);
    EXPECT_TRUE(bridge.dropAccountingConsistent());
}

TEST(BridgeLoss, GiveUpReissuesInsteadOfLosingTheFrame)
{
    Engine eng;
    BridgeConfig cfg;
    cfg.latencyCycles = 10;
    cfg.widthBits = 64;
    cfg.headerBits = 32;
    cfg.burst = alternatingChain();
    cfg.ackTimeoutCycles = 4;
    cfg.maxRetries = 0; // every drop exhausts the budget immediately
    ChipBridge bridge(eng, cfg);
    bridge.setRng(Rng(1));

    // Attempt 1 (0..2) drops; the budget is spent, so only the final
    // ack window (4) passes before the give-up re-issues at 6; the
    // re-issue serializes 6..8, leaves Bad -> delivers at 8 + 10.
    Cycle arrived = 0;
    bridge.post(64, [&] { arrived = eng.now(); });
    eng.run();
    EXPECT_EQ(arrived, 18u);
    EXPECT_EQ(bridge.stats().drops.value(), 1u);
    EXPECT_EQ(bridge.stats().ackTimeouts.value(), 1u);
    EXPECT_EQ(bridge.stats().retransmits.value(), 0u);
    EXPECT_EQ(bridge.stats().giveUps.value(), 1u);
    EXPECT_EQ(bridge.stats().reissues.value(), 1u);
    EXPECT_TRUE(bridge.dropAccountingConsistent());
}

TEST(BridgeLoss, EveryPostedFrameEventuallyDelivers)
{
    Engine eng;
    BridgeConfig cfg;
    cfg.lossPct = 50.0;
    cfg.maxRetries = 1;
    ChipBridge bridge(eng, cfg);
    bridge.setRng(Rng(99));
    int delivered = 0;
    for (int i = 0; i < 50; ++i)
        bridge.post(64, [&] { ++delivered; });
    eng.run();
    // Never silently lost: give-ups re-issue until the link delivers.
    EXPECT_EQ(delivered, 50);
    EXPECT_GE(bridge.stats().drops.value(), 1u);
    EXPECT_TRUE(bridge.dropAccountingConsistent());
}

TEST(BridgeLoss, ResetRecyclesInFlightStateAndChain)
{
    Engine eng;
    BridgeConfig cfg;
    cfg.burst = alternatingChain();
    ChipBridge bridge(eng, cfg);
    bridge.setRng(Rng(3));
    bridge.post(64, [] {});
    // Mid-flight (the first attempt dropped, retry pending): reset.
    eng.run(1);
    EXPECT_TRUE(bridge.burstBad());
    eng.reset();
    bridge.reset(cfg);
    bridge.setRng(Rng(3));
    EXPECT_FALSE(bridge.burstBad());
    EXPECT_EQ(bridge.stats().frames.value(), 0u);
    // The recycled pool serves the next generation identically.
    Cycle arrived = 0;
    bridge.post(64, [&] { arrived = eng.now(); });
    eng.run();
    EXPECT_GT(arrived, 0u);
    EXPECT_TRUE(bridge.dropAccountingConsistent());
}

// ---------------------------------------------------------------------
// Machine-level bridge loss.

TEST(BridgeLossMachine, LossyBridgeCompletesCoherentlyAt2And4Chips)
{
    for (const std::uint32_t chips : {2u, 4u}) {
        auto tweak = [chips](MachineConfig &cfg) {
            cfg.numChips = chips;
            cfg.bridge.lossPct = 30.0;
        };
        const auto r = runTweaked(ConfigKind::WiSync, 32, 4, tweak);
        ASSERT_TRUE(r.completed) << chips << " chips";
        EXPECT_GE(r.bridgeDrops, 1u) << chips << " chips";
        // The bridge-level drop-accounting invariant, surfaced
        // machine-wide through KernelResult.
        EXPECT_EQ(r.bridgeDrops, r.bridgeAckTimeouts);
        EXPECT_EQ(r.bridgeAckTimeouts,
                  r.bridgeRetransmits + r.bridgeGiveups);
        // And the replay contract.
        const auto again = runTweaked(ConfigKind::WiSync, 32, 4, tweak);
        EXPECT_TRUE(wisync::workloads::bitIdentical(r, again));
    }
}

TEST(BridgeLossMachine, BridgedUpdatesNeverLostUnderForcedGiveUps)
{
    // maxRetries = 0 turns every bridge drop into a give-up + re-issue;
    // the global barrier still releases every round and the replicas
    // converge — the "never silently lost" contract end to end.
    auto cfg = MachineConfig::make(ConfigKind::WiSync, 32);
    cfg.numChips = 2;
    cfg.bridge.lossPct = 50.0;
    cfg.bridge.maxRetries = 0;
    Machine m(cfg);
    wisync::workloads::TightLoopParams p;
    p.iterations = 4;
    p.arrayElems = 8;
    const auto r = wisync::workloads::runTightLoopOn(m, p);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.bridgeGiveups, 1u);
    EXPECT_EQ(r.bridgeRetransmits, 0u);
    EXPECT_EQ(r.bridgeDrops, r.bridgeGiveups);
    EXPECT_TRUE(
        m.bm()->storeArray().replicasConsistent(cfg.coresPerChip()));
}

TEST(BridgeLossMachine, IdealBridgeKnobsAreByteIdentical)
{
    // Odd reliability knobs on a loss-free bridge are dead state: the
    // multi-chip run cannot move a cycle (the ideal-bridge identity).
    auto base_tweak = [](MachineConfig &cfg) { cfg.numChips = 2; };
    auto odd_tweak = [](MachineConfig &cfg) {
        cfg.numChips = 2;
        cfg.bridge.ackTimeoutCycles = 17;
        cfg.bridge.maxRetries = 2;
        cfg.bridge.retryBackoffMaxExp = 1;
    };
    const auto base = runTweaked(ConfigKind::WiSync, 32, 4, base_tweak);
    const auto odd = runTweaked(ConfigKind::WiSync, 32, 4, odd_tweak);
    ASSERT_TRUE(base.completed);
    EXPECT_TRUE(wisync::workloads::bitIdentical(base, odd));
    EXPECT_EQ(base.bridgeDrops, 0u);
}

TEST(BridgeLossMachine, FreshVsResetIdenticalUnderBridgeLoss)
{
    auto tweak = [](MachineConfig &cfg) {
        cfg.numChips = 4;
        cfg.bridge.burst = BurstParams::fromMean(50.0, 2.0);
    };
    const auto fresh = runTweaked(ConfigKind::WiSync, 32, 4, tweak);
    Machine persistent(MachineConfig::make(ConfigKind::WiSync, 32));
    const auto reused =
        runTweaked(ConfigKind::WiSync, 32, 4, tweak, &persistent);
    ASSERT_TRUE(fresh.completed);
    EXPECT_TRUE(wisync::workloads::bitIdentical(fresh, reused));
    EXPECT_GE(fresh.bridgeDrops, 1u);
}

TEST(BridgeLossMachine, CombinedBurstAndBridgeLossKeepBothInvariants)
{
    // Satellite audit: bursty channel draws AND bridge drops active in
    // one run — both reliability layers keep their separate books.
    auto tweak = [](MachineConfig &cfg) {
        cfg.numChips = 2;
        cfg.wireless.burst = BurstParams::fromMean(15.0, 4.0);
        cfg.bridge.lossPct = 25.0;
    };
    const auto r = runTweaked(ConfigKind::WiSync, 32, 4, tweak);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.wirelessDrops, 1u);
    EXPECT_GE(r.bridgeDrops, 1u);
    EXPECT_EQ(r.wirelessDrops, r.macAckTimeouts);
    EXPECT_EQ(r.macAckTimeouts, r.macRetransmits + r.macGiveups);
    EXPECT_EQ(r.bridgeDrops, r.bridgeAckTimeouts);
    EXPECT_EQ(r.bridgeAckTimeouts,
              r.bridgeRetransmits + r.bridgeGiveups);
}

// ---------------------------------------------------------------------
// describe() labels.

TEST(BurstDescribe, BridgeKnobsAlwaysPrintOnMultiChipConfigs)
{
    // The bugfix: two multi-chip sweep points differing only in bridge
    // config used to print identical labels.
    auto cfg = MachineConfig::make(ConfigKind::WiSync, 64);
    EXPECT_EQ(cfg.describe().find("bridge="), std::string::npos);
    cfg.numChips = 4;
    EXPECT_NE(cfg.describe().find("bridge=lat24,w64"),
              std::string::npos);
    auto other = cfg;
    other.bridge.latencyCycles = 48;
    EXPECT_NE(cfg.describe(), other.describe());
    auto wider = cfg;
    wider.bridge.widthBits = 128;
    EXPECT_NE(cfg.describe(), wider.describe());
}

TEST(BurstDescribe, BridgeLossKnobsPrintOnlyWhenLossy)
{
    auto cfg = MachineConfig::make(ConfigKind::WiSync, 64);
    cfg.numChips = 2;
    EXPECT_EQ(cfg.describe().find("bloss="), std::string::npos);
    cfg.bridge.lossPct = 20.0;
    cfg.bridge.maxRetries = 3;
    const auto label = cfg.describe();
    EXPECT_NE(label.find("bloss=20%"), std::string::npos);
    auto other = cfg;
    other.bridge.maxRetries = 5;
    EXPECT_NE(label, other.describe());
    cfg.bridge.burst = BurstParams::fromMean(10.0, 4.0);
    EXPECT_NE(cfg.describe().find("bburst="), std::string::npos);
}

TEST(BurstDescribe, BurstAndProfileKnobsOnlyOffTheDefaults)
{
    auto cfg = MachineConfig::make(ConfigKind::WiSync, 64);
    EXPECT_EQ(cfg.describe().find("burst="), std::string::npos);
    EXPECT_EQ(cfg.describe().find("chloss="), std::string::npos);
    cfg.wireless.burst = BurstParams::fromMean(10.0, 4.0);
    cfg.wireless.channelLossBaseDb = 2.0;
    cfg.wireless.channelLossStepDb = 3.0;
    const auto label = cfg.describe();
    EXPECT_NE(label.find("burst=g0%/b100%"), std::string::npos);
    EXPECT_NE(label.find("chloss=2+3dB"), std::string::npos);
    auto other = cfg;
    other.wireless.burst.pBadToGood = 0.5;
    EXPECT_NE(label, other.describe());
}

} // namespace
