/**
 * @file
 * Unit tests for the set-associative cache tag array.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace {

using wisync::mem::CacheArray;
using wisync::mem::CacheLine;
using wisync::mem::canRead;
using wisync::mem::canWrite;
using wisync::mem::CohState;
using wisync::mem::isOwner;
using wisync::sim::Addr;

TEST(CacheArray, GeometryMatchesL1)
{
    CacheArray l1(32 * 1024, 2, 64);
    EXPECT_EQ(l1.numSets(), 256u);
    EXPECT_EQ(l1.assoc(), 2u);
    EXPECT_EQ(l1.lineBytes(), 64u);
}

TEST(CacheArray, LineOfMasksOffset)
{
    CacheArray c(1024, 2, 64);
    EXPECT_EQ(c.lineOf(0), 0u);
    EXPECT_EQ(c.lineOf(63), 0u);
    EXPECT_EQ(c.lineOf(64), 64u);
    EXPECT_EQ(c.lineOf(0x12345), static_cast<Addr>(0x12340));
}

TEST(CacheArray, MissThenHit)
{
    CacheArray c(1024, 2, 64);
    EXPECT_EQ(c.lookup(0x100), nullptr);
    CacheLine *slot = c.victimFor(0x100);
    ASSERT_NE(slot, nullptr);
    c.install(slot, 0x100, CohState::Shared);
    CacheLine *hit = c.lookup(0x100);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->state, CohState::Shared);
}

TEST(CacheArray, VictimPrefersInvalidWay)
{
    CacheArray c(1024, 2, 64); // 8 sets
    c.install(c.victimFor(0x000), 0x000, CohState::Modified);
    // Same set (stride = sets * line = 512).
    CacheLine *v = c.victimFor(0x200);
    EXPECT_FALSE(v->valid());
}

TEST(CacheArray, LruEvictsColdestWay)
{
    CacheArray c(1024, 2, 64); // 8 sets, 2 ways
    c.install(c.victimFor(0x000), 0x000, CohState::Shared);
    c.install(c.victimFor(0x200), 0x200, CohState::Shared);
    // Touch 0x000 so 0x200 becomes LRU.
    c.lookup(0x000);
    CacheLine *v = c.victimFor(0x400);
    ASSERT_TRUE(v->valid());
    EXPECT_EQ(v->lineAddr, 0x200u);
}

TEST(CacheArray, PeekDoesNotTouchLru)
{
    CacheArray c(1024, 2, 64);
    c.install(c.victimFor(0x000), 0x000, CohState::Shared);
    c.install(c.victimFor(0x200), 0x200, CohState::Shared);
    // Peek (not lookup) 0x000: it stays LRU and gets evicted.
    c.peek(0x000);
    CacheLine *v = c.victimFor(0x400);
    ASSERT_TRUE(v->valid());
    EXPECT_EQ(v->lineAddr, 0x000u);
}

TEST(CohStateHelpers, PermissionsTable)
{
    EXPECT_FALSE(canRead(CohState::Invalid));
    EXPECT_TRUE(canRead(CohState::Shared));
    EXPECT_TRUE(canRead(CohState::Owned));
    EXPECT_TRUE(canRead(CohState::Exclusive));
    EXPECT_TRUE(canRead(CohState::Modified));

    EXPECT_FALSE(canWrite(CohState::Invalid));
    EXPECT_FALSE(canWrite(CohState::Shared));
    EXPECT_FALSE(canWrite(CohState::Owned));
    EXPECT_TRUE(canWrite(CohState::Exclusive));
    EXPECT_TRUE(canWrite(CohState::Modified));

    EXPECT_FALSE(isOwner(CohState::Invalid));
    EXPECT_FALSE(isOwner(CohState::Shared));
    EXPECT_TRUE(isOwner(CohState::Owned));
    EXPECT_TRUE(isOwner(CohState::Exclusive));
    EXPECT_TRUE(isOwner(CohState::Modified));
}

TEST(CacheArray, DistinctSetsDoNotConflict)
{
    CacheArray c(1024, 2, 64); // 8 sets
    for (Addr a = 0; a < 8 * 64; a += 64)
        c.install(c.victimFor(a), a, CohState::Shared);
    for (Addr a = 0; a < 8 * 64; a += 64)
        EXPECT_NE(c.lookup(a), nullptr) << "line " << a;
}

} // namespace
