/**
 * @file
 * Unit tests for the functional backing store.
 */

#include <gtest/gtest.h>

#include "mem/memory.hh"

namespace {

using wisync::mem::Memory;

TEST(Memory, ZeroInitialised)
{
    Memory m;
    EXPECT_EQ(m.read64(0x1000), 0u);
    EXPECT_EQ(m.footprintWords(), 0u);
}

TEST(Memory, ReadBackWrites)
{
    Memory m;
    m.write64(0x1000, 0xDEADBEEFCAFEF00Dull);
    EXPECT_EQ(m.read64(0x1000), 0xDEADBEEFCAFEF00Dull);
    m.write64(0x1000, 7);
    EXPECT_EQ(m.read64(0x1000), 7u);
    EXPECT_EQ(m.footprintWords(), 1u);
}

TEST(Memory, AdjacentWordsIndependent)
{
    Memory m;
    m.write64(0x2000, 1);
    m.write64(0x2008, 2);
    EXPECT_EQ(m.read64(0x2000), 1u);
    EXPECT_EQ(m.read64(0x2008), 2u);
}

} // namespace
