/**
 * @file
 * Unit tests for the coroutine frame pool: size classing, free-list
 * reuse, oversized fallback, and frame recovery when engines are torn
 * down with live pooled frames (run under ASan/LSan in CI).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "coro/frame_pool.hh"
#include "coro/primitives.hh"
#include "coro/task.hh"
#include "sim/engine.hh"

namespace {

using wisync::coro::delay;
using wisync::coro::FramePool;
using wisync::coro::framePool;
using wisync::coro::spawnNow;
using wisync::coro::Task;
using wisync::sim::Engine;

TEST(FramePool, RoundTripsInterleavedSizeClasses)
{
    FramePool pool;
    const std::size_t sizes[] = {1,   17,  63,  64,   65,  100,
                                 256, 300, 511, 1000, 1500};
    std::vector<void *> ptrs;
    for (int round = 0; round < 3; ++round) {
        for (const auto sz : sizes) {
            void *p = pool.allocate(sz);
            ASSERT_NE(p, nullptr);
            EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                          FramePool::kAlign,
                      0u);
            std::memset(p, 0xAB, sz); // must be writable end to end
            ptrs.push_back(p);
        }
    }
    for (void *p : ptrs)
        pool.deallocate(p);
    EXPECT_EQ(pool.liveFrames(), 0u);
    EXPECT_EQ(pool.stats().pooledAllocs, 3 * std::size(sizes));
    EXPECT_EQ(pool.stats().pooledFrees, 3 * std::size(sizes));
    EXPECT_EQ(pool.stats().fallbackAllocs, 0u);
}

TEST(FramePool, FreeListReusesSameClassMemory)
{
    FramePool pool;
    void *a = pool.allocate(200);
    pool.deallocate(a);
    void *b = pool.allocate(190); // same 64-byte class as 200
    EXPECT_EQ(a, b);
    EXPECT_EQ(pool.stats().freelistReuses, 1u);
    void *c = pool.allocate(200); // class empty again -> fresh carve
    EXPECT_NE(b, c);
    EXPECT_EQ(pool.stats().freelistReuses, 1u);
    pool.deallocate(b);
    pool.deallocate(c);
}

TEST(FramePool, DistinctClassesDoNotShareFreeLists)
{
    FramePool pool;
    void *small = pool.allocate(40);
    pool.deallocate(small);
    void *big = pool.allocate(900);
    EXPECT_NE(small, big); // a 900-byte alloc must not reuse the 40er
    pool.deallocate(big);
    void *small2 = pool.allocate(40);
    EXPECT_EQ(small2, small);
    pool.deallocate(small2);
}

TEST(FramePool, OversizedAllocationsFallBackToMalloc)
{
    FramePool pool;
    const auto before = pool.stats();
    void *huge = pool.allocate(FramePool::kMaxPooled + 1);
    ASSERT_NE(huge, nullptr);
    std::memset(huge, 0xCD, FramePool::kMaxPooled + 1);
    EXPECT_EQ(pool.stats().fallbackAllocs, before.fallbackAllocs + 1);
    EXPECT_EQ(pool.stats().pooledAllocs, before.pooledAllocs);
    EXPECT_EQ(pool.liveFrames(), 1u);
    pool.deallocate(huge);
    EXPECT_EQ(pool.stats().fallbackFrees, before.fallbackFrees + 1);
    EXPECT_EQ(pool.liveFrames(), 0u);
}

TEST(FramePool, ChunksAreCarvedLazily)
{
    FramePool pool;
    EXPECT_EQ(pool.stats().chunks, 0u);
    void *p = pool.allocate(64);
    EXPECT_EQ(pool.stats().chunks, 1u);
    // A full chunk of this class fits many frames: no second chunk.
    std::vector<void *> more;
    for (int i = 0; i < 100; ++i)
        more.push_back(pool.allocate(64));
    EXPECT_EQ(pool.stats().chunks, 1u);
    pool.deallocate(p);
    for (void *q : more)
        pool.deallocate(q);
}

// ---- Pooled coroutine frames through the engine ----------------------

Task<void>
leaf(Engine &eng)
{
    co_await delay(eng, 1);
}

Task<void>
parent(Engine &eng, int width)
{
    for (int i = 0; i < width; ++i)
        co_await leaf(eng);
}

TEST(FramePool, TaskFramesComeFromThePool)
{
    const auto before = framePool().stats();
    {
        Engine eng;
        spawnNow(eng, [&eng]() -> Task<void> {
            co_await parent(eng, 50);
        });
        eng.run();
    }
    const auto after = framePool().stats();
    // Wrapper + outer + parent + 50 leaves, all pooled and all freed.
    EXPECT_GE(after.pooledAllocs - before.pooledAllocs, 52u);
    EXPECT_EQ(after.pooledAllocs - before.pooledAllocs,
              after.pooledFrees - before.pooledFrees);
    // Steady state reuses the free lists instead of carving.
    EXPECT_GE(after.freelistReuses - before.freelistReuses, 45u);
}

TEST(FramePool, EngineTeardownWithLiveFramesReturnsThemToThePool)
{
    const std::uint64_t live_before = framePool().liveFrames();
    {
        Engine eng;
        // Park a chain of frames deep in the future; destroy the
        // engine while they are all live. The detached-root registry
        // must destroy the whole chain (ASan/LSan verifies no leak,
        // the pool counter verifies frame recovery).
        spawnNow(eng, [&eng]() -> Task<void> {
            co_await delay(eng, 1'000'000);
            co_await parent(eng, 3);
        });
        spawnNow(eng, [&eng]() -> Task<void> {
            co_await delay(eng, 42);
        });
        eng.run(10); // leaves everything suspended mid-flight
        EXPECT_GT(framePool().liveFrames(), live_before);
    }
    EXPECT_EQ(framePool().liveFrames(), live_before);
}

TEST(FramePool, EngineResetWithLiveFramesReturnsThemToThePool)
{
    const std::uint64_t live_before = framePool().liveFrames();
    Engine eng;
    spawnNow(eng, [&eng]() -> Task<void> {
        co_await delay(eng, 1'000'000);
    });
    eng.run(10);
    EXPECT_GT(framePool().liveFrames(), live_before);
    eng.reset();
    EXPECT_EQ(framePool().liveFrames(), live_before);
    EXPECT_EQ(eng.pendingEvents(), 0u);
    EXPECT_EQ(eng.now(), 0u);

    // The reset engine is fully usable afterwards.
    bool ran = false;
    spawnNow(eng, [&eng, &ran]() -> Task<void> {
        co_await delay(eng, 5);
        ran = true;
    });
    eng.run();
    EXPECT_TRUE(ran);
    EXPECT_EQ(eng.now(), 5u);
}

TEST(FramePool, ThreadLocalPoolIsSharedAcrossEngines)
{
    // Two engines on the same thread recycle each other's frames.
    const auto before = framePool().stats();
    {
        Engine a;
        spawnNow(a, [&a]() -> Task<void> { co_await parent(a, 10); });
        a.run();
    }
    const auto mid = framePool().stats();
    {
        Engine b;
        spawnNow(b, [&b]() -> Task<void> { co_await parent(b, 10); });
        b.run();
    }
    const auto after = framePool().stats();
    // Second engine's frames come from the free lists the first
    // engine's teardown refilled: no new chunks.
    EXPECT_EQ(after.chunks, mid.chunks);
    EXPECT_GT(after.freelistReuses, mid.freelistReuses);
    EXPECT_EQ(after.pooledAllocs - before.pooledAllocs,
              after.pooledFrees - before.pooledFrees);
}

} // namespace
