/**
 * @file
 * Unit and property tests for the wireless Data channel + MAC.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coro/primitives.hh"
#include "sim/engine.hh"
#include "sim/rng.hh"
#include "wireless/data_channel.hh"
#include "wireless/mac/brs_mac.hh"

namespace {

using wisync::coro::delay;
using wisync::coro::spawnNow;
using wisync::coro::Task;
using wisync::sim::Cycle;
using wisync::sim::Engine;
using wisync::sim::UniqueFunction;
using wisync::wireless::BrsMac;
using wisync::wireless::DataChannel;
using wisync::wireless::Mac;
using wisync::wireless::WirelessConfig;

struct Net
{
    explicit Net(std::uint32_t nodes)
        : channel(engine, WirelessConfig{}), brs(engine, channel, nodes)
    {
        wisync::sim::Rng seeder(1234);
        for (std::uint32_t n = 0; n < nodes; ++n)
            macs.push_back(std::make_unique<Mac>(engine, channel, brs, n,
                                                 seeder.fork()));
    }

    Engine engine;
    DataChannel channel;
    BrsMac brs;
    std::vector<std::unique_ptr<Mac>> macs;
};

TEST(DataChannel, SingleMessageTakesFiveCycles)
{
    Net net(4);
    Cycle delivered_at = 0, done_at = 0;
    spawnNow(net.engine, [&]() -> Task<void> {
        co_await net.macs[0]->send(
            false, [&] { delivered_at = net.engine.now(); });
        done_at = net.engine.now();
    });
    net.engine.run();
    EXPECT_EQ(delivered_at, 5u);
    EXPECT_EQ(done_at, 5u);
    EXPECT_EQ(net.channel.stats().messages.value(), 1u);
    EXPECT_EQ(net.channel.stats().collisions.value(), 0u);
}

TEST(DataChannel, BulkMessageTakesFifteenCycles)
{
    Net net(4);
    Cycle delivered_at = 0;
    spawnNow(net.engine, [&]() -> Task<void> {
        co_await net.macs[0]->send(
            true, [&] { delivered_at = net.engine.now(); });
    });
    net.engine.run();
    EXPECT_EQ(delivered_at, 15u);
    EXPECT_EQ(net.channel.stats().bulkMessages.value(), 1u);
}

TEST(DataChannel, BackToBackMessagesSerialize)
{
    Net net(4);
    std::vector<Cycle> deliveries;
    auto sender = [&](int mac) -> Task<void> {
        co_await net.macs[static_cast<std::size_t>(mac)]->send(
            false, [&] { deliveries.push_back(net.engine.now()); });
    };
    // Start the second sender while the first transmission is flying:
    // it must wait for the expected-free cycle, no collision.
    spawnNow(net.engine, sender, 0);
    spawnNow(net.engine, [&]() -> Task<void> {
        co_await delay(net.engine, 2);
        co_await sender(1);
    });
    net.engine.run();
    ASSERT_EQ(deliveries.size(), 2u);
    EXPECT_EQ(deliveries[0], 5u);
    EXPECT_EQ(deliveries[1], 10u);
    EXPECT_EQ(net.channel.stats().collisions.value(), 0u);
}

TEST(DataChannel, SimultaneousSendersCollideThenResolve)
{
    Net net(2);
    std::vector<Cycle> deliveries;
    auto sender = [&](int mac) -> Task<void> {
        co_await net.macs[static_cast<std::size_t>(mac)]->send(
            false, [&] { deliveries.push_back(net.engine.now()); });
    };
    spawnNow(net.engine, sender, 0);
    spawnNow(net.engine, sender, 1);
    net.engine.run();
    ASSERT_EQ(deliveries.size(), 2u);
    EXPECT_GE(net.channel.stats().collisions.value(), 1u);
    EXPECT_EQ(net.channel.stats().messages.value(), 2u);
    // Both must eventually deliver, strictly ordered.
    EXPECT_LT(deliveries[0], deliveries[1]);
}

TEST(DataChannel, CollisionCostsTwoCyclesNotFive)
{
    // Force one collision with deterministic outcome: after the 2-cycle
    // penalty both back off; eventually one wins. The channel must be
    // free again at cycle 2, not 5: a third sender arriving at cycle 2
    // can grab the slot if the colliders backed off.
    Net net(3);
    Cycle third_delivery = 0;
    auto sender = [&](int mac) -> Task<void> {
        co_await net.macs[static_cast<std::size_t>(mac)]->send(false, [] {});
    };
    spawnNow(net.engine, sender, 0);
    spawnNow(net.engine, sender, 1);
    spawnNow(net.engine, [&]() -> Task<void> {
        co_await delay(net.engine, 3);
        co_await net.macs[2]->send(
            false, [&] { third_delivery = net.engine.now(); });
    });
    net.engine.run();
    // The third sender saw nextFree <= 3 + something small; if the
    // collision had blocked the channel for 5 cycles it could not
    // deliver before cycle 8+5.
    EXPECT_GT(third_delivery, 0u);
    EXPECT_GE(net.channel.stats().collisions.value(), 1u);
}

TEST(DataChannel, TotalOrderOfDeliveries)
{
    // Deliveries are the commit points; they must be strictly ordered
    // in time (single channel => chip-wide total order of BM writes).
    Net net(8);
    std::vector<Cycle> deliveries;
    auto sender = [&](int mac, int msgs) -> Task<void> {
        for (int i = 0; i < msgs; ++i)
            co_await net.macs[static_cast<std::size_t>(mac)]->send(
                false, [&] { deliveries.push_back(net.engine.now()); });
    };
    for (int m = 0; m < 8; ++m)
        spawnNow(net.engine, sender, m, 5);
    net.engine.run();
    ASSERT_EQ(deliveries.size(), 40u);
    for (std::size_t i = 1; i < deliveries.size(); ++i)
        EXPECT_LT(deliveries[i - 1], deliveries[i]);
}

TEST(DataChannel, AbortedSendNeverDelivers)
{
    Net net(2);
    bool delivered = false;
    bool abort_now = true;
    std::function<bool()> abort = [&] { return abort_now; };
    spawnNow(net.engine, [&]() -> Task<void> {
        co_await net.macs[0]->send(false, [&] { delivered = true; },
                                   &abort);
    });
    net.engine.run();
    EXPECT_FALSE(delivered);
    EXPECT_EQ(net.channel.stats().messages.value(), 0u);
}

TEST(DataChannel, BackoffExponentTracksOutcomes)
{
    Net net(2);
    EXPECT_EQ(net.brs.backoffExp(0), 0u);
    auto sender = [&](int mac) -> Task<void> {
        co_await net.macs[static_cast<std::size_t>(mac)]->send(false, [] {});
    };
    spawnNow(net.engine, sender, 0);
    spawnNow(net.engine, sender, 1);
    net.engine.run();
    // After resolving, each MAC collided at least once (exp bumped)
    // and succeeded once (exp decremented): net <= retries.
    EXPECT_GE(net.macs[0]->retries() + net.macs[1]->retries(), 2u);
}

TEST(DataChannel, ManySendersAllDeliverUnderContention)
{
    constexpr int kMacs = 32;
    constexpr int kMsgs = 10;
    Net net(kMacs);
    int delivered = 0;
    auto sender = [&](int mac) -> Task<void> {
        for (int i = 0; i < kMsgs; ++i)
            co_await net.macs[static_cast<std::size_t>(mac)]->send(
                false, [&] { ++delivered; });
    };
    for (int m = 0; m < kMacs; ++m)
        spawnNow(net.engine, sender, m);
    ASSERT_TRUE(net.engine.run(10'000'000));
    EXPECT_EQ(delivered, kMacs * kMsgs);
    EXPECT_EQ(net.channel.stats().messages.value(),
              static_cast<std::uint64_t>(kMacs) * kMsgs);
    // Exponential backoff keeps goodput reasonable: 320 messages of 5
    // cycles is 1600 busy cycles; allow generous contention overhead.
    EXPECT_LT(net.engine.now(), 20'000u);
}

TEST(DataChannel, UtilisationIsBusyFraction)
{
    Net net(2);
    spawnNow(net.engine, [&]() -> Task<void> {
        co_await net.macs[0]->send(false, [] {});
        co_await delay(net.engine, 95);
    });
    net.engine.run();
    EXPECT_EQ(net.engine.now(), 100u);
    EXPECT_NEAR(net.channel.utilisation(), 0.05, 1e-9);
}

TEST(DataChannel, DeterministicUnderSameSeeds)
{
    auto run = [] {
        Net net(16);
        auto sender = [&](int mac) -> Task<void> {
            for (int i = 0; i < 5; ++i)
                co_await net.macs[static_cast<std::size_t>(mac)]->send(
                    false, [] {});
        };
        for (int m = 0; m < 16; ++m)
            spawnNow(net.engine, sender, m);
        net.engine.run();
        return net.engine.now();
    };
    EXPECT_EQ(run(), run());
}

} // namespace
