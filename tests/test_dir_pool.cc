/**
 * @file
 * Unit tests for mem::DirTable, the open-addressed pooled coherence
 * directory: entry recycling across reset(), sharer-bitmap capacity
 * reuse, tombstone/rehash behaviour at high load factor, pointer
 * stability across rehashes, and a multi-threaded sweep smoke test
 * (one simulator per host thread — run it under TSan to prove the
 * parallel sweep shares nothing).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/machine.hh"
#include "harness/parallel_sweep.hh"
#include "mem/dir_table.hh"
#include "sim/engine.hh"
#include "workloads/tight_loop.hh"

namespace {

using wisync::mem::DirEntry;
using wisync::mem::DirTable;
using wisync::sim::Addr;
using wisync::sim::Engine;

constexpr std::uint32_t kSharerWords = 2;

/** A line address stream that exercises hashing (64 B aligned). */
Addr
line(std::uint64_t i)
{
    return 0x1000'0000 + i * 64;
}

TEST(DirTable, FindOrCreateAndFind)
{
    Engine eng;
    DirTable dir(eng, kSharerWords);
    EXPECT_EQ(dir.size(), 0u);
    EXPECT_EQ(dir.find(line(0)), nullptr);

    DirEntry &e = dir[line(0)];
    EXPECT_EQ(e.owner, wisync::sim::kNoNode);
    EXPECT_FALSE(e.inL2);
    ASSERT_EQ(e.sharers.size(), kSharerWords);
    EXPECT_EQ(e.sharers[0], 0u);
    EXPECT_FALSE(e.busy.locked());
    EXPECT_EQ(dir.size(), 1u);

    // Same line -> same entry; another line -> another entry.
    EXPECT_EQ(&dir[line(0)], &e);
    EXPECT_EQ(dir.find(line(0)), &e);
    EXPECT_NE(&dir[line(1)], &e);
    EXPECT_EQ(dir.size(), 2u);
    EXPECT_EQ(dir.stats().allocated, 2u);
}

TEST(DirTable, ResetRecyclesEntriesInsteadOfFreeing)
{
    Engine eng;
    DirTable dir(eng, kSharerWords);
    constexpr std::uint64_t kLines = 40;
    for (std::uint64_t i = 0; i < kLines; ++i) {
        DirEntry &e = dir[line(i)];
        e.owner = static_cast<wisync::sim::NodeId>(i);
        e.inL2 = true;
        e.sharers[0] = ~std::uint64_t{0};
    }
    EXPECT_EQ(dir.stats().allocated, kLines);
    EXPECT_EQ(dir.stats().recycled, 0u);

    dir.reset();
    EXPECT_EQ(dir.size(), 0u);
    EXPECT_EQ(dir.freeCount(), kLines);
    EXPECT_EQ(dir.find(line(0)), nullptr);

    // The next run touches a different line set: every entry must be
    // served from the free list (zero new allocations) and come back
    // scrubbed.
    for (std::uint64_t i = 0; i < kLines; ++i) {
        DirEntry &e = dir[line(1000 + i)];
        EXPECT_EQ(e.owner, wisync::sim::kNoNode);
        EXPECT_FALSE(e.inL2);
        EXPECT_EQ(e.sharers[0], 0u);
    }
    EXPECT_EQ(dir.stats().allocated, kLines);
    EXPECT_EQ(dir.stats().recycled, kLines);
}

TEST(DirTable, SharerBitmapCapacityIsReusedAcrossReset)
{
    Engine eng;
    DirTable dir(eng, kSharerWords);
    DirEntry &e = dir[line(7)];
    e.sharers[0] = 0xDEADBEEF;
    const std::uint64_t *storage = e.sharers.data();

    dir.reset();
    // One free entry, so the next acquisition recycles exactly it;
    // assign() into the retained capacity must not reallocate.
    DirEntry &again = dir[line(9)];
    EXPECT_EQ(&again, &e);
    EXPECT_EQ(again.sharers.data(), storage);
    EXPECT_EQ(again.sharers[0], 0u);
}

TEST(DirTable, EntryPointersSurviveRehash)
{
    Engine eng;
    DirTable dir(eng, kSharerWords);
    DirEntry &first = dir[line(0)];
    first.owner = 17;

    // Force several growth rehashes.
    for (std::uint64_t i = 1; i < 400; ++i)
        dir[line(i)];
    EXPECT_GT(dir.stats().rehashes, 0u);
    EXPECT_GE(dir.slotCount(), 512u);

    // The reference from before the rehashes still designates line 0.
    EXPECT_EQ(dir.find(line(0)), &first);
    EXPECT_EQ(first.owner, 17u);
}

TEST(DirTable, EraseTombstonesAndReinsert)
{
    Engine eng;
    DirTable dir(eng, kSharerWords);
    dir[line(1)];
    dir[line(2)];
    EXPECT_FALSE(dir.erase(line(3)));
    EXPECT_TRUE(dir.erase(line(1)));
    EXPECT_EQ(dir.size(), 1u);
    EXPECT_EQ(dir.tombstones(), 1u);
    EXPECT_EQ(dir.find(line(1)), nullptr);
    EXPECT_NE(dir.find(line(2)), nullptr);

    // Reinserting the erased line reclaims its tombstoned slot and
    // recycles the freed entry.
    DirEntry &back = dir[line(1)];
    EXPECT_EQ(dir.tombstones(), 0u);
    EXPECT_EQ(dir.size(), 2u);
    EXPECT_EQ(back.owner, wisync::sim::kNoNode);
    EXPECT_GE(dir.stats().recycled, 1u);
}

TEST(DirTable, TombstoneChurnAtHighLoadFactorStaysCorrect)
{
    Engine eng;
    DirTable dir(eng, kSharerWords);
    std::unordered_set<Addr> live;

    // Insert/erase churn with a sliding window, repeatedly pushing the
    // occupancy (live + tombstones) over the rehash ceiling. The table
    // must agree with the reference set at every step.
    std::uint64_t next = 0;
    for (std::uint64_t round = 0; round < 60; ++round) {
        for (int k = 0; k < 8; ++k) {
            const Addr a = line(next++);
            dir[a];
            live.insert(a);
        }
        if (next > 10) {
            for (std::uint64_t victim = next - 10; victim < next - 4;
                 ++victim) {
                const Addr a = line(victim);
                EXPECT_EQ(dir.erase(a), live.erase(a) == 1);
            }
        }
    }
    EXPECT_EQ(dir.size(), live.size());
    // Every touched line agrees with the reference set: live lines
    // present, erased lines really gone.
    for (std::uint64_t i = 0; i < next; ++i) {
        ASSERT_EQ(dir.find(line(i)) != nullptr, live.count(line(i)) == 1)
            << "line " << i;
    }
    // Churn must have exercised the rehash path.
    EXPECT_GT(dir.stats().rehashes, 0u);
    // Tombstones never exceed the occupancy ceiling alongside live
    // entries (the same-size rehash purges them).
    EXPECT_LE((dir.size() + dir.tombstones()) * 10, dir.slotCount() * 7);
}

/**
 * Machine-level recycling: the same machine reset across sweep points
 * must stop allocating directory entries once the pool is warm.
 */
TEST(DirTable, MachineResetServesDirectoryFromPool)
{
    using wisync::core::ConfigKind;
    using wisync::core::MachineConfig;
    wisync::workloads::TightLoopParams params;
    params.iterations = 2;

    wisync::core::Machine machine(
        MachineConfig::make(ConfigKind::Baseline, 8));
    const auto first = wisync::workloads::runTightLoopOn(machine, params);
    ASSERT_TRUE(first.completed);
    const auto warm = machine.mem().dirPoolStats();
    EXPECT_GT(warm.allocated, 0u);

    machine.reset();
    const auto second = wisync::workloads::runTightLoopOn(machine, params);
    EXPECT_EQ(first.cycles, second.cycles);
    const auto after = machine.mem().dirPoolStats();
    // Same workload, same line set: the second run allocates nothing
    // new and serves every entry from the free lists.
    EXPECT_EQ(after.allocated, warm.allocated);
    EXPECT_GE(after.recycled, warm.allocated);
}

/**
 * Multi-threaded sweep smoke test: four workers each running private
 * machines (and therefore private directories). Under TSan (the CI
 * tsan job runs exactly this binary) any accidental sharing between
 * the per-worker simulators shows up as a race report.
 */
TEST(DirTable, ParallelSweepSmokeIsThreadClean)
{
    using wisync::core::ConfigKind;
    using wisync::core::MachineConfig;
    using wisync::harness::ParallelSweep;

    wisync::workloads::TightLoopParams params;
    params.iterations = 2;
    ParallelSweep sweep;
    for (int rep = 0; rep < 2; ++rep) {
        for (const auto kind :
             {ConfigKind::Baseline, ConfigKind::BaselinePlus,
              ConfigKind::WiSyncNoT, ConfigKind::WiSync}) {
            sweep.add(MachineConfig::make(kind, 8),
                      [params](wisync::core::Machine &m) {
                          return wisync::workloads::runTightLoopOn(m,
                                                                   params);
                      });
        }
    }
    const auto serial = sweep.run(1);
    const auto parallel = sweep.run(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(parallel[i].completed);
        EXPECT_EQ(serial[i].cycles, parallel[i].cycles);
    }
}

} // namespace
