/**
 * @file
 * Unit tests for UniqueFunction's small-buffer optimization and the
 * non-owning FunctionRef.
 */

#include <gtest/gtest.h>

#include <coroutine>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/function.hh"

namespace {

using wisync::sim::FunctionRef;
using wisync::sim::UniqueFunction;

TEST(UniqueFunction, EmptyByDefault)
{
    UniqueFunction f;
    EXPECT_FALSE(static_cast<bool>(f));
    EXPECT_FALSE(f.usesInlineStorage());
}

TEST(UniqueFunction, SmallTriviallyCopyableLambdaStaysInline)
{
    int hits = 0;
    int *p = &hits;
    UniqueFunction f([p] { ++*p; });
    EXPECT_TRUE(static_cast<bool>(f));
    EXPECT_TRUE(f.usesInlineStorage());
    f();
    f();
    EXPECT_EQ(hits, 2);
}

TEST(UniqueFunction, FullWidthPayloadStaysInline)
{
    // Exactly kInlineSize bytes of trivially copyable captures.
    struct Payload
    {
        std::uint64_t a[6];
    };
    static_assert(sizeof(Payload) == UniqueFunction::kInlineSize);
    static std::uint64_t sum;
    sum = 0;
    Payload payload{{1, 2, 3, 4, 5, 6}};
    UniqueFunction f([payload] {
        for (auto v : payload.a)
            sum += v;
    });
    EXPECT_TRUE(f.usesInlineStorage());
    f();
    EXPECT_EQ(sum, 21u);
}

TEST(UniqueFunction, OversizedPayloadFallsBackToHeap)
{
    struct Payload
    {
        std::uint64_t a[7]; // kInlineSize + 8
    };
    Payload payload{};
    payload.a[6] = 42;
    std::uint64_t out = 0;
    UniqueFunction f([payload, &out] { out = payload.a[6]; });
    EXPECT_FALSE(f.usesInlineStorage());
    f();
    EXPECT_EQ(out, 42u);
}

TEST(UniqueFunction, NonTriviallyCopyablePayloadFallsBackToHeap)
{
    auto owned = std::make_unique<int>(7);
    int out = 0;
    UniqueFunction f([owned = std::move(owned), &out] { out = *owned; });
    EXPECT_FALSE(f.usesInlineStorage());
    f();
    EXPECT_EQ(out, 7);
}

TEST(UniqueFunction, CoroutineHandleWrapsInline)
{
    // A raw handle is 8 bytes; the dedicated constructor must never
    // allocate. (Resuming a real coroutine is covered by the engine
    // and primitives tests; here we only check the storage class.)
    UniqueFunction f{std::coroutine_handle<>{}};
    EXPECT_TRUE(static_cast<bool>(f));
    EXPECT_TRUE(f.usesInlineStorage());
}

TEST(UniqueFunction, MovePreservesInlinePayload)
{
    int hits = 0;
    int *p = &hits;
    UniqueFunction a([p] { ++*p; });
    UniqueFunction b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);

    UniqueFunction c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));
    c();
    EXPECT_EQ(hits, 2);
}

TEST(UniqueFunction, MoveAssignDestroysPreviousPayload)
{
    // The heap payload of the assignee must be released exactly once.
    auto counter = std::make_shared<int>(0);
    struct Bump
    {
        std::shared_ptr<int> c;
        explicit Bump(std::shared_ptr<int> cc) : c(std::move(cc)) {}
        Bump(Bump &&) = default;
        ~Bump()
        {
            if (c)
                ++*c;
        }
        void operator()() {}
    };
    {
        UniqueFunction a{Bump{counter}};
        EXPECT_FALSE(a.usesInlineStorage());
        const int before = *counter;
        a = UniqueFunction([] {});
        EXPECT_EQ(*counter, before + 1);
    }
}

TEST(UniqueFunction, VectorCapturesWork)
{
    std::vector<int> v{1, 2, 3};
    int sum = 0;
    UniqueFunction f([v = std::move(v), &sum] {
        for (int x : v)
            sum += x;
    });
    EXPECT_FALSE(f.usesInlineStorage()); // vector: not trivially copyable
    f();
    EXPECT_EQ(sum, 6);
}

TEST(FunctionRef, CallsThroughWithoutOwning)
{
    int calls = 0;
    auto fn = [&calls](int d) { calls += d; };
    FunctionRef<void(int)> ref(fn);
    ref(2);
    ref(3);
    EXPECT_EQ(calls, 5);
}

TEST(FunctionRef, ReturnsValues)
{
    auto fn = [](int a, int b) { return a * b; };
    FunctionRef<int(int, int)> ref(fn);
    EXPECT_EQ(ref(6, 7), 42);
}

} // namespace
