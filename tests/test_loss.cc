/**
 * @file
 * Tests for the lossy wireless channel model and the ack/timeout/
 * bounded-retry reliability layer.
 *
 * Four layers:
 *  - channel-level drop semantics on a bare engine + channel harness
 *    (slot consumption, all-or-nothing delivery, probability
 *    composition of the uniform knob with the SNR-derived table);
 *  - the ack/retry state machine's exact timing (give-up waits only
 *    the final ack window, bounded exponential spacing, maxRetries
 *    accounting) and the telemetry invariant
 *    drops == ackTimeouts == retransmits + giveUps;
 *  - BM-controller degradation: a give-up on an RMW rides the AFB
 *    contract, a give-up on a plain store is re-issued (never lost,
 *    never a hang), spinners always wake;
 *  - machine-level contracts: lossPct = 0 with the loss layer compiled
 *    in (even with odd ack knobs) is bit-identical to the golden
 *    runs, lossy runs are seed-deterministic across repeats /
 *    fresh-vs-reset / fastpath-on-vs-off, and every MacKind terminates
 *    under loss with the give-up bound respected.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "bm/bm_system.hh"
#include "core/machine.hh"
#include "coro/primitives.hh"
#include "sim/engine.hh"
#include "sim/rng.hh"
#include "wireless/data_channel.hh"
#include "wireless/mac/mac_protocol.hh"
#include "wireless/rf_model.hh"
#include "workloads/kernel_result.hh"
#include "workloads/tight_loop.hh"

namespace {

using wisync::bm::BmConfig;
using wisync::bm::BmSystem;
using wisync::core::ConfigKind;
using wisync::core::Machine;
using wisync::core::MachineConfig;
using wisync::coro::spawnNow;
using wisync::coro::Task;
using wisync::sim::BmAddr;
using wisync::sim::Cycle;
using wisync::sim::Engine;
using wisync::sim::NodeId;
using wisync::sim::Pid;
using wisync::sim::Rng;
using wisync::wireless::DataChannel;
using wisync::wireless::Mac;
using wisync::wireless::MacKind;
using wisync::wireless::MacProtocol;
using wisync::wireless::SendOutcome;
using wisync::wireless::WirelessConfig;
using wisync::workloads::KernelResult;

constexpr Pid kPid = 1;

constexpr MacKind kAllMacs[] = {MacKind::Brs, MacKind::Token,
                                MacKind::FuzzyToken, MacKind::Adaptive};

/** Bare harness with a configurable (lossy) channel. */
struct LossyNet
{
    LossyNet(std::uint32_t nodes, const WirelessConfig &cfg)
        : channel(engine, cfg),
          protocol(wisync::wireless::makeMacProtocol(cfg, engine, channel,
                                                     nodes))
    {
        wisync::sim::Rng seeder(4242);
        for (std::uint32_t n = 0; n < nodes; ++n)
            macs.push_back(std::make_unique<Mac>(engine, channel,
                                                 *protocol, n,
                                                 seeder.fork()));
    }

    Engine engine;
    DataChannel channel;
    std::unique_ptr<MacProtocol> protocol;
    std::vector<std::unique_ptr<Mac>> macs;
};

/** BM chip on a configurable channel, region pre-tagged for kPid. */
struct LossChip
{
    explicit LossChip(std::uint32_t nodes, const WirelessConfig &wcfg,
                      bool tone = true)
        : bm(engine, nodes, BmConfig{}, wcfg, Rng(99), tone)
    {
        for (BmAddr a = 0; a < 128; ++a)
            bm.storeArray().setTag(a, kPid);
    }

    Engine engine;
    BmSystem bm;
};

/** TightLoop on a WiSyncNoT/WiSync machine with tweaked wireless cfg. */
KernelResult
runLossyTight(ConfigKind kind, MacKind mac, std::uint32_t cores,
              std::uint32_t iterations,
              const std::function<void(WirelessConfig &)> &tweak,
              Machine *reuse = nullptr, bool fastpath = true)
{
    auto cfg = MachineConfig::make(kind, cores);
    cfg.wireless.macKind = mac;
    tweak(cfg.wireless);
    cfg.setFastpath(fastpath);
    std::unique_ptr<Machine> owned;
    if (reuse != nullptr)
        reuse->reset(cfg);
    else
        owned = std::make_unique<Machine>(cfg);
    Machine &m = reuse != nullptr ? *reuse : *owned;
    wisync::workloads::TightLoopParams params;
    params.iterations = iterations;
    params.runLimit = 20'000'000;
    return wisync::workloads::runTightLoopOn(m, params);
}

// ---- Channel-level drop semantics ---------------------------------

TEST(LossChannel, IdealChannelDrawsNothing)
{
    Engine engine;
    DataChannel channel(engine, WirelessConfig{});
    EXPECT_FALSE(channel.lossy());
    EXPECT_DOUBLE_EQ(channel.dropProbability(0, false), 0.0);
    EXPECT_DOUBLE_EQ(channel.dropProbability(0, true), 0.0);
}

TEST(LossChannel, DropProbabilityComposesUniformAndSnrTable)
{
    Engine engine;
    WirelessConfig cfg;
    cfg.lossPct = 50.0;
    DataChannel channel(engine, cfg);
    EXPECT_TRUE(channel.lossy());
    channel.setDropTable({0.5, 0.0}, {0.2, 0.0});
    // Independent corruption sources: survival probabilities multiply.
    EXPECT_DOUBLE_EQ(channel.dropProbability(0, false), 0.75);
    EXPECT_DOUBLE_EQ(channel.dropProbability(1, false), 0.5);
    EXPECT_DOUBLE_EQ(channel.dropProbability(0, true), 0.6);

    // A drop table alone (berFromSnr without the uniform knob) also
    // arms the loss machinery; clearing it disarms.
    Engine engine2;
    DataChannel snr_only(engine2, WirelessConfig{});
    EXPECT_FALSE(snr_only.lossy());
    snr_only.setDropTable({0.1}, {0.1});
    EXPECT_TRUE(snr_only.lossy());
    snr_only.setDropTable({}, {});
    EXPECT_FALSE(snr_only.lossy());
}

TEST(LossChannel, ResetClearsDropTableAndLossState)
{
    Engine engine;
    WirelessConfig cfg;
    cfg.lossPct = 25.0;
    DataChannel channel(engine, cfg);
    channel.setDropTable({0.5}, {0.5});
    channel.reset(WirelessConfig{});
    EXPECT_FALSE(channel.lossy());
    EXPECT_DOUBLE_EQ(channel.dropProbability(0, false), 0.0);
}

TEST(LossChannel, DropConsumesTheSlotButNeverDelivers)
{
    WirelessConfig cfg;
    cfg.lossPct = 100.0;
    cfg.maxRetries = 0;
    LossyNet net(4, cfg);
    bool delivered = false;
    SendOutcome out = SendOutcome::Delivered;
    spawnNow(net.engine, [&]() -> Task<void> {
        out = co_await net.macs[0]->send(false,
                                         [&] { delivered = true; });
    });
    ASSERT_TRUE(net.engine.run(1'000));
    EXPECT_FALSE(delivered);
    EXPECT_EQ(out, SendOutcome::GaveUp);
    // The corrupted transmission still occupied the air for a full
    // message: the slot is consumed, the drop is counted.
    EXPECT_EQ(net.channel.stats().messages.value(), 1u);
    EXPECT_EQ(net.channel.stats().drops.value(), 1u);
    EXPECT_EQ(net.channel.stats().busyCycles.value(), 5u);
}

TEST(LossChannel, EverySendDeliveredOrReportedUnderHeavyLoss)
{
    WirelessConfig cfg;
    cfg.lossPct = 40.0;
    LossyNet net(8, cfg);
    int delivered = 0, gaveup = 0, callbacks = 0;
    auto sender = [&](int mac) -> Task<void> {
        for (int i = 0; i < 5; ++i) {
            const auto out =
                co_await net.macs[static_cast<std::size_t>(mac)]->send(
                    false, [&] { ++callbacks; });
            if (out == SendOutcome::Delivered)
                ++delivered;
            else if (out == SendOutcome::GaveUp)
                ++gaveup;
        }
    };
    for (int m = 0; m < 8; ++m)
        spawnNow(net.engine, sender, m);
    ASSERT_TRUE(net.engine.run(10'000'000));
    // Typed completion for every send: nothing hangs, nothing is
    // silently lost.
    EXPECT_EQ(delivered + gaveup, 40);
    EXPECT_EQ(callbacks, delivered);
    EXPECT_GE(net.channel.stats().drops.value(), 1u);
    // Every drop is answered by exactly one expired ack window, which
    // ends in exactly one retransmission or give-up.
    const auto &s = net.protocol->stats();
    EXPECT_EQ(s.ackTimeouts.value(), net.channel.stats().drops.value());
    EXPECT_EQ(s.ackTimeouts.value(),
              s.retransmits.value() + s.giveUps.value());
    EXPECT_EQ(s.giveUps.value(), static_cast<std::uint64_t>(gaveup));
}

TEST(LossChannel, LossyRunsAreSeedDeterministic)
{
    auto run = [] {
        WirelessConfig cfg;
        cfg.lossPct = 30.0;
        LossyNet net(16, cfg);
        auto sender = [&](int mac) -> Task<void> {
            for (int i = 0; i < 5; ++i)
                co_await net.macs[static_cast<std::size_t>(mac)]->send(
                    false, [] {});
        };
        for (int m = 0; m < 16; ++m)
            spawnNow(net.engine, sender, m);
        EXPECT_TRUE(net.engine.run(10'000'000));
        EXPECT_GE(net.channel.stats().drops.value(), 1u);
        return std::pair{net.engine.now(),
                         net.channel.stats().drops.value()};
    };
    EXPECT_EQ(run(), run());
}

TEST(LossChannel, FastpathToggleDoesNotMoveLossyCycles)
{
    auto run = [](bool fastpath) {
        WirelessConfig cfg;
        cfg.lossPct = 30.0;
        cfg.fastpath = fastpath;
        LossyNet net(8, cfg);
        auto sender = [&](int mac) -> Task<void> {
            for (int i = 0; i < 5; ++i)
                co_await net.macs[static_cast<std::size_t>(mac)]->send(
                    false, [] {});
        };
        for (int m = 0; m < 8; ++m)
            spawnNow(net.engine, sender, m);
        EXPECT_TRUE(net.engine.run(10'000'000));
        return std::pair{net.engine.now(),
                         net.channel.stats().drops.value()};
    };
    // The fast path's loss recovery re-enters the shared retry loop at
    // the same event-stream position as the coroutine path.
    EXPECT_EQ(run(true), run(false));
}

// ---- Ack/timeout/bounded-retry timing -----------------------------

TEST(AckRetryTiming, GiveUpWaitsOnlyTheFinalAckWindow)
{
    WirelessConfig cfg;
    cfg.lossPct = 100.0;
    cfg.maxRetries = 0;
    cfg.ackTimeoutCycles = 4;
    LossyNet net(2, cfg);
    Cycle done = 0;
    spawnNow(net.engine, [&]() -> Task<void> {
        co_await net.macs[0]->send(false, [] {});
        done = net.engine.now();
    });
    ASSERT_TRUE(net.engine.run(1'000));
    // 5-cycle transmission + the 4-cycle ack window; no backoff is
    // added when no retransmission follows.
    EXPECT_EQ(done, 9u);
    const auto &s = net.protocol->stats();
    EXPECT_EQ(s.ackTimeouts.value(), 1u);
    EXPECT_EQ(s.ackWaitCycles.value(), 4u);
    EXPECT_EQ(s.retransmits.value(), 0u);
    EXPECT_EQ(s.giveUps.value(), 1u);
}

TEST(AckRetryTiming, BoundedExponentialBackoffSchedule)
{
    WirelessConfig cfg;
    cfg.lossPct = 100.0;
    cfg.maxRetries = 2;
    cfg.ackTimeoutCycles = 4;
    cfg.retryBackoffMaxExp = 1;
    LossyNet net(2, cfg);
    Cycle done = 0;
    spawnNow(net.engine, [&]() -> Task<void> {
        co_await net.macs[0]->send(false, [] {});
        done = net.engine.now();
    });
    ASSERT_TRUE(net.engine.run(1'000));
    // tx 0..5, wait 4+2 (exp capped at 1); tx 11..16, wait 4+2;
    // tx 22..27, final ack window 4 -> give up at 31.
    EXPECT_EQ(done, 31u);
    EXPECT_EQ(net.channel.stats().messages.value(), 3u);
    EXPECT_EQ(net.channel.stats().drops.value(), 3u);
    const auto &s = net.protocol->stats();
    EXPECT_EQ(s.ackTimeouts.value(), 3u);
    EXPECT_EQ(s.ackWaitCycles.value(), 6u + 6u + 4u);
    EXPECT_EQ(s.retransmits.value(), 2u);
    EXPECT_EQ(s.giveUps.value(), 1u);
}

TEST(AckRetryTiming, MaxRetriesBoundsTransmissionCount)
{
    WirelessConfig cfg;
    cfg.lossPct = 100.0;
    cfg.maxRetries = 4;
    cfg.ackTimeoutCycles = 4;
    cfg.retryBackoffMaxExp = 0;
    LossyNet net(2, cfg);
    Cycle done = 0;
    spawnNow(net.engine, [&]() -> Task<void> {
        co_await net.macs[0]->send(false, [] {});
        done = net.engine.now();
    });
    ASSERT_TRUE(net.engine.run(1'000));
    // maxRetries + 1 transmissions of 5 cycles, 4 retry waits of
    // 4 + 2^0 and the final 4-cycle ack window.
    EXPECT_EQ(net.channel.stats().messages.value(), 5u);
    EXPECT_EQ(done, 5u * 5u + 4u * 5u + 4u);
    const auto &s = net.protocol->stats();
    EXPECT_EQ(s.retransmits.value(), 4u);
    EXPECT_EQ(s.giveUps.value(), 1u);
}

TEST(AckRetryTiming, PartialLossKeepsTheTelemetryInvariant)
{
    WirelessConfig cfg;
    cfg.lossPct = 60.0;
    cfg.maxRetries = 3;
    LossyNet net(4, cfg);
    auto sender = [&](int mac) -> Task<void> {
        for (int i = 0; i < 3; ++i)
            co_await net.macs[static_cast<std::size_t>(mac)]->send(
                false, [] {});
    };
    for (int m = 0; m < 4; ++m)
        spawnNow(net.engine, sender, m);
    ASSERT_TRUE(net.engine.run(10'000'000));
    const auto &s = net.protocol->stats();
    EXPECT_GE(net.channel.stats().drops.value(), 1u);
    EXPECT_EQ(s.ackTimeouts.value(), net.channel.stats().drops.value());
    EXPECT_EQ(s.ackTimeouts.value(),
              s.retransmits.value() + s.giveUps.value());
}

// ---- BM-controller degradation ------------------------------------

TEST(LossBmSystem, RmwGiveUpSurfacesAsAtomicityFailure)
{
    WirelessConfig wcfg;
    wcfg.lossPct = 100.0;
    wcfg.maxRetries = 0;
    LossChip chip(4, wcfg);
    wisync::bm::RmwResult r;
    spawnNow(chip.engine, [&]() -> Task<void> {
        r = co_await chip.bm.fetchAdd(0, kPid, 3, 1);
    });
    ASSERT_TRUE(chip.engine.run(1'000'000));
    // The give-up rides the AFB contract: the instruction completes,
    // nothing was broadcast, no replica changed — software retries.
    EXPECT_TRUE(r.atomicityFailed);
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(chip.bm.storeArray().read(n, 3), 0u);
    EXPECT_TRUE(chip.bm.storeArray().replicasConsistent());
    EXPECT_GE(chip.bm.macProtocol().stats().giveUps.value(), 1u);
}

TEST(LossBmSystem, PlainStoreGiveUpIsReissuedNeverLost)
{
    WirelessConfig wcfg;
    wcfg.lossPct = 90.0;
    wcfg.maxRetries = 0;
    LossChip chip(4, wcfg);
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.bm.store(0, kPid, 5, 7);
    });
    ASSERT_TRUE(chip.engine.run(10'000'000));
    // A plain store has no AFB to surface through: the controller
    // re-issues until the broadcast lands, and counts the re-issues.
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(chip.bm.storeArray().read(n, 5), 7u);
    EXPECT_TRUE(chip.bm.storeArray().replicasConsistent());
    EXPECT_GE(chip.bm.stats().sendReissues.value(), 1u);
    EXPECT_GE(chip.bm.macProtocol().stats().giveUps.value(), 1u);
}

TEST(LossBmSystem, SpinnerAlwaysWakesUnderLoss)
{
    WirelessConfig wcfg;
    wcfg.lossPct = 80.0;
    LossChip chip(4, wcfg);
    std::uint64_t seen = 0;
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.bm.store(0, kPid, 7, 42);
    });
    spawnNow(chip.engine, [&]() -> Task<void> {
        seen = co_await chip.bm.spinUntil(
            2, kPid, 7, [](std::uint64_t v) { return v != 0; });
    });
    // A dropped broadcast delivers at no node (all-or-nothing), so the
    // spinner cannot observe a half-written value, and the retry/
    // re-issue machinery guarantees the wakeup eventually arrives.
    ASSERT_TRUE(chip.engine.run(10'000'000));
    EXPECT_EQ(seen, 42u);
    EXPECT_TRUE(chip.bm.storeArray().replicasConsistent());
    EXPECT_GE(chip.bm.dataChannel().stats().drops.value(), 1u);
}

TEST(LossBmSystem, SnrModelInstallsPerTransmitterDropTable)
{
    WirelessConfig wcfg;
    wcfg.berFromSnr = true;
    LossChip chip(16, wcfg);
    ASSERT_NE(chip.bm.rfChannelModel(), nullptr);
    EXPECT_TRUE(chip.bm.dataChannel().lossy());
    // At the default transmit power every in-package link has tens of
    // dB of SNR margin: the derived loss is negligible.
    EXPECT_LT(chip.bm.dataChannel().dropProbability(0, false), 1e-6);

    // Without berFromSnr no model is built and the channel is ideal.
    LossChip ideal(16, WirelessConfig{});
    EXPECT_EQ(ideal.bm.rfChannelModel(), nullptr);
    EXPECT_FALSE(ideal.bm.dataChannel().lossy());
}

TEST(LossBmSystem, LinkOverrideWalksOneTransmitterIntoLoss)
{
    WirelessConfig wcfg;
    wcfg.berFromSnr = true;
    LossChip chip(4, wcfg);
    chip.bm.overrideLinkPathLoss(0, 1, 150.0);
    // Node 0's broadcasts now die at receiver 1 (all-or-nothing:
    // the whole transmission is void); other transmitters are clean.
    EXPECT_GT(chip.bm.dataChannel().dropProbability(0, false), 0.99);
    EXPECT_LT(chip.bm.dataChannel().dropProbability(1, false), 1e-6);
}

// ---- Machine-level contracts --------------------------------------

TEST(LossMachine, Loss0WithOddAckKnobsMatchesGoldenRun)
{
    // The hard invariant, pinned to the pre-loss golden numbers: the
    // reliability layer compiled in but disabled — even with every
    // ack/retry knob moved off its default — cannot move a cycle.
    const auto r = runLossyTight(ConfigKind::WiSyncNoT, MacKind::Brs, 16,
                                 8, [](WirelessConfig &w) {
                                     w.lossPct = 0.0;
                                     w.ackTimeoutCycles = 11;
                                     w.maxRetries = 1;
                                     w.retryBackoffMaxExp = 2;
                                 });
    EXPECT_EQ(r.cycles, 5984u);
    EXPECT_EQ(r.wirelessDrops, 0u);
    EXPECT_EQ(r.macAckTimeouts, 0u);
    EXPECT_EQ(r.macRetransmits, 0u);
    EXPECT_EQ(r.macGiveups, 0u);

    const auto base = runLossyTight(ConfigKind::WiSyncNoT, MacKind::Brs,
                                    16, 8, [](WirelessConfig &) {});
    EXPECT_TRUE(wisync::workloads::bitIdentical(base, r));
}

class LossMachineKinds : public ::testing::TestWithParam<MacKind>
{};

INSTANTIATE_TEST_SUITE_P(Kinds, LossMachineKinds,
                         ::testing::ValuesIn(kAllMacs));

TEST_P(LossMachineKinds, LossyRunTerminatesDeterministically)
{
    auto tweak = [](WirelessConfig &w) { w.lossPct = 25.0; };
    const auto a = runLossyTight(ConfigKind::WiSyncNoT, GetParam(), 16,
                                 5, tweak);
    const auto b = runLossyTight(ConfigKind::WiSyncNoT, GetParam(), 16,
                                 5, tweak);
    ASSERT_TRUE(a.completed);
    EXPECT_TRUE(wisync::workloads::bitIdentical(a, b));
    EXPECT_GE(a.wirelessDrops, 1u);
    // Every drop -> one expired ack window -> one retransmission or
    // give-up; nothing is silently lost.
    EXPECT_EQ(a.wirelessDrops, a.macAckTimeouts);
    EXPECT_EQ(a.macAckTimeouts, a.macRetransmits + a.macGiveups);
}

TEST_P(LossMachineKinds, FreshVsResetIdenticalUnderLoss)
{
    auto tweak = [](WirelessConfig &w) { w.lossPct = 25.0; };
    const auto fresh = runLossyTight(ConfigKind::WiSyncNoT, GetParam(),
                                     16, 4, tweak);
    Machine persistent(MachineConfig::make(ConfigKind::WiSyncNoT, 16));
    const auto reused = runLossyTight(ConfigKind::WiSyncNoT, GetParam(),
                                      16, 4, tweak, &persistent);
    ASSERT_TRUE(fresh.completed);
    EXPECT_TRUE(wisync::workloads::bitIdentical(fresh, reused));
}

TEST(LossMachine, FastpathToggleIdenticalUnderLoss)
{
    auto tweak = [](WirelessConfig &w) { w.lossPct = 25.0; };
    const auto on = runLossyTight(ConfigKind::WiSyncNoT, MacKind::Brs,
                                  16, 5, tweak, nullptr, true);
    const auto off = runLossyTight(ConfigKind::WiSyncNoT, MacKind::Brs,
                                   16, 5, tweak, nullptr, false);
    ASSERT_TRUE(on.completed);
    EXPECT_TRUE(wisync::workloads::bitIdentical(on, off));
    EXPECT_GE(on.wirelessDrops, 1u);
}

TEST(LossMachine, ToneConfigCompletesUnderLoss)
{
    // The tone-barrier announcement path (cancellable, re-issued on
    // give-up) must never lose a wakeup under a lossy channel.
    const auto r = runLossyTight(ConfigKind::WiSync, MacKind::Brs, 16, 4,
                                 [](WirelessConfig &w) {
                                     w.lossPct = 30.0;
                                 });
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.wirelessDrops, 1u);
    EXPECT_EQ(r.wirelessDrops, r.macAckTimeouts);
}

TEST(LossMachine, GiveUpsSurfaceWithoutHanging)
{
    // maxRetries = 0 turns every drop into a typed give-up; the
    // kernel still terminates (AFB retries + store re-issue).
    const auto r = runLossyTight(ConfigKind::WiSyncNoT, MacKind::Brs, 16,
                                 4, [](WirelessConfig &w) {
                                     w.lossPct = 60.0;
                                     w.maxRetries = 0;
                                 });
    ASSERT_TRUE(r.completed);
    EXPECT_GE(r.macGiveups, 1u);
    EXPECT_EQ(r.macRetransmits, 0u);
    EXPECT_EQ(r.wirelessDrops, r.macGiveups);
}

TEST(LossMachine, SnrDerivedLossIsDeterministic)
{
    auto tweak = [](WirelessConfig &w) {
        w.berFromSnr = true;
        // Leaves the corner transmitters' farthest links marginal
        // while central nodes stay clean — the heterogeneous regime.
        w.txPowerDbm = 0.0;
    };
    const auto a = runLossyTight(ConfigKind::WiSyncNoT, MacKind::Brs, 16,
                                 8, tweak);
    const auto b = runLossyTight(ConfigKind::WiSyncNoT, MacKind::Brs, 16,
                                 8, tweak);
    ASSERT_TRUE(a.completed);
    EXPECT_TRUE(wisync::workloads::bitIdentical(a, b));
    EXPECT_GE(a.wirelessDrops, 1u);
}

} // namespace
