/**
 * @file
 * Tests for the OS runtime: PIDs, broadcast-variable allocation with
 * spill-to-memory, tone-barrier arming.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/os.hh"

namespace {

using wisync::core::BVar;
using wisync::core::bvarFetchAdd;
using wisync::core::bvarLoad;
using wisync::core::bvarStore;
using wisync::core::ConfigKind;
using wisync::core::Machine;
using wisync::core::MachineConfig;
using wisync::core::Os;
using wisync::core::ThreadCtx;
using wisync::coro::Task;
using wisync::sim::NodeId;

TEST(Os, FreshPidsAreUnique)
{
    Machine m(MachineConfig::make(ConfigKind::WiSync, 4));
    Os os(m);
    const auto a = os.newProgram();
    const auto b = os.newProgram();
    EXPECT_NE(a, b);
}

TEST(Os, BroadcastVariableRoundTrip)
{
    Machine m(MachineConfig::make(ConfigKind::WiSync, 4));
    Os os(m);
    std::uint64_t seen = 0;
    m.spawnThread(0, [&](ThreadCtx &ctx) -> Task<void> {
        const BVar var = co_await os.allocBroadcast(ctx, 2);
        EXPECT_TRUE(var.inBm);
        co_await bvarStore(ctx, var, 11, 0);
        co_await bvarStore(ctx, var, 22, 1);
        co_await bvarFetchAdd(ctx, var, 5, 0);
        seen = co_await bvarLoad(ctx, var, 0) * 100 +
               co_await bvarLoad(ctx, var, 1);
        co_await os.freeBroadcast(ctx, var);
    });
    EXPECT_TRUE(m.run());
    EXPECT_EQ(seen, 16u * 100 + 22);
}

TEST(Os, SpillsToMemoryWhenBmExhausted)
{
    Machine m(MachineConfig::make(ConfigKind::WiSync, 2));
    Os os(m);
    bool spilled_works = false;
    m.spawnThread(0, [&](ThreadCtx &ctx) -> Task<void> {
        // Consume the whole BM, then allocate once more.
        const auto cap = m.bm()->config().words();
        const BVar big = co_await os.allocBroadcast(ctx, cap);
        EXPECT_TRUE(big.inBm);
        const BVar spill = co_await os.allocBroadcast(ctx, 4);
        EXPECT_FALSE(spill.inBm);
        co_await bvarStore(ctx, spill, 99, 3);
        spilled_works = co_await bvarLoad(ctx, spill, 3) == 99;
    });
    EXPECT_TRUE(m.run());
    EXPECT_TRUE(spilled_works);
}

TEST(Os, BaselineAllocationsAlwaysSpill)
{
    Machine m(MachineConfig::make(ConfigKind::Baseline, 2));
    Os os(m);
    m.spawnThread(0, [&](ThreadCtx &ctx) -> Task<void> {
        const BVar var = co_await os.allocBroadcast(ctx, 1);
        EXPECT_FALSE(var.inBm);
        co_await bvarStore(ctx, var, 5);
        EXPECT_EQ(co_await bvarLoad(ctx, var), 5u);
    });
    EXPECT_TRUE(m.run());
}

TEST(Os, ToneBarrierAllocationArmsParticipants)
{
    Machine m(MachineConfig::make(ConfigKind::WiSync, 4));
    Os os(m);
    bool ok = false;
    m.spawnThread(0, [&](ThreadCtx &ctx) -> Task<void> {
        std::vector<NodeId> parts{0, 2};
        const auto bar = co_await os.allocToneBarrier(ctx, parts);
        EXPECT_TRUE(bar.has_value());
        if (!bar.has_value())
            co_return; // ASSERT is not usable inside a coroutine
        EXPECT_TRUE(m.bm()->toneChannel()->isArmed(*bar, 0));
        EXPECT_FALSE(m.bm()->toneChannel()->isArmed(*bar, 1));
        EXPECT_TRUE(m.bm()->toneChannel()->isArmed(*bar, 2));
        os.freeToneBarrier(*bar);
        EXPECT_FALSE(m.bm()->toneChannel()->isAllocated(*bar));
        ok = true;
    });
    EXPECT_TRUE(m.run());
    EXPECT_TRUE(ok);
}

TEST(Os, ToneBarrierUnavailableOnWiSyncNoT)
{
    Machine m(MachineConfig::make(ConfigKind::WiSyncNoT, 4));
    Os os(m);
    m.spawnThread(0, [&](ThreadCtx &ctx) -> Task<void> {
        std::vector<NodeId> parts{0, 1};
        const auto bar = co_await os.allocToneBarrier(ctx, parts);
        EXPECT_FALSE(bar.has_value());
    });
    EXPECT_TRUE(m.run());
}

TEST(Os, TwoProgramsAreIsolated)
{
    Machine m(MachineConfig::make(ConfigKind::WiSync, 4));
    Os os(m);
    const auto pid_a = os.newProgram();
    const auto pid_b = os.newProgram();
    bool faulted = false;
    m.spawnThread(
        0,
        [&](ThreadCtx &ctx) -> Task<void> {
            const BVar var = co_await os.allocBroadcast(ctx, 1);
            co_await bvarStore(ctx, var, 1);
            // Leak the address to program B via host state:
            static wisync::sim::BmAddr leaked;
            leaked = var.bmAddr;
            co_await ctx.compute(1000);
            (void)leaked;
        },
        pid_a);
    m.spawnThread(
        1,
        [&](ThreadCtx &ctx) -> Task<void> {
            co_await ctx.compute(500); // after A's allocation
            try {
                co_await ctx.bmLoad(0); // A's word
            } catch (const wisync::bm::ProtectionFault &) {
                faulted = true;
            }
        },
        pid_b);
    EXPECT_TRUE(m.run());
    EXPECT_TRUE(faulted);
}

} // namespace
