/**
 * @file
 * Reset-equivalence golden tests.
 *
 * The Machine::reset contract: a reset machine is observationally
 * identical to a freshly constructed one — same event ordering, same
 * RNG streams, bit-identical stats, cycle counts and final memory/BM
 * contents for the same workload. Verified here for every ConfigKind
 * (each exercises a different sync library: CAS/centralized barrier,
 * MCS/tournament, BM/Data-channel, BM/Tone) crossed with a grid of
 * workloads (barrier-storm TightLoop, lock-free CAS kernels, the
 * lock+barrier synthetic app), plus the nasty cases: reset after a
 * *partial* run (threads and hardware transactions destroyed
 * mid-flight) and reset that retimes the machine to a different
 * variant.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "harness/sweep.hh"
#include "workloads/apps.hh"
#include "workloads/cas_kernels.hh"
#include "workloads/tight_loop.hh"

namespace {

using wisync::core::ConfigKind;
using wisync::core::Machine;
using wisync::core::MachineConfig;
using wisync::core::Variant;

/** Everything observable we can cheaply capture after a run. */
struct Snapshot
{
    std::uint64_t cycles = 0;
    std::uint64_t events = 0;
    std::uint64_t memFingerprint = 0;
    std::uint64_t memWords = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t meshMessages = 0;
    std::uint64_t meshFlits = 0;
    std::uint64_t bmFingerprint = 0;
    std::uint64_t bmLoads = 0;
    std::uint64_t bmStores = 0;
    std::uint64_t bmRmws = 0;
    std::uint64_t afbFailures = 0;
    std::uint64_t wirelessMessages = 0;
    std::uint64_t collisions = 0;
    std::uint64_t toneReleases = 0;

    bool operator==(const Snapshot &) const = default;
};

Snapshot
capture(Machine &m)
{
    Snapshot s;
    s.cycles = m.engine().now();
    s.events = m.engine().eventsExecuted();
    s.memFingerprint = m.memory().fingerprint();
    s.memWords = m.memory().footprintWords();
    const auto &ms = m.mem().stats();
    s.loads = ms.loads.value();
    s.stores = ms.stores.value();
    s.l1Hits = ms.l1Hits.value();
    s.l1Misses = ms.l1Misses.value();
    s.invalidations = ms.invalidations.value();
    s.writebacks = ms.writebacks.value();
    s.meshMessages = m.mesh().stats().messages.value();
    s.meshFlits = m.mesh().stats().flits.value();
    if (m.bm() != nullptr) {
        s.bmFingerprint = m.bm()->storeArray().fingerprint();
        const auto &bs = m.bm()->stats();
        s.bmLoads = bs.loads.value();
        s.bmStores = bs.stores.value();
        s.bmRmws = bs.rmws.value();
        s.afbFailures = bs.afbFailures.value();
        const auto &cs = m.bm()->dataChannel().stats();
        s.wirelessMessages = cs.messages.value();
        s.collisions = cs.collisions.value();
        if (m.bm()->hasTone())
            s.toneReleases = m.bm()->toneChannel()->stats()
                                 .releases.value();
    }
    return s;
}

/** Field-by-field comparison for readable failures. */
void
expectEqual(const Snapshot &a, const Snapshot &b, const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.events, b.events);
    EXPECT_EQ(a.memFingerprint, b.memFingerprint);
    EXPECT_EQ(a.memWords, b.memWords);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.invalidations, b.invalidations);
    EXPECT_EQ(a.writebacks, b.writebacks);
    EXPECT_EQ(a.meshMessages, b.meshMessages);
    EXPECT_EQ(a.meshFlits, b.meshFlits);
    EXPECT_EQ(a.bmFingerprint, b.bmFingerprint);
    EXPECT_EQ(a.bmLoads, b.bmLoads);
    EXPECT_EQ(a.bmStores, b.bmStores);
    EXPECT_EQ(a.bmRmws, b.bmRmws);
    EXPECT_EQ(a.afbFailures, b.afbFailures);
    EXPECT_EQ(a.wirelessMessages, b.wirelessMessages);
    EXPECT_EQ(a.collisions, b.collisions);
    EXPECT_EQ(a.toneReleases, b.toneReleases);
    EXPECT_TRUE(a == b); // catches any field added later
}

/** One workload of the grid: run it to completion on @p m. */
struct Workload
{
    const char *name;
    std::function<void(Machine &)> run;
};

const std::vector<Workload> &
workloadGrid()
{
    static const std::vector<Workload> grid = {
        {"tightloop",
         [](Machine &m) {
             wisync::workloads::TightLoopParams p;
             p.iterations = 4;
             p.arrayElems = 16;
             wisync::workloads::runTightLoopOn(m, p);
         }},
        {"cas-add",
         [](Machine &m) {
             wisync::workloads::CasKernelParams p;
             p.criticalSectionInstr = 64;
             p.duration = 20'000;
             wisync::workloads::runCasKernelOn(
                 wisync::workloads::CasKernel::Add, m, p);
         }},
        {"app-blackscholes",
         [](Machine &m) {
             wisync::workloads::runAppOn(
                 wisync::workloads::appByName("blackscholes"), m);
         }},
    };
    return grid;
}

class ResetEquivalence
    : public ::testing::TestWithParam<std::tuple<ConfigKind, int>>
{};

INSTANTIATE_TEST_SUITE_P(
    Grid, ResetEquivalence,
    ::testing::Combine(::testing::Values(ConfigKind::Baseline,
                                         ConfigKind::BaselinePlus,
                                         ConfigKind::WiSyncNoT,
                                         ConfigKind::WiSync),
                       ::testing::Values(0, 1, 2)),
    [](const auto &info) {
        std::string name =
            std::string(wisync::core::toString(std::get<0>(info.param))) +
            "_" +
            workloadGrid()[static_cast<std::size_t>(std::get<1>(
                               info.param))]
                .name;
        for (auto &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

TEST_P(ResetEquivalence, ResetMachineMatchesFreshBitForBit)
{
    const auto [kind, wl] = GetParam();
    const auto &workload = workloadGrid()[static_cast<std::size_t>(wl)];
    const auto cfg = MachineConfig::make(kind, 8);

    // Golden run on a fresh machine.
    Machine fresh(cfg);
    workload.run(fresh);
    const Snapshot golden = capture(fresh);

    // Dirty a second machine with a different workload, then reset and
    // replay: every observable must match the golden run.
    Machine reused(cfg);
    const auto dirty = (static_cast<std::size_t>(wl) + 1) %
                       workloadGrid().size();
    workloadGrid()[dirty].run(reused);
    reused.reset();
    workload.run(reused);
    expectEqual(golden, capture(reused), "after completed-run reset");

    // Reset again without running anything in between (idempotence).
    reused.reset();
    workload.run(reused);
    expectEqual(golden, capture(reused), "after back-to-back reset");
}

TEST_P(ResetEquivalence, ResetMidRunDestroysInFlightStateCleanly)
{
    const auto [kind, wl] = GetParam();
    const auto &workload = workloadGrid()[static_cast<std::size_t>(wl)];
    const auto cfg = MachineConfig::make(kind, 8);

    Machine fresh(cfg);
    workload.run(fresh);
    const Snapshot golden = capture(fresh);

    // Interrupt the same workload mid-flight: spawn it, run only a
    // few hundred cycles (threads parked in mutexes/channels/BM
    // retries), then reset. The replay must still be bit-identical.
    Machine reused(cfg);
    {
        wisync::workloads::TightLoopParams p;
        p.iterations = 50;
        p.runLimit = 300; // guaranteed incomplete
        wisync::workloads::runTightLoopOn(reused, p);
        EXPECT_GT(reused.liveThreads(), 0u);
    }
    reused.reset();
    EXPECT_EQ(reused.liveThreads(), 0u);
    EXPECT_EQ(reused.engine().now(), 0u);
    EXPECT_EQ(reused.engine().pendingEvents(), 0u);
    workload.run(reused);
    expectEqual(golden, capture(reused), "after mid-run reset");
}

TEST(MachineReset, RetimingResetMatchesFreshVariantMachine)
{
    // A machine built as SlowNet, dirtied, then reset with the Default
    // config must behave exactly like a fresh Default machine (and
    // vice versa): reset re-applies every timing knob.
    for (const auto kind :
         {ConfigKind::Baseline, ConfigKind::WiSync}) {
        SCOPED_TRACE(wisync::core::toString(kind));
        wisync::workloads::TightLoopParams p;
        p.iterations = 4;
        p.arrayElems = 16;

        Machine fresh(MachineConfig::make(kind, 8, Variant::Default));
        wisync::workloads::runTightLoopOn(fresh, p);
        const Snapshot golden = capture(fresh);

        Machine retimed(MachineConfig::make(kind, 8, Variant::SlowNet));
        wisync::workloads::runTightLoopOn(retimed, p);
        const Snapshot slow = capture(retimed);
        EXPECT_NE(golden.cycles, slow.cycles)
            << "variants should differ, or this test is vacuous";

        retimed.reset(MachineConfig::make(kind, 8, Variant::Default));
        wisync::workloads::runTightLoopOn(retimed, p);
        expectEqual(golden, capture(retimed), "after retiming reset");
    }
}

TEST(MachineReset, KindChangeThroughResetMatchesFreshKind)
{
    // ConfigKind is behavioral, not structural: one machine must move
    // between all four kinds and stay bit-identical to fresh builds.
    const ConfigKind kinds[] = {ConfigKind::WiSync, ConfigKind::Baseline,
                                ConfigKind::WiSyncNoT,
                                ConfigKind::BaselinePlus,
                                ConfigKind::WiSync};
    wisync::workloads::TightLoopParams p;
    p.iterations = 4;
    p.arrayElems = 16;

    Machine m(MachineConfig::make(kinds[0], 8));
    for (const auto kind : kinds) {
        SCOPED_TRACE(wisync::core::toString(kind));
        Machine fresh(MachineConfig::make(kind, 8));
        wisync::workloads::runTightLoopOn(fresh, p);

        m.reset(MachineConfig::make(kind, 8));
        EXPECT_EQ(m.bm() != nullptr,
                  MachineConfig::make(kind, 8).hasWireless());
        wisync::workloads::runTightLoopOn(m, p);
        expectEqual(capture(fresh), capture(m), "kind flip via reset");
    }
}

TEST(MachineReset, SeedChangeThroughResetMatchesFreshSeed)
{
    auto cfgA = MachineConfig::make(ConfigKind::WiSync, 8);
    cfgA.seed = 111;
    auto cfgB = cfgA;
    cfgB.seed = 222;

    wisync::workloads::TightLoopParams p;
    p.iterations = 4;

    Machine freshB(cfgB);
    wisync::workloads::runTightLoopOn(freshB, p);
    const Snapshot golden = capture(freshB);

    Machine m(cfgA);
    wisync::workloads::runTightLoopOn(m, p);
    m.reset(cfgB);
    wisync::workloads::runTightLoopOn(m, p);
    expectEqual(golden, capture(m), "seed change via reset");
}

TEST(SweepHarness, ReusesShapeCompatibleMachinesAndStaysGolden)
{
    wisync::harness::SweepHarness machines;
    wisync::workloads::TightLoopParams p;
    p.iterations = 3;
    p.arrayElems = 8;

    // Golden references on fresh machines.
    std::vector<Snapshot> golden;
    for (const auto v : {Variant::Default, Variant::SlowNet}) {
        Machine fresh(MachineConfig::make(ConfigKind::WiSync, 8, v));
        wisync::workloads::runTightLoopOn(fresh, p);
        golden.push_back(capture(fresh));
    }

    // The harness serves both sweep points from one machine.
    int i = 0;
    for (const auto v : {Variant::Default, Variant::SlowNet}) {
        Machine &m = machines.acquire(
            MachineConfig::make(ConfigKind::WiSync, 8, v));
        wisync::workloads::runTightLoopOn(m, p);
        expectEqual(golden[static_cast<std::size_t>(i++)], capture(m),
                    "harness sweep point");
    }
    if (wisync::harness::SweepHarness::reuseEnabled()) {
        EXPECT_EQ(machines.builds(), 1u);
        EXPECT_EQ(machines.reuses(), 1u);
    }

    // A different shape forces a build.
    machines.acquire(MachineConfig::make(ConfigKind::WiSync, 16));
    EXPECT_GE(machines.builds(), 2u);
}

/**
 * Spin-watch recycling: like the directory pool, the memory system's
 * watch table must stop allocating once warm — a reset-reused machine
 * serves every spin watch of the second run from the free list.
 */
TEST(MachineReset, ServesSpinWatchesFromThePool)
{
    wisync::workloads::TightLoopParams params;
    params.iterations = 2;

    Machine machine(MachineConfig::make(ConfigKind::Baseline, 8));
    const auto first = wisync::workloads::runTightLoopOn(machine, params);
    ASSERT_TRUE(first.completed);
    const auto warm = machine.mem().watchPoolStats();
    EXPECT_GT(warm.allocated, 0u);

    machine.reset();
    const auto second = wisync::workloads::runTightLoopOn(machine, params);
    EXPECT_EQ(first.cycles, second.cycles);
    const auto after = machine.mem().watchPoolStats();
    // Same workload, same watched locations: zero new allocations,
    // everything recycled.
    EXPECT_EQ(after.allocated, warm.allocated);
    EXPECT_GE(after.recycled, warm.allocated);
}

TEST(MachineResetDeathTest, IncompatibleShapeIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Machine m(MachineConfig::make(ConfigKind::WiSync, 8));
    EXPECT_EXIT(m.reset(MachineConfig::make(ConfigKind::WiSync, 16)),
                ::testing::ExitedWithCode(1), "shape-compatible");
}

} // namespace
