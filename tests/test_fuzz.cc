/**
 * @file
 * Randomized cross-module fuzz: threads on every configuration issue
 * random mixes of memory ops, BM ops, locks and barriers; the run
 * must complete, preserve value invariants, keep BM replicas
 * identical, and be bit-for-bit deterministic across repeats.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <fstream>
#include <functional>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/machine.hh"
#include "harness/parallel_sweep.hh"
#include "service/cache_store.hh"
#include "service/config_codec.hh"
#include "service/daemon.hh"
#include "service/fault.hh"
#include "service/json.hh"
#include "service/shard_planner.hh"
#include "service/sweep_service.hh"
#include "sim/rng.hh"
#include "sync/factory.hh"
#include "workloads/tight_loop.hh"

namespace {

using wisync::core::ConfigKind;
using wisync::core::Machine;
using wisync::core::MachineConfig;
using wisync::core::ThreadCtx;
using wisync::coro::Task;
using wisync::sim::Addr;
using wisync::sim::NodeId;
using wisync::wireless::MacKind;

constexpr MacKind kMacKinds[] = {MacKind::Brs, MacKind::Token,
                                 MacKind::FuzzyToken, MacKind::Adaptive};

/** Everything a fuzz thread needs, owned by the driving test frame. */
struct FuzzEnv
{
    wisync::sync::Barrier *barrier;
    wisync::sync::Lock *lock;
    Addr counter;
    Addr shared;
    wisync::sim::BmAddr bmCounter;
    std::uint64_t seed;
    int ops;
};

Task<void>
fuzzThread(ThreadCtx &ctx, const FuzzEnv *env, NodeId n)
{
    wisync::sim::Rng rng(env->seed ^ (n * 0x9E3779B97F4A7C15ull + 1));
    const bool has_bm = ctx.machine().bm() != nullptr;
    for (int i = 0; i < env->ops; ++i) {
        switch (rng.below(has_bm ? 6 : 5)) {
          case 0:
            co_await ctx.compute(rng.between(1, 200));
            break;
          case 1:
            co_await ctx.load(env->shared + rng.below(64) * 64);
            break;
          case 2:
            co_await ctx.store(env->shared + rng.below(64) * 64,
                               rng.next());
            break;
          case 3:
            co_await ctx.fetchAdd(env->counter, 1);
            break;
          case 4: {
            co_await env->lock->acquire(ctx);
            const auto v = co_await ctx.load(env->counter);
            co_await ctx.store(env->counter, v + 1);
            co_await env->lock->release(ctx);
            break;
          }
          case 5:
            co_await ctx.bmFetchAdd(env->bmCounter, 1);
            break;
        }
    }
    co_await env->barrier->wait(ctx);
}

struct FuzzResult
{
    wisync::sim::Cycle cycles = 0;
    std::uint64_t counter = 0;
    std::uint64_t bmCounter = 0;
    bool replicasOk = false;
    bool completed = false;
};

/**
 * One randomized run. With @p reuse the workload executes on that
 * (shape-compatible) machine after a reset instead of on a fresh
 * build — per the reset contract the results must be identical.
 */
FuzzResult
fuzzRun(ConfigKind kind, std::uint64_t seed, std::uint32_t threads,
        int ops_per_thread, Machine *reuse = nullptr,
        MacKind mac = MacKind::Brs, bool fastpath = true,
        double loss_pct = 0.0, bool ber_from_snr = false,
        double tx_power_dbm = 10.0,
        const std::function<void(MachineConfig &)> &tweak = {})
{
    auto cfg = MachineConfig::make(kind, threads);
    cfg.seed = seed;
    cfg.wireless.macKind = mac;
    cfg.wireless.lossPct = loss_pct;
    cfg.wireless.berFromSnr = ber_from_snr;
    cfg.wireless.txPowerDbm = tx_power_dbm;
    cfg.setFastpath(fastpath);
    if (tweak)
        tweak(cfg);
    std::unique_ptr<Machine> owned;
    if (reuse != nullptr) {
        reuse->reset(cfg);
    } else {
        owned = std::make_unique<Machine>(cfg);
    }
    Machine &m = reuse != nullptr ? *reuse : *owned;
    wisync::sync::SyncFactory factory(m);
    std::vector<NodeId> nodes;
    for (NodeId n = 0; n < threads; ++n)
        nodes.push_back(n);
    auto barrier = factory.makeBarrier(nodes);
    auto lock = factory.makeLock();

    FuzzEnv env;
    env.barrier = barrier.get();
    env.lock = lock.get();
    env.counter = m.allocMem(64, 64);
    env.shared = m.allocMem(64 * 64, 64);
    env.bmCounter = 0;
    env.seed = seed;
    env.ops = ops_per_thread;
    if (m.bm()) {
        EXPECT_TRUE(m.allocBm(1, env.bmCounter));
        m.bm()->storeArray().setTag(env.bmCounter, 1);
    }

    for (NodeId n = 0; n < threads; ++n) {
        m.spawnThread(n, [&env, n](ThreadCtx &ctx) {
            return fuzzThread(ctx, &env, n);
        });
    }

    FuzzResult r;
    r.completed = m.run(400'000'000ull);
    r.cycles = m.engine().now();
    r.counter = m.memory().read64(env.counter);
    r.bmCounter =
        m.bm() ? m.bm()->storeArray().read(0, env.bmCounter) : 0;
    r.replicasOk =
        m.bm() ? m.bm()->storeArray().replicasConsistent() : true;
    return r;
}

class FuzzAllConfigs : public ::testing::TestWithParam<ConfigKind>
{};

INSTANTIATE_TEST_SUITE_P(Configs, FuzzAllConfigs,
                         ::testing::Values(ConfigKind::Baseline,
                                           ConfigKind::BaselinePlus,
                                           ConfigKind::WiSyncNoT,
                                           ConfigKind::WiSync));

TEST_P(FuzzAllConfigs, RandomMixPreservesInvariants)
{
    const auto r = fuzzRun(GetParam(), 0xC0FFEE, 8, 40);
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.replicasOk);
    // The counter only receives +1 ops (atomic or lock-guarded), at
    // most ops_per_thread per thread; none may be lost or invented.
    EXPECT_GT(r.counter + r.bmCounter, 0u);
    EXPECT_LE(r.counter + r.bmCounter, 8u * 40u);
}

TEST_P(FuzzAllConfigs, DeterministicAcrossRepeats)
{
    const auto a = fuzzRun(GetParam(), 1234, 8, 30);
    const auto b = fuzzRun(GetParam(), 1234, 8, 30);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.counter, b.counter);
    EXPECT_EQ(a.bmCounter, b.bmCounter);
}

TEST_P(FuzzAllConfigs, FreshVsResetAlternationStaysEquivalent)
{
    // Randomly alternate between fresh machines and one persistent
    // reset-reused machine across randomized iterations; every reused
    // run must be bit-identical to its fresh reference.
    const auto kind = GetParam();
    Machine persistent(MachineConfig::make(kind, 8));
    wisync::sim::Rng pick(0xA1B2C3D4);
    int reused_runs = 0;
    for (int i = 0; i < 8; ++i) {
        const std::uint64_t seed = 5000 + static_cast<std::uint64_t>(i);
        const auto reference = fuzzRun(kind, seed, 8, 15);
        ASSERT_TRUE(reference.completed);
        FuzzResult other;
        if (pick.chance(0.5)) {
            other = fuzzRun(kind, seed, 8, 15, &persistent);
            ++reused_runs;
        } else {
            other = fuzzRun(kind, seed, 8, 15);
        }
        EXPECT_EQ(reference.cycles, other.cycles) << "iteration " << i;
        EXPECT_EQ(reference.counter, other.counter) << "iteration " << i;
        EXPECT_EQ(reference.bmCounter, other.bmCounter)
            << "iteration " << i;
        EXPECT_TRUE(other.replicasOk);
    }
    // The deterministic pick stream exercises both paths.
    EXPECT_GT(reused_runs, 0);
    EXPECT_LT(reused_runs, 8);
}

TEST_P(FuzzAllConfigs, FastpathToggleTriIdentity)
{
    // Random WISYNC_NO_FASTPATH-style toggles through one persistent
    // reset machine: every round runs (1) fresh with fast paths on,
    // (2) the persistent machine reset to a randomly chosen fastpath
    // setting, (3) fresh with fast paths off — and all three must be
    // bit-identical in every simulated observable (the fast paths are
    // host-time only; a config flip is an ordinary behavioral reset).
    const auto kind = GetParam();
    Machine persistent(MachineConfig::make(kind, 8));
    wisync::sim::Rng pick(0xFA57FA57);
    int toggled_off = 0;
    for (int i = 0; i < 6; ++i) {
        const std::uint64_t seed = 7000 + static_cast<std::uint64_t>(i);
        const auto fresh_on =
            fuzzRun(kind, seed, 8, 15, nullptr, MacKind::Brs, true);
        // Random toggle, but force one of each setting in the first
        // two rounds so the assertion below is seed-proof.
        const bool reused_fastpath =
            i == 0 ? true : (i == 1 ? false : pick.chance(0.5));
        toggled_off += reused_fastpath ? 0 : 1;
        const auto reused = fuzzRun(kind, seed, 8, 15, &persistent,
                                    MacKind::Brs, reused_fastpath);
        const auto fresh_off =
            fuzzRun(kind, seed, 8, 15, nullptr, MacKind::Brs, false);
        ASSERT_TRUE(fresh_on.completed);
        EXPECT_EQ(fresh_on.cycles, reused.cycles) << "round " << i;
        EXPECT_EQ(fresh_on.cycles, fresh_off.cycles) << "round " << i;
        EXPECT_EQ(fresh_on.counter, reused.counter) << "round " << i;
        EXPECT_EQ(fresh_on.counter, fresh_off.counter) << "round " << i;
        EXPECT_EQ(fresh_on.bmCounter, reused.bmCounter) << "round " << i;
        EXPECT_EQ(fresh_on.bmCounter, fresh_off.bmCounter)
            << "round " << i;
        EXPECT_TRUE(reused.replicasOk);
    }
    // The deterministic pick stream exercises both settings.
    EXPECT_GT(toggled_off, 0);
    EXPECT_LT(toggled_off, 6);
}

TEST_P(FuzzAllConfigs, DifferentSeedsDiverge)
{
    const auto a = fuzzRun(GetParam(), 1, 8, 30);
    const auto b = fuzzRun(GetParam(), 2, 8, 30);
    // Same op counts, different interleavings: almost surely
    // different finishing times.
    EXPECT_NE(a.cycles, b.cycles);
}

/**
 * MAC-protocol dimension: the same randomized op mix on the full
 * WiSync config under every MacKind — invariants hold, repeats are
 * bit-identical, and a reset-reused machine (including the protocol
 * rebuild when the kind changes between runs) matches fresh builds.
 */
class FuzzMacProtocols : public ::testing::TestWithParam<MacKind>
{};

INSTANTIATE_TEST_SUITE_P(Macs, FuzzMacProtocols,
                         ::testing::ValuesIn(kMacKinds));

TEST_P(FuzzMacProtocols, RandomMixPreservesInvariants)
{
    const auto r =
        fuzzRun(ConfigKind::WiSync, 0xBEEF01, 8, 40, nullptr, GetParam());
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.replicasOk);
    EXPECT_GT(r.counter + r.bmCounter, 0u);
    EXPECT_LE(r.counter + r.bmCounter, 8u * 40u);
}

TEST_P(FuzzMacProtocols, DeterministicAcrossRepeats)
{
    const auto a =
        fuzzRun(ConfigKind::WiSync, 4321, 8, 30, nullptr, GetParam());
    const auto b =
        fuzzRun(ConfigKind::WiSync, 4321, 8, 30, nullptr, GetParam());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.counter, b.counter);
    EXPECT_EQ(a.bmCounter, b.bmCounter);
}

TEST(FuzzMacProtocols, RandomKindFlipsThroughResetMatchFresh)
{
    // One persistent machine reset to a random MacKind each round;
    // every leg must be bit-identical to a fresh machine of that kind.
    Machine persistent(MachineConfig::make(ConfigKind::WiSyncNoT, 8));
    wisync::sim::Rng pick(0xFACADE);
    for (int i = 0; i < 8; ++i) {
        const MacKind mac = kMacKinds[pick.below(4)];
        const std::uint64_t seed = 9000 + static_cast<std::uint64_t>(i);
        const auto fresh =
            fuzzRun(ConfigKind::WiSyncNoT, seed, 8, 15, nullptr, mac);
        const auto reused =
            fuzzRun(ConfigKind::WiSyncNoT, seed, 8, 15, &persistent, mac);
        ASSERT_TRUE(fresh.completed);
        EXPECT_EQ(fresh.cycles, reused.cycles) << "round " << i;
        EXPECT_EQ(fresh.counter, reused.counter) << "round " << i;
        EXPECT_EQ(fresh.bmCounter, reused.bmCounter) << "round " << i;
        EXPECT_TRUE(reused.replicasOk);
    }
}

/**
 * Multi-chip dimension: random (numChips, MacKind, lossPct) triples on
 * the full WiSync config, every round run twice — on one persistent
 * reset-reused machine and on a fresh build — and the two must be
 * bit-identical. At quiescence the replicas must be coherent across
 * the bridge (per-chip groups agree, and Global words agree
 * machine-wide), including under a lossy channel where the bridged
 * updates race retransmissions.
 */
TEST(FuzzMultiChip, RandomChipGridsThroughResetMatchFreshAndStayCoherent)
{
    constexpr std::uint32_t kCores = 16;
    constexpr std::uint32_t kChipChoices[] = {1, 2, 4};
    Machine persistent(MachineConfig::make(ConfigKind::WiSync, kCores));
    wisync::sim::Rng pick(0xC41905);
    int multichip_rounds = 0;
    for (int i = 0; i < 10; ++i) {
        const std::uint32_t chips = kChipChoices[pick.below(3)];
        const MacKind mac = kMacKinds[pick.below(4)];
        const double loss = pick.below(2) == 0 ? 0.0 : 5.0;
        const std::uint64_t seed = 7100 + static_cast<std::uint64_t>(i);
        multichip_rounds += chips > 1 ? 1 : 0;
        const auto tweak = [chips](MachineConfig &cfg) {
            cfg.numChips = chips;
        };
        const auto fresh = fuzzRun(ConfigKind::WiSync, seed, kCores, 12,
                                   nullptr, mac, true, loss, false, 10.0,
                                   tweak);
        const auto reused = fuzzRun(ConfigKind::WiSync, seed, kCores, 12,
                                    &persistent, mac, true, loss, false,
                                    10.0, tweak);
        ASSERT_TRUE(fresh.completed) << "round " << i;
        ASSERT_TRUE(reused.completed) << "round " << i;
        EXPECT_EQ(fresh.cycles, reused.cycles) << "round " << i;
        EXPECT_EQ(fresh.counter, reused.counter) << "round " << i;
        EXPECT_EQ(fresh.bmCounter, reused.bmCounter) << "round " << i;
        EXPECT_TRUE(persistent.bm()->storeArray().replicasConsistent(
            kCores / chips))
            << "round " << i;
    }
    // The deterministic pick stream must actually cross the bridge.
    EXPECT_GT(multichip_rounds, 0);
}

/**
 * Host-parallelism dimension: randomized sweep grids executed through
 * harness::ParallelSweep at a fuzz-chosen worker count must merge to
 * exactly the serial run's results. This fuzzes what the golden tests
 * in test_parallel_sweep.cc pin down: grid shape, machine-shape
 * mixing (worker caches see arbitrary shape sequences) and worker
 * count all vary randomly.
 */
TEST(FuzzParallelSweep, RandomGridsMatchSerialAtRandomThreadCounts)
{
    using wisync::harness::ParallelSweep;
    using wisync::workloads::TightLoopParams;

    wisync::sim::Rng rng(0x5EEDF00D);
    constexpr ConfigKind kKinds[] = {ConfigKind::Baseline,
                                     ConfigKind::BaselinePlus,
                                     ConfigKind::WiSyncNoT,
                                     ConfigKind::WiSync};
    constexpr unsigned kThreadChoices[] = {1, 2, 4};

    for (int iter = 0; iter < 6; ++iter) {
        ParallelSweep sweep;
        const int points = 3 + static_cast<int>(rng.below(6));
        for (int p = 0; p < points; ++p) {
            auto cfg = MachineConfig::make(
                kKinds[rng.below(4)],
                4u << rng.below(3)); // 4, 8 or 16 cores
            cfg.seed = rng.next();
            // MAC dimension: wired kinds ignore it, wireless kinds
            // must stay thread-count independent under every protocol.
            cfg.wireless.macKind = kMacKinds[rng.below(4)];
            TightLoopParams params;
            params.iterations = 1 + static_cast<std::uint32_t>(rng.below(3));
            sweep.add(cfg, [params](Machine &m) {
                return wisync::workloads::runTightLoopOn(m, params);
            });
        }

        const auto serial = sweep.run(1);
        const unsigned threads = kThreadChoices[rng.below(3)];
        const auto parallel = sweep.run(threads);
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_TRUE(wisync::workloads::bitIdentical(serial[i],
                                                        parallel[i]))
                << "iter " << iter << " point " << i << " threads "
                << threads;
        }
    }
}

/**
 * Lossy-channel dimension: random BER (uniform and SNR-derived) x
 * MacKind x ConfigKind. Invariants: every kernel terminates inside
 * the run limit (the reliability layer's bounded give-up plus the
 * controller's re-issue/AFB degradation forbid hangs), BM replicas
 * stay coherent (no lost wakeups: the barrier at the end of every
 * fuzz thread would otherwise never release), counter bounds hold,
 * and the same seed replays bit-identically.
 */
TEST(FuzzLossyChannel, RandomLossGridPreservesInvariantsAndReplays)
{
    wisync::sim::Rng rng(0x10551055);
    constexpr ConfigKind kWirelessKinds[] = {ConfigKind::WiSyncNoT,
                                             ConfigKind::WiSync};
    for (int iter = 0; iter < 10; ++iter) {
        const auto kind = kWirelessKinds[rng.below(2)];
        const auto mac = kMacKinds[rng.below(4)];
        // Up to 35% uniform loss — heavy, but the give-up probability
        // stays far from the regime where re-issue loops crawl.
        const double loss = static_cast<double>(rng.below(36));
        const bool snr = rng.chance(0.25);
        // In the SNR regime, walk the transmit power down into the
        // band where corner transmitters go marginal.
        const double power =
            snr ? static_cast<double>(rng.below(8)) - 2.0 : 10.0;
        const std::uint64_t seed =
            0x105500 + static_cast<std::uint64_t>(iter);
        const auto a = fuzzRun(kind, seed, 8, 20, nullptr, mac, true,
                               loss, snr, power);
        ASSERT_TRUE(a.completed)
            << "iter " << iter << " loss " << loss << " snr " << snr;
        EXPECT_TRUE(a.replicasOk);
        EXPECT_LE(a.counter + a.bmCounter, 8u * 20u);
        const auto b = fuzzRun(kind, seed, 8, 20, nullptr, mac, true,
                               loss, snr, power);
        EXPECT_EQ(a.cycles, b.cycles) << "iter " << iter;
        EXPECT_EQ(a.counter, b.counter) << "iter " << iter;
        EXPECT_EQ(a.bmCounter, b.bmCounter) << "iter " << iter;
    }
}

TEST(FuzzLossyChannel, Loss0KnobsNeverPerturbTheIdealChannel)
{
    // Random ack/retry knob settings with lossPct = 0 must replay the
    // ideal channel bit-for-bit (the knobs are dead state until a
    // drop happens, and drops cannot happen).
    wisync::sim::Rng rng(0x0FF0FF);
    for (int iter = 0; iter < 6; ++iter) {
        const auto mac = kMacKinds[rng.below(4)];
        const std::uint64_t seed =
            0x0FF000 + static_cast<std::uint64_t>(iter);
        const auto ideal =
            fuzzRun(ConfigKind::WiSync, seed, 8, 15, nullptr, mac);
        ASSERT_TRUE(ideal.completed);
        const auto ack = 1 + static_cast<std::uint32_t>(rng.below(16));
        const auto retries = static_cast<std::uint32_t>(rng.below(12));
        const auto exp = static_cast<std::uint32_t>(rng.below(8));
        const auto odd = fuzzRun(
            ConfigKind::WiSync, seed, 8, 15, nullptr, mac, true, 0.0,
            false, 10.0, [&](MachineConfig &cfg) {
                cfg.wireless.ackTimeoutCycles = ack;
                cfg.wireless.maxRetries = retries;
                cfg.wireless.retryBackoffMaxExp = exp;
            });
        EXPECT_EQ(ideal.cycles, odd.cycles) << "iter " << iter;
        EXPECT_EQ(ideal.counter, odd.counter) << "iter " << iter;
        EXPECT_EQ(ideal.bmCounter, odd.bmCounter) << "iter " << iter;
    }
}

/**
 * Bursty-channel dimension: random Gilbert–Elliott parametrizations
 * (via BurstParams::fromMean, mean bounded far below the 100%-forever
 * corner) x numChips x MacKind, every round run twice — on one
 * persistent reset-reused machine and on a fresh build. Invariants:
 * the run terminates (correlated drops ride the same bounded give-up
 * / re-issue machinery as i.i.d. ones), replicas stay coherent across
 * chips, and the two legs are bit-identical. Rounds with multiple
 * chips also randomly arm the bridge's own burst chain.
 */
TEST(FuzzBurstyChannel, RandomBurstGridsThroughResetMatchFresh)
{
    constexpr std::uint32_t kCores = 16;
    constexpr std::uint32_t kChipChoices[] = {1, 2, 4};
    Machine persistent(MachineConfig::make(ConfigKind::WiSync, kCores));
    wisync::sim::Rng pick(0xB095B095);
    int multichip_rounds = 0, bridge_burst_rounds = 0;
    for (int i = 0; i < 10; ++i) {
        // Mean loss 5..30%, mean burst length 1..8 transmissions.
        const double mean = 5.0 + static_cast<double>(pick.below(26));
        const double len = 1.0 + static_cast<double>(pick.below(8));
        const std::uint32_t chips = kChipChoices[pick.below(3)];
        const MacKind mac = kMacKinds[pick.below(4)];
        const bool bridge_burst = chips > 1 && pick.chance(0.5);
        const std::uint64_t seed = 0xB0B0 + static_cast<std::uint64_t>(i);
        multichip_rounds += chips > 1 ? 1 : 0;
        bridge_burst_rounds += bridge_burst ? 1 : 0;
        const auto tweak = [&](MachineConfig &cfg) {
            cfg.numChips = chips;
            cfg.wireless.burst =
                wisync::wireless::BurstParams::fromMean(mean, len);
            if (bridge_burst)
                cfg.bridge.burst =
                    wisync::wireless::BurstParams::fromMean(mean, len);
        };
        const auto fresh = fuzzRun(ConfigKind::WiSync, seed, kCores, 12,
                                   nullptr, mac, true, 0.0, false, 10.0,
                                   tweak);
        const auto reused = fuzzRun(ConfigKind::WiSync, seed, kCores, 12,
                                    &persistent, mac, true, 0.0, false,
                                    10.0, tweak);
        ASSERT_TRUE(fresh.completed)
            << "round " << i << " mean " << mean << " len " << len;
        ASSERT_TRUE(reused.completed) << "round " << i;
        EXPECT_EQ(fresh.cycles, reused.cycles) << "round " << i;
        EXPECT_EQ(fresh.counter, reused.counter) << "round " << i;
        EXPECT_EQ(fresh.bmCounter, reused.bmCounter) << "round " << i;
        EXPECT_TRUE(persistent.bm()->storeArray().replicasConsistent(
            kCores / chips))
            << "round " << i;
    }
    // The deterministic pick stream exercises both extensions.
    EXPECT_GT(multichip_rounds, 0);
    EXPECT_GT(bridge_burst_rounds, 0);
}

TEST(FuzzBurstyChannel, BurstOffKnobsNeverPerturbTheIdealChannel)
{
    // Random burst parameters with the enable gate off (and random
    // per-channel profile knobs on a single-slot machine with no SNR
    // model, where they cannot matter) must replay the ideal channel
    // bit-for-bit — the knobs are dead state until enabled.
    wisync::sim::Rng rng(0x0B057);
    for (int iter = 0; iter < 6; ++iter) {
        const auto mac = kMacKinds[rng.below(4)];
        const std::uint64_t seed =
            0x0B0500 + static_cast<std::uint64_t>(iter);
        const auto ideal =
            fuzzRun(ConfigKind::WiSync, seed, 8, 15, nullptr, mac);
        ASSERT_TRUE(ideal.completed);
        const double good = static_cast<double>(rng.below(100));
        const double bad = static_cast<double>(rng.below(100));
        const double pgb = rng.uniform();
        const double pbg = rng.uniform();
        const auto odd = fuzzRun(
            ConfigKind::WiSync, seed, 8, 15, nullptr, mac, true, 0.0,
            false, 10.0, [&](MachineConfig &cfg) {
                cfg.wireless.burst.enabled = false;
                cfg.wireless.burst.goodLossPct = good;
                cfg.wireless.burst.badLossPct = bad;
                cfg.wireless.burst.pGoodToBad = pgb;
                cfg.wireless.burst.pBadToGood = pbg;
                cfg.wireless.channelLossBaseDb =
                    static_cast<double>(rng.below(20));
                cfg.wireless.channelLossStepDb =
                    static_cast<double>(rng.below(10));
            });
        EXPECT_EQ(ideal.cycles, odd.cycles) << "iter " << iter;
        EXPECT_EQ(ideal.counter, odd.counter) << "iter " << iter;
        EXPECT_EQ(ideal.bmCounter, odd.bmCounter) << "iter " << iter;
    }
}

/** Heavier sweep: more threads and ops, both wireless configs. */
class FuzzScale
    : public ::testing::TestWithParam<std::tuple<ConfigKind, int>>
{};

INSTANTIATE_TEST_SUITE_P(
    Sweep, FuzzScale,
    ::testing::Combine(::testing::Values(ConfigKind::WiSyncNoT,
                                         ConfigKind::WiSync),
                       ::testing::Values(16, 32)));

TEST_P(FuzzScale, ScalesWithoutInvariantViolations)
{
    const auto [kind, threads] = GetParam();
    const auto r =
        fuzzRun(kind, 777, static_cast<std::uint32_t>(threads), 25);
    ASSERT_TRUE(r.completed);
    EXPECT_TRUE(r.replicasOk);

    // The same run on a reset-reused machine matches exactly.
    Machine persistent(
        MachineConfig::make(kind, static_cast<std::uint32_t>(threads)));
    const auto again = fuzzRun(
        kind, 777, static_cast<std::uint32_t>(threads), 25, &persistent);
    EXPECT_EQ(r.cycles, again.cycles);
    EXPECT_EQ(r.counter, again.counter);
    EXPECT_EQ(r.bmCounter, again.bmCounter);
}

/**
 * Sweep-service dimension: random grids with injected duplicates x
 * shard counts {1, 2, 4} x thread counts {1, 4}. Invariants: the
 * by-index merge of per-shard SweepService runs is bit-identical to
 * a serial, cache-disabled run of the full request; on cold caches
 * the summed cache hits equal exactly the number of within-shard
 * duplicates (for one shard: exactly the injected duplicate count);
 * evictions never drive the cache past its capacity bound.
 */
TEST(FuzzSweepService, RandomDuplicateGridsAcrossShardsAndThreads)
{
    using wisync::service::RequestPoint;
    using wisync::service::ServiceOutcome;
    using wisync::service::ShardPlanner;
    using wisync::service::SweepRequest;
    using wisync::service::SweepService;
    using wisync::service::WorkloadSpec;

    wisync::sim::Rng rng(0x5EC0FFEE);
    constexpr ConfigKind kKinds[] = {ConfigKind::Baseline,
                                     ConfigKind::WiSyncNoT,
                                     ConfigKind::WiSync};
    constexpr unsigned kShardChoices[] = {1, 2, 4};
    constexpr unsigned kThreadChoices[] = {1, 4};

    for (int iter = 0; iter < 4; ++iter) {
        // Unique base points (distinct seeds guarantee distinctness),
        // then injected duplicates of random earlier points.
        SweepRequest request;
        const int base = 3 + static_cast<int>(rng.below(4));
        for (int p = 0; p < base; ++p) {
            RequestPoint point;
            point.config = MachineConfig::make(kKinds[rng.below(3)],
                                               4u << rng.below(2));
            point.config.seed = 0xF00D0000u + static_cast<unsigned>(p);
            point.config.wireless.macKind = kMacKinds[rng.below(4)];
            if (rng.below(2))
                point.config.wireless.lossPct = 0.5;
            point.workload.tightLoop.iterations =
                1 + static_cast<std::uint32_t>(rng.below(3));
            request.points.push_back(point);
        }
        const std::size_t duplicates = 1 + rng.below(4);
        for (std::size_t d = 0; d < duplicates; ++d) {
            const std::size_t victim = rng.below(request.points.size());
            const std::size_t at = rng.below(request.points.size() + 1);
            request.points.insert(request.points.begin() +
                                      static_cast<std::ptrdiff_t>(at),
                                  request.points[victim]);
        }
        const std::size_t n = request.points.size();

        // Reference: serial, cache disabled — every point simulated.
        SweepService reference(0);
        const auto expect = reference.runBatch(request, 1);

        const unsigned shards =
            kShardChoices[rng.below(std::size(kShardChoices))];
        const unsigned threads =
            kThreadChoices[rng.below(std::size(kThreadChoices))];
        // Small enough that grids overflow it: evictions must fire
        // without ever breaking the capacity bound or costing a
        // duplicate its hit (duplicates resolve at representative
        // completion, while the entry is most-recently-used).
        constexpr std::size_t kCapacity = 4;

        std::vector<ServiceOutcome> merged(n);
        std::size_t hits = 0;
        std::size_t expected_hits = 0;
        for (unsigned s = 0; s < shards; ++s) {
            SweepService svc(kCapacity); // cold, per "process"
            const auto idx = ShardPlanner::shardIndices(n, s, shards);
            const auto slice =
                ShardPlanner::shardRequest(request, s, shards);
            auto part = svc.runBatch(slice, threads);
            ShardPlanner::mergeByIndex(merged, idx, std::move(part));
            hits += svc.lastBatch().cacheHits;

            // Within this shard's slice, every occurrence beyond a
            // point's first is a duplicate the cache must answer.
            std::size_t unique = 0;
            for (std::size_t j = 0; j < slice.points.size(); ++j) {
                bool first = true;
                for (std::size_t m = 0; m < j; ++m)
                    if (slice.points[m] == slice.points[j])
                        first = false;
                unique += first ? 1 : 0;
            }
            expected_hits += slice.points.size() - unique;

            EXPECT_LE(svc.cache().size(), kCapacity);
            EXPECT_EQ(svc.cache().stats().evictions,
                      svc.cache().stats().insertions -
                          svc.cache().size());
            EXPECT_EQ(svc.cache().stats().collisions, 0u);
        }

        EXPECT_EQ(hits, expected_hits) << "iter " << iter;
        if (shards == 1)
            EXPECT_EQ(hits, duplicates) << "iter " << iter;
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_TRUE(merged[i].ok);
            EXPECT_TRUE(wisync::workloads::bitIdentical(
                merged[i].result, expect[i].result))
                << "iter " << iter << " point " << i << " shards "
                << shards << " threads " << threads;
        }
    }
}

// ---- Fault-injection dimension ----------------------------------

/** A request of @p n distinct points (unique seeds), cheap to
 *  simulate. */
wisync::service::SweepRequest
faultFuzzRequest(wisync::sim::Rng &rng, std::size_t n)
{
    using wisync::service::RequestPoint;
    wisync::service::SweepRequest request;
    constexpr ConfigKind kKinds[] = {ConfigKind::Baseline,
                                     ConfigKind::WiSyncNoT,
                                     ConfigKind::WiSync};
    for (std::size_t i = 0; i < n; ++i) {
        RequestPoint point;
        point.config = MachineConfig::make(kKinds[rng.below(3)],
                                           4u << rng.below(2));
        point.config.seed = 0xFA010000u + i;
        point.config.wireless.macKind = kMacKinds[rng.below(4)];
        point.workload.tightLoop.iterations =
            1 + static_cast<std::uint32_t>(rng.below(3));
        request.points.push_back(point);
    }
    return request;
}

/**
 * The robustness claim, fuzzed: every injected fault — a worker-body
 * exception or a mid-batch deadline hit — must surface as a typed
 * per-point error isolated to its point, and every surviving result
 * must stay bit-identical to a fault-free serial run. Afterwards the
 * same service, disarmed, must heal completely.
 */
TEST(FuzzFaultInjection, FaultsAreIsolatedTypedAndSurvivorsBitIdentical)
{
    using wisync::service::FaultPlan;
    using wisync::service::SweepRequest;
    using wisync::service::SweepService;

    wisync::sim::Rng rng(0xFA017);
    for (int iter = 0; iter < 6; ++iter) {
        const std::size_t n = 4 + rng.below(5);
        const SweepRequest request = faultFuzzRequest(rng, n);
        SweepService reference(0);
        const auto expect = reference.runBatch(request, 1);

        const FaultPlan plan = FaultPlan::make(rng.next(), n);
        SweepRequest faulted = request;
        // Budget 5 cycles: every workload is still starting up then,
        // so each deadline point deterministically trips mid-run.
        plan.applyDeadlines(faulted, 5);

        SweepService svc(64);
        plan.arm(svc);
        const unsigned threads = rng.below(2) ? 4 : 1;
        const auto got = svc.runBatch(faulted, threads);
        ASSERT_EQ(got.size(), n);
        std::size_t failed = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (plan.throwsAt(i)) {
                EXPECT_FALSE(got[i].ok) << "iter " << iter;
                EXPECT_NE(got[i].error.find("injected worker fault"),
                          std::string::npos)
                    << got[i].error;
                ++failed;
            } else if (plan.deadlineAt(i)) {
                EXPECT_FALSE(got[i].ok) << "iter " << iter;
                EXPECT_NE(got[i].error.find("DeadlineExceeded"),
                          std::string::npos)
                    << got[i].error;
                ++failed;
            } else {
                EXPECT_TRUE(got[i].ok)
                    << "iter " << iter << ": " << got[i].error;
                EXPECT_TRUE(wisync::workloads::bitIdentical(
                    got[i].result, expect[i].result))
                    << "iter " << iter << " point " << i;
            }
        }
        EXPECT_EQ(svc.lastBatch().errors, failed);

        // Disarmed rerun of the clean request on the SAME service:
        // clean points answer from cache, faulted ones simulate fresh
        // (an aborted point must never have been cached).
        svc.setBodyProbe({});
        const auto healed = svc.runBatch(request, threads);
        EXPECT_EQ(svc.lastBatch().cacheHits, n - failed);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_TRUE(healed[i].ok) << healed[i].error;
            EXPECT_TRUE(wisync::workloads::bitIdentical(
                healed[i].result, expect[i].result))
                << "iter " << iter << " point " << i;
        }
    }
}

/** Random bit flips and truncations of a warm cache file: loading
 *  must never crash, hits must equal exactly what the salvage
 *  reported, and a rerun stays bit-identical to the reference. */
TEST(FuzzFaultInjection, CorruptedCacheFilesNeverCrashAndRerunsMatch)
{
    using wisync::service::CacheStore;
    using wisync::service::FaultPlan;
    using wisync::service::SweepService;

    wisync::sim::Rng rng(0xC0F5);
    const std::string path =
        ::testing::TempDir() + "wisync_fuzz_corrupt_" +
        std::to_string(static_cast<long long>(::getpid())) + ".bin";
    std::remove(path.c_str());

    const auto request = faultFuzzRequest(rng, 5);
    SweepService reference(0);
    const auto expect = reference.runBatch(request, 1);

    std::string golden;
    {
        SweepService warm(64);
        warm.runBatch(request, 1);
        std::string error;
        ASSERT_TRUE(CacheStore::save(warm.cache(), path, &error))
            << error;
        std::ifstream f(path, std::ios::binary);
        std::ostringstream ss;
        ss << f.rdbuf();
        golden = ss.str();
    }

    for (int round = 0; round < 10; ++round) {
        {
            std::ofstream f(path, std::ios::binary | std::ios::trunc);
            f.write(golden.data(),
                    static_cast<std::streamsize>(golden.size()));
        }
        if (round % 2 == 0)
            ASSERT_TRUE(FaultPlan::flipBit(path, rng.next()));
        else
            ASSERT_TRUE(FaultPlan::truncateFile(
                path, rng.below(golden.size() + 1)));

        SweepService svc(64);
        const auto stats = CacheStore::load(svc.cache(), path);
        EXPECT_LE(stats.loaded, request.points.size());
        const auto got = svc.runBatch(request, 1);
        EXPECT_EQ(svc.lastBatch().cacheHits, stats.loaded)
            << "round " << round
            << ": every salvaged record must hit, nothing else";
        EXPECT_EQ(svc.lastBatch().errors, 0u);
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_TRUE(got[i].ok) << got[i].error;
            EXPECT_TRUE(wisync::workloads::bitIdentical(
                got[i].result, expect[i].result))
                << "round " << round << " point " << i;
        }
    }
    std::remove(path.c_str());
}

/** Byte-mangled request lines against a live daemon: one response
 *  per nonempty line, each either results or a typed error, and the
 *  daemon keeps answering clean requests perfectly afterwards. */
TEST(FuzzFaultInjection, MutatedRequestLinesNeverKillTheDaemon)
{
    using wisync::service::ConfigCodec;
    using wisync::service::Daemon;
    using wisync::service::DaemonOptions;
    using wisync::service::FaultPlan;

    wisync::sim::Rng rng(0xDAE0);
    auto request = faultFuzzRequest(rng, 3);
    // Budget every point so a mutation that inflates a numeric field
    // (iterations, cores) can cost at most 20000 simulated cycles —
    // it then answers a typed DeadlineExceeded error, not a hang.
    for (auto &point : request.points)
        point.workload.maxCycles = 20000;
    const std::string canonical = ConfigCodec::serializeRequest(request);

    DaemonOptions opt;
    opt.threads = 2;
    Daemon daemon(opt);
    for (int iter = 0; iter < 25; ++iter) {
        const std::string mangled =
            FaultPlan::mutateLine(canonical, rng);
        std::istringstream in(mangled + "\n" + canonical + "\n");
        std::ostringstream out;
        const std::size_t expected = mangled.empty() ? 1u : 2u;
        EXPECT_EQ(daemon.serve(in, out), expected) << "iter " << iter;

        std::istringstream lines(out.str());
        std::string line;
        std::size_t count = 0;
        std::string last;
        while (std::getline(lines, line)) {
            ++count;
            EXPECT_FALSE(line.empty());
            EXPECT_EQ(line.front(), '{');
            EXPECT_TRUE(line.find("\"results\"") != std::string::npos ||
                        line.find("\"error\"") != std::string::npos)
                << line;
            last = line;
        }
        EXPECT_EQ(count, expected);
        // The canonical line always comes last and must be served
        // cleanly no matter what the mangled one did.
        EXPECT_NE(last.find("\"results\""), std::string::npos);
        EXPECT_NE(last.find("\"errors\":0"), std::string::npos);
    }
}

// ---- JSON parser dimension --------------------------------------

/** Every strict prefix of a canonical request is invalid and must
 *  fail with a typed error (never a crash, never an accept). */
TEST(FuzzJsonParser, EveryPrefixFailsTyped)
{
    using wisync::service::ConfigCodec;
    using wisync::service::JsonError;
    using wisync::service::ParseError;

    wisync::sim::Rng rng(0x9A12);
    const std::string canonical =
        ConfigCodec::serializeRequest(faultFuzzRequest(rng, 2));
    for (std::size_t len = 0; len < canonical.size(); ++len) {
        const std::string prefix = canonical.substr(0, len);
        try {
            ConfigCodec::parseRequest(prefix);
            ADD_FAILURE() << "prefix of length " << len << " parsed";
        } catch (const ParseError &e) {
            EXPECT_FALSE(e.field().empty()) << "length " << len;
        } catch (const JsonError &e) {
            EXPECT_LE(e.offset(), len);
        }
    }
}

/** Random byte-level mutations: the parser either accepts (the
 *  mutation kept the text valid) or throws a typed error naming a
 *  field path / byte offset. Anything else escapes and fails. */
TEST(FuzzJsonParser, ByteMutationsAlwaysFailTypedOrParseCleanly)
{
    using wisync::service::ConfigCodec;
    using wisync::service::FaultPlan;
    using wisync::service::JsonError;
    using wisync::service::ParseError;

    wisync::sim::Rng rng(0x15A9);
    const std::string canonical =
        ConfigCodec::serializeRequest(faultFuzzRequest(rng, 3));
    int parsed = 0, field_errors = 0, syntax_errors = 0;
    for (int iter = 0; iter < 300; ++iter) {
        const std::string text = FaultPlan::mutateLine(canonical, rng);
        try {
            const auto request = ConfigCodec::parseRequest(text);
            EXPECT_LE(request.points.size(), 3u);
            ++parsed;
        } catch (const ParseError &e) {
            EXPECT_FALSE(e.field().empty());
            ++field_errors;
        } catch (const JsonError &e) {
            EXPECT_LE(e.offset(), text.size());
            ++syntax_errors;
        }
    }
    // The corpus must actually exercise the error paths.
    EXPECT_GT(field_errors + syntax_errors, 100);
}

} // namespace
