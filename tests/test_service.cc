/**
 * @file
 * Sweep-service subsystem tests: the codec's round-trip /
 * canonicalization / strictness contracts, MachineConfig equality and
 * fingerprint stability, the exact LRU result cache, deterministic
 * sharding with by-index merge, ParallelSweep's captured-error mode,
 * and the SweepService identity bar — every batch byte-identical to a
 * serial, cache-disabled run at any thread count, cache warmth or
 * shard split.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/machine.hh"
#include "core/machine_config.hh"
#include "harness/parallel_sweep.hh"
#include "service/config_codec.hh"
#include "service/result_cache.hh"
#include "service/shard_planner.hh"
#include "service/sweep_service.hh"
#include "sim/engine.hh"
#include "workloads/kernel_result.hh"
#include "workloads/tight_loop.hh"

namespace {

using wisync::core::ConfigKind;
using wisync::core::Machine;
using wisync::core::MachineConfig;
using wisync::core::Variant;
using wisync::harness::ParallelSweep;
using wisync::service::ConfigCodec;
using wisync::service::DeadlineExceeded;
using wisync::service::ParseError;
using wisync::service::RequestPoint;
using wisync::service::ResultCache;
using wisync::service::ServiceOutcome;
using wisync::service::ShardPlanner;
using wisync::service::SweepRequest;
using wisync::service::SweepService;
using wisync::service::WorkloadSpec;
using wisync::wireless::MacKind;
using wisync::workloads::KernelResult;
using wisync::workloads::bitIdentical;

// ---- Codec: round-trip ------------------------------------------

/** A config exercising every codec-covered knob off its default. */
MachineConfig
kitchenSinkConfig()
{
    auto cfg = MachineConfig::make(ConfigKind::WiSync, 32,
                                   Variant::SlowNet);
    cfg.numChips = 2;
    cfg.issueWidth = 2;
    cfg.seed = 0xDEADBEEFCAFEF00Dull;
    cfg.wireless.macKind = MacKind::Adaptive;
    cfg.wireless.maxBackoffExp = 9;
    cfg.wireless.tokenPassCycles = 2;
    cfg.wireless.tokenFrameBits = 96;
    cfg.wireless.tokenHoldCycles = 5;
    cfg.wireless.adaptWindowEvents = 48;
    cfg.wireless.adaptHiPct = 37.5;
    cfg.wireless.adaptLoPct = 8.25;
    cfg.wireless.lossPct = 2.5;
    cfg.wireless.berFromSnr = true;
    cfg.wireless.txPowerDbm = -9.5;
    cfg.wireless.ackTimeoutCycles = 21;
    cfg.wireless.maxRetries = 6;
    cfg.wireless.retryBackoffMaxExp = 4;
    cfg.wireless.burst.enabled = true;
    cfg.wireless.burst.goodLossPct = 0.25;
    cfg.wireless.burst.badLossPct = 42.0;
    cfg.wireless.burst.pGoodToBad = 0.0125;
    cfg.wireless.burst.pBadToGood = 0.375;
    cfg.wireless.channelLossBaseDb = 1.5;
    cfg.wireless.channelLossStepDb = 0.25;
    cfg.wireless.spectrumSlots = 2;
    cfg.bridge.latencyCycles = 11;
    cfg.bridge.widthBits = 64;
    cfg.bridge.headerBits = 16;
    cfg.bridge.lossPct = 1.25;
    cfg.bridge.burst.enabled = true;
    cfg.bridge.burst.goodLossPct = 0.5;
    cfg.bridge.burst.badLossPct = 31.0;
    cfg.bridge.burst.pGoodToBad = 0.03125;
    cfg.bridge.burst.pBadToGood = 0.25;
    cfg.bridge.ackTimeoutCycles = 64;
    cfg.bridge.maxRetries = 5;
    cfg.bridge.retryBackoffMaxExp = 3;
    return cfg;
}

MachineConfig
parseConfigString(const std::string &json)
{
    return ConfigCodec::parseConfig(wisync::service::Json::parse(json));
}

TEST(ServiceCodec, RoundTripsMakeDefaults)
{
    for (const auto kind :
         {ConfigKind::Baseline, ConfigKind::BaselinePlus,
          ConfigKind::WiSyncNoT, ConfigKind::WiSync}) {
        for (const auto variant :
             {Variant::Default, Variant::SlowNet, Variant::SlowNetL2,
              Variant::FastNet, Variant::SlowBmem}) {
            const auto cfg = MachineConfig::make(kind, 16, variant);
            const auto back =
                parseConfigString(ConfigCodec::serialize(cfg));
            EXPECT_EQ(cfg, back)
                << cfg.describe() << " did not round-trip";
            EXPECT_EQ(cfg.fingerprint(), back.fingerprint());
        }
    }
}

TEST(ServiceCodec, RoundTripsEveryKnob)
{
    const auto cfg = kitchenSinkConfig();
    const std::string json = ConfigCodec::serialize(cfg);
    const auto back = parseConfigString(json);
    EXPECT_EQ(cfg, back) << json;
    EXPECT_EQ(cfg.fingerprint(), back.fingerprint());
    // Canonical form is a fixed point of parse -> serialize.
    EXPECT_EQ(json, ConfigCodec::serialize(back));
}

TEST(ServiceCodec, CanonicalFormIgnoresSpellingOfTheSameRequest)
{
    // Same point three ways: key order shuffled, whitespace changed,
    // defaults spelled out vs omitted, numbers respelled.
    const std::string a = R"({"points":[{"config":
        {"kind":"WiSync","cores":16,"wireless":{"lossPct":0.5}},
        "workload":{"kind":"tightloop","iterations":7}}]})";
    const std::string b = R"({ "points" : [ { "workload" :
        { "iterations" : 7, "kind" : "tightloop", "arrayElems" : 50 },
        "config" : { "wireless" : { "lossPct" : 5e-1 },
        "cores" : 16, "variant" : "Default", "kind" : "WiSync",
        "chips" : 1 } } ] })";
    const auto ra = ConfigCodec::parseRequest(a);
    const auto rb = ConfigCodec::parseRequest(b);
    ASSERT_EQ(ra.points.size(), 1u);
    EXPECT_EQ(ra.points[0], rb.points[0]);
    EXPECT_EQ(ra.points[0].fingerprint(), rb.points[0].fingerprint());
    EXPECT_EQ(ConfigCodec::serializeRequest(ra),
              ConfigCodec::serializeRequest(rb));
}

TEST(ServiceCodec, SeedRoundTripsAllSixtyFourBits)
{
    // A double-typed parse would round 2^64-1 to 2^64 silently; the
    // codec parses integers off the raw token instead.
    const auto req = ConfigCodec::parseRequest(
        R"({"points":[{"config":{"kind":"Baseline","cores":8,
            "seed":18446744073709551615},
            "workload":{"kind":"tightloop"}}]})");
    EXPECT_EQ(req.points[0].config.seed, 0xFFFFFFFFFFFFFFFFull);
    const auto back = ConfigCodec::parseRequest(
        ConfigCodec::serializeRequest(req));
    EXPECT_EQ(req.points[0], back.points[0]);
}

// ---- Codec: strictness ------------------------------------------

/** EXPECT a ParseError whose field/pointIndex match. */
void
expectParseError(const std::string &request, const std::string &field,
                 std::size_t point)
{
    try {
        ConfigCodec::parseRequest(request);
        FAIL() << "no ParseError for " << request;
    } catch (const ParseError &e) {
        EXPECT_EQ(e.field(), field) << e.what();
        EXPECT_EQ(e.pointIndex(), point) << e.what();
        // what() must carry the path so the daemon's error response
        // is actionable without parsing our exception type.
        EXPECT_NE(std::string(e.what()).find(field), std::string::npos);
    }
}

constexpr std::size_t kNoPoint = ParseError::kNoPoint;

TEST(ServiceCodec, UnknownKeysAreHardErrorsAtEveryLevel)
{
    expectParseError(R"({"points":[],"extra":1})", "extra", kNoPoint);
    expectParseError(
        R"({"points":[{"config":{"kind":"WiSync","cores":16,
            "coresX":8},"workload":{"kind":"tightloop"}}]})",
        "points[0].config.coresX", 0);
    expectParseError(
        R"({"points":[{"config":{"kind":"WiSync","cores":16,
            "wireless":{"lossPt":1}},
            "workload":{"kind":"tightloop"}}]})",
        "points[0].config.wireless.lossPt", 0);
    expectParseError(
        R"({"points":[{"config":{"kind":"WiSync","cores":16,
            "wireless":{"burst":{"enable":true}}},
            "workload":{"kind":"tightloop"}}]})",
        "points[0].config.wireless.burst.enable", 0);
    expectParseError(
        R"({"points":[{"config":{"kind":"WiSync","cores":16,"chips":2,
            "bridge":{"latency":3}},
            "workload":{"kind":"tightloop"}}]})",
        "points[0].config.bridge.latency", 0);
    expectParseError(
        R"({"points":[
            {"config":{"kind":"WiSync","cores":16},
             "workload":{"kind":"tightloop"}},
            {"config":{"kind":"WiSync","cores":16},
             "workload":{"kind":"cas","iterations":5}}]})",
        "points[1].workload.iterations", 1);
}

TEST(ServiceCodec, MalformedAndPartialRequestsNameTheField)
{
    // Not JSON at all.
    expectParseError("{nope", "<request>", kNoPoint);
    // Wrong root type.
    expectParseError(R"([1,2,3])", "<request>", kNoPoint);
    // Missing required keys.
    expectParseError(R"({})", "points", kNoPoint);
    expectParseError(
        R"({"points":[{"workload":{"kind":"tightloop"}}]})",
        "points[0].config", 0);
    expectParseError(
        R"({"points":[{"config":{"cores":16},
            "workload":{"kind":"tightloop"}}]})",
        "points[0].config.kind", 0);
    // Type and range violations.
    expectParseError(
        R"({"points":[{"config":{"kind":"WiSync","cores":"16"},
            "workload":{"kind":"tightloop"}}]})",
        "points[0].config.cores", 0);
    expectParseError(
        R"({"points":[{"config":{"kind":"WiSync","cores":16,
            "seed":-1},"workload":{"kind":"tightloop"}}]})",
        "points[0].config.seed", 0);
    expectParseError(
        R"({"points":[{"config":{"kind":"WiSync","cores":16,
            "wireless":{"lossPct":150}},
            "workload":{"kind":"tightloop"}}]})",
        "points[0].config.wireless.lossPct", 0);
    // Structurally invalid machine (would fatal inside Machine).
    expectParseError(
        R"({"points":[{"config":{"kind":"WiSync","cores":16,
            "chips":3},"workload":{"kind":"tightloop"}}]})",
        "points[0].config.chips", 0);
    // Bad enum spellings.
    expectParseError(
        R"({"points":[{"config":{"kind":"WySink","cores":16},
            "workload":{"kind":"tightloop"}}]})",
        "points[0].config.kind", 0);
    expectParseError(
        R"({"points":[{"config":{"kind":"WiSync","cores":16},
            "workload":{"kind":"cas","kernel":"stack"}}]})",
        "points[0].workload.kernel", 0);
}

// ---- MachineConfig equality + fingerprint ------------------------

TEST(ServiceFingerprint, EqualConfigsShareItDifferingConfigsDoNot)
{
    const auto base = MachineConfig::make(ConfigKind::WiSync, 16);
    auto same = MachineConfig::make(ConfigKind::WiSync, 16);
    EXPECT_EQ(base, same);
    EXPECT_EQ(base.fingerprint(), same.fingerprint());

    // Flip one knob at a time — each must break equality AND move the
    // fingerprint (the cache key may never alias distinct configs
    // through a knob the hash forgot).
    std::vector<MachineConfig> mutants;
    for (int i = 0; i < 10; ++i)
        mutants.push_back(MachineConfig::make(ConfigKind::WiSync, 16));
    mutants[0].seed = 99;
    mutants[1].issueWidth = 4;
    mutants[2].wireless.macKind = MacKind::Token;
    mutants[3].wireless.lossPct = 0.001;
    mutants[4].wireless.burst.enabled = true;
    mutants[5].wireless.spectrumSlots = 2;
    mutants[6].wireless.tokenHoldCycles += 1;
    mutants[7].bridge.latencyCycles += 1;
    mutants[8].mem.lineBytes *= 2;
    mutants[9].bm.bmRtCycles += 1;
    for (std::size_t i = 0; i < mutants.size(); ++i) {
        EXPECT_NE(base, mutants[i]) << "mutant " << i;
        EXPECT_NE(base.fingerprint(), mutants[i].fingerprint())
            << "mutant " << i;
    }
}

TEST(ServiceFingerprint, WorkloadSpecSeparatesKindsAndParams)
{
    WorkloadSpec tl;
    WorkloadSpec cas;
    cas.kind = WorkloadSpec::Kind::Cas;
    EXPECT_NE(tl.fingerprint(), cas.fingerprint());
    WorkloadSpec tl2 = tl;
    tl2.tightLoop.iterations += 1;
    EXPECT_NE(tl.fingerprint(), tl2.fingerprint());

    RequestPoint a{MachineConfig::make(ConfigKind::WiSync, 16), tl};
    RequestPoint b{MachineConfig::make(ConfigKind::WiSync, 16), tl2};
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(a.fingerprint(),
              (RequestPoint{a.config, a.workload}).fingerprint());
}

/**
 * describe() may only collide where fingerprints collide: over a grid
 * varying describe-visible knobs, two points printing the same label
 * must BE the same point. Guards the bug class where a new behavioral
 * knob is added without extending describe() — sweep tables would
 * print indistinguishable rows for different machines.
 */
TEST(ServiceFingerprint, DescribeCollisionsImplyFingerprintCollisions)
{
    std::vector<MachineConfig> grid;
    for (const auto kind : {ConfigKind::Baseline, ConfigKind::WiSync}) {
        for (const auto cores : {8u, 16u}) {
            for (const auto mac : {MacKind::Brs, MacKind::Token}) {
                for (const double loss : {0.0, 1.0}) {
                    for (const auto chips : {1u, 2u}) {
                        auto cfg = MachineConfig::make(kind, cores);
                        cfg.wireless.macKind = mac;
                        cfg.wireless.lossPct = loss;
                        cfg.numChips = chips;
                        grid.push_back(cfg);
                        if (loss > 0.0) {
                            cfg.wireless.maxRetries += 2;
                            grid.push_back(cfg);
                        }
                        if (chips > 1) {
                            cfg.bridge.latencyCycles += 5;
                            grid.push_back(cfg);
                        }
                    }
                }
            }
        }
    }
    std::unordered_map<std::string, std::uint64_t> seen;
    for (const auto &cfg : grid) {
        const auto [it, fresh] =
            seen.emplace(cfg.describe(), cfg.fingerprint());
        if (!fresh) {
            EXPECT_EQ(it->second, cfg.fingerprint())
                << "describe() label '" << it->first
                << "' names two behaviorally different configs";
        }
    }
}

// ---- ResultCache -------------------------------------------------

RequestPoint
pointWithSeed(std::uint64_t seed)
{
    RequestPoint p;
    p.config = MachineConfig::make(ConfigKind::WiSync, 8);
    p.config.seed = seed;
    return p;
}

KernelResult
resultWithCycles(std::uint64_t cycles)
{
    KernelResult r;
    r.cycles = cycles;
    r.completed = true;
    return r;
}

TEST(ServiceResultCache, ExactHitsAndCounters)
{
    ResultCache cache(4);
    const auto p1 = pointWithSeed(1);
    EXPECT_EQ(cache.lookup(p1), nullptr);
    EXPECT_EQ(cache.stats().misses, 1u);

    cache.insert(p1, resultWithCycles(123));
    const auto *hit = cache.lookup(p1);
    ASSERT_NE(hit, nullptr);
    EXPECT_TRUE(bitIdentical(*hit, resultWithCycles(123)));
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);

    // Equality is on the whole point: same config, different
    // workload is a different key.
    auto p2 = p1;
    p2.workload.tightLoop.iterations += 1;
    EXPECT_EQ(cache.lookup(p2), nullptr);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().collisions, 0u);
}

TEST(ServiceResultCache, LruEvictionRespectsRecency)
{
    ResultCache cache(2);
    const auto pa = pointWithSeed(10);
    const auto pb = pointWithSeed(11);
    const auto pc = pointWithSeed(12);
    cache.insert(pa, resultWithCycles(1));
    cache.insert(pb, resultWithCycles(2));
    // Touch A so B is the LRU entry when C arrives.
    ASSERT_NE(cache.lookup(pa), nullptr);
    cache.insert(pc, resultWithCycles(3));
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.lookup(pb), nullptr) << "LRU entry must go first";
    EXPECT_NE(cache.lookup(pa), nullptr);
    EXPECT_NE(cache.lookup(pc), nullptr);
}

TEST(ServiceResultCache, CapacityZeroDisablesStorage)
{
    ResultCache cache(0);
    const auto p = pointWithSeed(7);
    cache.insert(p, resultWithCycles(9));
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.lookup(p), nullptr);
    EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ServiceResultCache, ClearDropsEntriesKeepsCounters)
{
    ResultCache cache(4);
    const auto p = pointWithSeed(3);
    cache.insert(p, resultWithCycles(5));
    ASSERT_NE(cache.lookup(p), nullptr);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.lookup(p), nullptr);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);
}

// ---- ShardPlanner ------------------------------------------------

TEST(ServiceShardPlan, StridedShardsAreDisjointAndCover)
{
    for (const std::size_t points : {0u, 1u, 5u, 8u, 13u}) {
        for (const unsigned k : {1u, 2u, 3u, 4u}) {
            std::set<std::size_t> all;
            for (unsigned s = 0; s < k; ++s) {
                const auto idx =
                    ShardPlanner::shardIndices(points, s, k);
                for (std::size_t j = 0; j < idx.size(); ++j) {
                    EXPECT_EQ(idx[j], s + j * k) << "strided contract";
                    EXPECT_TRUE(all.insert(idx[j]).second)
                        << "shards must be disjoint";
                }
            }
            EXPECT_EQ(all.size(), points) << "shards must cover";
        }
    }
}

TEST(ServiceShardPlan, MergeByIndexReassemblesSerialOrder)
{
    const std::size_t n = 11;
    std::vector<int> merged(n, -1);
    for (const unsigned s : {2u, 0u, 1u}) { // out-of-order completion
        const auto idx = ShardPlanner::shardIndices(n, s, 3);
        std::vector<int> part;
        for (const auto i : idx)
            part.push_back(static_cast<int>(i) * 10);
        ShardPlanner::mergeByIndex(merged, idx, std::move(part));
    }
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(merged[i], static_cast<int>(i) * 10);
}

// ---- ParallelSweep captured-error mode ---------------------------

wisync::workloads::KernelResult
tinyTightLoop(Machine &m)
{
    wisync::workloads::TightLoopParams params;
    params.iterations = 2;
    return wisync::workloads::runTightLoopOn(m, params);
}

TEST(ServiceCapturedErrors, RunStaysBatchFatalRunCapturedDoesNot)
{
    for (const unsigned threads : {1u, 4u}) {
        ParallelSweep sweep;
        for (int i = 0; i < 4; ++i)
            sweep.add(MachineConfig::make(ConfigKind::WiSync, 8),
                      tinyTightLoop);
        sweep.add(MachineConfig::make(ConfigKind::WiSync, 8),
                  [](Machine &) -> KernelResult {
                      throw std::runtime_error("point 4 livelocked");
                  });

        // Bench path: first body exception aborts the batch.
        EXPECT_THROW(sweep.run(threads), std::runtime_error);

        // Service path: the failure is a typed per-point outcome and
        // every healthy point still matches the clean serial run.
        const auto outcomes = sweep.runCaptured(threads);
        ASSERT_EQ(outcomes.size(), 5u);
        EXPECT_FALSE(outcomes[4].ok);
        EXPECT_EQ(outcomes[4].error, "point 4 livelocked");

        ParallelSweep clean;
        for (int i = 0; i < 4; ++i)
            clean.add(MachineConfig::make(ConfigKind::WiSync, 8),
                      tinyTightLoop);
        const auto expect = clean.run(1);
        for (int i = 0; i < 4; ++i) {
            EXPECT_TRUE(outcomes[i].ok);
            EXPECT_TRUE(bitIdentical(outcomes[i].result, expect[i]))
                << "threads " << threads << " point " << i;
        }
    }
}

TEST(ServiceCapturedErrors, OutcomeObserverSeesFailuresResultObserverDoesNot)
{
    ParallelSweep sweep;
    sweep.add(MachineConfig::make(ConfigKind::Baseline, 8),
              tinyTightLoop);
    sweep.add(MachineConfig::make(ConfigKind::Baseline, 8),
              [](Machine &) -> KernelResult {
                  throw std::runtime_error("boom");
              });

    std::mutex mu;
    std::vector<std::size_t> resultSeen;
    std::vector<std::pair<std::size_t, bool>> outcomeSeen;
    sweep.onPointComplete([&](std::size_t i, const KernelResult &) {
        std::lock_guard<std::mutex> lock(mu);
        resultSeen.push_back(i);
    });
    sweep.onOutcomeComplete(
        [&](std::size_t i, const wisync::harness::PointOutcome &o) {
            std::lock_guard<std::mutex> lock(mu);
            outcomeSeen.emplace_back(i, o.ok);
        });
    const auto outcomes = sweep.runCaptured(2);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(resultSeen, (std::vector<std::size_t>{0}))
        << "onPointComplete must only stream successes";
    ASSERT_EQ(outcomeSeen.size(), 2u);
    for (const auto &[i, ok] : outcomeSeen)
        EXPECT_EQ(ok, i == 0);
}

// ---- SweepService ------------------------------------------------

/** A small duplicate-heavy request: 8 points, 3 duplicates. */
SweepRequest
duplicateHeavyRequest()
{
    return ConfigCodec::parseRequest(R"({"points":[
        {"config":{"kind":"WiSync","cores":8},
         "workload":{"kind":"tightloop","iterations":5}},
        {"config":{"kind":"Baseline","cores":8},
         "workload":{"kind":"tightloop","iterations":5}},
        {"config":{"kind":"WiSync","cores":8},
         "workload":{"kind":"tightloop","iterations":5}},
        {"config":{"kind":"WiSync","cores":8,
                   "wireless":{"mac":"Token"}},
         "workload":{"kind":"tightloop","iterations":5}},
        {"config":{"kind":"Baseline","cores":8},
         "workload":{"kind":"tightloop","iterations":5}},
        {"config":{"kind":"WiSync","cores":8},
         "workload":{"kind":"cas","kernel":"add","duration":2000}},
        {"config":{"kind":"WiSync","cores":8},
         "workload":{"kind":"tightloop","iterations":5}},
        {"config":{"kind":"WiSync","cores":16},
         "workload":{"kind":"tightloop","iterations":5}}
    ]})");
}

void
expectSameOutcomes(const std::vector<ServiceOutcome> &expect,
                   const std::vector<ServiceOutcome> &got)
{
    ASSERT_EQ(expect.size(), got.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(expect[i].ok, got[i].ok) << "point " << i;
        EXPECT_TRUE(bitIdentical(expect[i].result, got[i].result))
            << "point " << i;
        EXPECT_EQ(expect[i].fingerprint, got[i].fingerprint)
            << "point " << i;
    }
}

TEST(ServiceSweepService, BatchIsByteIdenticalToSerialUncachedRun)
{
    const auto request = duplicateHeavyRequest();
    SweepService reference(0);
    const auto expect = reference.runBatch(request, 1);
    ASSERT_EQ(expect.size(), 8u);
    EXPECT_EQ(reference.lastBatch().simulated, 5u);

    for (const unsigned threads : {1u, 4u}) {
        SweepService svc(32);
        const auto got = svc.runBatch(request, threads);
        expectSameOutcomes(expect, got);
        // 3 duplicates (points 2, 4, 6) answer from the entry their
        // representative inserted — literal, counted cache hits.
        EXPECT_EQ(svc.lastBatch().points, 8u);
        EXPECT_EQ(svc.lastBatch().simulated, 5u);
        EXPECT_EQ(svc.lastBatch().cacheHits, 3u);
        EXPECT_EQ(svc.lastBatch().errors, 0u);
        EXPECT_EQ(svc.cache().stats().hits, 3u);
        EXPECT_FALSE(got[0].cacheHit);
        EXPECT_TRUE(got[2].cacheHit && got[4].cacheHit &&
                    got[6].cacheHit);

        // Warm rerun: nothing simulates, every point is a hit, bits
        // unchanged.
        const auto warm = svc.runBatch(request, threads);
        expectSameOutcomes(expect, warm);
        EXPECT_EQ(svc.lastBatch().simulated, 0u);
        EXPECT_EQ(svc.lastBatch().cacheHits, 8u);
        for (const auto &o : warm)
            EXPECT_TRUE(o.cacheHit);
    }
}

TEST(ServiceSweepService, CacheDisabledStillDedupesAndMatches)
{
    const auto request = duplicateHeavyRequest();
    SweepService reference(0);
    const auto expect = reference.runBatch(request, 1);

    SweepService svc(0);
    const auto got = svc.runBatch(request, 4);
    expectSameOutcomes(expect, got);
    EXPECT_EQ(svc.lastBatch().simulated, 5u);
    EXPECT_EQ(svc.lastBatch().cacheHits, 3u)
        << "duplicates still dedupe (copied from the representative)";
    EXPECT_EQ(svc.cache().stats().hits, 0u);
    EXPECT_EQ(svc.cache().size(), 0u);
}

TEST(ServiceSweepService, ObserverStreamsEveryPointExactlyOnce)
{
    const auto request = duplicateHeavyRequest();
    SweepService svc(32);
    std::mutex mu;
    std::vector<int> count(request.points.size(), 0);
    std::vector<ServiceOutcome> streamed(request.points.size());
    const auto got = svc.runBatch(
        request, 4, [&](std::size_t i, const ServiceOutcome &o) {
            std::lock_guard<std::mutex> lock(mu);
            count[i] += 1;
            streamed[i] = o;
        });
    for (std::size_t i = 0; i < request.points.size(); ++i) {
        EXPECT_EQ(count[i], 1) << "point " << i;
        EXPECT_TRUE(bitIdentical(streamed[i].result, got[i].result));
        EXPECT_EQ(streamed[i].cacheHit, got[i].cacheHit);
    }
}

// ---- Forced fingerprint collisions ------------------------------

TEST(ServiceResultCache, ForcedCollisionDegradesToAMissNeverAWrongResult)
{
    // A degenerate hasher maps every point to one key: the collision
    // path (same key, different point) is unreachable through real
    // 64-bit fingerprints, so force it.
    ResultCache cache(4, [](const RequestPoint &) { return 42ull; });
    const auto pa = pointWithSeed(1);
    const auto pb = pointWithSeed(2);

    cache.insert(pa, resultWithCycles(101));
    EXPECT_EQ(cache.lookup(pb), nullptr)
        << "a colliding lookup must never answer the other's result";
    EXPECT_EQ(cache.stats().collisions, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);

    // Colliding insert: last writer wins the single slot.
    cache.insert(pb, resultWithCycles(202));
    EXPECT_EQ(cache.size(), 1u);
    const auto *hit = cache.lookup(pb);
    ASSERT_NE(hit, nullptr);
    EXPECT_TRUE(bitIdentical(*hit, resultWithCycles(202)));
    EXPECT_EQ(cache.lookup(pa), nullptr);
    EXPECT_EQ(cache.stats().collisions, 2u);
}

// ---- Deadlines --------------------------------------------------

TEST(ServiceDeadline, RunWorkloadThrowsTypedAtTheExactCycle)
{
    Machine machine(MachineConfig::make(ConfigKind::WiSync, 8));
    WorkloadSpec spec;
    spec.tightLoop.iterations = 100000; // far past any 500-cycle run
    spec.maxCycles = 500;
    try {
        wisync::service::runWorkload(spec, machine);
        FAIL() << "expected DeadlineExceeded";
    } catch (const DeadlineExceeded &e) {
        EXPECT_EQ(e.maxCycles(), 500u);
        EXPECT_EQ(e.atCycle(), 500u)
            << "the abort cycle is exact, not 'somewhere past'";
        EXPECT_EQ(machine.engine().now(), 500u);
        EXPECT_NE(std::string(e.what()).find("DeadlineExceeded"),
                  std::string::npos);
    }
}

TEST(ServiceDeadline, GenerousBudgetNeverPerturbsTheRun)
{
    const auto cfg = MachineConfig::make(ConfigKind::WiSync, 8);
    WorkloadSpec unlimited;
    unlimited.tightLoop.iterations = 20;
    WorkloadSpec bounded = unlimited;
    bounded.maxCycles = 1'000'000'000ull;

    Machine m1(cfg);
    Machine m2(cfg);
    const auto a = wisync::service::runWorkload(unlimited, m1);
    const auto b = wisync::service::runWorkload(bounded, m2);
    EXPECT_TRUE(bitIdentical(a, b))
        << "an unhit deadline must be invisible to the simulation";
    // The budget is still part of the point's identity (cache key).
    EXPECT_NE(unlimited.fingerprint(), bounded.fingerprint());
}

TEST(ServiceDeadline, MachineIsReusableAfterADeadlineAbort)
{
    const auto cfg = MachineConfig::make(ConfigKind::WiSync, 8);
    WorkloadSpec spec;
    spec.tightLoop.iterations = 30;

    Machine fresh(cfg);
    const auto expect = wisync::service::runWorkload(spec, fresh);

    Machine machine(cfg);
    WorkloadSpec bounded = spec;
    bounded.maxCycles = 200;
    EXPECT_THROW(wisync::service::runWorkload(bounded, machine),
                 DeadlineExceeded);
    // The deadline is disarmed on the way out and reset() restores
    // the machine: the rerun must match a never-aborted one exactly.
    machine.reset();
    const auto again = wisync::service::runWorkload(spec, machine);
    EXPECT_TRUE(bitIdentical(expect, again));
}

TEST(ServiceDeadline, DeadlinePointIsATypedIsolatedDeterministicError)
{
    SweepRequest request;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        RequestPoint p;
        p.config = MachineConfig::make(ConfigKind::WiSync, 4);
        p.config.seed = seed;
        p.workload.tightLoop.iterations = 20;
        request.points.push_back(p);
    }
    SweepService reference(0);
    const auto expect = reference.runBatch(request, 1);

    SweepRequest bounded = request;
    bounded.points[1].workload.maxCycles = 300;

    std::string first_error;
    for (const unsigned threads : {1u, 4u}) {
        SweepService svc(32);
        const auto got = svc.runBatch(bounded, threads);
        ASSERT_EQ(got.size(), 3u);
        EXPECT_TRUE(got[0].ok);
        EXPECT_TRUE(bitIdentical(got[0].result, expect[0].result));
        EXPECT_FALSE(got[1].ok);
        EXPECT_NE(got[1].error.find("DeadlineExceeded"),
                  std::string::npos);
        EXPECT_NE(got[1].error.find("maxCycles=300"), std::string::npos);
        EXPECT_NE(got[1].error.find("at cycle 300"), std::string::npos)
            << got[1].error;
        EXPECT_TRUE(got[2].ok);
        EXPECT_TRUE(bitIdentical(got[2].result, expect[2].result))
            << "a deadline abort must not perturb its neighbours";
        EXPECT_EQ(svc.lastBatch().errors, 1u);
        EXPECT_EQ(svc.cache().stats().insertions, 2u)
            << "an aborted point must never be cached";

        // The abort cycle is simulated time: identical at any thread
        // count, on every rerun.
        if (first_error.empty())
            first_error = got[1].error;
        else
            EXPECT_EQ(first_error, got[1].error);
    }
}

// ---- Cost-weighted shard planning -------------------------------

/** Alternating heavy/light grid: strided sharding with k matching
 *  the period sends every heavy point to shard 0. */
SweepRequest
stripedRequest(std::size_t n)
{
    SweepRequest request;
    for (std::size_t i = 0; i < n; ++i) {
        RequestPoint p;
        const bool heavy = (i % 2) == 0;
        p.config = MachineConfig::make(ConfigKind::WiSync,
                                       heavy ? 16 : 4);
        p.config.seed = i;
        p.workload.tightLoop.iterations = heavy ? 10000 : 1;
        request.points.push_back(p);
    }
    return request;
}

TEST(ServiceShardPlan, PlanByCostIsDisjointCoveringAndDeterministic)
{
    const auto request = stripedRequest(11);
    for (const unsigned k : {1u, 2u, 3u, 4u}) {
        std::set<std::size_t> seen;
        for (unsigned s = 0; s < k; ++s) {
            const auto idx = ShardPlanner::planByCost(request, s, k);
            EXPECT_EQ(idx, ShardPlanner::planByCost(request, s, k))
                << "the plan is a pure function of (request, s, k)";
            for (std::size_t j = 1; j < idx.size(); ++j)
                EXPECT_LT(idx[j - 1], idx[j]) << "indices ascend";
            for (const auto i : idx)
                EXPECT_TRUE(seen.insert(i).second)
                    << "index " << i << " assigned twice";
        }
        EXPECT_EQ(seen.size(), request.points.size());
    }
}

TEST(ServiceShardPlan, PlanByCostBalancesWhatStridingResonatesWith)
{
    const auto request = stripedRequest(12);
    constexpr unsigned k = 2;

    const auto load = [&](const std::vector<std::size_t> &idx) {
        std::uint64_t sum = 0;
        for (const auto i : idx)
            sum += ShardPlanner::pointCost(request.points[i]);
        return sum;
    };
    std::uint64_t max_point = 0;
    for (const auto &p : request.points)
        max_point = std::max(max_point, ShardPlanner::pointCost(p));

    std::uint64_t strided_max = 0, plan_max = 0, plan_min = ~0ull;
    for (unsigned s = 0; s < k; ++s) {
        strided_max = std::max(
            strided_max,
            load(ShardPlanner::shardIndices(request.points.size(), s,
                                            k)));
        const auto cost = load(ShardPlanner::planByCost(request, s, k));
        plan_max = std::max(plan_max, cost);
        plan_min = std::min(plan_min, cost);
    }
    // Strided puts all 6 heavy points on shard 0; LPT splits them 3/3.
    EXPECT_LT(plan_max, strided_max);
    EXPECT_LE(plan_max - plan_min, max_point)
        << "LPT greedy balances to within one point's cost";
}

TEST(ServiceShardPlan, PlanByCostMergesToTheSerialAnswer)
{
    const auto request = duplicateHeavyRequest();
    SweepService reference(0);
    const auto expect = reference.runBatch(request, 1);
    const std::size_t n = request.points.size();

    for (const unsigned k : {2u, 3u}) {
        std::vector<ServiceOutcome> merged(n);
        for (unsigned s = 0; s < k; ++s) {
            SweepService svc(32);
            const auto idx = ShardPlanner::planByCost(request, s, k);
            auto part = svc.runBatch(
                ShardPlanner::subRequest(request, idx), 2);
            ShardPlanner::mergeByIndex(merged, idx, std::move(part));
        }
        expectSameOutcomes(expect, merged);
    }
}

TEST(ServiceSweepService, ShardedRunMergesToTheSerialAnswer)
{
    const auto request = duplicateHeavyRequest();
    SweepService reference(0);
    const auto expect = reference.runBatch(request, 1);
    const std::size_t n = request.points.size();

    for (const unsigned k : {2u, 3u}) {
        std::vector<ServiceOutcome> merged(n);
        for (unsigned s = 0; s < k; ++s) {
            SweepService svc(32); // one independent process's view
            const auto idx = ShardPlanner::shardIndices(n, s, k);
            auto part = svc.runBatch(
                ShardPlanner::shardRequest(request, s, k), 2);
            ShardPlanner::mergeByIndex(merged, idx, std::move(part));
        }
        expectSameOutcomes(expect, merged);
    }
}

} // namespace
