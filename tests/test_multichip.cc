/**
 * @file
 * Multi-chip machine tests: the FrequencyPlan mapping math, the
 * ChipBridge's serialize-then-propagate timing, the pooled WatchTable,
 * the chip-ranged BmStore operations, machine-wide BM coherence across
 * the bridge (including AFB aborts on stale cross-chip RMWs and the
 * hierarchical MultiChipBarrier), reset-replay determinism for chip
 * grids, the config describe() labels — and the golden pin: a
 * numChips = 1 machine must produce exactly the pre-multichip numbers
 * on the figure kernels, because the single-chip code path is required
 * to be byte-identical to the pre-refactor build.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "coro/watch_table.hh"
#include "noc/chip_bridge.hh"
#include "sim/engine.hh"
#include "wireless/frequency_plan.hh"
#include "workloads/cas_kernels.hh"
#include "workloads/tight_loop.hh"

namespace {

using wisync::core::ConfigKind;
using wisync::core::Machine;
using wisync::core::MachineConfig;

// ---------------------------------------------------------------------
// FrequencyPlan: pure mapping math.

TEST(FrequencyPlan, EnoughSlotsGiveEveryChipAPrivateChannel)
{
    const wisync::wireless::FrequencyPlan plan(4, 4);
    EXPECT_EQ(plan.chips(), 4u);
    EXPECT_EQ(plan.channels(), 4u);
    for (std::uint32_t c = 0; c < 4; ++c) {
        EXPECT_EQ(plan.channelOf(c), c);
        EXPECT_EQ(plan.chipIndexOnChannel(c), 0u);
        EXPECT_EQ(plan.chipsOnChannel(c), 1u);
    }
}

TEST(FrequencyPlan, FewerSlotsThanChipsShareChannelsRoundRobin)
{
    // 5 chips over 2 slots: channel 0 <- {0, 2, 4}, channel 1 <- {1, 3}.
    const wisync::wireless::FrequencyPlan plan(5, 2);
    EXPECT_EQ(plan.channels(), 2u);
    EXPECT_EQ(plan.chipsOnChannel(0), 3u);
    EXPECT_EQ(plan.chipsOnChannel(1), 2u);
    for (std::uint32_t chip = 0; chip < 5; ++chip) {
        const std::uint32_t ch = plan.channelOf(chip);
        EXPECT_EQ(ch, chip % 2);
        // chipAt is the inverse of (channelOf, chipIndexOnChannel).
        EXPECT_EQ(plan.chipAt(ch, plan.chipIndexOnChannel(chip)), chip);
    }
}

TEST(FrequencyPlan, DegenerateInputsClampToOne)
{
    const wisync::wireless::FrequencyPlan zeroChips(0, 4);
    EXPECT_EQ(zeroChips.chips(), 1u);
    const wisync::wireless::FrequencyPlan zeroSlots(3, 0);
    EXPECT_EQ(zeroSlots.channels(), 1u);
    EXPECT_EQ(zeroSlots.chipsOnChannel(0), 3u);
}

// ---------------------------------------------------------------------
// ChipBridge: FIFO serialization + propagation latency.

TEST(ChipBridge, FrameArrivesAfterSerializationPlusLatency)
{
    wisync::sim::Engine eng;
    wisync::noc::BridgeConfig cfg;
    cfg.latencyCycles = 10;
    cfg.widthBits = 64;
    cfg.headerBits = 32;
    wisync::noc::ChipBridge bridge(eng, cfg);

    // 64 payload + 32 header bits over a 64-bit link = 2 cycles of
    // serialization; delivery at 2 + 10.
    wisync::sim::Cycle arrived = 0;
    bridge.post(64, [&] { arrived = eng.now(); });
    eng.run();
    EXPECT_EQ(arrived, 12u);
    EXPECT_EQ(bridge.stats().frames.value(), 1u);
    EXPECT_EQ(bridge.stats().busyCycles.value(), 2u);
    EXPECT_EQ(bridge.stats().queueWaitCycles.value(), 0u);
}

TEST(ChipBridge, BackToBackFramesSerializeFifo)
{
    wisync::sim::Engine eng;
    wisync::noc::BridgeConfig cfg;
    cfg.latencyCycles = 5;
    cfg.widthBits = 32;
    cfg.headerBits = 32;
    wisync::noc::ChipBridge bridge(eng, cfg);

    // Both posted at cycle 0; each needs (32+32)/32 = 2 cycles on the
    // wire. The second waits for the first: arrivals at 7 and 9.
    std::vector<wisync::sim::Cycle> arrivals;
    bridge.post(32, [&] { arrivals.push_back(eng.now()); });
    bridge.post(32, [&] { arrivals.push_back(eng.now()); });
    EXPECT_EQ(bridge.nextFree(), 4u);
    eng.run();
    ASSERT_EQ(arrivals.size(), 2u);
    EXPECT_EQ(arrivals[0], 7u);
    EXPECT_EQ(arrivals[1], 9u);
    // The second frame queued for the serializer for 2 cycles.
    EXPECT_EQ(bridge.stats().queueWaitCycles.value(), 2u);
}

TEST(ChipBridge, ResetIdlesTheLinkAndZeroesStats)
{
    wisync::sim::Engine eng;
    wisync::noc::ChipBridge bridge(eng, {});
    bridge.post(64, [] {});
    eng.run();
    EXPECT_GT(bridge.stats().frames.value(), 0u);
    eng.reset();
    bridge.reset({});
    EXPECT_EQ(bridge.nextFree(), 0u);
    EXPECT_EQ(bridge.stats().frames.value(), 0u);
}

// ---------------------------------------------------------------------
// WatchTable: pooled events, stable references, recycle on reset.

TEST(WatchTable, RecyclesEventsAcrossReset)
{
    wisync::sim::Engine eng;
    wisync::coro::WatchTable table(eng);
    for (std::uint64_t k = 0; k < 10; ++k)
        table[k];
    EXPECT_EQ(table.size(), 10u);
    EXPECT_EQ(table.stats().allocated, 10u);
    EXPECT_EQ(table.stats().recycled, 0u);

    table.reset();
    EXPECT_EQ(table.size(), 0u);
    EXPECT_EQ(table.freeCount(), 10u);
    EXPECT_EQ(table.find(3), nullptr);

    // The second generation is served entirely from the free list.
    for (std::uint64_t k = 100; k < 110; ++k)
        table[k];
    EXPECT_EQ(table.stats().allocated, 10u);
    EXPECT_EQ(table.stats().recycled, 10u);
}

TEST(WatchTable, ReferencesSurviveRehash)
{
    wisync::sim::Engine eng;
    wisync::coro::WatchTable table(eng);
    wisync::coro::VersionedEvent &first = table[42];
    const std::size_t slots_before = table.slotCount();
    // Overflow the initial slot array to force at least one rehash.
    for (std::uint64_t k = 1000; k < 1000 + 2 * slots_before; ++k)
        table[k];
    EXPECT_GT(table.stats().rehashes, 0u);
    EXPECT_GT(table.slotCount(), slots_before);
    // The event pointer is stable across the rehash and still mapped.
    EXPECT_EQ(&table[42], &first);
    EXPECT_EQ(table.find(42), &first);
}

// ---------------------------------------------------------------------
// BmStore chip-ranged operations and the per-chip invariant.

TEST(BmStoreChips, WriteChipTouchesOnlyItsReplicaGroup)
{
    wisync::sim::Engine eng;
    wisync::bm::BmStore store(eng, 8, 4);
    // Chips of 4 nodes each: write chip 1's replicas of word 2.
    store.writeChip(4, 4, 2, 77);
    for (wisync::sim::NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(store.read(n, 2), 0u);
    for (wisync::sim::NodeId n = 4; n < 8; ++n)
        EXPECT_EQ(store.read(n, 2), 77u);
    // Whole-machine consistency is broken, per-chip consistency holds.
    EXPECT_FALSE(store.replicasConsistent());
    EXPECT_FALSE(store.replicasConsistent(4));  // word 2 is Global
    store.setScope(2, wisync::bm::BmScope::ChipLocal);
    EXPECT_TRUE(store.replicasConsistent(4));
    EXPECT_EQ(store.scope(2), wisync::bm::BmScope::ChipLocal);
    EXPECT_EQ(store.scope(1), wisync::bm::BmScope::Global);
}

TEST(BmStoreChips, ToggleChipFlipsOneGroup)
{
    wisync::sim::Engine eng;
    wisync::bm::BmStore store(eng, 8, 2);
    store.toggleChip(0, 4, 1);
    EXPECT_EQ(store.read(0, 1), 1u);
    EXPECT_EQ(store.read(3, 1), 1u);
    EXPECT_EQ(store.read(4, 1), 0u);
    store.toggleChip(0, 4, 1);
    EXPECT_EQ(store.read(0, 1), 0u);
}

TEST(BmStoreChips, ResetRestoresGlobalScope)
{
    wisync::sim::Engine eng;
    wisync::bm::BmStore store(eng, 4, 2);
    store.setScope(1, wisync::bm::BmScope::ChipLocal);
    store.reset();
    EXPECT_EQ(store.scope(1), wisync::bm::BmScope::Global);
}

// ---------------------------------------------------------------------
// Machine-level multi-chip coherence.

TEST(MultiChip, TightLoopCoherentAcrossBridge)
{
    for (const auto kind : {ConfigKind::WiSync, ConfigKind::WiSyncNoT}) {
        for (const std::uint32_t chips : {2u, 4u}) {
            auto cfg = MachineConfig::make(kind, 32);
            cfg.numChips = chips;
            Machine m(cfg);
            wisync::workloads::TightLoopParams p;
            p.iterations = 4;
            p.arrayElems = 8;
            const auto r = wisync::workloads::runTightLoopOn(m, p);
            EXPECT_TRUE(r.completed) << chips << " chips";
            EXPECT_EQ(r.operations, 4u);
            // The global barrier phase must have crossed the bridge.
            EXPECT_GT(r.bridgeFrames, 0u);
            // At quiescence every Global word agrees machine-wide and
            // every ChipLocal word agrees within its chip.
            EXPECT_TRUE(m.bm()->storeArray().replicasConsistent(
                cfg.coresPerChip()));
        }
    }
}

TEST(MultiChip, CrossChipRmwContentionAbortsStaleReplicasAndCompletes)
{
    auto cfg = MachineConfig::make(ConfigKind::WiSyncNoT, 32);
    cfg.numChips = 4;
    Machine m(cfg);
    wisync::workloads::CasKernelParams p;
    p.criticalSectionInstr = 64;
    p.duration = 20'000;
    const auto r = wisync::workloads::runCasKernelOn(
        wisync::workloads::CasKernel::Lifo, m, p);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.operations, 0u);
    // Bridged updates race the local RMW windows: some attempts must
    // have been aborted on stale replicas, and every survivor landed
    // coherently.
    EXPECT_GT(r.staleRmwAborts, 0u);
    EXPECT_GT(r.bridgeFrames, 0u);
    EXPECT_TRUE(
        m.bm()->storeArray().replicasConsistent(cfg.coresPerChip()));
}

TEST(MultiChip, BridgeLatencyVisibleInCrossChipBarrierCost)
{
    // The same 64-core WiSync barrier storm on one die vs 4 chips: the
    // MultiChipBarrier's global phase rides the bridge every round, so
    // the tiled run must be strictly slower.
    wisync::workloads::TightLoopParams storm;
    storm.iterations = 4;
    storm.arrayElems = 0;
    auto cfg = MachineConfig::make(ConfigKind::WiSync, 64);
    Machine one(cfg);
    const auto intra = wisync::workloads::runTightLoopOn(one, storm);
    cfg.numChips = 4;
    Machine four(cfg);
    const auto inter = wisync::workloads::runTightLoopOn(four, storm);
    ASSERT_TRUE(intra.completed);
    ASSERT_TRUE(inter.completed);
    EXPECT_GT(inter.cycles, intra.cycles);
    EXPECT_EQ(intra.bridgeFrames, 0u);
    EXPECT_GT(inter.bridgeFrames, 0u);
}

TEST(MultiChip, ResetReplayIsBitIdentical)
{
    auto cfg = MachineConfig::make(ConfigKind::WiSync, 32);
    cfg.numChips = 2;
    Machine m(cfg);
    wisync::workloads::TightLoopParams p;
    p.iterations = 3;
    p.arrayElems = 8;
    const auto first = wisync::workloads::runTightLoopOn(m, p);
    m.reset(cfg);
    const auto second = wisync::workloads::runTightLoopOn(m, p);
    EXPECT_TRUE(wisync::workloads::bitIdentical(first, second));

    // And a reset machine matches a fresh one exactly.
    Machine fresh(cfg);
    const auto ref = wisync::workloads::runTightLoopOn(fresh, p);
    EXPECT_TRUE(wisync::workloads::bitIdentical(first, ref));
}

TEST(MultiChip, ResetMovesOneMachineBetweenChipCounts)
{
    // numChips is behavioral: one machine serves 1-, 2- and 4-chip
    // sweep points through reset, matching fresh builds each time.
    wisync::workloads::TightLoopParams p;
    p.iterations = 3;
    p.arrayElems = 8;
    auto cfg = MachineConfig::make(ConfigKind::WiSyncNoT, 32);
    Machine m(cfg);
    for (const std::uint32_t chips : {1u, 4u, 2u, 1u}) {
        cfg.numChips = chips;
        m.reset(cfg);
        const auto reused = wisync::workloads::runTightLoopOn(m, p);
        Machine fresh(cfg);
        const auto ref = wisync::workloads::runTightLoopOn(fresh, p);
        EXPECT_TRUE(wisync::workloads::bitIdentical(reused, ref))
            << chips << " chips";
    }
}

TEST(MultiChipDeathTest, CoresMustDivideEvenlyAmongChips)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto cfg = MachineConfig::make(ConfigKind::WiSync, 32);
    cfg.numChips = 3;
    EXPECT_EXIT(Machine m(cfg), ::testing::ExitedWithCode(1),
                "divide evenly");
}

// ---------------------------------------------------------------------
// describe() labels.

TEST(MachineConfigDescribe, ChipCountOnlyOffTheDefault)
{
    auto cfg = MachineConfig::make(ConfigKind::WiSync, 64);
    EXPECT_EQ(cfg.describe().find("chips="), std::string::npos);
    cfg.numChips = 4;
    EXPECT_NE(cfg.describe().find("chips=4"), std::string::npos);
}

TEST(MachineConfigDescribe, LossyRetryKnobsAppearOnlyWhenLossy)
{
    auto cfg = MachineConfig::make(ConfigKind::WiSync, 64);
    // Non-default retry knobs on an ideal channel: silent (byte-
    // identical to pre-loss harness output).
    cfg.wireless.maxRetries = 3;
    const std::string ideal = cfg.describe();
    EXPECT_EQ(ideal.find("loss="), std::string::npos);
    EXPECT_EQ(ideal.find("retries="), std::string::npos);

    // Lossy: the reliability knobs change behavior, so two sweep
    // points differing only in them must print distinct labels.
    cfg.wireless.lossPct = 10.0;
    cfg.wireless.ackTimeoutCycles = 9;
    cfg.wireless.retryBackoffMaxExp = 2;
    const std::string lossy = cfg.describe();
    EXPECT_NE(lossy.find("loss=10%"), std::string::npos);
    EXPECT_NE(lossy.find("ack=9"), std::string::npos);
    EXPECT_NE(lossy.find("retries=3"), std::string::npos);
    EXPECT_NE(lossy.find("boexp=2"), std::string::npos);

    auto other = cfg;
    other.wireless.maxRetries = 5;
    EXPECT_NE(lossy, other.describe());
}

// ---------------------------------------------------------------------
// The golden pin: numChips = 1 must reproduce the pre-multichip build
// exactly. These constants were captured from the last pre-refactor
// commit with this exact probe (cycles/ops/collisions are integers;
// the utilisation literals are %.17g round-trips, so EXPECT_EQ on the
// doubles is an exact bit comparison).

TEST(MultiChipGoldenPin, SingleChipMatchesPreRefactorBuild)
{
    using wisync::workloads::runCasKernel;
    using wisync::workloads::runTightLoop;
    wisync::workloads::TightLoopParams tl;
    tl.iterations = 6;
    tl.arrayElems = 32;

    const auto a = runTightLoop(ConfigKind::WiSync, 16, tl);
    EXPECT_EQ(a.cycles, 1379u);
    EXPECT_EQ(a.operations, 6u);
    EXPECT_EQ(a.collisions, 11u);
    EXPECT_EQ(a.dataChannelUtilisation, 0.037708484408992021);

    const auto b = runTightLoop(ConfigKind::WiSyncNoT, 16, tl);
    EXPECT_EQ(b.cycles, 2429u);
    EXPECT_EQ(b.operations, 6u);
    EXPECT_EQ(b.collisions, 30u);
    EXPECT_EQ(b.dataChannelUtilisation, 0.24701523260601072);

    const auto c = runTightLoop(ConfigKind::WiSync, 64, tl);
    EXPECT_EQ(c.cycles, 3167u);
    EXPECT_EQ(c.operations, 6u);
    EXPECT_EQ(c.collisions, 34u);
    EXPECT_EQ(c.dataChannelUtilisation, 0.030944111146195136);

    wisync::workloads::CasKernelParams cp;
    cp.criticalSectionInstr = 64;
    cp.duration = 30'000;
    const auto d = runCasKernel(wisync::workloads::CasKernel::Lifo,
                                ConfigKind::WiSyncNoT, 8, cp);
    EXPECT_EQ(d.cycles, 30000u);
    EXPECT_EQ(d.operations, 1077u);
    EXPECT_EQ(d.collisions, 71u);
    EXPECT_EQ(d.dataChannelUtilisation, 0.1838227957561446);

    // And none of it ever touched the multichip machinery.
    EXPECT_EQ(a.bridgeFrames + b.bridgeFrames + c.bridgeFrames +
                  d.bridgeFrames,
              0u);
    EXPECT_EQ(a.staleRmwAborts + d.staleRmwAborts, 0u);
}

} // namespace
