/**
 * @file
 * Unit, integration, and property tests for the BM controller:
 * store broadcast ordering, RMW/AFB semantics, bulk transfers, tone
 * barriers, PID protection.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bm/bm_system.hh"
#include "coro/primitives.hh"
#include "sim/engine.hh"
#include "sim/rng.hh"

namespace {

using wisync::bm::BmConfig;
using wisync::bm::BmSystem;
using wisync::bm::ProtectionFault;
using wisync::coro::delay;
using wisync::coro::spawnNow;
using wisync::coro::Task;
using wisync::sim::BmAddr;
using wisync::sim::Cycle;
using wisync::sim::Engine;
using wisync::sim::NodeId;
using wisync::sim::Pid;
using wisync::sim::Rng;
using wisync::wireless::WirelessConfig;

constexpr Pid kPid = 1;

struct BmChip
{
    explicit BmChip(std::uint32_t nodes, bool tone = true)
        : bm(engine, nodes, BmConfig{}, WirelessConfig{}, Rng(99), tone)
    {
        // Pre-tag a region for the test program (bypasses the
        // allocation broadcast for unit-level tests).
        for (BmAddr a = 0; a < 128; ++a)
            bm.storeArray().setTag(a, kPid);
    }

    Engine engine;
    BmSystem bm;
};

TEST(BmSystem, LoadDefaultsToZeroAtBmLatency)
{
    BmChip chip(4);
    Cycle done = 0;
    std::uint64_t v = 1;
    spawnNow(chip.engine, [&]() -> Task<void> {
        v = co_await chip.bm.load(0, kPid, 5);
        done = chip.engine.now();
    });
    chip.engine.run();
    EXPECT_EQ(v, 0u);
    EXPECT_EQ(done, 2u); // BM RT
}

TEST(BmSystem, StoreUpdatesAllReplicasAfterBroadcast)
{
    BmChip chip(4);
    Cycle done = 0;
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.bm.store(0, kPid, 5, 42);
        done = chip.engine.now();
    });
    chip.engine.run();
    // 5-cycle wireless transfer + 2-cycle local BM write.
    EXPECT_EQ(done, 7u);
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(chip.bm.storeArray().read(n, 5), 42u);
    EXPECT_TRUE(chip.bm.storeArray().replicasConsistent());
}

TEST(BmSystem, RemoteReadSeesValueAfterDelivery)
{
    BmChip chip(4);
    std::uint64_t remote = 0;
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.bm.store(0, kPid, 9, 1234);
    });
    spawnNow(chip.engine, [&]() -> Task<void> {
        remote = co_await chip.bm.spinUntil(
            3, kPid, 9, [](std::uint64_t v) { return v != 0; });
    });
    chip.engine.run();
    EXPECT_EQ(remote, 1234u);
}

TEST(BmSystem, BulkStoreMovesFourWordsInOneMessage)
{
    BmChip chip(4);
    Cycle done = 0;
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.bm.bulkStore(0, kPid, 16, {1, 2, 3, 4});
        done = chip.engine.now();
    });
    chip.engine.run();
    // 15-cycle bulk transfer + 2-cycle BM write.
    EXPECT_EQ(done, 17u);
    EXPECT_EQ(chip.bm.dataChannel().stats().bulkMessages.value(), 1u);
    for (NodeId n = 0; n < 4; ++n)
        for (std::uint32_t i = 0; i < 4; ++i)
            EXPECT_EQ(chip.bm.storeArray().read(n, 16 + i), i + 1);
}

TEST(BmSystem, BulkLoadReturnsFourWords)
{
    BmChip chip(4);
    std::array<std::uint64_t, 4> got{};
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.bm.bulkStore(0, kPid, 20, {9, 8, 7, 6});
        got = co_await chip.bm.bulkLoad(2, kPid, 20);
    });
    chip.engine.run();
    EXPECT_EQ(got, (std::array<std::uint64_t, 4>{9, 8, 7, 6}));
}

TEST(BmSystem, FetchAddSucceedsWithoutContention)
{
    BmChip chip(4);
    spawnNow(chip.engine, [&]() -> Task<void> {
        const auto r = co_await chip.bm.fetchAdd(0, kPid, 3, 5);
        EXPECT_FALSE(r.atomicityFailed);
        EXPECT_EQ(r.oldValue, 0u);
    });
    chip.engine.run();
    EXPECT_EQ(chip.bm.storeArray().read(1, 3), 5u);
}

TEST(BmSystem, AfbSetWhenRemoteStoreIntervenes)
{
    // Node 1's RMW reads the word, then node 0's store lands before
    // node 1 reaches the channel -> AFB must abort node 1's write.
    BmChip chip(4);
    int afb_failures = 0;
    // Node 0: plain store that will deliver at cycle ~5.
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.bm.store(0, kPid, 7, 100);
    });
    // Node 1: RMW on the same word, started so its read (2 cycles) +
    // modify (1 cycle) overlaps node 0's in-flight broadcast; its
    // channel attempt then waits for the busy channel and by the time
    // it transmits, the incoming store has set AFB.
    spawnNow(chip.engine, [&]() -> Task<void> {
        const auto r = co_await chip.bm.fetchAdd(1, kPid, 7, 1);
        if (r.atomicityFailed)
            ++afb_failures;
    });
    chip.engine.run();
    EXPECT_EQ(afb_failures, 1);
    EXPECT_EQ(chip.bm.stats().afbFailures.value(), 1u);
    // The aborted RMW must not have written: value is node 0's.
    EXPECT_EQ(chip.bm.storeArray().read(2, 7), 100u);
}

TEST(BmSystem, RetryLoopsAlwaysCommitExactlyOnce)
{
    // Property: N nodes x K fetchAddRetry(1) == N*K despite AFB aborts.
    constexpr std::uint32_t kNodes = 16;
    constexpr int kIters = 10;
    BmChip chip(kNodes);
    auto worker = [&](NodeId n) -> Task<void> {
        for (int i = 0; i < kIters; ++i)
            co_await chip.bm.fetchAddRetry(n, kPid, 0, 1);
    };
    for (NodeId n = 0; n < kNodes; ++n)
        spawnNow(chip.engine, worker, n);
    ASSERT_TRUE(chip.engine.run(10'000'000));
    EXPECT_EQ(chip.bm.storeArray().read(0, 0),
              static_cast<std::uint64_t>(kNodes) * kIters);
    EXPECT_TRUE(chip.bm.storeArray().replicasConsistent());
}

TEST(BmSystem, CasComparisonFailureSkipsBroadcast)
{
    BmChip chip(4);
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.bm.store(0, kPid, 11, 5);
        const auto msgs = chip.bm.dataChannel().stats().messages.value();
        const auto r = co_await chip.bm.cas(1, kPid, 11, 99, 1);
        EXPECT_FALSE(r.compared);
        EXPECT_FALSE(r.atomicityFailed);
        EXPECT_EQ(r.oldValue, 5u);
        // No wireless message for a failed comparison.
        EXPECT_EQ(chip.bm.dataChannel().stats().messages.value(), msgs);
    });
    chip.engine.run();
    EXPECT_EQ(chip.bm.storeArray().read(0, 11), 5u);
}

TEST(BmSystem, CasSuccess)
{
    BmChip chip(4);
    spawnNow(chip.engine, [&]() -> Task<void> {
        const auto r = co_await chip.bm.cas(2, kPid, 12, 0, 77);
        EXPECT_TRUE(r.succeeded());
    });
    chip.engine.run();
    EXPECT_EQ(chip.bm.storeArray().read(0, 12), 77u);
}

TEST(BmSystem, StoresHaveChipWideTotalOrder)
{
    // All nodes spam stores to distinct words; delivery instants must
    // be strictly ordered and replicas consistent throughout.
    constexpr std::uint32_t kNodes = 8;
    BmChip chip(kNodes);
    auto worker = [&](NodeId n) -> Task<void> {
        for (int i = 0; i < 8; ++i)
            co_await chip.bm.store(n, kPid, n, i + 1);
    };
    for (NodeId n = 0; n < kNodes; ++n)
        spawnNow(chip.engine, worker, n);
    ASSERT_TRUE(chip.engine.run(1'000'000));
    EXPECT_TRUE(chip.bm.storeArray().replicasConsistent());
    for (NodeId n = 0; n < kNodes; ++n)
        EXPECT_EQ(chip.bm.storeArray().read(0, n), 8u);
}

TEST(BmSystem, ProtectionFaultOnWrongPid)
{
    BmChip chip(4);
    bool faulted = false;
    spawnNow(chip.engine, [&]() -> Task<void> {
        try {
            co_await chip.bm.load(0, /*pid=*/9, 5);
        } catch (const ProtectionFault &f) {
            faulted = true;
            EXPECT_EQ(f.addr, 5u);
            EXPECT_EQ(f.pid, 9u);
        }
    });
    chip.engine.run();
    EXPECT_TRUE(faulted);
    EXPECT_EQ(chip.bm.stats().protectionFaults.value(), 1u);
}

TEST(BmSystem, ProtectionFaultOnUntaggedEntry)
{
    BmChip chip(4);
    bool faulted = false;
    spawnNow(chip.engine, [&]() -> Task<void> {
        try {
            co_await chip.bm.store(0, kPid, 200, 1); // beyond tagged 128
        } catch (const ProtectionFault &) {
            faulted = true;
        }
    });
    chip.engine.run();
    EXPECT_TRUE(faulted);
}

TEST(BmSystem, AllocationBroadcastTagsEntries)
{
    BmChip chip(4);
    spawnNow(chip.engine, [&]() -> Task<void> {
        co_await chip.bm.allocEntries(0, /*pid=*/7, 300, 4);
        // Now PID 7 can use the entries...
        co_await chip.bm.store(1, 7, 300, 5);
        // ...and PID 1 cannot.
        bool faulted = false;
        try {
            co_await chip.bm.load(2, kPid, 300);
        } catch (const ProtectionFault &) {
            faulted = true;
        }
        EXPECT_TRUE(faulted);
        co_await chip.bm.deallocEntries(0, 300, 4);
    });
    chip.engine.run();
    EXPECT_EQ(chip.bm.storeArray().tag(300), wisync::bm::kNoPid);
}

TEST(BmSystem, ToneBarrierReleasesAllNodes)
{
    constexpr std::uint32_t kNodes = 8;
    BmChip chip(kNodes);
    const BmAddr bar = 32;
    ASSERT_TRUE(
        chip.bm.allocToneBarrier(bar, std::vector<bool>(kNodes, true)));

    int released = 0;
    auto worker = [&](NodeId n) -> Task<void> {
        // Sense-reversing tone barrier (Fig. 4(c)): sense becomes 1.
        co_await delay(chip.engine, n * 3); // staggered arrivals
        co_await chip.bm.toneStore(n, kPid, bar);
        co_await chip.bm.spinUntil(n, kPid, bar,
                                   [](std::uint64_t v) { return v == 1; });
        ++released;
    };
    for (NodeId n = 0; n < kNodes; ++n)
        spawnNow(chip.engine, worker, n);
    ASSERT_TRUE(chip.engine.run(1'000'000));
    EXPECT_EQ(released, static_cast<int>(kNodes));
    EXPECT_EQ(chip.bm.toneChannel()->stats().releases.value(), 1u);
}

TEST(BmSystem, ToneBarrierIsReusableWithSenseReversal)
{
    constexpr std::uint32_t kNodes = 4;
    BmChip chip(kNodes);
    const BmAddr bar = 40;
    ASSERT_TRUE(
        chip.bm.allocToneBarrier(bar, std::vector<bool>(kNodes, true)));
    constexpr int kIters = 5;
    std::vector<int> progress(kNodes, 0);

    auto worker = [&](NodeId n) -> Task<void> {
        std::uint64_t sense = 0;
        for (int i = 0; i < kIters; ++i) {
            sense = !sense ? 1 : 0;
            co_await chip.bm.toneStore(n, kPid, bar); // arrival
            progress[n] = i + 1;
            co_await chip.bm.spinUntil(
                n, kPid, bar,
                [sense](std::uint64_t v) { return v == sense; });
            // Release implies every participant arrived at barrier i.
            for (NodeId m = 0; m < kNodes; ++m)
                EXPECT_GE(progress[m], i + 1) << "barrier violated";
        }
    };
    for (NodeId n = 0; n < kNodes; ++n)
        spawnNow(chip.engine, worker, n);
    ASSERT_TRUE(chip.engine.run(1'000'000));
    EXPECT_EQ(chip.bm.toneChannel()->stats().releases.value(),
              static_cast<std::uint64_t>(kIters));
}

TEST(BmSystem, SimultaneousFirstArrivalsAreHandled)
{
    // Every node does tone_st at the same cycle: several nodes think
    // they are first and all announce; activation must be idempotent
    // and the barrier must still release exactly once.
    constexpr std::uint32_t kNodes = 8;
    BmChip chip(kNodes);
    const BmAddr bar = 48;
    ASSERT_TRUE(
        chip.bm.allocToneBarrier(bar, std::vector<bool>(kNodes, true)));
    int released = 0;
    auto worker = [&](NodeId n) -> Task<void> {
        co_await chip.bm.toneStore(n, kPid, bar);
        co_await chip.bm.spinUntil(n, kPid, bar,
                                   [](std::uint64_t v) { return v == 1; });
        ++released;
    };
    for (NodeId n = 0; n < kNodes; ++n)
        spawnNow(chip.engine, worker, n);
    ASSERT_TRUE(chip.engine.run(1'000'000));
    EXPECT_EQ(released, static_cast<int>(kNodes));
    EXPECT_EQ(chip.bm.toneChannel()->stats().releases.value(), 1u);
    EXPECT_GE(chip.bm.stats().toneAnnouncements.value(), 1u);
}

TEST(BmSystem, WiSyncNoTHasNoToneChannel)
{
    BmChip chip(4, /*tone=*/false);
    EXPECT_FALSE(chip.bm.hasTone());
    EXPECT_EQ(chip.bm.toneChannel(), nullptr);
    EXPECT_FALSE(chip.bm.allocToneBarrier(0, std::vector<bool>(4, true)));
}

} // namespace
