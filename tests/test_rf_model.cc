/**
 * @file
 * Tests for the RF area/power scaling model against the paper's §2,
 * §7.1 and Table 4 numbers, and for the deterministic per-link
 * channel model (grid geometry -> path loss -> SNR -> BER ->
 * broadcast packet-error rate).
 */

#include <gtest/gtest.h>

#include "wireless/data_channel.hh"
#include "wireless/rf_model.hh"

namespace {

using wisync::wireless::RfChannelConfig;
using wisync::wireless::RfChannelModel;
using wisync::wireless::RfScalingModel;
using wisync::wireless::RfSpec;

TEST(RfModel, Yu65ReferenceMatchesPaper)
{
    const RfSpec ref = RfScalingModel::yu65Reference();
    EXPECT_DOUBLE_EQ(ref.areaMm2, 0.23);
    EXPECT_DOUBLE_EQ(ref.powerMw, 31.2);
    EXPECT_DOUBLE_EQ(ref.bandwidthGbps, 16.0);
    EXPECT_EQ(ref.techNm, 65);
}

TEST(RfModel, ScaledTo22nmMatchesPaperEndpoints)
{
    // §2: "an antenna and transceiver at 22-nm ... 0.1 mm2 at 16 mW".
    const RfSpec scaled =
        RfScalingModel::scale(RfScalingModel::yu65Reference(), 22);
    EXPECT_NEAR(scaled.areaMm2, 0.10, 0.005);
    EXPECT_NEAR(scaled.powerMw, 16.0, 0.5);
    EXPECT_EQ(scaled.techNm, 22);
    EXPECT_DOUBLE_EQ(scaled.bandwidthGbps, 16.0); // held constant
}

TEST(RfModel, AreaScalingIsSublinear)
{
    // Sublinear: shrink saves less area than the linear tech ratio.
    const RfSpec ref = RfScalingModel::yu65Reference();
    const RfSpec scaled = RfScalingModel::scale(ref, 22);
    const double linear = ref.areaMm2 * 22.0 / 65.0;
    EXPECT_GT(scaled.areaMm2, linear);
    EXPECT_LT(scaled.areaMm2, ref.areaMm2);
}

TEST(RfModel, IdentityScaleIsNoop)
{
    const RfSpec ref = RfScalingModel::yu65Reference();
    const RfSpec same = RfScalingModel::scale(ref, 65);
    EXPECT_DOUBLE_EQ(same.areaMm2, ref.areaMm2);
    EXPECT_DOUBLE_EQ(same.powerMw, ref.powerMw);
}

TEST(RfModel, WisyncTransceiverTotals)
{
    // §7.1: transceiver + two antennas = 0.14 mm2 and 18 mW.
    const RfSpec t2a = RfScalingModel::wisyncTransceiver22();
    EXPECT_NEAR(t2a.areaMm2, 0.14, 0.006);
    EXPECT_NEAR(t2a.powerMw, 18.0, 0.5);
}

TEST(RfModel, Table4Percentages)
{
    const auto rows = RfScalingModel::table4();
    ASSERT_EQ(rows.size(), 2u);
    // Xeon Haswell: 0.7% area, 0.4% power.
    EXPECT_EQ(rows[0].name, "Xeon Haswell");
    EXPECT_NEAR(rows[0].areaPct, 0.7, 0.05);
    EXPECT_NEAR(rows[0].powerPct, 0.4, 0.05);
    // Atom Silvermont: 5.6% area, 1.8% power.
    EXPECT_EQ(rows[1].name, "Atom Silvermont");
    EXPECT_NEAR(rows[1].areaPct, 5.6, 0.2);
    EXPECT_NEAR(rows[1].powerPct, 1.8, 0.1);
}

// ---- Control-frame pricing ----------------------------------------

TEST(RfChannel, FrameCyclesPricesFramesAtTransceiverBandwidth)
{
    const RfSpec t = RfScalingModel::wisyncTransceiver22();
    // 16 Gb/s in 1 ns slots = 16 bits per slot: a 16-bit token frame
    // costs exactly the legacy 1-cycle hop, and the 77-bit data frame
    // prices to the Table 1 5-cycle transfer.
    EXPECT_EQ(RfScalingModel::frameCycles(16, t), 1u);
    EXPECT_EQ(RfScalingModel::frameCycles(77, t), 5u);
    EXPECT_EQ(RfScalingModel::frameCycles(48, t), 3u);
    // Ceil with a floor of one slot.
    EXPECT_EQ(RfScalingModel::frameCycles(1, t), 1u);
    EXPECT_EQ(RfScalingModel::frameCycles(17, t), 2u);
}

TEST(RfChannelDeathTest, FrameCyclesRejectsNonPositiveBandwidth)
{
    // A zero-bandwidth spec used to divide by zero inside the slot
    // computation; it must die loudly instead of returning garbage.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    RfSpec broken = RfScalingModel::wisyncTransceiver22();
    broken.bandwidthGbps = 0.0;
    EXPECT_EXIT(RfScalingModel::frameCycles(77, broken),
                ::testing::ExitedWithCode(1), "positive bandwidth");
}

// ---- Per-link channel model ---------------------------------------

TEST(RfChannel, GridGeometryAndReferenceLoss)
{
    // 16 nodes on the 20 mm die: a 4x4 grid, 5 mm pitch.
    const RfChannelModel m(16);
    EXPECT_DOUBLE_EQ(m.distanceMm(3, 3), 0.0);
    EXPECT_DOUBLE_EQ(m.distanceMm(0, 1), 5.0);
    EXPECT_DOUBLE_EQ(m.distanceMm(0, 4), 5.0); // one row down
    EXPECT_DOUBLE_EQ(m.distanceMm(2, 9), m.distanceMm(9, 2));
    // Zero distance costs exactly the insertion/reference loss; every
    // mm adds the measured slope on top.
    EXPECT_DOUBLE_EQ(m.pathLossDb(3, 3), m.config().plRefDb);
    EXPECT_DOUBLE_EQ(m.pathLossDb(0, 1),
                     m.config().plRefDb + 5.0 * m.config().plSlopeDbPerMm);
}

TEST(RfChannel, BerGrowsWithDistance)
{
    const RfChannelModel m(16);
    // Node 15 sits at the far corner from node 0; node 1 is adjacent.
    EXPECT_GT(m.snrDb(0, 1), m.snrDb(0, 15));
    EXPECT_LT(m.bitErrorRate(0, 1), m.bitErrorRate(0, 15));
    EXPECT_GT(m.bitErrorRate(0, 15), 0.0);
    EXPECT_LE(m.bitErrorRate(0, 15), 0.5);
}

TEST(RfChannel, DefaultChannelIsEffectivelyIdeal)
{
    // At the default transmit power the in-package link budget leaves
    // tens of dB of margin (the Timoneda picture): the derived
    // broadcast packet-error rate is negligible even for the worst
    // transmitter on a 64-node die.
    const RfChannelModel m(64);
    for (const std::uint32_t tx : {0u, 27u, 63u})
        EXPECT_LT(m.broadcastErrorRate(
                      tx, wisync::wireless::kDataFrameBits),
                  1e-6);
}

TEST(RfChannel, LowTransmitPowerEntersTheLossyRegime)
{
    RfChannelConfig cfg;
    cfg.txPowerDbm = -20.0;
    const RfChannelModel m(16, cfg);
    EXPECT_GT(m.broadcastErrorRate(0, wisync::wireless::kDataFrameBits),
              0.5);
}

TEST(RfChannel, WiderFramesCarryMoreRisk)
{
    RfChannelConfig cfg;
    cfg.txPowerDbm = 5.0;
    const RfChannelModel m(16, cfg);
    const double data =
        m.broadcastErrorRate(0, wisync::wireless::kDataFrameBits);
    const double bulk =
        m.broadcastErrorRate(0, wisync::wireless::kBulkFrameBits);
    EXPECT_GT(data, 0.0);
    EXPECT_GT(bulk, data);
    EXPECT_LE(bulk, 1.0);
}

TEST(RfChannel, LinkOverrideIsDirectional)
{
    RfChannelModel m(16);
    const double reverse = m.bitErrorRate(1, 0);
    m.overridePathLoss(0, 1, 150.0);
    // The blocked path kills the (0 -> 1) link — and with it every
    // broadcast from node 0 (all-or-nothing) — while the reverse
    // direction and other transmitters are untouched.
    EXPECT_NEAR(m.bitErrorRate(0, 1), 0.5, 1e-6);
    EXPECT_DOUBLE_EQ(m.bitErrorRate(1, 0), reverse);
    EXPECT_GT(m.broadcastErrorRate(0, wisync::wireless::kDataFrameBits),
              0.99);
    EXPECT_LT(m.broadcastErrorRate(1, wisync::wireless::kDataFrameBits),
              1e-6);
}

TEST(RfChannelDeathTest, LinkOverrideRejectsOutOfRangeEndpoints)
{
    // An out-of-range endpoint used to index past the attenuation
    // matrix (silent corruption, or a crash far from the cause); it
    // must die loudly at the configuration site instead.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    RfChannelModel m(16);
    EXPECT_EXIT(m.overridePathLoss(16, 0, 150.0),
                ::testing::ExitedWithCode(1), "out of range");
    EXPECT_EXIT(m.overridePathLoss(0, 99, 150.0),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(RfChannel, NonSquareNodeCountsGetTheEnclosingGrid)
{
    // 6 nodes -> a 3x3 grid with the last cells empty; distances stay
    // finite and the matrix covers every real pair.
    const RfChannelModel m(6);
    for (std::uint32_t tx = 0; tx < 6; ++tx)
        for (std::uint32_t rx = 0; rx < 6; ++rx) {
            EXPECT_GE(m.pathLossDb(tx, rx), m.config().plRefDb);
            if (tx != rx)
                EXPECT_GT(m.distanceMm(tx, rx), 0.0);
        }
}

} // namespace
