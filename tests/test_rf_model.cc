/**
 * @file
 * Tests for the RF area/power scaling model against the paper's §2,
 * §7.1 and Table 4 numbers.
 */

#include <gtest/gtest.h>

#include "wireless/rf_model.hh"

namespace {

using wisync::wireless::RfScalingModel;
using wisync::wireless::RfSpec;

TEST(RfModel, Yu65ReferenceMatchesPaper)
{
    const RfSpec ref = RfScalingModel::yu65Reference();
    EXPECT_DOUBLE_EQ(ref.areaMm2, 0.23);
    EXPECT_DOUBLE_EQ(ref.powerMw, 31.2);
    EXPECT_DOUBLE_EQ(ref.bandwidthGbps, 16.0);
    EXPECT_EQ(ref.techNm, 65);
}

TEST(RfModel, ScaledTo22nmMatchesPaperEndpoints)
{
    // §2: "an antenna and transceiver at 22-nm ... 0.1 mm2 at 16 mW".
    const RfSpec scaled =
        RfScalingModel::scale(RfScalingModel::yu65Reference(), 22);
    EXPECT_NEAR(scaled.areaMm2, 0.10, 0.005);
    EXPECT_NEAR(scaled.powerMw, 16.0, 0.5);
    EXPECT_EQ(scaled.techNm, 22);
    EXPECT_DOUBLE_EQ(scaled.bandwidthGbps, 16.0); // held constant
}

TEST(RfModel, AreaScalingIsSublinear)
{
    // Sublinear: shrink saves less area than the linear tech ratio.
    const RfSpec ref = RfScalingModel::yu65Reference();
    const RfSpec scaled = RfScalingModel::scale(ref, 22);
    const double linear = ref.areaMm2 * 22.0 / 65.0;
    EXPECT_GT(scaled.areaMm2, linear);
    EXPECT_LT(scaled.areaMm2, ref.areaMm2);
}

TEST(RfModel, IdentityScaleIsNoop)
{
    const RfSpec ref = RfScalingModel::yu65Reference();
    const RfSpec same = RfScalingModel::scale(ref, 65);
    EXPECT_DOUBLE_EQ(same.areaMm2, ref.areaMm2);
    EXPECT_DOUBLE_EQ(same.powerMw, ref.powerMw);
}

TEST(RfModel, WisyncTransceiverTotals)
{
    // §7.1: transceiver + two antennas = 0.14 mm2 and 18 mW.
    const RfSpec t2a = RfScalingModel::wisyncTransceiver22();
    EXPECT_NEAR(t2a.areaMm2, 0.14, 0.006);
    EXPECT_NEAR(t2a.powerMw, 18.0, 0.5);
}

TEST(RfModel, Table4Percentages)
{
    const auto rows = RfScalingModel::table4();
    ASSERT_EQ(rows.size(), 2u);
    // Xeon Haswell: 0.7% area, 0.4% power.
    EXPECT_EQ(rows[0].name, "Xeon Haswell");
    EXPECT_NEAR(rows[0].areaPct, 0.7, 0.05);
    EXPECT_NEAR(rows[0].powerPct, 0.4, 0.05);
    // Atom Silvermont: 5.6% area, 1.8% power.
    EXPECT_EQ(rows[1].name, "Atom Silvermont");
    EXPECT_NEAR(rows[1].areaPct, 5.6, 0.2);
    EXPECT_NEAR(rows[1].powerPct, 1.8, 0.1);
}

} // namespace
