/**
 * @file
 * Unit tests for the 2D-mesh NoC model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "coro/primitives.hh"
#include "noc/mesh.hh"
#include "sim/engine.hh"

namespace {

using wisync::coro::spawnNow;
using wisync::coro::Task;
using wisync::noc::Mesh;
using wisync::noc::MeshConfig;
using wisync::sim::Cycle;
using wisync::sim::Engine;
using wisync::sim::NodeId;

MeshConfig
cfg64()
{
    MeshConfig c;
    c.numNodes = 64;
    return c;
}

TEST(Mesh, GeometryOf64Nodes)
{
    Engine eng;
    Mesh mesh(eng, cfg64());
    EXPECT_EQ(mesh.width(), 8u);
    EXPECT_EQ(mesh.hops(0, 0), 0u);
    EXPECT_EQ(mesh.hops(0, 7), 7u);   // across the top row
    EXPECT_EQ(mesh.hops(0, 63), 14u); // corner to corner
    EXPECT_EQ(mesh.hops(9, 18), 2u);  // (1,1) -> (2,2)
}

TEST(Mesh, HopsIsSymmetric)
{
    Engine eng;
    Mesh mesh(eng, cfg64());
    for (NodeId a = 0; a < 64; a += 7)
        for (NodeId b = 0; b < 64; b += 5)
            EXPECT_EQ(mesh.hops(a, b), mesh.hops(b, a));
}

TEST(Mesh, UnicastZeroLoadLatency)
{
    Engine eng;
    Mesh mesh(eng, cfg64());
    // 1 flit control message, 14 hops at 4 cycles/hop.
    Cycle done = 0;
    spawnNow(eng, [&]() -> Task<void> {
        co_await mesh.send(0, 63, 64);
        done = eng.now();
    });
    eng.run();
    EXPECT_EQ(done, 14u * 4u);
    EXPECT_EQ(mesh.zeroLoadLatency(0, 63, 64), 14u * 4u);
}

TEST(Mesh, MultiFlitMessagePaysSerializationOnce)
{
    Engine eng;
    Mesh mesh(eng, cfg64());
    // 576-bit line transfer = 5 flits: wormhole adds flits-1 cycles.
    Cycle done = 0;
    spawnNow(eng, [&]() -> Task<void> {
        co_await mesh.send(0, 63, 576);
        done = eng.now();
    });
    eng.run();
    EXPECT_EQ(done, 14u * 4u + 4u);
    EXPECT_EQ(mesh.zeroLoadLatency(0, 63, 576), 14u * 4u + 4u);
}

TEST(Mesh, LocalSendCostsOneCycle)
{
    Engine eng;
    Mesh mesh(eng, cfg64());
    Cycle done = 0;
    spawnNow(eng, [&]() -> Task<void> {
        co_await mesh.send(5, 5, 576);
        done = eng.now();
    });
    eng.run();
    EXPECT_EQ(done, 1u);
}

TEST(Mesh, SharedLinkSerializesMessages)
{
    Engine eng;
    Mesh mesh(eng, cfg64());
    // Two single-flit messages from node 0 both crossing link 0->1.
    std::vector<Cycle> done;
    auto sender = [&](NodeId dst) -> Task<void> {
        co_await mesh.send(0, dst, 64);
        done.push_back(eng.now());
    };
    spawnNow(eng, sender, NodeId{1});
    spawnNow(eng, sender, NodeId{2});
    eng.run();
    ASSERT_EQ(done.size(), 2u);
    // First: 4 cycles. Second waits 1 cycle (flit time) on link 0->1:
    // starts hop at 1, arrives 1+4+4.
    EXPECT_EQ(done[0], 4u);
    EXPECT_EQ(done[1], 9u);
}

TEST(Mesh, DisjointPathsDoNotInterfere)
{
    Engine eng;
    Mesh mesh(eng, cfg64());
    std::vector<Cycle> done;
    auto sender = [&](NodeId src, NodeId dst) -> Task<void> {
        co_await mesh.send(src, dst, 64);
        done.push_back(eng.now());
    };
    spawnNow(eng, sender, NodeId{0}, NodeId{1});
    spawnNow(eng, sender, NodeId{62}, NodeId{63});
    eng.run();
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0], 4u);
    EXPECT_EQ(done[1], 4u);
}

TEST(Mesh, SerialMulticastDeliversToAll)
{
    Engine eng;
    Mesh mesh(eng, cfg64());
    Cycle done = 0;
    spawnNow(eng, [&]() -> Task<void> {
        std::vector<NodeId> dsts{1, 8, 9, 63};
        co_await mesh.multicast(0, dsts, 64);
        done = eng.now();
    });
    eng.run();
    // Bounded below by the farthest destination (14 hops * 4 = 56)
    // plus injection serialization.
    EXPECT_GE(done, 56u);
    EXPECT_EQ(mesh.stats().messages.value(), 4u);
}

TEST(Mesh, TreeMulticastUsesOneMessage)
{
    Engine eng;
    auto cfg = cfg64();
    cfg.treeMulticast = true;
    Mesh mesh(eng, cfg);
    Cycle done = 0;
    spawnNow(eng, [&]() -> Task<void> {
        std::vector<NodeId> dsts{1, 8, 9, 63};
        co_await mesh.multicast(0, dsts, 64);
        done = eng.now();
    });
    eng.run();
    // Single logical message; latency = farthest leaf at zero load.
    EXPECT_EQ(done, 56u);
    EXPECT_EQ(mesh.stats().messages.value(), 1u);
}

TEST(Mesh, TreeMulticastFasterThanSerialForBigFanout)
{
    auto run = [](bool tree) {
        Engine eng;
        auto cfg = cfg64();
        cfg.treeMulticast = tree;
        Mesh mesh(eng, cfg);
        std::vector<NodeId> all;
        for (NodeId n = 1; n < 64; ++n)
            all.push_back(n);
        Cycle done = 0;
        spawnNow(eng, [&]() -> Task<void> {
            co_await mesh.multicast(0, all, 64);
            done = eng.now();
        });
        eng.run();
        return done;
    };
    const Cycle serial = run(false);
    const Cycle tree = run(true);
    EXPECT_LT(tree, serial);
    EXPECT_EQ(tree, 56u); // zero-load to the far corner
}

TEST(Mesh, MulticastToSelfOnly)
{
    Engine eng;
    Mesh mesh(eng, cfg64());
    Cycle done = 999;
    spawnNow(eng, [&]() -> Task<void> {
        std::vector<NodeId> dsts{3};
        co_await mesh.multicast(3, dsts, 64);
        done = eng.now();
    });
    eng.run();
    // One injection cycle + one local port cycle.
    EXPECT_LE(done, 2u);
}

TEST(Mesh, NonSquareNodeCountWorks)
{
    Engine eng;
    MeshConfig cfg;
    cfg.numNodes = 128; // 12x12 grid, last rows partially used
    Mesh mesh(eng, cfg);
    EXPECT_EQ(mesh.width(), 12u);
    Cycle done = 0;
    spawnNow(eng, [&]() -> Task<void> {
        co_await mesh.send(0, 127, 64);
        done = eng.now();
    });
    eng.run();
    EXPECT_EQ(done, static_cast<Cycle>(mesh.hops(0, 127)) * 4);
}

TEST(Mesh, StatsAccumulate)
{
    Engine eng;
    Mesh mesh(eng, cfg64());
    spawnNow(eng, [&]() -> Task<void> {
        co_await mesh.send(0, 1, 64);
        co_await mesh.send(0, 1, 576);
    });
    eng.run();
    EXPECT_EQ(mesh.stats().messages.value(), 2u);
    EXPECT_EQ(mesh.stats().flits.value(), 1u + 5u);
    EXPECT_GT(mesh.stats().latency.mean(), 0.0);
}

} // namespace
