/**
 * @file
 * Cross-scheduler equivalence: replays randomized event scripts against
 * a reference (when, seq) binary-heap scheduler and requires the
 * production three-tier engine to produce a bit-identical execution
 * trace — same event order, same cycles, same final time.
 *
 * The script generator is deliberately adversarial about tier
 * boundaries: zero delays, level-0 block crossings (deltas around 256),
 * level-1/level-2 window crossings (around 2^16), overflow-heap deltas
 * (>= 2^24), nested scheduling from inside callbacks, and run(limit)
 * parking between segments.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <random>
#include <utility>
#include <vector>

#include "sim/engine.hh"

namespace {

using wisync::sim::Cycle;
using wisync::sim::Engine;
using wisync::sim::kCycleMax;

/**
 * Reference scheduler: the textbook single min-heap ordered by
 * (cycle, insertion seq), with run(limit)/park semantics matching the
 * Engine contract. Deliberately simple enough to be obviously correct.
 */
class RefEngine
{
  public:
    Cycle now() const { return now_; }

    void
    schedule(Cycle when, std::function<void()> fn)
    {
        heap_.push_back(Ev{when, nextSeq_++, std::move(fn)});
        std::push_heap(heap_.begin(), heap_.end(), Later{});
    }

    void scheduleIn(Cycle delta, std::function<void()> fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    bool
    run(Cycle limit = kCycleMax)
    {
        while (!heap_.empty()) {
            if (heap_.front().when > limit) {
                if (limit > now_)
                    now_ = limit;
                return false;
            }
            std::pop_heap(heap_.begin(), heap_.end(), Later{});
            Ev ev = std::move(heap_.back());
            heap_.pop_back();
            now_ = ev.when;
            ev.fn();
        }
        return true;
    }

    std::size_t pendingEvents() const { return heap_.size(); }

  private:
    struct Ev
    {
        Cycle when;
        std::uint64_t seq;
        std::function<void()> fn;
    };

    struct Later
    {
        bool
        operator()(const Ev &a, const Ev &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::vector<Ev> heap_;
    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

/** Delta distribution straddling every tier boundary. */
Cycle
pickDelta(std::mt19937 &rng)
{
    switch (rng() % 12) {
      case 0:
        return 0;
      case 1:
      case 2:
        return rng() % 4;
      case 3:
      case 4:
        return rng() % 256; // level 0
      case 5:
        return 250 + rng() % 12; // block boundary
      case 6:
        return rng() % 65536; // level 1
      case 7:
        return 65530 + rng() % 12; // level-1/2 boundary
      case 8:
        return rng() % (Cycle{1} << 20); // level 2
      case 9:
        return (Cycle{1} << 24) - 6 + rng() % 12; // wheel/heap boundary
      case 10:
        return (Cycle{1} << 24) + rng() % 1000; // overflow heap
      default:
        return rng() % 2048;
    }
}

/**
 * Drives one engine through the scripted workload. Every callback logs
 * (event id, cycle) and may schedule children; because both engines see
 * identical ids and rng streams *as long as execution order matches*,
 * any ordering divergence snowballs into a trace mismatch.
 */
template <typename Eng>
struct Driver
{
    Eng eng;
    std::mt19937 rng;
    std::vector<std::pair<int, Cycle>> trace;
    int nextId = 0;
    int budget; // bounds total event count

    explicit Driver(std::uint32_t seed, int budget_)
        : rng(seed), budget(budget_)
    {}

    void
    spawn(Cycle delta)
    {
        const int id = nextId++;
        --budget;
        eng.scheduleIn(delta, [this, id] { fire(id); });
    }

    void
    fire(int id)
    {
        trace.emplace_back(id, eng.now());
        const unsigned children = rng() % 3;
        for (unsigned c = 0; c < children && budget > 0; ++c)
            spawn(pickDelta(rng));
    }
};

template <typename Eng>
std::pair<std::vector<std::pair<int, Cycle>>, Cycle>
replay(std::uint32_t seed)
{
    Driver<Eng> d(seed, 600);
    std::mt19937 outer(seed ^ 0x9e3779b9u);

    // Phase 1: a batch of roots, drained completely.
    for (int i = 0; i < 40; ++i)
        d.spawn(pickDelta(outer));
    d.eng.run();

    // Phase 2: interleave run(limit) segments with outside insertions,
    // exercising parking inside blocks and across window boundaries.
    Cycle limit = d.eng.now();
    for (int seg = 0; seg < 25; ++seg) {
        for (int i = 0; i < 4; ++i)
            d.spawn(pickDelta(outer));
        limit += outer() % 70'000;
        d.eng.run(limit);
    }
    d.eng.run();
    EXPECT_EQ(d.eng.pendingEvents(), 0u);
    return {std::move(d.trace), d.eng.now()};
}

class EngineDeterminism : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(EngineDeterminism, MatchesReferenceHeapScheduler)
{
    const auto [refTrace, refNow] = replay<RefEngine>(GetParam());
    const auto [trace, now] = replay<Engine>(GetParam());
    ASSERT_EQ(trace.size(), refTrace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        ASSERT_EQ(trace[i].first, refTrace[i].first)
            << "event order diverged at position " << i << " (cycle "
            << trace[i].second << " vs " << refTrace[i].second << ")";
        ASSERT_EQ(trace[i].second, refTrace[i].second)
            << "cycle diverged for event " << trace[i].first;
    }
    EXPECT_EQ(now, refNow);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDeterminism,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           0xdeadbeefu));

} // namespace
