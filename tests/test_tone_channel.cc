/**
 * @file
 * Unit tests for the Tone channel and AllocB/ActiveB tables.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hh"
#include "wireless/tone_channel.hh"

namespace {

using wisync::sim::BmAddr;
using wisync::sim::Cycle;
using wisync::sim::Engine;
using wisync::sim::NodeId;
using wisync::wireless::ToneChannel;

std::vector<bool>
armedAll(std::uint32_t nodes)
{
    return std::vector<bool>(nodes, true);
}

TEST(ToneChannel, AllocatesUntilCapacity)
{
    Engine eng;
    ToneChannel tone(eng, 4, 2);
    EXPECT_TRUE(tone.alloc(0, armedAll(4)));
    EXPECT_TRUE(tone.alloc(8, armedAll(4)));
    EXPECT_FALSE(tone.alloc(16, armedAll(4))); // AllocB overflow
    EXPECT_EQ(tone.allocatedCount(), 2u);
    tone.dealloc(0);
    EXPECT_TRUE(tone.alloc(16, armedAll(4)));
}

TEST(ToneChannel, AnnouncementNeededOnlyWhenInactive)
{
    Engine eng;
    ToneChannel tone(eng, 4);
    tone.alloc(0, armedAll(4));
    EXPECT_TRUE(tone.needsAnnouncement(0));
    tone.activate(0);
    EXPECT_FALSE(tone.needsAnnouncement(0));
}

TEST(ToneChannel, ReleasesWhenAllArmedArrive)
{
    Engine eng;
    ToneChannel tone(eng, 4);
    std::vector<BmAddr> released;
    tone.setReleaseHandler([&](BmAddr a) { released.push_back(a); });
    tone.alloc(0, armedAll(4));

    tone.activate(0);
    tone.arrive(0, 0);
    tone.arrive(0, 1);
    tone.arrive(0, 2);
    eng.run(100);
    EXPECT_TRUE(released.empty()) << "released before last arrival";
    tone.arrive(0, 3);
    eng.run(200);
    ASSERT_EQ(released.size(), 1u);
    EXPECT_EQ(released[0], 0u);
    EXPECT_FALSE(tone.isActive(0));
}

TEST(ToneChannel, ReleaseWithinOneSlotOfLastArrival)
{
    Engine eng;
    ToneChannel tone(eng, 4);
    Cycle released_at = 0;
    tone.setReleaseHandler([&](BmAddr) { released_at = eng.now(); });
    tone.alloc(0, armedAll(4));
    tone.activate(0);
    for (NodeId n = 0; n < 4; ++n)
        tone.arrive(0, n);
    const Cycle last_arrival = eng.now();
    eng.run(100);
    // Single active barrier: every slot belongs to it.
    EXPECT_LE(released_at - last_arrival, 2u);
}

TEST(ToneChannel, UnarmedNodesDoNotBlockRelease)
{
    Engine eng;
    ToneChannel tone(eng, 4);
    int releases = 0;
    tone.setReleaseHandler([&](BmAddr) { ++releases; });
    std::vector<bool> armed{true, false, true, false};
    tone.alloc(0, armed);
    tone.activate(0);
    tone.arrive(0, 0);
    tone.arrive(0, 2);
    eng.run(100);
    EXPECT_EQ(releases, 1);
}

TEST(ToneChannel, ArrivalBeforeActivationIsPending)
{
    // Cores that execute tone_st while the announcement is in flight
    // must count as arrived once the barrier activates.
    Engine eng;
    ToneChannel tone(eng, 2);
    int releases = 0;
    tone.setReleaseHandler([&](BmAddr) { ++releases; });
    tone.alloc(0, armedAll(2));
    tone.arrive(0, 0); // pre-activation arrival
    tone.arrive(0, 1); // pre-activation arrival
    tone.activate(0);
    eng.run(100);
    EXPECT_EQ(releases, 1);
}

TEST(ToneChannel, RedundantActivationIsIdempotent)
{
    Engine eng;
    ToneChannel tone(eng, 2);
    int releases = 0;
    tone.setReleaseHandler([&](BmAddr) { ++releases; });
    tone.alloc(0, armedAll(2));
    tone.activate(0);
    tone.activate(0); // several nodes thought they were first
    tone.arrive(0, 0);
    tone.arrive(0, 1);
    eng.run(100);
    EXPECT_EQ(releases, 1);
    EXPECT_EQ(tone.stats().activations.value(), 1u);
}

TEST(ToneChannel, BarrierIsReusableAfterRelease)
{
    Engine eng;
    ToneChannel tone(eng, 2);
    int releases = 0;
    tone.setReleaseHandler([&](BmAddr) { ++releases; });
    tone.alloc(0, armedAll(2));
    for (int iter = 0; iter < 3; ++iter) {
        tone.activate(0);
        tone.arrive(0, 0);
        tone.arrive(0, 1);
        eng.run(eng.now() + 100);
    }
    EXPECT_EQ(releases, 3);
}

TEST(ToneChannel, ConcurrentBarriersShareSlotsRoundRobin)
{
    Engine eng;
    ToneChannel tone(eng, 4);
    std::vector<std::pair<BmAddr, Cycle>> released;
    tone.setReleaseHandler(
        [&](BmAddr a) { released.emplace_back(a, eng.now()); });
    // Barrier A on nodes {0,1}; barrier B on nodes {2,3}.
    tone.alloc(0, std::vector<bool>{true, true, false, false});
    tone.alloc(8, std::vector<bool>{false, false, true, true});
    tone.activate(0);
    tone.activate(8);
    EXPECT_EQ(tone.activeCount(), 2u);
    tone.arrive(0, 0);
    tone.arrive(0, 1);
    tone.arrive(8, 2);
    tone.arrive(8, 3);
    eng.run(100);
    ASSERT_EQ(released.size(), 2u);
    // With 2 active barriers, detection takes at most 2 slots each.
    for (const auto &[addr, at] : released)
        EXPECT_LE(at, 4u) << "addr " << addr;
    EXPECT_EQ(tone.activeCount(), 0u);
}

TEST(ToneChannel, SlowerDetectionWithManyActiveBarriers)
{
    // With k active barriers a barrier owns every k-th slot, so the
    // silence-detection latency grows with k.
    Engine eng;
    ToneChannel tone(eng, 8, 8);
    std::vector<Cycle> released_at;
    tone.setReleaseHandler([&](BmAddr) { released_at.push_back(eng.now()); });
    // 4 single-node barriers keep the channel multiplexed...
    for (std::uint32_t b = 0; b < 4; ++b) {
        std::vector<bool> armed(8, false);
        armed[b] = true;
        tone.alloc(b * 8, armed);
        tone.activate(b * 8);
    }
    // ...but never arrive except barrier 0's node.
    tone.arrive(0, 0);
    eng.run(100);
    ASSERT_EQ(released_at.size(), 1u);
    EXPECT_GE(released_at[0], 1u);
    EXPECT_LE(released_at[0], 5u); // <= #active slots + 1
    EXPECT_EQ(tone.activeCount(), 3u);
}

TEST(ToneChannel, TickerStopsWhenIdle)
{
    Engine eng;
    ToneChannel tone(eng, 2);
    tone.setReleaseHandler([](BmAddr) {});
    tone.alloc(0, armedAll(2));
    tone.activate(0);
    tone.arrive(0, 0);
    tone.arrive(0, 1);
    EXPECT_TRUE(eng.run(10'000));
    // The engine drained: no perpetual per-cycle ticking.
    const Cycle end = eng.now();
    EXPECT_LT(end, 100u);
}

TEST(ToneChannel, ArmedQueryMatchesAllocation)
{
    Engine eng;
    ToneChannel tone(eng, 4);
    std::vector<bool> armed{true, false, true, false};
    tone.alloc(0, armed);
    EXPECT_TRUE(tone.isArmed(0, 0));
    EXPECT_FALSE(tone.isArmed(0, 1));
    EXPECT_TRUE(tone.isArmed(0, 2));
    EXPECT_FALSE(tone.isArmed(0, 3));
}

} // namespace
