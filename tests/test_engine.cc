/**
 * @file
 * Unit tests for the discrete-event engine, including the three-tier
 * scheduler's edge cases: run(limit) parking across wheel-level
 * boundaries, stop() mid-cycle with same-cycle events pending, and the
 * coroutine resume fast path.
 */

#include <gtest/gtest.h>

#include <coroutine>
#include <vector>

#include "sim/engine.hh"

namespace {

using wisync::sim::Cycle;
using wisync::sim::Engine;

TEST(Engine, StartsAtCycleZero)
{
    Engine eng;
    EXPECT_EQ(eng.now(), 0u);
    EXPECT_EQ(eng.pendingEvents(), 0u);
}

TEST(Engine, ExecutesInTimeOrder)
{
    Engine eng;
    std::vector<int> order;
    eng.schedule(30, [&] { order.push_back(3); });
    eng.schedule(10, [&] { order.push_back(1); });
    eng.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eng.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eng.now(), 30u);
}

TEST(Engine, SameCycleEventsRunInInsertionOrder)
{
    Engine eng;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eng.schedule(5, [&order, i] { order.push_back(i); });
    eng.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Engine, EventsCanScheduleMoreEvents)
{
    Engine eng;
    int fired = 0;
    eng.schedule(1, [&] {
        ++fired;
        eng.scheduleIn(4, [&] { ++fired; });
    });
    eng.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eng.now(), 5u);
}

TEST(Engine, RunHonorsCycleLimit)
{
    Engine eng;
    int fired = 0;
    eng.schedule(10, [&] { ++fired; });
    eng.schedule(100, [&] { ++fired; });
    EXPECT_FALSE(eng.run(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eng.now(), 50u);
    // Resume past the limit.
    EXPECT_TRUE(eng.run());
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eng.now(), 100u);
}

TEST(Engine, StopEndsRunEarly)
{
    Engine eng;
    int fired = 0;
    eng.schedule(1, [&] {
        ++fired;
        eng.stop();
    });
    eng.schedule(2, [&] { ++fired; });
    EXPECT_FALSE(eng.run());
    EXPECT_EQ(fired, 1);
    eng.run();
    EXPECT_EQ(fired, 2);
}

TEST(Engine, CountsExecutedEvents)
{
    Engine eng;
    for (int i = 0; i < 100; ++i)
        eng.schedule(static_cast<Cycle>(i), [] {});
    eng.run();
    EXPECT_EQ(eng.eventsExecuted(), 100u);
}

TEST(Engine, ZeroDelaySelfScheduleMakesProgress)
{
    Engine eng;
    int depth = 0;
    std::function<void()> step = [&] {
        if (++depth < 1000)
            eng.scheduleIn(0, [&] { step(); });
    };
    eng.schedule(0, [&] { step(); });
    EXPECT_TRUE(eng.run());
    EXPECT_EQ(depth, 1000);
    EXPECT_EQ(eng.now(), 0u);
}

TEST(Engine, ScheduleAtNowFromInsideCallbackRunsSameCycle)
{
    Engine eng;
    std::vector<int> order;
    eng.schedule(7, [&] {
        order.push_back(1);
        // Absolute-time variant of the zero-delay self-schedule: the
        // new event must run at cycle 7, after events already queued.
        eng.schedule(eng.now(), [&] { order.push_back(3); });
    });
    eng.schedule(7, [&] { order.push_back(2); });
    EXPECT_TRUE(eng.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eng.now(), 7u);
}

TEST(Engine, StopMidCycleKeepsSameCycleEventsPending)
{
    Engine eng;
    std::vector<int> order;
    for (int i = 0; i < 4; ++i) {
        eng.schedule(5, [&order, &eng, i] {
            order.push_back(i);
            if (i == 1)
                eng.stop();
        });
    }
    // Stopped after the second event: two same-cycle events pending.
    EXPECT_FALSE(eng.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(eng.pendingEvents(), 2u);
    EXPECT_EQ(eng.now(), 5u);
    // Resume finishes the cycle in the original insertion order.
    EXPECT_TRUE(eng.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eng.now(), 5u);
}

TEST(Engine, StopFromRingEventKeepsRemainingRingPending)
{
    Engine eng;
    std::vector<int> order;
    eng.schedule(3, [&] {
        order.push_back(0);
        eng.scheduleIn(0, [&] { order.push_back(2); });
        eng.scheduleIn(0, [&] { order.push_back(3); });
        eng.stop();
    });
    eng.schedule(3, [&] { order.push_back(1); });
    EXPECT_FALSE(eng.run());
    EXPECT_EQ(order, (std::vector<int>{0}));
    EXPECT_EQ(eng.pendingEvents(), 3u);
    EXPECT_TRUE(eng.run());
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Engine, RunLimitResumesAcrossCalendarBlocks)
{
    // Events beyond the level-0 block (256 cycles) and beyond the
    // level-1 window (65536 cycles) survive a park-and-resume at
    // limits that land between them.
    Engine eng;
    std::vector<Cycle> fired;
    for (Cycle when : {Cycle{10}, Cycle{300}, Cycle{70'000},
                       Cycle{20'000'000}, (Cycle{1} << 25) + 9})
        eng.schedule(when, [&fired, &eng] { fired.push_back(eng.now()); });

    EXPECT_FALSE(eng.run(100)); // parks mid-block
    EXPECT_EQ(eng.now(), 100u);
    EXPECT_EQ(fired, (std::vector<Cycle>{10}));

    EXPECT_FALSE(eng.run(299)); // parks one cycle before the event
    EXPECT_EQ(eng.now(), 299u);

    EXPECT_FALSE(eng.run(65'000)); // crosses the level-0 horizon
    EXPECT_EQ(fired, (std::vector<Cycle>{10, 300}));

    EXPECT_FALSE(eng.run(1'000'000)); // crosses the level-1 window
    EXPECT_EQ(fired, (std::vector<Cycle>{10, 300, 70'000}));

    EXPECT_TRUE(eng.run()); // drains the level-2 and overflow tiers
    EXPECT_EQ(fired, (std::vector<Cycle>{10, 300, 70'000, 20'000'000,
                                         (Cycle{1} << 25) + 9}));
    EXPECT_EQ(eng.pendingEvents(), 0u);
}

TEST(Engine, ScheduleWhileParkedInsideBlock)
{
    // Park inside a block that still has a pending event, then insert
    // an earlier event from outside; both must fire in time order.
    Engine eng;
    std::vector<Cycle> fired;
    eng.schedule(200, [&] { fired.push_back(eng.now()); });
    EXPECT_FALSE(eng.run(50));
    eng.schedule(60, [&] { fired.push_back(eng.now()); });
    eng.scheduleIn(0, [&] { fired.push_back(eng.now()); }); // at 50
    EXPECT_TRUE(eng.run());
    EXPECT_EQ(fired, (std::vector<Cycle>{50, 60, 200}));
}

TEST(Engine, TierCountersClassifyInsertions)
{
    Engine eng;
    eng.schedule(0, [] {});                    // ready ring
    eng.schedule(3, [] {});                    // calendar level 0
    eng.schedule(1000, [] {});                 // calendar level 1
    eng.schedule(1'000'000, [] {});            // calendar level 2
    eng.schedule(Cycle{1} << 30, [] {});       // overflow heap
    const auto &ts = eng.tierStats();
    EXPECT_EQ(ts.ready, 1u);
    EXPECT_EQ(ts.calendar, 3u);
    EXPECT_EQ(ts.heap, 1u);
    EXPECT_EQ(eng.pendingEvents(), 5u);
    EXPECT_TRUE(eng.run());
    EXPECT_EQ(eng.eventsExecuted(), 5u);
    EXPECT_EQ(eng.pendingEvents(), 0u);
}

TEST(Engine, SameCycleOrderPreservedAcrossTierProvenance)
{
    // Two events for the same cycle, one scheduled from far away (it
    // waits in a coarse tier) and one scheduled close by (level 0):
    // insertion order must still decide the tie.
    Engine eng;
    std::vector<int> order;
    const Cycle target = 70'000;
    eng.schedule(target, [&] { order.push_back(1); }); // coarse resident
    eng.schedule(69'990, [&] {
        // Scheduled at target-10: lands in level 0, later insertion.
        eng.schedule(target, [&] { order.push_back(2); });
    });
    EXPECT_TRUE(eng.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// --- resumeHandle fast path ---------------------------------------------

struct FireAndForget
{
    struct promise_type
    {
        FireAndForget get_return_object() const { return {}; }
        std::suspend_never initial_suspend() const noexcept { return {}; }
        std::suspend_never final_suspend() const noexcept { return {}; }
        void return_void() const {}
        [[noreturn]] void unhandled_exception() const { std::terminate(); }
    };
};

struct ResumeIn
{
    Engine &eng;
    Cycle delta;
    bool await_ready() const noexcept { return false; }
    void
    await_suspend(std::coroutine_handle<> h)
    {
        eng.resumeHandle(delta, h);
    }
    void await_resume() const noexcept {}
};

FireAndForget
hopper(Engine &eng, std::vector<Cycle> &log)
{
    co_await ResumeIn{eng, 5};
    log.push_back(eng.now());
    co_await ResumeIn{eng, 0}; // same-cycle requeue
    log.push_back(eng.now());
    co_await ResumeIn{eng, 300}; // crosses the level-0 block
    log.push_back(eng.now());
}

TEST(Engine, ResumeHandleDrivesCoroutineThroughTiers)
{
    Engine eng;
    std::vector<Cycle> log;
    hopper(eng, log);
    EXPECT_EQ(eng.pendingEvents(), 1u);
    EXPECT_TRUE(eng.run());
    EXPECT_EQ(log, (std::vector<Cycle>{5, 5, 305}));
    EXPECT_EQ(eng.eventsExecuted(), 3u);
}

} // namespace
