/**
 * @file
 * Unit tests for the discrete-event engine.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hh"

namespace {

using wisync::sim::Cycle;
using wisync::sim::Engine;

TEST(Engine, StartsAtCycleZero)
{
    Engine eng;
    EXPECT_EQ(eng.now(), 0u);
    EXPECT_EQ(eng.pendingEvents(), 0u);
}

TEST(Engine, ExecutesInTimeOrder)
{
    Engine eng;
    std::vector<int> order;
    eng.schedule(30, [&] { order.push_back(3); });
    eng.schedule(10, [&] { order.push_back(1); });
    eng.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eng.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eng.now(), 30u);
}

TEST(Engine, SameCycleEventsRunInInsertionOrder)
{
    Engine eng;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eng.schedule(5, [&order, i] { order.push_back(i); });
    eng.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Engine, EventsCanScheduleMoreEvents)
{
    Engine eng;
    int fired = 0;
    eng.schedule(1, [&] {
        ++fired;
        eng.scheduleIn(4, [&] { ++fired; });
    });
    eng.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eng.now(), 5u);
}

TEST(Engine, RunHonorsCycleLimit)
{
    Engine eng;
    int fired = 0;
    eng.schedule(10, [&] { ++fired; });
    eng.schedule(100, [&] { ++fired; });
    EXPECT_FALSE(eng.run(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eng.now(), 50u);
    // Resume past the limit.
    EXPECT_TRUE(eng.run());
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eng.now(), 100u);
}

TEST(Engine, StopEndsRunEarly)
{
    Engine eng;
    int fired = 0;
    eng.schedule(1, [&] {
        ++fired;
        eng.stop();
    });
    eng.schedule(2, [&] { ++fired; });
    EXPECT_FALSE(eng.run());
    EXPECT_EQ(fired, 1);
    eng.run();
    EXPECT_EQ(fired, 2);
}

TEST(Engine, CountsExecutedEvents)
{
    Engine eng;
    for (int i = 0; i < 100; ++i)
        eng.schedule(static_cast<Cycle>(i), [] {});
    eng.run();
    EXPECT_EQ(eng.eventsExecuted(), 100u);
}

TEST(Engine, ZeroDelaySelfScheduleMakesProgress)
{
    Engine eng;
    int depth = 0;
    std::function<void()> step = [&] {
        if (++depth < 1000)
            eng.scheduleIn(0, [&] { step(); });
    };
    eng.schedule(0, [&] { step(); });
    EXPECT_TRUE(eng.run());
    EXPECT_EQ(depth, 1000);
    EXPECT_EQ(eng.now(), 0u);
}

} // namespace
