/**
 * @file
 * Golden determinism tests for harness::ParallelSweep: every figure
 * grid must merge to the same KernelResult vector at 1, 2 and N host
 * threads — parallelism may only change wall time, never a single
 * simulated bit. Includes a forced straggler inversion (completion
 * order made maximally different from grid order) and the driver's
 * edge cases (empty grid, more workers than points, index order).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/machine.hh"
#include "harness/parallel_sweep.hh"
#include "workloads/apps.hh"
#include "workloads/cas_kernels.hh"
#include "workloads/livermore.hh"
#include "workloads/tight_loop.hh"

namespace {

using wisync::core::ConfigKind;
using wisync::core::Machine;
using wisync::core::MachineConfig;
using wisync::harness::ParallelSweep;
using wisync::workloads::KernelResult;

/**
 * Every observable field of a KernelResult, as integers (the double
 * via its bit pattern), so vectors can be compared exactly — the
 * "byte-identical" contract without reading struct padding.
 */
std::vector<std::uint64_t>
fingerprint(const std::vector<KernelResult> &results)
{
    std::vector<std::uint64_t> out;
    out.reserve(results.size() * 9);
    for (const auto &r : results) {
        out.push_back(r.cycles);
        out.push_back(r.completed ? 1 : 0);
        out.push_back(r.operations);
        out.push_back(std::bit_cast<std::uint64_t>(
            r.dataChannelUtilisation));
        out.push_back(r.collisions);
        out.push_back(r.macBackoffCycles);
        out.push_back(r.macTokenWaits);
        out.push_back(r.macTokenRotations);
        out.push_back(r.macModeSwitches);
    }
    return out;
}

void
expectIdenticalAcrossThreadCounts(ParallelSweep &sweep)
{
    const auto serial = fingerprint(sweep.run(1));
    EXPECT_EQ(serial, fingerprint(sweep.run(2)));
    EXPECT_EQ(serial, fingerprint(sweep.run(4)));
    const unsigned n = ParallelSweep::threads();
    if (n != 1 && n != 2 && n != 4) {
        EXPECT_EQ(serial, fingerprint(sweep.run(n)));
    }
}

/** The Fig. 7 grid: every ConfigKind over two core counts. */
TEST(ParallelSweep, TightLoopGridDeterministicAcrossThreads)
{
    wisync::workloads::TightLoopParams params;
    params.iterations = 3;
    ParallelSweep sweep;
    for (const auto cores : {8u, 16u}) {
        for (const auto kind :
             {ConfigKind::Baseline, ConfigKind::BaselinePlus,
              ConfigKind::WiSyncNoT, ConfigKind::WiSync}) {
            sweep.add(MachineConfig::make(kind, cores),
                      [params](Machine &m) {
                          return wisync::workloads::runTightLoopOn(m,
                                                                   params);
                      });
        }
    }
    expectIdenticalAcrossThreadCounts(sweep);
}

/** The Fig. 8 grid: Livermore loops over vector lengths. */
TEST(ParallelSweep, LivermoreGridDeterministicAcrossThreads)
{
    using wisync::workloads::LivermoreLoop;
    ParallelSweep sweep;
    for (const auto loop : {LivermoreLoop::Iccg, LivermoreLoop::InnerProduct,
                            LivermoreLoop::LinearRecurrence}) {
        for (const auto n : {16u, 64u}) {
            wisync::workloads::LivermoreParams params;
            params.n = n;
            params.passes = 1;
            for (const auto kind :
                 {ConfigKind::Baseline, ConfigKind::WiSync}) {
                sweep.add(MachineConfig::make(kind, 8),
                          [loop, params](Machine &m) {
                              return wisync::workloads::runLivermoreOn(
                                  loop, m, params);
                          });
            }
        }
    }
    expectIdenticalAcrossThreadCounts(sweep);
}

/** The Fig. 9 grid: CAS kernels over critical-section sizes. */
TEST(ParallelSweep, CasGridDeterministicAcrossThreads)
{
    using wisync::workloads::CasKernel;
    ParallelSweep sweep;
    for (const auto kernel :
         {CasKernel::Fifo, CasKernel::Lifo, CasKernel::Add}) {
        for (const auto cs : {64u, 1024u}) {
            wisync::workloads::CasKernelParams params;
            params.criticalSectionInstr = cs;
            params.duration = 50'000;
            for (const auto kind :
                 {ConfigKind::Baseline, ConfigKind::WiSync}) {
                sweep.add(MachineConfig::make(kind, 8),
                          [kernel, params](Machine &m) {
                              return wisync::workloads::runCasKernelOn(
                                  kernel, m, params);
                          });
            }
        }
    }
    expectIdenticalAcrossThreadCounts(sweep);
}

/** A Fig. 10/11-shaped slice: apps across kinds and variants. */
TEST(ParallelSweep, AppGridDeterministicAcrossThreads)
{
    using wisync::core::Variant;
    ParallelSweep sweep;
    for (const auto *name : {"streamcluster", "fft"}) {
        const auto &app = wisync::workloads::appByName(name);
        for (const auto variant : {Variant::Default, Variant::SlowNet}) {
            for (const auto kind :
                 {ConfigKind::Baseline, ConfigKind::BaselinePlus,
                  ConfigKind::WiSync}) {
                sweep.add(MachineConfig::make(kind, 8, variant),
                          [&app](Machine &m) {
                              return wisync::workloads::runAppOn(app, m);
                          });
            }
        }
    }
    expectIdenticalAcrossThreadCounts(sweep);
}

/**
 * Straggler inversion: the first grid point is forced (by a host-side
 * sleep) to *complete* last, while later points finish immediately.
 * The merged vector must still come back in grid order with every
 * simulated value matching the serial run — completion order is an
 * implementation detail the merge must erase.
 */
TEST(ParallelSweep, StragglerInversionPreservesGridOrder)
{
    wisync::workloads::TightLoopParams params;
    params.iterations = 2;

    auto declare = [&](bool straggle,
                       std::shared_ptr<std::vector<int>> completion_order) {
        ParallelSweep sweep;
        auto order_mutex = std::make_shared<std::mutex>();
        for (int p = 0; p < 6; ++p) {
            const auto kind =
                p % 2 == 0 ? ConfigKind::Baseline : ConfigKind::WiSync;
            sweep.add(
                MachineConfig::make(kind, 4 + 4 * (p % 3)),
                [straggle, p, params, completion_order,
                 order_mutex](Machine &m) {
                    if (straggle && p == 0)
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(120));
                    auto r = wisync::workloads::runTightLoopOn(m, params);
                    if (completion_order != nullptr) {
                        std::lock_guard<std::mutex> g(*order_mutex);
                        completion_order->push_back(p);
                    }
                    return r;
                });
        }
        return sweep;
    };

    auto reference_sweep = declare(false, nullptr);
    const auto reference = fingerprint(reference_sweep.run(1));

    auto completion_order = std::make_shared<std::vector<int>>();
    auto straggler_sweep = declare(true, completion_order);
    const auto parallel = fingerprint(straggler_sweep.run(3));

    EXPECT_EQ(reference, parallel);
    ASSERT_EQ(completion_order->size(), 6u);
    // With point 0 sleeping 120 ms and every other point millisecond-
    // scale, point 0 must not have completed first; on a multi-core
    // host it completes last.
    EXPECT_NE(completion_order->front(), 0);
}

TEST(ParallelSweep, EmptyGridAndExcessWorkers)
{
    ParallelSweep empty;
    EXPECT_TRUE(empty.run(4).empty());

    wisync::workloads::TightLoopParams params;
    params.iterations = 1;
    ParallelSweep one;
    one.add(MachineConfig::make(ConfigKind::WiSync, 4),
            [params](Machine &m) {
                return wisync::workloads::runTightLoopOn(m, params);
            });
    // More workers than points: clamped, still exactly one result.
    const auto a = one.run(8);
    const auto b = one.run(1);
    ASSERT_EQ(a.size(), 1u);
    EXPECT_EQ(fingerprint(a), fingerprint(b));
}

/**
 * Streaming contract: the onPointComplete observer sees every point
 * exactly once, with the same result the merged vector ends up
 * holding, on both the serial path and multi-worker runs — and its
 * presence must not perturb the merged results.
 */
TEST(ParallelSweep, StreamsEachPointExactlyOnce)
{
    wisync::workloads::TightLoopParams params;
    params.iterations = 2;
    auto declare = [&] {
        ParallelSweep sweep;
        for (const auto kind :
             {ConfigKind::Baseline, ConfigKind::WiSyncNoT,
              ConfigKind::WiSync}) {
            for (const std::uint32_t cores : {4u, 8u})
                sweep.add(MachineConfig::make(kind, cores),
                          [params](Machine &m) {
                              return wisync::workloads::runTightLoopOn(
                                  m, params);
                          });
        }
        return sweep;
    };

    auto plain = declare();
    const auto reference = plain.run(1);

    for (const unsigned threads : {1u, 3u}) {
        auto sweep = declare();
        std::mutex mutex;
        std::vector<int> seen(reference.size(), 0);
        std::vector<KernelResult> streamed(reference.size());
        sweep.onPointComplete(
            [&](std::size_t index, const KernelResult &r) {
                std::lock_guard<std::mutex> g(mutex);
                ASSERT_LT(index, seen.size());
                ++seen[index];
                streamed[index] = r;
            });
        const auto merged = sweep.run(threads);
        EXPECT_EQ(fingerprint(merged), fingerprint(reference))
            << "threads=" << threads;
        EXPECT_EQ(fingerprint(streamed), fingerprint(merged))
            << "threads=" << threads;
        for (std::size_t i = 0; i < seen.size(); ++i)
            EXPECT_EQ(seen[i], 1) << "point " << i << " threads "
                                  << threads;
    }
}

/**
 * The idle path: with far more workers than distinct queue blocks,
 * most workers find nothing (or run dry early) and must park on the
 * drain condition variable, then exit cleanly when the last point
 * lands. A straggler keeps one worker busy while the others idle.
 */
TEST(ParallelSweep, IdleWorkersParkUntilGridDrains)
{
    wisync::workloads::TightLoopParams quick;
    quick.iterations = 1;
    wisync::workloads::TightLoopParams slow;
    slow.iterations = 30;

    ParallelSweep sweep;
    // Point 0 is the straggler; the rest are tiny, so workers 1..5
    // drain their queues long before worker 0 finishes and take the
    // cv wait.
    sweep.add(MachineConfig::make(ConfigKind::WiSync, 16),
              [slow](Machine &m) {
                  return wisync::workloads::runTightLoopOn(m, slow);
              });
    for (int i = 0; i < 5; ++i)
        sweep.add(MachineConfig::make(ConfigKind::Baseline, 4),
                  [quick](Machine &m) {
                      return wisync::workloads::runTightLoopOn(m, quick);
                  });
    const auto parallel = sweep.run(6);
    const auto serial = sweep.run(1);
    EXPECT_EQ(fingerprint(parallel), fingerprint(serial));
}

TEST(ParallelSweep, AddReturnsDenseIndices)
{
    wisync::workloads::TightLoopParams params;
    params.iterations = 1;
    ParallelSweep sweep;
    for (std::size_t i = 0; i < 5; ++i) {
        const auto idx =
            sweep.add(MachineConfig::make(ConfigKind::Baseline, 4),
                      [params](Machine &m) {
                          return wisync::workloads::runTightLoopOn(m,
                                                                   params);
                      });
        EXPECT_EQ(idx, i);
    }
    EXPECT_EQ(sweep.size(), 5u);
}

} // namespace
