/**
 * @file
 * Multiprogramming on one WiSync chip (paper §3.1, §4.4): two
 * programs share the Broadcast Memory, each entry is PID-tagged, and
 * a stray access from the wrong program raises a protection fault
 * instead of leaking data.
 *
 * Build & run:
 *   ./build/examples/multiprogramming
 */

#include <cstdio>
#include <vector>

#include "bm/bm_system.hh"
#include "core/machine.hh"
#include "sync/wisync_sync.hh"

using namespace wisync;

namespace {

/** Program A: cores 0-3 run a reduction on its own BM word. */
coro::Task<void>
programA(core::ThreadCtx &ctx, sim::BmAddr cell)
{
    for (int i = 0; i < 10; ++i) {
        co_await ctx.compute(200);
        co_await ctx.bmFetchAdd(cell, 1);
    }
}

/** Program B: cores 4-7 run a flag-passing ring on its own words. */
coro::Task<void>
programB(core::ThreadCtx &ctx, sim::BmAddr token, std::uint32_t slot,
         std::uint32_t ring)
{
    for (std::uint64_t round = 0; round < 5; ++round) {
        const std::uint64_t my_turn = round * ring + slot;
        co_await ctx.bmSpinUntil(token, [my_turn](std::uint64_t v) {
            return v == my_turn;
        });
        co_await ctx.bmStore(token, my_turn + 1);
    }
}

/** A buggy thread of program B that touches program A's memory. */
coro::Task<void>
strayAccess(core::ThreadCtx &ctx, sim::BmAddr foreign, bool *faulted)
{
    try {
        co_await ctx.bmLoad(foreign);
    } catch (const bm::ProtectionFault &f) {
        *faulted = true;
        std::printf("protection fault: PID %u touched BM word %u "
                    "(owned by another program)\n",
                    f.pid, f.addr);
    }
}

} // namespace

int
main()
{
    core::Machine machine(
        core::MachineConfig::make(core::ConfigKind::WiSync, 8));
    constexpr sim::Pid kPidA = 1, kPidB = 2;

    // OS-style allocation: tag each program's chunk of the shared
    // physical BM page with its PID (§4.4's chunk-level protection).
    const sim::BmAddr cell_a = sync::setupBmWords(machine, 1, kPidA);
    const sim::BmAddr token_b = sync::setupBmWords(machine, 1, kPidB);

    for (sim::NodeId n = 0; n < 4; ++n) {
        machine.spawnThread(
            n,
            [&](core::ThreadCtx &ctx) { return programA(ctx, cell_a); },
            kPidA);
    }
    for (sim::NodeId n = 4; n < 8; ++n) {
        const std::uint32_t slot = n - 4;
        machine.spawnThread(
            n,
            [&, slot](core::ThreadCtx &ctx) {
                return programB(ctx, token_b, slot, 4);
            },
            kPidB);
    }
    bool faulted = false;
    machine.spawnThread(
        4,
        [&](core::ThreadCtx &ctx) {
            return strayAccess(ctx, cell_a, &faulted);
        },
        kPidB);

    machine.run();

    std::printf("program A total: %llu (expected 40)\n",
                static_cast<unsigned long long>(
                    machine.bm()->storeArray().read(0, cell_a)));
    std::printf("program B token: %llu (expected 20)\n",
                static_cast<unsigned long long>(
                    machine.bm()->storeArray().read(0, token_b)));
    std::printf("stray access faulted: %s\n", faulted ? "yes" : "no");
    std::printf("simulated cycles: %llu\n",
                static_cast<unsigned long long>(machine.engine().now()));
    return faulted ? 0 : 1;
}
