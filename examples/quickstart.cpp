/**
 * @file
 * Quickstart: build a 16-core WiSync chip, run a fetch&add reduction
 * over the Broadcast Memory, and print what happened.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/machine.hh"
#include "sync/factory.hh"

using namespace wisync;

namespace {

/** Each thread adds its contribution to a shared BM reduction cell. */
coro::Task<void>
worker(core::ThreadCtx &ctx, sync::Reducer *sum, sync::Barrier *done)
{
    // Some private work first (1000 instructions on the 2-issue core).
    co_await ctx.compute(1000);
    // One wireless fetch&add updates every core's replica in ~7 cycles.
    co_await sum->add(ctx, ctx.tid() + 1);
    co_await done->wait(ctx);
    // After the barrier every thread can read the total locally.
    const std::uint64_t total = co_await sum->read(ctx);
    if (ctx.tid() == 0)
        std::printf("thread 0 sees total = %llu\n",
                    static_cast<unsigned long long>(total));
}

} // namespace

int
main()
{
    // A 16-core WiSync chip with the paper's Table 1 parameters.
    core::Machine machine(
        core::MachineConfig::make(core::ConfigKind::WiSync, 16));

    // The factory picks the configuration's primitives: on WiSync the
    // reducer is a BM fetch&add cell and the barrier uses the Tone
    // channel.
    sync::SyncFactory factory(machine);
    auto sum = factory.makeReducer();
    std::vector<sim::NodeId> nodes;
    for (sim::NodeId n = 0; n < 16; ++n)
        nodes.push_back(n);
    auto barrier = factory.makeBarrier(nodes);

    for (sim::NodeId n = 0; n < 16; ++n) {
        machine.spawnThread(n, [&](core::ThreadCtx &ctx) {
            return worker(ctx, sum.get(), barrier.get());
        });
    }

    machine.run();

    std::printf("simulated cycles: %llu\n",
                static_cast<unsigned long long>(machine.engine().now()));
    std::printf("wireless messages: %llu, collisions: %llu\n",
                static_cast<unsigned long long>(
                    machine.bm()->dataChannel().stats().messages.value()),
                static_cast<unsigned long long>(
                    machine.bm()->dataChannel().stats().collisions.value()));
    // Expected total: 1 + 2 + ... + 16 = 136.
    return 0;
}
