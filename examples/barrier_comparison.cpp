/**
 * @file
 * Barrier shoot-out: the same phase loop on all four Table 2
 * configurations, reporting cycles per barrier. This is the paper's
 * headline effect in one screen of code.
 *
 * Build & run:
 *   ./build/examples/barrier_comparison
 */

#include <cstdio>
#include <vector>

#include "core/machine.hh"
#include "sync/factory.hh"

using namespace wisync;

namespace {

constexpr std::uint32_t kCores = 64;
constexpr int kPhases = 25;

coro::Task<void>
phaseLoop(core::ThreadCtx &ctx, sync::Barrier *barrier)
{
    for (int p = 0; p < kPhases; ++p) {
        co_await ctx.compute(100); // tiny phase: barrier dominates
        co_await barrier->wait(ctx);
    }
}

sim::Cycle
run(core::ConfigKind kind)
{
    core::Machine machine(core::MachineConfig::make(kind, kCores));
    sync::SyncFactory factory(machine);
    std::vector<sim::NodeId> nodes;
    for (sim::NodeId n = 0; n < kCores; ++n)
        nodes.push_back(n);
    auto barrier = factory.makeBarrier(nodes);
    for (sim::NodeId n = 0; n < kCores; ++n) {
        machine.spawnThread(n, [&](core::ThreadCtx &ctx) {
            return phaseLoop(ctx, barrier.get());
        });
    }
    machine.run();
    return machine.engine().now();
}

} // namespace

int
main()
{
    struct Row
    {
        const char *name;
        core::ConfigKind kind;
        const char *impl;
    };
    const Row rows[] = {
        {"Baseline", core::ConfigKind::Baseline,
         "centralized (CAS count + release flag)"},
        {"Baseline+", core::ConfigKind::BaselinePlus,
         "tournament (arrival + wakeup trees)"},
        {"WiSyncNoT", core::ConfigKind::WiSyncNoT,
         "BM fetch&inc over the Data channel"},
        {"WiSync", core::ConfigKind::WiSync,
         "hardware Tone-channel barrier"},
    };

    std::printf("%u threads, %d barriers, ~50-cycle phases\n\n", kCores,
                kPhases);
    std::printf("%-10s  %12s  %s\n", "Config", "cycles/barrier",
                "implementation");
    double baseline = 0;
    for (const auto &row : rows) {
        const auto cycles = run(row.kind);
        const double per =
            static_cast<double>(cycles) / static_cast<double>(kPhases);
        if (row.kind == core::ConfigKind::Baseline)
            baseline = per;
        std::printf("%-10s  %12.0f  %s (%.1fx)\n", row.name, per,
                    row.impl, baseline / per);
    }
    return 0;
}
