/**
 * Sweep service in ~60 lines: parse a JSON batch request, answer it
 * through the deduping, caching SweepService, and show why the
 * determinism contract makes the cache exact — a warm batch simulates
 * nothing and still returns bit-identical results.
 *
 * The same flow is available as a process: see `wisync_sweepd`
 * (request JSON on stdin, response JSON on stdout, `--shard i/k` for
 * multi-process splits).
 */

#include <cstdio>

#include "service/config_codec.hh"
#include "service/sweep_service.hh"

using namespace wisync;

int
main()
{
    // Four points, two of them duplicates of point 0 — the overlap a
    // shared service sees when many users sweep the same grids.
    const char *request_json = R"({"points": [
        {"config": {"kind": "WiSync", "cores": 16},
         "workload": {"kind": "tightloop", "iterations": 10}},
        {"config": {"kind": "Baseline", "cores": 16},
         "workload": {"kind": "tightloop", "iterations": 10}},
        {"config": {"kind": "WiSync", "cores": 16},
         "workload": {"kind": "tightloop", "iterations": 10}},
        {"config": {"kind": "WiSync", "cores": 16},
         "workload": {"kind": "tightloop", "iterations": 10}}
    ]})";

    const service::SweepRequest request =
        service::ConfigCodec::parseRequest(request_json);

    service::SweepService svc(64);

    // Cold batch: unique points simulate once; duplicates are
    // answered by the cache entry their representative inserts.
    const auto cold = svc.runBatch(request, 1);
    std::printf("cold batch:\n");
    for (std::size_t i = 0; i < cold.size(); ++i)
        std::printf("  point %zu: %llu cycles (%s)\n", i,
                    static_cast<unsigned long long>(cold[i].result.cycles),
                    cold[i].cacheHit ? "cache hit" : "simulated");
    std::printf("cold: %zu simulated, %zu cache hits\n",
                svc.lastBatch().simulated, svc.lastBatch().cacheHits);

    // Warm batch: the same request costs zero simulations, and
    // because simulations are bit-deterministic the answers are
    // exactly the ones a re-run would produce.
    const auto warm = svc.runBatch(request, 1);
    bool identical = true;
    for (std::size_t i = 0; i < warm.size(); ++i)
        identical = identical &&
                    workloads::bitIdentical(cold[i].result,
                                            warm[i].result);
    std::printf("warm: %zu simulated, %zu cache hits, bit-identical: "
                "%s\n",
                svc.lastBatch().simulated, svc.lastBatch().cacheHits,
                identical ? "yes" : "NO");
    return identical ? 0 : 1;
}
