/**
 * @file
 * Producer-consumer pipeline over the Broadcast Memory (paper §4.3.4):
 * a producer streams 4-word records to a consumer with Bulk transfers
 * and a full/empty flag, and the same pattern is repeated over plain
 * coherent memory for comparison.
 *
 * Build & run:
 *   ./build/examples/producer_consumer
 */

#include <cstdio>

#include "core/machine.hh"
#include "sync/wisync_sync.hh"

using namespace wisync;

namespace {

constexpr int kRecords = 100;

coro::Task<void>
bmProducer(core::ThreadCtx &ctx, sync::ProducerConsumer *pc)
{
    for (int i = 0; i < kRecords; ++i) {
        const auto v = static_cast<std::uint64_t>(i);
        co_await pc->produce(ctx, {v, v * v, v + 1, v ^ 0xFF});
    }
}

coro::Task<void>
bmConsumer(core::ThreadCtx &ctx, sync::ProducerConsumer *pc,
           std::uint64_t *checksum)
{
    for (int i = 0; i < kRecords; ++i) {
        const auto rec = co_await pc->consume(ctx);
        *checksum += rec[0] + rec[1] + rec[2] + rec[3];
    }
}

/** The same hand-off over coherent memory (flag + 4-word record). */
coro::Task<void>
memProducer(core::ThreadCtx &ctx, sim::Addr data, sim::Addr flag)
{
    for (int i = 0; i < kRecords; ++i) {
        const auto v = static_cast<std::uint64_t>(i);
        co_await ctx.spinUntil(flag,
                               [](std::uint64_t f) { return f == 0; });
        co_await ctx.store(data + 0, v);
        co_await ctx.store(data + 8, v * v);
        co_await ctx.store(data + 16, v + 1);
        co_await ctx.store(data + 24, v ^ 0xFF);
        co_await ctx.store(flag, 1);
    }
}

coro::Task<void>
memConsumer(core::ThreadCtx &ctx, sim::Addr data, sim::Addr flag,
            std::uint64_t *checksum)
{
    for (int i = 0; i < kRecords; ++i) {
        co_await ctx.spinUntil(flag,
                               [](std::uint64_t f) { return f == 1; });
        for (int w = 0; w < 4; ++w)
            *checksum += co_await ctx.load(data + w * 8);
        co_await ctx.store(flag, 0);
    }
}

} // namespace

int
main()
{
    // --- WiSync: Bulk transfers over the Data channel -------------
    std::uint64_t bm_checksum = 0;
    sim::Cycle bm_cycles = 0;
    {
        core::Machine m(
            core::MachineConfig::make(core::ConfigKind::WiSync, 2));
        sync::ProducerConsumer pc(m, 1);
        m.spawnThread(0, [&](core::ThreadCtx &ctx) {
            return bmProducer(ctx, &pc);
        });
        m.spawnThread(1, [&](core::ThreadCtx &ctx) {
            return bmConsumer(ctx, &pc, &bm_checksum);
        });
        m.run();
        bm_cycles = m.engine().now();
    }

    // --- Baseline: the same protocol through the cache hierarchy --
    std::uint64_t mem_checksum = 0;
    sim::Cycle mem_cycles = 0;
    {
        core::Machine m(
            core::MachineConfig::make(core::ConfigKind::Baseline, 2));
        const sim::Addr data = m.allocMem(64, 64);
        const sim::Addr flag = m.allocMem(64, 64);
        m.spawnThread(0, [&](core::ThreadCtx &ctx) {
            return memProducer(ctx, data, flag);
        });
        m.spawnThread(1, [&](core::ThreadCtx &ctx) {
            return memConsumer(ctx, data, flag, &mem_checksum);
        });
        m.run();
        mem_cycles = m.engine().now();
    }

    std::printf("records: %d\n", kRecords);
    std::printf("WiSync (bulk BM):  %8llu cycles, checksum %llu\n",
                static_cast<unsigned long long>(bm_cycles),
                static_cast<unsigned long long>(bm_checksum));
    std::printf("Baseline (cached): %8llu cycles, checksum %llu\n",
                static_cast<unsigned long long>(mem_cycles),
                static_cast<unsigned long long>(mem_checksum));
    std::printf("WiSync advantage:  %.2fx\n",
                static_cast<double>(mem_cycles) /
                    static_cast<double>(bm_cycles));
    return bm_checksum == mem_checksum ? 0 : 1;
}
