/**
 * @file
 * 2D-mesh on-chip network model.
 *
 * Matches the paper's Table 1: 2D mesh, 4 cycles/hop, 128-bit links.
 * Messages are wormhole-routed with XY (dimension-order) routing: the
 * head flit pays the per-hop latency at each router, the tail follows
 * `flits-1` cycles behind, and each directional link is occupied for
 * `flits` cycles per message, which is where contention comes from.
 *
 * XY routing's channel-dependency graph is acyclic, so the model's
 * hold-link-while-waiting-for-next-link discipline cannot deadlock.
 *
 * Two multicast modes (paper §6, Table 2):
 *  - serial:  the source injects one unicast per destination, one
 *    injection per cycle (plain `Baseline` router, no broadcast HW).
 *  - tree:    a single message is replicated at fan-out routers
 *    (`Baseline+`'s "virtual tree-based broadcast ... with flit
 *    replication at the router crossbars", Krishna et al. [22]).
 *
 * Uncontended fast path (MeshConfig::fastpath, default on, kill switch
 * WISYNC_NO_FASTPATH=1): send() drives the head flit down the route
 * with a frameless step chain — one plain callback event per hop, at
 * exactly the cycles (and scheduling instants) the wormhole
 * coroutine's per-hop awaits would occupy — taking each link as a
 * timed SimMutex reservation instead of lock()+scheduleUnlock. An
 * uncontended unicast therefore costs hops+2 events, no coroutine
 * frame beyond send() itself and zero heap allocations (no route
 * vector, no release events: a reservation's release is materialized
 * lazily, at the identical cycle, only if a contender queues on the
 * link). The moment any link is found held, the remaining route falls
 * back to the wormhole coroutine inside the same engine event, so the
 * blocked head enqueues FIFO exactly where the slow path's would —
 * contention semantics, and therefore timing, are bit-for-bit
 * unchanged.
 */

#ifndef WISYNC_NOC_MESH_HH
#define WISYNC_NOC_MESH_HH

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "coro/primitives.hh"
#include "coro/task.hh"
#include "sim/engine.hh"
#include "sim/env.hh"
#include "sim/inline_vec.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace wisync::noc {

/** Mesh geometry and timing knobs. */
struct MeshConfig
{
    std::uint32_t numNodes = 64;
    /** Router + link traversal latency per hop (cycles). */
    std::uint32_t hopCycles = 4;
    /** Link width in bits (one flit per cycle per link). */
    std::uint32_t linkBits = 128;
    /** Replicate flits at fan-out routers for multicast (Baseline+). */
    bool treeMulticast = false;
    /** Uncontended-route fast path (host-time only; cycle-exact). */
    bool fastpath = sim::fastpathDefault();

    /** Field-wise equality (MachineConfig::operator== / fingerprint). */
    bool operator==(const MeshConfig &) const = default;
};

/** Aggregated network statistics. */
struct MeshStats
{
    sim::Counter messages;
    sim::Counter flits;
    sim::Counter multicasts;
    sim::Accumulator latency;
    /** Unicasts whose whole route was driven by the frameless chain. */
    sim::Counter fastpathHits;
    /** Unicasts that hit a held link and converted to the wormhole
     *  coroutine (only counted while the fast path is enabled). */
    sim::Counter fastpathFallbacks;

    /** Zero everything (assignment cannot miss a late-added field). */
    void reset() { *this = {}; }
};

/**
 * The mesh fabric. One instance per simulated chip.
 *
 * All public operations are coroutines that resolve when the (last)
 * message is fully delivered.
 */
class Mesh
{
  public:
    /** XY routes fit inline up to a 17-wide grid (2*(width-1) hops). */
    using LinkVec = sim::InlineVec<std::uint32_t, 32>;
    /** Destination lists fit inline up to the Table 1 64-node chip. */
    using NodeVec = sim::InlineVec<sim::NodeId, 64>;

    Mesh(sim::Engine &engine, const MeshConfig &cfg);

    /** Grid side length (smallest square holding numNodes). */
    std::uint32_t width() const { return width_; }

    /** Manhattan hop distance between two nodes. */
    std::uint32_t hops(sim::NodeId a, sim::NodeId b) const;

    /**
     * Send @p bits from @p src to @p dst; resolves at delivery.
     * Same-node "transfers" cost one cycle (local bank port hop).
     */
    coro::Task<void> send(sim::NodeId src, sim::NodeId dst,
                          std::uint32_t bits);

    /**
     * Deliver @p bits to every destination; resolves when the last
     * destination has the message. Mode depends on cfg.treeMulticast.
     * @p dsts is a view — the backing storage must outlive the await
     * (it always lives in the caller's suspended frame).
     */
    coro::Task<void> multicast(sim::NodeId src,
                               std::span<const sim::NodeId> dsts,
                               std::uint32_t bits);

    /** Zero-load latency of a unicast, for calibration tests. */
    sim::Cycle zeroLoadLatency(sim::NodeId src, sim::NodeId dst,
                               std::uint32_t bits) const;

    const MeshStats &stats() const { return stats_; }
    const MeshConfig &config() const { return cfg_; }

    /**
     * Return to post-construction state, optionally retiming: frees
     * all links/ports and zeroes stats. @p cfg may change timing knobs
     * (hopCycles, linkBits, treeMulticast, fastpath) but must keep
     * numNodes. Callers (Machine::reset) must have destroyed in-flight
     * transfer coroutines first — link mutexes are cleared, not handed
     * off.
     */
    void reset(const MeshConfig &cfg);

  private:
    std::uint32_t xOf(sim::NodeId n) const { return n % width_; }
    std::uint32_t yOf(sim::NodeId n) const { return n / width_; }
    sim::NodeId nodeAt(std::uint32_t x, std::uint32_t y) const
    {
        return y * width_ + x;
    }

    std::uint32_t flitsOf(std::uint32_t bits) const;

    /** Directional link id from node @p a to adjacent node @p b. */
    std::size_t linkId(sim::NodeId a, sim::NodeId b) const;

    /** Next node on the XY route from @p cur toward @p dst. */
    sim::NodeId
    nextHop(sim::NodeId cur, sim::NodeId dst) const
    {
        if (xOf(cur) != xOf(dst))
            return nodeAt(xOf(cur) + (xOf(dst) > xOf(cur) ? 1 : -1),
                          yOf(cur));
        return nodeAt(xOf(cur), yOf(cur) + (yOf(dst) > yOf(cur) ? 1 : -1));
    }

    /** XY route as a list of directional link ids. */
    LinkVec route(sim::NodeId src, sim::NodeId dst) const;

    /** Frameless uncontended-transfer driver (awaiter; see mesh.cc). */
    class FastTransfer;

    coro::Task<void> transferAlong(LinkVec path, std::uint32_t flits);

    /** Tail-flit arrival delay (flits-1 cycles). */
    coro::Task<void> tailDelay(std::uint32_t flits);

    /** Recursive XY-tree delivery used in tree-multicast mode. */
    coro::Task<void> treeDeliver(sim::NodeId cur, NodeVec dsts,
                                 std::uint32_t flits);

    sim::Engine &engine_;
    MeshConfig cfg_;
    std::uint32_t width_;
    /** One FIFO mutex per directional link; index = linkId. */
    std::vector<std::unique_ptr<coro::SimMutex>> links_;
    /** Per-node injection port (serial multicast pacing). */
    std::vector<std::unique_ptr<coro::SimMutex>> inject_;
    MeshStats stats_;
};

} // namespace wisync::noc

#endif // WISYNC_NOC_MESH_HH
