#include "noc/mesh.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace wisync::noc {

namespace {

/** Directional link indices relative to a node. */
enum Dir : std::size_t { East = 0, West = 1, North = 2, South = 3 };

} // namespace

Mesh::Mesh(sim::Engine &engine, const MeshConfig &cfg)
    : engine_(engine), cfg_(cfg)
{
    WISYNC_ASSERT(cfg_.numNodes > 0, "mesh needs at least one node");
    WISYNC_ASSERT(cfg_.linkBits > 0, "links need nonzero width");
    width_ = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(cfg_.numNodes))));
    // Routes may pass through grid positions beyond the last populated
    // node (a non-square core count still has a full router grid), so
    // links cover the whole width x width mesh.
    const std::uint32_t grid = width_ * width_;
    links_.reserve(grid * 4);
    inject_.reserve(cfg_.numNodes);
    for (std::uint32_t n = 0; n < grid * 4; ++n)
        links_.push_back(std::make_unique<coro::SimMutex>(engine_));
    for (std::uint32_t n = 0; n < cfg_.numNodes; ++n)
        inject_.push_back(std::make_unique<coro::SimMutex>(engine_));
}

void
Mesh::reset(const MeshConfig &cfg)
{
    WISYNC_FATAL_IF(cfg.numNodes != cfg_.numNodes,
                    "Mesh::reset cannot change the node count");
    WISYNC_ASSERT(cfg.linkBits > 0, "links need nonzero width");
    cfg_ = cfg;
    for (auto &link : links_)
        link->reset();
    for (auto &port : inject_)
        port->reset();
    stats_.reset();
}

std::uint32_t
Mesh::hops(sim::NodeId a, sim::NodeId b) const
{
    const auto dx = xOf(a) > xOf(b) ? xOf(a) - xOf(b) : xOf(b) - xOf(a);
    const auto dy = yOf(a) > yOf(b) ? yOf(a) - yOf(b) : yOf(b) - yOf(a);
    return dx + dy;
}

std::uint32_t
Mesh::flitsOf(std::uint32_t bits) const
{
    return std::max(1u, (bits + cfg_.linkBits - 1) / cfg_.linkBits);
}

std::size_t
Mesh::linkId(sim::NodeId a, sim::NodeId b) const
{
    if (xOf(b) == xOf(a) + 1)
        return a * 4 + East;
    if (xOf(b) + 1 == xOf(a))
        return a * 4 + West;
    if (yOf(b) + 1 == yOf(a))
        return a * 4 + North;
    if (yOf(b) == yOf(a) + 1)
        return a * 4 + South;
    WISYNC_PANIC("linkId of non-adjacent nodes %u -> %u", a, b);
}

Mesh::LinkVec
Mesh::route(sim::NodeId src, sim::NodeId dst) const
{
    LinkVec path;
    sim::NodeId cur = src;
    // X first, then Y (dimension-order routing).
    while (xOf(cur) != xOf(dst)) {
        const sim::NodeId next =
            nodeAt(xOf(cur) + (xOf(dst) > xOf(cur) ? 1 : -1), yOf(cur));
        path.push_back(static_cast<std::uint32_t>(linkId(cur, next)));
        cur = next;
    }
    while (yOf(cur) != yOf(dst)) {
        const sim::NodeId next =
            nodeAt(xOf(cur), yOf(cur) + (yOf(dst) > yOf(cur) ? 1 : -1));
        path.push_back(static_cast<std::uint32_t>(linkId(cur, next)));
        cur = next;
    }
    return path;
}

/**
 * Frameless head-flit driver for the uncontended case.
 *
 * Awaited by send(); lives in send()'s (pooled) frame across the
 * single suspension. Each step runs at the cycle the wormhole
 * coroutine's head would reach that router — and, crucially, is
 * *scheduled* at the same instant the coroutine's per-hop delay would
 * be, so every insertion-sequence number the outside world can race
 * against is unchanged. A free link is taken as a timed reservation
 * (no release event unless a contender queues); a held link converts
 * the remaining route to the wormhole coroutine inside the same event,
 * putting the head into the link's FIFO exactly where the slow path
 * would have.
 */
class Mesh::FastTransfer
{
  public:
    FastTransfer(Mesh &mesh, sim::NodeId src, sim::NodeId dst,
                 std::uint32_t flits)
        : mesh_(mesh), cur_(src), dst_(dst), flits_(flits)
    {}

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        caller_ = h;
        // The head enters the first link inline, in the co_await's own
        // event — where transferAlong's first lock() would run.
        step();
    }

    void await_resume() const noexcept {}

  private:
    /** POD callback wrappers: 8 bytes, always in the event's SBO. */
    struct StepFn
    {
        FastTransfer *t;
        void operator()() const { t->step(); }
    };
    struct FinishFn
    {
        FastTransfer *t;
        void operator()() const { t->finish(); }
    };

    void
    step()
    {
        const sim::NodeId next = mesh_.nextHop(cur_, dst_);
        coro::SimMutex &link = *mesh_.links_[mesh_.linkId(cur_, next)];
        // The link is busy until the tail flit crosses it (the same
        // window transferAlong's scheduleUnlock(flits) would hold).
        if (!link.tryReserve(mesh_.engine_.now() + flits_)) {
            // Held: the rest of the route goes through the wormhole
            // coroutine, whose first lock attempt enqueues here — in
            // this very event — exactly as the slow path's would.
            mesh_.stats_.fastpathFallbacks.inc();
            coro::spawnInline(
                mesh_.engine_,
                mesh_.transferAlong(mesh_.route(cur_, dst_), flits_),
                [this] { caller_.resume(); });
            return;
        }
        cur_ = next;
        if (cur_ == dst_)
            mesh_.engine_.scheduleIn(mesh_.cfg_.hopCycles, FinishFn{this});
        else
            mesh_.engine_.scheduleIn(mesh_.cfg_.hopCycles, StepFn{this});
    }

    void
    finish()
    {
        // Head arrived; the tail is flits-1 cycles behind. Single-flit
        // messages resume the sender inside this event, matching the
        // slow path's zero-cycle delay awaiter.
        mesh_.stats_.fastpathHits.inc();
        if (flits_ > 1)
            mesh_.engine_.resumeHandle(flits_ - 1, caller_);
        else
            caller_.resume();
    }

    Mesh &mesh_;
    sim::NodeId cur_;
    sim::NodeId dst_;
    std::uint32_t flits_;
    std::coroutine_handle<> caller_;
};

coro::Task<void>
Mesh::transferAlong(LinkVec path, std::uint32_t flits)
{
    for (const auto link : path) {
        co_await links_[link]->lock();
        // The link stays busy until the tail flit crosses it; the head
        // moves on in parallel. Freeing on a timer (rather than when
        // the head secures the next hop) models routers with enough
        // buffering to absorb a blocked message — optimistic under
        // heavy congestion, exact otherwise.
        links_[link]->scheduleUnlock(flits);
        co_await coro::delay(engine_, cfg_.hopCycles);
    }
    if (flits > 1)
        co_await coro::delay(engine_, flits - 1);
}

coro::Task<void>
Mesh::send(sim::NodeId src, sim::NodeId dst, std::uint32_t bits)
{
    const sim::Cycle start = engine_.now();
    const std::uint32_t flits = flitsOf(bits);
    stats_.messages.inc();
    stats_.flits.inc(flits);
    if (src == dst) {
        // Local turnaround through the node's port.
        co_await coro::delay(engine_, 1);
    } else if (cfg_.fastpath && cfg_.hopCycles > 0) {
        // hopCycles == 0 must stay on the wormhole path: its delay(0)
        // awaiters complete inline, locking the whole route in one
        // event, whereas the step chain would round-trip each hop
        // through the ready ring — a different same-cycle grant order.
        co_await FastTransfer(*this, src, dst, flits);
    } else {
        co_await transferAlong(route(src, dst), flits);
    }
    stats_.latency.sample(static_cast<double>(engine_.now() - start));
}

coro::Task<void>
Mesh::tailDelay(std::uint32_t flits)
{
    co_await coro::delay(engine_, flits - 1);
}

coro::Task<void>
Mesh::treeDeliver(sim::NodeId cur, NodeVec dsts, std::uint32_t flits)
{
    NodeVec east, west, north, south;
    bool here = false;
    for (const auto d : dsts) {
        if (d == cur) {
            here = true;
        } else if (xOf(d) > xOf(cur)) {
            east.push_back(d);
        } else if (xOf(d) < xOf(cur)) {
            west.push_back(d);
        } else if (yOf(d) < yOf(cur)) {
            north.push_back(d);
        } else {
            south.push_back(d);
        }
    }

    sim::InlineVec<coro::Task<void>, 4> branches;
    auto descend = [&](NodeVec group) -> coro::Task<void> {
        const sim::NodeId next =
            xOf(group.front()) > xOf(cur)   ? nodeAt(xOf(cur) + 1, yOf(cur))
            : xOf(group.front()) < xOf(cur) ? nodeAt(xOf(cur) - 1, yOf(cur))
            : yOf(group.front()) < yOf(cur) ? nodeAt(xOf(cur), yOf(cur) - 1)
                                            : nodeAt(xOf(cur), yOf(cur) + 1);
        co_await links_[linkId(cur, next)]->lock();
        links_[linkId(cur, next)]->scheduleUnlock(flits);
        co_await coro::delay(engine_, cfg_.hopCycles);
        co_await treeDeliver(next, std::move(group), flits);
    };
    if (!east.empty())
        branches.push_back(descend(std::move(east)));
    if (!west.empty())
        branches.push_back(descend(std::move(west)));
    if (!north.empty())
        branches.push_back(descend(std::move(north)));
    if (!south.empty())
        branches.push_back(descend(std::move(south)));

    if (here && flits > 1) {
        // Local delivery: the tail arrives flits-1 cycles behind the
        // head, overlapping any downstream branch transfers.
        branches.push_back(tailDelay(flits));
    }

    if (!branches.empty())
        co_await coro::whenAll(engine_, std::move(branches));
}

coro::Task<void>
Mesh::multicast(sim::NodeId src, std::span<const sim::NodeId> dsts,
                std::uint32_t bits)
{
    if (dsts.empty())
        co_return;
    stats_.multicasts.inc();
    const std::uint32_t flits = flitsOf(bits);

    if (cfg_.treeMulticast) {
        stats_.messages.inc();
        stats_.flits.inc(flits);
        NodeVec targets;
        targets.reserve(dsts.size());
        for (const auto d : dsts)
            targets.push_back(d);
        co_await treeDeliver(src, std::move(targets), flits);
        co_return;
    }

    // Serial replication at the source: one unicast per destination,
    // injected one per cycle through the node's port.
    sim::InlineVec<coro::Task<void>, 8> sends;
    sends.reserve(dsts.size());
    auto one = [this, src, bits](sim::NodeId dst) -> coro::Task<void> {
        co_await inject_[src]->lock();
        co_await coro::delay(engine_, 1);
        inject_[src]->unlock();
        co_await send(src, dst, bits);
    };
    for (const auto d : dsts)
        sends.push_back(one(d));
    co_await coro::whenAll(engine_, std::move(sends));
}

sim::Cycle
Mesh::zeroLoadLatency(sim::NodeId src, sim::NodeId dst,
                      std::uint32_t bits) const
{
    if (src == dst)
        return 1;
    return static_cast<sim::Cycle>(hops(src, dst)) * cfg_.hopCycles +
           flitsOf(bits) - 1;
}

} // namespace wisync::noc
