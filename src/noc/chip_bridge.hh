/**
 * @file
 * The inter-chip bridge: a serialized broadcast link between chips.
 *
 * Multi-chip machines commit every global-scope BM broadcast on the
 * transmitting chip first; the bridge then carries the update to the
 * other chips' replica groups. The model is a single shared broadcast
 * medium (a package-level waveguide / interposer bus): frames
 * serialize in FIFO order at a configurable width — serialization IS
 * the bridge's MAC, there is no contention loss — and each frame lands
 * on the remote chips one propagation latency after its last flit
 * leaves. Delivery runs a caller callback at the arrival instant, so
 * the BM layer can apply the update and fire AFB aborts in one atomic
 * simulation step, exactly like a Data-channel delivery.
 */

#ifndef WISYNC_NOC_CHIP_BRIDGE_HH
#define WISYNC_NOC_CHIP_BRIDGE_HH

#include <cstdint>

#include "sim/engine.hh"
#include "sim/function.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace wisync::noc {

/** Bridge link knobs. */
struct BridgeConfig
{
    /** Propagation latency, last flit out -> remote delivery, cycles. */
    sim::Cycle latencyCycles = 24;
    /** Serialization width: payload bits accepted per cycle. */
    std::uint32_t widthBits = 64;
    /** Fixed per-frame header (routing + word address + version). */
    std::uint32_t headerBits = 32;
};

/** Bridge statistics. */
struct BridgeStats
{
    sim::Counter frames;
    sim::Counter busyCycles;
    /** Cycles frames waited for the serializer behind earlier frames. */
    sim::Counter queueWaitCycles;

    void reset() { *this = {}; }
};

/** The shared inter-chip broadcast link (see file comment). */
class ChipBridge
{
  public:
    ChipBridge(sim::Engine &engine, const BridgeConfig &cfg)
        : engine_(engine), cfg_(cfg)
    {}

    /**
     * Ship a frame of @p payload_bits. Serialization starts when the
     * link frees (FIFO); @p deliver runs at the remote arrival
     * instant. Fire-and-forget: the sender does not wait (the BM
     * store already committed locally; WCB semantics are chip-local).
     */
    void
    post(std::uint32_t payload_bits, sim::UniqueFunction deliver)
    {
        const std::uint32_t bits = cfg_.headerBits + payload_bits;
        const sim::Cycle ser =
            (bits + cfg_.widthBits - 1) / cfg_.widthBits;
        const sim::Cycle now = engine_.now();
        const sim::Cycle start = nextFree_ > now ? nextFree_ : now;
        stats_.frames.inc();
        stats_.busyCycles.inc(ser);
        stats_.queueWaitCycles.inc(start - now);
        nextFree_ = start + ser;
        engine_.schedule(nextFree_ + cfg_.latencyCycles,
                         std::move(deliver));
    }

    /** First cycle a new frame could start serializing. */
    sim::Cycle nextFree() const { return nextFree_; }

    const BridgeStats &stats() const { return stats_; }
    const BridgeConfig &config() const { return cfg_; }

    /** Idle link, zero stats, optionally retimed. In-flight frames
     *  must already be gone (the engine reset dropped their events). */
    void
    reset(const BridgeConfig &cfg)
    {
        cfg_ = cfg;
        nextFree_ = 0;
        stats_.reset();
    }

  private:
    sim::Engine &engine_;
    BridgeConfig cfg_;
    sim::Cycle nextFree_ = 0;
    BridgeStats stats_;
};

} // namespace wisync::noc

#endif // WISYNC_NOC_CHIP_BRIDGE_HH
