/**
 * @file
 * The inter-chip bridge: a serialized broadcast link between chips.
 *
 * Multi-chip machines commit every global-scope BM broadcast on the
 * transmitting chip first; the bridge then carries the update to the
 * other chips' replica groups. The model is a single shared broadcast
 * medium (a package-level waveguide / interposer bus): frames
 * serialize in FIFO order at a configurable width — serialization IS
 * the bridge's MAC, there is no contention loss — and each frame lands
 * on the remote chips one propagation latency after its last flit
 * leaves. Delivery runs a caller callback at the arrival instant, so
 * the BM layer can apply the update and fire AFB aborts in one atomic
 * simulation step, exactly like a Data-channel delivery.
 *
 * The link may be lossy: a package-level waveguide fails in bursts
 * (reflections / thermal episodes, Bandara et al.), so the loss draw
 * is a single Gilbert–Elliott chain over the shared medium (or an
 * i.i.d. lossPct), stepped once per serialization from the bridge's
 * own forked RNG stream. A dropped frame costs its serialization
 * cycles plus an ack window, then retransmits with bounded exponential
 * spacing — the Mac reliability contract. After maxRetries the bridge
 * gives up AND immediately re-issues the frame with a fresh retry
 * budget: a global BM update is never silently lost (the version
 * clocks make an arbitrarily late arrival safe — stale cross-chip
 * RMWs still abort via AFB). The ideal link (the default) draws
 * nothing and is byte-identical to the pre-loss bridge.
 */

#ifndef WISYNC_NOC_CHIP_BRIDGE_HH
#define WISYNC_NOC_CHIP_BRIDGE_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/engine.hh"
#include "sim/function.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "wireless/burst.hh"

namespace wisync::noc {

/** Bridge link knobs. */
struct BridgeConfig
{
    /** Propagation latency, last flit out -> remote delivery, cycles. */
    sim::Cycle latencyCycles = 24;
    /** Serialization width: payload bits accepted per cycle. */
    std::uint32_t widthBits = 64;
    /** Fixed per-frame header (routing + word address + version). */
    std::uint32_t headerBits = 32;

    // ---- Lossy link + reliability (defaults: the ideal bridge) ----
    /** i.i.d. probability, percent, that a serialized frame is
     *  corrupted and must be retransmitted. */
    double lossPct = 0.0;
    /** Correlated loss: one Gilbert–Elliott chain over the shared
     *  medium replaces the i.i.d. draw when enabled. */
    wireless::BurstParams burst;
    /** Cycles the bridge waits for the missing remote ack before
     *  declaring a frame lost. */
    sim::Cycle ackTimeoutCycles = 4;
    /** Retransmissions per frame before a give-up is recorded (the
     *  frame is then RE-ISSUED with a fresh budget, never dropped). */
    std::uint32_t maxRetries = 8;
    /** Cap on the bounded exponential retransmission backoff. */
    std::uint32_t retryBackoffMaxExp = 6;

    /** Field-wise equality (MachineConfig::operator== / fingerprint). */
    bool operator==(const BridgeConfig &) const = default;
};

/** Bridge statistics. */
struct BridgeStats
{
    sim::Counter frames;
    sim::Counter busyCycles;
    /** Cycles frames waited for the serializer behind earlier frames. */
    sim::Counter queueWaitCycles;
    /** Serializations corrupted by the lossy link. */
    sim::Counter drops;
    /** Ack windows expired (one per drop). */
    sim::Counter ackTimeouts;
    /** Retransmissions within a frame's retry budget. */
    sim::Counter retransmits;
    /** Retry budgets exhausted (each one triggers a re-issue). */
    sim::Counter giveUps;
    /** Frames re-issued with a fresh budget after a give-up. */
    sim::Counter reissues;

    void reset() { *this = {}; }
};

/** The shared inter-chip broadcast link (see file comment). */
class ChipBridge
{
  public:
    ChipBridge(sim::Engine &engine, const BridgeConfig &cfg)
        : engine_(engine), cfg_(cfg)
    {
        validate(cfg_);
    }

    /**
     * Ship a frame of @p payload_bits. Serialization starts when the
     * link frees (FIFO); @p deliver runs at the remote arrival
     * instant. Fire-and-forget: the sender does not wait (the BM
     * store already committed locally; WCB semantics are chip-local).
     * On a lossy link delivery may come arbitrarily later (retries /
     * re-issues), but it always comes: no frame is silently lost.
     */
    void
    post(std::uint32_t payload_bits, sim::UniqueFunction deliver)
    {
        stats_.frames.inc();
        const std::uint32_t bits = cfg_.headerBits + payload_bits;
        if (!lossy()) {
            // The ideal link: exactly the pre-loss event stream — one
            // serialization, one delivery event, zero RNG draws.
            const sim::Cycle ser =
                (bits + cfg_.widthBits - 1) / cfg_.widthBits;
            const sim::Cycle now = engine_.now();
            const sim::Cycle start = nextFree_ > now ? nextFree_ : now;
            stats_.busyCycles.inc(ser);
            stats_.queueWaitCycles.inc(start - now);
            nextFree_ = start + ser;
            engine_.schedule(nextFree_ + cfg_.latencyCycles,
                             std::move(deliver));
            return;
        }
        InFlight *f = acquireInFlight();
        f->bits = bits;
        f->drops = 0;
        f->deliver = std::move(deliver);
        attempt(f);
    }

    /** First cycle a new frame could start serializing. */
    sim::Cycle nextFree() const { return nextFree_; }

    /** True when any frame can be corrupted. False costs nothing:
     *  zero RNG draws, the pre-loss event stream. */
    bool lossy() const { return cfg_.lossPct > 0.0 || cfg_.burst.lossy(); }

    /** The bridge's private RNG stream for the loss draws. BmSystem
     *  forks it from the machine seed after the per-node Mac streams
     *  (construction and every reset), so single-chip machines and
     *  ideal bridges never perturb any other component's draws. A
     *  lossy bridge must be given a stream before the first post(). */
    void setRng(sim::Rng rng) { rng_ = rng; }

    /** The Gilbert–Elliott state of the link (test/introspection). */
    bool burstBad() const { return burstState_.bad(); }

    /**
     * Drop-accounting invariant of the reliability layer: every drop
     * costs exactly one ack window and resolves to a retransmission
     * or a give-up. Holds whenever the link is quiescent (all posted
     * frames delivered) — assert it at end of run.
     */
    bool
    dropAccountingConsistent() const
    {
        return stats_.drops.value() == stats_.ackTimeouts.value() &&
               stats_.drops.value() ==
                   stats_.retransmits.value() + stats_.giveUps.value() &&
               stats_.giveUps.value() == stats_.reissues.value();
    }

    const BridgeStats &stats() const { return stats_; }
    const BridgeConfig &config() const { return cfg_; }

    /** Idle link, zero stats, optionally retimed. In-flight frames
     *  must already be gone (the engine reset dropped their events);
     *  their buffers return to the pool here. */
    void
    reset(const BridgeConfig &cfg)
    {
        validate(cfg);
        cfg_ = cfg;
        nextFree_ = 0;
        stats_.reset();
        burstState_.reset();
        free_.clear();
        for (auto &f : pool_) {
            f->deliver = {};
            free_.push_back(f.get());
        }
    }

  private:
    /** One posted frame awaiting delivery on the lossy link. Pooled:
     *  steady-state lossy posts reuse recycled buffers. */
    struct InFlight
    {
        std::uint32_t bits = 0;
        /** Drops charged against the current retry budget. */
        std::uint32_t drops = 0;
        sim::UniqueFunction deliver;
    };

    static void
    validate(const BridgeConfig &cfg)
    {
        WISYNC_ASSERT(cfg.lossPct >= 0.0 && cfg.lossPct <= 100.0,
                      "bridge lossPct is a percentage");
        WISYNC_ASSERT(cfg.burst.goodLossPct >= 0.0 &&
                          cfg.burst.goodLossPct <= 100.0 &&
                          cfg.burst.badLossPct >= 0.0 &&
                          cfg.burst.badLossPct <= 100.0,
                      "bridge burst state loss rates are percentages");
        WISYNC_ASSERT(cfg.burst.pGoodToBad >= 0.0 &&
                          cfg.burst.pGoodToBad <= 1.0 &&
                          cfg.burst.pBadToGood >= 0.0 &&
                          cfg.burst.pBadToGood <= 1.0,
                      "bridge burst transition probabilities in [0, 1]");
    }

    /**
     * One serialization attempt of @p f: occupy the link FIFO slot,
     * then draw the loss Bernoulli. A drop schedules the next attempt
     * after the ack window (+ bounded exponential backoff within the
     * budget; a give-up re-issues with a fresh budget instead of
     * losing the frame); a survival schedules the remote delivery.
     */
    void
    attempt(InFlight *f)
    {
        const sim::Cycle ser =
            (f->bits + cfg_.widthBits - 1) / cfg_.widthBits;
        const sim::Cycle now = engine_.now();
        const sim::Cycle start = nextFree_ > now ? nextFree_ : now;
        stats_.busyCycles.inc(ser);
        stats_.queueWaitCycles.inc(start - now);
        nextFree_ = start + ser;
        const double per = cfg_.burst.enabled
                               ? burstState_.step(cfg_.burst, rng_)
                               : cfg_.lossPct / 100.0;
        if (per > 0.0 && rng_.chance(per)) {
            stats_.drops.inc();
            stats_.ackTimeouts.inc();
            ++f->drops;
            const bool giveup = f->drops > cfg_.maxRetries;
            sim::Cycle wait = cfg_.ackTimeoutCycles;
            if (!giveup) {
                const std::uint32_t exp =
                    f->drops < cfg_.retryBackoffMaxExp
                        ? f->drops
                        : cfg_.retryBackoffMaxExp;
                wait += sim::Cycle{1} << exp;
            }
            engine_.schedule(nextFree_ + wait, [this, f, giveup] {
                if (giveup) {
                    // Budget spent — but a global BM update must not
                    // vanish, so the frame re-enters with a fresh
                    // budget (the degradation mirror of BmSystem's
                    // GaveUp re-issue path).
                    stats_.giveUps.inc();
                    stats_.reissues.inc();
                    f->drops = 0;
                } else {
                    stats_.retransmits.inc();
                }
                attempt(f);
            });
            return;
        }
        engine_.schedule(nextFree_ + cfg_.latencyCycles, [this, f] {
            f->deliver();
            releaseInFlight(f);
        });
    }

    InFlight *
    acquireInFlight()
    {
        if (free_.empty()) {
            pool_.push_back(std::make_unique<InFlight>());
            return pool_.back().get();
        }
        InFlight *f = free_.back();
        free_.pop_back();
        return f;
    }

    void
    releaseInFlight(InFlight *f)
    {
        f->deliver = {};
        free_.push_back(f);
    }

    sim::Engine &engine_;
    BridgeConfig cfg_;
    sim::Cycle nextFree_ = 0;
    BridgeStats stats_;
    /** Loss-draw stream (setRng); untouched on an ideal link. */
    sim::Rng rng_;
    /** The shared medium's Gilbert–Elliott state (one per link). */
    wireless::BurstState burstState_;
    /** InFlight buffers, owned here and recycled through free_. */
    std::vector<std::unique_ptr<InFlight>> pool_;
    std::vector<InFlight *> free_;
};

} // namespace wisync::noc

#endif // WISYNC_NOC_CHIP_BRIDGE_HH
