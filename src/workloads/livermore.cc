#include "workloads/livermore.hh"

#include <algorithm>
#include <memory>

#include "core/machine.hh"
#include "sim/logging.hh"
#include "sync/factory.hh"
#include "sync/wisync_sync.hh"

namespace wisync::workloads {

namespace {

/** Line-granular timing access helper: one coherent op per new line. */
class LineToucher
{
  public:
    explicit LineToucher(core::ThreadCtx &ctx) : ctx_(ctx) {}

    coro::Task<void>
    read(sim::Addr addr)
    {
        const sim::Addr line = addr & ~sim::Addr{63};
        if (line != lastRead_) {
            lastRead_ = line;
            co_await ctx_.load(addr);
        }
    }

    coro::Task<void>
    write(sim::Addr addr, std::uint64_t value)
    {
        const sim::Addr line = addr & ~sim::Addr{63};
        if (line != lastWrite_) {
            lastWrite_ = line;
            co_await ctx_.store(addr, value);
        }
    }

  private:
    core::ThreadCtx &ctx_;
    sim::Addr lastRead_ = ~sim::Addr{0};
    sim::Addr lastWrite_ = ~sim::Addr{0};
};

/** Reduction cell with reset, on the config's best primitive. */
struct RedCell
{
    void
    init(core::Machine &m, sim::Pid pid)
    {
        if (m.config().hasWireless()) {
            bm = true;
            bmAddr = sync::setupBmWords(m, 1, pid);
        } else {
            bm = false;
            memAddr = m.allocMem(64, 64);
        }
    }

    coro::Task<void>
    add(core::ThreadCtx &ctx, std::uint64_t delta)
    {
        if (bm) {
            co_await ctx.bmFetchAdd(bmAddr, delta);
            co_return;
        }
        for (;;) {
            const std::uint64_t cur = co_await ctx.load(memAddr);
            const auto r = co_await ctx.cas(memAddr, cur, cur + delta);
            if (r.success)
                co_return;
        }
    }

    coro::Task<std::uint64_t>
    read(core::ThreadCtx &ctx)
    {
        if (bm)
            co_return co_await ctx.bmLoad(bmAddr);
        co_return co_await ctx.load(memAddr);
    }

    coro::Task<void>
    reset(core::ThreadCtx &ctx)
    {
        if (bm)
            co_await ctx.bmStore(bmAddr, 0);
        else
            co_await ctx.store(memAddr, 0);
    }

    bool bm = false;
    sim::BmAddr bmAddr = 0;
    sim::Addr memAddr = 0;
};

/** Shared run state. */
struct LivState
{
    core::Machine *machine = nullptr;
    sync::Barrier *barrier = nullptr;
    LivermoreParams params;
    std::uint32_t threads = 0;
    sim::Addr xAddr = 0; // x (loop 2), z (3), w (6)
    sim::Addr vAddr = 0; // v (loop 2), x (3), b (6)
    RedCell cells[2];
    std::uint64_t q = 0; // loop 3 result
};

std::uint64_t
fmem(core::Machine &m, sim::Addr base, std::uint64_t idx)
{
    return m.memory().read64(base + idx * 8);
}

void
fmemw(core::Machine &m, sim::Addr base, std::uint64_t idx,
      std::uint64_t value)
{
    m.memory().write64(base + idx * 8, value);
}

/** [begin, end) chunk of @p count items for thread @p t of @p nt. */
std::pair<std::uint64_t, std::uint64_t>
chunkOf(std::uint64_t count, std::uint32_t t, std::uint32_t nt)
{
    const std::uint64_t per = (count + nt - 1) / nt;
    const std::uint64_t begin = std::min<std::uint64_t>(count, t * per);
    const std::uint64_t end = std::min<std::uint64_t>(count, begin + per);
    return {begin, end};
}

// ------------------------------------------------------- loop 2 (ICCG)

coro::Task<void>
iccgThread(core::ThreadCtx &ctx, LivState *st, std::uint32_t t)
{
    // Each elimination level reads region [in_base, in_base+in_cnt)
    // and writes [out_base, out_base+out_cnt). The one-element pad
    // between the regions removes the serial kernel's boundary
    // dependence (x[k+1] hitting the level's first output) — the data
    // alignment the paper applies following Sampson et al. [37].
    core::Machine &m = *st->machine;
    for (std::uint32_t pass = 0; pass < st->params.passes; ++pass) {
        std::uint64_t in_base = 0;
        std::uint64_t in_cnt = st->params.n;
        while (in_cnt > 1) {
            const std::uint64_t out_base = in_base + in_cnt + 1;
            const std::uint64_t out_cnt = in_cnt / 2;
            const auto [jb, je] = chunkOf(out_cnt, t, st->threads);
            LineToucher touch(ctx);
            for (std::uint64_t j = jb; j < je; ++j) {
                const std::uint64_t k = in_base + 1 + 2 * j;
                const std::uint64_t i = out_base + j;
                co_await touch.read(st->xAddr + (k - 1) * 8);
                co_await touch.read(st->xAddr + (k + 1) * 8);
                co_await touch.read(st->vAddr + k * 8);
                const std::uint64_t val =
                    fmem(m, st->xAddr, k) -
                    fmem(m, st->vAddr, k) * fmem(m, st->xAddr, k - 1) -
                    fmem(m, st->vAddr, k + 1) * fmem(m, st->xAddr, k + 1);
                fmemw(m, st->xAddr, i, val);
                co_await touch.write(st->xAddr + i * 8, val);
                co_await ctx.compute(5);
            }
            co_await st->barrier->wait(ctx);
            in_base = out_base;
            in_cnt = out_cnt;
        }
    }
}

// ---------------------------------------------- loop 3 (inner product)

coro::Task<void>
innerProductThread(core::ThreadCtx &ctx, LivState *st, std::uint32_t t)
{
    core::Machine &m = *st->machine;
    for (std::uint32_t pass = 0; pass < st->params.passes; ++pass) {
        const auto [kb, ke] = chunkOf(st->params.n, t, st->threads);
        LineToucher touch(ctx);
        std::uint64_t local = 0;
        for (std::uint64_t k = kb; k < ke; ++k) {
            co_await touch.read(st->xAddr + k * 8);
            co_await touch.read(st->vAddr + k * 8);
            local += fmem(m, st->xAddr, k) * fmem(m, st->vAddr, k);
            co_await ctx.compute(2);
        }
        co_await st->cells[pass % 2].add(ctx, local);
        co_await st->barrier->wait(ctx);
        if (t == 0) {
            st->q = co_await st->cells[pass % 2].read(ctx);
            co_await st->cells[pass % 2].reset(ctx);
        }
    }
}

// ------------------------------------- loop 6 (general linear recurrence)

coro::Task<void>
linearRecurrenceThread(core::ThreadCtx &ctx, LivState *st, std::uint32_t t)
{
    core::Machine &m = *st->machine;
    const std::uint64_t n = st->params.n;
    for (std::uint32_t pass = 0; pass < st->params.passes; ++pass) {
        // Re-initialise w on pass start (thread 0, functional only).
        if (t == 0)
            for (std::uint64_t i = 0; i < n; ++i)
                fmemw(m, st->xAddr, i, livermoreInput(0, i));
        co_await st->barrier->wait(ctx);
        for (std::uint64_t i = 1; i < n; ++i) {
            const auto [kb, ke] = chunkOf(i, t, st->threads);
            RedCell &cell = st->cells[i % 2];
            if (kb < ke) {
                LineToucher touch(ctx);
                std::uint64_t local = 0;
                for (std::uint64_t k = kb; k < ke; ++k) {
                    co_await touch.read(st->xAddr + k * 8);
                    // b streams from memory: one timing load per line;
                    // the value is generated (b is never written).
                    co_await touch.read(st->vAddr + (i * n + k) * 8);
                    local += livermoreInput(2, i * n + k) *
                             fmem(m, st->xAddr, k);
                    co_await ctx.compute(2);
                }
                co_await cell.add(ctx, local);
            }
            co_await st->barrier->wait(ctx); // all partials in
            if (t == 0) {
                const std::uint64_t total = co_await cell.read(ctx);
                const std::uint64_t wi =
                    fmem(m, st->xAddr, i) + total;
                fmemw(m, st->xAddr, i, wi);
                co_await ctx.store(st->xAddr + i * 8, wi);
                co_await cell.reset(ctx);
            }
            // Fork-join: the second barrier publishes w[i] before any
            // thread starts the level-(i+1) partial sums that read it.
            co_await st->barrier->wait(ctx);
        }
        co_await st->barrier->wait(ctx);
    }
}

} // namespace

std::uint64_t
iccgArraySize(std::uint32_t n)
{
    // n inputs plus padded halving levels: 2n + log2(n) + slack.
    return 2 * n + 40;
}

std::uint64_t
livermoreInput(std::uint32_t s, std::uint32_t i)
{
    std::uint64_t z = (static_cast<std::uint64_t>(s) << 32) | i;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return (z ^ (z >> 31)) & 0xFFFF;
}

std::vector<std::uint64_t>
iccgReference(std::vector<std::uint64_t> x,
              const std::vector<std::uint64_t> &v, std::uint32_t n)
{
    std::uint64_t in_base = 0;
    std::uint64_t in_cnt = n;
    while (in_cnt > 1) {
        const std::uint64_t out_base = in_base + in_cnt + 1;
        const std::uint64_t out_cnt = in_cnt / 2;
        for (std::uint64_t j = 0; j < out_cnt; ++j) {
            const std::uint64_t k = in_base + 1 + 2 * j;
            x[out_base + j] =
                x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1];
        }
        in_base = out_base;
        in_cnt = out_cnt;
    }
    return x;
}

std::uint64_t
innerProductReference(const std::vector<std::uint64_t> &z,
                      const std::vector<std::uint64_t> &x)
{
    std::uint64_t q = 0;
    for (std::size_t i = 0; i < z.size(); ++i)
        q += z[i] * x[i];
    return q;
}

std::vector<std::uint64_t>
linearRecurrenceReference(std::vector<std::uint64_t> w,
                          const std::vector<std::uint64_t> &b,
                          std::uint32_t n)
{
    for (std::uint64_t i = 1; i < n; ++i)
        for (std::uint64_t k = 0; k < i; ++k)
            w[i] += b[i * n + k] * w[k];
    return w;
}

namespace {

LivermoreOutput
runImplOn(LivermoreLoop loop, core::Machine &machine,
          const LivermoreParams &params, bool collect)
{
    const std::uint32_t cores = machine.config().numCores;
    sync::SyncFactory factory(machine);

    LivState st;
    st.machine = &machine;
    st.params = params;
    st.threads = cores;

    std::vector<sim::NodeId> nodes;
    for (sim::NodeId n = 0; n < cores; ++n)
        nodes.push_back(n);
    auto barrier = factory.makeBarrier(nodes);
    st.barrier = barrier.get();

    const std::uint64_t n = params.n;
    switch (loop) {
      case LivermoreLoop::Iccg:
        st.xAddr = machine.allocMem(iccgArraySize(params.n) * 8, 64);
        st.vAddr = machine.allocMem(iccgArraySize(params.n) * 8, 64);
        for (std::uint64_t i = 0; i < iccgArraySize(params.n); ++i) {
            machine.memory().write64(st.xAddr + i * 8,
                                     livermoreInput(0, i));
            machine.memory().write64(st.vAddr + i * 8,
                                     livermoreInput(1, i));
        }
        break;
      case LivermoreLoop::InnerProduct:
        st.xAddr = machine.allocMem(n * 8, 64); // z
        st.vAddr = machine.allocMem(n * 8, 64); // x
        for (std::uint64_t i = 0; i < n; ++i) {
            machine.memory().write64(st.xAddr + i * 8,
                                     livermoreInput(0, i));
            machine.memory().write64(st.vAddr + i * 8,
                                     livermoreInput(1, i));
        }
        st.cells[0].init(machine, 1);
        st.cells[1].init(machine, 1);
        break;
      case LivermoreLoop::LinearRecurrence:
        st.xAddr = machine.allocMem(n * 8, 64); // w
        // b is a streamed address range; values are generated, so no
        // functional initialisation (n^2 words of timing-only space).
        st.vAddr = machine.allocMem(n * n * 8, 64);
        st.cells[0].init(machine, 1);
        st.cells[1].init(machine, 1);
        break;
    }

    for (sim::NodeId nd = 0; nd < cores; ++nd) {
        const std::uint32_t t = nd;
        switch (loop) {
          case LivermoreLoop::Iccg:
            machine.spawnThread(nd, [&st, t](core::ThreadCtx &ctx) {
                return iccgThread(ctx, &st, t);
            });
            break;
          case LivermoreLoop::InnerProduct:
            machine.spawnThread(nd, [&st, t](core::ThreadCtx &ctx) {
                return innerProductThread(ctx, &st, t);
            });
            break;
          case LivermoreLoop::LinearRecurrence:
            machine.spawnThread(nd, [&st, t](core::ThreadCtx &ctx) {
                return linearRecurrenceThread(ctx, &st, t);
            });
            break;
        }
    }

    LivermoreOutput out;
    out.result.completed = machine.run(8'000'000'000ull);
    out.result.cycles = machine.engine().now();
    out.result.operations = params.passes;
    captureChannelStats(out.result, machine);

    if (collect) {
        switch (loop) {
          case LivermoreLoop::Iccg:
            for (std::uint64_t i = 0; i < iccgArraySize(params.n); ++i)
                out.values.push_back(
                    machine.memory().read64(st.xAddr + i * 8));
            break;
          case LivermoreLoop::InnerProduct:
            out.values.push_back(st.q);
            break;
          case LivermoreLoop::LinearRecurrence:
            for (std::uint64_t i = 0; i < n; ++i)
                out.values.push_back(
                    machine.memory().read64(st.xAddr + i * 8));
            break;
        }
    }
    return out;
}

} // namespace

KernelResult
runLivermore(LivermoreLoop loop, core::ConfigKind kind,
             std::uint32_t cores, const LivermoreParams &params,
             core::Variant variant)
{
    core::Machine machine(
        core::MachineConfig::make(kind, cores, variant));
    return runImplOn(loop, machine, params, false).result;
}

KernelResult
runLivermoreOn(LivermoreLoop loop, core::Machine &machine,
               const LivermoreParams &params)
{
    return runImplOn(loop, machine, params, false).result;
}

LivermoreOutput
runLivermoreVerified(LivermoreLoop loop, core::ConfigKind kind,
                     std::uint32_t cores, const LivermoreParams &params)
{
    core::Machine machine(
        core::MachineConfig::make(kind, cores, core::Variant::Default));
    return runImplOn(loop, machine, params, true);
}

} // namespace wisync::workloads
