/**
 * @file
 * Synthetic PARSEC + SPLASH-2 suite (paper §6, Fig. 10, Table 5).
 *
 * Substitution (see DESIGN.md): the paper runs the real suites on
 * Multi2Sim; we model each application as a parameterized phase loop
 * whose synchronization signature (barrier rate, lock rate and
 * contention, critical-section length, shared-data traffic, load
 * imbalance) is calibrated to the application's published behaviour.
 * The synthetic app exercises exactly the code paths the paper
 * measures — cached compute + coherence traffic + the configuration's
 * lock/barrier library — so the *relative* speedups across the four
 * configurations preserve the paper's shape.
 *
 * dedup and fluidanimate declare lock arrays larger than the 16 KB BM;
 * as in §6, the first 16 KB of locks live in the BM and the rest fall
 * back to plain memory.
 */

#ifndef WISYNC_WORKLOADS_APPS_HH
#define WISYNC_WORKLOADS_APPS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "workloads/kernel_result.hh"

namespace wisync::core {
class Machine;
}

namespace wisync::workloads {

/** Synchronization signature of one application. */
struct AppProfile
{
    std::string name;
    std::string suite; // "PARSEC" or "SPLASH-2"
    /** Outer iterations, one barrier each. */
    std::uint32_t phases;
    /** Instructions of private compute per thread per phase. */
    std::uint32_t computeInstr;
    /** Load imbalance: uniform jitter of +/- this percent. */
    std::uint32_t jitterPct;
    /** Lock acquisitions per thread per phase. */
    std::uint32_t locksPerPhase;
    /** Instructions held inside each critical section. */
    std::uint32_t lockHoldInstr;
    /** Size of the lock array (contention is inversely related). */
    std::uint32_t numLocks;
    /** Shared-line touches per thread per phase (coherence traffic). */
    std::uint32_t sharedLines;
};

/** The 26 applications of Table 3 / Fig. 10, in figure order. */
const std::vector<AppProfile> &appSuite();

/** Look up a profile by name (fatal if unknown). */
const AppProfile &appByName(const std::string &name);

/** Run one app with one thread per core; operations = phases. */
KernelResult runApp(const AppProfile &profile, core::ConfigKind kind,
                    std::uint32_t cores,
                    core::Variant variant = core::Variant::Default);

/** As runApp but on a caller-prepared (fresh or reset) machine. */
KernelResult runAppOn(const AppProfile &profile, core::Machine &machine);

} // namespace wisync::workloads

#endif // WISYNC_WORKLOADS_APPS_HH
