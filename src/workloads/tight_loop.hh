/**
 * @file
 * The TightLoop barrier kernel (paper §6, Fig. 7).
 *
 * "Each thread adds-up the contents of a 50-element array into a local
 * variable and then synchronizes in a barrier. The process repeats in
 * a loop." A very demanding barrier environment: the compute phase is
 * ~100 cycles, so barrier cost dominates.
 */

#ifndef WISYNC_WORKLOADS_TIGHT_LOOP_HH
#define WISYNC_WORKLOADS_TIGHT_LOOP_HH

#include <cstdint>

#include "core/machine_config.hh"
#include "workloads/kernel_result.hh"

namespace wisync::core {
class Machine;
}

namespace wisync::workloads {

/** TightLoop parameters. */
struct TightLoopParams
{
    /** Barrier iterations measured. */
    std::uint32_t iterations = 20;
    /** Elements summed per thread per iteration (paper: 50). */
    std::uint32_t arrayElems = 50;
    /** Abort horizon (degenerate MAC policies can livelock). */
    sim::Cycle runLimit = 4'000'000'000ull;

    /** Field-wise equality (service WorkloadSpec dedupe). */
    bool operator==(const TightLoopParams &) const = default;

    /** Relative length estimate for shard cost-planning: work per
     *  thread scales with iterations x per-iteration compute. Not a
     *  cycle prediction — only ratios between points matter. */
    std::uint64_t
    lengthEstimate() const
    {
        return std::uint64_t(iterations) * (std::uint64_t(arrayElems) + 1);
    }
};

/**
 * Run TightLoop with one thread per core.
 * @return cycles, with operations = iterations (use cycles/operations
 *         for the paper's cycles-per-iteration metric).
 */
KernelResult runTightLoop(core::ConfigKind kind, std::uint32_t cores,
                          const TightLoopParams &params = {},
                          core::Variant variant = core::Variant::Default);

/** As runTightLoop but with a fully custom machine config (used by
 *  the MAC-backoff ablation bench). */
KernelResult runTightLoopCfg(const core::MachineConfig &cfg,
                             const TightLoopParams &params = {});

/**
 * As runTightLoopCfg but on a caller-prepared machine (freshly built
 * or reset — see harness::SweepHarness); one thread per core.
 */
KernelResult runTightLoopOn(core::Machine &machine,
                            const TightLoopParams &params = {});

} // namespace wisync::workloads

#endif // WISYNC_WORKLOADS_TIGHT_LOOP_HH
