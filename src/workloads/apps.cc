#include "workloads/apps.hh"

#include <memory>
#include <stdexcept>

#include "core/machine.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sync/factory.hh"
#include "sync/baseline_sync.hh"
#include "sync/wisync_sync.hh"

namespace wisync::workloads {

const std::vector<AppProfile> &
appSuite()
{
    // Signatures calibrated to each application's published
    // synchronization behaviour (see header / EXPERIMENTS.md):
    // barrier-storm apps (streamcluster, ocean) have tiny phases;
    // lock-bound apps (raytrace, radiosity) hammer small lock sets;
    // most of the suites synchronize rarely.
    //      name          suite      phases cmpInstr jit lk/ph hold #lk shr
    static const std::vector<AppProfile> suite = {
        {"blackscholes", "PARSEC",     5, 300000, 10,  0,   0,    1,  0},
        {"bodytrack",    "PARSEC",    12,  40000, 20,  2, 200,   32,  8},
        {"canneal",      "PARSEC",     8,  60000, 30,  0,   0,    1, 16},
        {"dedup",        "PARSEC",    10,  20000, 30, 10, 300, 3000,  8},
        {"facesim",      "PARSEC",    10,  50000, 20,  1, 200,   16,  8},
        {"ferret",       "PARSEC",     8,  80000, 25,  2, 400,   64,  4},
        {"fluidanimate", "PARSEC",    15,  30000, 20,  6, 100, 4000,  8},
        {"freqmine",     "PARSEC",     8,  70000, 20,  1, 300,   32,  4},
        {"streamcluster","PARSEC",    80,   1400,  5,  0,   0,    1,  2},
        {"swaptions",    "PARSEC",     4, 400000, 10,  0,   0,    1,  0},
        {"vips",         "PARSEC",     6, 150000, 15,  1, 200,   16,  2},
        {"x264",         "PARSEC",     8, 100000, 20,  1, 150,   32,  4},
        {"barnes",       "SPLASH-2",  10,  30000, 25,  4, 250,   64, 16},
        {"cholesky",     "SPLASH-2",  12,  25000, 30,  3, 200,   32,  8},
        {"fft",          "SPLASH-2",  10,  40000, 10,  0,   0,    1, 16},
        {"fmm",          "SPLASH-2",  10,  35000, 25,  3, 250,   64, 12},
        {"lu-c",         "SPLASH-2",  15,  30000, 15,  0,   0,    1,  8},
        {"lu-nc",        "SPLASH-2",  15,  25000, 20,  0,   0,    1, 16},
        {"ocean-c",      "SPLASH-2",  50,   3000, 10,  0,   0,    1,  8},
        {"ocean-nc",     "SPLASH-2",  50,   3600, 12,  0,   0,    1, 10},
        {"radiosity",    "SPLASH-2",  12,  60000, 30,  8, 200,   10,  8},
        {"radix",        "SPLASH-2",  12,  30000, 10,  0,   0,    1, 12},
        {"raytrace",     "SPLASH-2",  10,  60000, 30, 12, 150,    8,  4},
        {"volrend",      "SPLASH-2",  12,  20000, 25,  4, 150,   16,  8},
        {"water-ns",     "SPLASH-2",  20,  40000, 15,  8, 200,   12,  8},
        {"water-sp",     "SPLASH-2",  12,  40000, 15,  2, 200,   32,  8},
    };
    return suite;
}

const AppProfile &
appByName(const std::string &name)
{
    for (const auto &app : appSuite())
        if (app.name == name)
            return app;
    WISYNC_FATAL("unknown application '%s'", name.c_str());
}

namespace {

struct AppState
{
    core::Machine *machine = nullptr;
    const AppProfile *profile = nullptr;
    sync::Barrier *barrier = nullptr;
    std::vector<std::unique_ptr<sync::Lock>> locks;
    sim::Addr sharedBase = 0;
    std::uint32_t sharedLineCount = 0;
};

coro::Task<void>
appThread(core::ThreadCtx &ctx, AppState *st, std::uint32_t t)
{
    const AppProfile &p = *st->profile;
    sim::Rng rng(st->machine->config().seed ^ (0x9E37ull * (t + 1)));
    for (std::uint32_t phase = 0; phase < p.phases; ++phase) {
        // Private compute with load imbalance.
        std::uint64_t instr = p.computeInstr;
        if (p.jitterPct > 0) {
            const std::uint64_t span = instr * p.jitterPct / 100;
            instr = instr - span + rng.below(2 * span + 1);
        }
        co_await ctx.compute(instr);

        // Critical sections on a randomly chosen lock.
        for (std::uint32_t l = 0; l < p.locksPerPhase; ++l) {
            const auto idx = rng.below(st->locks.size());
            sync::Lock &lk = *st->locks[idx];
            co_await lk.acquire(ctx);
            // The protected update is modelled as pipeline work; the
            // lock words themselves carry the coherence traffic.
            co_await ctx.compute(p.lockHoldInstr);
            co_await lk.release(ctx);
        }

        // Unprotected shared-data traffic (coherence misses).
        for (std::uint32_t s = 0; s < p.sharedLines; ++s) {
            const sim::Addr line =
                st->sharedBase + rng.below(st->sharedLineCount) * 64;
            if (rng.chance(0.3))
                co_await ctx.store(line, t);
            else
                co_await ctx.load(line);
        }

        co_await st->barrier->wait(ctx);
    }
}

} // namespace

KernelResult
runApp(const AppProfile &profile, core::ConfigKind kind,
       std::uint32_t cores, core::Variant variant)
{
    core::Machine machine(
        core::MachineConfig::make(kind, cores, variant));
    return runAppOn(profile, machine);
}

KernelResult
runAppOn(const AppProfile &profile, core::Machine &machine)
{
    const std::uint32_t cores = machine.config().numCores;
    sync::SyncFactory factory(machine);

    AppState st;
    st.machine = &machine;
    st.profile = &profile;
    st.sharedLineCount = std::max(64u, profile.sharedLines * 8);
    st.sharedBase = machine.allocMem(st.sharedLineCount * 64ull, 64);

    std::vector<sim::NodeId> nodes;
    for (sim::NodeId n = 0; n < cores; ++n)
        nodes.push_back(n);
    auto barrier = factory.makeBarrier(nodes);
    st.barrier = barrier.get();

    // Lock array: on WiSync configs each lock takes one BM word until
    // the BM is exhausted, then falls back to plain memory (§6: dedup
    // and fluidanimate overflow the 16 KB BM).
    const std::uint32_t nlocks = std::max(1u, profile.numLocks);
    st.locks.reserve(nlocks);
    for (std::uint32_t l = 0; l < nlocks; ++l) {
        if (machine.config().hasWireless()) {
            try {
                st.locks.push_back(
                    std::make_unique<sync::BmLock>(machine, 1));
                continue;
            } catch (const std::runtime_error &) {
                // BM exhausted: plain-memory lock.
            }
        }
        if (machine.config().kind == core::ConfigKind::BaselinePlus)
            st.locks.push_back(std::make_unique<sync::McsLock>(machine));
        else
            st.locks.push_back(std::make_unique<sync::TasLock>(machine));
    }

    for (sim::NodeId n = 0; n < cores; ++n) {
        const std::uint32_t t = n;
        machine.spawnThread(n, [&st, t](core::ThreadCtx &ctx) {
            return appThread(ctx, &st, t);
        });
    }

    KernelResult result;
    result.completed = machine.run(8'000'000'000ull);
    result.cycles = machine.engine().now();
    result.operations = profile.phases;
    captureChannelStats(result, machine);
    return result;
}

} // namespace wisync::workloads
