#include "workloads/tight_loop.hh"

#include <vector>

#include "core/machine.hh"
#include "sync/factory.hh"

namespace wisync::workloads {

namespace {

coro::Task<void>
tightLoopThread(core::ThreadCtx &ctx, sync::Barrier *barrier,
                sim::Addr array, const TightLoopParams *params)
{
    std::uint64_t local = 0;
    for (std::uint32_t it = 0; it < params->iterations; ++it) {
        // Sum the private 50-element array: sequential loads (L1 hits
        // after the first iteration) plus one add per element.
        for (std::uint32_t e = 0; e < params->arrayElems; ++e)
            local += co_await ctx.load(array + e * 8);
        co_await ctx.compute(params->arrayElems); // the adds
        co_await barrier->wait(ctx);
    }
    (void)local;
}

} // namespace

KernelResult
runTightLoop(core::ConfigKind kind, std::uint32_t cores,
             const TightLoopParams &params, core::Variant variant)
{
    return runTightLoopCfg(core::MachineConfig::make(kind, cores, variant),
                           params);
}

KernelResult
runTightLoopCfg(const core::MachineConfig &cfg,
                const TightLoopParams &params)
{
    core::Machine machine(cfg);
    return runTightLoopOn(machine, params);
}

KernelResult
runTightLoopOn(core::Machine &machine, const TightLoopParams &params)
{
    const std::uint32_t cores = machine.config().numCores;
    sync::SyncFactory factory(machine);

    std::vector<sim::NodeId> nodes;
    nodes.reserve(cores);
    for (sim::NodeId n = 0; n < cores; ++n)
        nodes.push_back(n);
    auto barrier = factory.makeBarrier(nodes);

    for (sim::NodeId n = 0; n < cores; ++n) {
        // A private array per thread, in its own region of memory.
        const sim::Addr array =
            machine.allocMem(params.arrayElems * 8, 64);
        machine.spawnThread(n, [&barrier, array,
                                &params](core::ThreadCtx &ctx) {
            return tightLoopThread(ctx, barrier.get(), array, &params);
        });
    }

    KernelResult result;
    result.completed = machine.run(params.runLimit);
    result.cycles = machine.engine().now();
    result.operations = params.iterations;
    captureChannelStats(result, machine);
    return result;
}

} // namespace wisync::workloads
