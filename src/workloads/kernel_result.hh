/**
 * @file
 * Common result record for kernel/application runs.
 */

#ifndef WISYNC_WORKLOADS_KERNEL_RESULT_HH
#define WISYNC_WORKLOADS_KERNEL_RESULT_HH

#include <cstdint>

#include "sim/types.hh"

namespace wisync::core {
class Machine;
}

namespace wisync::workloads {

/** Outcome of one simulated workload run. */
struct KernelResult
{
    /** Total simulated execution time. */
    sim::Cycle cycles = 0;
    /** True if every thread finished before the run limit. */
    bool completed = false;
    /** Operations completed (kernel-specific: iterations, CASes...). */
    std::uint64_t operations = 0;
    /** Data-channel busy fraction (0 for wired configs). */
    double dataChannelUtilisation = 0.0;
    /** Wireless collisions observed (0 for wired configs). */
    std::uint64_t collisions = 0;

    // MAC-protocol telemetry (all 0 for wired configs; see
    // wireless::MacStats for the per-counter semantics).
    /** Cycles senders spent in collision backoff. */
    std::uint64_t macBackoffCycles = 0;
    /** Acquires that queued for the token (token/adaptive MACs). */
    std::uint64_t macTokenWaits = 0;
    /** Ring hops the token travelled (token-family MACs). */
    std::uint64_t macTokenRotations = 0;
    /** BRS <-> token transitions (adaptive MAC). */
    std::uint64_t macModeSwitches = 0;

    // Lossy-channel reliability telemetry (all 0 at lossPct = 0 with
    // no SNR-derived loss, which is what keeps these fields from
    // perturbing the loss0 identity gate). Simulated observables:
    // included in bitIdentical().
    /** Broadcasts corrupted by the channel (no node delivered). */
    std::uint64_t wirelessDrops = 0;
    /** Ack windows that expired. */
    std::uint64_t macAckTimeouts = 0;
    /** Retransmissions performed by the reliability layer. */
    std::uint64_t macRetransmits = 0;
    /** Sends abandoned after maxRetries (typed delivery failures). */
    std::uint64_t macGiveups = 0;

    // Multi-chip telemetry (all 0 on single-chip machines, which is
    // what keeps these fields from perturbing the numChips=1 identity
    // gate). Simulated observables: included in bitIdentical().
    /** Frames carried by the inter-chip bridge. */
    std::uint64_t bridgeFrames = 0;
    /** Cycles the bridge serializer was busy. */
    std::uint64_t bridgeBusyCycles = 0;
    /** RMWs aborted because a bridged update had not landed yet. */
    std::uint64_t staleRmwAborts = 0;

    // Lossy-bridge reliability telemetry (all 0 on an ideal bridge —
    // the multi-chip default — which keeps these fields from
    // perturbing the ideal-bridge identity gate). Simulated
    // observables: included in bitIdentical().
    /** Bridge serializations corrupted by the lossy link. */
    std::uint64_t bridgeDrops = 0;
    /** Bridge ack windows that expired (one per drop). */
    std::uint64_t bridgeAckTimeouts = 0;
    /** Bridge retransmissions within a frame's retry budget. */
    std::uint64_t bridgeRetransmits = 0;
    /** Bridge retry budgets exhausted (each triggers a re-issue, so
     *  no global BM update is ever lost). */
    std::uint64_t bridgeGiveups = 0;

    // Host-side fast-path telemetry, aggregated over the mesh, memory
    // and wireless layers. Deliberately NOT part of bitIdentical():
    // the fast paths are cycle-exact but these counters describe which
    // host-time route served each message, which legitimately differs
    // between a fastpath-on and a (WISYNC_NO_FASTPATH=1) fastpath-off
    // run of the *same* simulation.
    /** Messages/accesses served by an uncontended fast path. */
    std::uint64_t fastpathHits = 0;
    /** Fast-path attempts that fell back to the coroutine path. */
    std::uint64_t fastpathFallbacks = 0;

    double
    opsPerKiloCycle() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(operations) * 1000.0 /
                                 static_cast<double>(cycles);
    }
};

/**
 * Fill the wireless-channel columns (utilisation, collisions), the
 * MAC-protocol telemetry, the bridge counters and the fast-path
 * counters from @p machine. The wireless columns are a no-op on wired
 * configs, where the zero-initialized fields are already correct; the
 * fast-path counters aggregate mesh + memory (+ wireless) on every
 * config. On a multi-chip machine the channel columns sum over every
 * frequency-plan channel (utilisation is the mean busy fraction).
 * Every run*On workload epilogue calls this instead of reading the
 * channel by hand.
 */
void captureChannelStats(KernelResult &result, core::Machine &machine);

/**
 * Field-by-field equality, with the utilisation double compared by
 * bit pattern — the determinism contract the sweep benches and tests
 * assert between serial and parallel runs. The fastpath* counters are
 * host-route telemetry, not simulated observables, and are excluded
 * (see their declaration) — which is also what lets the fastpath-on
 * vs -off identity gate use this same predicate.
 */
bool bitIdentical(const KernelResult &a, const KernelResult &b);

} // namespace wisync::workloads

#endif // WISYNC_WORKLOADS_KERNEL_RESULT_HH
