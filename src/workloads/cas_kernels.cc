#include "workloads/cas_kernels.hh"

#include <vector>

#include "core/machine.hh"
#include "sim/logging.hh"
#include "sync/wisync_sync.hh"

namespace wisync::workloads {

namespace {

/**
 * A shared word that is CASed either in the BM (WiSync configs,
 * Fig. 4(b) protocol with AFB retry) or in coherent memory.
 */
struct SharedWord
{
    void
    init(core::Machine &m, sim::Pid pid)
    {
        if (m.config().hasWireless()) {
            bm = true;
            bmAddr = sync::setupBmWords(m, 1, pid);
        } else {
            bm = false;
            memAddr = m.allocMem(64, 64);
        }
    }

    coro::Task<std::uint64_t>
    load(core::ThreadCtx &ctx)
    {
        if (bm)
            co_return co_await ctx.bmLoad(bmAddr);
        co_return co_await ctx.load(memAddr);
    }

    /**
     * One CAS attempt; true on success. On WiSync an atomicity
     * failure (AFB) reads as failure and the caller retries, exactly
     * as the software protocol prescribes.
     */
    coro::Task<bool>
    cas(core::ThreadCtx &ctx, std::uint64_t expected, std::uint64_t desired)
    {
        if (bm) {
            const auto r = co_await ctx.bmCas(bmAddr, expected, desired);
            co_return r.succeeded();
        }
        const auto r = co_await ctx.cas(memAddr, expected, desired);
        co_return r.success;
    }

    bool bm = false;
    sim::BmAddr bmAddr = 0;
    sim::Addr memAddr = 0;
};

struct CasState
{
    core::Machine *machine = nullptr;
    CasKernelParams params;
    SharedWord head;
    SharedWord tail; // FIFO only
    std::uint64_t successes = 0;
};

/** Next-pointer of a node (nodes live in regular coherent memory). */
coro::Task<void>
linkNode(core::ThreadCtx &ctx, sim::Addr node, std::uint64_t next)
{
    co_await ctx.store(node, next);
}

coro::Task<void>
addThread(core::ThreadCtx &ctx, CasState *st, sim::Addr pool,
          std::uint32_t pool_nodes)
{
    auto &eng = ctx.machine().engine();
    std::uint32_t next_node = 0;
    while (eng.now() < st->params.duration) {
        co_await ctx.compute(st->params.criticalSectionInstr);
        // Take a node from the private pool and push it: CAS on head.
        const sim::Addr node = pool + (next_node % pool_nodes) * 64;
        ++next_node;
        for (;;) {
            const std::uint64_t old = co_await st->head.load(ctx);
            co_await linkNode(ctx, node, old);
            if (co_await st->head.cas(ctx, old, node)) {
                ++st->successes;
                break;
            }
            if (eng.now() >= st->params.duration)
                break;
        }
    }
}

coro::Task<void>
lifoThread(core::ThreadCtx &ctx, CasState *st, sim::Addr pool,
           std::uint32_t pool_nodes)
{
    auto &eng = ctx.machine().engine();
    std::uint32_t next_node = 0;
    bool push = true;
    while (eng.now() < st->params.duration) {
        co_await ctx.compute(st->params.criticalSectionInstr);
        for (;;) {
            const std::uint64_t old = co_await st->head.load(ctx);
            if (push || old == 0) {
                const sim::Addr node =
                    pool + (next_node % pool_nodes) * 64;
                ++next_node;
                co_await linkNode(ctx, node, old);
                if (co_await st->head.cas(ctx, old, node)) {
                    ++st->successes;
                    break;
                }
            } else {
                const std::uint64_t next = co_await ctx.load(old);
                if (co_await st->head.cas(ctx, old, next)) {
                    ++st->successes;
                    break;
                }
            }
            if (eng.now() >= st->params.duration)
                break;
        }
        push = !push;
    }
}

coro::Task<void>
fifoThread(core::ThreadCtx &ctx, CasState *st, sim::Addr pool,
           std::uint32_t pool_nodes)
{
    auto &eng = ctx.machine().engine();
    std::uint32_t next_node = 0;
    bool enqueue = true;
    while (eng.now() < st->params.duration) {
        co_await ctx.compute(st->params.criticalSectionInstr);
        for (;;) {
            if (enqueue) {
                const sim::Addr node =
                    pool + (next_node % pool_nodes) * 64;
                ++next_node;
                co_await linkNode(ctx, node, 0);
                const std::uint64_t old = co_await st->tail.load(ctx);
                if (co_await st->tail.cas(ctx, old, node)) {
                    // Link the predecessor (plain store; see header —
                    // simplified Michael-Scott without helping).
                    if (old != 0)
                        co_await linkNode(ctx, old, node);
                    ++st->successes;
                    break;
                }
            } else {
                // Dequeue past the dummy: the queue is empty when the
                // head node has no successor (avoids touching the
                // contended tail word on the consumer side).
                const std::uint64_t old = co_await st->head.load(ctx);
                if (old == 0) {
                    enqueue = true;
                    continue;
                }
                const std::uint64_t next = co_await ctx.load(old);
                if (next == 0) {
                    enqueue = true; // empty: produce instead
                    continue;
                }
                if (co_await st->head.cas(ctx, old, next)) {
                    ++st->successes;
                    break;
                }
            }
            if (eng.now() >= st->params.duration)
                break;
        }
        enqueue = !enqueue;
    }
}

} // namespace

KernelResult
runCasKernel(CasKernel kernel, core::ConfigKind kind, std::uint32_t cores,
             const CasKernelParams &params)
{
    core::Machine machine(core::MachineConfig::make(kind, cores));
    return runCasKernelOn(kernel, machine, params);
}

KernelResult
runCasKernelOn(CasKernel kernel, core::Machine &machine,
               const CasKernelParams &params)
{
    const std::uint32_t cores = machine.config().numCores;
    CasState st;
    st.machine = &machine;
    st.params = params;
    st.head.init(machine, 1);
    if (kernel == CasKernel::Fifo) {
        st.tail.init(machine, 1);
        // Seed the queue with one dummy node so head/tail are nonzero.
        const sim::Addr dummy = machine.allocMem(64, 64);
        machine.memory().write64(dummy, 0);
        if (st.head.bm) {
            machine.bm()->storeArray().writeAll(st.head.bmAddr, dummy);
            machine.bm()->storeArray().writeAll(st.tail.bmAddr, dummy);
        } else {
            machine.memory().write64(st.head.memAddr, dummy);
            machine.memory().write64(st.tail.memAddr, dummy);
        }
    }

    constexpr std::uint32_t kPoolNodes = 64;
    for (sim::NodeId n = 0; n < cores; ++n) {
        const sim::Addr pool = machine.allocMem(kPoolNodes * 64, 64);
        switch (kernel) {
          case CasKernel::Add:
            machine.spawnThread(n, [&st, pool](core::ThreadCtx &ctx) {
                return addThread(ctx, &st, pool, kPoolNodes);
            });
            break;
          case CasKernel::Lifo:
            machine.spawnThread(n, [&st, pool](core::ThreadCtx &ctx) {
                return lifoThread(ctx, &st, pool, kPoolNodes);
            });
            break;
          case CasKernel::Fifo:
            machine.spawnThread(n, [&st, pool](core::ThreadCtx &ctx) {
                return fifoThread(ctx, &st, pool, kPoolNodes);
            });
            break;
        }
    }

    KernelResult result;
    result.completed = machine.run(params.duration * 100);
    result.cycles = params.duration;
    result.operations = st.successes;
    captureChannelStats(result, machine);
    return result;
}

} // namespace wisync::workloads
