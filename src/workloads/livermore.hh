/**
 * @file
 * Livermore loops 2, 3 and 6 (paper §6, Fig. 8).
 *
 * Following Sampson et al. [37], these three are the synchronization-
 * representative Livermore kernels:
 *
 *   Loop 2 — ICCG (incomplete Cholesky conjugate gradient): a
 *            log2(n)-level elimination tree, one barrier per level,
 *            level work halving each time.
 *   Loop 3 — inner product: fully parallel partial sums, one global
 *            reduction + barrier.
 *   Loop 6 — general linear recurrence: w[i] depends on all w[k<i];
 *            each i is a parallel partial-sum + reduction + barrier,
 *            so ~n barriers with growing work.
 *
 * Modelling note: timing charges one coherent load/store per touched
 * 64 B line plus per-element compute; the element-level arithmetic is
 * carried in the functional store and verified against the serial
 * reference in tests (same functional/timing split as the rest of the
 * simulator).
 */

#ifndef WISYNC_WORKLOADS_LIVERMORE_HH
#define WISYNC_WORKLOADS_LIVERMORE_HH

#include <cstdint>
#include <vector>

#include "core/machine_config.hh"
#include "workloads/kernel_result.hh"

namespace wisync::core {
class Machine;
}

namespace wisync::workloads {

/** Which Livermore kernel. */
enum class LivermoreLoop
{
    Iccg = 2,
    InnerProduct = 3,
    LinearRecurrence = 6,
};

/** Parameters for a Livermore run. */
struct LivermoreParams
{
    /** Vector length n (paper sweeps 16..16384; 16..2048 for loop 6). */
    std::uint32_t n = 256;
    /** Kernel repetitions (first pass warms the caches). */
    std::uint32_t passes = 2;
};

/** Run the kernel with one thread per core; operations = passes. */
KernelResult runLivermore(LivermoreLoop loop, core::ConfigKind kind,
                          std::uint32_t cores,
                          const LivermoreParams &params = {},
                          core::Variant variant =
                              core::Variant::Default);

/** As runLivermore but on a caller-prepared (fresh or reset) machine. */
KernelResult runLivermoreOn(LivermoreLoop loop, core::Machine &machine,
                            const LivermoreParams &params = {});

/** Serial references used by the tests. */
std::vector<std::uint64_t> iccgReference(std::vector<std::uint64_t> x,
                                         const std::vector<std::uint64_t> &v,
                                         std::uint32_t n);
std::uint64_t innerProductReference(const std::vector<std::uint64_t> &z,
                                    const std::vector<std::uint64_t> &x);
/** b is row-major by i: element (i, k) at b[i*n + k]. */
std::vector<std::uint64_t>
linearRecurrenceReference(std::vector<std::uint64_t> w,
                          const std::vector<std::uint64_t> &b,
                          std::uint32_t n);

/** Deterministic input element (i-th value of stream s). */
std::uint64_t livermoreInput(std::uint32_t s, std::uint32_t i);

/** Words needed for the padded ICCG x/v arrays. */
std::uint64_t iccgArraySize(std::uint32_t n);

/**
 * Functional outputs of the last simulated pass, for verification
 * (read back from the machine's functional memory by runLivermore
 * when params.verify is set via this overload).
 */
struct LivermoreOutput
{
    KernelResult result;
    std::vector<std::uint64_t> values; // x (loop 2), {q} (3), w (6)
};

LivermoreOutput runLivermoreVerified(LivermoreLoop loop,
                                     core::ConfigKind kind,
                                     std::uint32_t cores,
                                     const LivermoreParams &params = {});

} // namespace wisync::workloads

#endif // WISYNC_WORKLOADS_LIVERMORE_HH
