#include "workloads/kernel_result.hh"

#include <bit>

#include "core/machine.hh"

namespace wisync::workloads {

void
captureChannelStats(KernelResult &result, core::Machine &machine)
{
    const auto &mesh = machine.mesh().stats();
    const auto &mem = machine.mem().stats();
    result.fastpathHits =
        mesh.fastpathHits.value() + mem.fastpathHits.value();
    result.fastpathFallbacks =
        mesh.fastpathFallbacks.value() + mem.fastpathFallbacks.value();
    if (bm::BmSystem *bm = machine.bm()) {
        // Single-channel machines read channel 0 directly (the exact
        // pre-multichip expressions); multi-channel machines sum over
        // every frequency-plan channel and report the mean busy
        // fraction.
        const std::uint32_t channels = bm->channelCount();
        double utilisation = 0.0;
        for (std::uint32_t ch = 0; ch < channels; ++ch) {
            wireless::DataChannel &channel = bm->dataChannel(ch);
            utilisation += channel.utilisation();
            result.collisions += channel.stats().collisions.value();
            result.fastpathHits += channel.stats().fastpathHits.value();
            result.fastpathFallbacks +=
                channel.stats().fastpathFallbacks.value();
            result.wirelessDrops += channel.stats().drops.value();
            const wireless::MacStats &mac = bm->macProtocol(ch).stats();
            result.macBackoffCycles += mac.backoffCycles.value();
            result.macTokenWaits += mac.tokenWaits.value();
            result.macTokenRotations += mac.tokenRotations.value();
            result.macModeSwitches += mac.modeSwitches.value();
            result.macAckTimeouts += mac.ackTimeouts.value();
            result.macRetransmits += mac.retransmits.value();
            result.macGiveups += mac.giveUps.value();
        }
        result.dataChannelUtilisation =
            channels == 1 ? utilisation
                          : utilisation / static_cast<double>(channels);
        if (const noc::ChipBridge *bridge = bm->bridge()) {
            result.bridgeFrames = bridge->stats().frames.value();
            result.bridgeBusyCycles = bridge->stats().busyCycles.value();
            result.bridgeDrops = bridge->stats().drops.value();
            result.bridgeAckTimeouts = bridge->stats().ackTimeouts.value();
            result.bridgeRetransmits =
                bridge->stats().retransmits.value();
            result.bridgeGiveups = bridge->stats().giveUps.value();
        }
        result.staleRmwAborts = bm->stats().staleRmwAborts.value();
    }
}

bool
bitIdentical(const KernelResult &a, const KernelResult &b)
{
    return a.cycles == b.cycles && a.completed == b.completed &&
           a.operations == b.operations &&
           std::bit_cast<std::uint64_t>(a.dataChannelUtilisation) ==
               std::bit_cast<std::uint64_t>(b.dataChannelUtilisation) &&
           a.collisions == b.collisions &&
           a.macBackoffCycles == b.macBackoffCycles &&
           a.macTokenWaits == b.macTokenWaits &&
           a.macTokenRotations == b.macTokenRotations &&
           a.macModeSwitches == b.macModeSwitches &&
           a.wirelessDrops == b.wirelessDrops &&
           a.macAckTimeouts == b.macAckTimeouts &&
           a.macRetransmits == b.macRetransmits &&
           a.macGiveups == b.macGiveups &&
           a.bridgeFrames == b.bridgeFrames &&
           a.bridgeBusyCycles == b.bridgeBusyCycles &&
           a.staleRmwAborts == b.staleRmwAborts &&
           a.bridgeDrops == b.bridgeDrops &&
           a.bridgeAckTimeouts == b.bridgeAckTimeouts &&
           a.bridgeRetransmits == b.bridgeRetransmits &&
           a.bridgeGiveups == b.bridgeGiveups;
}

} // namespace wisync::workloads
