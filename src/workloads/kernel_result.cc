#include "workloads/kernel_result.hh"

#include "core/machine.hh"

namespace wisync::workloads {

void
captureChannelStats(KernelResult &result, core::Machine &machine)
{
    if (bm::BmSystem *bm = machine.bm()) {
        result.dataChannelUtilisation = bm->dataChannel().utilisation();
        result.collisions = bm->dataChannel().stats().collisions.value();
    }
}

} // namespace wisync::workloads
