#include "workloads/kernel_result.hh"

#include <bit>

#include "core/machine.hh"

namespace wisync::workloads {

void
captureChannelStats(KernelResult &result, core::Machine &machine)
{
    const auto &mesh = machine.mesh().stats();
    const auto &mem = machine.mem().stats();
    result.fastpathHits =
        mesh.fastpathHits.value() + mem.fastpathHits.value();
    result.fastpathFallbacks =
        mesh.fastpathFallbacks.value() + mem.fastpathFallbacks.value();
    if (bm::BmSystem *bm = machine.bm()) {
        result.dataChannelUtilisation = bm->dataChannel().utilisation();
        result.collisions = bm->dataChannel().stats().collisions.value();
        result.fastpathHits +=
            bm->dataChannel().stats().fastpathHits.value();
        result.fastpathFallbacks +=
            bm->dataChannel().stats().fastpathFallbacks.value();
        const wireless::MacStats &mac = bm->macProtocol().stats();
        result.macBackoffCycles = mac.backoffCycles.value();
        result.macTokenWaits = mac.tokenWaits.value();
        result.macTokenRotations = mac.tokenRotations.value();
        result.macModeSwitches = mac.modeSwitches.value();
        result.wirelessDrops = bm->dataChannel().stats().drops.value();
        result.macAckTimeouts = mac.ackTimeouts.value();
        result.macRetransmits = mac.retransmits.value();
        result.macGiveups = mac.giveUps.value();
    }
}

bool
bitIdentical(const KernelResult &a, const KernelResult &b)
{
    return a.cycles == b.cycles && a.completed == b.completed &&
           a.operations == b.operations &&
           std::bit_cast<std::uint64_t>(a.dataChannelUtilisation) ==
               std::bit_cast<std::uint64_t>(b.dataChannelUtilisation) &&
           a.collisions == b.collisions &&
           a.macBackoffCycles == b.macBackoffCycles &&
           a.macTokenWaits == b.macTokenWaits &&
           a.macTokenRotations == b.macTokenRotations &&
           a.macModeSwitches == b.macModeSwitches &&
           a.wirelessDrops == b.wirelessDrops &&
           a.macAckTimeouts == b.macAckTimeouts &&
           a.macRetransmits == b.macRetransmits &&
           a.macGiveups == b.macGiveups;
}

} // namespace wisync::workloads
