/**
 * @file
 * Lock-free CAS kernels (paper §6, Fig. 9).
 *
 * ADD:  threads insert nodes from private pools into a shared
 *       lock-free structure through a CAS on its head word.
 * LIFO: threads alternately push to / pop from a Treiber stack.
 * FIFO: threads alternately enqueue at the tail / dequeue at the head
 *       of a two-pointer lock-free queue.
 *
 * A configurable number of instructions executes between consecutive
 * operations (the paper's "critical section size"). The metric is
 * successful CASes per 1000 cycles. On WiSync the hot words (head /
 * tail) live in the BM and use the Fig. 4(b) CAS-with-AFB protocol;
 * on Baseline they are ordinary coherent memory words.
 */

#ifndef WISYNC_WORKLOADS_CAS_KERNELS_HH
#define WISYNC_WORKLOADS_CAS_KERNELS_HH

#include <cstdint>

#include "core/machine_config.hh"
#include "workloads/kernel_result.hh"

namespace wisync::core {
class Machine;
}

namespace wisync::workloads {

/** Which CAS kernel. */
enum class CasKernel
{
    Fifo,
    Lifo,
    Add,
};

/** CAS-kernel parameters. */
struct CasKernelParams
{
    /** Instructions executed between consecutive CAS operations. */
    std::uint32_t criticalSectionInstr = 1024;
    /** Simulated cycles to run (throughput window). */
    sim::Cycle duration = 300'000;

    /** Field-wise equality (service WorkloadSpec dedupe). */
    bool operator==(const CasKernelParams &) const = default;

    /** Relative length estimate for shard cost-planning: the kernel
     *  runs for a fixed simulated window, so the window is the
     *  length. Only ratios between points matter. */
    std::uint64_t lengthEstimate() const { return duration; }
};

/**
 * Run the kernel with one thread per core.
 * operations = successful CASes; opsPerKiloCycle() is Fig. 9's metric.
 */
KernelResult runCasKernel(CasKernel kernel, core::ConfigKind kind,
                          std::uint32_t cores,
                          const CasKernelParams &params = {});

/** As runCasKernel but on a caller-prepared (fresh or reset) machine. */
KernelResult runCasKernelOn(CasKernel kernel, core::Machine &machine,
                            const CasKernelParams &params = {});

} // namespace wisync::workloads

#endif // WISYNC_WORKLOADS_CAS_KERNELS_HH
