/**
 * @file
 * Open-addressed, event-pooling spin-watch table.
 *
 * MemSystem and BmStore both keep per-(node, location) VersionedEvents
 * for event-driven spinning, and both used to keep them in an
 * unordered_map<uint64_t, unique_ptr<VersionedEvent>> cleared on
 * Machine::reset — one heap allocation per watched location per sweep
 * point, the exact churn DirTable removed from the directory. At 1024
 * cores (the multichip sweeps) the watch maps are on the reset hot
 * loop, so they get the same treatment:
 *
 *   - a linear-probing hash table of (key -> VersionedEvent*) slots,
 *   - a pool of events with stable addresses *recycled* onto a free
 *     list by reset() instead of destroyed, so the next run re-acquires
 *     warm events without touching the allocator.
 *
 * Event pointers are stable for the life of the table: spinUntil
 * coroutines hold VersionedEvent& across awaits while later watches
 * rehash the slot array underneath them. reset() is only legal after
 * the engine destroyed any frames parked on the events (Machine::reset
 * resets the engine first).
 */

#ifndef WISYNC_CORO_WATCH_TABLE_HH
#define WISYNC_CORO_WATCH_TABLE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "coro/primitives.hh"

namespace wisync::coro {

/** Pooled key -> VersionedEvent map (see file comment). */
class WatchTable
{
  public:
    /** Allocation/recycling counters (monotonic over the table's life). */
    struct Stats
    {
        std::uint64_t allocated = 0; ///< events constructed (pool growth)
        std::uint64_t recycled = 0;  ///< events served from the free list
        std::uint64_t rehashes = 0;  ///< slot-array rebuilds
    };

    explicit WatchTable(sim::Engine &engine);

    WatchTable(const WatchTable &) = delete;
    WatchTable &operator=(const WatchTable &) = delete;
    WatchTable(WatchTable &&) = default;

    /**
     * The event for @p key, created (from the free list when possible)
     * if absent. The reference is stable until the table is destroyed.
     */
    VersionedEvent &operator[](std::uint64_t key);

    /** The event for @p key, or nullptr (raise paths never create). */
    VersionedEvent *find(std::uint64_t key);

    /**
     * Return every event to the free list and clear the map, keeping
     * the slot array and all event capacity for the next run.
     */
    void reset();

    std::size_t size() const { return size_; }
    std::size_t slotCount() const { return slots_.size(); }
    /** Events sitting in the free list right now. */
    std::size_t freeCount() const { return free_.size(); }
    const Stats &stats() const { return stats_; }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        VersionedEvent *event = nullptr; ///< null = empty
    };

    static std::size_t hashOf(std::uint64_t key);

    /** Probe for @p key; @return its slot, or the insertion slot. */
    std::size_t probe(std::uint64_t key) const;

    /** Rebuild the slot array with @p new_count slots. */
    void rehash(std::size_t new_count);

    sim::Engine &engine_;
    std::vector<Slot> slots_;
    /** Every event ever built: stable storage behind the slot array. */
    std::vector<std::unique_ptr<VersionedEvent>> pool_;
    std::vector<VersionedEvent *> free_;
    std::size_t size_ = 0;
    Stats stats_;
};

} // namespace wisync::coro

#endif // WISYNC_CORO_WATCH_TABLE_HH
