#include "coro/watch_table.hh"

#include "sim/logging.hh"

namespace wisync::coro {

namespace {

/** Initial slot count; a power of two (masked probing). */
constexpr std::size_t kInitialSlots = 64;

/** Occupancy ceiling, in tenths (no erase path -> no tombstones). */
constexpr std::size_t kMaxLoadTenths = 7;

} // namespace

WatchTable::WatchTable(sim::Engine &engine)
    : engine_(engine), slots_(kInitialSlots)
{}

std::size_t
WatchTable::hashOf(std::uint64_t key)
{
    // splitmix64 finalizer: keys pack (location << 16 | node), so the
    // low bits cluster by node and the rest by address locality —
    // identity hashing would chain badly under linear probing.
    std::uint64_t x = key;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
}

std::size_t
WatchTable::probe(std::uint64_t key) const
{
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hashOf(key) & mask;
    while (slots_[i].event != nullptr && slots_[i].key != key)
        i = (i + 1) & mask;
    return i;
}

VersionedEvent &
WatchTable::operator[](std::uint64_t key)
{
    std::size_t i = probe(key);
    if (slots_[i].event != nullptr)
        return *slots_[i].event;

    if ((size_ + 1) * 10 > slots_.size() * kMaxLoadTenths) {
        rehash(slots_.size() * 2);
        i = probe(key);
    }

    VersionedEvent *e;
    if (!free_.empty()) {
        e = free_.back();
        free_.pop_back();
        // Scrub on acquisition: a recycled event restarts at
        // generation zero with no waiters (the engine reset that
        // preceded our reset() destroyed any parked frames).
        e->reset();
        ++stats_.recycled;
    } else {
        pool_.push_back(std::make_unique<VersionedEvent>(engine_));
        e = pool_.back().get();
        ++stats_.allocated;
    }
    slots_[i].key = key;
    slots_[i].event = e;
    ++size_;
    return *e;
}

VersionedEvent *
WatchTable::find(std::uint64_t key)
{
    return slots_[probe(key)].event;
}

void
WatchTable::reset()
{
    for (Slot &s : slots_) {
        if (s.event != nullptr)
            free_.push_back(s.event);
        s.event = nullptr;
    }
    size_ = 0;
}

void
WatchTable::rehash(std::size_t new_count)
{
    WISYNC_ASSERT((new_count & (new_count - 1)) == 0,
                  "WatchTable slot count must stay a power of two");
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.assign(new_count, Slot{});
    ++stats_.rehashes;
    const std::size_t mask = new_count - 1;
    for (const Slot &s : old) {
        if (s.event == nullptr)
            continue;
        std::size_t i = hashOf(s.key) & mask;
        while (slots_[i].event != nullptr)
            i = (i + 1) & mask;
        slots_[i] = s;
    }
}

} // namespace wisync::coro
