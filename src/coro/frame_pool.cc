#include "coro/frame_pool.hh"

#include <cassert>
#include <cstring>
#include <new>

namespace wisync::coro {

namespace {

/**
 * Per-frame header. 16 bytes keeps the frame itself on the default
 * operator-new alignment; `cls` routes deallocation, and the magic
 * value guards against a foreign pointer reaching deallocate().
 */
struct Header
{
    std::uint32_t cls;
    std::uint32_t magic;
    std::uint64_t pad;
};

constexpr std::uint32_t kPooledMagic = 0x46724d50;   // "FrMP"
constexpr std::uint32_t kFallbackMagic = 0x46724d46; // "FrMF"
constexpr std::uint32_t kFallbackClass = 0xffffffffu;

static_assert(sizeof(Header) == 16);
static_assert(sizeof(Header) % FramePool::kAlign == 0,
              "the header must preserve frame alignment");

} // namespace

FramePool::~FramePool()
{
    // All engines (and hence all frames) are gone by the time the
    // thread-local pool dies; hand the arenas back.
    for (std::byte *c : chunks_)
        ::operator delete(c);
}

void *
FramePool::allocate(std::size_t bytes)
{
    const std::size_t total = bytes + sizeof(Header);
    if (total > kMaxPooled) {
        auto *raw = static_cast<std::byte *>(::operator new(total));
        const Header h{kFallbackClass, kFallbackMagic, 0};
        std::memcpy(raw, &h, sizeof(h));
        ++stats_.fallbackAllocs;
        return raw + sizeof(Header);
    }

    const std::size_t cls = classOf(total);
    std::byte *raw;
    if (free_[cls] != nullptr) {
        raw = reinterpret_cast<std::byte *>(free_[cls]);
        free_[cls] = free_[cls]->next;
        ++stats_.freelistReuses;
    } else {
        const std::size_t need = (cls + 1) * kGranule;
        if (bumpLeft_ < need) {
            // The chunk tail that cannot hold this class is abandoned
            // (bounded waste: < one max-size allocation per chunk).
            bump_ = static_cast<std::byte *>(::operator new(kChunkBytes));
            bumpLeft_ = kChunkBytes;
            chunks_.push_back(bump_);
            ++stats_.chunks;
        }
        raw = bump_;
        bump_ += need;
        bumpLeft_ -= need;
    }
    const Header h{static_cast<std::uint32_t>(cls), kPooledMagic, 0};
    std::memcpy(raw, &h, sizeof(h));
    ++stats_.pooledAllocs;
    return raw + sizeof(Header);
}

void
FramePool::deallocate(void *p) noexcept
{
    auto *raw = static_cast<std::byte *>(p) - sizeof(Header);
    // Copy the header out before it is overwritten: the free-list link
    // written below aliases the header bytes.
    Header h;
    std::memcpy(&h, raw, sizeof(h));
    assert(h.magic ==
           (h.cls == kFallbackClass ? kFallbackMagic : kPooledMagic));
    if (h.cls == kFallbackClass) {
        ++stats_.fallbackFrees;
        ::operator delete(raw);
        return;
    }
    auto *node = reinterpret_cast<FreeNode *>(raw);
    node->next = free_[h.cls];
    free_[h.cls] = node;
    ++stats_.pooledFrees;
}

FramePool &
framePool()
{
    thread_local FramePool pool;
    return pool;
}

void *
framePoolAllocate(std::size_t bytes)
{
    return framePool().allocate(bytes);
}

void
framePoolDeallocate(void *p) noexcept
{
    framePool().deallocate(p);
}

} // namespace wisync::coro
