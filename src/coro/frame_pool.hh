/**
 * @file
 * Size-classed pool for coroutine frames.
 *
 * Every Task<T> (and detached-root wrapper) frame allocation used to
 * hit malloc; in task-heavy kernels (deep transaction chains, BM retry
 * loops) that was the dominant cost left after the allocation-free
 * event kernel. The pool serves frames from per-size-class free lists
 * carved out of chunked arenas, so steady-state spawn/await/complete
 * cycles never touch the system allocator:
 *
 *   - Sizes are rounded up to 64-byte classes up to 2 KB. Frames for
 *     the model's coroutines cluster in a handful of classes (a
 *     transaction frame is a few hundred bytes), so free lists reach
 *     steady state within the first few simulated events.
 *   - A 16-byte header in front of each frame records its class, which
 *     makes deallocation independent of the (unsized) operator delete
 *     the coroutine machinery calls.
 *   - Frames above the 2 KB ceiling fall back to ::operator new; the
 *     header marks them so delete routes correctly.
 *   - Arena chunks are recycled within the (thread-local) pool and
 *     only returned to the OS at thread exit, mirroring the engine's
 *     node-pool chunk cache: machine churn in sweep loops re-uses the
 *     same pages instead of re-faulting them.
 *
 * The pool is thread-local (the simulator is single-threaded by
 * design; concurrent engines in test harnesses stay independent) and
 * deliberately outlives every Engine/Machine, so frames destroyed
 * during engine teardown always have a live pool to return to.
 */

#ifndef WISYNC_CORO_FRAME_POOL_HH
#define WISYNC_CORO_FRAME_POOL_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wisync::coro {

/** Thread-local size-classed arena for coroutine frames. */
class FramePool
{
  public:
    /** Frame alignment (== default operator new alignment). */
    static constexpr std::size_t kAlign =
        __STDCPP_DEFAULT_NEW_ALIGNMENT__;
    /** Size-class granularity, bytes. */
    static constexpr std::size_t kGranule = 64;
    /** Largest pooled allocation (incl. header); larger -> malloc. */
    static constexpr std::size_t kMaxPooled = 2048;
    static constexpr std::size_t kNumClasses = kMaxPooled / kGranule;
    /** Arena chunk size, bytes. */
    static constexpr std::size_t kChunkBytes = 64 * 1024;

    /** Cumulative counters (monotonic; for tests and benchmarks). */
    struct Stats
    {
        std::uint64_t pooledAllocs = 0;   ///< served from the pool
        std::uint64_t pooledFrees = 0;    ///< returned to a free list
        std::uint64_t freelistReuses = 0; ///< pooled allocs that reused
                                          ///< a previously freed frame
        std::uint64_t fallbackAllocs = 0; ///< oversized, via malloc
        std::uint64_t fallbackFrees = 0;  ///< oversized frees
        std::uint64_t chunks = 0;         ///< arena chunks allocated
    };

    FramePool() = default;
    FramePool(const FramePool &) = delete;
    FramePool &operator=(const FramePool &) = delete;
    ~FramePool();

    /** Allocate @p bytes with operator-new alignment. */
    void *allocate(std::size_t bytes);

    /** Return a pointer obtained from allocate(). */
    void deallocate(void *p) noexcept;

    const Stats &stats() const { return stats_; }

    /** Frames currently allocated and not yet freed. */
    std::uint64_t
    liveFrames() const
    {
        return (stats_.pooledAllocs + stats_.fallbackAllocs) -
               (stats_.pooledFrees + stats_.fallbackFrees);
    }

  private:
    struct FreeNode
    {
        FreeNode *next;
    };

    /** Class index for a total (header-included) size. */
    static std::size_t
    classOf(std::size_t total)
    {
        return (total + kGranule - 1) / kGranule - 1;
    }

    FreeNode *free_[kNumClasses] = {};
    std::vector<std::byte *> chunks_;
    std::byte *bump_ = nullptr;
    std::size_t bumpLeft_ = 0;
    Stats stats_;
};

/** The calling thread's frame pool. */
FramePool &framePool();

/** Convenience hooks for promise operator new/delete. */
void *framePoolAllocate(std::size_t bytes);
void framePoolDeallocate(void *p) noexcept;

} // namespace wisync::coro

#endif // WISYNC_CORO_FRAME_POOL_HH
