/**
 * @file
 * Coroutine task type for simulated threads and hardware transactions.
 *
 * Every multi-cycle activity in the model — a workload thread, a cache
 * miss transaction, a wireless broadcast — is a Task<T> coroutine that
 * co_awaits timing primitives (delays, mutexes, channels). Tasks are
 * lazy: they start when first awaited (or when detached onto the
 * engine), and completion resumes the awaiting parent via symmetric
 * transfer, so arbitrarily deep call chains use O(1) host stack.
 *
 * Resumption takes exactly one of two paths, and both are
 * allocation-free:
 *   - within a cycle, parent/child handoff is symmetric transfer (the
 *     awaiters below return the next handle directly and never touch
 *     the engine queue);
 *   - across cycles, the timing primitives in coro/primitives.hh park
 *     the raw handle in the event kernel via Engine::resumeHandle,
 *     which stores it in the scheduler tiers without a callable
 *     wrapper.
 */

#ifndef WISYNC_CORO_TASK_HH
#define WISYNC_CORO_TASK_HH

#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "coro/frame_pool.hh"

namespace wisync::coro {

template <typename T>
class Task;

namespace detail {

/** State shared by all task promises: continuation + error slot. */
struct TaskPromiseBase
{
    // Frames are allocated from the thread-local size-classed pool:
    // steady-state spawn/await/complete cycles never touch malloc
    // (oversized frames transparently fall back inside the pool).
    static void *
    operator new(std::size_t bytes)
    {
        return framePoolAllocate(bytes);
    }

    static void
    operator delete(void *p) noexcept
    {
        framePoolDeallocate(p);
    }

    std::coroutine_handle<> continuation = std::noop_coroutine();
    std::exception_ptr error;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }

        template <typename P>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<P> h) noexcept
        {
            // Symmetric transfer to whoever awaited us (or noop).
            return h.promise().continuation;
        }

        void await_resume() const noexcept {}
    };

    std::suspend_always initial_suspend() const noexcept { return {}; }
    FinalAwaiter final_suspend() const noexcept { return {}; }
    void unhandled_exception() { error = std::current_exception(); }
};

template <typename T>
struct TaskPromise : TaskPromiseBase
{
    std::optional<T> value;

    Task<T> get_return_object();
    void return_value(T v) { value.emplace(std::move(v)); }

    T
    result()
    {
        if (error)
            std::rethrow_exception(error);
        return std::move(*value);
    }
};

template <>
struct TaskPromise<void> : TaskPromiseBase
{
    Task<void> get_return_object();
    void return_void() const {}

    void
    result() const
    {
        if (error)
            std::rethrow_exception(error);
    }
};

} // namespace detail

/**
 * Lazily-started coroutine returning T.
 *
 * Ownership: the Task object owns the coroutine frame. Awaiting a Task
 * keeps it alive in the awaiting frame until the child completes (the
 * usual `co_await child()` pattern is safe because the temporary lives
 * across the suspension).
 */
template <typename T = void>
class [[nodiscard]] Task
{
  public:
    using promise_type = detail::TaskPromise<T>;
    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}

    Task(Task &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {}

    Task &
    operator=(Task &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task() { destroy(); }

    bool valid() const noexcept { return handle_ != nullptr; }
    bool done() const noexcept { return !handle_ || handle_.done(); }

    /** Detach the raw handle (caller takes over lifetime). */
    Handle release() noexcept { return std::exchange(handle_, nullptr); }

    /**
     * Raw handle view — ownership stays with this Task. For awaitables
     * that compose a Task (delegating suspend/resume to it) without
     * going through operator co_await.
     */
    Handle raw() const noexcept { return handle_; }

    auto
    operator co_await() noexcept
    {
        struct Awaiter
        {
            Handle h;

            bool await_ready() const noexcept { return !h || h.done(); }

            std::coroutine_handle<>
            await_suspend(std::coroutine_handle<> cont) noexcept
            {
                h.promise().continuation = cont;
                return h;
            }

            T await_resume() { return h.promise().result(); }
        };
        return Awaiter{handle_};
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    Handle handle_ = nullptr;
};

namespace detail {

template <typename T>
Task<T>
TaskPromise<T>::get_return_object()
{
    return Task<T>(
        std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void>
TaskPromise<void>::get_return_object()
{
    return Task<void>(
        std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

} // namespace detail

} // namespace wisync::coro

#endif // WISYNC_CORO_TASK_HH
