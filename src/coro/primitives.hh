/**
 * @file
 * Timing and synchronization primitives for model coroutines.
 *
 * These are the only ways a Task can consume simulated time or block:
 *   - delay(engine, n)        : advance n cycles
 *   - SimMutex                : FIFO mutual exclusion (per-line MSHRs,
 *                               channel senders, bank ports, ...)
 *   - Resource                : counting semaphore (link/bank capacity)
 *   - CondVar                 : broadcast wakeup (spin-wait subscription)
 *   - Future<T>               : one-shot value handoff
 *   - spawnDetached           : launch a root task onto the engine
 *
 * All wakeups go through the engine queue (never inline resumption) so
 * event ordering stays deterministic and the host stack stays shallow.
 */

#ifndef WISYNC_CORO_PRIMITIVES_HH
#define WISYNC_CORO_PRIMITIVES_HH

#include <concepts>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "coro/task.hh"
#include "sim/engine.hh"
#include "sim/inline_vec.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace wisync::coro {

/** Awaitable that resumes after a fixed number of cycles. */
class DelayAwaiter
{
  public:
    DelayAwaiter(sim::Engine &engine, sim::Cycle cycles)
        : engine_(engine), cycles_(cycles)
    {}

    bool await_ready() const noexcept { return cycles_ == 0; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        engine_.resumeHandle(cycles_, h);
    }

    void await_resume() const noexcept {}

  private:
    sim::Engine &engine_;
    sim::Cycle cycles_;
};

/** co_await delay(engine, n): advance simulated time by n cycles. */
inline DelayAwaiter
delay(sim::Engine &engine, sim::Cycle cycles)
{
    return DelayAwaiter(engine, cycles);
}

/**
 * Awaitable that reschedules the coroutine at the current cycle, behind
 * every event already pending for it. The building block for "let the
 * rest of this cycle settle first" patterns (arbitration windows,
 * same-cycle wakeup ordering).
 */
class YieldAwaiter
{
  public:
    explicit YieldAwaiter(sim::Engine &engine) : engine_(engine) {}

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        engine_.resumeHandle(0, h);
    }

    void await_resume() const noexcept {}

  private:
    sim::Engine &engine_;
};

/** co_await yield(engine): requeue at now(), after pending events. */
inline YieldAwaiter
yield(sim::Engine &engine)
{
    return YieldAwaiter(engine);
}

/**
 * FIFO mutex for coroutines.
 *
 * Models any hardware resource that serializes transactions: a
 * directory entry busy-bit, a cache bank port, a MAC transmit slot.
 *
 * Besides the classic lock()/unlock() protocol, a holder can take the
 * mutex as a *timed reservation* (tryReserve): the resource is busy
 * until a known future cycle, but no release event is scheduled — the
 * reservation simply stops mattering once the cycle is reached. Only
 * when a contender actually shows up while the reservation is live is
 * the release event materialized (at exactly the cycle an eager
 * scheduleUnlock would have fired, preserving FIFO grant order and
 * grant cycles bit-for-bit). This is what lets an uncontended mesh
 * transfer hold a whole route for the cost of zero engine events.
 */
class SimMutex
{
  public:
    explicit SimMutex(sim::Engine &engine) : engine_(engine) {}

    class LockAwaiter
    {
      public:
        explicit LockAwaiter(SimMutex &m) : mutex_(m) {}

        bool
        await_ready()
        {
            mutex_.pollExpiry();
            if (!mutex_.locked_) {
                mutex_.locked_ = true;
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            mutex_.waiters_.push_back(h);
            mutex_.materializeRelease();
        }

        void await_resume() const noexcept {}

      private:
        SimMutex &mutex_;
    };

    /** co_await lock(); ... unlock(); */
    LockAwaiter lock() { return LockAwaiter(*this); }

    /** Acquire without waiting; true on success. */
    bool
    tryLock()
    {
        pollExpiry();
        if (locked_)
            return false;
        locked_ = true;
        return true;
    }

    /**
     * True when a lock()/tryLock() at the current point of execution
     * would succeed immediately. Unlike tryLock this has no side
     * effects — introspection for tests and tooling.
     */
    bool
    available() const
    {
        return !locked_ || reservationElapsed();
    }

    /**
     * Try to acquire as a timed reservation releasing itself at
     * @p until (absolute cycle, > now); false if held. No release
     * event is scheduled unless a contender arrives before the
     * release would run — but the release's place in the global
     * insertion order IS claimed now (Engine::reserveSeq), so whether
     * or not it ever materializes, every other event keeps the exact
     * (cycle, seq) position an eager lock()+scheduleUnlock(until-now)
     * would have given it. Timing is therefore bit-identical to the
     * eager protocol; the uncontended case just never pays the event.
     */
    bool
    tryReserve(sim::Cycle until)
    {
        pollExpiry();
        if (locked_)
            return false;
        WISYNC_ASSERT(until > engine_.now(), "reservation must end later");
        locked_ = true;
        reservedUntil_ = until;
        reservedSeq_ = engine_.reserveSeq();
        return true;
    }

    /** End of the current timed reservation (0 = plain lock / free). */
    sim::Cycle lockedUntil() const { return reservedUntil_; }

    void
    unlock()
    {
        WISYNC_ASSERT(locked_, "unlock of unlocked SimMutex");
        reservedUntil_ = 0;
        if (waiters_.empty()) {
            locked_ = false;
            return;
        }
        // Hand the lock to the oldest waiter; resume via the engine so
        // the critical section starts at the current cycle but after
        // the unlocker's event completes.
        auto h = waiters_.front();
        waiters_.pop_front();
        engine_.resumeHandle(0, h);
    }

    /**
     * Release the lock @p delta cycles from now, from plain (non-
     * coroutine) code. Models resources held for a fixed occupancy
     * window, e.g. a mesh link busy until the tail flit crosses it.
     */
    void
    scheduleUnlock(sim::Cycle delta)
    {
        engine_.scheduleIn(delta, [this] { unlock(); });
    }

    bool locked() const { return locked_; }
    std::size_t waiting() const { return waiters_.size(); }

    /**
     * Drop all state (unlocked, no waiters). Only valid while no
     * coroutine that could legally resume still waits — i.e. after the
     * engine destroyed the frames parked here (Machine::reset), which
     * also discards any materialized release event.
     */
    void
    reset()
    {
        locked_ = false;
        reservedUntil_ = 0;
        releaseQueued_ = false;
        waiters_.clear();
    }

  private:
    /**
     * An expired, uncontested reservation is equivalent to released:
     * nobody queued during its window, so no release event exists and
     * the mutex silently becomes free. "Expired" honours the virtual
     * release's reserved position in the execution order: at the
     * release cycle itself the reservation only counts as gone once
     * the engine is past the reserved seq — before that point an
     * eager unlock event would not have run yet, and an attempt must
     * queue exactly as it would have then. (If someone did queue, the
     * materialized event performs the FIFO handoff instead, and this
     * poll must not bypass the queue — hence the releaseQueued_ and
     * waiters_ guards.)
     */
    /** The reservation's virtual release is behind the current point
     *  of execution, and nobody queued to materialize it for real. */
    bool
    reservationElapsed() const
    {
        if (reservedUntil_ == 0 || releaseQueued_ || !waiters_.empty())
            return false;
        const sim::Cycle now = engine_.now();
        return now > reservedUntil_ ||
               (now == reservedUntil_ &&
                engine_.currentSeq() > reservedSeq_);
    }

    void
    pollExpiry()
    {
        if (locked_ && reservationElapsed()) {
            locked_ = false;
            reservedUntil_ = 0;
        }
    }

    /** First contender during a live reservation: materialize the
     *  release under the reserved seq — the exact (cycle, seq) slot an
     *  eager scheduleUnlock would occupy. */
    void
    materializeRelease()
    {
        if (reservedUntil_ == 0 || releaseQueued_)
            return;
        releaseQueued_ = true;
        engine_.scheduleReserved(reservedUntil_, reservedSeq_, [this] {
            releaseQueued_ = false;
            unlock(); // clears reservedUntil_, hands off FIFO
        });
    }

    sim::Engine &engine_;
    bool locked_ = false;
    bool releaseQueued_ = false;
    sim::Cycle reservedUntil_ = 0;
    std::uint64_t reservedSeq_ = 0;
    std::deque<std::coroutine_handle<>> waiters_;
};

/** RAII helper running a coroutine critical section. */
class ScopedSimLock
{
  public:
    explicit ScopedSimLock(SimMutex &m) : mutex_(&m) {}
    ScopedSimLock(ScopedSimLock &&o) noexcept
        : mutex_(std::exchange(o.mutex_, nullptr))
    {}
    ScopedSimLock(const ScopedSimLock &) = delete;
    ScopedSimLock &operator=(const ScopedSimLock &) = delete;
    ScopedSimLock &operator=(ScopedSimLock &&) = delete;

    ~ScopedSimLock()
    {
        if (mutex_)
            mutex_->unlock();
    }

  private:
    SimMutex *mutex_;
};

/** Acquire @p m and return a releasing guard. */
inline coro::Task<ScopedSimLock>
scopedLock(SimMutex &m)
{
    co_await m.lock();
    co_return ScopedSimLock(m);
}

/**
 * Counting semaphore with FIFO grant order.
 *
 * Models capacity-limited resources such as NoC links (flit slots per
 * cycle window) or DRAM controller queues.
 */
class Resource
{
  public:
    Resource(sim::Engine &engine, std::uint32_t capacity)
        : engine_(engine), available_(capacity), capacity_(capacity)
    {}

    class AcquireAwaiter
    {
      public:
        explicit AcquireAwaiter(Resource &r) : res_(r) {}

        bool
        await_ready()
        {
            if (res_.available_ > 0) {
                --res_.available_;
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            res_.waiters_.push_back(h);
        }

        void await_resume() const noexcept {}

      private:
        Resource &res_;
    };

    AcquireAwaiter acquire() { return AcquireAwaiter(*this); }

    void
    release()
    {
        if (!waiters_.empty()) {
            auto h = waiters_.front();
            waiters_.pop_front();
            engine_.resumeHandle(0, h);
            return;
        }
        WISYNC_ASSERT(available_ < capacity_, "Resource over-release");
        ++available_;
    }

    std::uint32_t available() const { return available_; }

    /** Full capacity, no waiters (see SimMutex::reset caveat). */
    void
    reset()
    {
        available_ = capacity_;
        waiters_.clear();
    }

  private:
    sim::Engine &engine_;
    std::uint32_t available_;
    std::uint32_t capacity_;
    std::deque<std::coroutine_handle<>> waiters_;
};

/**
 * Broadcast condition variable.
 *
 * The simulator's event-driven replacement for busy polling: a thread
 * spinning on a memory location subscribes here and is woken when the
 * watched state may have changed (line invalidated, BM word updated,
 * tone toggled). Spurious wakeups are expected; callers re-check.
 */
class CondVar
{
  public:
    explicit CondVar(sim::Engine &engine) : engine_(engine) {}

    class WaitAwaiter
    {
      public:
        explicit WaitAwaiter(CondVar &cv) : cv_(cv) {}
        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            cv_.waiters_.push_back(h);
        }

        void await_resume() const noexcept {}

      private:
        CondVar &cv_;
    };

    /** Block until the next notifyAll(). */
    WaitAwaiter wait() { return WaitAwaiter(*this); }

    /** Wake every current waiter (at the present cycle). */
    void
    notifyAll()
    {
        if (waiters_.empty())
            return;
        // Move the list aside so waiters that immediately re-wait land
        // in a fresh round; the inline buffer keeps the common few-
        // waiter case allocation-free.
        auto woken = std::move(waiters_);
        for (auto h : woken)
            engine_.resumeHandle(0, h);
    }

    std::size_t waiting() const { return waiters_.size(); }

    /** Forget all waiters (see SimMutex::reset caveat). */
    void reset() { waiters_.clear(); }

  private:
    sim::Engine &engine_;
    sim::InlineVec<std::coroutine_handle<>, 4> waiters_;
};

/**
 * One-shot future: produced once, consumable by many waiters.
 *
 * Used for transaction completions (e.g. a cache miss response).
 */
template <typename T>
class Future
{
  public:
    explicit Future(sim::Engine &engine) : engine_(engine) {}

    bool ready() const { return ready_; }

    void
    set(T value)
    {
        WISYNC_ASSERT(!ready_, "Future set twice");
        value_ = std::move(value);
        ready_ = true;
        for (auto h : waiters_)
            engine_.resumeHandle(0, h);
        waiters_.clear();
    }

    Future(const Future &) = delete;
    Future &operator=(const Future &) = delete;

    class Awaiter
    {
      public:
        explicit Awaiter(Future &f) : fut_(f) {}
        bool await_ready() const { return fut_.ready_; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            fut_.waiters_.push_back(h);
        }

        T await_resume() const { return fut_.value_; }

      private:
        Future &fut_;
    };

    Awaiter operator co_await() { return Awaiter(*this); }

  private:
    sim::Engine &engine_;
    bool ready_ = false;
    T value_{};
    sim::InlineVec<std::coroutine_handle<>, 2> waiters_;
};

/**
 * Generation-counted event for race-free spin waiting.
 *
 * Protocol: read gen(), inspect the watched state, then
 * co_await waitChangedSince(g). If the event was raised between the
 * read and the wait, the wait returns immediately — no lost wakeups.
 * Used for "line invalidated", "BM word updated", "tone toggled".
 */
class VersionedEvent
{
  public:
    explicit VersionedEvent(sim::Engine &engine) : cv_(engine) {}

    std::uint64_t gen() const { return gen_; }

    /** Signal that the watched state may have changed. */
    void
    raise()
    {
        ++gen_;
        cv_.notifyAll();
    }

    /** Wait until gen() differs from @p seen (returns at once if so). */
    Task<void>
    waitChangedSince(std::uint64_t seen)
    {
        while (gen_ == seen)
            co_await cv_.wait();
    }

    /** Back to generation zero, no waiters (see SimMutex::reset). */
    void
    reset()
    {
        gen_ = 0;
        cv_.reset();
    }

  private:
    std::uint64_t gen_ = 0;
    CondVar cv_;
};

namespace detail {

/**
 * Self-destroying root coroutine wrapper.
 *
 * Created suspended: the spawn functions build the frame eagerly (so
 * the callable and its arguments move straight into it, with no
 * intermediate closure), register it in the engine's detached-root
 * registry, and hand the raw handle to the resumeHandle fast path. On
 * completion the frame releases its registry slot and destroys itself
 * (final_suspend never suspends); an engine reset or destroyed with
 * the root still live destroys it through the registry instead, which
 * recursively tears down everything the root owns.
 */
struct Detached
{
    struct promise_type
    {
        /** Wrapper frames come from the same pool as Task frames. */
        static void *
        operator new(std::size_t bytes)
        {
            return framePoolAllocate(bytes);
        }

        static void
        operator delete(void *p) noexcept
        {
            framePoolDeallocate(p);
        }

        Detached
        get_return_object()
        {
            return Detached{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }
        std::suspend_always initial_suspend() const noexcept { return {}; }
        std::suspend_never final_suspend() const noexcept { return {}; }
        void return_void() const {}
        [[noreturn]] void unhandled_exception() const { std::terminate(); }
    };

    std::coroutine_handle<> handle;
};

/** Register an eagerly-built root frame and schedule its first resume. */
inline void
launchDetached(sim::Engine &engine, std::uint32_t slot,
               std::coroutine_handle<> h, sim::Cycle delta)
{
    engine.bindRoot(slot, h);
    engine.resumeHandle(delta, h);
}

} // namespace detail

/**
 * Launch @p task as a root activity at cycle now()+delta.
 *
 * The task (and anything it awaits) runs to completion on the engine;
 * @p on_done, if provided, fires after it finishes. Exceptions escaping
 * a detached task terminate the simulation (they indicate model bugs).
 */
template <typename Done>
    requires std::invocable<Done>
void
spawnDetached(sim::Engine &engine, Task<void> task, Done on_done,
              sim::Cycle delta = 0)
{
    // The wrapper coroutine owns the task frame for its whole lifetime;
    // the task body starts when the engine resumes the wrapper.
    auto runner = [](sim::Engine *eng, std::uint32_t slot, Task<void> t,
                     Done done) -> detail::Detached {
        co_await t;
        done();
        eng->releaseRoot(slot);
    };
    const std::uint32_t slot = engine.reserveRoot();
    detail::launchDetached(
        engine, slot,
        runner(&engine, slot, std::move(task), std::move(on_done)).handle,
        delta);
}

/** spawnDetached without a completion callback. */
inline void
spawnDetached(sim::Engine &engine, Task<void> task, sim::Cycle delta = 0)
{
    spawnDetached(engine, std::move(task), [] {}, delta);
}

/**
 * Launch `fn(args...)` as a root coroutine at now()+delta.
 *
 * Unlike calling a capturing lambda coroutine directly (whose closure
 * dies at the end of the spawning statement while the frame still
 * references it), this copies the callable and its arguments into the
 * wrapper frame, keeping them alive for the coroutine's lifetime. Use
 * this for capturing lambdas; spawnDetached is fine for free/member
 * coroutines.
 */
template <typename Fn, typename... Args>
void
spawnFn(sim::Engine &engine, sim::Cycle delta, Fn fn, Args... args)
{
    auto runner = [](sim::Engine *eng, std::uint32_t slot, Fn fn,
                     Args... args) -> detail::Detached {
        co_await std::invoke(fn, std::move(args)...);
        eng->releaseRoot(slot);
    };
    const std::uint32_t slot = engine.reserveRoot();
    detail::launchDetached(
        engine, slot,
        runner(&engine, slot, std::move(fn), std::move(args)...).handle,
        delta);
}

/** spawnFn starting at the current cycle. */
template <typename Fn, typename... Args>
void
spawnNow(sim::Engine &engine, Fn fn, Args... args)
{
    spawnFn(engine, 0, std::move(fn), std::move(args)...);
}

/**
 * As spawnDetached, but the root starts executing immediately, inside
 * the caller's engine event, instead of being queued through the ready
 * ring. This is how a non-coroutine fast-path callback falls back into
 * coroutine machinery without perturbing event order: the spawned task
 * runs to its first real suspension exactly where an inline co_await
 * would have, and @p on_done fires (still inside the completing event)
 * when it finishes. Only call from model code already executing under
 * engine.run().
 */
template <typename Done>
    requires std::invocable<Done>
void
spawnInline(sim::Engine &engine, Task<void> task, Done on_done)
{
    auto runner = [](sim::Engine *eng, std::uint32_t slot, Task<void> t,
                     Done done) -> detail::Detached {
        co_await t;
        done();
        eng->releaseRoot(slot);
    };
    const std::uint32_t slot = engine.reserveRoot();
    auto h =
        runner(&engine, slot, std::move(task), std::move(on_done)).handle;
    engine.bindRoot(slot, h);
    h.resume();
}

/**
 * Run @p tasks concurrently; complete when the last one finishes.
 *
 * Models parallel hardware legs (e.g. invalidations fanned out to all
 * sharers) where completion time is the max over the legs. Accepts any
 * container of Task<void> by value (std::vector, sim::InlineVec) so
 * hot paths can fan out without a heap-allocated task list.
 */
template <typename TaskList = std::vector<Task<void>>>
inline Task<void>
whenAll(sim::Engine &engine, TaskList tasks)
{
    if (tasks.empty())
        co_return;
    std::size_t remaining = tasks.size();
    CondVar cv(engine);
    for (auto &t : tasks) {
        // The callback references frame locals; the frame stays alive
        // (suspended on cv) until the final callback fires.
        spawnDetached(engine, std::move(t), [&remaining, &cv] {
            if (--remaining == 0)
                cv.notifyAll();
        });
    }
    while (remaining > 0)
        co_await cv.wait();
}

} // namespace wisync::coro

#endif // WISYNC_CORO_PRIMITIVES_HH
