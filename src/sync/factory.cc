#include "sync/factory.hh"

#include <stdexcept>

namespace wisync::sync {

std::unique_ptr<Lock>
SyncFactory::makeLock()
{
    switch (machine_.config().kind) {
      case core::ConfigKind::Baseline:
        return std::make_unique<TasLock>(machine_);
      case core::ConfigKind::BaselinePlus:
        return std::make_unique<McsLock>(machine_);
      case core::ConfigKind::WiSyncNoT:
      case core::ConfigKind::WiSync:
        return std::make_unique<BmLock>(machine_, pid_);
    }
    return nullptr;
}

/** True when @p nodes spread over more than one chip. */
static bool
spansChips(const core::MachineConfig &cfg,
           const std::vector<sim::NodeId> &nodes)
{
    if (cfg.numChips <= 1 || nodes.empty())
        return false;
    const std::uint32_t chip = cfg.chipOf(nodes.front());
    for (const sim::NodeId n : nodes)
        if (cfg.chipOf(n) != chip)
            return true;
    return false;
}

std::unique_ptr<Barrier>
SyncFactory::makeBarrier(const std::vector<sim::NodeId> &participant_nodes)
{
    const auto n = static_cast<std::uint32_t>(participant_nodes.size());
    switch (machine_.config().kind) {
      case core::ConfigKind::Baseline:
        return std::make_unique<CentralBarrier>(machine_, n);
      case core::ConfigKind::BaselinePlus:
        return std::make_unique<TournamentBarrier>(machine_, n);
      case core::ConfigKind::WiSyncNoT:
        if (spansChips(machine_.config(), participant_nodes))
            return std::make_unique<MultiChipBarrier>(machine_, pid_,
                                                      participant_nodes);
        return std::make_unique<BmBarrier>(machine_, pid_, n);
      case core::ConfigKind::WiSync:
        // A spanning participant set cannot use one tone barrier (the
        // Tone channel is per-die); compose per-chip phases instead.
        if (spansChips(machine_.config(), participant_nodes))
            return std::make_unique<MultiChipBarrier>(machine_, pid_,
                                                      participant_nodes);
        try {
            return std::make_unique<ToneBarrier>(machine_, pid_,
                                                 participant_nodes);
        } catch (const std::runtime_error &) {
            // AllocB overflow: §4.4 prescribes a Data-channel barrier.
            return std::make_unique<BmBarrier>(machine_, pid_, n);
        }
    }
    return nullptr;
}

std::unique_ptr<OrBarrier>
SyncFactory::makeOrBarrier()
{
    if (machine_.config().hasWireless())
        return std::make_unique<BmOrBarrierImpl>(machine_, pid_);
    return std::make_unique<MemOrBarrier>(machine_);
}

std::unique_ptr<Reducer>
SyncFactory::makeReducer()
{
    if (machine_.config().hasWireless())
        return std::make_unique<BmReducer>(machine_, pid_);
    return std::make_unique<MemReducer>(machine_);
}

} // namespace wisync::sync
