#include "sync/factory.hh"

#include <stdexcept>

namespace wisync::sync {

std::unique_ptr<Lock>
SyncFactory::makeLock()
{
    switch (machine_.config().kind) {
      case core::ConfigKind::Baseline:
        return std::make_unique<TasLock>(machine_);
      case core::ConfigKind::BaselinePlus:
        return std::make_unique<McsLock>(machine_);
      case core::ConfigKind::WiSyncNoT:
      case core::ConfigKind::WiSync:
        return std::make_unique<BmLock>(machine_, pid_);
    }
    return nullptr;
}

std::unique_ptr<Barrier>
SyncFactory::makeBarrier(const std::vector<sim::NodeId> &participant_nodes)
{
    const auto n = static_cast<std::uint32_t>(participant_nodes.size());
    switch (machine_.config().kind) {
      case core::ConfigKind::Baseline:
        return std::make_unique<CentralBarrier>(machine_, n);
      case core::ConfigKind::BaselinePlus:
        return std::make_unique<TournamentBarrier>(machine_, n);
      case core::ConfigKind::WiSyncNoT:
        return std::make_unique<BmBarrier>(machine_, pid_, n);
      case core::ConfigKind::WiSync:
        try {
            return std::make_unique<ToneBarrier>(machine_, pid_,
                                                 participant_nodes);
        } catch (const std::runtime_error &) {
            // AllocB overflow: §4.4 prescribes a Data-channel barrier.
            return std::make_unique<BmBarrier>(machine_, pid_, n);
        }
    }
    return nullptr;
}

std::unique_ptr<OrBarrier>
SyncFactory::makeOrBarrier()
{
    if (machine_.config().hasWireless())
        return std::make_unique<BmOrBarrierImpl>(machine_, pid_);
    return std::make_unique<MemOrBarrier>(machine_);
}

std::unique_ptr<Reducer>
SyncFactory::makeReducer()
{
    if (machine_.config().hasWireless())
        return std::make_unique<BmReducer>(machine_, pid_);
    return std::make_unique<MemReducer>(machine_);
}

} // namespace wisync::sync
