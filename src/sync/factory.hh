/**
 * @file
 * Per-configuration synchronization factory (Table 2).
 *
 * | Config     | Locks         | Barriers                           |
 * |------------|---------------|------------------------------------|
 * | Baseline   | TTAS/CAS      | Centralized sense-reversing        |
 * | Baseline+  | MCS           | Tournament                         |
 * | WiSyncNoT  | BM test&set   | BM fetch&inc (Data channel)        |
 * | WiSync     | BM test&set   | Tone barrier (fallback: BM)        |
 *
 * Reducers use the best primitive of each configuration (CAS loop on
 * memory vs fetch&add on the BM).
 */

#ifndef WISYNC_SYNC_FACTORY_HH
#define WISYNC_SYNC_FACTORY_HH

#include <memory>
#include <vector>

#include "sync/baseline_sync.hh"
#include "sync/primitives.hh"
#include "sync/wisync_sync.hh"

namespace wisync::sync {

/** Builds the right primitive for the machine's ConfigKind. */
class SyncFactory
{
  public:
    explicit SyncFactory(core::Machine &machine, sim::Pid pid = 1)
        : machine_(machine), pid_(pid)
    {}

    /** The configuration's lock. */
    std::unique_ptr<Lock> makeLock();

    /**
     * The configuration's AND-barrier for the given participants
     * (thread->node placement, needed to arm tone barriers). WiSync
     * falls back to the Data-channel barrier when AllocB is full.
     */
    std::unique_ptr<Barrier>
    makeBarrier(const std::vector<sim::NodeId> &participant_nodes);

    /** The configuration's OR-barrier (eureka). */
    std::unique_ptr<OrBarrier> makeOrBarrier();

    /** The configuration's reduction cell. */
    std::unique_ptr<Reducer> makeReducer();

    core::Machine &machine() { return machine_; }
    sim::Pid pid() const { return pid_; }

  private:
    core::Machine &machine_;
    sim::Pid pid_;
};

} // namespace wisync::sync

#endif // WISYNC_SYNC_FACTORY_HH
