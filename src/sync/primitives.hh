/**
 * @file
 * Abstract synchronization primitives used by every workload.
 *
 * Each of the paper's four configurations (Table 2) provides concrete
 * locks and barriers behind these interfaces, so a workload written
 * once runs unchanged on Baseline, Baseline+, WiSyncNoT and WiSync.
 */

#ifndef WISYNC_SYNC_PRIMITIVES_HH
#define WISYNC_SYNC_PRIMITIVES_HH

#include "core/machine.hh"
#include "coro/task.hh"

namespace wisync::sync {

/** Mutual-exclusion lock. */
class Lock
{
  public:
    virtual ~Lock() = default;
    virtual coro::Task<void> acquire(core::ThreadCtx &ctx) = 0;
    virtual coro::Task<void> release(core::ThreadCtx &ctx) = 0;
};

/** AND-barrier: wait() returns when all participants arrived. */
class Barrier
{
  public:
    virtual ~Barrier() = default;
    virtual coro::Task<void> wait(core::ThreadCtx &ctx) = 0;
};

/** OR-barrier (eureka, §4.3.2): released by the first trigger. */
class OrBarrier
{
  public:
    virtual ~OrBarrier() = default;
    /** Announce the condition (any participant). */
    virtual coro::Task<void> trigger(core::ThreadCtx &ctx) = 0;
    /** Non-blocking check for the condition. */
    virtual coro::Task<bool> poll(core::ThreadCtx &ctx) = 0;
    /** Block until the condition is announced. */
    virtual coro::Task<void> await(core::ThreadCtx &ctx) = 0;
    /** Re-arm for the next use (sense reversal; call from one thread
     *  after all participants have observed the trigger). */
    virtual void reset() = 0;
};

/** Shared reduction cell (§4.3.5). */
class Reducer
{
  public:
    virtual ~Reducer() = default;
    /** Atomically add @p delta. */
    virtual coro::Task<void> add(core::ThreadCtx &ctx,
                                 std::uint64_t delta) = 0;
    /** Read the current total (not synchronized with adders). */
    virtual coro::Task<std::uint64_t> read(core::ThreadCtx &ctx) = 0;
};

} // namespace wisync::sync

#endif // WISYNC_SYNC_PRIMITIVES_HH
