/**
 * @file
 * Conventional synchronization on the cache hierarchy (Table 2).
 *
 * Baseline:  test-and-test-and-set lock built on CAS; centralized
 *            sense-reversing barrier whose counter is incremented
 *            with a CAS retry loop (the Baseline core has no other
 *            atomic).
 * Baseline+: MCS queue locks and tournament barriers
 *            (Mellor-Crummey & Scott [31]).
 *
 * All shared variables are placed on distinct cache lines.
 */

#ifndef WISYNC_SYNC_BASELINE_SYNC_HH
#define WISYNC_SYNC_BASELINE_SYNC_HH

#include <cstdint>
#include <unordered_map>

#include "sync/primitives.hh"

namespace wisync::sync {

/** TTAS spin lock over coherent memory (Baseline). */
class TasLock : public Lock
{
  public:
    explicit TasLock(core::Machine &m);

    coro::Task<void> acquire(core::ThreadCtx &ctx) override;
    coro::Task<void> release(core::ThreadCtx &ctx) override;

  private:
    sim::Addr lockAddr_;
};

/**
 * Centralized sense-reversing barrier (Baseline).
 *
 * The arrival counter is bumped with a CAS loop; the last arrival
 * resets the counter and toggles the release flag that everyone else
 * spins on — the textbook algorithm [16].
 */
class CentralBarrier : public Barrier
{
  public:
    CentralBarrier(core::Machine &m, std::uint32_t participants);

    coro::Task<void> wait(core::ThreadCtx &ctx) override;

  private:
    std::uint32_t participants_;
    sim::Addr countAddr_;
    sim::Addr releaseAddr_;
    std::unordered_map<sim::ThreadId, std::uint64_t> senses_;
};

/** MCS queue lock (Baseline+) [31]. */
class McsLock : public Lock
{
  public:
    explicit McsLock(core::Machine &m);

    coro::Task<void> acquire(core::ThreadCtx &ctx) override;
    coro::Task<void> release(core::ThreadCtx &ctx) override;

  private:
    struct QNode
    {
        sim::Addr nextAddr;   // 0 = none, else holder's qnode base
        sim::Addr lockedAddr; // spin word
        sim::Addr base;       // identity stored in the tail
    };
    QNode &nodeFor(core::ThreadCtx &ctx);

    core::Machine &machine_;
    sim::Addr tailAddr_;
    std::unordered_map<sim::ThreadId, QNode> qnodes_;
};

/**
 * Tournament barrier (Baseline+) [31].
 *
 * log2(N) arrival rounds of statically-paired flags, then a wakeup
 * tree: the champion wakes the losers it beat, each of whom wakes the
 * losers *it* beat. Every spin is on the spinner's own cache line.
 */
class TournamentBarrier : public Barrier
{
  public:
    TournamentBarrier(core::Machine &m, std::uint32_t participants);

    coro::Task<void> wait(core::ThreadCtx &ctx) override;

  private:
    sim::Addr arriveFlag(std::uint32_t slot, std::uint32_t round) const;
    sim::Addr wakeFlag(std::uint32_t slot) const;

    std::uint32_t participants_;
    std::uint32_t rounds_;
    sim::Addr arriveBase_;
    sim::Addr wakeBase_;
    std::unordered_map<sim::ThreadId, std::uint64_t> senses_;
    /** Dense slot index per thread (assigned on first wait). */
    std::unordered_map<sim::ThreadId, std::uint32_t> slots_;
    std::uint32_t nextSlot_ = 0;
};

/** CAS-loop reduction cell over coherent memory. */
class MemReducer : public Reducer
{
  public:
    explicit MemReducer(core::Machine &m);

    coro::Task<void> add(core::ThreadCtx &ctx, std::uint64_t delta)
        override;
    coro::Task<std::uint64_t> read(core::ThreadCtx &ctx) override;

  private:
    sim::Addr addr_;
};

/** Sense-reversing OR-barrier over coherent memory. */
class MemOrBarrier : public OrBarrier
{
  public:
    explicit MemOrBarrier(core::Machine &m);

    coro::Task<void> trigger(core::ThreadCtx &ctx) override;
    coro::Task<bool> poll(core::ThreadCtx &ctx) override;
    coro::Task<void> await(core::ThreadCtx &ctx) override;
    void reset() override;

  private:
    sim::Addr flagAddr_;
    std::uint64_t sense_ = 1;
};

} // namespace wisync::sync

#endif // WISYNC_SYNC_BASELINE_SYNC_HH
