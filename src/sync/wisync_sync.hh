/**
 * @file
 * Synchronization on the Broadcast Memory (paper §4.3, Fig. 4).
 *
 * BmLock          — test&set on a BM word with AFB retry (§4.3.1)
 * BmBarrier       — sense-reversing barrier with fetch&inc on the BM:
 *                   the Data-channel barrier used by WiSyncNoT
 *                   (§4.3.2); Count and Release pack into one entry's
 *                   two halves conceptually — modelled as two words.
 * ToneBarrier     — the hardware Tone-channel barrier (§4.3.3)
 * BmOrBarrierImpl — eureka on a BM word (§4.3.2)
 * BmReducer       — fetch&add reduction (§4.3.5)
 * ProducerConsumer— full/empty flag protocol (§4.3.4)
 * Multicaster     — single producer, N consumers with a count +
 *                   toggling flag (Fig. 4(d))
 */

#ifndef WISYNC_SYNC_WISYNC_SYNC_HH
#define WISYNC_SYNC_WISYNC_SYNC_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sync/primitives.hh"

namespace wisync::sync {

/** Allocate + PID-tag BM words at program setup (zero simulated cost;
 *  the runtime allocation broadcast is exercised in tests). */
sim::BmAddr setupBmWords(core::Machine &m, std::uint32_t words,
                         sim::Pid pid);

/** Spin lock on a BM word (test&set with AFB retry). */
class BmLock : public Lock
{
  public:
    BmLock(core::Machine &m, sim::Pid pid);

    coro::Task<void> acquire(core::ThreadCtx &ctx) override;
    coro::Task<void> release(core::ThreadCtx &ctx) override;

  private:
    sim::BmAddr addr_;
};

/** Sense-reversing fetch&inc barrier on the BM (Data channel only). */
class BmBarrier : public Barrier
{
  public:
    BmBarrier(core::Machine &m, sim::Pid pid, std::uint32_t participants);

    coro::Task<void> wait(core::ThreadCtx &ctx) override;

  private:
    std::uint32_t participants_;
    sim::BmAddr countAddr_;
    sim::BmAddr releaseAddr_;
    std::unordered_map<sim::ThreadId, std::uint64_t> senses_;
};

/**
 * Hardware tone barrier (Fig. 4(c)).
 *
 * Construction registers the barrier in AllocB with the Armed bits of
 * the participating nodes; construction fails (throws) if AllocB
 * overflows — callers should use makeBarrier() in the factory, which
 * falls back to a BmBarrier, as §4.4 prescribes.
 */
class ToneBarrier : public Barrier
{
  public:
    ToneBarrier(core::Machine &m, sim::Pid pid,
                const std::vector<sim::NodeId> &participants);
    ~ToneBarrier() override;

    coro::Task<void> wait(core::ThreadCtx &ctx) override;

    sim::BmAddr address() const { return addr_; }

  private:
    core::Machine &machine_;
    sim::BmAddr addr_;
    std::unordered_map<sim::ThreadId, std::uint64_t> senses_;
};

/** Eureka on a BM word (§4.3.2), sense-reversing for reuse. */
class BmOrBarrierImpl : public OrBarrier
{
  public:
    BmOrBarrierImpl(core::Machine &m, sim::Pid pid);

    coro::Task<void> trigger(core::ThreadCtx &ctx) override;
    coro::Task<bool> poll(core::ThreadCtx &ctx) override;
    coro::Task<void> await(core::ThreadCtx &ctx) override;
    void reset() override;

  private:
    sim::BmAddr addr_;
    std::uint64_t sense_ = 1;
};

/** fetch&add reduction cell on the BM. */
class BmReducer : public Reducer
{
  public:
    BmReducer(core::Machine &m, sim::Pid pid);

    coro::Task<void> add(core::ThreadCtx &ctx, std::uint64_t delta)
        override;
    coro::Task<std::uint64_t> read(core::ThreadCtx &ctx) override;

  private:
    sim::BmAddr addr_;
};

/**
 * Single-producer single-consumer channel over the BM (§4.3.4):
 * a 4-word data block moved with bulk transfers plus a full/empty
 * flag word.
 */
class ProducerConsumer
{
  public:
    ProducerConsumer(core::Machine &m, sim::Pid pid);

    /** Producer: publish 4 words, then block until consumed. */
    coro::Task<void> produce(core::ThreadCtx &ctx,
                             std::array<std::uint64_t, 4> values);

    /** Consumer: block until produced, consume, clear the flag. */
    coro::Task<std::array<std::uint64_t, 4>> consume(core::ThreadCtx &ctx);

  private:
    sim::BmAddr dataAddr_;
    sim::BmAddr flagAddr_;
};

/**
 * Single producer, N consumers (Fig. 4(d)): data word + count +
 * toggling flag implementing a sense-reversing hand-off.
 */
class Multicaster
{
  public:
    Multicaster(core::Machine &m, sim::Pid pid, std::uint32_t readers);

    /** Producer: publish @p value and wait until all readers got it. */
    coro::Task<void> publish(core::ThreadCtx &ctx, std::uint64_t value);

    /** Reader: wait for the next publication and return it. */
    coro::Task<std::uint64_t> receive(core::ThreadCtx &ctx);

  private:
    std::uint32_t readers_;
    sim::BmAddr dataAddr_;
    sim::BmAddr countAddr_;
    sim::BmAddr flagAddr_;
    std::uint64_t produceSense_ = 1;
    std::unordered_map<sim::ThreadId, std::uint64_t> readerSenses_;
};

} // namespace wisync::sync

#endif // WISYNC_SYNC_WISYNC_SYNC_HH
