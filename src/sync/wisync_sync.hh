/**
 * @file
 * Synchronization on the Broadcast Memory (paper §4.3, Fig. 4).
 *
 * BmLock          — test&set on a BM word with AFB retry (§4.3.1)
 * BmBarrier       — sense-reversing barrier with fetch&inc on the BM:
 *                   the Data-channel barrier used by WiSyncNoT
 *                   (§4.3.2); Count and Release pack into one entry's
 *                   two halves conceptually — modelled as two words.
 * ToneBarrier     — the hardware Tone-channel barrier (§4.3.3)
 * MultiChipBarrier— hierarchical barrier for multi-chip machines:
 *                   per-chip local phase on chip-local words (tone
 *                   barrier where available), chip representatives
 *                   synchronize on global words over the bridge
 * BmOrBarrierImpl — eureka on a BM word (§4.3.2)
 * BmReducer       — fetch&add reduction (§4.3.5)
 * ProducerConsumer— full/empty flag protocol (§4.3.4)
 * Multicaster     — single producer, N consumers with a count +
 *                   toggling flag (Fig. 4(d))
 */

#ifndef WISYNC_SYNC_WISYNC_SYNC_HH
#define WISYNC_SYNC_WISYNC_SYNC_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sync/primitives.hh"

namespace wisync::sync {

/** Allocate + PID-tag BM words at program setup (zero simulated cost;
 *  the runtime allocation broadcast is exercised in tests). */
sim::BmAddr setupBmWords(core::Machine &m, std::uint32_t words,
                         sim::Pid pid);

/** Spin lock on a BM word (test&set with AFB retry). */
class BmLock : public Lock
{
  public:
    BmLock(core::Machine &m, sim::Pid pid);

    coro::Task<void> acquire(core::ThreadCtx &ctx) override;
    coro::Task<void> release(core::ThreadCtx &ctx) override;

  private:
    sim::BmAddr addr_;
};

/** Sense-reversing fetch&inc barrier on the BM (Data channel only). */
class BmBarrier : public Barrier
{
  public:
    BmBarrier(core::Machine &m, sim::Pid pid, std::uint32_t participants);

    coro::Task<void> wait(core::ThreadCtx &ctx) override;

  private:
    std::uint32_t participants_;
    sim::BmAddr countAddr_;
    sim::BmAddr releaseAddr_;
    std::unordered_map<sim::ThreadId, std::uint64_t> senses_;
};

/**
 * Hardware tone barrier (Fig. 4(c)).
 *
 * Construction registers the barrier in AllocB with the Armed bits of
 * the participating nodes; construction fails (throws) if AllocB
 * overflows — callers should use makeBarrier() in the factory, which
 * falls back to a BmBarrier, as §4.4 prescribes.
 */
class ToneBarrier : public Barrier
{
  public:
    ToneBarrier(core::Machine &m, sim::Pid pid,
                const std::vector<sim::NodeId> &participants);
    ~ToneBarrier() override;

    coro::Task<void> wait(core::ThreadCtx &ctx) override;

    sim::BmAddr address() const { return addr_; }

  private:
    core::Machine &machine_;
    sim::BmAddr addr_;
    std::unordered_map<sim::ThreadId, std::uint64_t> senses_;
};

/**
 * Hierarchical barrier for machines with several chips.
 *
 * Each chip runs a local phase entirely on chip-local BM words (a
 * hardware tone barrier when the Tone channel has a free AllocB slot,
 * a fetch&inc counter otherwise), so per-chip traffic never crosses
 * the bridge. One representative per chip then runs a global
 * sense-reversing phase on bridged global words, and finally toggles
 * its chip's local release word. Threads must stay on their
 * construction-time nodes (no migration), like tone barriers.
 */
class MultiChipBarrier : public Barrier
{
  public:
    MultiChipBarrier(core::Machine &m, sim::Pid pid,
                     const std::vector<sim::NodeId> &participants);
    ~MultiChipBarrier() override;

    coro::Task<void> wait(core::ThreadCtx &ctx) override;

  private:
    /** One involved chip's local-phase state. */
    struct ChipGroup
    {
        std::uint32_t chip = 0;
        std::uint32_t participants = 0;
        /** Fixed representative (first participant node on the chip);
         *  meaningful on the tone path, where there is no "last
         *  arriver" — the release frees everyone at once. */
        sim::NodeId repNode = 0;
        bool tone = false;
        /** Tone-barrier word (tone path) or arrival counter. */
        sim::BmAddr arriveAddr = 0;
        sim::BmAddr releaseAddr = 0;
    };

    core::Machine &machine_;
    std::vector<ChipGroup> groups_;
    std::vector<std::uint32_t> groupOfChip_; // chip -> groups_ index
    sim::BmAddr gcountAddr_;
    sim::BmAddr greleaseAddr_;
    std::unordered_map<sim::ThreadId, std::uint64_t> senses_;
};

/** Eureka on a BM word (§4.3.2), sense-reversing for reuse. */
class BmOrBarrierImpl : public OrBarrier
{
  public:
    BmOrBarrierImpl(core::Machine &m, sim::Pid pid);

    coro::Task<void> trigger(core::ThreadCtx &ctx) override;
    coro::Task<bool> poll(core::ThreadCtx &ctx) override;
    coro::Task<void> await(core::ThreadCtx &ctx) override;
    void reset() override;

  private:
    sim::BmAddr addr_;
    std::uint64_t sense_ = 1;
};

/** fetch&add reduction cell on the BM. */
class BmReducer : public Reducer
{
  public:
    BmReducer(core::Machine &m, sim::Pid pid);

    coro::Task<void> add(core::ThreadCtx &ctx, std::uint64_t delta)
        override;
    coro::Task<std::uint64_t> read(core::ThreadCtx &ctx) override;

  private:
    sim::BmAddr addr_;
};

/**
 * Single-producer single-consumer channel over the BM (§4.3.4):
 * a 4-word data block moved with bulk transfers plus a full/empty
 * flag word.
 */
class ProducerConsumer
{
  public:
    ProducerConsumer(core::Machine &m, sim::Pid pid);

    /** Producer: publish 4 words, then block until consumed. */
    coro::Task<void> produce(core::ThreadCtx &ctx,
                             std::array<std::uint64_t, 4> values);

    /** Consumer: block until produced, consume, clear the flag. */
    coro::Task<std::array<std::uint64_t, 4>> consume(core::ThreadCtx &ctx);

  private:
    sim::BmAddr dataAddr_;
    sim::BmAddr flagAddr_;
};

/**
 * Single producer, N consumers (Fig. 4(d)): data word + count +
 * toggling flag implementing a sense-reversing hand-off.
 */
class Multicaster
{
  public:
    Multicaster(core::Machine &m, sim::Pid pid, std::uint32_t readers);

    /** Producer: publish @p value and wait until all readers got it. */
    coro::Task<void> publish(core::ThreadCtx &ctx, std::uint64_t value);

    /** Reader: wait for the next publication and return it. */
    coro::Task<std::uint64_t> receive(core::ThreadCtx &ctx);

  private:
    std::uint32_t readers_;
    sim::BmAddr dataAddr_;
    sim::BmAddr countAddr_;
    sim::BmAddr flagAddr_;
    std::uint64_t produceSense_ = 1;
    std::unordered_map<sim::ThreadId, std::uint64_t> readerSenses_;
};

} // namespace wisync::sync

#endif // WISYNC_SYNC_WISYNC_SYNC_HH
