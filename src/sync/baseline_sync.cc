#include "sync/baseline_sync.hh"

#include <bit>

#include "sim/logging.hh"

namespace wisync::sync {

namespace {

/** One 64-byte line per variable to avoid false sharing. */
sim::Addr
allocLine(core::Machine &m)
{
    return m.allocMem(64, 64);
}

} // namespace

// ---------------------------------------------------------------- TasLock

TasLock::TasLock(core::Machine &m) : lockAddr_(allocLine(m)) {}

coro::Task<void>
TasLock::acquire(core::ThreadCtx &ctx)
{
    for (;;) {
        // Test-and-test-and-set: spin on the cached copy first.
        co_await ctx.spinUntil(lockAddr_,
                               [](std::uint64_t v) { return v == 0; });
        const auto r = co_await ctx.cas(lockAddr_, 0, 1);
        if (r.success)
            co_return;
    }
}

coro::Task<void>
TasLock::release(core::ThreadCtx &ctx)
{
    co_await ctx.store(lockAddr_, 0);
}

// --------------------------------------------------------- CentralBarrier

CentralBarrier::CentralBarrier(core::Machine &m, std::uint32_t participants)
    : participants_(participants), countAddr_(allocLine(m)),
      releaseAddr_(allocLine(m))
{
    WISYNC_ASSERT(participants > 0, "empty barrier");
}

coro::Task<void>
CentralBarrier::wait(core::ThreadCtx &ctx)
{
    std::uint64_t &sense = senses_[ctx.tid()];
    sense = sense ? 0 : 1;

    // Baseline has only CAS: bump the counter with a CAS retry loop.
    std::uint64_t arrived;
    for (;;) {
        const std::uint64_t cur = co_await ctx.load(countAddr_);
        const auto r = co_await ctx.cas(countAddr_, cur, cur + 1);
        if (r.success) {
            arrived = cur + 1;
            break;
        }
    }

    if (arrived == participants_) {
        co_await ctx.store(countAddr_, 0);
        co_await ctx.store(releaseAddr_, sense);
    } else {
        const std::uint64_t want = sense;
        co_await ctx.spinUntil(releaseAddr_, [want](std::uint64_t v) {
            return v == want;
        });
    }
}

// ---------------------------------------------------------------- McsLock

McsLock::McsLock(core::Machine &m)
    : machine_(m), tailAddr_(allocLine(m))
{}

McsLock::QNode &
McsLock::nodeFor(core::ThreadCtx &ctx)
{
    auto it = qnodes_.find(ctx.tid());
    if (it == qnodes_.end()) {
        QNode qn;
        qn.base = machine_.allocMem(64, 64);
        qn.nextAddr = qn.base;
        qn.lockedAddr = qn.base + 8;
        it = qnodes_.emplace(ctx.tid(), qn).first;
    }
    return it->second;
}

coro::Task<void>
McsLock::acquire(core::ThreadCtx &ctx)
{
    QNode &my = nodeFor(ctx);
    co_await ctx.store(my.nextAddr, 0);
    // Enqueue at the tail; the previous value identifies our
    // predecessor's qnode (0 = lock was free).
    const std::uint64_t pred = co_await ctx.swap(tailAddr_, my.base);
    if (pred == 0)
        co_return; // uncontended
    co_await ctx.store(my.lockedAddr, 1);
    co_await ctx.store(pred /* pred.nextAddr == base */, my.base);
    // Spin on our own line only (the MCS property).
    co_await ctx.spinUntil(my.lockedAddr,
                           [](std::uint64_t v) { return v == 0; });
}

coro::Task<void>
McsLock::release(core::ThreadCtx &ctx)
{
    QNode &my = nodeFor(ctx);
    const std::uint64_t next = co_await ctx.load(my.nextAddr);
    if (next == 0) {
        // No known successor: try to swing the tail back to empty.
        const auto r = co_await ctx.cas(tailAddr_, my.base, 0);
        if (r.success)
            co_return;
        // A successor is mid-enqueue; wait for it to link itself.
        co_await ctx.spinUntil(my.nextAddr,
                               [](std::uint64_t v) { return v != 0; });
    }
    const std::uint64_t successor = co_await ctx.load(my.nextAddr);
    co_await ctx.store(successor + 8 /* lockedAddr */, 0);
}

// ------------------------------------------------------ TournamentBarrier

TournamentBarrier::TournamentBarrier(core::Machine &m,
                                     std::uint32_t participants)
    : participants_(participants)
{
    WISYNC_ASSERT(participants > 0, "empty barrier");
    rounds_ = participants_ <= 1
                  ? 0
                  : static_cast<std::uint32_t>(
                        std::bit_width(participants_ - 1));
    // One line per (slot, round) arrival flag plus one wake line/slot.
    arriveBase_ = m.allocMem(static_cast<std::uint64_t>(participants_) *
                                 (rounds_ ? rounds_ : 1) * 64,
                             64);
    wakeBase_ =
        m.allocMem(static_cast<std::uint64_t>(participants_) * 64, 64);
}

sim::Addr
TournamentBarrier::arriveFlag(std::uint32_t slot, std::uint32_t round) const
{
    return arriveBase_ +
           (static_cast<sim::Addr>(round) * participants_ + slot) * 64;
}

sim::Addr
TournamentBarrier::wakeFlag(std::uint32_t slot) const
{
    return wakeBase_ + static_cast<sim::Addr>(slot) * 64;
}

coro::Task<void>
TournamentBarrier::wait(core::ThreadCtx &ctx)
{
    auto slot_it = slots_.find(ctx.tid());
    if (slot_it == slots_.end())
        slot_it = slots_.emplace(ctx.tid(), nextSlot_++).first;
    const std::uint32_t slot = slot_it->second;
    WISYNC_ASSERT(slot < participants_, "more waiters than participants");

    std::uint64_t &sense = senses_[ctx.tid()];
    sense = sense ? 0 : 1;
    const std::uint64_t my_sense = sense;

    // Arrival: at round r, slots that are multiples of 2^(r+1) win;
    // the loser at distance 2^r signals its winner and blocks on its
    // own wake line.
    std::uint32_t lost_round = rounds_; // champion unless we lose
    for (std::uint32_t r = 0; r < rounds_; ++r) {
        const std::uint32_t stride = 1u << (r + 1);
        const std::uint32_t half = 1u << r;
        if (slot % stride == 0) {
            const std::uint32_t partner = slot + half;
            if (partner < participants_) {
                co_await ctx.spinUntil(
                    arriveFlag(partner, r),
                    [my_sense](std::uint64_t v) { return v == my_sense; });
            }
            // A bye (no partner) advances directly.
        } else {
            co_await ctx.store(arriveFlag(slot, r), my_sense);
            co_await ctx.spinUntil(wakeFlag(slot),
                                   [my_sense](std::uint64_t v) {
                                       return v == my_sense;
                                   });
            lost_round = r;
            break;
        }
    }

    // Wakeup tree: wake each loser we beat, top round first; they
    // recursively wake the subtrees they beat.
    for (std::uint32_t r = lost_round; r-- > 0;) {
        const std::uint32_t partner = slot + (1u << r);
        if (partner < participants_)
            co_await ctx.store(wakeFlag(partner), my_sense);
    }
}

// -------------------------------------------------------------- MemReducer

MemReducer::MemReducer(core::Machine &m) : addr_(allocLine(m)) {}

coro::Task<void>
MemReducer::add(core::ThreadCtx &ctx, std::uint64_t delta)
{
    // Baseline reduction: CAS retry loop.
    for (;;) {
        const std::uint64_t cur = co_await ctx.load(addr_);
        const auto r = co_await ctx.cas(addr_, cur, cur + delta);
        if (r.success)
            co_return;
    }
}

coro::Task<std::uint64_t>
MemReducer::read(core::ThreadCtx &ctx)
{
    co_return co_await ctx.load(addr_);
}

// ------------------------------------------------------------ MemOrBarrier

MemOrBarrier::MemOrBarrier(core::Machine &m) : flagAddr_(allocLine(m)) {}

coro::Task<void>
MemOrBarrier::trigger(core::ThreadCtx &ctx)
{
    co_await ctx.store(flagAddr_, sense_);
}

coro::Task<bool>
MemOrBarrier::poll(core::ThreadCtx &ctx)
{
    co_return co_await ctx.load(flagAddr_) == sense_;
}

coro::Task<void>
MemOrBarrier::await(core::ThreadCtx &ctx)
{
    const std::uint64_t want = sense_;
    co_await ctx.spinUntil(flagAddr_,
                           [want](std::uint64_t v) { return v == want; });
}

void
MemOrBarrier::reset()
{
    sense_ = sense_ ? 0 : 1;
}

} // namespace wisync::sync
