#include "sync/wisync_sync.hh"

#include <stdexcept>

#include "sim/logging.hh"

namespace wisync::sync {

sim::BmAddr
setupBmWords(core::Machine &m, std::uint32_t words, sim::Pid pid)
{
    WISYNC_ASSERT(m.bm() != nullptr, "BM variables need a WiSync config");
    sim::BmAddr addr = 0;
    if (!m.allocBm(words, addr))
        throw std::runtime_error("BM exhausted");
    for (std::uint32_t i = 0; i < words; ++i)
        m.bm()->storeArray().setTag(addr + i, pid);
    return addr;
}

// ----------------------------------------------------------------- BmLock

BmLock::BmLock(core::Machine &m, sim::Pid pid)
    : addr_(setupBmWords(m, 1, pid))
{}

coro::Task<void>
BmLock::acquire(core::ThreadCtx &ctx)
{
    for (;;) {
        // Test-and-test&set: watch the replica until the lock looks
        // free, then try to grab it (AFB retries inside).
        co_await ctx.bmSpinUntil(addr_,
                                 [](std::uint64_t v) { return v == 0; });
        if (co_await ctx.bmTestAndSet(addr_) == 0)
            co_return;
    }
}

coro::Task<void>
BmLock::release(core::ThreadCtx &ctx)
{
    co_await ctx.bmStore(addr_, 0);
}

// -------------------------------------------------------------- BmBarrier

BmBarrier::BmBarrier(core::Machine &m, sim::Pid pid,
                     std::uint32_t participants)
    : participants_(participants), countAddr_(setupBmWords(m, 1, pid)),
      releaseAddr_(setupBmWords(m, 1, pid))
{
    WISYNC_ASSERT(participants > 0, "empty barrier");
}

coro::Task<void>
BmBarrier::wait(core::ThreadCtx &ctx)
{
    std::uint64_t &sense = senses_[ctx.tid()];
    sense = sense ? 0 : 1;

    const std::uint64_t arrived =
        co_await ctx.bmFetchAdd(countAddr_, 1) + 1;
    if (arrived == participants_) {
        co_await ctx.bmStore(countAddr_, 0);
        co_await ctx.bmStore(releaseAddr_, sense);
    } else {
        const std::uint64_t want = sense;
        co_await ctx.bmSpinUntil(releaseAddr_, [want](std::uint64_t v) {
            return v == want;
        });
    }
}

// ------------------------------------------------------------ ToneBarrier

ToneBarrier::ToneBarrier(core::Machine &m, sim::Pid pid,
                         const std::vector<sim::NodeId> &participants)
    : machine_(m), addr_(setupBmWords(m, 1, pid))
{
    WISYNC_ASSERT(m.bm() != nullptr, "tone barrier needs WiSync");
    std::vector<bool> armed(m.config().numCores, false);
    for (const auto n : participants) {
        WISYNC_ASSERT(!armed[n],
                      "two threads of one tone barrier on the same core "
                      "are unsupported (§5.2)");
        armed[n] = true;
    }
    if (!m.bm()->allocToneBarrier(addr_, std::move(armed)))
        throw std::runtime_error("AllocB overflow (or no Tone channel)");
}

ToneBarrier::~ToneBarrier()
{
    machine_.bm()->deallocToneBarrier(addr_);
}

coro::Task<void>
ToneBarrier::wait(core::ThreadCtx &ctx)
{
    // Fig. 4(c): local_sense = !local_sense; tone_st; spin tone_ld.
    std::uint64_t &sense = senses_[ctx.tid()];
    sense = sense ? 0 : 1;
    const std::uint64_t want = sense;
    co_await ctx.toneStore(addr_);
    co_await ctx.bmSpinUntil(addr_,
                             [want](std::uint64_t v) { return v == want; });
}

// ------------------------------------------------------- MultiChipBarrier

MultiChipBarrier::MultiChipBarrier(core::Machine &m, sim::Pid pid,
                                   const std::vector<sim::NodeId>
                                       &participants)
    : machine_(m), gcountAddr_(setupBmWords(m, 1, pid)),
      greleaseAddr_(setupBmWords(m, 1, pid))
{
    WISYNC_ASSERT(m.bm() != nullptr, "multi-chip barrier needs WiSync");
    const core::MachineConfig &cfg = m.config();
    groupOfChip_.assign(cfg.numChips, cfg.numChips);
    for (const sim::NodeId n : participants) {
        const std::uint32_t chip = cfg.chipOf(n);
        if (groupOfChip_[chip] == cfg.numChips) {
            groupOfChip_[chip] =
                static_cast<std::uint32_t>(groups_.size());
            ChipGroup g;
            g.chip = chip;
            g.repNode = n;
            groups_.push_back(g);
        }
        ++groups_[groupOfChip_[chip]].participants;
    }
    WISYNC_ASSERT(groups_.size() > 1,
                  "participants sit on one chip — use a plain barrier");
    for (ChipGroup &g : groups_) {
        // Local phase: a per-chip tone barrier where the hardware has
        // a slot, the counter protocol otherwise. Either way the words
        // are chip-local — the local phase never crosses the bridge.
        g.tone = false;
        if (cfg.hasTone()) {
            g.arriveAddr = setupBmWords(m, 1, pid);
            std::vector<bool> armed(cfg.numCores, false);
            for (const sim::NodeId n : participants)
                if (cfg.chipOf(n) == g.chip) {
                    WISYNC_ASSERT(!armed[n],
                                  "two threads of one tone barrier on "
                                  "the same core are unsupported (§5.2)");
                    armed[n] = true;
                }
            g.tone = m.bm()->allocToneBarrier(g.arriveAddr,
                                              std::move(armed));
        }
        if (!g.tone) {
            if (!cfg.hasTone())
                g.arriveAddr = setupBmWords(m, 1, pid);
            m.bm()->storeArray().setScope(g.arriveAddr,
                                          bm::BmScope::ChipLocal);
        }
        g.releaseAddr = setupBmWords(m, 1, pid);
        m.bm()->storeArray().setScope(g.releaseAddr,
                                      bm::BmScope::ChipLocal);
    }
}

MultiChipBarrier::~MultiChipBarrier()
{
    for (const ChipGroup &g : groups_)
        if (g.tone)
            machine_.bm()->deallocToneBarrier(g.arriveAddr);
}

coro::Task<void>
MultiChipBarrier::wait(core::ThreadCtx &ctx)
{
    std::uint64_t &sense = senses_[ctx.tid()];
    sense = sense ? 0 : 1;
    const std::uint64_t want = sense;

    const ChipGroup &g =
        groups_[groupOfChip_[machine_.config().chipOf(ctx.node())]];
    bool rep = false;
    if (g.tone) {
        // All local threads release together; the fixed representative
        // then carries the chip into the global phase.
        co_await ctx.toneStore(g.arriveAddr);
        co_await ctx.bmSpinUntil(g.arriveAddr, [want](std::uint64_t v) {
            return v == want;
        });
        rep = ctx.node() == g.repNode;
    } else {
        // Counter protocol: the last local arriver is the rep.
        const std::uint64_t arrived =
            co_await ctx.bmFetchAdd(g.arriveAddr, 1) + 1;
        if (arrived == g.participants) {
            co_await ctx.bmStore(g.arriveAddr, 0);
            rep = true;
        }
    }
    if (rep) {
        // Global phase over the bridge: one sense-reversing round among
        // the chip representatives. fetch&add on a bridged word retries
        // through stale-replica AFB aborts until the chip is current.
        const std::uint64_t garrived =
            co_await ctx.bmFetchAdd(gcountAddr_, 1) + 1;
        if (garrived == groups_.size()) {
            co_await ctx.bmStore(gcountAddr_, 0);
            co_await ctx.bmStore(greleaseAddr_, sense);
        } else {
            co_await ctx.bmSpinUntil(greleaseAddr_,
                                     [want](std::uint64_t v) {
                                         return v == want;
                                     });
        }
        co_await ctx.bmStore(g.releaseAddr, sense);
    } else {
        co_await ctx.bmSpinUntil(g.releaseAddr, [want](std::uint64_t v) {
            return v == want;
        });
    }
}

// -------------------------------------------------------- BmOrBarrierImpl

BmOrBarrierImpl::BmOrBarrierImpl(core::Machine &m, sim::Pid pid)
    : addr_(setupBmWords(m, 1, pid))
{}

coro::Task<void>
BmOrBarrierImpl::trigger(core::ThreadCtx &ctx)
{
    co_await ctx.bmStore(addr_, sense_);
}

coro::Task<bool>
BmOrBarrierImpl::poll(core::ThreadCtx &ctx)
{
    co_return co_await ctx.bmLoad(addr_) == sense_;
}

coro::Task<void>
BmOrBarrierImpl::await(core::ThreadCtx &ctx)
{
    const std::uint64_t want = sense_;
    co_await ctx.bmSpinUntil(addr_,
                             [want](std::uint64_t v) { return v == want; });
}

void
BmOrBarrierImpl::reset()
{
    sense_ = sense_ ? 0 : 1;
}

// -------------------------------------------------------------- BmReducer

BmReducer::BmReducer(core::Machine &m, sim::Pid pid)
    : addr_(setupBmWords(m, 1, pid))
{}

coro::Task<void>
BmReducer::add(core::ThreadCtx &ctx, std::uint64_t delta)
{
    co_await ctx.bmFetchAdd(addr_, delta);
}

coro::Task<std::uint64_t>
BmReducer::read(core::ThreadCtx &ctx)
{
    co_return co_await ctx.bmLoad(addr_);
}

// ------------------------------------------------------- ProducerConsumer

ProducerConsumer::ProducerConsumer(core::Machine &m, sim::Pid pid)
    : dataAddr_(setupBmWords(m, 4, pid)), flagAddr_(setupBmWords(m, 1, pid))
{}

coro::Task<void>
ProducerConsumer::produce(core::ThreadCtx &ctx,
                          std::array<std::uint64_t, 4> values)
{
    // Wait until the previous datum was consumed (flag clear).
    co_await ctx.bmSpinUntil(flagAddr_,
                             [](std::uint64_t v) { return v == 0; });
    co_await ctx.bmBulkStore(dataAddr_, values);
    co_await ctx.bmStore(flagAddr_, 1);
}

coro::Task<std::array<std::uint64_t, 4>>
ProducerConsumer::consume(core::ThreadCtx &ctx)
{
    co_await ctx.bmSpinUntil(flagAddr_,
                             [](std::uint64_t v) { return v == 1; });
    const auto data = co_await ctx.bmBulkLoad(dataAddr_);
    co_await ctx.bmStore(flagAddr_, 0);
    co_return data;
}

// ------------------------------------------------------------ Multicaster

Multicaster::Multicaster(core::Machine &m, sim::Pid pid,
                         std::uint32_t readers)
    : readers_(readers), dataAddr_(setupBmWords(m, 1, pid)),
      countAddr_(setupBmWords(m, 1, pid)), flagAddr_(setupBmWords(m, 1, pid))
{
    WISYNC_ASSERT(readers > 0, "multicast needs readers");
}

coro::Task<void>
Multicaster::publish(core::ThreadCtx &ctx, std::uint64_t value)
{
    // Fig. 4(d): write data, count = N, toggle flag, spin count == 0.
    co_await ctx.bmStore(dataAddr_, value);
    co_await ctx.bmStore(countAddr_, readers_);
    co_await ctx.bmStore(flagAddr_, produceSense_);
    produceSense_ = produceSense_ ? 0 : 1;
    co_await ctx.bmSpinUntil(countAddr_,
                             [](std::uint64_t v) { return v == 0; });
}

coro::Task<std::uint64_t>
Multicaster::receive(core::ThreadCtx &ctx)
{
    // Reader senses start at 1, matching the producer's first toggle.
    std::uint64_t &sense =
        readerSenses_.try_emplace(ctx.tid(), 1).first->second;
    const std::uint64_t want = sense;
    sense = sense ? 0 : 1;
    co_await ctx.bmSpinUntil(flagAddr_,
                             [want](std::uint64_t v) { return v == want; });
    const std::uint64_t data = co_await ctx.bmLoad(dataAddr_);
    // fetch&add(count, -1).
    co_await ctx.bmFetchAdd(countAddr_,
                            static_cast<std::uint64_t>(-1));
    co_return data;
}

} // namespace wisync::sync
