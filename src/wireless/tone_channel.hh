/**
 * @file
 * The Tone channel and its barrier tables (paper §4.2.2, §5.1).
 *
 * A second, 1 GHz-wide channel at 90 GHz carries only tones (1 bit per
 * 1 ns slot). It executes AND-barriers almost for free: the first
 * arrival announces the barrier with a Tone-bit message on the Data
 * channel; every armed node then jams a continuous tone; each node
 * drops its tone when its core arrives; when the channel falls silent
 * the barrier is complete and every node toggles the barrier's BM word
 * (a hardware sense-reversing barrier).
 *
 * Multiple concurrent tone barriers time-multiplex the channel: slots
 * are assigned round-robin over the *active* barriers (the ActiveB
 * table), so silence for barrier B is detectable only on B's slots.
 *
 * The AllocB/ActiveB tables are physically replicated per node and
 * kept identical chip-wide by construction (they are only mutated by
 * broadcast events). This model therefore stores them centrally, with
 * the per-node Armed/Arrived bits kept inside each entry — exactly
 * the state the paper describes.
 */

#ifndef WISYNC_WIRELESS_TONE_CHANNEL_HH
#define WISYNC_WIRELESS_TONE_CHANNEL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace wisync::wireless {

/** Tone-channel statistics. */
struct ToneChannelStats
{
    sim::Counter releases;
    sim::Counter slotCycles;
    sim::Counter activations;
    sim::Accumulator concurrentActive;

    /** Zero everything (assignment cannot miss a late-added field). */
    void reset() { *this = {}; }
};

/**
 * Tone channel + AllocB/ActiveB barrier state machine.
 *
 * The BM layer drives this: variable allocation populates AllocB,
 * delivery of a Tone-bit Data-channel message activates a barrier,
 * tone_st records arrivals, and the registered release handler fires
 * when a barrier's tone falls silent.
 */
class ToneChannel
{
  public:
    /**
     * @param engine      Simulation engine.
     * @param num_nodes   Nodes on the chip.
     * @param alloc_slots Capacity of AllocB/ActiveB (paper: sized
     *                    equally; allocation overflow is an error).
     */
    ToneChannel(sim::Engine &engine, std::uint32_t num_nodes,
                std::uint32_t alloc_slots = 16);

    /** Handler invoked (once per completion) when a barrier releases. */
    void
    setReleaseHandler(std::function<void(sim::BmAddr)> handler)
    {
        releaseHandler_ = std::move(handler);
    }

    /**
     * Allocate a tone barrier on @p addr with the given participation
     * (Armed) bits. @return false if AllocB is full (caller must fall
     * back to a Data-channel barrier).
     */
    bool alloc(sim::BmAddr addr, std::vector<bool> armed);

    /** Remove the barrier from AllocB everywhere (program teardown). */
    void dealloc(sim::BmAddr addr);

    bool isAllocated(sim::BmAddr addr) const;
    bool isActive(sim::BmAddr addr) const;

    /**
     * Completion epoch of the barrier (bumped at every release). A
     * queued announcement whose epoch is stale — the barrier activated
     * or completed while the message waited in the MAC — must be
     * cancelled instead of transmitted, or it would re-activate an
     * idle barrier.
     */
    std::uint64_t epochOf(sim::BmAddr addr) const;

    /** True if @p node is armed for @p addr (participates). */
    bool isArmed(sim::BmAddr addr, sim::NodeId node) const;

    /**
     * True if any allocated tone barrier arms @p node. Threads on
     * such a node must not migrate (§5.2: the Armed bit is per-node
     * hardware state that cannot follow a thread).
     */
    bool anyArmedOn(sim::NodeId node) const;

    /**
     * Should @p node's tone_st announce the barrier on the Data
     * channel? True iff the barrier is not active yet from this node's
     * (= chip-consistent) point of view.
     */
    bool needsAnnouncement(sim::BmAddr addr) const;

    /**
     * Tone-bit message delivered on the Data channel: copy the AllocB
     * entry into ActiveB (idempotent) and start tones on armed,
     * not-yet-arrived nodes.
     */
    void activate(sim::BmAddr addr);

    /**
     * Core at @p node executed tone_st: drop its tone (or record a
     * pending arrival if the activation is still in flight).
     */
    void arrive(sim::BmAddr addr, sim::NodeId node);

    std::uint32_t activeCount() const
    {
        return static_cast<std::uint32_t>(activeOrder_.size());
    }
    std::uint32_t allocatedCount() const;
    std::uint32_t capacity() const { return allocSlots_; }

    const ToneChannelStats &stats() const { return stats_; }

    /**
     * Empty AllocB/ActiveB, silent channel, zero stats, epochs back to
     * zero. The ticker event (if pending) must have been dropped by
     * the engine reset that precedes this; the release handler is
     * retained.
     */
    void reset();

  private:
    struct Barrier
    {
        sim::BmAddr addr = 0;
        bool used = false;
        bool active = false;
        std::vector<bool> armed;
        std::vector<bool> arrived;
        /** tone_st executed before the activation was delivered. */
        std::vector<bool> pendingArrival;
        /** Completed iterations (see epochOf). */
        std::uint64_t epoch = 0;
    };

    Barrier *find(sim::BmAddr addr);
    const Barrier *find(sim::BmAddr addr) const;

    /** One 1 ns slot: scan the owning active barrier for silence. */
    void tick();
    void startTickerIfNeeded();
    /** Queue the next tick one cycle out (calendar-tier event). */
    void scheduleTick();

    sim::Engine &engine_;
    std::uint32_t numNodes_;
    std::uint32_t allocSlots_;
    std::vector<Barrier> allocB_;
    /** Round-robin order of active barriers (indices into allocB_). */
    std::vector<std::size_t> activeOrder_;
    std::size_t slotIdx_ = 0;
    bool ticking_ = false;
    std::function<void(sim::BmAddr)> releaseHandler_;
    ToneChannelStats stats_;
};

} // namespace wisync::wireless

#endif // WISYNC_WIRELESS_TONE_CHANNEL_HH
