/**
 * @file
 * Analytical RF transceiver scaling model (paper §2, §7.1) and the
 * per-link physical channel model (path loss / SNR / BER).
 *
 * The paper extrapolates the measured 65 nm transceiver+antenna of
 * Yu et al. [51] (0.23 mm², 31.2 mW, 16 Gb/s at 60 GHz) to 22 nm:
 * "a sublinear area scaling, more conservative than the linear trend
 * used in related RF interconnect works [11,33], as well as a power
 * reduction commensurate with the 1.67x scaling trend predicted in
 * [11]" — landing on 0.1 mm² and 16 mW. The tone-channel extension
 * (extra circuitry + a second 90 GHz antenna, scaled from [14,49])
 * adds 0.04 mm² and 2 mW, for a 0.14 mm² / 18 mW total compared in
 * Table 4 against a Xeon Haswell core (21.1 mm², ~5 W) and an Atom
 * Silvermont core (2.5 mm², ~1 W).
 *
 * This module encodes that arithmetic: power-law tech scaling fitted
 * through the paper's endpoints, plus the Table 4 comparison rows.
 */

#ifndef WISYNC_WIRELESS_RF_MODEL_HH
#define WISYNC_WIRELESS_RF_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace wisync::wireless {

/** A transceiver (+antenna) implementation point. */
struct RfSpec
{
    double areaMm2;
    double powerMw;
    double bandwidthGbps;
    double freqGhz;
    int techNm;
};

/** A processor core for the Table 4 comparison. */
struct CoreSpec
{
    std::string name;
    double areaMm2;
    double powerW; // TDP at 1 GHz-normalised operating point
};

/** One comparison row of Table 4. */
struct Table4Row
{
    std::string name;
    double areaPct;  // (T+2A area) / core area * 100
    double powerPct; // (T+2A power) / core TDP * 100
};

/** The paper's RF scaling arithmetic. */
class RfScalingModel
{
  public:
    /** Sublinear area exponent: fits 0.23 mm² @65 nm -> 0.1 mm² @22 nm. */
    static constexpr double kAreaExponent = 0.77;
    /** Power exponent: fits 31.2 mW @65 nm -> 16 mW @22 nm. */
    static constexpr double kPowerExponent = 0.616;

    /** Yu et al. [51]: 65 nm, 16 Gb/s, 60 GHz transceiver + antenna. */
    static RfSpec yu65Reference();

    /** Tone support (extra circuitry + 90 GHz antenna) at 22 nm. */
    static RfSpec toneExtension22();

    /** Power-law scale @p ref from its node to @p target_nm. */
    static RfSpec scale(const RfSpec &ref, int target_nm);

    /** WiSync's per-node budget: scaled [51] + tone extension. */
    static RfSpec wisyncTransceiver22();

    /** The two reference cores of Table 4 (22 nm, per-core TDP). */
    static std::vector<CoreSpec> referenceCores();

    /** Compute Table 4: T+2A relative to each reference core. */
    static std::vector<Table4Row> table4();

    /**
     * 1 ns channel slots a @p bits control frame occupies at
     * @p spec's bandwidth (ceil, at least 1). Prices token-family
     * control traffic through the same transceiver that carries data:
     * a 16-bit token at the 16 Gb/s WiSync transceiver costs exactly
     * one slot — the legacy tokenPassCycles constant.
     */
    static std::uint32_t frameCycles(std::uint32_t bits,
                                     const RfSpec &spec);
};

/**
 * Per-link channel parameters for the in-package 60 GHz medium.
 *
 * The defaults follow the measurement-driven picture of Timoneda et
 * al. ("Engineer the Channel and Adapt to it"): within a flip-chip
 * package the dominant trend is a roughly distance-linear path loss
 * on top of a fixed insertion loss, with tens of dB of SNR available
 * at millimetre ranges — so at the default transmit power the ideal
 * channel of the rest of the simulator is recovered (BER ~ 0 on every
 * link). Lowering txPowerDbm (or overriding individual links) walks
 * the chip into the lossy regime.
 */
struct RfChannelConfig
{
    /** Die edge, mm; nodes sit at the centres of a ceil(sqrt(N)) grid. */
    double chipEdgeMm = 20.0;
    /** Insertion/reference loss at zero distance, dB. */
    double plRefDb = 30.0;
    /** Path-loss slope, dB per mm of straight-line distance. */
    double plSlopeDbPerMm = 1.0;
    /** Flat extra attenuation on every link, dB — the frequency-
     *  channel profile (FrequencyPlan::channelLossDb) of the spectrum
     *  slot this die transmits on. 0 keeps the slot-agnostic model. */
    double extraLossDb = 0.0;
    /** Transmit power, dBm. */
    double txPowerDbm = 10.0;
    /** Receiver noise floor over the 16 GHz band incl. noise figure,
     *  dBm (kTB at 300 K over 16 GHz is ~ -72 dBm; +10 dB NF). */
    double noiseFloorDbm = -62.0;
};

/**
 * Deterministic per-(tx,rx) attenuation matrix: grid geometry ->
 * distance -> path loss -> SNR -> BER -> broadcast packet-error rate.
 * Individual links can be overridden (a blocked or resonant path per
 * the Timoneda measurements); the model itself draws no randomness —
 * the packet-error Bernoulli draw happens in the DataChannel, from
 * the transmitting node's RNG stream.
 */
class RfChannelModel
{
  public:
    explicit RfChannelModel(std::uint32_t num_nodes,
                            const RfChannelConfig &cfg = {});

    std::uint32_t numNodes() const { return numNodes_; }
    const RfChannelConfig &config() const { return cfg_; }

    /** Straight-line distance between the two nodes' grid cells, mm. */
    double distanceMm(std::uint32_t tx, std::uint32_t rx) const;

    /** Attenuation on the (tx, rx) link, dB (override-aware). */
    double
    pathLossDb(std::uint32_t tx, std::uint32_t rx) const
    {
        return pathLossDb_[idx(tx, rx)];
    }

    /** Pin one link's attenuation (both directions stay independent).
     *  Out-of-range endpoints are a fatal configuration error. */
    void overridePathLoss(std::uint32_t tx, std::uint32_t rx, double db);

    /** Received signal-to-noise ratio on the link, dB. */
    double snrDb(std::uint32_t tx, std::uint32_t rx) const;

    /** Per-bit error probability: non-coherent OOK, 0.5*exp(-SNR/2). */
    double bitErrorRate(std::uint32_t tx, std::uint32_t rx) const;

    /**
     * Probability that a @p bits broadcast from @p tx is corrupted at
     * one or more of the other nodes. The channel treats a broadcast
     * as all-or-nothing (any corrupted replica voids the whole
     * transmission and its ack), which is what keeps BM replicas
     * coherent under loss.
     */
    double broadcastErrorRate(std::uint32_t tx, std::uint32_t bits) const;

  private:
    std::size_t
    idx(std::uint32_t tx, std::uint32_t rx) const
    {
        return static_cast<std::size_t>(tx) * numNodes_ + rx;
    }

    std::uint32_t numNodes_;
    std::uint32_t side_;
    RfChannelConfig cfg_;
    /** numNodes^2 link attenuations, overrides applied in place. */
    std::vector<double> pathLossDb_;
};

} // namespace wisync::wireless

#endif // WISYNC_WIRELESS_RF_MODEL_HH
