/**
 * @file
 * Analytical RF transceiver area/power scaling model (paper §2, §7.1).
 *
 * The paper extrapolates the measured 65 nm transceiver+antenna of
 * Yu et al. [51] (0.23 mm², 31.2 mW, 16 Gb/s at 60 GHz) to 22 nm:
 * "a sublinear area scaling, more conservative than the linear trend
 * used in related RF interconnect works [11,33], as well as a power
 * reduction commensurate with the 1.67x scaling trend predicted in
 * [11]" — landing on 0.1 mm² and 16 mW. The tone-channel extension
 * (extra circuitry + a second 90 GHz antenna, scaled from [14,49])
 * adds 0.04 mm² and 2 mW, for a 0.14 mm² / 18 mW total compared in
 * Table 4 against a Xeon Haswell core (21.1 mm², ~5 W) and an Atom
 * Silvermont core (2.5 mm², ~1 W).
 *
 * This module encodes that arithmetic: power-law tech scaling fitted
 * through the paper's endpoints, plus the Table 4 comparison rows.
 */

#ifndef WISYNC_WIRELESS_RF_MODEL_HH
#define WISYNC_WIRELESS_RF_MODEL_HH

#include <string>
#include <vector>

namespace wisync::wireless {

/** A transceiver (+antenna) implementation point. */
struct RfSpec
{
    double areaMm2;
    double powerMw;
    double bandwidthGbps;
    double freqGhz;
    int techNm;
};

/** A processor core for the Table 4 comparison. */
struct CoreSpec
{
    std::string name;
    double areaMm2;
    double powerW; // TDP at 1 GHz-normalised operating point
};

/** One comparison row of Table 4. */
struct Table4Row
{
    std::string name;
    double areaPct;  // (T+2A area) / core area * 100
    double powerPct; // (T+2A power) / core TDP * 100
};

/** The paper's RF scaling arithmetic. */
class RfScalingModel
{
  public:
    /** Sublinear area exponent: fits 0.23 mm² @65 nm -> 0.1 mm² @22 nm. */
    static constexpr double kAreaExponent = 0.77;
    /** Power exponent: fits 31.2 mW @65 nm -> 16 mW @22 nm. */
    static constexpr double kPowerExponent = 0.616;

    /** Yu et al. [51]: 65 nm, 16 Gb/s, 60 GHz transceiver + antenna. */
    static RfSpec yu65Reference();

    /** Tone support (extra circuitry + 90 GHz antenna) at 22 nm. */
    static RfSpec toneExtension22();

    /** Power-law scale @p ref from its node to @p target_nm. */
    static RfSpec scale(const RfSpec &ref, int target_nm);

    /** WiSync's per-node budget: scaled [51] + tone extension. */
    static RfSpec wisyncTransceiver22();

    /** The two reference cores of Table 4 (22 nm, per-core TDP). */
    static std::vector<CoreSpec> referenceCores();

    /** Compute Table 4: T+2A relative to each reference core. */
    static std::vector<Table4Row> table4();
};

} // namespace wisync::wireless

#endif // WISYNC_WIRELESS_RF_MODEL_HH
