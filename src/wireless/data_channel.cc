#include "wireless/data_channel.hh"

#include <utility>

#include "sim/logging.hh"
#include "wireless/mac/mac_protocol.hh"

namespace wisync::wireless {

DataChannel::DataChannel(sim::Engine &engine, const WirelessConfig &cfg)
    : engine_(engine), cfg_(cfg)
{
    WISYNC_ASSERT(cfg_.collisionCycles < cfg_.dataCycles,
                  "collision penalty must be below full transfer time");
}

void
DataChannel::reset(const WirelessConfig &cfg)
{
    WISYNC_ASSERT(cfg.collisionCycles < cfg.dataCycles,
                  "collision penalty must be below full transfer time");
    cfg_ = cfg;
    nextFree_ = 0;
    openSlot_ = sim::kCycleMax;
    slotAttempts_.clear();
    stats_.reset();
}

coro::Task<DataChannel::Outcome>
DataChannel::attempt(sim::NodeId src, bool bulk, sim::UniqueFunction &deliver,
                     const std::function<bool()> *abort)
{
    (void)src;
    // A ready transceiver waits for the cycle the channel is next
    // expected to be free (§4.1); the horizon can move while waiting.
    while (engine_.now() < nextFree_)
        co_await coro::delay(engine_, nextFree_ - engine_.now());

    Pending pending(engine_);
    pending.bulk = bulk;
    pending.deliver = &deliver;
    pending.abort = abort;

    if (openSlot_ != engine_.now()) {
        openSlot_ = engine_.now();
        slotAttempts_.clear();
        // Arbitrate after every same-cycle attempt has registered.
        engine_.scheduleIn(0, [this] { arbitrate(); });
    }
    slotAttempts_.push_back(&pending);
    co_return co_await pending.done;
}

void
DataChannel::arbitrate()
{
    std::vector<Pending *> attempts = std::move(slotAttempts_);
    slotAttempts_.clear();
    openSlot_ = sim::kCycleMax;
    if (attempts.empty())
        return;

    // AFB semantics: a transmission whose abort predicate holds when
    // the write is attempted never reaches the air.
    std::vector<Pending *> live;
    live.reserve(attempts.size());
    for (Pending *p : attempts) {
        if (p->abort && (*p->abort)())
            p->done.set(Outcome::Aborted);
        else
            live.push_back(p);
    }
    attempts = std::move(live);
    if (attempts.empty())
        return;

    if (attempts.size() == 1) {
        Pending *p = attempts.front();
        const std::uint32_t dur =
            p->bulk ? cfg_.bulkCycles : cfg_.dataCycles;
        nextFree_ = engine_.now() + dur;
        stats_.busyCycles.inc(dur);
        stats_.messages.inc();
        if (p->bulk)
            stats_.bulkMessages.inc();
        // Delivery happens at the end of the transmission: the deliver
        // callback is the total-order commit point for BM updates.
        engine_.scheduleIn(dur, [p] {
            if (*p->deliver)
                (*p->deliver)();
            p->done.set(Outcome::Delivered);
        });
        return;
    }

    // Two or more heads in the same slot: every transmitter aborts
    // after the listen cycle; the channel frees after 2 cycles. One
    // event per transmitter (rather than one owning the whole vector)
    // keeps each callback inside the event slot's inline buffer; the
    // per-attempt completion order matches the registration order.
    nextFree_ = engine_.now() + cfg_.collisionCycles;
    stats_.collisions.inc();
    stats_.busyCycles.inc(cfg_.collisionCycles);
    for (Pending *p : attempts)
        engine_.scheduleIn(cfg_.collisionCycles,
                           [p] { p->done.set(Outcome::Collided); });
}

Mac::Mac(sim::Engine &engine, DataChannel &channel, MacProtocol &protocol,
         sim::NodeId node, sim::Rng rng)
    : engine_(engine), channel_(channel), protocol_(&protocol),
      node_(node), rng_(rng), order_(engine)
{}

void
Mac::reset(MacProtocol &protocol, sim::Rng rng)
{
    protocol_ = &protocol;
    rng_ = rng;
    order_.reset();
    retries_.reset();
}

coro::Task<void>
Mac::send(bool bulk, sim::UniqueFunction deliver,
          const std::function<bool()> *abort)
{
    // A node's broadcasts are strictly ordered (§4.2.1: no subsequent
    // store proceeds until the current one performed).
    co_await order_.lock();
    const sim::Cycle first_attempt = engine_.now();
    for (;;) {
        co_await protocol_->acquire(node_);
        if (abort && (*abort)()) {
            // Cancelled before reaching the channel. The claim must
            // still be dropped: a granted token (or a fuzzy-token
            // contention grant picked up during the last collision)
            // would otherwise stall every queued sender.
            protocol_->release(node_, false);
            break;
        }
        const auto outcome =
            co_await channel_.attempt(node_, bulk, deliver, abort);
        if (outcome == DataChannel::Outcome::Collided) {
            // The protocol drops the claim, updates contention state
            // and performs this node's backoff; then contend again.
            retries_.inc();
            co_await protocol_->onCollision(node_, rng_);
            continue;
        }
        protocol_->release(node_,
                           outcome == DataChannel::Outcome::Delivered);
        if (outcome == DataChannel::Outcome::Delivered)
            channel_.noteDelivery(first_attempt);
        break;
    }
    order_.unlock();
}

} // namespace wisync::wireless
