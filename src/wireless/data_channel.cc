#include "wireless/data_channel.hh"

#include <utility>

#include "sim/logging.hh"
#include "wireless/mac/mac_protocol.hh"

namespace wisync::wireless {

namespace {

/** Shared ctor/reset validation of the loss + burst knobs. */
void
validateLossConfig(const WirelessConfig &cfg)
{
    WISYNC_ASSERT(cfg.collisionCycles < cfg.dataCycles,
                  "collision penalty must be below full transfer time");
    WISYNC_ASSERT(cfg.lossPct >= 0.0 && cfg.lossPct <= 100.0,
                  "lossPct is a percentage");
    WISYNC_ASSERT(cfg.burst.goodLossPct >= 0.0 &&
                      cfg.burst.goodLossPct <= 100.0 &&
                      cfg.burst.badLossPct >= 0.0 &&
                      cfg.burst.badLossPct <= 100.0,
                  "burst state loss rates are percentages");
    WISYNC_ASSERT(cfg.burst.pGoodToBad >= 0.0 &&
                      cfg.burst.pGoodToBad <= 1.0 &&
                      cfg.burst.pBadToGood >= 0.0 &&
                      cfg.burst.pBadToGood <= 1.0,
                  "burst transition probabilities live in [0, 1]");
}

} // namespace

DataChannel::DataChannel(sim::Engine &engine, const WirelessConfig &cfg)
    : engine_(engine), cfg_(cfg)
{
    validateLossConfig(cfg_);
    lossEnabled_ = cfg_.lossPct > 0.0 || cfg_.burst.lossy();
}

void
DataChannel::reset(const WirelessConfig &cfg)
{
    validateLossConfig(cfg);
    cfg_ = cfg;
    nextFree_ = 0;
    openSlot_ = sim::kCycleMax;
    slotAttempts_.clear();
    dropData_.clear();
    dropBulk_.clear();
    burstStates_.clear();
    lossEnabled_ = cfg_.lossPct > 0.0 || cfg_.burst.lossy();
    stats_.reset();
}

void
DataChannel::setDropTable(std::vector<double> data, std::vector<double> bulk)
{
    dropData_ = std::move(data);
    dropBulk_ = std::move(bulk);
    lossEnabled_ =
        cfg_.lossPct > 0.0 || !dropData_.empty() || cfg_.burst.lossy();
}

double
DataChannel::dropProbability(sim::NodeId src, bool bulk) const
{
    // The uniform knob and the SNR-derived per-link rate are
    // independent corruption sources; survival probabilities multiply.
    double ok = 1.0 - cfg_.lossPct / 100.0;
    const auto &table = bulk ? dropBulk_ : dropData_;
    if (src < table.size())
        ok *= 1.0 - table[src];
    const double per = 1.0 - ok;
    return per < 0.0 ? 0.0 : (per > 1.0 ? 1.0 : per);
}

double
DataChannel::burstDropProbability(sim::NodeId src, bool bulk, sim::Rng &rng)
{
    // The Gilbert–Elliott chain replaces the uniform lossPct knob: its
    // per-state rate IS the "interference" corruption source. The
    // SNR-derived per-link rate is still an independent source, so the
    // survival probabilities multiply exactly as in dropProbability().
    if (burstStates_.size() <= src)
        burstStates_.resize(src + 1);
    double ok = 1.0 - burstStates_[src].step(cfg_.burst, rng);
    const auto &table = bulk ? dropBulk_ : dropData_;
    if (src < table.size())
        ok *= 1.0 - table[src];
    const double per = 1.0 - ok;
    return per < 0.0 ? 0.0 : (per > 1.0 ? 1.0 : per);
}

namespace {

/** Route an outcome to whichever completion sink the Pending carries. */
void
complete(DataChannel::Pending *p, DataChannel::Outcome outcome)
{
    if (p->done != nullptr)
        p->done->set(outcome);
    else
        p->fast->complete(outcome);
}

} // namespace

void
DataChannel::joinSlot(Pending &p)
{
    WISYNC_ASSERT(engine_.now() >= nextFree_,
                  "joinSlot while the channel is busy");
    if (openSlot_ != engine_.now()) {
        openSlot_ = engine_.now();
        slotAttempts_.clear();
        // Arbitrate after every same-cycle attempt has registered.
        engine_.scheduleIn(0, [this] { arbitrate(); });
    }
    slotAttempts_.push_back(&p);
}

coro::Task<DataChannel::Outcome>
DataChannel::attempt(sim::NodeId src, bool bulk, sim::UniqueFunction &deliver,
                     const std::function<bool()> *abort, sim::Rng *rng)
{
    // A ready transceiver waits for the cycle the channel is next
    // expected to be free (§4.1); the horizon can move while waiting.
    while (engine_.now() < nextFree_)
        co_await coro::delay(engine_, nextFree_ - engine_.now());

    coro::Future<Outcome> done(engine_);
    Pending pending;
    pending.bulk = bulk;
    pending.deliver = &deliver;
    pending.abort = abort;
    pending.done = &done;
    pending.src = src;
    pending.rng = rng;
    joinSlot(pending);
    co_return co_await done;
}

void
DataChannel::arbitrate()
{
    // Double-buffer the attempt list (both vectors keep their
    // capacity) and compact the abort survivors in place, so steady-
    // state arbitration is allocation-free.
    arbScratch_.clear();
    arbScratch_.swap(slotAttempts_);
    openSlot_ = sim::kCycleMax;
    if (arbScratch_.empty())
        return;

    // AFB semantics: a transmission whose abort predicate holds when
    // the write is attempted never reaches the air.
    std::size_t live = 0;
    for (Pending *p : arbScratch_) {
        if (p->abort && (*p->abort)())
            complete(p, Outcome::Aborted);
        else
            arbScratch_[live++] = p;
    }
    arbScratch_.resize(live);
    if (arbScratch_.empty())
        return;

    if (arbScratch_.size() == 1) {
        Pending *p = arbScratch_.front();
        const std::uint32_t dur =
            p->bulk ? cfg_.bulkCycles : cfg_.dataCycles;
        nextFree_ = engine_.now() + dur;
        stats_.busyCycles.inc(dur);
        stats_.messages.inc();
        if (p->bulk)
            stats_.bulkMessages.inc();
        // Lossy channel: one Bernoulli draw from the transmitting
        // node's RNG stream decides whether the frame survives at
        // every receiver — a broadcast is all-or-nothing, so replicas
        // can never diverge. The slot is consumed either way; on a
        // drop no deliver runs and the sender learns of the loss when
        // its ack window expires. The ideal channel draws nothing.
        if (lossEnabled_ && p->rng != nullptr) {
            // Burst mode steps the transmitter's Gilbert–Elliott chain
            // first (one extra draw per transmission — deterministic,
            // from the same per-node stream), then performs the usual
            // drop Bernoulli against the composed probability.
            const double per =
                cfg_.burst.enabled
                    ? burstDropProbability(p->src, p->bulk, *p->rng)
                    : dropProbability(p->src, p->bulk);
            if (per > 0.0 && p->rng->chance(per)) {
                stats_.drops.inc();
                engine_.scheduleIn(
                    dur, [p] { complete(p, Outcome::Dropped); });
                return;
            }
        }
        // Delivery happens at the end of the transmission: the deliver
        // callback is the total-order commit point for BM updates.
        engine_.scheduleIn(dur, [p] {
            if (*p->deliver)
                (*p->deliver)();
            complete(p, Outcome::Delivered);
        });
        return;
    }

    // Two or more heads in the same slot: every transmitter aborts
    // after the listen cycle; the channel frees after 2 cycles. One
    // event per transmitter (rather than one owning the whole vector)
    // keeps each callback inside the event slot's inline buffer; the
    // per-attempt completion order matches the registration order.
    nextFree_ = engine_.now() + cfg_.collisionCycles;
    stats_.collisions.inc();
    stats_.busyCycles.inc(cfg_.collisionCycles);
    for (Pending *p : arbScratch_)
        engine_.scheduleIn(cfg_.collisionCycles,
                           [p] { complete(p, Outcome::Collided); });
}

Mac::Mac(sim::Engine &engine, DataChannel &channel, MacProtocol &protocol,
         sim::NodeId node, sim::Rng rng)
    : engine_(engine), channel_(channel), protocol_(&protocol),
      node_(node), rng_(rng), order_(engine)
{}

void
Mac::reset(MacProtocol &protocol, sim::Rng rng)
{
    protocol_ = &protocol;
    rng_ = rng;
    order_.reset();
    retries_.reset();
}

coro::Task<bool>
Mac::ackTimeoutRetry(std::uint32_t drops)
{
    const WirelessConfig &cfg = channel_.config();
    if (drops > cfg.maxRetries) {
        // The retry budget is spent: wait out the final ack window
        // (the sender cannot know the frame was lost any earlier),
        // then surface the typed failure instead of retransmitting.
        protocol_->noteAckTimeout(cfg.ackTimeoutCycles);
        co_await coro::delay(engine_, cfg.ackTimeoutCycles);
        protocol_->noteGiveUp();
        co_return false;
    }
    // Ack window plus bounded exponential spacing before the
    // retransmission. Deterministic (no RNG): the packet-error draws
    // already decorrelate senders, and a fixed schedule keeps the
    // lossPct = 0 contract trivially intact.
    const std::uint32_t exp = drops < cfg.retryBackoffMaxExp
                                  ? drops
                                  : cfg.retryBackoffMaxExp;
    const sim::Cycle wait =
        cfg.ackTimeoutCycles + (sim::Cycle{1} << exp);
    protocol_->noteAckTimeout(wait);
    co_await coro::delay(engine_, wait);
    protocol_->noteRetransmit();
    co_return true;
}

coro::Task<SendOutcome>
Mac::sendLoop(bool bulk, sim::UniqueFunction &deliver,
              const std::function<bool()> *abort,
              sim::Cycle first_attempt, std::uint32_t drops)
{
    for (;;) {
        co_await protocol_->acquire(node_);
        if (abort && (*abort)()) {
            // Cancelled before reaching the channel. The claim must
            // still be dropped: a granted token (or a fuzzy-token
            // contention grant picked up during the last collision)
            // would otherwise stall every queued sender.
            protocol_->release(node_, false);
            co_return SendOutcome::Aborted;
        }
        const auto outcome =
            co_await channel_.attempt(node_, bulk, deliver, abort, &rng_);
        if (outcome == DataChannel::Outcome::Collided) {
            // The protocol drops the claim, updates contention state
            // and performs this node's backoff; then contend again.
            retries_.inc();
            co_await protocol_->onCollision(node_, rng_);
            continue;
        }
        if (outcome == DataChannel::Outcome::Dropped) {
            // The channel lost the frame. The claim is released like
            // a delivered send (the token must pass on) and the ack
            // window / bounded-retry machinery decides what follows.
            protocol_->release(node_, false);
            ++drops;
            if (!co_await ackTimeoutRetry(drops))
                co_return SendOutcome::GaveUp;
            continue;
        }
        protocol_->release(node_,
                           outcome == DataChannel::Outcome::Delivered);
        if (outcome == DataChannel::Outcome::Delivered) {
            channel_.noteDelivery(first_attempt);
            co_return SendOutcome::Delivered;
        }
        co_return SendOutcome::Aborted;
    }
}

coro::Task<SendOutcome>
Mac::send(bool bulk, sim::UniqueFunction deliver,
          const std::function<bool()> *abort)
{
    // Uncontended fast path: the node has no broadcast in flight, the
    // channel is joinable this cycle and the MAC protocol can grant
    // without waiting — skip the acquire/attempt coroutine frames and
    // the outcome future; the slot protocol itself (registration,
    // arbitration event, collision detection) is shared with the slow
    // path, so mixed fast/slow slots arbitrate exactly as before.
    if (channel_.config().fastpath) {
        if (engine_.now() >= channel_.nextFree() && order_.tryLock()) {
            if (!protocol_->tryAcquire(node_)) {
                order_.unlock();
            } else {
                channel_.noteFastpathHit();
                const sim::Cycle first_attempt = engine_.now();
                if (abort && (*abort)()) {
                    // AFB abort before reaching the channel: drop the
                    // claim, zero suspensions — as the slow path's
                    // inline acquire/abort-check sequence would.
                    protocol_->release(node_, false);
                    order_.unlock();
                    co_return SendOutcome::Aborted;
                }
                DataChannel::FastAttempt fa(channel_, node_, bulk,
                                            &deliver, abort, &rng_);
                const auto outcome = co_await fa;
                if (outcome == DataChannel::Outcome::Dropped) {
                    // Lost on the air: same recovery sequence as the
                    // slow path's Dropped branch (release, ack
                    // window, recontend through the generic loop with
                    // the loss already counted), order_ still held.
                    protocol_->release(node_, false);
                    SendOutcome sent = SendOutcome::GaveUp;
                    if (co_await ackTimeoutRetry(1))
                        sent = co_await sendLoop(bulk, deliver, abort,
                                                 first_attempt, 1);
                    order_.unlock();
                    co_return sent;
                }
                if (outcome != DataChannel::Outcome::Collided) {
                    protocol_->release(
                        node_,
                        outcome == DataChannel::Outcome::Delivered);
                    if (outcome == DataChannel::Outcome::Delivered) {
                        channel_.noteDelivery(first_attempt);
                        order_.unlock();
                        co_return SendOutcome::Delivered;
                    }
                    order_.unlock();
                    co_return SendOutcome::Aborted;
                }
                // Collided: back off and fall into the generic retry
                // loop, order_ still held.
                retries_.inc();
                co_await protocol_->onCollision(node_, rng_);
                const auto sent =
                    co_await sendLoop(bulk, deliver, abort,
                                      first_attempt, 0);
                order_.unlock();
                co_return sent;
            }
        }
        channel_.noteFastpathFallback();
    }
    // A node's broadcasts are strictly ordered (§4.2.1: no subsequent
    // store proceeds until the current one performed).
    co_await order_.lock();
    const auto sent = co_await sendLoop(bulk, deliver, abort,
                                        engine_.now(), 0);
    order_.unlock();
    co_return sent;
}

} // namespace wisync::wireless
