#include "wireless/tone_channel.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace wisync::wireless {

ToneChannel::ToneChannel(sim::Engine &engine, std::uint32_t num_nodes,
                         std::uint32_t alloc_slots)
    : engine_(engine), numNodes_(num_nodes), allocSlots_(alloc_slots)
{
    allocB_.resize(allocSlots_);
}

void
ToneChannel::reset()
{
    for (auto &b : allocB_)
        b = Barrier{};
    activeOrder_.clear();
    slotIdx_ = 0;
    ticking_ = false;
    stats_.reset();
}

ToneChannel::Barrier *
ToneChannel::find(sim::BmAddr addr)
{
    for (auto &b : allocB_)
        if (b.used && b.addr == addr)
            return &b;
    return nullptr;
}

const ToneChannel::Barrier *
ToneChannel::find(sim::BmAddr addr) const
{
    for (const auto &b : allocB_)
        if (b.used && b.addr == addr)
            return &b;
    return nullptr;
}

bool
ToneChannel::alloc(sim::BmAddr addr, std::vector<bool> armed)
{
    WISYNC_ASSERT(armed.size() == numNodes_, "armed bitmap size mismatch");
    WISYNC_ASSERT(find(addr) == nullptr, "tone barrier already allocated");
    for (auto &b : allocB_) {
        if (b.used)
            continue;
        b.used = true;
        b.addr = addr;
        b.active = false;
        b.armed = std::move(armed);
        b.arrived.assign(numNodes_, false);
        b.pendingArrival.assign(numNodes_, false);
        return true;
    }
    return false; // AllocB overflow: caller falls back to Data barrier
}

void
ToneChannel::dealloc(sim::BmAddr addr)
{
    Barrier *b = find(addr);
    if (!b)
        return;
    WISYNC_ASSERT(!b->active, "deallocating an active tone barrier");
    b->used = false;
    // Paper: entries below the removed one shift up; slot order is the
    // array order of `used` entries, so clearing the flag suffices.
}

bool
ToneChannel::isAllocated(sim::BmAddr addr) const
{
    return find(addr) != nullptr;
}

bool
ToneChannel::isActive(sim::BmAddr addr) const
{
    const Barrier *b = find(addr);
    return b && b->active;
}

std::uint64_t
ToneChannel::epochOf(sim::BmAddr addr) const
{
    const Barrier *b = find(addr);
    return b ? b->epoch : 0;
}

bool
ToneChannel::isArmed(sim::BmAddr addr, sim::NodeId node) const
{
    const Barrier *b = find(addr);
    return b && b->armed[node];
}

bool
ToneChannel::anyArmedOn(sim::NodeId node) const
{
    for (const auto &b : allocB_)
        if (b.used && b.armed[node])
            return true;
    return false;
}

bool
ToneChannel::needsAnnouncement(sim::BmAddr addr) const
{
    const Barrier *b = find(addr);
    WISYNC_ASSERT(b, "tone_st on unallocated tone barrier");
    return !b->active;
}

void
ToneChannel::activate(sim::BmAddr addr)
{
    Barrier *b = find(addr);
    WISYNC_ASSERT(b, "activation for unallocated tone barrier");
    if (b->active)
        return; // redundant announcement (several "first" arrivals)
    b->active = true;
    stats_.activations.inc();
    // Arrivals that raced the announcement count immediately.
    b->arrived = b->pendingArrival;
    b->pendingArrival.assign(numNodes_, false);
    activeOrder_.push_back(static_cast<std::size_t>(b - allocB_.data()));
    stats_.concurrentActive.sample(
        static_cast<double>(activeOrder_.size()));
    startTickerIfNeeded();
}

void
ToneChannel::arrive(sim::BmAddr addr, sim::NodeId node)
{
    Barrier *b = find(addr);
    WISYNC_ASSERT(b, "arrival on unallocated tone barrier");
    WISYNC_ASSERT(b->armed[node], "arrival from unarmed node");
    if (b->active)
        b->arrived[node] = true;
    else
        b->pendingArrival[node] = true;
}

std::uint32_t
ToneChannel::allocatedCount() const
{
    return static_cast<std::uint32_t>(
        std::count_if(allocB_.begin(), allocB_.end(),
                      [](const Barrier &b) { return b.used; }));
}

void
ToneChannel::scheduleTick()
{
    engine_.scheduleIn(1, [this] { tick(); });
}

void
ToneChannel::startTickerIfNeeded()
{
    if (ticking_)
        return;
    ticking_ = true;
    scheduleTick();
}

void
ToneChannel::tick()
{
    if (activeOrder_.empty()) {
        ticking_ = false;
        return;
    }
    stats_.slotCycles.inc();
    slotIdx_ %= activeOrder_.size();
    Barrier &b = allocB_[activeOrder_[slotIdx_]];

    bool tone = false;
    for (std::uint32_t n = 0; n < numNodes_; ++n) {
        if (b.armed[n] && !b.arrived[n]) {
            tone = true;
            break;
        }
    }

    if (!tone) {
        // Silence on this barrier's slot: everyone has arrived. All
        // nodes remove the entry and toggle the BM word (the release
        // handler), in the same slot, chip-consistently.
        const sim::BmAddr addr = b.addr;
        b.active = false;
        ++b.epoch;
        b.arrived.assign(numNodes_, false);
        activeOrder_.erase(activeOrder_.begin() +
                           static_cast<std::ptrdiff_t>(slotIdx_));
        stats_.releases.inc();
        if (releaseHandler_)
            releaseHandler_(addr);
        // Do not advance slotIdx_: the next entry shifted into place.
    } else {
        ++slotIdx_;
    }
    scheduleTick();
}

} // namespace wisync::wireless
