/**
 * @file
 * Deterministic two-state Gilbert–Elliott link model.
 *
 * Real in-package channels do not fail i.i.d.: interference and
 * resonance episodes corrupt several consecutive frames, then clear
 * (Timoneda et al., "Engineer the Channel and Adapt to it"). The
 * classic abstraction is a two-state Markov chain — a Good state with
 * a low error rate and a Bad state with a high one — whose sojourn
 * times set the burst length. Bursts stress the reliability layer very
 * differently from i.i.d. loss at the same mean: consecutive drops
 * walk the bounded exponential backoff up instead of resampling it.
 *
 * The chain is stepped once per transmission, drawing ONLY from the
 * transmitter's existing RNG stream (DataChannel) or the link's own
 * forked stream (ChipBridge), so replay stays exact and a disabled
 * chain draws nothing — the byte-identity contract every "off" knob in
 * this simulator obeys.
 */

#ifndef WISYNC_WIRELESS_BURST_HH
#define WISYNC_WIRELESS_BURST_HH

#include "sim/rng.hh"

namespace wisync::wireless {

/**
 * Gilbert–Elliott parameters. The defaults keep the chain disabled
 * (and even enabled they describe a loss-free link): per-state error
 * rates in percent plus per-transmission transition probabilities.
 */
struct BurstParams
{
    /** Master gate: false means no chain state, no RNG draws. */
    bool enabled = false;
    /** Drop probability while in the Good state, percent. */
    double goodLossPct = 0.0;
    /** Drop probability while in the Bad state, percent. */
    double badLossPct = 100.0;
    /** Per-transmission probability of entering the Bad state. */
    double pGoodToBad = 0.0;
    /** Per-transmission probability of leaving the Bad state (the
     *  mean burst length is 1 / pBadToGood transmissions). */
    double pBadToGood = 0.5;

    /** True when an enabled chain can actually drop a frame. */
    bool
    lossy() const
    {
        return enabled &&
               (goodLossPct > 0.0 ||
                (badLossPct > 0.0 && pGoodToBad > 0.0));
    }

    /** Stationary fraction of transmissions spent in the Bad state. */
    double
    badFraction() const
    {
        const double denom = pGoodToBad + pBadToGood;
        return denom <= 0.0 ? 0.0 : pGoodToBad / denom;
    }

    /** Long-run mean loss, percent — the number to match against an
     *  i.i.d. lossPct for equal-average-loss comparisons. */
    double
    meanLossPct() const
    {
        const double bad = badFraction();
        return goodLossPct * (1.0 - bad) + badLossPct * bad;
    }

    /**
     * The canonical equal-mean parametrization: a clean Good state, a
     * fully-corrupting Bad state, mean burst length @p avg_burst_len
     * transmissions and long-run loss @p mean_loss_pct. With
     * avg_burst_len = 1 the chain degenerates to an i.i.d. draw at the
     * same rate, which is what makes the sensitivity axis comparable.
     */
    static BurstParams
    fromMean(double mean_loss_pct, double avg_burst_len)
    {
        BurstParams p;
        p.enabled = true;
        p.goodLossPct = 0.0;
        p.badLossPct = 100.0;
        p.pBadToGood = avg_burst_len < 1.0 ? 1.0 : 1.0 / avg_burst_len;
        const double bad = mean_loss_pct / 100.0;
        // badFraction() == bad  <=>  pGB = pBG * bad / (1 - bad).
        p.pGoodToBad =
            bad >= 1.0 ? 1.0 : p.pBadToGood * bad / (1.0 - bad);
        return p;
    }

    bool operator==(const BurstParams &) const = default;
};

/** Runtime chain state for one link/transmitter. Starts Good. */
class BurstState
{
  public:
    bool bad() const { return bad_; }

    void reset() { bad_ = false; }

    /**
     * Advance the chain one transmission — exactly one draw from
     * @p rng — and return this transmission's drop probability as a
     * fraction in [0, 1]. The caller performs the drop Bernoulli
     * itself (composing with other corruption sources first).
     */
    double
    step(const BurstParams &p, sim::Rng &rng)
    {
        const double u = rng.uniform();
        if (bad_)
            bad_ = !(u < p.pBadToGood);
        else
            bad_ = u < p.pGoodToBad;
        return (bad_ ? p.badLossPct : p.goodLossPct) / 100.0;
    }

  private:
    bool bad_ = false;
};

} // namespace wisync::wireless

#endif // WISYNC_WIRELESS_BURST_HH
