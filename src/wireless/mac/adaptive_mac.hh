/**
 * @file
 * Traffic-aware MAC: per-window BRS <-> token switching.
 *
 * Follows the adaptive-switching idea of Mansoor et al. ("A
 * Traffic-Aware Medium Access Control Mechanism for Energy-Efficient
 * Wireless Network-on-Chip Architectures"): random access wins under
 * light load, token passing wins under bursty synchronization storms,
 * so the controller observes fixed-size windows of channel events and
 * switches policy at window boundaries.
 *
 *  - In BRS mode the signal is the collision fraction: >= adaptHiPct
 *    percent of window events colliding means the channel is
 *    thrashing — switch to the token ring.
 *  - In token mode collisions are (by construction) absent, so the
 *    signal is demand: when <= adaptLoPct percent of the window's
 *    acquires had to queue for the token, traffic is light again —
 *    switch back to random access.
 *
 * Both sub-policies are real BrsMac/TokenMac instances sharing this
 * object's stats block; every send records which policy granted it so
 * releases and collision handling route to the right state even
 * across a switch (in-flight token grants drain through the token
 * ring while new sends already contend randomly, and vice versa).
 */

#ifndef WISYNC_WIRELESS_MAC_ADAPTIVE_MAC_HH
#define WISYNC_WIRELESS_MAC_ADAPTIVE_MAC_HH

#include <cstdint>
#include <vector>

#include "wireless/mac/brs_mac.hh"
#include "wireless/mac/token_mac.hh"

namespace wisync::wireless {

class AdaptiveMac : public MacProtocol
{
  public:
    AdaptiveMac(sim::Engine &engine, DataChannel &channel,
                std::uint32_t num_nodes);

    MacKind kind() const override { return MacKind::Adaptive; }

    /**
     * Delegate to the active sub-policy, so adaptive-in-BRS sends
     * take the Mac front-ends' frameless fast path. BRS grants
     * immediately (recording the granting policy exactly as acquire()
     * would before its first suspension); the token ring keeps its
     * default refusal, which leaves no trace.
     */
    bool
    tryAcquire(sim::NodeId node) override
    {
        const bool token = tokenMode_;
        if (!sub(token).tryAcquire(node))
            return false;
        grantedByToken_[node] = token ? 1 : 0;
        return true;
    }

    coro::Task<void> acquire(sim::NodeId node) override;
    void release(sim::NodeId node, bool delivered) override;
    coro::Task<void> onCollision(sim::NodeId node, sim::Rng &rng) override;
    void reset() override;

    /** True while the token ring is the active policy. */
    bool tokenMode() const { return tokenMode_; }

  private:
    MacProtocol &sub(bool token_granted);
    void note(bool collided);

    BrsMac brs_;
    TokenMac token_;
    bool tokenMode_ = false;
    /** Policy that granted each node's in-flight send. */
    std::vector<std::uint8_t> grantedByToken_;
    std::uint32_t windowEvents_ = 0;
    std::uint32_t windowCollisions_ = 0;
    std::uint64_t windowWaitsBase_ = 0;
};

} // namespace wisync::wireless

#endif // WISYNC_WIRELESS_MAC_ADAPTIVE_MAC_HH
