#include "wireless/mac/adaptive_mac.hh"

#include "wireless/data_channel.hh"

namespace wisync::wireless {

AdaptiveMac::AdaptiveMac(sim::Engine &engine, DataChannel &channel,
                         std::uint32_t num_nodes)
    : MacProtocol(engine, channel, num_nodes),
      brs_(engine, channel, num_nodes, &st()),
      token_(engine, channel, num_nodes, &st()),
      grantedByToken_(num_nodes, 0)
{}

void
AdaptiveMac::reset()
{
    brs_.reset();
    token_.reset();
    tokenMode_ = false;
    grantedByToken_.assign(numNodes_, 0);
    windowEvents_ = 0;
    windowCollisions_ = 0;
    windowWaitsBase_ = 0;
    st().reset();
}

MacProtocol &
AdaptiveMac::sub(bool token_granted)
{
    return token_granted ? static_cast<MacProtocol &>(token_)
                         : static_cast<MacProtocol &>(brs_);
}

void
AdaptiveMac::note(bool collided)
{
    ++windowEvents_;
    if (collided)
        ++windowCollisions_;
    const std::uint32_t window = channel_.config().adaptWindowEvents;
    if (window == 0 || windowEvents_ < window)
        return;
    if (!tokenMode_) {
        // Collision fraction over the window: thrashing -> token ring.
        if (windowCollisions_ * 100 >=
            windowEvents_ * channel_.config().adaptHiPct) {
            tokenMode_ = true;
            st().modeSwitches.inc();
        }
    } else {
        // Demand over the window: few queued acquires -> random access.
        const std::uint64_t waits =
            st().tokenWaits.value() - windowWaitsBase_;
        if (waits * 100 <=
            static_cast<std::uint64_t>(windowEvents_) *
                channel_.config().adaptLoPct) {
            tokenMode_ = false;
            st().modeSwitches.inc();
        }
    }
    windowEvents_ = 0;
    windowCollisions_ = 0;
    windowWaitsBase_ = st().tokenWaits.value();
}

coro::Task<void>
AdaptiveMac::acquire(sim::NodeId node)
{
    // Record the granting policy before any suspension so a switch
    // mid-wait cannot strand the release on the wrong sub-state.
    const bool token = tokenMode_;
    grantedByToken_[node] = token ? 1 : 0;
    co_await sub(token).acquire(node);
}

void
AdaptiveMac::release(sim::NodeId node, bool delivered)
{
    sub(grantedByToken_[node] != 0).release(node, delivered);
    if (delivered)
        note(false);
}

coro::Task<void>
AdaptiveMac::onCollision(sim::NodeId node, sim::Rng &rng)
{
    note(true);
    co_await sub(grantedByToken_[node] != 0).onCollision(node, rng);
}

} // namespace wisync::wireless
