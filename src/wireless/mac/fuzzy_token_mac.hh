/**
 * @file
 * Fuzzy token passing: a token/CSMA hybrid.
 *
 * While the channel is uncontended the token is immaterial: any ready
 * sender transmits immediately (pure CSMA — the channel's
 * expected-free wait models carrier sensing), so light traffic pays
 * zero token latency. The token *materializes* on a collision: every
 * collider queues with the protocol, which grants them the channel
 * one at a time in ring order from the current holder, the holder
 * itself served last — deterministic, RNG-free, and fair: a node
 * streaming back-to-back sends cannot be re-granted ahead of any
 * queued waiter. When the contention queue drains the token
 * evaporates and the channel falls back to CSMA.
 *
 * Compared to TokenMac this removes all rotation latency from the
 * uncontended path; compared to BRS it replaces random backoff with
 * ring-ordered arbitration, so a storm resolves in one pass instead
 * of thrashing through a backoff search.
 */

#ifndef WISYNC_WIRELESS_MAC_FUZZY_TOKEN_MAC_HH
#define WISYNC_WIRELESS_MAC_FUZZY_TOKEN_MAC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "coro/primitives.hh"
#include "wireless/mac/mac_protocol.hh"

namespace wisync::wireless {

class FuzzyTokenMac : public MacProtocol
{
  public:
    FuzzyTokenMac(sim::Engine &engine, DataChannel &channel,
                  std::uint32_t num_nodes,
                  MacStats *shared_stats = nullptr);

    MacKind kind() const override { return MacKind::FuzzyToken; }
    coro::Task<void> acquire(sim::NodeId node) override;
    void release(sim::NodeId node, bool delivered) override;
    coro::Task<void> onCollision(sim::NodeId node, sim::Rng &rng) override;
    void reset() override;

    /** Node currently holding retry priority (last successful sender). */
    sim::NodeId owner() const { return owner_; }
    /** True while the materialized token serializes colliders. */
    bool contended() const { return contended_; }

  private:
    void scheduleGrant();
    void grantNext();

    sim::NodeId owner_ = 0;
    /** Collision resolution active (the token is materialized). */
    bool contended_ = false;
    /** Node currently granted by the resolver (kNoNode if none). */
    sim::NodeId holder_ = sim::kNoNode;
    bool grantPending_ = false;
    std::vector<bool> wanting_;
    /** Per-node grant wakeup (at most one waiter per node). */
    std::vector<std::unique_ptr<coro::CondVar>> grantCv_;
};

} // namespace wisync::wireless

#endif // WISYNC_WIRELESS_MAC_FUZZY_TOKEN_MAC_HH
