/**
 * @file
 * Deterministic round-robin token passing.
 *
 * A single token circulates the nodes in ascending ring order; only
 * the holder may contend for the Data channel, so transmissions never
 * collide (locked by tests/test_mac.cc). The token moves on demand:
 * an idle ring schedules no events (the token parks at its last
 * holder), a request from node B while the token parks at A costs
 * ringDist(A, B) * tokenPassCycles before B may transmit, and on
 * release the token departs no earlier than grant-time +
 * tokenHoldCycles (the per-grant channel reservation — the knob that
 * trades per-holder burst service against round-trip latency).
 *
 * Queued requesters are granted in ring order from the releasing
 * node, which makes the schedule independent of request arrival
 * order — the classic starvation-freedom argument for token rings
 * (cf. the token-based schemes in Abadal et al., "Medium Access
 * Control in Wireless Network-on-Chip: A Context Analysis").
 */

#ifndef WISYNC_WIRELESS_MAC_TOKEN_MAC_HH
#define WISYNC_WIRELESS_MAC_TOKEN_MAC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "coro/primitives.hh"
#include "wireless/mac/mac_protocol.hh"

namespace wisync::wireless {

class TokenMac : public MacProtocol
{
  public:
    TokenMac(sim::Engine &engine, DataChannel &channel,
             std::uint32_t num_nodes, MacStats *shared_stats = nullptr);

    MacKind kind() const override { return MacKind::Token; }
    coro::Task<void> acquire(sim::NodeId node) override;
    void release(sim::NodeId node, bool delivered) override;
    coro::Task<void> onCollision(sim::NodeId node, sim::Rng &rng) override;
    void reset() override;

    /** Node the token currently sits at (or travels towards). */
    sim::NodeId owner() const { return owner_; }
    bool granted() const { return granted_; }

  private:
    std::uint32_t passCycles() const;
    std::uint32_t holdCycles() const;

    sim::NodeId owner_ = 0;
    /** A node holds (or is being handed) the grant. */
    bool granted_ = false;
    /** Cycle the current grant was issued (hold-window anchor). */
    sim::Cycle grantAt_ = 0;
    /** False until the first grant (no hold window before it). */
    bool everGranted_ = false;
    std::vector<bool> wanting_;
    /** Per-node grant wakeup (at most one waiter per node). */
    std::vector<std::unique_ptr<coro::CondVar>> grantCv_;
};

} // namespace wisync::wireless

#endif // WISYNC_WIRELESS_MAC_TOKEN_MAC_HH
