/**
 * @file
 * The paper's §5.3 Broadcast Reliability Scheme as a MacProtocol.
 *
 * Pure random access: every ready sender contends immediately; a
 * collision backs the sender off uniformly over [0, 2^i - 1], where
 * the per-node exponent i is incremented on collision (saturating at
 * WirelessConfig::maxBackoffExp) and decremented on success.
 *
 * This is the pre-refactor hard-coded MAC moved behind the interface,
 * behavior-preserved: with MacKind::Brs the simulation is bit-identical
 * to the original (locked by the golden tests in tests/test_mac.cc).
 */

#ifndef WISYNC_WIRELESS_MAC_BRS_MAC_HH
#define WISYNC_WIRELESS_MAC_BRS_MAC_HH

#include <cstdint>
#include <vector>

#include "wireless/mac/mac_protocol.hh"

namespace wisync::wireless {

class BrsMac : public MacProtocol
{
  public:
    BrsMac(sim::Engine &engine, DataChannel &channel,
           std::uint32_t num_nodes, MacStats *shared_stats = nullptr);

    MacKind kind() const override { return MacKind::Brs; }
    coro::Task<void> acquire(sim::NodeId node) override;

    /** Random access never waits: grant with acquire()'s exact side
     *  effects (the acquires counter), no coroutine needed. */
    bool
    tryAcquire(sim::NodeId node) override
    {
        (void)node;
        st().acquires.inc();
        return true;
    }

    void release(sim::NodeId node, bool delivered) override;
    coro::Task<void> onCollision(sim::NodeId node, sim::Rng &rng) override;
    void reset() override;

    /** Current backoff-window exponent of @p node. */
    std::uint32_t backoffExp(sim::NodeId node) const
    {
        return backoffExp_[node];
    }

  private:
    std::vector<std::uint32_t> backoffExp_;
};

} // namespace wisync::wireless

#endif // WISYNC_WIRELESS_MAC_BRS_MAC_HH
