#include "wireless/mac/fuzzy_token_mac.hh"

#include "sim/engine.hh"
#include "wireless/data_channel.hh"

namespace wisync::wireless {

FuzzyTokenMac::FuzzyTokenMac(sim::Engine &engine, DataChannel &channel,
                             std::uint32_t num_nodes,
                             MacStats *shared_stats)
    : MacProtocol(engine, channel, num_nodes, shared_stats),
      wanting_(num_nodes, false)
{
    grantCv_.reserve(num_nodes);
    for (std::uint32_t n = 0; n < num_nodes; ++n)
        grantCv_.push_back(std::make_unique<coro::CondVar>(engine_));
}

void
FuzzyTokenMac::reset()
{
    owner_ = 0;
    contended_ = false;
    holder_ = sim::kNoNode;
    grantPending_ = false;
    wanting_.assign(numNodes_, false);
    for (auto &cv : grantCv_)
        cv->reset();
    st().reset();
}

coro::Task<void>
FuzzyTokenMac::acquire(sim::NodeId node)
{
    (void)node;
    // CSMA leg: contend immediately, token or not. Serialization only
    // kicks in once a collision proves there is contention.
    st().acquires.inc();
    co_return;
}

void
FuzzyTokenMac::release(sim::NodeId node, bool delivered)
{
    if (delivered && node != owner_) {
        // The token follows the last successful sender. (A CSMA grab
        // can move it past a queued node — waiters are protected by
        // the resolver's holder-served-last scan, not by monotonic
        // ring distance.)
        st().fuzzyGrabs.inc();
        st().tokenRotations.inc(ringDist(owner_, node));
        owner_ = node;
    }
    if (node == holder_) {
        // The resolver's grantee finished; serve the next collider.
        holder_ = sim::kNoNode;
        if (contended_)
            scheduleGrant();
    }
}

coro::Task<void>
FuzzyTokenMac::onCollision(sim::NodeId node, sim::Rng &rng)
{
    (void)rng; // deterministic resolution — the ring is the arbiter
    st().backoffEvents.inc();
    // Materialize the token: queue until the resolver grants us the
    // channel. A failed grantee re-queues like everyone else.
    if (node == holder_)
        holder_ = sim::kNoNode;
    contended_ = true;
    wanting_[node] = true;
    if (holder_ == sim::kNoNode)
        scheduleGrant();
    st().tokenWaits.inc();
    const sim::Cycle queued_at = engine_.now();
    while (wanting_[node])
        co_await grantCv_[node]->wait();
    st().tokenWaitCycles.inc(engine_.now() - queued_at);
}

void
FuzzyTokenMac::scheduleGrant()
{
    if (grantPending_)
        return;
    grantPending_ = true;
    // Granted at the end of the current cycle so every same-slot
    // collider has registered in wanting_ before the ring is scanned.
    engine_.scheduleIn(0, [this] { grantNext(); });
}

void
FuzzyTokenMac::grantNext()
{
    grantPending_ = false;
    if (holder_ != sim::kNoNode)
        return;
    // Nearest queued collider in ring order from the priority holder,
    // the holder itself last (d == numNodes_ wraps to owner_): a node
    // streaming back-to-back sends keeps colliding its way into the
    // queue, and serving it first would starve every other waiter —
    // served last, the ring guarantees each queued node one grant per
    // resolution round.
    for (std::uint32_t d = 1; d <= numNodes_; ++d) {
        const sim::NodeId cand = (owner_ + d) % numNodes_;
        if (!wanting_[cand])
            continue;
        holder_ = cand;
        wanting_[cand] = false;
        st().tokenRotations.inc(d);
        grantCv_[cand]->notifyAll();
        return;
    }
    contended_ = false; // queue drained: the token evaporates
}

} // namespace wisync::wireless
