#include "wireless/mac/token_mac.hh"

#include "sim/engine.hh"
#include "sim/logging.hh"
#include "wireless/data_channel.hh"
#include "wireless/rf_model.hh"

namespace wisync::wireless {

TokenMac::TokenMac(sim::Engine &engine, DataChannel &channel,
                   std::uint32_t num_nodes, MacStats *shared_stats)
    : MacProtocol(engine, channel, num_nodes, shared_stats),
      wanting_(num_nodes, false)
{
    grantCv_.reserve(num_nodes);
    for (std::uint32_t n = 0; n < num_nodes; ++n)
        grantCv_.push_back(std::make_unique<coro::CondVar>(engine_));
}

std::uint32_t
TokenMac::passCycles() const
{
    // An explicit tokenPassCycles wins; 0 (the default) prices the
    // token frame through the RF channel occupancy: tokenFrameBits at
    // the WiSync transceiver's bandwidth — 1 cycle at the defaults,
    // i.e. exactly the legacy constant.
    const WirelessConfig &cfg = channel_.config();
    if (cfg.tokenPassCycles != 0)
        return cfg.tokenPassCycles;
    return RfScalingModel::frameCycles(
        cfg.tokenFrameBits, RfScalingModel::wisyncTransceiver22());
}

std::uint32_t
TokenMac::holdCycles() const
{
    return channel_.config().tokenHoldCycles;
}

void
TokenMac::reset()
{
    owner_ = 0;
    granted_ = false;
    grantAt_ = 0;
    everGranted_ = false;
    wanting_.assign(numNodes_, false);
    // Waiter frames were already destroyed by the engine reset that
    // precedes subsystem resets (Machine::reset ordering).
    for (auto &cv : grantCv_)
        cv->reset();
    st().reset();
}

coro::Task<void>
TokenMac::acquire(sim::NodeId node)
{
    st().acquires.inc();
    if (!granted_) {
        // Token parks at owner_; fetch it over the ring. granted_ is
        // claimed before the pass delay so same-cycle contenders queue
        // behind us deterministically.
        granted_ = true;
        const std::uint32_t hops = ringDist(owner_, node);
        if (hops > 0) {
            st().tokenRotations.inc(hops);
            // The parked token honours the previous grant's hold
            // window just like the queued path: it departs no earlier
            // than grant + tokenHoldCycles (the owner itself may
            // re-claim inside its own reservation, hops == 0).
            const sim::Cycle now = engine_.now();
            const sim::Cycle hold_end =
                everGranted_ ? grantAt_ + holdCycles() : now;
            const sim::Cycle depart = hold_end > now ? hold_end : now;
            const sim::Cycle arrive =
                depart + static_cast<sim::Cycle>(hops) * passCycles();
            co_await coro::delay(engine_, arrive - now);
            owner_ = node;
        }
        grantAt_ = engine_.now();
        everGranted_ = true;
        co_return;
    }
    WISYNC_ASSERT(!wanting_[node], "one outstanding token request "
                                   "per node (Mac serializes sends)");
    wanting_[node] = true;
    st().tokenWaits.inc();
    const sim::Cycle queued_at = engine_.now();
    while (wanting_[node])
        co_await grantCv_[node]->wait();
    st().tokenWaitCycles.inc(engine_.now() - queued_at);
}

void
TokenMac::release(sim::NodeId node, bool delivered)
{
    (void)delivered; // aborted grants pass the token on all the same
    WISYNC_ASSERT(granted_, "token release without a grant");
    // Grant the nearest queued requester in ring order from the
    // releasing node — arrival order never matters.
    sim::NodeId next = sim::kNoNode;
    for (std::uint32_t d = 1; d < numNodes_; ++d) {
        const sim::NodeId cand = (node + d) % numNodes_;
        if (wanting_[cand]) {
            next = cand;
            break;
        }
    }
    if (next == sim::kNoNode) {
        granted_ = false; // token parks here until the next request
        return;
    }
    const std::uint32_t hops = ringDist(node, next);
    st().tokenRotations.inc(hops);
    // The token departs at the later of send completion and the hold
    // window's end, then travels hops * tokenPassCycles.
    const sim::Cycle now = engine_.now();
    const sim::Cycle hold_end = grantAt_ + holdCycles();
    const sim::Cycle depart = hold_end > now ? hold_end : now;
    const sim::Cycle arrive =
        depart + static_cast<sim::Cycle>(hops) * passCycles();
    engine_.scheduleIn(arrive - now, [this, next] {
        owner_ = next;
        grantAt_ = engine_.now();
        wanting_[next] = false;
        grantCv_[next]->notifyAll();
    });
}

coro::Task<void>
TokenMac::onCollision(sim::NodeId node, sim::Rng &rng)
{
    (void)rng;
    // Impossible under exclusive grants; reachable transiently under
    // AdaptiveMac when a random-access straggler collides with the
    // holder. Yield the token and re-enter through acquire().
    st().backoffEvents.inc();
    release(node, false);
    co_return;
}

} // namespace wisync::wireless
