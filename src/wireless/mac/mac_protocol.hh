/**
 * @file
 * The pluggable medium-access-control interface for the Data channel.
 *
 * The DataChannel models the physics (slots, collisions, the
 * expected-free arbitration of §4.1); a MacProtocol decides *when* a
 * node may contend and how contention is resolved. One protocol
 * instance arbitrates the whole channel — per-node front-ends
 * (wireless::Mac) drive it through four hooks, called in this order
 * for every broadcast:
 *
 *   1. acquire(node)       — block until the node may contend (a token
 *                            wait, or immediate for random access);
 *   2. the channel attempt  (owned by Mac, not the protocol);
 *   3a. release(node, ok)  — the attempt ended (delivered or aborted):
 *                            drop the claim, pass the token on, update
 *                            backoff state; or
 *   3b. onCollision(node)  — the attempt collided: drop the claim,
 *                            update state and perform this node's
 *                            backoff wait; the sender then re-enters
 *                            at acquire().
 *
 * Reset contract (matching Machine::reset): reset() returns the
 * protocol to its post-construction state — no claims, no waiters
 * (their frames were already destroyed by the engine reset), zero
 * stats — so a reset machine draws the exact event sequence a fresh
 * one would.
 */

#ifndef WISYNC_WIRELESS_MAC_MAC_PROTOCOL_HH
#define WISYNC_WIRELESS_MAC_MAC_PROTOCOL_HH

#include <cstdint>
#include <memory>

#include "coro/task.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "wireless/mac/mac_kind.hh"

namespace wisync::sim {
class Engine;
class StatSet;
}

namespace wisync::wireless {

class DataChannel;
struct WirelessConfig;

/**
 * Per-protocol contention telemetry. Channel-level facts (collisions,
 * busy cycles, occupancy) stay on DataChannelStats; these counters
 * describe how the protocol spent the senders' time resolving them.
 */
struct MacStats
{
    /** Broadcast attempts admitted to the channel (acquire calls). */
    sim::Counter acquires;
    /** Collision backoffs performed. */
    sim::Counter backoffEvents;
    /** Cycles senders spent backing off after collisions. */
    sim::Counter backoffCycles;
    /** Acquires that had to queue for the token. */
    sim::Counter tokenWaits;
    /** Cycles senders spent queued for the token. */
    sim::Counter tokenWaitCycles;
    /** Ring hops the token travelled. */
    sim::Counter tokenRotations;
    /** BRS <-> token transitions (AdaptiveMac only). */
    sim::Counter modeSwitches;
    /**
     * FuzzyTokenMac deliveries by a node other than the priority
     * owner — i.e. how often the fuzzy token moved (counts both CSMA
     * grabs and resolver-ordered service).
     */
    sim::Counter fuzzyGrabs;

    // Reliability layer (lossy channel; all zero at lossPct = 0).
    /** Ack windows that expired (one per corrupted transmission). */
    sim::Counter ackTimeouts;
    /** Cycles senders spent in ack windows + retransmission backoff. */
    sim::Counter ackWaitCycles;
    /** Retransmissions performed after an expired ack window. */
    sim::Counter retransmits;
    /** Sends abandoned after maxRetries (typed delivery failures). */
    sim::Counter giveUps;

    /** Zero everything (assignment cannot miss a late-added field). */
    void reset() { *this = {}; }
};

/** Channel-wide MAC protocol; see the file comment for the contract. */
class MacProtocol
{
  public:
    /**
     * @param shared_stats  When non-null, telemetry lands there
     *                      instead of a private block — used by
     *                      composite protocols (AdaptiveMac) so their
     *                      sub-policies report into one set.
     */
    MacProtocol(sim::Engine &engine, DataChannel &channel,
                std::uint32_t num_nodes, MacStats *shared_stats = nullptr)
        : engine_(engine), channel_(channel), numNodes_(num_nodes),
          stats_(shared_stats != nullptr ? shared_stats : &own_)
    {}
    virtual ~MacProtocol() = default;

    MacProtocol(const MacProtocol &) = delete;
    MacProtocol &operator=(const MacProtocol &) = delete;

    virtual MacKind kind() const = 0;

    /** Block until @p node may contend for the channel. */
    virtual coro::Task<void> acquire(sim::NodeId node) = 0;

    /**
     * Grant @p node the right to contend immediately, without
     * suspending, or refuse. A protocol may only return true when the
     * grant is side-effect-identical to a completed acquire() that
     * never waited; returning false must leave no trace (the sender
     * then goes through the full acquire()). Random-access protocols
     * (BRS) grant always; token-family protocols keep the default
     * refusal, so their senders always take the coroutine path. This
     * is what the Mac front-ends' frameless fast path probes.
     */
    virtual bool
    tryAcquire(sim::NodeId node)
    {
        (void)node;
        return false;
    }

    /**
     * The attempt ended without a collision: @p delivered tells
     * success from an AFB abort. Drops the node's claim.
     */
    virtual void release(sim::NodeId node, bool delivered) = 0;

    /**
     * The attempt collided: drop the claim, update contention state
     * and perform this node's backoff wait. @p rng is the node's
     * private stream (only BRS-style policies draw from it).
     */
    virtual coro::Task<void> onCollision(sim::NodeId node,
                                         sim::Rng &rng) = 0;

    /** Post-construction state, zero stats (Machine::reset contract). */
    virtual void reset() = 0;

    const MacStats &stats() const { return *stats_; }

    // Reliability-layer telemetry, driven by the Mac front-ends (the
    // ack/retry state machine lives there); non-virtual so composite
    // protocols record into their shared stats block automatically.
    /** An ack window expired; @p waited covers it plus any backoff. */
    void
    noteAckTimeout(sim::Cycle waited)
    {
        stats_->ackTimeouts.inc();
        stats_->ackWaitCycles.inc(waited);
    }
    /** A retransmission follows the expired window. */
    void noteRetransmit() { stats_->retransmits.inc(); }
    /** maxRetries exhausted; the send surfaces a typed failure. */
    void noteGiveUp() { stats_->giveUps.inc(); }

    /** Register the telemetry counters as "<prefix>.*" in @p set. */
    void registerStats(sim::StatSet &set, const std::string &prefix) const;

    std::uint32_t numNodes() const { return numNodes_; }

  protected:
    MacStats &st() { return *stats_; }

    /** Hops from @p from to @p to in ascending-ring order. */
    std::uint32_t
    ringDist(sim::NodeId from, sim::NodeId to) const
    {
        return (to + numNodes_ - from) % numNodes_;
    }

    sim::Engine &engine_;
    DataChannel &channel_;
    std::uint32_t numNodes_;

  private:
    MacStats own_;
    MacStats *stats_;
};

/** Build the protocol selected by @p cfg.macKind for @p num_nodes. */
std::unique_ptr<MacProtocol> makeMacProtocol(const WirelessConfig &cfg,
                                             sim::Engine &engine,
                                             DataChannel &channel,
                                             std::uint32_t num_nodes);

} // namespace wisync::wireless

#endif // WISYNC_WIRELESS_MAC_MAC_PROTOCOL_HH
