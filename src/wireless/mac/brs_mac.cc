#include "wireless/mac/brs_mac.hh"

#include "coro/primitives.hh"
#include "wireless/data_channel.hh"

namespace wisync::wireless {

BrsMac::BrsMac(sim::Engine &engine, DataChannel &channel,
               std::uint32_t num_nodes, MacStats *shared_stats)
    : MacProtocol(engine, channel, num_nodes, shared_stats),
      backoffExp_(num_nodes, 0)
{}

void
BrsMac::reset()
{
    backoffExp_.assign(numNodes_, 0);
    st().reset();
}

coro::Task<void>
BrsMac::acquire(sim::NodeId node)
{
    (void)node;
    // Random access: contend right away. The empty body completes via
    // symmetric transfer, so the BRS path stays event-free here.
    st().acquires.inc();
    co_return;
}

void
BrsMac::release(sim::NodeId node, bool delivered)
{
    // An AFB abort leaves the window untouched: the instruction never
    // reached the air, so it observed no contention either way.
    if (delivered && backoffExp_[node] > 0)
        --backoffExp_[node];
}

coro::Task<void>
BrsMac::onCollision(sim::NodeId node, sim::Rng &rng)
{
    // Exponential backoff over [0, 2^i - 1] (§5.3). The RNG is drawn
    // only when the window is non-empty — exactly the pre-refactor
    // sequence, which keeps BRS runs bit-identical.
    if (backoffExp_[node] < channel_.config().maxBackoffExp)
        ++backoffExp_[node];
    const std::uint64_t window =
        (std::uint64_t{1} << backoffExp_[node]) - 1;
    if (window > 0) {
        const sim::Cycle wait = rng.below(window + 1);
        st().backoffEvents.inc();
        st().backoffCycles.inc(wait);
        co_await coro::delay(engine_, wait);
    }
}

} // namespace wisync::wireless
