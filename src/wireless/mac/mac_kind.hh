/**
 * @file
 * The MAC protocol selector.
 *
 * Kept in its own header (rather than mac_protocol.hh) so that
 * WirelessConfig — which lives underneath the MAC layer — can carry
 * the selector without depending on the protocol implementations.
 */

#ifndef WISYNC_WIRELESS_MAC_MAC_KIND_HH
#define WISYNC_WIRELESS_MAC_MAC_KIND_HH

namespace wisync::wireless {

/** Which medium-access protocol arbitrates the Data channel. */
enum class MacKind
{
    /** §5.3 Broadcast Reliability Scheme: exponential backoff. */
    Brs,
    /** Deterministic round-robin token passing. */
    Token,
    /** Token/CSMA hybrid: contend freely, resolve by ring order. */
    FuzzyToken,
    /** Traffic-aware BRS <-> token switching per observation window. */
    Adaptive,
};

const char *toString(MacKind kind);

} // namespace wisync::wireless

#endif // WISYNC_WIRELESS_MAC_MAC_KIND_HH
