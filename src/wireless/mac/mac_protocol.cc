#include "wireless/mac/mac_protocol.hh"

#include "sim/logging.hh"
#include "wireless/data_channel.hh"
#include "wireless/mac/adaptive_mac.hh"
#include "wireless/mac/brs_mac.hh"
#include "wireless/mac/fuzzy_token_mac.hh"
#include "wireless/mac/token_mac.hh"

namespace wisync::wireless {

const char *
toString(MacKind kind)
{
    switch (kind) {
      case MacKind::Brs:
        return "BRS";
      case MacKind::Token:
        return "Token";
      case MacKind::FuzzyToken:
        return "FuzzyToken";
      case MacKind::Adaptive:
        return "Adaptive";
    }
    return "?";
}

void
MacProtocol::registerStats(sim::StatSet &set,
                           const std::string &prefix) const
{
    const MacStats &s = stats();
    set.addCounter(prefix + ".acquires", s.acquires);
    set.addCounter(prefix + ".backoff_events", s.backoffEvents);
    set.addCounter(prefix + ".backoff_cycles", s.backoffCycles);
    set.addCounter(prefix + ".token_waits", s.tokenWaits);
    set.addCounter(prefix + ".token_wait_cycles", s.tokenWaitCycles);
    set.addCounter(prefix + ".token_rotations", s.tokenRotations);
    set.addCounter(prefix + ".mode_switches", s.modeSwitches);
    set.addCounter(prefix + ".fuzzy_grabs", s.fuzzyGrabs);
    set.addCounter(prefix + ".ack_timeouts", s.ackTimeouts);
    set.addCounter(prefix + ".ack_wait_cycles", s.ackWaitCycles);
    set.addCounter(prefix + ".retransmits", s.retransmits);
    set.addCounter(prefix + ".give_ups", s.giveUps);
}

std::unique_ptr<MacProtocol>
makeMacProtocol(const WirelessConfig &cfg, sim::Engine &engine,
                DataChannel &channel, std::uint32_t num_nodes)
{
    switch (cfg.macKind) {
      case MacKind::Brs:
        return std::make_unique<BrsMac>(engine, channel, num_nodes);
      case MacKind::Token:
        return std::make_unique<TokenMac>(engine, channel, num_nodes);
      case MacKind::FuzzyToken:
        return std::make_unique<FuzzyTokenMac>(engine, channel,
                                               num_nodes);
      case MacKind::Adaptive:
        return std::make_unique<AdaptiveMac>(engine, channel, num_nodes);
    }
    WISYNC_FATAL("unknown MacKind");
    return nullptr;
}

} // namespace wisync::wireless
