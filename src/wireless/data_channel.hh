/**
 * @file
 * The shared wireless Data channel (paper §4.1).
 *
 * One 19 GHz-wide channel centred at 60 GHz, time-slotted in 1 ns
 * (= 1 cycle) slots. A 77-bit message (64-bit datum + 11-bit address +
 * Bulk bit + Tone bit) transfers in 5 cycles; cycle 2 is the collision
 * listen slot, so a collision costs only 2 cycles before the channel
 * frees. Bulk messages carry 4 words in 15 cycles (the 3 trailing
 * words skip the collision check and headers).
 *
 * Arbitration matches the paper: a transceiver that becomes ready
 * while the channel is busy waits until the cycle the channel is next
 * expected to be free and transmits then — so bursts of ready senders
 * collide, and the MAC protocol (wireless/mac/) resolves the
 * contention: exponential backoff (§5.3 BRS, the paper's scheme and
 * the default), token passing, a fuzzy-token hybrid, or adaptive
 * switching, selected by WirelessConfig::macKind.
 */

#ifndef WISYNC_WIRELESS_DATA_CHANNEL_HH
#define WISYNC_WIRELESS_DATA_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "coro/primitives.hh"
#include "coro/task.hh"
#include "sim/engine.hh"
#include "sim/env.hh"
#include "sim/function.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "wireless/mac/mac_kind.hh"

namespace wisync::wireless {

class MacProtocol;

/** Wireless timing knobs (Table 1 defaults) + MAC selection. */
struct WirelessConfig
{
    /** Cycles to transmit an ordinary 77-bit message. */
    std::uint32_t dataCycles = 5;
    /** Cycles to transmit a 4-word Bulk message. */
    std::uint32_t bulkCycles = 15;
    /** Channel-busy cycles consumed by a collision. */
    std::uint32_t collisionCycles = 2;
    /** Frameless uncontended-broadcast fast path (host-time only). */
    bool fastpath = sim::fastpathDefault();

    /** Which MAC protocol arbitrates the channel (default: §5.3 BRS). */
    MacKind macKind = MacKind::Brs;
    /** BRS: maximum exponential-backoff exponent (window = 2^i - 1). */
    std::uint32_t maxBackoffExp = 10;
    /** Token/fuzzy: per-ring-hop token pass latency, cycles. */
    std::uint32_t tokenPassCycles = 1;
    /** Token: minimum channel reservation per grant, cycles. */
    std::uint32_t tokenHoldCycles = 0;
    /** Adaptive: channel events per policy-observation window. */
    std::uint32_t adaptWindowEvents = 32;
    /** Adaptive: switch BRS->token at >= this collision percentage. */
    std::uint32_t adaptHiPct = 25;
    /** Adaptive: switch token->BRS at <= this token-wait percentage. */
    std::uint32_t adaptLoPct = 25;
};

/** Channel-level statistics. */
struct DataChannelStats
{
    sim::Counter messages;
    sim::Counter bulkMessages;
    sim::Counter collisions;
    /** Cycles the channel spent transmitting or recovering. */
    sim::Counter busyCycles;
    /** Latency from first attempt to delivery, per message. */
    sim::Accumulator deliveryLatency;
    /** Broadcasts armed on the frameless Mac fast path. */
    sim::Counter fastpathHits;
    /** Broadcasts that fell back to the coroutine send loop (busy
     *  channel / held order mutex / non-immediate MAC protocol; only
     *  counted while the fast path is enabled). */
    sim::Counter fastpathFallbacks;

    /** Zero everything (assignment cannot miss a late-added field). */
    void reset() { *this = {}; }
};

/**
 * The single shared Data channel.
 *
 * transmit() resolves when this sender's message has been delivered
 * to every node; the caller-provided deliver callback runs exactly at
 * the delivery instant (used by the BM layer to update all replicas
 * in one atomic simulation step, giving the chip-wide total order of
 * BM writes).
 */
class DataChannel
{
  public:
    DataChannel(sim::Engine &engine, const WirelessConfig &cfg);

    /** Outcome of one slot attempt. */
    enum class Outcome
    {
        Delivered,
        Collided,
        /** Abort predicate fired when the transmit slot was won. */
        Aborted,
    };

    /**
     * Try once: contend for the next free slot, then either transmit
     * fully (running @p deliver at the delivery instant), collide, or
     * abort (the @p abort predicate is evaluated at arbitration time,
     * i.e. "when the write is attempted" — the paper's AFB semantics).
     * The MAC layers retries/backoff on top of this.
     */
    coro::Task<Outcome> attempt(sim::NodeId src, bool bulk,
                                sim::UniqueFunction &deliver,
                                const std::function<bool()> *abort);

    class FastAttempt;

    /**
     * One registered contender for a transmit slot. Lives in the
     * registering attempt's coroutine frame (coroutine path) or in a
     * FastAttempt in the sender's frame (frameless path); exactly one
     * completion sink is set.
     */
    struct Pending
    {
        bool bulk = false;
        sim::UniqueFunction *deliver = nullptr;
        const std::function<bool()> *abort = nullptr;
        /** Coroutine path: outcome lands in this future. */
        coro::Future<Outcome> *done = nullptr;
        /** Frameless path: outcome resumes this awaiter's caller. */
        FastAttempt *fast = nullptr;
    };

    /**
     * Frameless one-shot slot attempt for the Mac fast path: joins the
     * slot opening at now() exactly as the attempt() coroutine would
     * (same arbitration event, same registration order), then resumes
     * its awaiting sender directly from the delivery / collision /
     * abort completion event — no attempt frame, no future.
     */
    class FastAttempt
    {
      public:
        /** Registers immediately; only legal when now() >= nextFree(). */
        FastAttempt(DataChannel &channel, bool bulk,
                    sim::UniqueFunction *deliver,
                    const std::function<bool()> *abort)
            : engine_(channel.engine_)
        {
            pending_.bulk = bulk;
            pending_.deliver = deliver;
            pending_.abort = abort;
            pending_.fast = this;
            channel.joinSlot(pending_);
        }

        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h) { caller_ = h; }
        Outcome await_resume() const noexcept { return outcome_; }

        /**
         * Called by the channel's completion events. The sender is
         * resumed through the ready ring — claiming its sequence
         * number exactly where the coroutine path's Future::set wakeup
         * would — so the Mac epilogue runs at an identical position in
         * the event stream.
         */
        void
        complete(Outcome outcome)
        {
            outcome_ = outcome;
            engine_.resumeHandle(0, caller_);
        }

      private:
        sim::Engine &engine_;
        Pending pending_;
        Outcome outcome_ = Outcome::Collided;
        std::coroutine_handle<> caller_;
    };

    /** First cycle a new transmission may start. */
    sim::Cycle nextFree() const { return nextFree_; }

    /** Record a successful send that first contended at @p started. */
    void
    noteDelivery(sim::Cycle started)
    {
        stats_.deliveryLatency.sample(
            static_cast<double>(engine_.now() - started));
    }

    /** Fast-path telemetry hooks (driven by the Mac front-ends). */
    void noteFastpathHit() { stats_.fastpathHits.inc(); }
    void noteFastpathFallback() { stats_.fastpathFallbacks.inc(); }

    const DataChannelStats &stats() const { return stats_; }
    const WirelessConfig &config() const { return cfg_; }

    /** Utilisation bookkeeping: total busy cycles / elapsed cycles. */
    double
    utilisation() const
    {
        const auto now = engine_.now();
        return now == 0 ? 0.0
                        : static_cast<double>(stats_.busyCycles.value()) /
                              static_cast<double>(now);
    }

    /**
     * Idle channel, zero stats, optionally retimed via @p cfg. Pending
     * attempts must already be gone (their coroutine frames destroyed
     * by the engine reset that precedes this in Machine::reset).
     */
    void reset(const WirelessConfig &cfg);

  private:
    /** Register @p p in the slot opening at now() (first registrant
     *  schedules the arbitration event). now() >= nextFree_ required. */
    void joinSlot(Pending &p);

    void arbitrate();

    sim::Engine &engine_;
    WirelessConfig cfg_;
    sim::Cycle nextFree_ = 0;
    /** Cycle of the slot currently collecting attempts (or kCycleMax). */
    sim::Cycle openSlot_ = sim::kCycleMax;
    std::vector<Pending *> slotAttempts_;
    /** Double buffer for arbitrate(): both keep their capacity, so
     *  steady-state arbitration never touches the allocator. */
    std::vector<Pending *> arbScratch_;
    DataChannelStats stats_;
};

/**
 * Per-node Medium Access front-end.
 *
 * Serializes the node's broadcasts (§4.2.1: no subsequent store
 * proceeds until the current one performed) and drives the channel's
 * shared MacProtocol through its acquire / release / onCollision
 * hooks; the protocol decides when this node may contend and how
 * collisions resolve (wireless/mac/).
 */
class Mac
{
  public:
    Mac(sim::Engine &engine, DataChannel &channel, MacProtocol &protocol,
        sim::NodeId node, sim::Rng rng);

    /**
     * Broadcast one message, retrying through collisions until it is
     * delivered. @p deliver runs at the delivery instant (total-order
     * commit point). @p abort, if non-null and returning true when a
     * slot is won, cancels the transmission (used for RMW atomicity
     * failure: the instruction "neither broadcasts its value nor
     * updates the local BM").
     */
    coro::Task<void> send(bool bulk, sim::UniqueFunction deliver,
                          const std::function<bool()> *abort = nullptr);

    sim::NodeId node() const { return node_; }
    std::uint64_t retries() const { return retries_.value(); }

    /**
     * Fresh RNG stream, rebound to @p protocol (which BmSystem::reset
     * may have rebuilt under a new MacKind); the order mutex is freed.
     */
    void reset(MacProtocol &protocol, sim::Rng rng);

  private:
    /**
     * The acquire/attempt/backoff retry loop, entered with order_
     * held. Shared by the slow path (from the first attempt) and the
     * fast path (after its armed attempt collided).
     */
    coro::Task<void> sendLoop(bool bulk, sim::UniqueFunction &deliver,
                              const std::function<bool()> *abort,
                              sim::Cycle first_attempt);

    sim::Engine &engine_;
    DataChannel &channel_;
    MacProtocol *protocol_;
    sim::NodeId node_;
    sim::Rng rng_;
    coro::SimMutex order_;
    sim::Counter retries_;
};

} // namespace wisync::wireless

#endif // WISYNC_WIRELESS_DATA_CHANNEL_HH
