/**
 * @file
 * The shared wireless Data channel (paper §4.1).
 *
 * One 19 GHz-wide channel centred at 60 GHz, time-slotted in 1 ns
 * (= 1 cycle) slots. A 77-bit message (64-bit datum + 11-bit address +
 * Bulk bit + Tone bit) transfers in 5 cycles; cycle 2 is the collision
 * listen slot, so a collision costs only 2 cycles before the channel
 * frees. Bulk messages carry 4 words in 15 cycles (the 3 trailing
 * words skip the collision check and headers).
 *
 * Arbitration matches the paper: a transceiver that becomes ready
 * while the channel is busy waits until the cycle the channel is next
 * expected to be free and transmits then — so bursts of ready senders
 * collide, and the MAC protocol (wireless/mac/) resolves the
 * contention: exponential backoff (§5.3 BRS, the paper's scheme and
 * the default), token passing, a fuzzy-token hybrid, or adaptive
 * switching, selected by WirelessConfig::macKind.
 */

#ifndef WISYNC_WIRELESS_DATA_CHANNEL_HH
#define WISYNC_WIRELESS_DATA_CHANNEL_HH

#include <cstdint>
#include <vector>

#include "coro/primitives.hh"
#include "coro/task.hh"
#include "sim/engine.hh"
#include "sim/env.hh"
#include "sim/function.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "wireless/burst.hh"
#include "wireless/mac/mac_kind.hh"

namespace wisync::wireless {

class MacProtocol;

/** Data-channel frame sizes (§4.1): a 77-bit message (64-bit datum +
 *  11-bit address + Bulk + Tone bits), and a Bulk frame carrying 3
 *  further words. Used to price frames in the RF channel model. */
constexpr std::uint32_t kDataFrameBits = 77;
constexpr std::uint32_t kBulkFrameBits = 77 + 3 * 64;

/** Wireless timing knobs (Table 1 defaults) + MAC selection. */
struct WirelessConfig
{
    /** Cycles to transmit an ordinary 77-bit message. */
    std::uint32_t dataCycles = 5;
    /** Cycles to transmit a 4-word Bulk message. */
    std::uint32_t bulkCycles = 15;
    /** Channel-busy cycles consumed by a collision. */
    std::uint32_t collisionCycles = 2;
    /** Frameless uncontended-broadcast fast path (host-time only). */
    bool fastpath = sim::fastpathDefault();

    // ---- Lossy channel model + reliability layer ------------------
    // lossPct = 0 and berFromSnr = false (the defaults) keep the ideal
    // channel: no RNG draws, no retry machinery, byte-identical event
    // streams to a build without the loss layer.
    /** Uniform probability, percent, that a broadcast is corrupted at
     *  some receiver and must be retransmitted. */
    double lossPct = 0.0;
    /** Derive per-transmitter loss from the RF channel model
     *  (distance -> path loss -> SNR -> BER) instead of, or on top
     *  of, the uniform lossPct (BmSystem installs the drop table). */
    bool berFromSnr = false;
    /** Transmit power for the SNR -> BER derivation, dBm. */
    double txPowerDbm = 10.0;
    /** Cycles a sender waits for the missing ack before declaring a
     *  transmission lost. */
    std::uint32_t ackTimeoutCycles = 4;
    /** Retransmissions per send before the MAC gives up and surfaces
     *  a typed delivery failure (SendOutcome::GaveUp). */
    std::uint32_t maxRetries = 8;
    /** Cap on the bounded exponential retransmission backoff: the
     *  i-th retry waits min(2^i, 2^retryBackoffMaxExp) extra cycles. */
    std::uint32_t retryBackoffMaxExp = 6;
    /** Correlated (bursty) loss: a per-transmitter Gilbert–Elliott
     *  chain replaces the i.i.d. lossPct draw when enabled. The
     *  SNR-derived drop table still composes on top. Disabled (the
     *  default) draws nothing — byte-identical to the i.i.d. model. */
    BurstParams burst;
    /** Per-frequency-channel loss profile: extra attenuation folded
     *  into every link of spectrum slot s, channelLossBaseDb +
     *  s * channelLossStepDb (carriers at different frequencies see
     *  different path loss). Applied through the RF channel model, so
     *  it requires berFromSnr; 0 keeps all slots identical. */
    double channelLossBaseDb = 0.0;
    double channelLossStepDb = 0.0;

    /** Multi-chip: spectrum slots the FrequencyPlan may hand out.
     *  Chips sharing a slot share one channel + MAC arbitration
     *  domain; with >= numChips slots every chip's channel is
     *  private. Ignored on single-chip machines. */
    std::uint32_t spectrumSlots = 4;

    /** Which MAC protocol arbitrates the channel (default: §5.3 BRS). */
    MacKind macKind = MacKind::Brs;
    /** BRS: maximum exponential-backoff exponent (window = 2^i - 1). */
    std::uint32_t maxBackoffExp = 10;
    /** Token/fuzzy: per-ring-hop token pass latency, cycles; 0 means
     *  "price it through the RF channel model" — a tokenFrameBits
     *  control frame at the WiSync transceiver's bandwidth, which is
     *  1 cycle at the defaults (the legacy constant). */
    std::uint32_t tokenPassCycles = 0;
    /** Token-family control frame size, bits (tokenPassCycles = 0). */
    std::uint32_t tokenFrameBits = 16;
    /** Token: minimum channel reservation per grant, cycles. */
    std::uint32_t tokenHoldCycles = 0;
    /** Adaptive: channel events per policy-observation window. */
    std::uint32_t adaptWindowEvents = 32;
    /** Adaptive: switch BRS->token at >= this collision percentage. */
    std::uint32_t adaptHiPct = 25;
    /** Adaptive: switch token->BRS at <= this token-wait percentage. */
    std::uint32_t adaptLoPct = 25;

    /** Field-wise equality (MachineConfig::operator== / fingerprint). */
    bool operator==(const WirelessConfig &) const = default;
};

/** Channel-level statistics. */
struct DataChannelStats
{
    sim::Counter messages;
    sim::Counter bulkMessages;
    sim::Counter collisions;
    /** Transmissions corrupted by the lossy channel model (the slot
     *  is consumed, no node delivers, the sender's ack times out). */
    sim::Counter drops;
    /** Cycles the channel spent transmitting or recovering. */
    sim::Counter busyCycles;
    /** Latency from first attempt to delivery, per message. */
    sim::Accumulator deliveryLatency;
    /** Broadcasts armed on the frameless Mac fast path. */
    sim::Counter fastpathHits;
    /** Broadcasts that fell back to the coroutine send loop (busy
     *  channel / held order mutex / non-immediate MAC protocol; only
     *  counted while the fast path is enabled). */
    sim::Counter fastpathFallbacks;

    /** Zero everything (assignment cannot miss a late-added field). */
    void reset() { *this = {}; }
};

/**
 * The single shared Data channel.
 *
 * transmit() resolves when this sender's message has been delivered
 * to every node; the caller-provided deliver callback runs exactly at
 * the delivery instant (used by the BM layer to update all replicas
 * in one atomic simulation step, giving the chip-wide total order of
 * BM writes).
 */
class DataChannel
{
  public:
    DataChannel(sim::Engine &engine, const WirelessConfig &cfg);

    /** Outcome of one slot attempt. */
    enum class Outcome
    {
        Delivered,
        Collided,
        /** Abort predicate fired when the transmit slot was won. */
        Aborted,
        /** Won the slot but the lossy channel corrupted the frame:
         *  deliver never ran; the sender's ack window will expire. */
        Dropped,
    };

    /**
     * Try once: contend for the next free slot, then either transmit
     * fully (running @p deliver at the delivery instant), collide, or
     * abort (the @p abort predicate is evaluated at arbitration time,
     * i.e. "when the write is attempted" — the paper's AFB semantics).
     * Under a lossy channel (@see lossy()) a won slot may instead be
     * Dropped, decided by one Bernoulli draw from @p rng — the
     * transmitting node's stream, so runs stay bit-reproducible. The
     * MAC layers retries/backoff/ack-timeouts on top of this.
     */
    coro::Task<Outcome> attempt(sim::NodeId src, bool bulk,
                                sim::UniqueFunction &deliver,
                                const std::function<bool()> *abort,
                                sim::Rng *rng = nullptr);

    class FastAttempt;

    /**
     * One registered contender for a transmit slot. Lives in the
     * registering attempt's coroutine frame (coroutine path) or in a
     * FastAttempt in the sender's frame (frameless path); exactly one
     * completion sink is set.
     */
    struct Pending
    {
        bool bulk = false;
        sim::UniqueFunction *deliver = nullptr;
        const std::function<bool()> *abort = nullptr;
        /** Coroutine path: outcome lands in this future. */
        coro::Future<Outcome> *done = nullptr;
        /** Frameless path: outcome resumes this awaiter's caller. */
        FastAttempt *fast = nullptr;
        /** Transmitting node (drop-table lookup under loss). */
        sim::NodeId src = 0;
        /** Transmitter's RNG stream for the packet-error draw; only
         *  consulted when the channel is lossy. */
        sim::Rng *rng = nullptr;
    };

    /**
     * Frameless one-shot slot attempt for the Mac fast path: joins the
     * slot opening at now() exactly as the attempt() coroutine would
     * (same arbitration event, same registration order), then resumes
     * its awaiting sender directly from the delivery / collision /
     * abort completion event — no attempt frame, no future.
     */
    class FastAttempt
    {
      public:
        /** Registers immediately; only legal when now() >= nextFree(). */
        FastAttempt(DataChannel &channel, sim::NodeId src, bool bulk,
                    sim::UniqueFunction *deliver,
                    const std::function<bool()> *abort, sim::Rng *rng)
            : engine_(channel.engine_)
        {
            pending_.bulk = bulk;
            pending_.deliver = deliver;
            pending_.abort = abort;
            pending_.fast = this;
            pending_.src = src;
            pending_.rng = rng;
            channel.joinSlot(pending_);
        }

        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h) { caller_ = h; }
        Outcome await_resume() const noexcept { return outcome_; }

        /**
         * Called by the channel's completion events. The sender is
         * resumed through the ready ring — claiming its sequence
         * number exactly where the coroutine path's Future::set wakeup
         * would — so the Mac epilogue runs at an identical position in
         * the event stream.
         */
        void
        complete(Outcome outcome)
        {
            outcome_ = outcome;
            engine_.resumeHandle(0, caller_);
        }

      private:
        sim::Engine &engine_;
        Pending pending_;
        Outcome outcome_ = Outcome::Collided;
        std::coroutine_handle<> caller_;
    };

    /** First cycle a new transmission may start. */
    sim::Cycle nextFree() const { return nextFree_; }

    /** Record a successful send that first contended at @p started. */
    void
    noteDelivery(sim::Cycle started)
    {
        stats_.deliveryLatency.sample(
            static_cast<double>(engine_.now() - started));
    }

    /** Fast-path telemetry hooks (driven by the Mac front-ends). */
    void noteFastpathHit() { stats_.fastpathHits.inc(); }
    void noteFastpathFallback() { stats_.fastpathFallbacks.inc(); }

    const DataChannelStats &stats() const { return stats_; }
    const WirelessConfig &config() const { return cfg_; }

    // ---- Lossy channel model --------------------------------------

    /**
     * Install per-transmitter broadcast packet-error rates derived
     * from the RF channel model (index = transmitting node; one table
     * per frame size). Combined independently with the uniform
     * lossPct; empty tables revert to lossPct alone. BmSystem owns
     * the RfChannelModel and calls this when berFromSnr is set.
     */
    void setDropTable(std::vector<double> data, std::vector<double> bulk);

    /** True when any transmission can be lost (a positive lossPct or
     *  an installed drop table). False costs nothing: zero RNG draws,
     *  an event stream identical to the pre-loss simulator. */
    bool lossy() const { return lossEnabled_; }

    /** Probability a broadcast from @p src fails to reach every node
     *  under the i.i.d. model (lossPct x SNR drop table). */
    double dropProbability(sim::NodeId src, bool bulk) const;

    /** The Gilbert–Elliott state of transmitter @p src (Good until its
     *  first burst-mode transmission). Test/introspection hook. */
    bool
    burstBad(sim::NodeId src) const
    {
        return src < burstStates_.size() && burstStates_[src].bad();
    }

    /** Utilisation bookkeeping: total busy cycles / elapsed cycles. */
    double
    utilisation() const
    {
        const auto now = engine_.now();
        return now == 0 ? 0.0
                        : static_cast<double>(stats_.busyCycles.value()) /
                              static_cast<double>(now);
    }

    /**
     * Idle channel, zero stats, optionally retimed via @p cfg. Pending
     * attempts must already be gone (their coroutine frames destroyed
     * by the engine reset that precedes this in Machine::reset).
     */
    void reset(const WirelessConfig &cfg);

  private:
    /** Register @p p in the slot opening at now() (first registrant
     *  schedules the arbitration event). now() >= nextFree_ required. */
    void joinSlot(Pending &p);

    void arbitrate();

    /** Burst mode: step @p src's chain from @p rng and compose the
     *  per-state rate with the SNR drop table for this transmission. */
    double burstDropProbability(sim::NodeId src, bool bulk,
                                sim::Rng &rng);

    sim::Engine &engine_;
    WirelessConfig cfg_;
    sim::Cycle nextFree_ = 0;
    /** Cycle of the slot currently collecting attempts (or kCycleMax). */
    sim::Cycle openSlot_ = sim::kCycleMax;
    std::vector<Pending *> slotAttempts_;
    /** Double buffer for arbitrate(): both keep their capacity, so
     *  steady-state arbitration never touches the allocator. */
    std::vector<Pending *> arbScratch_;
    /** Per-tx SNR-derived packet-error rates (empty: uniform only). */
    std::vector<double> dropData_;
    std::vector<double> dropBulk_;
    /** Per-transmitter Gilbert–Elliott states, grown on first use;
     *  untouched (and empty) unless cfg_.burst.enabled. */
    std::vector<BurstState> burstStates_;
    bool lossEnabled_ = false;
    DataChannelStats stats_;
};

/**
 * How one Mac::send ended. GaveUp is the typed delivery failure of
 * the reliability layer: the channel lost the frame maxRetries + 1
 * times and the sender stopped — the broadcast never happened (no
 * replica changed), and the caller must re-issue or abort (BmSystem
 * maps it onto the AFB/software-retry contract).
 */
enum class SendOutcome
{
    Delivered,
    /** AFB abort predicate fired; nothing was broadcast. */
    Aborted,
    /** Lossy channel: exceeded maxRetries; nothing was broadcast. */
    GaveUp,
};

/**
 * Per-node Medium Access front-end.
 *
 * Serializes the node's broadcasts (§4.2.1: no subsequent store
 * proceeds until the current one performed) and drives the channel's
 * shared MacProtocol through its acquire / release / onCollision
 * hooks; the protocol decides when this node may contend and how
 * collisions resolve (wireless/mac/).
 */
class Mac
{
  public:
    Mac(sim::Engine &engine, DataChannel &channel, MacProtocol &protocol,
        sim::NodeId node, sim::Rng rng);

    /**
     * Broadcast one message, retrying through collisions until it is
     * delivered. @p deliver runs at the delivery instant (total-order
     * commit point). @p abort, if non-null and returning true when a
     * slot is won, cancels the transmission (used for RMW atomicity
     * failure: the instruction "neither broadcasts its value nor
     * updates the local BM").
     *
     * Under a lossy channel each corrupted transmission costs an ack
     * timeout plus a bounded exponential backoff before the
     * retransmission; after maxRetries retransmissions the send
     * returns SendOutcome::GaveUp instead of hanging. On the ideal
     * channel the result is always Delivered or Aborted.
     */
    coro::Task<SendOutcome> send(bool bulk, sim::UniqueFunction deliver,
                                 const std::function<bool()> *abort =
                                     nullptr);

    sim::NodeId node() const { return node_; }
    std::uint64_t retries() const { return retries_.value(); }

    /**
     * Fresh RNG stream, rebound to @p protocol (which BmSystem::reset
     * may have rebuilt under a new MacKind); the order mutex is freed.
     */
    void reset(MacProtocol &protocol, sim::Rng rng);

  private:
    /**
     * The acquire/attempt/backoff retry loop, entered with order_
     * held. Shared by the slow path (from the first attempt) and the
     * fast path (after its armed attempt collided or was dropped;
     * @p drops carries the fast attempt's loss count forward so the
     * maxRetries budget spans the whole send).
     */
    coro::Task<SendOutcome> sendLoop(bool bulk,
                                     sim::UniqueFunction &deliver,
                                     const std::function<bool()> *abort,
                                     sim::Cycle first_attempt,
                                     std::uint32_t drops);

    /**
     * The per-send ack window: transmission @p drops was corrupted,
     * so wait out the ack timeout (plus the bounded exponential
     * backoff when a retransmission follows) and report whether the
     * sender may retry (false: maxRetries exhausted — give up).
     */
    coro::Task<bool> ackTimeoutRetry(std::uint32_t drops);

    sim::Engine &engine_;
    DataChannel &channel_;
    MacProtocol *protocol_;
    sim::NodeId node_;
    sim::Rng rng_;
    coro::SimMutex order_;
    sim::Counter retries_;
};

} // namespace wisync::wireless

#endif // WISYNC_WIRELESS_DATA_CHANNEL_HH
