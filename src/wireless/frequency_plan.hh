/**
 * @file
 * Spectrum slots for multi-chip wireless domains.
 *
 * Each chip's transceivers reach only their own die, so spatially
 * separate chips could share a frequency — but chips assigned the same
 * spectrum slot here are modelled conservatively as one arbitration
 * domain: they share a DataChannel and a MacProtocol instance, so
 * their transmissions contend (and collide) with each other, while
 * chips on different slots transmit concurrently. With at least as
 * many slots as chips (the default plan) every chip owns a private
 * channel and the plan is pure bookkeeping.
 *
 * The plan also defines the channel-local node numbering: a chip's
 * cores occupy one contiguous block per chip sharing the channel, in
 * chip order — which is what the per-transmitter drop tables and the
 * MAC protocols index by.
 */

#ifndef WISYNC_WIRELESS_FREQUENCY_PLAN_HH
#define WISYNC_WIRELESS_FREQUENCY_PLAN_HH

#include <cstdint>

#include "sim/types.hh"

namespace wisync::wireless {

/** chip -> spectrum slot assignment (round-robin over the slots). */
class FrequencyPlan
{
  public:
    FrequencyPlan(std::uint32_t num_chips = 1,
                  std::uint32_t spectrum_slots = 4,
                  double loss_base_db = 0.0, double loss_step_db = 0.0)
        : numChips_(num_chips == 0 ? 1 : num_chips),
          channels_(spectrum_slots == 0
                        ? 1
                        : (spectrum_slots < numChips_ ? spectrum_slots
                                                      : numChips_)),
          lossBaseDb_(loss_base_db), lossStepDb_(loss_step_db)
    {}

    std::uint32_t chips() const { return numChips_; }

    /** Distinct arbitration domains (= DataChannel instances). */
    std::uint32_t channels() const { return channels_; }

    /** The spectrum slot / channel @p chip transmits on. */
    std::uint32_t channelOf(std::uint32_t chip) const
    {
        return chip % channels_;
    }

    /** @p chip's position among the chips sharing its channel. */
    std::uint32_t chipIndexOnChannel(std::uint32_t chip) const
    {
        return chip / channels_;
    }

    /** How many chips share channel @p channel. */
    std::uint32_t chipsOnChannel(std::uint32_t channel) const
    {
        return (numChips_ - channel - 1) / channels_ + 1;
    }

    /** The chip at @p index on @p channel (inverse of the above). */
    std::uint32_t chipAt(std::uint32_t channel, std::uint32_t index) const
    {
        return channel + index * channels_;
    }

    /**
     * Extra link attenuation of spectrum slot @p channel, dB: carriers
     * at different frequencies see different path loss and dispersion
     * (Timoneda et al.), so each slot gets its own profile,
     * lossBaseDb + channel * lossStepDb. BmSystem folds this into the
     * RF attenuation matrix of every chip on the slot — the chips
     * sharing a slot (the far-apart pairs) share its physics. Both
     * knobs default to 0: identical slots, the pre-profile model.
     */
    double channelLossDb(std::uint32_t channel) const
    {
        return lossBaseDb_ + channel * lossStepDb_;
    }

    bool operator==(const FrequencyPlan &) const = default;

  private:
    std::uint32_t numChips_;
    std::uint32_t channels_;
    double lossBaseDb_ = 0.0;
    double lossStepDb_ = 0.0;
};

} // namespace wisync::wireless

#endif // WISYNC_WIRELESS_FREQUENCY_PLAN_HH
