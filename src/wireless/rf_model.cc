#include "wireless/rf_model.hh"

#include <cmath>

namespace wisync::wireless {

RfSpec
RfScalingModel::yu65Reference()
{
    return RfSpec{0.23, 31.2, 16.0, 60.0, 65};
}

RfSpec
RfScalingModel::toneExtension22()
{
    // Scaled from the 65 nm antenna/transceiver data of [14, 49]:
    // a 1 GHz-wide tone needs only trivial modulation hardware plus a
    // small (90 GHz) zig-zag antenna.
    return RfSpec{0.04, 2.0, 0.001, 90.0, 22};
}

RfSpec
RfScalingModel::scale(const RfSpec &ref, int target_nm)
{
    const double ratio =
        static_cast<double>(target_nm) / static_cast<double>(ref.techNm);
    RfSpec out = ref;
    out.techNm = target_nm;
    out.areaMm2 = ref.areaMm2 * std::pow(ratio, kAreaExponent);
    out.powerMw = ref.powerMw * std::pow(ratio, kPowerExponent);
    // Bandwidth is held constant across the shrink (the conservative
    // choice in §2; the alternative doubles bandwidth instead of
    // saving power).
    return out;
}

RfSpec
RfScalingModel::wisyncTransceiver22()
{
    const RfSpec data = scale(yu65Reference(), 22);
    const RfSpec tone = toneExtension22();
    RfSpec total = data;
    total.areaMm2 += tone.areaMm2;
    total.powerMw += tone.powerMw;
    return total;
}

std::vector<CoreSpec>
RfScalingModel::referenceCores()
{
    // §7.1: 18-core Haswell @2.1 GHz is 135 W TDP -> ~5 W per core
    // frequency-corrected; 8-core Avoton @1.7 GHz is 12 W -> ~1 W per
    // core at 1 GHz. Areas from the literature.
    return {
        CoreSpec{"Xeon Haswell", 21.1, 5.0},
        CoreSpec{"Atom Silvermont", 2.5, 1.0},
    };
}

std::vector<Table4Row>
RfScalingModel::table4()
{
    const RfSpec t2a = wisyncTransceiver22();
    std::vector<Table4Row> rows;
    for (const auto &core : referenceCores()) {
        rows.push_back(Table4Row{
            core.name,
            t2a.areaMm2 / core.areaMm2 * 100.0,
            t2a.powerMw / (core.powerW * 1000.0) * 100.0,
        });
    }
    return rows;
}

} // namespace wisync::wireless
