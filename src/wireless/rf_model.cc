#include "wireless/rf_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace wisync::wireless {

RfSpec
RfScalingModel::yu65Reference()
{
    return RfSpec{0.23, 31.2, 16.0, 60.0, 65};
}

RfSpec
RfScalingModel::toneExtension22()
{
    // Scaled from the 65 nm antenna/transceiver data of [14, 49]:
    // a 1 GHz-wide tone needs only trivial modulation hardware plus a
    // small (90 GHz) zig-zag antenna.
    return RfSpec{0.04, 2.0, 0.001, 90.0, 22};
}

RfSpec
RfScalingModel::scale(const RfSpec &ref, int target_nm)
{
    const double ratio =
        static_cast<double>(target_nm) / static_cast<double>(ref.techNm);
    RfSpec out = ref;
    out.techNm = target_nm;
    out.areaMm2 = ref.areaMm2 * std::pow(ratio, kAreaExponent);
    out.powerMw = ref.powerMw * std::pow(ratio, kPowerExponent);
    // Bandwidth is held constant across the shrink (the conservative
    // choice in §2; the alternative doubles bandwidth instead of
    // saving power).
    return out;
}

RfSpec
RfScalingModel::wisyncTransceiver22()
{
    const RfSpec data = scale(yu65Reference(), 22);
    const RfSpec tone = toneExtension22();
    RfSpec total = data;
    total.areaMm2 += tone.areaMm2;
    total.powerMw += tone.powerMw;
    return total;
}

std::vector<CoreSpec>
RfScalingModel::referenceCores()
{
    // §7.1: 18-core Haswell @2.1 GHz is 135 W TDP -> ~5 W per core
    // frequency-corrected; 8-core Avoton @1.7 GHz is 12 W -> ~1 W per
    // core at 1 GHz. Areas from the literature.
    return {
        CoreSpec{"Xeon Haswell", 21.1, 5.0},
        CoreSpec{"Atom Silvermont", 2.5, 1.0},
    };
}

std::uint32_t
RfScalingModel::frameCycles(std::uint32_t bits, const RfSpec &spec)
{
    // A zero/negative bandwidth would divide to inf and the
    // double -> uint32_t cast below would be undefined.
    WISYNC_FATAL_IF(!(spec.bandwidthGbps > 0.0),
                    "frameCycles needs a positive bandwidth");
    // 1 cycle = 1 ns, so bits-per-cycle equals the Gb/s figure.
    const double cycles =
        std::ceil(static_cast<double>(bits) / spec.bandwidthGbps);
    return cycles < 1.0 ? 1u : static_cast<std::uint32_t>(cycles);
}

RfChannelModel::RfChannelModel(std::uint32_t num_nodes,
                               const RfChannelConfig &cfg)
    : numNodes_(num_nodes), cfg_(cfg)
{
    side_ = 1;
    while (side_ * side_ < numNodes_)
        ++side_;
    pathLossDb_.resize(static_cast<std::size_t>(numNodes_) * numNodes_);
    for (std::uint32_t tx = 0; tx < numNodes_; ++tx)
        for (std::uint32_t rx = 0; rx < numNodes_; ++rx)
            pathLossDb_[idx(tx, rx)] =
                cfg_.plRefDb + cfg_.extraLossDb +
                cfg_.plSlopeDbPerMm * distanceMm(tx, rx);
}

void
RfChannelModel::overridePathLoss(std::uint32_t tx, std::uint32_t rx,
                                 double db)
{
    // A silent out-of-bounds write would corrupt a neighbouring link's
    // attenuation (or the heap) — same guard style as frameCycles.
    WISYNC_FATAL_IF(tx >= numNodes_ || rx >= numNodes_,
                    "overridePathLoss link (%u, %u) out of range for %u "
                    "nodes",
                    tx, rx, numNodes_);
    pathLossDb_[idx(tx, rx)] = db;
}

double
RfChannelModel::distanceMm(std::uint32_t tx, std::uint32_t rx) const
{
    const double pitch = cfg_.chipEdgeMm / static_cast<double>(side_);
    const double dx = (static_cast<double>(tx % side_) -
                       static_cast<double>(rx % side_)) *
                      pitch;
    const double dy = (static_cast<double>(tx / side_) -
                       static_cast<double>(rx / side_)) *
                      pitch;
    return std::sqrt(dx * dx + dy * dy);
}

double
RfChannelModel::snrDb(std::uint32_t tx, std::uint32_t rx) const
{
    return cfg_.txPowerDbm - pathLossDb(tx, rx) - cfg_.noiseFloorDbm;
}

double
RfChannelModel::bitErrorRate(std::uint32_t tx, std::uint32_t rx) const
{
    // Non-coherent OOK envelope detection: BER = 0.5 * exp(-SNR/2)
    // (linear SNR), saturating at coin-flip for hopeless links.
    const double snr = std::pow(10.0, snrDb(tx, rx) / 10.0);
    const double ber = 0.5 * std::exp(-snr / 2.0);
    return ber < 0.0 ? 0.0 : (ber > 0.5 ? 0.5 : ber);
}

double
RfChannelModel::broadcastErrorRate(std::uint32_t tx,
                                   std::uint32_t bits) const
{
    // P(all receivers get all bits) in log space to survive the
    // product over numNodes * bits Bernoulli terms without underflow.
    double log_ok = 0.0;
    for (std::uint32_t rx = 0; rx < numNodes_; ++rx) {
        if (rx == tx)
            continue;
        const double ber = bitErrorRate(tx, rx);
        if (ber >= 1.0)
            return 1.0;
        log_ok += static_cast<double>(bits) * std::log1p(-ber);
    }
    const double per = -std::expm1(log_ok);
    return per < 0.0 ? 0.0 : (per > 1.0 ? 1.0 : per);
}

std::vector<Table4Row>
RfScalingModel::table4()
{
    const RfSpec t2a = wisyncTransceiver22();
    std::vector<Table4Row> rows;
    for (const auto &core : referenceCores()) {
        rows.push_back(Table4Row{
            core.name,
            t2a.areaMm2 / core.areaMm2 * 100.0,
            t2a.powerMw / (core.powerW * 1000.0) * 100.0,
        });
    }
    return rows;
}

} // namespace wisync::wireless
