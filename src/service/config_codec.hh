/**
 * @file
 * JSON <-> MachineConfig codec for the sweep service.
 *
 * A sweep request is a JSON document:
 *
 *   {"points": [{"config": {...}, "workload": {...}}, ...]}
 *
 * Each config object may set any subset of the supported knobs — the
 * rest take MachineConfig::make() defaults for the requested
 * kind/cores/variant, exactly as the benches build their grids. The
 * codec covers every knob describe() distinguishes (kind, cores,
 * chips, variant, the MAC family, the loss/burst/ack/retry knobs, the
 * per-slot channel-loss profile, spectrum slots, the full bridge
 * block) plus seed and issueWidth, so any point a figure bench can
 * run, a service request can name.
 *
 * Contracts:
 *
 *  - Strictness: unknown keys are hard errors anywhere in the
 *    request — a misspelled knob must never silently fall back to its
 *    default and "succeed" with the wrong simulation. Type
 *    mismatches, out-of-range values and structurally invalid
 *    configs (cores not divisible by chips) are errors too. Every
 *    error names the offending field path and the point index.
 *
 *  - Canonicalization: serialize() emits every supported key in one
 *    fixed order with shortest-round-trip numbers. Hence
 *    serialize(parse(x)) is the canonical form of any request x —
 *    independent of x's key order, whitespace, number spelling and
 *    omitted defaults — and two requests denote the same point iff
 *    their canonical forms are byte-equal. The result cache and the
 *    in-batch dedupe key on exactly that string (via its
 *    fingerprint), which is what makes cache hits exact.
 *
 *  - Round-trip: parse(serialize(cfg)) == cfg (MachineConfig
 *    operator==) for any cfg reachable through make() plus
 *    codec-covered knob overrides.
 */

#ifndef WISYNC_SERVICE_CONFIG_CODEC_HH
#define WISYNC_SERVICE_CONFIG_CODEC_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/machine_config.hh"
#include "service/json.hh"
#include "workloads/cas_kernels.hh"
#include "workloads/kernel_result.hh"
#include "workloads/tight_loop.hh"

namespace wisync::core {
class Machine;
}

namespace wisync::service {

/**
 * Request parse/validation failure: the offending field path (e.g.
 * "points[3].config.wireless.lossPct") and the point index it
 * occurred in (npos for request-level errors). what() carries both.
 */
class ParseError : public std::runtime_error
{
  public:
    static constexpr std::size_t kNoPoint =
        static_cast<std::size_t>(-1);

    ParseError(std::string field, std::size_t point_index,
               const std::string &message);

    const std::string &field() const { return field_; }
    std::size_t pointIndex() const { return pointIndex_; }

  private:
    std::string field_;
    std::size_t pointIndex_;
};

/**
 * A point's simulated-cycle budget was exhausted: the engine parked at
 * exactly maxCycles with work still pending, the run was abandoned and
 * this typed error captured instead (through ParallelSweep's
 * runCaptured path — the batch keeps going). Deterministic: the same
 * point always fails at the same cycle with the same message.
 */
class DeadlineExceeded : public std::runtime_error
{
  public:
    DeadlineExceeded(std::uint64_t max_cycles, std::uint64_t at_cycle);

    std::uint64_t maxCycles() const { return maxCycles_; }
    /** The exact simulated cycle the engine parked at (== maxCycles). */
    std::uint64_t atCycle() const { return atCycle_; }

  private:
    std::uint64_t maxCycles_;
    std::uint64_t atCycle_;
};

/** Which kernel a request point runs on its machine. */
struct WorkloadSpec
{
    enum class Kind
    {
        TightLoop,
        Cas,
    };

    Kind kind = Kind::TightLoop;
    workloads::TightLoopParams tightLoop;
    workloads::CasKernel casKernel = workloads::CasKernel::Lifo;
    workloads::CasKernelParams cas;
    /**
     * Simulated-cycle budget for the whole point; 0 = unlimited. A
     * point that is still running at this cycle aborts with a typed
     * DeadlineExceeded (never a hang, never a partial result) —
     * unlike tightloop's runLimit, which yields a completed=false
     * result. Enforced by the engine's deadline park, so the abort
     * cycle is exact and deterministic.
     */
    std::uint64_t maxCycles = 0;

    bool operator==(const WorkloadSpec &) const = default;

    /** Canonical, process-stable hash (same contract as
     *  MachineConfig::fingerprint). */
    std::uint64_t fingerprint() const;

    /** Version of the workload fingerprint stream layout (same bump
     *  discipline as MachineConfig::kFingerprintVersion). */
    static constexpr std::uint64_t kFingerprintVersion = 2;

    /** Relative cost estimate for shard planning: cores x workload
     *  length (see ShardPlanner::planByCost). */
    std::uint64_t lengthEstimate() const;
};

/** One point of a sweep request. */
struct RequestPoint
{
    core::MachineConfig config;
    WorkloadSpec workload;

    bool operator==(const RequestPoint &) const = default;

    /** Combined config x workload fingerprint — the cache key. */
    std::uint64_t fingerprint() const;
};

/** A parsed batch request. */
struct SweepRequest
{
    std::vector<RequestPoint> points;
};

/** See the file comment for the schema and the codec contracts. */
class ConfigCodec
{
  public:
    /** Parse a whole request document (throws ParseError). */
    static SweepRequest parseRequest(const std::string &json_text);

    /**
     * Parse one config object. @p point_index and @p path seed error
     * reporting ("points[i].config" when called via parseRequest).
     */
    static core::MachineConfig
    parseConfig(const Json &v, std::size_t point_index = ParseError::kNoPoint,
                const std::string &path = "config");

    /** Parse one workload object (same error conventions). */
    static WorkloadSpec
    parseWorkload(const Json &v,
                  std::size_t point_index = ParseError::kNoPoint,
                  const std::string &path = "workload");

    /** Canonical JSON of @p cfg (every supported key, fixed order). */
    static std::string serialize(const core::MachineConfig &cfg);

    /** Canonical JSON of @p w. */
    static std::string serialize(const WorkloadSpec &w);

    /** Canonical JSON of one request point. */
    static std::string serialize(const RequestPoint &point);

    /** Canonical JSON of a whole request. */
    static std::string serializeRequest(const SweepRequest &request);

    /** JSON object with every simulated-observable KernelResult
     *  field (the service response's per-point "result" block). */
    static std::string serializeResult(const workloads::KernelResult &r);
};

/** Run @p spec's kernel on @p machine (the sweep-point body). */
workloads::KernelResult runWorkload(const WorkloadSpec &spec,
                                    core::Machine &machine);

} // namespace wisync::service

#endif // WISYNC_SERVICE_CONFIG_CODEC_HH
