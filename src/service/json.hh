/**
 * @file
 * Minimal JSON for the sweep service: a recursive-descent parser into
 * an ordered value tree, plus canonical emission helpers.
 *
 * Deliberately not a general-purpose library — it supports exactly
 * what the service front-end needs and nothing the container lacks:
 *
 *  - parse() accepts standard JSON (objects, arrays, strings with
 *    escapes, numbers, true/false/null) and reports errors with a
 *    byte offset, which ConfigCodec turns into field-path errors;
 *  - object members preserve source order and are probed by find(),
 *    so the codec can both walk every key (unknown-key hard errors)
 *    and look up the ones it knows;
 *  - numbers keep their raw token next to the double so 64-bit seeds
 *    round-trip exactly (a double-only representation silently
 *    corrupts integers above 2^53);
 *  - the emit helpers produce the service's canonical form: fixed
 *    field order is the caller's job, escaping and shortest
 *    round-trip number formatting are handled here.
 */

#ifndef WISYNC_SERVICE_JSON_HH
#define WISYNC_SERVICE_JSON_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace wisync::service {

/** Malformed JSON text: message plus byte offset into the input. */
class JsonError : public std::runtime_error
{
  public:
    JsonError(const std::string &message, std::size_t offset)
        : std::runtime_error(message + " at byte " +
                             std::to_string(offset)),
          offset_(offset)
    {}

    std::size_t offset() const { return offset_; }

  private:
    std::size_t offset_;
};

/** One parsed JSON value (see file comment for the design limits). */
class Json
{
  public:
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /** Parse @p text (the whole string must be one value). */
    static Json parse(const std::string &text);

    Type type() const { return type_; }
    const char *typeName() const;

    bool isObject() const { return type_ == Type::Object; }
    bool isArray() const { return type_ == Type::Array; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isBool() const { return type_ == Type::Bool; }

    bool boolean() const { return bool_; }
    double number() const { return number_; }
    /** The number's source token (exact u64 parsing; numbers only). */
    const std::string &rawNumber() const { return raw_; }
    const std::string &str() const { return string_; }

    const std::vector<Json> &array() const { return array_; }
    /** Members in source order. */
    const std::vector<std::pair<std::string, Json>> &
    object() const
    {
        return object_;
    }

    /** First member named @p key, or nullptr. */
    const Json *find(const std::string &key) const;

  private:
    friend class JsonParser;

    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string raw_;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

// ---- Canonical emission helpers ----------------------------------

/** @p s quoted and escaped as a JSON string literal. */
std::string jsonQuote(const std::string &s);

/** Shortest round-trip decimal form of @p v (to_chars). */
std::string jsonNumber(double v);

/** Exact decimal form of @p v. */
std::string jsonNumber(std::uint64_t v);

} // namespace wisync::service

#endif // WISYNC_SERVICE_JSON_HH
