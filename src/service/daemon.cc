#include "service/daemon.hh"

#include <cstdio>
#include <istream>
#include <ostream>
#include <utility>

#include "harness/parallel_sweep.hh"
#include "service/config_codec.hh"
#include "service/json.hh"
#include "service/shard_planner.hh"

namespace wisync::service {

namespace {

/**
 * Read one line into @p line, buffering at most @p max_bytes. Longer
 * lines set @p overflowed and are drained to the newline without
 * being stored — the caller answers an error without ever holding
 * (or parsing) the oversized text.
 * @return false at EOF with nothing consumed.
 */
bool
readBoundedLine(std::istream &in, std::string &line,
                std::size_t max_bytes, bool &overflowed)
{
    line.clear();
    overflowed = false;
    int c = in.get();
    if (c == std::istream::traits_type::eof())
        return false;
    for (; c != std::istream::traits_type::eof(); c = in.get()) {
        if (c == '\n')
            break;
        if (line.size() >= max_bytes) {
            overflowed = true;
            line.clear();
            continue; // keep draining to the newline
        }
        line.push_back(static_cast<char>(c));
    }
    return true;
}

std::string
buildResponse(const DaemonOptions &opt, std::size_t total_points,
              const std::vector<std::size_t> &indices,
              const std::vector<ServiceOutcome> &outcomes,
              const SweepService &svc)
{
    const BatchStats &stats = svc.lastBatch();
    const ResultCache::Stats &cs = svc.cache().stats();
    std::string out = "{";
    out += "\"points\":" + jsonNumber(std::uint64_t(total_points));
    out += ",\"shard\":{\"index\":" + jsonNumber(std::uint64_t(opt.shard)) +
           ",\"shards\":" + jsonNumber(std::uint64_t(opt.numShards)) +
           ",\"plan\":" +
           jsonQuote(opt.planByCost ? "cost" : "strided") + "}";
    out += ",\"stats\":{\"simulated\":" +
           jsonNumber(std::uint64_t(stats.simulated)) +
           ",\"cacheHits\":" + jsonNumber(std::uint64_t(stats.cacheHits)) +
           ",\"errors\":" + jsonNumber(std::uint64_t(stats.errors)) + "}";
    out += ",\"cache\":{\"hits\":" + jsonNumber(cs.hits) +
           ",\"misses\":" + jsonNumber(cs.misses) +
           ",\"insertions\":" + jsonNumber(cs.insertions) +
           ",\"evictions\":" + jsonNumber(cs.evictions) +
           ",\"collisions\":" + jsonNumber(cs.collisions) + "}";
    out += ",\"results\":[";
    for (std::size_t j = 0; j < outcomes.size(); ++j) {
        const ServiceOutcome &o = outcomes[j];
        if (j)
            out += ",";
        out += "{\"index\":" + jsonNumber(std::uint64_t(indices[j]));
        out += ",\"fingerprint\":" + jsonNumber(o.fingerprint);
        out += ",\"ok\":" + std::string(o.ok ? "true" : "false");
        out += ",\"cacheHit\":" + std::string(o.cacheHit ? "true"
                                                         : "false");
        if (o.ok)
            out += ",\"result\":" + ConfigCodec::serializeResult(o.result);
        else
            out += ",\"error\":" + jsonQuote(o.error);
        out += "}";
    }
    out += "]}";
    return out;
}

} // namespace

std::string
errorResponseJson(const ParseError &e)
{
    std::string out = "{\"error\":{";
    out += "\"message\":" + jsonQuote(e.what());
    out += ",\"field\":" + jsonQuote(e.field());
    if (e.pointIndex() != ParseError::kNoPoint)
        out += ",\"point\":" +
               jsonNumber(std::uint64_t(e.pointIndex()));
    out += "}}";
    return out;
}

Daemon::Daemon(DaemonOptions opt)
    : opt_(std::move(opt)),
      svc_(opt_.cacheCapacity, opt_.hasherOverride)
{
    if (opt_.threads == 0)
        opt_.threads = harness::ParallelSweep::threads();
    warn_ = [](const std::string &message) {
        std::fprintf(stderr, "wisync_sweepd: %s\n", message.c_str());
    };
}

CacheStore::LoadStats
Daemon::start(std::string *error)
{
    CacheStore::LoadStats stats;
    if (opt_.cacheFile.empty())
        return stats;
    stats = CacheStore::load(svc_.cache(), opt_.cacheFile);
    // Compact: rewrite only the salvageable records (atomically),
    // which heals corrupt tails / bad records and bounds the growth
    // the append stream accumulated across past daemon lifetimes.
    // A version-mismatched or unsalvageable file is simply replaced.
    std::string save_error;
    if (!CacheStore::save(svc_.cache(), opt_.cacheFile, &save_error)) {
        if (error != nullptr)
            *error = save_error;
        return stats;
    }
    std::string open_error;
    if (!appender_.open(opt_.cacheFile, &open_error)) {
        if (error != nullptr)
            *error = open_error;
        return stats;
    }
    svc_.cache().setSpillHook(
        [this](const RequestPoint &point,
               const workloads::KernelResult &result) {
            appender_.append(point, result);
        });
    return stats;
}

void
Daemon::warnIfCollisions()
{
    const std::uint64_t collisions = svc_.cache().stats().collisions;
    if (collisions > reportedCollisions_) {
        warn_("result-cache fingerprint collision detected (" +
              std::to_string(collisions) +
              " total); colliding lookups degrade to misses");
        reportedCollisions_ = collisions;
    }
}

std::string
Daemon::handleRequest(const std::string &text, bool *ok_out)
{
    if (ok_out != nullptr)
        *ok_out = false;
    try {
        const SweepRequest request = ConfigCodec::parseRequest(text);
        const std::vector<std::size_t> indices =
            opt_.planByCost
                ? ShardPlanner::planByCost(request, opt_.shard,
                                           opt_.numShards)
                : ShardPlanner::shardIndices(request.points.size(),
                                             opt_.shard,
                                             opt_.numShards);
        const SweepRequest slice =
            ShardPlanner::subRequest(request, indices);
        const auto outcomes = svc_.runBatch(slice, opt_.threads);
        warnIfCollisions();
        if (ok_out != nullptr)
            *ok_out = true;
        return buildResponse(opt_, request.points.size(), indices,
                             outcomes, svc_);
    } catch (const ParseError &e) {
        return errorResponseJson(e);
    } catch (const JsonError &e) {
        return errorResponseJson(
            ParseError("<request>", ParseError::kNoPoint, e.what()));
    } catch (const std::exception &e) {
        // Belt and braces: nothing below should throw anything else,
        // but the serve loop must survive even if it does.
        return errorResponseJson(
            ParseError("<internal>", ParseError::kNoPoint, e.what()));
    }
}

std::size_t
Daemon::serve(std::istream &in, std::ostream &out)
{
    std::size_t served = 0;
    std::string line;
    bool overflowed = false;
    while (readBoundedLine(in, line, opt_.maxRequestBytes, overflowed)) {
        if (overflowed) {
            out << errorResponseJson(ParseError(
                       "<request>", ParseError::kNoPoint,
                       "request line exceeds " +
                           std::to_string(opt_.maxRequestBytes) +
                           " bytes"))
                << "\n";
            out.flush();
            ++served;
            continue;
        }
        if (line.empty())
            continue;
        out << handleRequest(line) << "\n";
        out.flush();
        ++served;
    }
    return served;
}

} // namespace wisync::service
