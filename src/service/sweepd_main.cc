/**
 * @file
 * wisync_sweepd — the sweep service as a process.
 *
 * Reads one JSON sweep request (stdin or --input), answers it through
 * SweepService (dedupe + result cache + ParallelSweep) and writes one
 * JSON response (stdout or --output). --shard I/K makes the process
 * simulate only its strided slice of the grid while still reporting
 * results under *global* point indices, so a shell loop can run K
 * daemons on K hosts and merge their "results" arrays by index into
 * exactly the serial output:
 *
 *   for i in 0 1 2 3; do
 *       wisync_sweepd --shard $i/4 < request.json > part$i.json &
 *   done; wait   # then concatenate the results arrays, sort by index
 *
 * Request schema: see src/service/config_codec.hh. Response:
 *
 *   {"points": N, "shard": {"index": I, "shards": K},
 *    "stats": {"simulated":.., "cacheHits":.., "errors":..},
 *    "cache": {"hits":.., "misses":.., "insertions":..,
 *              "evictions":.., "collisions":..},
 *    "results": [{"index":.., "fingerprint":.., "ok":..,
 *                 "cacheHit":.., "result":{...} | "error":".."}]}
 *
 * A malformed request produces {"error": {...}} on the output stream
 * and exit code 1; the error object names the offending field path
 * and point index (ConfigCodec's strictness contract).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "service/config_codec.hh"
#include "service/shard_planner.hh"
#include "service/sweep_service.hh"
#include "workloads/kernel_result.hh"

namespace {

using namespace wisync;
using namespace wisync::service;

struct Options
{
    std::string input;  // empty = stdin
    std::string output; // empty = stdout
    unsigned shard = 0;
    unsigned numShards = 1;
    unsigned threads = harness::ParallelSweep::threads();
    std::size_t cacheCapacity = 256;
    bool selfTest = false;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--input FILE] [--output FILE] [--shard I/K]\n"
        "          [--threads N] [--cache-capacity N] [--self-test]\n"
        "Reads a JSON sweep request, writes a JSON response.\n"
        "--shard I/K simulates only shard I of K (strided; results\n"
        "keep global point indices so shard outputs merge by index).\n",
        argv0);
    return 2;
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--input") {
            const char *v = value();
            if (!v)
                return false;
            opt.input = v;
        } else if (arg == "--output") {
            const char *v = value();
            if (!v)
                return false;
            opt.output = v;
        } else if (arg == "--shard") {
            const char *v = value();
            unsigned i_part = 0, k_part = 0;
            if (!v || std::sscanf(v, "%u/%u", &i_part, &k_part) != 2 ||
                k_part == 0 || i_part >= k_part) {
                std::fprintf(stderr,
                             "--shard wants I/K with I < K, got '%s'\n",
                             v ? v : "");
                return false;
            }
            opt.shard = i_part;
            opt.numShards = k_part;
        } else if (arg == "--threads") {
            const char *v = value();
            if (!v || std::sscanf(v, "%u", &opt.threads) != 1 ||
                opt.threads == 0) {
                std::fprintf(stderr, "--threads wants a count >= 1\n");
                return false;
            }
        } else if (arg == "--cache-capacity") {
            const char *v = value();
            unsigned long long cap = 0;
            if (!v || std::sscanf(v, "%llu", &cap) != 1) {
                std::fprintf(stderr,
                             "--cache-capacity wants a count\n");
                return false;
            }
            opt.cacheCapacity = static_cast<std::size_t>(cap);
        } else if (arg == "--self-test") {
            opt.selfTest = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return false;
        }
    }
    return true;
}

std::string
shardResponse(const Options &opt, std::size_t total_points,
              const std::vector<std::size_t> &indices,
              const std::vector<ServiceOutcome> &outcomes,
              const SweepService &svc)
{
    const BatchStats &stats = svc.lastBatch();
    const ResultCache::Stats &cs = svc.cache().stats();
    std::string out = "{";
    out += "\"points\":" + jsonNumber(std::uint64_t(total_points));
    out += ",\"shard\":{\"index\":" + jsonNumber(std::uint64_t(opt.shard)) +
           ",\"shards\":" + jsonNumber(std::uint64_t(opt.numShards)) + "}";
    out += ",\"stats\":{\"simulated\":" +
           jsonNumber(std::uint64_t(stats.simulated)) +
           ",\"cacheHits\":" + jsonNumber(std::uint64_t(stats.cacheHits)) +
           ",\"errors\":" + jsonNumber(std::uint64_t(stats.errors)) + "}";
    out += ",\"cache\":{\"hits\":" + jsonNumber(cs.hits) +
           ",\"misses\":" + jsonNumber(cs.misses) +
           ",\"insertions\":" + jsonNumber(cs.insertions) +
           ",\"evictions\":" + jsonNumber(cs.evictions) +
           ",\"collisions\":" + jsonNumber(cs.collisions) + "}";
    out += ",\"results\":[";
    for (std::size_t j = 0; j < outcomes.size(); ++j) {
        const ServiceOutcome &o = outcomes[j];
        if (j)
            out += ",";
        out += "{\"index\":" + jsonNumber(std::uint64_t(indices[j]));
        out += ",\"fingerprint\":" + jsonNumber(o.fingerprint);
        out += ",\"ok\":" + std::string(o.ok ? "true" : "false");
        out += ",\"cacheHit\":" + std::string(o.cacheHit ? "true"
                                                         : "false");
        if (o.ok)
            out += ",\"result\":" + ConfigCodec::serializeResult(o.result);
        else
            out += ",\"error\":" + jsonQuote(o.error);
        out += "}";
    }
    out += "]}";
    return out;
}

std::string
errorResponse(const ParseError &e)
{
    std::string out = "{\"error\":{";
    out += "\"message\":" + jsonQuote(e.what());
    out += ",\"field\":" + jsonQuote(e.field());
    if (e.pointIndex() != ParseError::kNoPoint)
        out += ",\"point\":" +
               jsonNumber(std::uint64_t(e.pointIndex()));
    out += "}}";
    return out;
}

bool
writeOut(const Options &opt, const std::string &text)
{
    if (opt.output.empty()) {
        std::cout << text << "\n";
        return bool(std::cout);
    }
    std::ofstream f(opt.output);
    if (!f) {
        std::fprintf(stderr, "cannot write %s\n", opt.output.c_str());
        return false;
    }
    f << text << "\n";
    return bool(f);
}

/**
 * Built-in smoke batch for ctest: a duplicate-heavy request run
 * through parse -> shard(2) -> merge must be bit-identical to a
 * serial uncached run, with cache hits accounting for every
 * duplicate.
 */
int
selfTest()
{
    const std::string request_json = R"({"points": [
        {"config": {"kind": "WiSync", "cores": 16},
         "workload": {"kind": "tightloop", "iterations": 40}},
        {"config": {"kind": "Baseline", "cores": 16},
         "workload": {"kind": "tightloop", "iterations": 40}},
        {"config": {"kind": "WiSync", "cores": 16},
         "workload": {"kind": "tightloop", "iterations": 40}},
        {"config": {"kind": "WiSync", "cores": 16, "wireless":
            {"mac": "Token"}},
         "workload": {"kind": "cas", "kernel": "add",
                      "duration": 3000}},
        {"config": {"kind": "WiSync", "cores": 16},
         "workload": {"kind": "tightloop", "iterations": 40}}
    ]})";

    const SweepRequest request = ConfigCodec::parseRequest(request_json);
    const std::size_t n = request.points.size();

    // Reference: serial, cache disabled.
    SweepService reference(0);
    const auto expect = reference.runBatch(request, 1);

    // Shard 2 ways, merge by index, compare bits.
    std::vector<ServiceOutcome> merged(n);
    std::size_t cache_hits = 0;
    for (unsigned s = 0; s < 2; ++s) {
        SweepService svc(64);
        const auto indices = ShardPlanner::shardIndices(n, s, 2);
        const auto part = svc.runBatch(
            ShardPlanner::shardRequest(request, s, 2), 2);
        ShardPlanner::mergeByIndex(merged, indices, part);
        cache_hits += svc.lastBatch().cacheHits;
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (!merged[i].ok || !expect[i].ok ||
            !workloads::bitIdentical(merged[i].result,
                                     expect[i].result)) {
            std::fprintf(stderr, "self-test: point %zu diverged\n", i);
            return 1;
        }
    }
    // Points 0, 2 and 4 are identical; both duplicates land in shard
    // 0 (indices 0, 2, 4) and must be answered by its cache.
    if (cache_hits != 2) {
        std::fprintf(stderr,
                     "self-test: expected 2 cache hits, got %zu\n",
                     cache_hits);
        return 1;
    }
    std::printf("SWEEPD SELF-TEST PASS (%zu points, %zu hits)\n", n,
                cache_hits);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return usage(argv[0]);
    if (opt.selfTest)
        return selfTest();

    std::string text;
    if (opt.input.empty()) {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        text = ss.str();
    } else {
        std::ifstream f(opt.input);
        if (!f) {
            std::fprintf(stderr, "cannot read %s\n", opt.input.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << f.rdbuf();
        text = ss.str();
    }

    try {
        const SweepRequest request = ConfigCodec::parseRequest(text);
        const auto indices = ShardPlanner::shardIndices(
            request.points.size(), opt.shard, opt.numShards);
        const SweepRequest slice =
            ShardPlanner::shardRequest(request, opt.shard,
                                       opt.numShards);
        SweepService svc(opt.cacheCapacity);
        const auto outcomes = svc.runBatch(slice, opt.threads);
        const std::string response = shardResponse(
            opt, request.points.size(), indices, outcomes, svc);
        return writeOut(opt, response) ? 0 : 2;
    } catch (const ParseError &e) {
        writeOut(opt, errorResponse(e));
        return 1;
    } catch (const JsonError &e) {
        writeOut(opt, errorResponse(ParseError(
                          "request", ParseError::kNoPoint, e.what())));
        return 1;
    }
}
