/**
 * @file
 * wisync_sweepd — the sweep service as a process.
 *
 * One-shot mode (default): reads one JSON sweep request (stdin or
 * --input), answers it through SweepService (dedupe + result cache +
 * ParallelSweep) and writes one JSON response (stdout or --output;
 * --output writes via temp file + atomic rename, so a killed process
 * never leaves a truncated response behind).
 *
 * Daemon mode (--serve): a persistent loop — one JSON request per
 * input line, one JSON response per output line — sharing a single
 * SweepService/ResultCache across requests. A malformed request
 * answers {"error":{...}} on its line and the loop continues; lines
 * longer than --max-request-bytes are rejected before parsing. See
 * src/service/daemon.hh for the containment contract.
 *
 * --cache-file FILE makes the result cache durable: salvage-loaded at
 * startup (corrupt/truncated records are counted and dropped, the
 * valid prefix survives), compacted, then streamed record-by-record
 * as points complete — so a kill -9 mid-batch loses at most one
 * record and a restarted daemon answers the finished points warm.
 *
 * --shard I/K makes the process simulate only its slice of the grid
 * while still reporting results under *global* point indices, so a
 * shell loop can run K daemons on K hosts and merge their "results"
 * arrays by index into exactly the serial output:
 *
 *   for i in 0 1 2 3; do
 *       wisync_sweepd --shard $i/4 < request.json > part$i.json &
 *   done; wait   # then concatenate the results arrays, sort by index
 *
 * --plan cost swaps the strided slice for ShardPlanner::planByCost's
 * bin-packed one (same merge contract, balanced when the grid's cost
 * pattern resonates with the stride).
 *
 * Request schema: see src/service/config_codec.hh. Response:
 *
 *   {"points": N, "shard": {"index": I, "shards": K, "plan": "..."},
 *    "stats": {"simulated":.., "cacheHits":.., "errors":..},
 *    "cache": {"hits":.., "misses":.., "insertions":..,
 *              "evictions":.., "collisions":..},
 *    "results": [{"index":.., "fingerprint":.., "ok":..,
 *                 "cacheHit":.., "result":{...} | "error":".."}]}
 *
 * A malformed request produces {"error": {...}} on the output stream
 * and (in one-shot mode) exit code 1; the error object names the
 * offending field path and point index (ConfigCodec's strictness
 * contract).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/parallel_sweep.hh"
#include "service/cache_store.hh"
#include "service/config_codec.hh"
#include "service/daemon.hh"
#include "service/shard_planner.hh"
#include "service/sweep_service.hh"
#include "workloads/kernel_result.hh"

namespace {

using namespace wisync;
using namespace wisync::service;

struct Options
{
    std::string input;  // empty = stdin
    std::string output; // empty = stdout
    bool serve = false;
    DaemonOptions daemon;
    bool selfTest = false;
};

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--input FILE] [--output FILE] [--shard I/K]\n"
        "          [--plan strided|cost] [--threads N]\n"
        "          [--cache-capacity N] [--cache-file FILE]\n"
        "          [--serve] [--max-request-bytes N] [--self-test]\n"
        "Reads a JSON sweep request, writes a JSON response.\n"
        "--serve loops: one request per input line, one response per\n"
        "output line; bad lines answer {\"error\":...} and the loop\n"
        "continues. --cache-file makes the result cache durable\n"
        "(salvage-loaded at startup, streamed as points complete).\n"
        "--shard I/K simulates only shard I of K (results keep global\n"
        "point indices so shard outputs merge by index).\n",
        argv0);
    return 2;
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--input") {
            const char *v = value();
            if (!v)
                return false;
            opt.input = v;
        } else if (arg == "--output") {
            const char *v = value();
            if (!v)
                return false;
            opt.output = v;
        } else if (arg == "--shard") {
            const char *v = value();
            unsigned i_part = 0, k_part = 0;
            if (!v || std::sscanf(v, "%u/%u", &i_part, &k_part) != 2 ||
                k_part == 0 || i_part >= k_part) {
                std::fprintf(stderr,
                             "--shard wants I/K with I < K, got '%s'\n",
                             v ? v : "");
                return false;
            }
            opt.daemon.shard = i_part;
            opt.daemon.numShards = k_part;
        } else if (arg == "--plan") {
            const char *v = value();
            if (!v || (std::strcmp(v, "strided") != 0 &&
                       std::strcmp(v, "cost") != 0)) {
                std::fprintf(stderr,
                             "--plan wants 'strided' or 'cost'\n");
                return false;
            }
            opt.daemon.planByCost = std::strcmp(v, "cost") == 0;
        } else if (arg == "--threads") {
            const char *v = value();
            if (!v || std::sscanf(v, "%u", &opt.daemon.threads) != 1 ||
                opt.daemon.threads == 0) {
                std::fprintf(stderr, "--threads wants a count >= 1\n");
                return false;
            }
        } else if (arg == "--cache-capacity") {
            const char *v = value();
            unsigned long long cap = 0;
            if (!v || std::sscanf(v, "%llu", &cap) != 1) {
                std::fprintf(stderr,
                             "--cache-capacity wants a count\n");
                return false;
            }
            opt.daemon.cacheCapacity = static_cast<std::size_t>(cap);
        } else if (arg == "--cache-file") {
            const char *v = value();
            if (!v)
                return false;
            opt.daemon.cacheFile = v;
        } else if (arg == "--max-request-bytes") {
            const char *v = value();
            unsigned long long n = 0;
            if (!v || std::sscanf(v, "%llu", &n) != 1 || n == 0) {
                std::fprintf(stderr,
                             "--max-request-bytes wants a count >= 1\n");
                return false;
            }
            opt.daemon.maxRequestBytes = static_cast<std::size_t>(n);
        } else if (arg == "--serve") {
            opt.serve = true;
        } else if (arg == "--self-test") {
            opt.selfTest = true;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return false;
        }
    }
    return true;
}

bool
writeOut(const Options &opt, const std::string &text)
{
    if (opt.output.empty()) {
        std::cout << text << "\n";
        return bool(std::cout);
    }
    // Atomic: a reader polling the output path (or a kill mid-write)
    // sees either nothing or the whole response, never a prefix.
    std::string error;
    if (!writeFileAtomic(opt.output, text + "\n", &error)) {
        std::fprintf(stderr, "%s\n", error.c_str());
        return false;
    }
    return true;
}

void
reportCacheLoad(const Daemon &daemon,
                const CacheStore::LoadStats &stats)
{
    if (daemon.options().cacheFile.empty())
        return;
    std::fprintf(stderr,
                 "wisync_sweepd: cache-file '%s': %zu records loaded, "
                 "%zu discarded%s\n",
                 daemon.options().cacheFile.c_str(), stats.loaded,
                 stats.discarded,
                 stats.versionMismatch ? " (format version mismatch)"
                                       : "");
}

/**
 * Built-in smoke batch for ctest: a duplicate-heavy request run
 * through parse -> shard(2) -> merge must be bit-identical to a
 * serial uncached run, with cache hits accounting for every
 * duplicate. Then the same request drives the serve loop and a
 * cache-file round trip, which must answer warm and identical.
 */
int
selfTest()
{
    const std::string request_json = R"({"points": [
        {"config": {"kind": "WiSync", "cores": 16},
         "workload": {"kind": "tightloop", "iterations": 40}},
        {"config": {"kind": "Baseline", "cores": 16},
         "workload": {"kind": "tightloop", "iterations": 40}},
        {"config": {"kind": "WiSync", "cores": 16},
         "workload": {"kind": "tightloop", "iterations": 40}},
        {"config": {"kind": "WiSync", "cores": 16, "wireless":
            {"mac": "Token"}},
         "workload": {"kind": "cas", "kernel": "add",
                      "duration": 3000}},
        {"config": {"kind": "WiSync", "cores": 16},
         "workload": {"kind": "tightloop", "iterations": 40}}
    ]})";

    const SweepRequest request = ConfigCodec::parseRequest(request_json);
    const std::size_t n = request.points.size();

    // Reference: serial, cache disabled.
    SweepService reference(0);
    const auto expect = reference.runBatch(request, 1);

    // Shard 2 ways, merge by index, compare bits.
    std::vector<ServiceOutcome> merged(n);
    std::size_t cache_hits = 0;
    for (unsigned s = 0; s < 2; ++s) {
        SweepService svc(64);
        const auto indices = ShardPlanner::shardIndices(n, s, 2);
        const auto part = svc.runBatch(
            ShardPlanner::shardRequest(request, s, 2), 2);
        ShardPlanner::mergeByIndex(merged, indices, part);
        cache_hits += svc.lastBatch().cacheHits;
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (!merged[i].ok || !expect[i].ok ||
            !workloads::bitIdentical(merged[i].result,
                                     expect[i].result)) {
            std::fprintf(stderr, "self-test: point %zu diverged\n", i);
            return 1;
        }
    }
    // Points 0, 2 and 4 are identical; both duplicates land in shard
    // 0 (indices 0, 2, 4) and must be answered by its cache.
    if (cache_hits != 2) {
        std::fprintf(stderr,
                     "self-test: expected 2 cache hits, got %zu\n",
                     cache_hits);
        return 1;
    }

    // Serve loop: a bad line must answer an error and keep the loop
    // alive; the same request twice must answer the rerun warm.
    {
        DaemonOptions dopt;
        dopt.threads = 2;
        Daemon daemon(dopt);
        const std::string line =
            ConfigCodec::serializeRequest(request);
        std::istringstream in("this is not json\n" + line + "\n" +
                              line + "\n");
        std::ostringstream out;
        const std::size_t served = daemon.serve(in, out);
        if (served != 3 ||
            out.str().find("\"error\"") == std::string::npos) {
            std::fprintf(stderr,
                         "self-test: serve loop misbehaved "
                         "(%zu responses)\n",
                         served);
            return 1;
        }
        if (daemon.service().lastBatch().cacheHits != n) {
            std::fprintf(stderr,
                         "self-test: rerun not fully warm (%zu/%zu)\n",
                         daemon.service().lastBatch().cacheHits, n);
            return 1;
        }
    }
    std::printf("SWEEPD SELF-TEST PASS (%zu points, %zu hits)\n", n,
                cache_hits);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return usage(argv[0]);
    if (opt.selfTest)
        return selfTest();

    Daemon daemon(opt.daemon);
    std::string start_error;
    const CacheStore::LoadStats load = daemon.start(&start_error);
    reportCacheLoad(daemon, load);
    if (!start_error.empty())
        std::fprintf(stderr, "wisync_sweepd: cache-file: %s\n",
                     start_error.c_str());

    if (opt.serve) {
        std::istream *in = &std::cin;
        std::ifstream fin;
        if (!opt.input.empty()) {
            fin.open(opt.input);
            if (!fin) {
                std::fprintf(stderr, "cannot read %s\n",
                             opt.input.c_str());
                return 2;
            }
            in = &fin;
        }
        std::ostream *out = &std::cout;
        std::ofstream fout;
        if (!opt.output.empty()) {
            // Serve mode streams responses as they complete, so the
            // atomic-rename contract doesn't apply — it is about the
            // one-shot "whole response or nothing" file.
            fout.open(opt.output);
            if (!fout) {
                std::fprintf(stderr, "cannot write %s\n",
                             opt.output.c_str());
                return 2;
            }
            out = &fout;
        }
        daemon.serve(*in, *out);
        return 0;
    }

    std::string text;
    if (opt.input.empty()) {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        text = ss.str();
    } else {
        std::ifstream f(opt.input);
        if (!f) {
            std::fprintf(stderr, "cannot read %s\n", opt.input.c_str());
            return 2;
        }
        std::ostringstream ss;
        ss << f.rdbuf();
        text = ss.str();
    }

    bool ok = false;
    const std::string response = daemon.handleRequest(text, &ok);
    if (!writeOut(opt, response))
        return 2;
    return ok ? 0 : 1;
}
