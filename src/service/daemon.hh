/**
 * @file
 * The persistent sweep daemon: the serve loop behind
 * `wisync_sweepd --serve`, as a library so tests can drive it over
 * string streams.
 *
 * Protocol: one JSON request per input line, one JSON response per
 * output line, in order. The daemon owns a single SweepService, so
 * the ResultCache warms across requests — the whole point of staying
 * resident. Empty lines are ignored (keepalive-friendly).
 *
 * Fault containment (the robustness contract, fuzzed by
 * FuzzFaultInjection):
 *
 *  - A malformed or invalid request answers {"error":{...}} on its
 *    line and the loop continues — a bad request never kills the
 *    daemon, and never perturbs the results of any other line.
 *  - Oversized lines are rejected *before* parsing: the reader stops
 *    buffering at maxRequestBytes and drains the rest of the line, so
 *    a hostile multi-gigabyte line costs bounded memory.
 *  - With a cache file, every inserted result is appended + flushed
 *    immediately (CacheStore::Appender through the cache's spill
 *    hook): kill -9 mid-batch loses at most the record being written,
 *    and a restart salvages everything before it.
 *  - Fingerprint collisions (the cache header calls a nonzero count
 *    newsworthy) are reported once per batch through the warning
 *    sink (stderr by default) on top of the response's cache block.
 */

#ifndef WISYNC_SERVICE_DAEMON_HH
#define WISYNC_SERVICE_DAEMON_HH

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>

#include "service/cache_store.hh"
#include "service/result_cache.hh"
#include "service/sweep_service.hh"

namespace wisync::service {

/** Knobs shared by serve mode and the one-shot CLI path. */
struct DaemonOptions
{
    unsigned threads = 0; // 0 = ParallelSweep's environment default
    std::size_t cacheCapacity = 256;
    /** Reject request lines longer than this before parsing them. */
    std::size_t maxRequestBytes = 1u << 20;
    /** Durable cache spill; empty disables persistence. */
    std::string cacheFile;
    unsigned shard = 0;
    unsigned numShards = 1;
    /** Cost-weighted bin-packing instead of the strided plan. */
    bool planByCost = false;
    /** Test seam: see ResultCache::Hasher. */
    ResultCache::Hasher hasherOverride;
};

/** See the file comment. */
class Daemon
{
  public:
    explicit Daemon(DaemonOptions opt);

    /**
     * Bring up persistence (no-op without a cache file): salvage-load
     * the file, rewrite it compacted (atomically — this is also what
     * heals a corrupt tail), then attach the streaming appender. The
     * returned stats say what the salvage recovered.
     */
    CacheStore::LoadStats start(std::string *error = nullptr);

    /**
     * Answer one request text (either a serve-loop line or a whole
     * one-shot input). Never throws: every failure becomes an
     * {"error":{...}} response. @p ok_out, when given, reports
     * whether the request was served (the one-shot exit code).
     */
    std::string handleRequest(const std::string &text,
                              bool *ok_out = nullptr);

    /**
     * The persistent loop: read lines from @p in until EOF, write one
     * response line (flushed) per nonempty input line.
     * @return the number of responses written.
     */
    std::size_t serve(std::istream &in, std::ostream &out);

    SweepService &service() { return svc_; }
    const DaemonOptions &options() const { return opt_; }

    /** Redirect warnings (stderr by default; tests capture them). */
    void
    setWarningSink(std::function<void(const std::string &)> sink)
    {
        warn_ = std::move(sink);
    }

  private:
    void warnIfCollisions();

    DaemonOptions opt_;
    SweepService svc_;
    CacheStore::Appender appender_;
    std::uint64_t reportedCollisions_ = 0;
    std::function<void(const std::string &)> warn_;
};

/** {"error":{...}} JSON for @p e (shared with the sweepd CLI). */
std::string errorResponseJson(const ParseError &e);

} // namespace wisync::service

#endif // WISYNC_SERVICE_DAEMON_HH
