/**
 * @file
 * Exact, bounded result cache for the sweep service.
 *
 * Simulations are bit-deterministic functions of their RequestPoint
 * (MachineConfig x WorkloadSpec) — the repo-wide determinism contract
 * every PR has defended — so caching needs no invalidation story and
 * hits are *exact*: the stored KernelResult is bitIdentical to what
 * re-simulating the point would produce.
 *
 * Keys are the point's canonical 64-bit fingerprint. A hit
 * additionally verifies full RequestPoint equality (operator==), so
 * an astronomically unlikely 64-bit collision degrades to a counted
 * miss, never a wrong result.
 *
 * Capacity is bounded with LRU eviction (lookup refreshes recency,
 * insert evicts the coldest entry) and capacity 0 disables storage
 * entirely. hit/miss/eviction/insertion/collision counters feed the
 * service response and the bench gates.
 *
 * Not internally synchronized: SweepService serializes access (its
 * insert-and-resolve path runs entirely under ParallelSweep's emit
 * mutex, and the warm-hit pass runs before workers start; see
 * sweep_service.cc).
 */

#ifndef WISYNC_SERVICE_RESULT_CACHE_HH
#define WISYNC_SERVICE_RESULT_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>

#include "service/config_codec.hh"
#include "workloads/kernel_result.hh"

namespace wisync::service {

/** See the file comment. */
class ResultCache
{
  public:
    /** Monotonic counters over the cache's whole lifetime. */
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
        std::uint64_t insertions = 0;
        /** Fingerprint matched but the point didn't (treated as a
         *  miss; a nonzero value is a newsworthy event). */
        std::uint64_t collisions = 0;
    };

    /**
     * Key derivation override (tests only): maps a point to its
     * 64-bit cache key. The default is RequestPoint::fingerprint();
     * a degenerate hasher (e.g. a constant) forces the collision
     * path — same key, different point — which is unreachable through
     * real fingerprints in any practical test.
     */
    using Hasher = std::function<std::uint64_t(const RequestPoint &)>;

    explicit ResultCache(std::size_t capacity = 256, Hasher hasher = {})
        : capacity_(capacity), hasher_(std::move(hasher))
    {}

    /**
     * The cached result for @p point, or nullptr. A hit refreshes
     * the entry's recency; the pointer stays valid until the next
     * insert() or clear().
     */
    const workloads::KernelResult *lookup(const RequestPoint &point);

    /**
     * Store @p result for @p point, evicting the LRU entry when the
     * bound is exceeded. Re-inserting an existing key refreshes its
     * value and recency without growing the cache. No-op (not even a
     * counter) at capacity 0.
     */
    void insert(const RequestPoint &point,
                const workloads::KernelResult &result);

    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }
    const Stats &stats() const { return stats_; }

    /** Drop every entry (counters keep accumulating). */
    void clear();

    /**
     * Visit every entry, least-recently-used first. Written in that
     * order to a CacheStore file, a sequential re-insert replay
     * reconstructs both contents and recency exactly. The callback
     * must not mutate the cache.
     */
    void visitLruToMru(
        const std::function<void(const RequestPoint &,
                                 const workloads::KernelResult &)> &fn)
        const;

    /**
     * Streaming persistence hook: called after every insert() that
     * stored a new point (fresh entries and collision overwrites; a
     * same-point refresh is skipped — deterministic results make it a
     * value no-op). Runs under whatever serialization insert() itself
     * runs under (SweepService: the sweep emit mutex). The daemon
     * appends each record to the cache file here, so a kill at any
     * instant loses at most the record being written.
     */
    void setSpillHook(
        std::function<void(const RequestPoint &,
                           const workloads::KernelResult &)>
            hook)
    {
        spillHook_ = std::move(hook);
    }

  private:
    std::uint64_t
    key(const RequestPoint &point) const
    {
        return hasher_ ? hasher_(point) : point.fingerprint();
    }

    struct Entry
    {
        std::uint64_t key;
        RequestPoint point;
        workloads::KernelResult result;
    };

    /** Most-recently-used first. */
    std::list<Entry> entries_;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
    std::size_t capacity_;
    Hasher hasher_;
    std::function<void(const RequestPoint &,
                       const workloads::KernelResult &)>
        spillHook_;
    Stats stats_;
};

} // namespace wisync::service

#endif // WISYNC_SERVICE_RESULT_CACHE_HH
