#include "service/result_cache.hh"

namespace wisync::service {

const workloads::KernelResult *
ResultCache::lookup(const RequestPoint &point)
{
    const std::uint64_t key = this->key(point);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    if (!(it->second->point == point)) {
        // Same 64-bit fingerprint, different point: exactness beats
        // hash trust — count it and answer "not cached".
        ++stats_.collisions;
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &entries_.front().result;
}

void
ResultCache::insert(const RequestPoint &point,
                    const workloads::KernelResult &result)
{
    if (capacity_ == 0)
        return;
    const std::uint64_t key = this->key(point);
    if (const auto it = index_.find(key); it != index_.end()) {
        // Deterministic results make a value refresh a no-op for
        // same-point reinserts; for a colliding point, last writer
        // wins (the collision counter already flagged it on lookup).
        const bool samePoint = it->second->point == point;
        it->second->point = point;
        it->second->result = result;
        entries_.splice(entries_.begin(), entries_, it->second);
        if (!samePoint && spillHook_)
            spillHook_(point, result);
        return;
    }
    entries_.push_front(Entry{key, point, result});
    index_[key] = entries_.begin();
    ++stats_.insertions;
    if (entries_.size() > capacity_) {
        index_.erase(entries_.back().key);
        entries_.pop_back();
        ++stats_.evictions;
    }
    if (spillHook_)
        spillHook_(point, result);
}

void
ResultCache::visitLruToMru(
    const std::function<void(const RequestPoint &,
                             const workloads::KernelResult &)> &fn) const
{
    for (auto it = entries_.rbegin(); it != entries_.rend(); ++it)
        fn(it->point, it->result);
}

void
ResultCache::clear()
{
    entries_.clear();
    index_.clear();
}

} // namespace wisync::service
