/**
 * @file
 * Deterministic partitioning of a sweep grid across worker processes.
 *
 * ParallelSweep scales one process over host threads; multi-host
 * scale-out means carving one request into K independent shards that
 * separate processes (wisync_sweepd --shard i/k) can run and a shell
 * loop can merge. The plan must be a pure function of (points, i, k)
 * — every shard computes its own slice from the full request with no
 * coordination — and the merge must reassemble exactly the serial
 * order.
 *
 * The partition is strided: shard i of k owns points i, i+k, i+2k...
 * Sweep grids are usually sorted along a cost axis (core count,
 * chips), so striding deals every shard the same cost mixture where
 * contiguous blocks would hand the last shard all the big machines.
 * Results merge back by global point index, so any shard count
 * reproduces the serial output byte-for-byte — the same by-index
 * merge argument ParallelSweep makes for threads, one level up.
 */

#ifndef WISYNC_SERVICE_SHARD_PLANNER_HH
#define WISYNC_SERVICE_SHARD_PLANNER_HH

#include <cstddef>
#include <vector>

#include "service/config_codec.hh"

namespace wisync::service {

/** See the file comment. */
class ShardPlanner
{
  public:
    /**
     * Global indices owned by shard @p shard of @p num_shards over a
     * @p points -point grid, in increasing order. Shards must be
     * disjoint and cover: the union over shard = 0..k-1 is exactly
     * [0, points). @p shard must be < @p num_shards, and
     * @p num_shards >= 1.
     */
    static std::vector<std::size_t> shardIndices(std::size_t points,
                                                 unsigned shard,
                                                 unsigned num_shards);

    /** The sub-request holding exactly shardIndices()'s points. */
    static SweepRequest shardRequest(const SweepRequest &request,
                                     unsigned shard,
                                     unsigned num_shards);

    /**
     * Scatter a shard's outcomes back into the full-grid vector:
     * @p merged[indices[j]] = outcomes[j]. @p merged must already be
     * sized to the full grid; @p indices is the same vector
     * shardIndices() handed the shard (the merge is by-index, so
     * shard completion order cannot reorder it).
     */
    template <typename Outcome>
    static void
    mergeByIndex(std::vector<Outcome> &merged,
                 const std::vector<std::size_t> &indices,
                 std::vector<Outcome> outcomes)
    {
        for (std::size_t j = 0; j < indices.size(); ++j)
            merged[indices[j]] = std::move(outcomes[j]);
    }
};

} // namespace wisync::service

#endif // WISYNC_SERVICE_SHARD_PLANNER_HH
