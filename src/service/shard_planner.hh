/**
 * @file
 * Deterministic partitioning of a sweep grid across worker processes.
 *
 * ParallelSweep scales one process over host threads; multi-host
 * scale-out means carving one request into K independent shards that
 * separate processes (wisync_sweepd --shard i/k) can run and a shell
 * loop can merge. The plan must be a pure function of (points, i, k)
 * — every shard computes its own slice from the full request with no
 * coordination — and the merge must reassemble exactly the serial
 * order.
 *
 * Two plans, both pure functions with the same merge contract:
 *
 *  - Strided: shard i of k owns points i, i+k, i+2k... Sweep grids
 *    are usually sorted along a cost axis (core count, chips), so
 *    striding deals every shard the same cost mixture where
 *    contiguous blocks would hand the last shard all the big
 *    machines.
 *  - Cost-weighted (planByCost): each point gets a deterministic cost
 *    estimate — cores x workload-length — and points are bin-packed
 *    greedily (longest-processing-time first) onto the k shards. On
 *    grids whose cost pattern happens to resonate with the stride
 *    (every k-th point heavy), the strided plan loads one shard with
 *    all the heavy points; the packed plan balances them.
 *
 * Results merge back by global point index, so any shard count and
 * either plan reproduces the serial output byte-for-byte — the same
 * by-index merge argument ParallelSweep makes for threads, one level
 * up.
 */

#ifndef WISYNC_SERVICE_SHARD_PLANNER_HH
#define WISYNC_SERVICE_SHARD_PLANNER_HH

#include <cstddef>
#include <vector>

#include "service/config_codec.hh"

namespace wisync::service {

/** See the file comment. */
class ShardPlanner
{
  public:
    /**
     * Global indices owned by shard @p shard of @p num_shards over a
     * @p points -point grid, in increasing order. Shards must be
     * disjoint and cover: the union over shard = 0..k-1 is exactly
     * [0, points). @p shard must be < @p num_shards, and
     * @p num_shards >= 1.
     */
    static std::vector<std::size_t> shardIndices(std::size_t points,
                                                 unsigned shard,
                                                 unsigned num_shards);

    /** The sub-request holding exactly shardIndices()'s points. */
    static SweepRequest shardRequest(const SweepRequest &request,
                                     unsigned shard,
                                     unsigned num_shards);

    /**
     * Deterministic relative cost of one point: cores x the
     * workload's length estimate. Not a cycle prediction — only the
     * ratios between points matter for balancing.
     */
    static std::uint64_t pointCost(const RequestPoint &point);

    /**
     * Cost-weighted plan: global indices owned by @p shard of
     * @p num_shards, bin-packed by pointCost (LPT greedy with
     * deterministic tie-breaks — a pure function of the request and
     * (shard, num_shards), like shardIndices). Returned in increasing
     * order; disjoint and covering across shards, so mergeByIndex
     * reassembles exactly the serial output.
     */
    static std::vector<std::size_t>
    planByCost(const SweepRequest &request, unsigned shard,
               unsigned num_shards);

    /** The sub-request holding exactly @p indices' points (pair with
     *  planByCost the way shardRequest pairs with shardIndices). */
    static SweepRequest subRequest(const SweepRequest &request,
                                   const std::vector<std::size_t> &indices);

    /**
     * Scatter a shard's outcomes back into the full-grid vector:
     * @p merged[indices[j]] = outcomes[j]. @p merged must already be
     * sized to the full grid; @p indices is the same vector
     * shardIndices() handed the shard (the merge is by-index, so
     * shard completion order cannot reorder it).
     */
    template <typename Outcome>
    static void
    mergeByIndex(std::vector<Outcome> &merged,
                 const std::vector<std::size_t> &indices,
                 std::vector<Outcome> outcomes)
    {
        for (std::size_t j = 0; j < indices.size(); ++j)
            merged[indices[j]] = std::move(outcomes[j]);
    }
};

} // namespace wisync::service

#endif // WISYNC_SERVICE_SHARD_PLANNER_HH
