#include "service/fault.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace wisync::service {

FaultPlan
FaultPlan::make(std::uint64_t seed, std::size_t points)
{
    FaultPlan plan;
    plan.seed = seed;
    sim::Rng rng(seed);
    for (std::size_t i = 0; i < points; ++i) {
        switch (rng.below(6)) {
          case 0:
            plan.throwPoints.push_back(i);
            break;
          case 1:
            plan.deadlinePoints.push_back(i);
            break;
          default:
            break; // clean point
        }
    }
    return plan;
}

bool
FaultPlan::throwsAt(std::size_t index) const
{
    return std::find(throwPoints.begin(), throwPoints.end(), index) !=
           throwPoints.end();
}

bool
FaultPlan::deadlineAt(std::size_t index) const
{
    return std::find(deadlinePoints.begin(), deadlinePoints.end(),
                     index) != deadlinePoints.end();
}

void
FaultPlan::arm(SweepService &svc) const
{
    const std::vector<std::size_t> targets = throwPoints;
    svc.setBodyProbe([targets](std::size_t index) {
        if (std::find(targets.begin(), targets.end(), index) !=
            targets.end())
            throw WorkerFault(index);
    });
}

void
FaultPlan::applyDeadlines(SweepRequest &request,
                          std::uint64_t max_cycles) const
{
    for (const std::size_t i : deadlinePoints)
        if (i < request.points.size())
            request.points[i].workload.maxCycles = max_cycles;
}

bool
FaultPlan::flipBit(const std::string &path, std::uint64_t bit_index)
{
    std::string data;
    {
        std::ifstream f(path, std::ios::binary);
        if (!f)
            return false;
        std::ostringstream ss;
        ss << f.rdbuf();
        data = ss.str();
    }
    if (data.empty())
        return false;
    const std::uint64_t bit = bit_index % (data.size() * 8);
    data[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    f.write(data.data(), static_cast<std::streamsize>(data.size()));
    return bool(f);
}

bool
FaultPlan::truncateFile(const std::string &path,
                        std::uint64_t keep_bytes)
{
    std::string data;
    {
        std::ifstream f(path, std::ios::binary);
        if (!f)
            return false;
        std::ostringstream ss;
        ss << f.rdbuf();
        data = ss.str();
    }
    if (keep_bytes < data.size())
        data.resize(keep_bytes);
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    f.write(data.data(), static_cast<std::streamsize>(data.size()));
    return bool(f);
}

std::string
FaultPlan::mutateLine(std::string line, sim::Rng &rng)
{
    const std::size_t mutations = 1 + rng.below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
        if (line.empty()) {
            line.push_back(static_cast<char>(rng.below(256)));
            continue;
        }
        const std::size_t pos = rng.below(line.size());
        switch (rng.below(4)) {
          case 0: // overwrite with an arbitrary byte
            line[pos] = static_cast<char>(rng.below(256));
            break;
          case 1: // insert an arbitrary byte
            line.insert(line.begin() + static_cast<std::ptrdiff_t>(pos),
                        static_cast<char>(rng.below(256)));
            break;
          case 2: // delete one byte
            line.erase(line.begin() + static_cast<std::ptrdiff_t>(pos));
            break;
          case 3: // truncate (a partial write / cut connection)
            line.resize(pos);
            break;
        }
    }
    // A mutated line must stay a *line*: the daemon protocol frames
    // requests by newline, so injected newlines would split this into
    // two lines and change the response count the fuzz asserts on.
    std::replace(line.begin(), line.end(), '\n', ' ');
    std::replace(line.begin(), line.end(), '\r', ' ');
    return line;
}

} // namespace wisync::service
