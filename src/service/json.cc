#include "service/json.hh"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace wisync::service {

const char *
Json::typeName() const
{
    switch (type_) {
      case Type::Null:
        return "null";
      case Type::Bool:
        return "bool";
      case Type::Number:
        return "number";
      case Type::String:
        return "string";
      case Type::Array:
        return "array";
      case Type::Object:
        return "object";
    }
    return "?";
}

const Json *
Json::find(const std::string &key) const
{
    for (const auto &[k, v] : object_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

/** Recursive-descent parser over the whole input string. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Json
    parseDocument()
    {
        Json v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after JSON value");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &message) const
    {
        throw JsonError(message, pos_);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeWord(const char *word)
    {
        const std::size_t n = std::char_traits<char>::length(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
          case 'n':
            return parseWord();
          default:
            return parseNumber();
        }
    }

    Json
    parseObject()
    {
        Json v;
        v.type_ = Json::Type::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        while (true) {
            skipWs();
            if (peek() != '"')
                fail("expected object key string");
            Json key = parseString();
            skipWs();
            expect(':');
            Json member = parseValue();
            v.object_.emplace_back(key.string_, std::move(member));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    Json
    parseArray()
    {
        Json v;
        v.type_ = Json::Type::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        while (true) {
            v.array_.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    Json
    parseString()
    {
        Json v;
        v.type_ = Json::Type::String;
        expect('"');
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return v;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                v.string_ += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"':
                v.string_ += '"';
                break;
              case '\\':
                v.string_ += '\\';
                break;
              case '/':
                v.string_ += '/';
                break;
              case 'b':
                v.string_ += '\b';
                break;
              case 'f':
                v.string_ += '\f';
                break;
              case 'n':
                v.string_ += '\n';
                break;
              case 'r':
                v.string_ += '\r';
                break;
              case 't':
                v.string_ += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= h - '0';
                    else if (h >= 'a' && h <= 'f')
                        cp |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F')
                        cp |= h - 'A' + 10;
                    else
                        fail("invalid \\u escape digit");
                }
                // UTF-8 encode the BMP code point (surrogate pairs are
                // out of scope for config text; reject them loudly).
                if (cp >= 0xD800 && cp <= 0xDFFF)
                    fail("surrogate \\u escapes are not supported");
                if (cp < 0x80) {
                    v.string_ += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    v.string_ += static_cast<char>(0xC0 | (cp >> 6));
                    v.string_ += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    v.string_ += static_cast<char>(0xE0 | (cp >> 12));
                    v.string_ +=
                        static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    v.string_ += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                fail("invalid escape character");
            }
        }
    }

    Json
    parseWord()
    {
        Json v;
        if (consumeWord("true")) {
            v.type_ = Json::Type::Bool;
            v.bool_ = true;
        } else if (consumeWord("false")) {
            v.type_ = Json::Type::Bool;
            v.bool_ = false;
        } else if (consumeWord("null")) {
            v.type_ = Json::Type::Null;
        } else {
            fail("invalid literal");
        }
        return v;
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("invalid JSON value");
        Json v;
        v.type_ = Json::Type::Number;
        v.raw_ = text_.substr(start, pos_ - start);
        const char *first = v.raw_.data();
        const char *last = first + v.raw_.size();
        const auto [end, ec] = std::from_chars(first, last, v.number_);
        if (ec != std::errc() || end != last) {
            pos_ = start;
            fail("malformed number");
        }
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

Json
Json::parse(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[64];
    const auto [end, ec] =
        std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc())
        return "0";
    return std::string(buf, end);
}

std::string
jsonNumber(std::uint64_t v)
{
    return std::to_string(v);
}

} // namespace wisync::service
