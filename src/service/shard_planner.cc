#include "service/shard_planner.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace wisync::service {

std::vector<std::size_t>
ShardPlanner::shardIndices(std::size_t points, unsigned shard,
                           unsigned num_shards)
{
    WISYNC_FATAL_IF(num_shards == 0, "need at least one shard");
    WISYNC_FATAL_IF(shard >= num_shards,
                    "shard %u out of range (have %u shards)", shard,
                    num_shards);
    std::vector<std::size_t> indices;
    indices.reserve(points / num_shards + 1);
    for (std::size_t i = shard; i < points; i += num_shards)
        indices.push_back(i);
    return indices;
}

SweepRequest
ShardPlanner::shardRequest(const SweepRequest &request, unsigned shard,
                           unsigned num_shards)
{
    SweepRequest out;
    const auto indices =
        shardIndices(request.points.size(), shard, num_shards);
    out.points.reserve(indices.size());
    for (const std::size_t i : indices)
        out.points.push_back(request.points[i]);
    return out;
}

std::uint64_t
ShardPlanner::pointCost(const RequestPoint &point)
{
    const std::uint64_t cost =
        std::uint64_t(point.config.numCores) *
        point.workload.lengthEstimate();
    return cost == 0 ? 1 : cost;
}

std::vector<std::size_t>
ShardPlanner::planByCost(const SweepRequest &request, unsigned shard,
                         unsigned num_shards)
{
    WISYNC_FATAL_IF(num_shards == 0, "need at least one shard");
    WISYNC_FATAL_IF(shard >= num_shards,
                    "shard %u out of range (have %u shards)", shard,
                    num_shards);
    const std::size_t n = request.points.size();

    // LPT greedy: place points heaviest-first onto the least-loaded
    // shard. Every tie-break is deterministic (equal costs keep
    // request order, equal loads pick the lowest shard), so all k
    // processes compute the identical full plan from the request
    // alone and just keep their own row.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i)
        order[i] = i;
    std::vector<std::uint64_t> cost(n);
    for (std::size_t i = 0; i < n; ++i)
        cost[i] = pointCost(request.points[i]);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return cost[a] > cost[b];
                     });

    std::vector<std::uint64_t> load(num_shards, 0);
    std::vector<std::vector<std::size_t>> owned(num_shards);
    for (const std::size_t i : order) {
        unsigned best = 0;
        for (unsigned s = 1; s < num_shards; ++s)
            if (load[s] < load[best])
                best = s;
        load[best] += cost[i];
        owned[best].push_back(i);
    }
    std::vector<std::size_t> indices = std::move(owned[shard]);
    // Increasing order, like shardIndices: the sub-request keeps the
    // request's relative point order, which keeps worker assignment
    // deterministic and the by-index merge contract intact.
    std::sort(indices.begin(), indices.end());
    return indices;
}

SweepRequest
ShardPlanner::subRequest(const SweepRequest &request,
                         const std::vector<std::size_t> &indices)
{
    SweepRequest out;
    out.points.reserve(indices.size());
    for (const std::size_t i : indices) {
        WISYNC_FATAL_IF(i >= request.points.size(),
                        "sub-request index %zu out of range", i);
        out.points.push_back(request.points[i]);
    }
    return out;
}

} // namespace wisync::service
