#include "service/shard_planner.hh"

#include "sim/logging.hh"

namespace wisync::service {

std::vector<std::size_t>
ShardPlanner::shardIndices(std::size_t points, unsigned shard,
                           unsigned num_shards)
{
    WISYNC_FATAL_IF(num_shards == 0, "need at least one shard");
    WISYNC_FATAL_IF(shard >= num_shards,
                    "shard %u out of range (have %u shards)", shard,
                    num_shards);
    std::vector<std::size_t> indices;
    indices.reserve(points / num_shards + 1);
    for (std::size_t i = shard; i < points; i += num_shards)
        indices.push_back(i);
    return indices;
}

SweepRequest
ShardPlanner::shardRequest(const SweepRequest &request, unsigned shard,
                           unsigned num_shards)
{
    SweepRequest out;
    const auto indices =
        shardIndices(request.points.size(), shard, num_shards);
    out.points.reserve(indices.size());
    for (const std::size_t i : indices)
        out.points.push_back(request.points[i]);
    return out;
}

} // namespace wisync::service
