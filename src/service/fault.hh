/**
 * @file
 * Deterministic fault injection for the service layer.
 *
 * The robustness claim this repo makes is concrete: every failure
 * mode we can inject is either isolated to its point (a typed
 * per-point error through runCaptured) or reported loudly (salvage
 * counts, error responses) — and every SURVIVING result stays
 * bit-identical to a fault-free serial run. FaultPlan is the
 * injection side of that claim: given a seed it deterministically
 * picks
 *
 *  - worker-body exceptions (a probe throwing WorkerFault inside the
 *    sweep body, through SweepService::setBodyProbe),
 *  - mid-batch deadline hits (clamping chosen points' maxCycles so
 *    the engine parks and DeadlineExceeded fires),
 *
 * and provides the file/byte corruption primitives the fuzz dimension
 * aims at the other surfaces:
 *
 *  - cache-file bit flips and truncations (against CacheStore's
 *    salvage-loading),
 *  - malformed request lines (against the daemon's per-line error
 *    containment and the JSON parser's crash-freedom).
 *
 * Everything is a pure function of the seed: a failing fuzz iteration
 * replays exactly.
 */

#ifndef WISYNC_SERVICE_FAULT_HH
#define WISYNC_SERVICE_FAULT_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/config_codec.hh"
#include "service/sweep_service.hh"
#include "sim/rng.hh"

namespace wisync::service {

/** See the file comment. */
struct FaultPlan
{
    /** The typed error an injected worker-body fault raises. */
    class WorkerFault : public std::runtime_error
    {
      public:
        explicit WorkerFault(std::size_t index)
            : std::runtime_error("injected worker fault at point " +
                                 std::to_string(index))
        {}
    };

    std::uint64_t seed = 0;
    /** Request indices whose worker body throws WorkerFault. */
    std::vector<std::size_t> throwPoints;
    /** Request indices whose maxCycles gets clamped to a budget that
     *  trips mid-run. */
    std::vector<std::size_t> deadlinePoints;

    /**
     * Derive a plan for a @p points -point request from @p seed:
     * each index independently becomes a throw point, a deadline
     * point, or (mostly) stays clean. Disjoint by construction.
     */
    static FaultPlan make(std::uint64_t seed, std::size_t points);

    bool throwsAt(std::size_t index) const;
    bool deadlineAt(std::size_t index) const;

    /** Install a body probe on @p svc that throws WorkerFault at
     *  every throw point. */
    void arm(SweepService &svc) const;

    /** Clamp every deadline point's workload.maxCycles to
     *  @p max_cycles (pick it far below the point's natural length
     *  so the deadline actually trips). */
    void applyDeadlines(SweepRequest &request,
                        std::uint64_t max_cycles) const;

    // ---- corruption primitives (deterministic, file-level) -----------

    /** Flip one bit of @p path (bit_index wraps modulo the file's
     *  bit count). @return false if the file is missing/empty. */
    static bool flipBit(const std::string &path,
                        std::uint64_t bit_index);

    /** Truncate @p path to @p keep_bytes (clamped to its size). */
    static bool truncateFile(const std::string &path,
                             std::uint64_t keep_bytes);

    /**
     * Deterministically mangle one request line with 1–4 byte-level
     * mutations (overwrite / insert / delete / truncate) drawn from
     * @p rng. May return text that still parses — the caller must
     * accept either a valid response or a typed error, never a crash.
     */
    static std::string mutateLine(std::string line, sim::Rng &rng);
};

} // namespace wisync::service

#endif // WISYNC_SERVICE_FAULT_HH
