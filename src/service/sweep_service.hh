/**
 * @file
 * The batch sweep front-end: requests in, deduped + cached + sharded
 * simulation out.
 *
 * A long-lived service answering streams of sweep requests ("millions
 * of users") leans entirely on determinism: a point's result is a
 * pure function of its RequestPoint, so
 *
 *  - identical points inside one batch run ONCE (in-batch dedupe:
 *    later occurrences are satisfied from the first one's result the
 *    moment it lands in the cache);
 *  - points seen in any earlier batch are answered from the
 *    ResultCache without simulating (exact hits — bitIdentical to a
 *    re-run);
 *  - the remaining unique misses batch through ParallelSweep's
 *    work-stealing workers, with per-point failures captured as
 *    typed outcomes (runCaptured) instead of killing the batch;
 *  - results stream to the caller's observer as points complete and
 *    the returned vector is in request order regardless of
 *    completion, thread count or cache state.
 *
 * Correctness bar (locked by tests and the bench_service gate): for
 * any request, the outcome vector is byte-identical — bitIdentical
 * per point, same order — to a serial, cache-disabled run of every
 * point, at any thread count, any cache warmth, and any ShardPlanner
 * split.
 */

#ifndef WISYNC_SERVICE_SWEEP_SERVICE_HH
#define WISYNC_SERVICE_SWEEP_SERVICE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "service/config_codec.hh"
#include "service/result_cache.hh"
#include "workloads/kernel_result.hh"

namespace wisync::service {

/** One request point's answer. */
struct ServiceOutcome
{
    workloads::KernelResult result;
    /** False when the point's body threw; error holds what(). */
    bool ok = false;
    std::string error;
    /** Served from the result cache (including in-batch dedupe: a
     *  duplicate is answered from the entry its first occurrence
     *  inserted moments earlier). */
    bool cacheHit = false;
    /** The point's canonical fingerprint (the cache/shard key). */
    std::uint64_t fingerprint = 0;
};

/** Per-batch accounting, surfaced in the sweepd JSON response. */
struct BatchStats
{
    std::size_t points = 0;
    /** Unique misses actually simulated. */
    std::size_t simulated = 0;
    /** Answered from the cache — warm entries plus in-batch
     *  duplicates of a point simulated in this batch. */
    std::size_t cacheHits = 0;
    /** Points that failed with a captured error. */
    std::size_t errors = 0;
};

/** See the file comment. */
class SweepService
{
  public:
    /**
     * @p cache_capacity bounds the result cache (entries, LRU);
     * 0 disables caching — every batch simulates all unique points
     * and duplicates are copied from the representative's outcome
     * instead of read back from the cache. @p hasher overrides the
     * cache's key derivation (tests only — forces the collision
     * path).
     */
    explicit SweepService(std::size_t cache_capacity = 256,
                          ResultCache::Hasher hasher = {})
        : cache_(cache_capacity, std::move(hasher))
    {}

    /**
     * Streaming observer: called once per request point, with the
     * request index and the final outcome. Cache hits fire on the
     * calling thread before simulation starts; simulated points (and
     * their in-batch duplicates) fire from the completing worker's
     * thread, serialized by the sweep's emit mutex. Must not touch
     * the service or the batch call re-entrantly.
     */
    using Observer =
        std::function<void(std::size_t index, const ServiceOutcome &)>;

    /**
     * Answer @p request on @p threads workers; outcomes in request
     * order. Thread count never changes a single output bit (the
     * ParallelSweep contract), nor does cache warmth (determinism
     * makes hits exact).
     */
    std::vector<ServiceOutcome> runBatch(const SweepRequest &request,
                                         unsigned threads,
                                         const Observer &observer = {});

    /** runBatch at the environment-selected width. */
    std::vector<ServiceOutcome> runBatch(const SweepRequest &request);

    ResultCache &cache() { return cache_; }
    const ResultCache &cache() const { return cache_; }

    /** Accounting for the most recent runBatch call. */
    const BatchStats &lastBatch() const { return lastBatch_; }

    /**
     * Fault-injection seam (FaultPlan / tests): called on the worker
     * thread at the start of every *simulated* point's body — cache
     * hits and in-batch duplicates never reach it — with the point's
     * request index. A probe that throws aborts exactly that point
     * through runCaptured's captured-error path, like any workload
     * failure. Empty by default (and the default costs nothing on the
     * hot path beyond one bool test per simulated point).
     */
    using BodyProbe = std::function<void(std::size_t request_index)>;
    void setBodyProbe(BodyProbe probe) { bodyProbe_ = std::move(probe); }

  private:
    ResultCache cache_;
    BatchStats lastBatch_;
    BodyProbe bodyProbe_;
};

} // namespace wisync::service

#endif // WISYNC_SERVICE_SWEEP_SERVICE_HH
