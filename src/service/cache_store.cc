#include "service/cache_store.hh"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/machine_config.hh"
#include "service/config_codec.hh"
#include "service/json.hh"

namespace wisync::service {

namespace {

constexpr std::uint64_t kMagic = 0x45524F5453435357ull; // "WSCSTORE"
/** Bump when the record layout below changes shape. */
constexpr std::uint64_t kLayoutVersion = 1;

std::uint64_t
fnv1a(const char *data, std::size_t n)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 0x100000001B3ull;
    }
    return h;
}

/** Cheap integrity check over a record's length field alone: when it
 *  holds, the length can be trusted for framing even if the payload
 *  is corrupt, so load() can skip the record and keep reading. */
std::uint32_t
frameCheck(std::uint32_t payload_bytes)
{
    return (payload_bytes * 0x9E3779B9u) ^ 0x57534352u; // "WSCR"
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t
getU32(const char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= std::uint32_t(static_cast<unsigned char>(p[i])) << (8 * i);
    return v;
}

std::uint64_t
getU64(const char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= std::uint64_t(static_cast<unsigned char>(p[i])) << (8 * i);
    return v;
}

void
putResult(std::string &out, const workloads::KernelResult &r)
{
    putU64(out, r.cycles);
    putU64(out, r.completed ? 1 : 0);
    putU64(out, r.operations);
    putU64(out, std::bit_cast<std::uint64_t>(r.dataChannelUtilisation));
    putU64(out, r.collisions);
    putU64(out, r.macBackoffCycles);
    putU64(out, r.macTokenWaits);
    putU64(out, r.macTokenRotations);
    putU64(out, r.macModeSwitches);
    putU64(out, r.wirelessDrops);
    putU64(out, r.macAckTimeouts);
    putU64(out, r.macRetransmits);
    putU64(out, r.macGiveups);
    putU64(out, r.bridgeFrames);
    putU64(out, r.bridgeBusyCycles);
    putU64(out, r.staleRmwAborts);
    putU64(out, r.bridgeDrops);
    putU64(out, r.bridgeAckTimeouts);
    putU64(out, r.bridgeRetransmits);
    putU64(out, r.bridgeGiveups);
    putU64(out, r.fastpathHits);
    putU64(out, r.fastpathFallbacks);
}

workloads::KernelResult
getResult(const char *p)
{
    workloads::KernelResult r;
    std::size_t i = 0;
    auto next = [&]() { return getU64(p + 8 * i++); };
    r.cycles = next();
    r.completed = next() != 0;
    r.operations = next();
    r.dataChannelUtilisation = std::bit_cast<double>(next());
    r.collisions = next();
    r.macBackoffCycles = next();
    r.macTokenWaits = next();
    r.macTokenRotations = next();
    r.macModeSwitches = next();
    r.wirelessDrops = next();
    r.macAckTimeouts = next();
    r.macRetransmits = next();
    r.macGiveups = next();
    r.bridgeFrames = next();
    r.bridgeBusyCycles = next();
    r.staleRmwAborts = next();
    r.bridgeDrops = next();
    r.bridgeAckTimeouts = next();
    r.bridgeRetransmits = next();
    r.bridgeGiveups = next();
    r.fastpathHits = next();
    r.fastpathFallbacks = next();
    return r;
}

constexpr std::size_t kHeaderBytes = 16;
constexpr std::size_t kRecordHeaderBytes = 16; // len + check + checksum
/** fingerprint + pointJsonBytes + result words; the JSON itself is
 *  at least "{...}". */
constexpr std::size_t kMinPayloadBytes =
    8 + 4 + 2 + 8 * CacheStore::kResultWords;

/** Decode one verified payload; throws on any shape problem (the
 *  caller counts it as a discarded record). */
void
decodePayload(const char *p, std::size_t n, RequestPoint &point,
              workloads::KernelResult &result)
{
    if (n < kMinPayloadBytes)
        throw std::runtime_error("payload too short");
    const std::uint64_t fp = getU64(p);
    const std::uint32_t jsonBytes = getU32(p + 8);
    if (12 + std::size_t(jsonBytes) + 8 * CacheStore::kResultWords != n)
        throw std::runtime_error("payload length mismatch");
    const std::string jsonText(p + 12, jsonBytes);
    const Json doc = Json::parse(jsonText);
    const Json *config = doc.find("config");
    const Json *workload = doc.find("workload");
    if (config == nullptr || workload == nullptr)
        throw std::runtime_error("point object missing config/workload");
    point.config = ConfigCodec::parseConfig(*config);
    point.workload = ConfigCodec::parseWorkload(*workload);
    if (point.fingerprint() != fp)
        throw std::runtime_error("fingerprint mismatch");
    result = getResult(p + 12 + jsonBytes);
}

} // namespace

bool
writeFileAtomic(const std::string &path, const std::string &contents,
                std::string *error)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f) {
            if (error != nullptr)
                *error = "cannot open " + tmp;
            return false;
        }
        f.write(contents.data(),
                static_cast<std::streamsize>(contents.size()));
        f.flush();
        if (!f) {
            if (error != nullptr)
                *error = "write failed on " + tmp;
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error != nullptr)
            *error = "rename " + tmp + " -> " + path + " failed";
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::uint64_t
CacheStore::formatVersion()
{
    // Fold the layout version with both fingerprint stream versions:
    // bumping ANY of them changes the file version, so records
    // persisted under an old stream can never alias the new one.
    std::string v;
    putU64(v, kLayoutVersion);
    putU64(v, core::MachineConfig::kFingerprintVersion);
    putU64(v, WorkloadSpec::kFingerprintVersion);
    putU64(v, kResultWords);
    return fnv1a(v.data(), v.size());
}

std::string
CacheStore::encodeHeader()
{
    std::string out;
    putU64(out, kMagic);
    putU64(out, formatVersion());
    return out;
}

std::string
CacheStore::encodeRecord(const RequestPoint &point,
                         const workloads::KernelResult &result)
{
    std::string payload;
    putU64(payload, point.fingerprint());
    const std::string json = ConfigCodec::serialize(point);
    putU32(payload, static_cast<std::uint32_t>(json.size()));
    payload += json;
    putResult(payload, result);

    std::string out;
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    putU32(out, frameCheck(static_cast<std::uint32_t>(payload.size())));
    putU64(out, fnv1a(payload.data(), payload.size()));
    out += payload;
    return out;
}

bool
CacheStore::save(const ResultCache &cache, const std::string &path,
                 std::string *error)
{
    std::string out = encodeHeader();
    // LRU-first: replaying the file front-to-back re-inserts entries
    // in recency order, leaving the most recent one MRU again.
    cache.visitLruToMru(
        [&](const RequestPoint &point,
            const workloads::KernelResult &result) {
            out += encodeRecord(point, result);
        });
    return writeFileAtomic(path, out, error);
}

CacheStore::LoadStats
CacheStore::load(ResultCache &cache, const std::string &path)
{
    LoadStats stats;
    std::string data;
    {
        std::ifstream f(path, std::ios::binary);
        if (!f) {
            stats.error = "cannot open " + path;
            return stats;
        }
        std::ostringstream ss;
        ss << f.rdbuf();
        data = ss.str();
    }
    stats.fileFound = true;

    if (data.size() < kHeaderBytes) {
        stats.error = "truncated header";
        return stats;
    }
    if (getU64(data.data()) != kMagic) {
        stats.error = "bad magic";
        return stats;
    }
    stats.headerOk = true;
    if (getU64(data.data() + 8) != formatVersion()) {
        stats.versionMismatch = true;
        stats.error = "format version mismatch";
        return stats;
    }

    std::size_t pos = kHeaderBytes;
    auto firstError = [&](const std::string &what) {
        if (stats.error.empty())
            stats.error = what;
    };
    while (pos < data.size()) {
        if (data.size() - pos < kRecordHeaderBytes) {
            // Partial record header: a killed appender's tail.
            ++stats.discarded;
            firstError("truncated record header");
            break;
        }
        const std::uint32_t len = getU32(data.data() + pos);
        const std::uint32_t check = getU32(data.data() + pos + 4);
        const std::uint64_t checksum = getU64(data.data() + pos + 8);
        if (check != frameCheck(len)) {
            // The length itself is untrustworthy: framing is lost, so
            // everything from here on is one opaque blob.
            ++stats.discarded;
            firstError("corrupt record framing");
            break;
        }
        if (len < kMinPayloadBytes ||
            data.size() - pos - kRecordHeaderBytes < len) {
            ++stats.discarded;
            firstError("record runs past end of file");
            break;
        }
        const char *payload = data.data() + pos + kRecordHeaderBytes;
        pos += kRecordHeaderBytes + len;
        if (fnv1a(payload, len) != checksum) {
            // Payload corrupt but framing intact: drop just this
            // record and keep salvaging the rest.
            ++stats.discarded;
            firstError("record checksum mismatch");
            continue;
        }
        try {
            RequestPoint point;
            workloads::KernelResult result;
            decodePayload(payload, len, point, result);
            cache.insert(point, result);
            ++stats.loaded;
        } catch (const std::exception &e) {
            ++stats.discarded;
            firstError(std::string("undecodable record: ") + e.what());
        }
    }
    return stats;
}

bool
CacheStore::Appender::open(const std::string &path, std::string *error)
{
    close();
    file_ = std::fopen(path.c_str(), "ab");
    if (file_ == nullptr) {
        if (error != nullptr)
            *error = "cannot open " + path + " for append";
        return false;
    }
    // In append mode the write position only moves to the end at the
    // first write — seek explicitly so ftell reports the true size.
    // An empty (or brand-new) file still needs its header.
    std::fseek(file_, 0, SEEK_END);
    if (std::ftell(file_) == 0) {
        const std::string header = CacheStore::encodeHeader();
        if (std::fwrite(header.data(), 1, header.size(), file_) !=
                header.size() ||
            std::fflush(file_) != 0) {
            if (error != nullptr)
                *error = "cannot write header to " + path;
            close();
            return false;
        }
    }
    return true;
}

bool
CacheStore::Appender::append(const RequestPoint &point,
                             const workloads::KernelResult &result)
{
    if (file_ == nullptr)
        return false;
    const std::string record = encodeRecord(point, result);
    if (std::fwrite(record.data(), 1, record.size(), file_) !=
        record.size())
        return false;
    return std::fflush(file_) == 0;
}

void
CacheStore::Appender::close()
{
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

} // namespace wisync::service
