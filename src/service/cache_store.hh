/**
 * @file
 * Durable, corruption-safe persistence for the service ResultCache.
 *
 * A result is a pure function of its RequestPoint and the fingerprint
 * is process-stable, so a spilled cache is a shared memo table: any
 * later daemon (or another shard host) can warm itself from the file
 * and answer those points without simulating — bit-identical to a
 * cold run, because the records ARE cold-run results.
 *
 * File layout (all integers little-endian, fixed width):
 *
 *   header:  u64 magic ("WSCSTORE"), u64 formatVersion
 *   record*: u32 payloadBytes, u32 frameCheck(payloadBytes),
 *            u64 fnv1a64(payload), payload
 *   payload: u64 fingerprint, u32 pointJsonBytes,
 *            pointJson (ConfigCodec canonical form),
 *            u64 resultWords[kResultWords] (KernelResult fields in
 *            declaration order; doubles by bit pattern)
 *
 * formatVersion folds the store layout version together with
 * MachineConfig::kFingerprintVersion and
 * WorkloadSpec::kFingerprintVersion — the ROADMAP's "version the
 * format against the fingerprint's version tag". A file written under
 * any older stream layout can never alias the current one: the
 * version check rejects it wholesale.
 *
 * Robustness contract (the reason this module exists):
 *
 *  - save() is atomic (temp file + rename): a crash mid-save leaves
 *    the previous file intact, never a truncated one.
 *  - Appender streams one record per insertion with a flush, so a
 *    SIGKILL at any instant loses at most the record being written.
 *  - load() salvages record-by-record: the per-record frame check
 *    lets it skip a corrupt payload (bit flip) and keep reading, and
 *    a truncated tail (killed appender) abandons only the bytes past
 *    the last whole record. Every dropped record is counted, never
 *    silently ignored — and a record that decodes but whose stored
 *    fingerprint disagrees with the re-computed one is dropped too.
 */

#ifndef WISYNC_SERVICE_CACHE_STORE_HH
#define WISYNC_SERVICE_CACHE_STORE_HH

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "service/result_cache.hh"

namespace wisync::service {

/**
 * Write @p contents to @p path atomically: a temp file in the same
 * directory is written, flushed and renamed over the target, so a
 * reader (or a crash) never observes a partial file. Also used for
 * wisync_sweepd --output.
 */
bool writeFileAtomic(const std::string &path, const std::string &contents,
                     std::string *error = nullptr);

/** See the file comment. */
class CacheStore
{
  public:
    /** KernelResult fields per record (fixed by the format version). */
    static constexpr std::size_t kResultWords = 22;

    /** The store's composite format version (layout x fingerprint
     *  stream versions). */
    static std::uint64_t formatVersion();

    /** What load() managed to reconstruct. */
    struct LoadStats
    {
        /** Records replayed into the cache. */
        std::size_t loaded = 0;
        /** Records dropped: corrupt payload, bad framing, truncated
         *  tail, undecodable point, fingerprint mismatch. */
        std::size_t discarded = 0;
        bool fileFound = false;
        /** Magic matched. */
        bool headerOk = false;
        /** Header carried a different format version (nothing
         *  loaded — old fingerprints must never alias new ones). */
        bool versionMismatch = false;
        /** First problem encountered, for logs; empty if clean. */
        std::string error;
    };

    /**
     * Snapshot @p cache to @p path atomically, LRU-first so a
     * sequential reload reproduces both contents and recency.
     */
    static bool save(const ResultCache &cache, const std::string &path,
                     std::string *error = nullptr);

    /**
     * Replay every salvageable record of @p path into @p cache (which
     * evicts normally if the file holds more than its capacity).
     * Never throws: any corruption is counted in the stats.
     */
    static LoadStats load(ResultCache &cache, const std::string &path);

    /**
     * Streaming record writer for the daemon's spill hook: one
     * append + flush per cache insertion. Opens in append mode,
     * writing the header first when the file is new or empty.
     */
    class Appender
    {
      public:
        Appender() = default;
        ~Appender() { close(); }
        Appender(const Appender &) = delete;
        Appender &operator=(const Appender &) = delete;

        bool open(const std::string &path, std::string *error = nullptr);
        bool append(const RequestPoint &point,
                    const workloads::KernelResult &result);
        void close();
        bool isOpen() const { return file_ != nullptr; }

      private:
        std::FILE *file_ = nullptr;
    };

    // Encoding building blocks, exposed so tests and the fault
    // harness can construct files (and corrupt them) byte-precisely.
    static std::string encodeHeader();
    static std::string encodeRecord(const RequestPoint &point,
                                    const workloads::KernelResult &result);
};

} // namespace wisync::service

#endif // WISYNC_SERVICE_CACHE_STORE_HH
