#include "service/config_codec.hh"

#include <charconv>
#include <limits>

#include "core/machine.hh"
#include "sim/engine.hh"

namespace wisync::service {

namespace {

/** "points[3].config.wireless.lossPct" or just the path. */
std::string
describeField(const std::string &field, std::size_t point)
{
    if (point == ParseError::kNoPoint)
        return field;
    return field + " (point " + std::to_string(point) + ")";
}

[[noreturn]] void
fail(const std::string &field, std::size_t point, const std::string &msg)
{
    throw ParseError(field, point, msg);
}

// ---- Typed extraction with range checks --------------------------

std::uint64_t
asU64(const Json &v, const std::string &path, std::size_t point)
{
    if (!v.isNumber())
        fail(path, point,
             std::string("expected an unsigned integer, got ") +
                 v.typeName());
    const std::string &raw = v.rawNumber();
    // Reject signs, fractions and exponents outright: "2.5 cores" and
    // "-1 retries" must be errors, and an exponent form would lose
    // 64-bit precision through the double.
    if (raw.find_first_of(".eE-") != std::string::npos)
        fail(path, point, "expected an unsigned integer, got '" + raw +
                              "'");
    std::uint64_t out = 0;
    const char *first = raw.data();
    const char *last = first + raw.size();
    const auto [end, ec] = std::from_chars(first, last, out);
    if (ec != std::errc() || end != last)
        fail(path, point, "unsigned integer out of range: '" + raw +
                              "'");
    return out;
}

std::uint32_t
asU32(const Json &v, const std::string &path, std::size_t point)
{
    const std::uint64_t wide = asU64(v, path, point);
    if (wide > std::numeric_limits<std::uint32_t>::max())
        fail(path, point, "value does not fit in 32 bits: " +
                              std::to_string(wide));
    return static_cast<std::uint32_t>(wide);
}

double
asDouble(const Json &v, const std::string &path, std::size_t point)
{
    if (!v.isNumber())
        fail(path, point, std::string("expected a number, got ") +
                              v.typeName());
    return v.number();
}

bool
asBool(const Json &v, const std::string &path, std::size_t point)
{
    if (!v.isBool())
        fail(path, point, std::string("expected true/false, got ") +
                              v.typeName());
    return v.boolean();
}

const std::string &
asString(const Json &v, const std::string &path, std::size_t point)
{
    if (!v.isString())
        fail(path, point, std::string("expected a string, got ") +
                              v.typeName());
    return v.str();
}

const Json &
asObject(const Json &v, const std::string &path, std::size_t point)
{
    if (!v.isObject())
        fail(path, point, std::string("expected an object, got ") +
                              v.typeName());
    return v;
}

// ---- Enum spellings (exactly the toString() forms) ---------------

core::ConfigKind
parseKind(const Json &v, const std::string &path, std::size_t point)
{
    const std::string &s = asString(v, path, point);
    for (const auto k :
         {core::ConfigKind::Baseline, core::ConfigKind::BaselinePlus,
          core::ConfigKind::WiSyncNoT, core::ConfigKind::WiSync}) {
        if (s == core::toString(k))
            return k;
    }
    fail(path, point,
         "unknown config kind '" + s +
             "' (expected Baseline, Baseline+, WiSyncNoT or WiSync)");
}

core::Variant
parseVariant(const Json &v, const std::string &path, std::size_t point)
{
    const std::string &s = asString(v, path, point);
    for (const auto k :
         {core::Variant::Default, core::Variant::SlowNet,
          core::Variant::SlowNetL2, core::Variant::FastNet,
          core::Variant::SlowBmem}) {
        if (s == core::toString(k))
            return k;
    }
    fail(path, point,
         "unknown variant '" + s +
             "' (expected Default, SlowNet, SlowNet+L2, FastNet or "
             "SlowBMEM)");
}

wireless::MacKind
parseMac(const Json &v, const std::string &path, std::size_t point)
{
    const std::string &s = asString(v, path, point);
    for (const auto k :
         {wireless::MacKind::Brs, wireless::MacKind::Token,
          wireless::MacKind::FuzzyToken, wireless::MacKind::Adaptive}) {
        if (s == wireless::toString(k))
            return k;
    }
    fail(path, point,
         "unknown MAC kind '" + s +
             "' (expected BRS, Token, FuzzyToken or Adaptive)");
}

const char *
casKernelName(workloads::CasKernel k)
{
    switch (k) {
      case workloads::CasKernel::Fifo:
        return "fifo";
      case workloads::CasKernel::Lifo:
        return "lifo";
      case workloads::CasKernel::Add:
        return "add";
    }
    return "?";
}

workloads::CasKernel
parseCasKernel(const Json &v, const std::string &path, std::size_t point)
{
    const std::string &s = asString(v, path, point);
    for (const auto k :
         {workloads::CasKernel::Fifo, workloads::CasKernel::Lifo,
          workloads::CasKernel::Add}) {
        if (s == casKernelName(k))
            return k;
    }
    fail(path, point,
         "unknown CAS kernel '" + s + "' (expected fifo, lifo or add)");
}

// ---- Sub-object parsers ------------------------------------------

void
parseBurst(wireless::BurstParams &burst, const Json &v,
           const std::string &path, std::size_t point)
{
    for (const auto &[key, member] : asObject(v, path, point).object()) {
        const std::string sub = path + "." + key;
        if (key == "enabled")
            burst.enabled = asBool(member, sub, point);
        else if (key == "goodLossPct")
            burst.goodLossPct = asDouble(member, sub, point);
        else if (key == "badLossPct")
            burst.badLossPct = asDouble(member, sub, point);
        else if (key == "pGoodToBad")
            burst.pGoodToBad = asDouble(member, sub, point);
        else if (key == "pBadToGood")
            burst.pBadToGood = asDouble(member, sub, point);
        else
            fail(sub, point, "unknown key '" + key + "'");
    }
}

void
parseWireless(wireless::WirelessConfig &w, const Json &v,
              const std::string &path, std::size_t point)
{
    for (const auto &[key, member] : asObject(v, path, point).object()) {
        const std::string sub = path + "." + key;
        if (key == "mac")
            w.macKind = parseMac(member, sub, point);
        else if (key == "maxBackoffExp")
            w.maxBackoffExp = asU32(member, sub, point);
        else if (key == "tokenPassCycles")
            w.tokenPassCycles = asU32(member, sub, point);
        else if (key == "tokenFrameBits")
            w.tokenFrameBits = asU32(member, sub, point);
        else if (key == "tokenHoldCycles")
            w.tokenHoldCycles = asU32(member, sub, point);
        else if (key == "adaptWindowEvents")
            w.adaptWindowEvents = asU32(member, sub, point);
        else if (key == "adaptHiPct")
            w.adaptHiPct = asU32(member, sub, point);
        else if (key == "adaptLoPct")
            w.adaptLoPct = asU32(member, sub, point);
        else if (key == "lossPct")
            w.lossPct = asDouble(member, sub, point);
        else if (key == "berFromSnr")
            w.berFromSnr = asBool(member, sub, point);
        else if (key == "txPowerDbm")
            w.txPowerDbm = asDouble(member, sub, point);
        else if (key == "ackTimeoutCycles")
            w.ackTimeoutCycles = asU32(member, sub, point);
        else if (key == "maxRetries")
            w.maxRetries = asU32(member, sub, point);
        else if (key == "retryBackoffMaxExp")
            w.retryBackoffMaxExp = asU32(member, sub, point);
        else if (key == "burst")
            parseBurst(w.burst, member, sub, point);
        else if (key == "channelLossBaseDb")
            w.channelLossBaseDb = asDouble(member, sub, point);
        else if (key == "channelLossStepDb")
            w.channelLossStepDb = asDouble(member, sub, point);
        else if (key == "spectrumSlots")
            w.spectrumSlots = asU32(member, sub, point);
        else
            fail(sub, point, "unknown key '" + key + "'");
    }
    if (w.lossPct < 0.0 || w.lossPct > 100.0)
        fail(path + ".lossPct", point,
             "loss percentage must be within [0, 100]");
}

void
parseBridge(noc::BridgeConfig &b, const Json &v, const std::string &path,
            std::size_t point)
{
    for (const auto &[key, member] : asObject(v, path, point).object()) {
        const std::string sub = path + "." + key;
        if (key == "latencyCycles")
            b.latencyCycles = asU64(member, sub, point);
        else if (key == "widthBits")
            b.widthBits = asU32(member, sub, point);
        else if (key == "headerBits")
            b.headerBits = asU32(member, sub, point);
        else if (key == "lossPct")
            b.lossPct = asDouble(member, sub, point);
        else if (key == "burst")
            parseBurst(b.burst, member, sub, point);
        else if (key == "ackTimeoutCycles")
            b.ackTimeoutCycles = asU64(member, sub, point);
        else if (key == "maxRetries")
            b.maxRetries = asU32(member, sub, point);
        else if (key == "retryBackoffMaxExp")
            b.retryBackoffMaxExp = asU32(member, sub, point);
        else
            fail(sub, point, "unknown key '" + key + "'");
    }
    if (b.lossPct < 0.0 || b.lossPct > 100.0)
        fail(path + ".lossPct", point,
             "loss percentage must be within [0, 100]");
}

/** Same FNV-1a stream discipline as MachineConfig::fingerprint(). */
struct Fnv1a
{
    std::uint64_t h = 0xCBF29CE484222325ull;

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xFF;
            h *= 0x100000001B3ull;
        }
    }
};

} // namespace

ParseError::ParseError(std::string field, std::size_t point_index,
                       const std::string &message)
    : std::runtime_error(describeField(field, point_index) + ": " +
                         message),
      field_(std::move(field)), pointIndex_(point_index)
{}

std::uint64_t
WorkloadSpec::fingerprint() const
{
    Fnv1a f;
    // "WSWF" tag + stream version (v2 added maxCycles).
    f.u64(0x5753465700ull + kFingerprintVersion);
    f.u64(static_cast<std::uint64_t>(kind));
    switch (kind) {
      case Kind::TightLoop:
        f.u64(tightLoop.iterations);
        f.u64(tightLoop.arrayElems);
        f.u64(tightLoop.runLimit);
        break;
      case Kind::Cas:
        f.u64(static_cast<std::uint64_t>(casKernel));
        f.u64(cas.criticalSectionInstr);
        f.u64(cas.duration);
        break;
    }
    f.u64(maxCycles);
    return f.h;
}

std::uint64_t
WorkloadSpec::lengthEstimate() const
{
    std::uint64_t length = 1;
    switch (kind) {
      case Kind::TightLoop:
        length = tightLoop.lengthEstimate();
        break;
      case Kind::Cas:
        length = cas.lengthEstimate();
        break;
    }
    // A budget caps the point regardless of its nominal length.
    if (maxCycles != 0 && maxCycles < length)
        length = maxCycles;
    return length == 0 ? 1 : length;
}

DeadlineExceeded::DeadlineExceeded(std::uint64_t max_cycles,
                                   std::uint64_t at_cycle)
    : std::runtime_error("DeadlineExceeded: maxCycles=" +
                         std::to_string(max_cycles) +
                         " exhausted at cycle " +
                         std::to_string(at_cycle) +
                         " with work still pending"),
      maxCycles_(max_cycles), atCycle_(at_cycle)
{}

std::uint64_t
RequestPoint::fingerprint() const
{
    // Order the two halves through one stream so (config, workload)
    // can never alias (workload, config).
    Fnv1a f;
    f.u64(config.fingerprint());
    f.u64(workload.fingerprint());
    return f.h;
}

core::MachineConfig
ConfigCodec::parseConfig(const Json &v, std::size_t point_index,
                         const std::string &path)
{
    const Json &obj = asObject(v, path, point_index);

    // kind/cores/variant first: make() derives the variant's timing
    // knobs (hop cycles, L2/BM round trips), so overrides below land
    // on the same baseline the benches use.
    const Json *kind = obj.find("kind");
    if (kind == nullptr)
        fail(path + ".kind", point_index, "missing required key");
    const Json *cores = obj.find("cores");
    if (cores == nullptr)
        fail(path + ".cores", point_index, "missing required key");
    core::Variant variant = core::Variant::Default;
    if (const Json *var = obj.find("variant"); var != nullptr)
        variant = parseVariant(*var, path + ".variant", point_index);

    const std::uint32_t n = asU32(*cores, path + ".cores", point_index);
    if (n == 0)
        fail(path + ".cores", point_index, "need at least one core");
    core::MachineConfig cfg = core::MachineConfig::make(
        parseKind(*kind, path + ".kind", point_index), n, variant);

    for (const auto &[key, member] : obj.object()) {
        const std::string sub = path + "." + key;
        if (key == "kind" || key == "cores" || key == "variant") {
            // Applied above. Duplicate keys resolve to the first
            // occurrence (find()), matching common JSON libraries.
        } else if (key == "chips") {
            cfg.numChips = asU32(member, sub, point_index);
        } else if (key == "issueWidth") {
            cfg.issueWidth = asU32(member, sub, point_index);
        } else if (key == "seed") {
            cfg.seed = asU64(member, sub, point_index);
        } else if (key == "wireless") {
            parseWireless(cfg.wireless, member, sub, point_index);
        } else if (key == "bridge") {
            parseBridge(cfg.bridge, member, sub, point_index);
        } else {
            fail(sub, point_index, "unknown key '" + key + "'");
        }
    }

    // Structural validity: a bad tiling would WISYNC_FATAL inside the
    // Machine constructor, which kills a service process. Reject it
    // as a typed request error instead.
    if (cfg.numChips == 0)
        fail(path + ".chips", point_index, "need at least one chip");
    if (cfg.numCores % cfg.numChips != 0)
        fail(path + ".chips", point_index,
             "cores (" + std::to_string(cfg.numCores) +
                 ") must divide evenly over chips (" +
                 std::to_string(cfg.numChips) + ")");
    if (cfg.issueWidth == 0)
        fail(path + ".issueWidth", point_index,
             "issue width must be at least 1");
    return cfg;
}

WorkloadSpec
ConfigCodec::parseWorkload(const Json &v, std::size_t point_index,
                           const std::string &path)
{
    const Json &obj = asObject(v, path, point_index);
    WorkloadSpec spec;

    const Json *kind = obj.find("kind");
    if (kind == nullptr)
        fail(path + ".kind", point_index, "missing required key");
    const std::string &k = asString(*kind, path + ".kind", point_index);
    if (k == "tightloop")
        spec.kind = WorkloadSpec::Kind::TightLoop;
    else if (k == "cas")
        spec.kind = WorkloadSpec::Kind::Cas;
    else
        fail(path + ".kind", point_index,
             "unknown workload '" + k + "' (expected tightloop or cas)");

    for (const auto &[key, member] : obj.object()) {
        const std::string sub = path + "." + key;
        if (key == "kind") {
            continue;
        } else if (key == "maxCycles") {
            // Kind-independent: the budget bounds the whole point.
            spec.maxCycles = asU64(member, sub, point_index);
        } else if (spec.kind == WorkloadSpec::Kind::TightLoop &&
                   key == "iterations") {
            spec.tightLoop.iterations = asU32(member, sub, point_index);
        } else if (spec.kind == WorkloadSpec::Kind::TightLoop &&
                   key == "arrayElems") {
            spec.tightLoop.arrayElems = asU32(member, sub, point_index);
        } else if (spec.kind == WorkloadSpec::Kind::TightLoop &&
                   key == "runLimit") {
            spec.tightLoop.runLimit = asU64(member, sub, point_index);
        } else if (spec.kind == WorkloadSpec::Kind::Cas &&
                   key == "kernel") {
            spec.casKernel = parseCasKernel(member, sub, point_index);
        } else if (spec.kind == WorkloadSpec::Kind::Cas &&
                   key == "criticalSectionInstr") {
            spec.cas.criticalSectionInstr =
                asU32(member, sub, point_index);
        } else if (spec.kind == WorkloadSpec::Kind::Cas &&
                   key == "duration") {
            spec.cas.duration = asU64(member, sub, point_index);
        } else {
            fail(sub, point_index,
                 "unknown key '" + key + "' for workload '" + k + "'");
        }
    }
    return spec;
}

SweepRequest
ConfigCodec::parseRequest(const std::string &json_text)
{
    Json doc;
    try {
        doc = Json::parse(json_text);
    } catch (const JsonError &e) {
        fail("<request>", ParseError::kNoPoint, e.what());
    }
    const Json &obj = asObject(doc, "<request>", ParseError::kNoPoint);

    const Json *points = nullptr;
    for (const auto &[key, member] : obj.object()) {
        if (key == "points")
            points = &member;
        else
            fail(key, ParseError::kNoPoint, "unknown key '" + key + "'");
    }
    if (points == nullptr)
        fail("points", ParseError::kNoPoint, "missing required key");
    if (!points->isArray())
        fail("points", ParseError::kNoPoint,
             std::string("expected an array, got ") +
                 points->typeName());

    SweepRequest request;
    request.points.reserve(points->array().size());
    for (std::size_t i = 0; i < points->array().size(); ++i) {
        const Json &pv = points->array()[i];
        const std::string base = "points[" + std::to_string(i) + "]";
        const Json &pobj = asObject(pv, base, i);
        RequestPoint point;
        const Json *config = nullptr;
        const Json *workload = nullptr;
        for (const auto &[key, member] : pobj.object()) {
            if (key == "config")
                config = &member;
            else if (key == "workload")
                workload = &member;
            else
                fail(base + "." + key, i, "unknown key '" + key + "'");
        }
        if (config == nullptr)
            fail(base + ".config", i, "missing required key");
        point.config = parseConfig(*config, i, base + ".config");
        if (workload != nullptr)
            point.workload =
                parseWorkload(*workload, i, base + ".workload");
        request.points.push_back(std::move(point));
    }
    return request;
}

std::string
ConfigCodec::serialize(const core::MachineConfig &cfg)
{
    std::string out = "{";
    out += "\"kind\":" + jsonQuote(core::toString(cfg.kind));
    out += ",\"cores\":" + jsonNumber(std::uint64_t(cfg.numCores));
    out += ",\"variant\":" + jsonQuote(core::toString(cfg.variant));
    out += ",\"chips\":" + jsonNumber(std::uint64_t(cfg.numChips));
    out += ",\"issueWidth\":" + jsonNumber(std::uint64_t(cfg.issueWidth));
    out += ",\"seed\":" + jsonNumber(cfg.seed);

    const auto &w = cfg.wireless;
    out += ",\"wireless\":{";
    out += "\"mac\":" + jsonQuote(wireless::toString(w.macKind));
    out += ",\"maxBackoffExp\":" +
           jsonNumber(std::uint64_t(w.maxBackoffExp));
    out += ",\"tokenPassCycles\":" +
           jsonNumber(std::uint64_t(w.tokenPassCycles));
    out += ",\"tokenFrameBits\":" +
           jsonNumber(std::uint64_t(w.tokenFrameBits));
    out += ",\"tokenHoldCycles\":" +
           jsonNumber(std::uint64_t(w.tokenHoldCycles));
    out += ",\"adaptWindowEvents\":" +
           jsonNumber(std::uint64_t(w.adaptWindowEvents));
    out += ",\"adaptHiPct\":" + jsonNumber(std::uint64_t(w.adaptHiPct));
    out += ",\"adaptLoPct\":" + jsonNumber(std::uint64_t(w.adaptLoPct));
    out += ",\"lossPct\":" + jsonNumber(w.lossPct);
    out += ",\"berFromSnr\":" + std::string(w.berFromSnr ? "true"
                                                         : "false");
    out += ",\"txPowerDbm\":" + jsonNumber(w.txPowerDbm);
    out += ",\"ackTimeoutCycles\":" +
           jsonNumber(std::uint64_t(w.ackTimeoutCycles));
    out += ",\"maxRetries\":" + jsonNumber(std::uint64_t(w.maxRetries));
    out += ",\"retryBackoffMaxExp\":" +
           jsonNumber(std::uint64_t(w.retryBackoffMaxExp));
    out += ",\"burst\":{";
    out += "\"enabled\":" + std::string(w.burst.enabled ? "true"
                                                        : "false");
    out += ",\"goodLossPct\":" + jsonNumber(w.burst.goodLossPct);
    out += ",\"badLossPct\":" + jsonNumber(w.burst.badLossPct);
    out += ",\"pGoodToBad\":" + jsonNumber(w.burst.pGoodToBad);
    out += ",\"pBadToGood\":" + jsonNumber(w.burst.pBadToGood);
    out += "}";
    out += ",\"channelLossBaseDb\":" + jsonNumber(w.channelLossBaseDb);
    out += ",\"channelLossStepDb\":" + jsonNumber(w.channelLossStepDb);
    out += ",\"spectrumSlots\":" +
           jsonNumber(std::uint64_t(w.spectrumSlots));
    out += "}";

    const auto &b = cfg.bridge;
    out += ",\"bridge\":{";
    out += "\"latencyCycles\":" + jsonNumber(b.latencyCycles);
    out += ",\"widthBits\":" + jsonNumber(std::uint64_t(b.widthBits));
    out += ",\"headerBits\":" + jsonNumber(std::uint64_t(b.headerBits));
    out += ",\"lossPct\":" + jsonNumber(b.lossPct);
    out += ",\"burst\":{";
    out += "\"enabled\":" + std::string(b.burst.enabled ? "true"
                                                        : "false");
    out += ",\"goodLossPct\":" + jsonNumber(b.burst.goodLossPct);
    out += ",\"badLossPct\":" + jsonNumber(b.burst.badLossPct);
    out += ",\"pGoodToBad\":" + jsonNumber(b.burst.pGoodToBad);
    out += ",\"pBadToGood\":" + jsonNumber(b.burst.pBadToGood);
    out += "}";
    out += ",\"ackTimeoutCycles\":" + jsonNumber(b.ackTimeoutCycles);
    out += ",\"maxRetries\":" + jsonNumber(std::uint64_t(b.maxRetries));
    out += ",\"retryBackoffMaxExp\":" +
           jsonNumber(std::uint64_t(b.retryBackoffMaxExp));
    out += "}";

    out += "}";
    return out;
}

std::string
ConfigCodec::serialize(const WorkloadSpec &w)
{
    std::string out = "{";
    switch (w.kind) {
      case WorkloadSpec::Kind::TightLoop:
        out += "\"kind\":\"tightloop\"";
        out += ",\"iterations\":" +
               jsonNumber(std::uint64_t(w.tightLoop.iterations));
        out += ",\"arrayElems\":" +
               jsonNumber(std::uint64_t(w.tightLoop.arrayElems));
        out += ",\"runLimit\":" + jsonNumber(w.tightLoop.runLimit);
        break;
      case WorkloadSpec::Kind::Cas:
        out += "\"kind\":\"cas\"";
        out += ",\"kernel\":" + jsonQuote(casKernelName(w.casKernel));
        out += ",\"criticalSectionInstr\":" +
               jsonNumber(std::uint64_t(w.cas.criticalSectionInstr));
        out += ",\"duration\":" + jsonNumber(w.cas.duration);
        break;
    }
    out += ",\"maxCycles\":" + jsonNumber(w.maxCycles);
    out += "}";
    return out;
}

std::string
ConfigCodec::serialize(const RequestPoint &point)
{
    return "{\"config\":" + serialize(point.config) +
           ",\"workload\":" + serialize(point.workload) + "}";
}

std::string
ConfigCodec::serializeRequest(const SweepRequest &request)
{
    std::string out = "{\"points\":[";
    for (std::size_t i = 0; i < request.points.size(); ++i) {
        if (i != 0)
            out += ",";
        out += serialize(request.points[i]);
    }
    out += "]}";
    return out;
}

std::string
ConfigCodec::serializeResult(const workloads::KernelResult &r)
{
    std::string out = "{";
    out += "\"cycles\":" + jsonNumber(r.cycles);
    out += ",\"completed\":" + std::string(r.completed ? "true"
                                                       : "false");
    out += ",\"operations\":" + jsonNumber(r.operations);
    out += ",\"dataChannelUtilisation\":" +
           jsonNumber(r.dataChannelUtilisation);
    out += ",\"collisions\":" + jsonNumber(r.collisions);
    out += ",\"macBackoffCycles\":" + jsonNumber(r.macBackoffCycles);
    out += ",\"macTokenWaits\":" + jsonNumber(r.macTokenWaits);
    out += ",\"macTokenRotations\":" + jsonNumber(r.macTokenRotations);
    out += ",\"macModeSwitches\":" + jsonNumber(r.macModeSwitches);
    out += ",\"wirelessDrops\":" + jsonNumber(r.wirelessDrops);
    out += ",\"macAckTimeouts\":" + jsonNumber(r.macAckTimeouts);
    out += ",\"macRetransmits\":" + jsonNumber(r.macRetransmits);
    out += ",\"macGiveups\":" + jsonNumber(r.macGiveups);
    out += ",\"bridgeFrames\":" + jsonNumber(r.bridgeFrames);
    out += ",\"bridgeBusyCycles\":" + jsonNumber(r.bridgeBusyCycles);
    out += ",\"staleRmwAborts\":" + jsonNumber(r.staleRmwAborts);
    out += ",\"bridgeDrops\":" + jsonNumber(r.bridgeDrops);
    out += ",\"bridgeAckTimeouts\":" + jsonNumber(r.bridgeAckTimeouts);
    out += ",\"bridgeRetransmits\":" + jsonNumber(r.bridgeRetransmits);
    out += ",\"bridgeGiveups\":" + jsonNumber(r.bridgeGiveups);
    out += "}";
    return out;
}

workloads::KernelResult
runWorkload(const WorkloadSpec &spec, core::Machine &machine)
{
    sim::Engine &engine = machine.engine();
    if (spec.maxCycles != 0)
        engine.setDeadline(spec.maxCycles);
    // The machine goes back to a pooled-reuse path after this point; a
    // deadline leaking past the run would silently truncate whatever
    // point the machine serves next.
    struct DisarmOnExit
    {
        sim::Engine &engine;
        ~DisarmOnExit() { engine.clearDeadline(); }
    } disarm{engine};

    workloads::KernelResult result;
    switch (spec.kind) {
      case WorkloadSpec::Kind::TightLoop:
        result = workloads::runTightLoopOn(machine, spec.tightLoop);
        break;
      case WorkloadSpec::Kind::Cas:
        result = workloads::runCasKernelOn(spec.casKernel, machine,
                                           spec.cas);
        break;
      default:
        fail("workload.kind", ParseError::kNoPoint,
             "unhandled workload kind");
    }
    if (spec.maxCycles != 0 && engine.deadlineHit())
        throw DeadlineExceeded(spec.maxCycles, engine.now());
    return result;
}

} // namespace wisync::service
