#include "service/sweep_service.hh"

#include <unordered_map>
#include <utility>

#include "harness/parallel_sweep.hh"

namespace wisync::service {

std::vector<ServiceOutcome>
SweepService::runBatch(const SweepRequest &request)
{
    return runBatch(request, harness::ParallelSweep::threads());
}

std::vector<ServiceOutcome>
SweepService::runBatch(const SweepRequest &request, unsigned threads,
                       const Observer &observer)
{
    const std::size_t n = request.points.size();
    std::vector<ServiceOutcome> outcomes(n);
    BatchStats stats;
    stats.points = n;

    // Classification pass (calling thread): answer warm cache hits
    // immediately, schedule the first occurrence of every unseen
    // point, and park later occurrences as duplicates of their
    // representative. Scheduling in request order keeps the sweep
    // grid — and therefore worker assignment and machine-cache
    // locality — deterministic for a given request + cache state.
    harness::ParallelSweep sweep;
    std::vector<std::size_t> sweepToRequest;
    std::vector<std::vector<std::size_t>> duplicatesOf;
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> seen;

    for (std::size_t i = 0; i < n; ++i) {
        const RequestPoint &point = request.points[i];
        const std::uint64_t fp = point.fingerprint();
        outcomes[i].fingerprint = fp;

        if (const workloads::KernelResult *hit = cache_.lookup(point)) {
            outcomes[i].result = *hit;
            outcomes[i].ok = true;
            outcomes[i].cacheHit = true;
            ++stats.cacheHits;
            if (observer)
                observer(i, outcomes[i]);
            continue;
        }

        // In-batch dedupe, exact like the cache: same fingerprint is
        // only a duplicate if the whole point compares equal.
        bool duplicate = false;
        for (const std::size_t sj : seen[fp]) {
            if (request.points[sweepToRequest[sj]] == point) {
                duplicatesOf[sj].push_back(i);
                duplicate = true;
                break;
            }
        }
        if (duplicate)
            continue;

        const WorkloadSpec workload = point.workload;
        const BodyProbe probe = bodyProbe_;
        const std::size_t sj =
            sweep.add(point.config, [workload, probe, i](core::Machine &m) {
                if (probe)
                    probe(i);
                return runWorkload(workload, m);
            });
        seen[fp].push_back(sj);
        sweepToRequest.push_back(i);
        duplicatesOf.emplace_back();
    }
    stats.simulated = sweep.size();

    // Completion streaming (worker threads, serialized by the sweep's
    // emit mutex — which also serializes the cache mutations below):
    // land the representative, insert it into the cache, then answer
    // its in-batch duplicates from the entry just inserted — each one
    // a literal, counted cache hit. With caching disabled (or a
    // failed representative) duplicates copy the representative's
    // outcome directly; either way their bits are identical to
    // simulating them.
    sweep.onOutcomeComplete([&](std::size_t sj,
                                const harness::PointOutcome &po) {
        const std::size_t r = sweepToRequest[sj];
        ServiceOutcome &rep = outcomes[r];
        rep.result = po.result;
        rep.ok = po.ok;
        rep.error = po.error;
        if (po.ok)
            cache_.insert(request.points[r], po.result);
        else
            ++stats.errors;
        if (observer)
            observer(r, rep);

        for (const std::size_t d : duplicatesOf[sj]) {
            ServiceOutcome &dup = outcomes[d];
            if (po.ok) {
                const workloads::KernelResult *hit =
                    cache_.capacity() == 0
                        ? nullptr
                        : cache_.lookup(request.points[d]);
                dup.result = hit != nullptr ? *hit : po.result;
                dup.ok = true;
                dup.cacheHit = true;
                ++stats.cacheHits;
            } else {
                dup.ok = false;
                dup.error = po.error;
                ++stats.errors;
            }
            if (observer)
                observer(d, dup);
        }
    });
    (void)sweep.runCaptured(threads);

    lastBatch_ = stats;
    return outcomes;
}

} // namespace wisync::service
