/**
 * @file
 * Minimal OS runtime for broadcast-variable management (paper §4.4).
 *
 * The OS owns PIDs and the BM address space. Allocating a broadcast
 * variable sends the allocation broadcast (every node tags the same
 * entries with the program's PID); if the BM is exhausted the
 * variable is transparently placed in regular memory and accessed
 * through the wired hierarchy, exactly as §4.2 prescribes. Tone
 * barriers are registered in AllocB with the Armed bits derived from
 * the participating threads' placement; if a program cannot get a
 * tone barrier (AllocB full / no Tone channel), callers fall back to
 * a Data-channel barrier.
 */

#ifndef WISYNC_CORE_OS_HH
#define WISYNC_CORE_OS_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/machine.hh"
#include "coro/task.hh"
#include "sim/types.hh"

namespace wisync::core {

/** Handle to an allocated broadcast variable. */
struct BVar
{
    /** True: lives in the BM; false: spilled to regular memory. */
    bool inBm = false;
    sim::BmAddr bmAddr = 0;
    sim::Addr memAddr = 0;
    std::uint32_t words = 0;
    sim::Pid pid = 0;
};

/** OS services for one simulated chip. */
class Os
{
  public:
    explicit Os(Machine &machine) : machine_(machine) {}

    /** Start a new program: returns a fresh PID. */
    sim::Pid newProgram() { return nextPid_++; }

    /**
     * Allocate @p words of broadcast storage for @p pid, issuing the
     * allocation broadcast from @p ctx's node. Falls back to regular
     * memory when the BM is full (the dedup/fluidanimate path).
     */
    coro::Task<BVar> allocBroadcast(ThreadCtx &ctx, std::uint32_t words);

    /** Release a broadcast variable (broadcast dealloc message). */
    coro::Task<void> freeBroadcast(ThreadCtx &ctx, const BVar &var);

    /**
     * Allocate and arm a tone barrier for threads placed on
     * @p participant_nodes. Returns the barrier's BM word, or nullopt
     * when AllocB overflows or the chip has no Tone channel.
     */
    coro::Task<std::optional<sim::BmAddr>>
    allocToneBarrier(ThreadCtx &ctx,
                     std::vector<sim::NodeId> participant_nodes);

    /** Deallocate a tone barrier everywhere. */
    void freeToneBarrier(sim::BmAddr addr);

    Machine &machine() { return machine_; }

  private:
    Machine &machine_;
    sim::Pid nextPid_ = 1;
};

/** Accessors that dispatch on where the broadcast variable lives. */
coro::Task<std::uint64_t> bvarLoad(ThreadCtx &ctx, const BVar &var,
                                   std::uint32_t word = 0);
coro::Task<void> bvarStore(ThreadCtx &ctx, const BVar &var,
                           std::uint64_t value, std::uint32_t word = 0);
coro::Task<std::uint64_t> bvarFetchAdd(ThreadCtx &ctx, const BVar &var,
                                       std::uint64_t delta,
                                       std::uint32_t word = 0);

} // namespace wisync::core

#endif // WISYNC_CORE_OS_HH
