#include "core/os.hh"

#include "sim/logging.hh"

namespace wisync::core {

coro::Task<BVar>
Os::allocBroadcast(ThreadCtx &ctx, std::uint32_t words)
{
    BVar var;
    var.words = words;
    var.pid = ctx.pid();
    if (machine_.bm()) {
        sim::BmAddr addr = 0;
        if (machine_.allocBm(words, addr)) {
            // Broadcast the allocation so every node tags the entries.
            co_await machine_.bm()->allocEntries(ctx.node(), ctx.pid(),
                                                 addr, words);
            var.inBm = true;
            var.bmAddr = addr;
            co_return var;
        }
        // BM exhausted: transparently spill to regular memory (§4.2).
    }
    var.inBm = false;
    var.memAddr = machine_.allocMem(static_cast<std::uint64_t>(words) * 8,
                                    64);
    co_return var;
}

coro::Task<void>
Os::freeBroadcast(ThreadCtx &ctx, const BVar &var)
{
    if (var.inBm)
        co_await machine_.bm()->deallocEntries(ctx.node(), var.bmAddr,
                                               var.words);
    // Regular-memory spills use the bump allocator (no reclamation in
    // this model).
}

coro::Task<std::optional<sim::BmAddr>>
Os::allocToneBarrier(ThreadCtx &ctx,
                     std::vector<sim::NodeId> participant_nodes)
{
    if (!machine_.bm() || !machine_.bm()->hasTone())
        co_return std::nullopt;
    sim::BmAddr addr = 0;
    if (!machine_.allocBm(1, addr))
        co_return std::nullopt;
    co_await machine_.bm()->allocEntries(ctx.node(), ctx.pid(), addr, 1);
    std::vector<bool> armed(machine_.config().numCores, false);
    for (const auto n : participant_nodes) {
        WISYNC_FATAL_IF(n >= machine_.config().numCores,
                        "tone participant out of range");
        // §5.2: two threads of the same tone barrier may not share a
        // core; the OS refuses such placements.
        WISYNC_FATAL_IF(armed[n],
                        "two tone-barrier threads on one core");
        armed[n] = true;
    }
    if (!machine_.bm()->allocToneBarrier(addr, std::move(armed)))
        co_return std::nullopt; // AllocB overflow
    co_return addr;
}

void
Os::freeToneBarrier(sim::BmAddr addr)
{
    machine_.bm()->deallocToneBarrier(addr);
}

coro::Task<std::uint64_t>
bvarLoad(ThreadCtx &ctx, const BVar &var, std::uint32_t word)
{
    WISYNC_ASSERT(word < var.words, "BVar word out of range");
    if (var.inBm)
        co_return co_await ctx.bmLoad(var.bmAddr + word);
    co_return co_await ctx.load(var.memAddr + word * 8);
}

coro::Task<void>
bvarStore(ThreadCtx &ctx, const BVar &var, std::uint64_t value,
          std::uint32_t word)
{
    WISYNC_ASSERT(word < var.words, "BVar word out of range");
    if (var.inBm)
        co_await ctx.bmStore(var.bmAddr + word, value);
    else
        co_await ctx.store(var.memAddr + word * 8, value);
}

coro::Task<std::uint64_t>
bvarFetchAdd(ThreadCtx &ctx, const BVar &var, std::uint64_t delta,
             std::uint32_t word)
{
    WISYNC_ASSERT(word < var.words, "BVar word out of range");
    if (var.inBm)
        co_return co_await ctx.bmFetchAdd(var.bmAddr + word, delta);
    co_return co_await ctx.fetchAdd(var.memAddr + word * 8, delta);
}

} // namespace wisync::core
