/**
 * @file
 * The Machine facade: one simulated WiSync (or baseline) chip.
 *
 * Owns the engine and every substrate, wires them per MachineConfig,
 * and manages simulated software threads (one per core by default;
 * the model follows Table 1's 1 GHz, 2-issue cores by charging
 * ceil(instructions / issueWidth) cycles for compute).
 */

#ifndef WISYNC_CORE_MACHINE_HH
#define WISYNC_CORE_MACHINE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "bm/bm_system.hh"
#include "core/machine_config.hh"
#include "coro/primitives.hh"
#include "coro/task.hh"
#include "mem/mem_system.hh"
#include "noc/mesh.hh"
#include "sim/engine.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace wisync::core {

class Machine;

/**
 * Per-thread execution context handed to workload bodies.
 *
 * Thin, allocation-free wrappers over the machine's subsystems plus
 * the compute-time model.
 */
class ThreadCtx
{
  public:
    ThreadCtx(Machine &machine, sim::ThreadId tid, sim::NodeId node,
              sim::Pid pid)
        : machine_(machine), tid_(tid), node_(node), pid_(pid)
    {}

    sim::ThreadId tid() const { return tid_; }
    sim::NodeId node() const { return node_; }
    sim::Pid pid() const { return pid_; }
    Machine &machine() { return machine_; }

    /** Execute @p instructions of straight-line code. */
    coro::Task<void> compute(std::uint64_t instructions);

    // Regular (cacheable) memory ops. These forward the MemSystem
    // Access awaitables (frameless L1-hit fast path) unchanged; they
    // are awaited exactly like the Tasks they used to be.
    mem::MemSystem::Access<std::uint64_t> load(sim::Addr addr);
    mem::MemSystem::Access<void> store(sim::Addr addr,
                                       std::uint64_t value);
    mem::MemSystem::Access<std::uint64_t> fetchAdd(sim::Addr addr,
                                                   std::uint64_t d);
    mem::MemSystem::Access<std::uint64_t> swap(sim::Addr addr,
                                               std::uint64_t v);
    mem::MemSystem::Access<mem::CasResult> cas(sim::Addr addr,
                                               std::uint64_t expected,
                                               std::uint64_t desired);
    coro::Task<std::uint64_t> spinUntil(sim::Addr addr,
                                        std::function<bool(std::uint64_t)>
                                            pred);

    // Broadcast-memory ops (WiSync configs only).
    coro::Task<std::uint64_t> bmLoad(sim::BmAddr addr);
    coro::Task<void> bmStore(sim::BmAddr addr, std::uint64_t value);
    coro::Task<std::uint64_t> bmFetchAdd(sim::BmAddr addr, std::uint64_t d);
    coro::Task<std::uint64_t> bmTestAndSet(sim::BmAddr addr);
    coro::Task<bm::BmCasResult> bmCas(sim::BmAddr addr,
                                      std::uint64_t expected,
                                      std::uint64_t desired);
    coro::Task<std::array<std::uint64_t, 4>> bmBulkLoad(sim::BmAddr addr);
    coro::Task<void> bmBulkStore(sim::BmAddr addr,
                                 std::array<std::uint64_t, 4> values);
    coro::Task<std::uint64_t> bmSpinUntil(sim::BmAddr addr,
                                          std::function<bool(std::uint64_t)>
                                              pred);
    coro::Task<void> toneStore(sim::BmAddr addr);
    coro::Task<std::uint64_t> toneLoad(sim::BmAddr addr);

    /**
     * Context switch: the thread is descheduled for @p cycles plus
     * the OS switch overhead. While preempted, broadcast updates keep
     * landing in every BM replica, so the thread resumes with current
     * state (§5.2).
     */
    coro::Task<void> preempt(sim::Cycle cycles,
                             sim::Cycle switch_cost = 200);

    /**
     * Migrate this thread to @p new_node (§5.2). Legal because BM
     * state is identical on every node and caches stay coherent; the
     * thread simply resumes on the new core after the migration cost
     * (two context switches). Refused (ProtectionFault-style
     * std::runtime_error) while any tone barrier arms the current
     * node, because the Armed bit is per-node hardware state that
     * cannot follow the thread.
     */
    coro::Task<void> migrate(sim::NodeId new_node,
                             sim::Cycle migrate_cost = 400);

  private:
    Machine &machine_;
    sim::ThreadId tid_;
    sim::NodeId node_;
    sim::Pid pid_;
};

/** One simulated chip. */
class Machine
{
  public:
    explicit Machine(const MachineConfig &cfg);
    ~Machine(); // destroys live thread/transaction frames first

    /**
     * Return every subsystem to its post-construction state without
     * reallocating the subsystem graph, so one Machine can serve many
     * sweep points (construction is the wall-time bottleneck of tight
     * sweep loops).
     *
     * Contract: after reset() the machine is observationally identical
     * to a freshly constructed Machine(config()) — same RNG streams,
     * same event ordering, bit-identical stats and final memory/BM
     * contents for the same workload (locked in by
     * tests/test_machine_reset.cc). Legal at any point outside run():
     * in-flight threads and hardware transactions are destroyed
     * through the engine's detached-root registry.
     *
     * The overload taking a config may retime the machine (latencies,
     * seed, issue width, MAC backoff, multicast mode) but must keep
     * the structural shape — cfg.compatibleShape(config()) — since
     * caches, BM arrays and the mesh are not reallocated.
     */
    void reset();
    void reset(const MachineConfig &cfg);

    using ThreadBody = std::function<coro::Task<void>(ThreadCtx &)>;

    /**
     * Create a thread on @p node (PID @p pid) running @p body.
     * Threads spawned before run() start at cycle 0.
     */
    ThreadCtx &spawnThread(sim::NodeId node, ThreadBody body,
                           sim::Pid pid = 1);

    /**
     * Run until every spawned thread finishes (or @p limit).
     * @return true if all threads completed.
     */
    bool run(sim::Cycle limit = sim::kCycleMax);

    std::uint32_t liveThreads() const { return liveThreads_; }

    // Subsystem access.
    sim::Engine &engine() { return engine_; }
    noc::Mesh &mesh() { return *mesh_; }
    mem::Memory &memory() { return memory_; }
    mem::MemSystem &mem() { return *mem_; }

    /**
     * The Broadcast Memory system, or nullptr on wired configs. The
     * substrate is physically present on every machine (a structural
     * invariant that lets reset() move a machine between kinds);
     * whether the config exposes it is this gate.
     */
    bm::BmSystem *
    bm()
    {
        return cfg_.hasWireless() ? bm_.get() : nullptr;
    }
    const MachineConfig &config() const { return cfg_; }
    sim::Rng &rng() { return rng_; }

    /** Simple bump allocator for workload data in regular memory. */
    sim::Addr allocMem(std::uint64_t bytes, std::uint64_t align = 64);

    /**
     * Bump allocator over BM words; returns true and the address when
     * it fits, false when the BM is exhausted (caller falls back to
     * regular memory, as dedup/fluidanimate do in §6).
     */
    bool allocBm(std::uint32_t words, sim::BmAddr &out);

  private:
    /** Base of the workload bump allocator in regular memory. */
    static constexpr sim::Addr kMemBase = 0x1000'0000;

    MachineConfig cfg_;
    sim::Engine engine_;
    sim::Rng rng_;
    mem::Memory memory_;
    std::unique_ptr<noc::Mesh> mesh_;
    std::unique_ptr<mem::MemSystem> mem_;
    std::unique_ptr<bm::BmSystem> bm_;
    std::vector<std::unique_ptr<ThreadCtx>> threads_;
    std::uint32_t liveThreads_ = 0;
    sim::Addr nextMem_ = kMemBase;
    sim::BmAddr nextBm_ = 0;
};

} // namespace wisync::core

#endif // WISYNC_CORE_MACHINE_HH
