#include "core/machine.hh"

#include <utility>

#include "sim/logging.hh"

namespace wisync::core {

Machine::Machine(const MachineConfig &cfg) : cfg_(cfg), rng_(cfg.seed)
{
    WISYNC_FATAL_IF(cfg_.mesh.numNodes != cfg_.numCores,
                    "mesh size must equal core count (use "
                    "MachineConfig::make)");
    WISYNC_FATAL_IF(cfg_.numChips == 0 ||
                        cfg_.numCores % cfg_.numChips != 0,
                    "numCores must divide evenly among chips");
    mesh_ = std::make_unique<noc::Mesh>(engine_, cfg_.mesh);
    mem_ = std::make_unique<mem::MemSystem>(engine_, *mesh_, memory_,
                                            cfg_.numCores, cfg_.mem);
    // The wireless substrate is always built (it is small next to the
    // cache/directory arrays); whether the config exposes it is gated
    // in bm(). This makes every ConfigKind the same structural shape,
    // so a sweep over kinds runs on one reset-reused machine.
    bm_ = std::make_unique<bm::BmSystem>(engine_, cfg_.numCores, cfg_.bm,
                                         cfg_.wireless, rng_.fork(),
                                         cfg_.hasTone(), cfg_.numChips,
                                         cfg_.bridge);
}

Machine::~Machine()
{
    // Frames of live threads/transactions reference the subsystems
    // (mesh links, BM channels) through their local RAII guards;
    // destroy them while every subsystem is still alive. ~Engine would
    // otherwise do this after mesh_/mem_/bm_ are gone.
    engine_.destroyLiveRoots();
}

void
Machine::reset()
{
    reset(cfg_);
}

void
Machine::reset(const MachineConfig &cfg)
{
    WISYNC_FATAL_IF(!cfg.compatibleShape(cfg_),
                    "Machine::reset requires a shape-compatible config "
                    "(same kind/cores/cache/BM geometry)");
    WISYNC_FATAL_IF(cfg.numChips == 0 ||
                        cfg.numCores % cfg.numChips != 0,
                    "numCores must divide evenly among chips");
    cfg_ = cfg;
    // Engine first: destroys live thread/transaction frames (whose
    // teardown may touch subsystem mutexes) and drops every pending
    // event, so the subsystem resets below never orphan a waiter.
    engine_.reset();
    // Mirror the constructor's RNG draw order exactly: seed the
    // machine stream, then hand the BM system the first fork.
    rng_.reseed(cfg_.seed);
    memory_.clear();
    mesh_->reset(cfg_.mesh);
    mem_->reset(cfg_.mem);
    bm_->reset(cfg_.bm, cfg_.wireless, rng_.fork(), cfg_.hasTone(),
               cfg_.numChips, cfg_.bridge);
    threads_.clear();
    liveThreads_ = 0;
    nextMem_ = kMemBase;
    nextBm_ = 0;
}

ThreadCtx &
Machine::spawnThread(sim::NodeId node, ThreadBody body, sim::Pid pid)
{
    WISYNC_FATAL_IF(node >= cfg_.numCores, "thread node out of range");
    auto ctx = std::make_unique<ThreadCtx>(
        *this, static_cast<sim::ThreadId>(threads_.size()), node, pid);
    ThreadCtx *raw = ctx.get();
    threads_.push_back(std::move(ctx));
    ++liveThreads_;
    coro::spawnFn(
        engine_, 0,
        [](ThreadBody b, ThreadCtx *c,
           std::uint32_t *live) -> coro::Task<void> {
            co_await b(*c);
            --*live;
        },
        std::move(body), raw, &liveThreads_);
    return *raw;
}

bool
Machine::run(sim::Cycle limit)
{
    engine_.run(limit);
    return liveThreads_ == 0;
}

sim::Addr
Machine::allocMem(std::uint64_t bytes, std::uint64_t align)
{
    nextMem_ = (nextMem_ + align - 1) & ~(align - 1);
    const sim::Addr out = nextMem_;
    nextMem_ += bytes;
    return out;
}

bool
Machine::allocBm(std::uint32_t words, sim::BmAddr &out)
{
    WISYNC_ASSERT(cfg_.hasWireless(), "allocBm on a machine without BM");
    if (nextBm_ + words > bm_->config().words())
        return false;
    out = nextBm_;
    nextBm_ += words;
    return true;
}

coro::Task<void>
ThreadCtx::compute(std::uint64_t instructions)
{
    const auto width = machine_.config().issueWidth;
    const sim::Cycle cycles = (instructions + width - 1) / width;
    co_await coro::delay(machine_.engine(), cycles);
}

mem::MemSystem::Access<std::uint64_t>
ThreadCtx::load(sim::Addr addr)
{
    return machine_.mem().load(node_, addr);
}

mem::MemSystem::Access<void>
ThreadCtx::store(sim::Addr addr, std::uint64_t value)
{
    return machine_.mem().store(node_, addr, value);
}

mem::MemSystem::Access<std::uint64_t>
ThreadCtx::fetchAdd(sim::Addr addr, std::uint64_t d)
{
    return machine_.mem().fetchAdd(node_, addr, d);
}

mem::MemSystem::Access<std::uint64_t>
ThreadCtx::swap(sim::Addr addr, std::uint64_t v)
{
    return machine_.mem().swap(node_, addr, v);
}

mem::MemSystem::Access<mem::CasResult>
ThreadCtx::cas(sim::Addr addr, std::uint64_t expected, std::uint64_t desired)
{
    return machine_.mem().cas(node_, addr, expected, desired);
}

coro::Task<std::uint64_t>
ThreadCtx::spinUntil(sim::Addr addr, std::function<bool(std::uint64_t)> pred)
{
    return machine_.mem().spinUntil(node_, addr, std::move(pred));
}

coro::Task<std::uint64_t>
ThreadCtx::bmLoad(sim::BmAddr addr)
{
    return machine_.bm()->load(node_, pid_, addr);
}

coro::Task<void>
ThreadCtx::bmStore(sim::BmAddr addr, std::uint64_t value)
{
    return machine_.bm()->store(node_, pid_, addr, value);
}

coro::Task<std::uint64_t>
ThreadCtx::bmFetchAdd(sim::BmAddr addr, std::uint64_t d)
{
    return machine_.bm()->fetchAddRetry(node_, pid_, addr, d);
}

coro::Task<std::uint64_t>
ThreadCtx::bmTestAndSet(sim::BmAddr addr)
{
    return machine_.bm()->testAndSetRetry(node_, pid_, addr);
}

coro::Task<bm::BmCasResult>
ThreadCtx::bmCas(sim::BmAddr addr, std::uint64_t expected,
                 std::uint64_t desired)
{
    return machine_.bm()->cas(node_, pid_, addr, expected, desired);
}

coro::Task<std::array<std::uint64_t, 4>>
ThreadCtx::bmBulkLoad(sim::BmAddr addr)
{
    return machine_.bm()->bulkLoad(node_, pid_, addr);
}

coro::Task<void>
ThreadCtx::bmBulkStore(sim::BmAddr addr, std::array<std::uint64_t, 4> values)
{
    return machine_.bm()->bulkStore(node_, pid_, addr, values);
}

coro::Task<std::uint64_t>
ThreadCtx::bmSpinUntil(sim::BmAddr addr,
                       std::function<bool(std::uint64_t)> pred)
{
    return machine_.bm()->spinUntil(node_, pid_, addr, std::move(pred));
}

coro::Task<void>
ThreadCtx::toneStore(sim::BmAddr addr)
{
    return machine_.bm()->toneStore(node_, pid_, addr);
}

coro::Task<void>
ThreadCtx::preempt(sim::Cycle cycles, sim::Cycle switch_cost)
{
    // The core runs something else; our BM replica keeps receiving
    // broadcasts, and the caches stay coherent, so nothing else to do.
    co_await coro::delay(machine_.engine(), cycles + switch_cost);
}

coro::Task<void>
ThreadCtx::migrate(sim::NodeId new_node, sim::Cycle migrate_cost)
{
    WISYNC_FATAL_IF(new_node >= machine_.config().numCores,
                    "migration target out of range");
    if (machine_.bm() && machine_.bm()->anyToneArmedOn(node_)) {
        throw std::runtime_error(
            "cannot migrate: a tone barrier arms this node (§5.2)");
    }
    co_await coro::delay(machine_.engine(), migrate_cost);
    node_ = new_node;
}

coro::Task<std::uint64_t>
ThreadCtx::toneLoad(sim::BmAddr addr)
{
    return machine_.bm()->toneLoad(node_, pid_, addr);
}

} // namespace wisync::core
