#include "core/machine_config.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace wisync::core {

const char *
toString(ConfigKind kind)
{
    switch (kind) {
      case ConfigKind::Baseline:
        return "Baseline";
      case ConfigKind::BaselinePlus:
        return "Baseline+";
      case ConfigKind::WiSyncNoT:
        return "WiSyncNoT";
      case ConfigKind::WiSync:
        return "WiSync";
    }
    return "?";
}

const char *
toString(Variant variant)
{
    switch (variant) {
      case Variant::Default:
        return "Default";
      case Variant::SlowNet:
        return "SlowNet";
      case Variant::SlowNetL2:
        return "SlowNet+L2";
      case Variant::FastNet:
        return "FastNet";
      case Variant::SlowBmem:
        return "SlowBMEM";
    }
    return "?";
}

MachineConfig
MachineConfig::make(ConfigKind kind, std::uint32_t cores, Variant variant)
{
    WISYNC_FATAL_IF(cores == 0, "need at least one core");
    MachineConfig cfg;
    cfg.kind = kind;
    cfg.variant = variant;
    cfg.numCores = cores;
    cfg.mesh.numNodes = cores;
    cfg.mesh.treeMulticast = (kind == ConfigKind::BaselinePlus);

    switch (variant) {
      case Variant::Default:
        break;
      case Variant::SlowNet:
        cfg.mesh.hopCycles = 6;
        break;
      case Variant::SlowNetL2:
        cfg.mesh.hopCycles = 6;
        cfg.mem.l2RtCycles = 12;
        break;
      case Variant::FastNet:
        cfg.mesh.hopCycles = 2;
        break;
      case Variant::SlowBmem:
        cfg.bm.bmRtCycles = 4;
        break;
    }
    return cfg;
}

bool
MachineConfig::compatibleShape(const MachineConfig &other) const
{
    // kind is deliberately NOT structural: every machine carries the
    // full wired + wireless substrate, and reset() re-gates it, so a
    // sweep over the four kinds reuses one machine per core count.
    return numCores == other.numCores &&
           mesh.numNodes == other.mesh.numNodes &&
           mem.lineBytes == other.mem.lineBytes &&
           mem.l1SizeBytes == other.mem.l1SizeBytes &&
           mem.l1Assoc == other.mem.l1Assoc &&
           mem.l2BankSizeBytes == other.mem.l2BankSizeBytes &&
           mem.l2Assoc == other.mem.l2Assoc &&
           mem.numMemCtrls == other.mem.numMemCtrls &&
           mem.dramOutstanding == other.mem.dramOutstanding &&
           bm.bmBytes == other.bm.bmBytes &&
           bm.allocSlots == other.bm.allocSlots;
}

std::string
MachineConfig::describe() const
{
    std::string out = toString(kind);
    out += " cores=" + std::to_string(numCores);
    // Only off the default, so single-chip output stays byte-identical
    // to pre-multichip builds.
    if (numChips > 1) {
        out += " chips=" + std::to_string(numChips);
        // The bridge knobs change multi-chip behavior, so two sweep
        // points differing only in bridge config must not print
        // identical labels (they used to: the lossy-knob rule below
        // had not been applied to the bridge).
        char buf[128];
        std::snprintf(buf, sizeof(buf), " bridge=lat%llu,w%u",
                      static_cast<unsigned long long>(
                          bridge.latencyCycles),
                      bridge.widthBits);
        out += buf;
        if (bridge.lossPct > 0.0 || bridge.burst.enabled) {
            std::snprintf(
                buf, sizeof(buf),
                " bloss=%g%% back=%llu,%u,%u", bridge.lossPct,
                static_cast<unsigned long long>(bridge.ackTimeoutCycles),
                bridge.maxRetries, bridge.retryBackoffMaxExp);
            out += buf;
            if (bridge.burst.enabled) {
                std::snprintf(buf, sizeof(buf),
                              " bburst=g%g%%/b%g%%,pgb=%g,pbg=%g",
                              bridge.burst.goodLossPct,
                              bridge.burst.badLossPct,
                              bridge.burst.pGoodToBad,
                              bridge.burst.pBadToGood);
                out += buf;
            }
        }
    }
    out += " variant=";
    out += toString(variant);
    // Mentioned only off the default so pre-MAC-subsystem harness
    // output stays byte-identical on BRS configs.
    if (wireless.macKind != wireless::MacKind::Brs) {
        out += " mac=";
        out += toString(wireless.macKind);
    }
    // Likewise: the loss model only appears when enabled, keeping
    // ideal-channel harness output byte-identical to pre-loss builds.
    if (wireless.lossPct > 0.0 || wireless.berFromSnr) {
        // The retry knobs change behavior whenever the channel is
        // lossy, so two sweep points differing only in them must not
        // print identical labels.
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      " loss=%g%%%s ack=%u retries=%u boexp=%u",
                      wireless.lossPct, wireless.berFromSnr ? "+snr" : "",
                      wireless.ackTimeoutCycles, wireless.maxRetries,
                      wireless.retryBackoffMaxExp);
        out += buf;
    }
    // Burst and per-channel-profile knobs, likewise only off their
    // defaults (the i.i.d./flat-spectrum labels are unchanged).
    if (wireless.burst.enabled) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      " burst=g%g%%/b%g%%,pgb=%g,pbg=%g",
                      wireless.burst.goodLossPct,
                      wireless.burst.badLossPct, wireless.burst.pGoodToBad,
                      wireless.burst.pBadToGood);
        out += buf;
    }
    if (wireless.channelLossBaseDb != 0.0 ||
        wireless.channelLossStepDb != 0.0) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), " chloss=%g+%gdB",
                      wireless.channelLossBaseDb,
                      wireless.channelLossStepDb);
        out += buf;
    }
    return out;
}

} // namespace wisync::core
