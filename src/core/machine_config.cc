#include "core/machine_config.hh"

#include <bit>
#include <cstdio>

#include "sim/logging.hh"

namespace wisync::core {

const char *
toString(ConfigKind kind)
{
    switch (kind) {
      case ConfigKind::Baseline:
        return "Baseline";
      case ConfigKind::BaselinePlus:
        return "Baseline+";
      case ConfigKind::WiSyncNoT:
        return "WiSyncNoT";
      case ConfigKind::WiSync:
        return "WiSync";
    }
    return "?";
}

const char *
toString(Variant variant)
{
    switch (variant) {
      case Variant::Default:
        return "Default";
      case Variant::SlowNet:
        return "SlowNet";
      case Variant::SlowNetL2:
        return "SlowNet+L2";
      case Variant::FastNet:
        return "FastNet";
      case Variant::SlowBmem:
        return "SlowBMEM";
    }
    return "?";
}

MachineConfig
MachineConfig::make(ConfigKind kind, std::uint32_t cores, Variant variant)
{
    WISYNC_FATAL_IF(cores == 0, "need at least one core");
    MachineConfig cfg;
    cfg.kind = kind;
    cfg.variant = variant;
    cfg.numCores = cores;
    cfg.mesh.numNodes = cores;
    cfg.mesh.treeMulticast = (kind == ConfigKind::BaselinePlus);

    switch (variant) {
      case Variant::Default:
        break;
      case Variant::SlowNet:
        cfg.mesh.hopCycles = 6;
        break;
      case Variant::SlowNetL2:
        cfg.mesh.hopCycles = 6;
        cfg.mem.l2RtCycles = 12;
        break;
      case Variant::FastNet:
        cfg.mesh.hopCycles = 2;
        break;
      case Variant::SlowBmem:
        cfg.bm.bmRtCycles = 4;
        break;
    }
    return cfg;
}

bool
MachineConfig::compatibleShape(const MachineConfig &other) const
{
    // kind is deliberately NOT structural: every machine carries the
    // full wired + wireless substrate, and reset() re-gates it, so a
    // sweep over the four kinds reuses one machine per core count.
    return numCores == other.numCores &&
           mesh.numNodes == other.mesh.numNodes &&
           mem.lineBytes == other.mem.lineBytes &&
           mem.l1SizeBytes == other.mem.l1SizeBytes &&
           mem.l1Assoc == other.mem.l1Assoc &&
           mem.l2BankSizeBytes == other.mem.l2BankSizeBytes &&
           mem.l2Assoc == other.mem.l2Assoc &&
           mem.numMemCtrls == other.mem.numMemCtrls &&
           mem.dramOutstanding == other.mem.dramOutstanding &&
           bm.bmBytes == other.bm.bmBytes &&
           bm.allocSlots == other.bm.allocSlots;
}

namespace {

/**
 * FNV-1a over a canonical little-endian byte stream. Every field is
 * widened to a fixed 8-byte representation first, so the fingerprint
 * never depends on host struct layout, padding or endianness of
 * in-memory representations — only on the declared field order below.
 */
struct Fnv1a
{
    std::uint64_t h = 0xCBF29CE484222325ull;

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xFF;
            h *= 0x100000001B3ull;
        }
    }
    void dbl(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void b(bool v) { u64(v ? 1 : 0); }
};

} // namespace

std::uint64_t
MachineConfig::fingerprint() const
{
    Fnv1a f;
    // Version tag: kFingerprintVersion is bumped when the stream
    // layout below changes, so stale persisted fingerprints (the
    // on-disk result cache) can never alias a new layout.
    f.u64(0x5753464700ull + kFingerprintVersion); // "WSFG" NN

    f.u64(static_cast<std::uint64_t>(kind));
    f.u64(static_cast<std::uint64_t>(variant));
    f.u64(numCores);
    f.u64(numChips);
    f.u64(issueWidth);
    f.u64(seed);

    f.u64(mem.lineBytes);
    f.u64(mem.l1SizeBytes);
    f.u64(mem.l1Assoc);
    f.u64(mem.l1RtCycles);
    f.u64(mem.l2BankSizeBytes);
    f.u64(mem.l2Assoc);
    f.u64(mem.l2RtCycles);
    f.u64(mem.dramRtCycles);
    f.u64(mem.numMemCtrls);
    f.u64(mem.dramOutstanding);
    f.u64(mem.ctrlBits);
    f.u64(mem.dataBits);
    f.b(mem.fastpath);

    f.u64(mesh.numNodes);
    f.u64(mesh.hopCycles);
    f.u64(mesh.linkBits);
    f.b(mesh.treeMulticast);
    f.b(mesh.fastpath);

    f.u64(wireless.dataCycles);
    f.u64(wireless.bulkCycles);
    f.u64(wireless.collisionCycles);
    f.b(wireless.fastpath);
    f.dbl(wireless.lossPct);
    f.b(wireless.berFromSnr);
    f.dbl(wireless.txPowerDbm);
    f.u64(wireless.ackTimeoutCycles);
    f.u64(wireless.maxRetries);
    f.u64(wireless.retryBackoffMaxExp);
    f.b(wireless.burst.enabled);
    f.dbl(wireless.burst.goodLossPct);
    f.dbl(wireless.burst.badLossPct);
    f.dbl(wireless.burst.pGoodToBad);
    f.dbl(wireless.burst.pBadToGood);
    f.dbl(wireless.channelLossBaseDb);
    f.dbl(wireless.channelLossStepDb);
    f.u64(wireless.spectrumSlots);
    f.u64(static_cast<std::uint64_t>(wireless.macKind));
    f.u64(wireless.maxBackoffExp);
    f.u64(wireless.tokenPassCycles);
    f.u64(wireless.tokenFrameBits);
    f.u64(wireless.tokenHoldCycles);
    f.u64(wireless.adaptWindowEvents);
    f.u64(wireless.adaptHiPct);
    f.u64(wireless.adaptLoPct);

    f.u64(bm.bmBytes);
    f.u64(bm.bmRtCycles);
    f.u64(bm.rmwModifyCycles);
    f.u64(bm.allocSlots);

    f.u64(bridge.latencyCycles);
    f.u64(bridge.widthBits);
    f.u64(bridge.headerBits);
    f.dbl(bridge.lossPct);
    f.b(bridge.burst.enabled);
    f.dbl(bridge.burst.goodLossPct);
    f.dbl(bridge.burst.badLossPct);
    f.dbl(bridge.burst.pGoodToBad);
    f.dbl(bridge.burst.pBadToGood);
    f.u64(bridge.ackTimeoutCycles);
    f.u64(bridge.maxRetries);
    f.u64(bridge.retryBackoffMaxExp);

    return f.h;
}

std::string
MachineConfig::describe() const
{
    std::string out = toString(kind);
    out += " cores=" + std::to_string(numCores);
    // Only off the default, so single-chip output stays byte-identical
    // to pre-multichip builds.
    if (numChips > 1) {
        out += " chips=" + std::to_string(numChips);
        // The bridge knobs change multi-chip behavior, so two sweep
        // points differing only in bridge config must not print
        // identical labels (they used to: the lossy-knob rule below
        // had not been applied to the bridge).
        char buf[128];
        std::snprintf(buf, sizeof(buf), " bridge=lat%llu,w%u",
                      static_cast<unsigned long long>(
                          bridge.latencyCycles),
                      bridge.widthBits);
        out += buf;
        if (bridge.lossPct > 0.0 || bridge.burst.enabled) {
            std::snprintf(
                buf, sizeof(buf),
                " bloss=%g%% back=%llu,%u,%u", bridge.lossPct,
                static_cast<unsigned long long>(bridge.ackTimeoutCycles),
                bridge.maxRetries, bridge.retryBackoffMaxExp);
            out += buf;
            if (bridge.burst.enabled) {
                std::snprintf(buf, sizeof(buf),
                              " bburst=g%g%%/b%g%%,pgb=%g,pbg=%g",
                              bridge.burst.goodLossPct,
                              bridge.burst.badLossPct,
                              bridge.burst.pGoodToBad,
                              bridge.burst.pBadToGood);
                out += buf;
            }
        }
    }
    out += " variant=";
    out += toString(variant);
    // Mentioned only off the default so pre-MAC-subsystem harness
    // output stays byte-identical on BRS configs.
    if (wireless.macKind != wireless::MacKind::Brs) {
        out += " mac=";
        out += toString(wireless.macKind);
    }
    // Likewise: the loss model only appears when enabled, keeping
    // ideal-channel harness output byte-identical to pre-loss builds.
    if (wireless.lossPct > 0.0 || wireless.berFromSnr) {
        // The retry knobs change behavior whenever the channel is
        // lossy, so two sweep points differing only in them must not
        // print identical labels.
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      " loss=%g%%%s ack=%u retries=%u boexp=%u",
                      wireless.lossPct, wireless.berFromSnr ? "+snr" : "",
                      wireless.ackTimeoutCycles, wireless.maxRetries,
                      wireless.retryBackoffMaxExp);
        out += buf;
    }
    // Burst and per-channel-profile knobs, likewise only off their
    // defaults (the i.i.d./flat-spectrum labels are unchanged).
    if (wireless.burst.enabled) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      " burst=g%g%%/b%g%%,pgb=%g,pbg=%g",
                      wireless.burst.goodLossPct,
                      wireless.burst.badLossPct, wireless.burst.pGoodToBad,
                      wireless.burst.pBadToGood);
        out += buf;
    }
    if (wireless.channelLossBaseDb != 0.0 ||
        wireless.channelLossStepDb != 0.0) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), " chloss=%g+%gdB",
                      wireless.channelLossBaseDb,
                      wireless.channelLossStepDb);
        out += buf;
    }
    return out;
}

} // namespace wisync::core
