/**
 * @file
 * Chip configuration: the paper's Tables 1, 2 and 6 as code.
 */

#ifndef WISYNC_CORE_MACHINE_CONFIG_HH
#define WISYNC_CORE_MACHINE_CONFIG_HH

#include <cstdint>
#include <string>

#include "bm/bm_system.hh"
#include "mem/mem_system.hh"
#include "noc/chip_bridge.hh"
#include "noc/mesh.hh"
#include "wireless/data_channel.hh"

namespace wisync::core {

/** The four architecture configurations compared in Table 2. */
enum class ConfigKind
{
    /** Plain manycore: CAS locks + centralized barrier. */
    Baseline,
    /** + virtual-tree broadcast NoC, MCS locks, tournament barriers. */
    BaselinePlus,
    /** WiSync without the Tone channel. */
    WiSyncNoT,
    /** Full WiSync: Data + Tone channels. */
    WiSync,
};

/** The memory/network variants of Table 6 (sensitivity study). */
enum class Variant
{
    Default,  // L2 RT 6, BM RT 2, hop 4
    SlowNet,  // hop 6
    SlowNetL2, // hop 6, L2 RT 12
    FastNet,  // hop 2
    SlowBmem, // BM RT 4
};

const char *toString(ConfigKind kind);
const char *toString(Variant variant);

/** Everything needed to build a Machine. */
struct MachineConfig
{
    ConfigKind kind = ConfigKind::WiSync;
    Variant variant = Variant::Default;
    std::uint32_t numCores = 64;
    /**
     * Chips in the package. numCores counts the whole machine and must
     * divide evenly; chip c owns the contiguous node range
     * [c * coresPerChip(), (c+1) * coresPerChip()). Each chip gets its
     * own BM replica group, tone channel and die geometry; the
     * FrequencyPlan maps chips onto data channels and the ChipBridge
     * carries global BM updates between chips. Behavioral, not
     * structural: reset() may change it freely on one machine.
     */
    std::uint32_t numChips = 1;
    /** Issue width of the 1 GHz OoO core (Table 1: 2-issue). */
    std::uint32_t issueWidth = 2;
    std::uint64_t seed = 42;

    mem::MemConfig mem;
    noc::MeshConfig mesh;
    wireless::WirelessConfig wireless;
    bm::BmConfig bm;
    noc::BridgeConfig bridge;

    std::uint32_t coresPerChip() const { return numCores / numChips; }
    std::uint32_t
    chipOf(sim::NodeId node) const
    {
        return node / coresPerChip();
    }

    bool
    hasWireless() const
    {
        return kind == ConfigKind::WiSyncNoT || kind == ConfigKind::WiSync;
    }
    bool hasTone() const { return kind == ConfigKind::WiSync; }

    /** Build a coherent config for @p kind / @p cores / @p variant. */
    static MachineConfig make(ConfigKind kind, std::uint32_t cores,
                              Variant variant = Variant::Default);

    /**
     * Toggle the uncontended fast paths on all three subsystem layers
     * (mesh routes, L1 hits, wireless broadcasts) together. Behavioral
     * and shape-compatible: a reset may flip it freely; simulated
     * cycles are identical either way (the env kill switch
     * WISYNC_NO_FASTPATH=1 sets the same flags at config build time).
     */
    void
    setFastpath(bool on)
    {
        mesh.fastpath = on;
        mem.fastpath = on;
        wireless.fastpath = on;
    }

    /**
     * True when a Machine built from this config can be reused for
     * @p other via Machine::reset: the same structural geometry (core
     * count, cache/BM capacities, controller counts). The kind,
     * timing knobs, seed and issue width may differ freely — reset()
     * re-applies them (the wireless substrate is always built and
     * merely gated per kind).
     */
    bool compatibleShape(const MachineConfig &other) const;

    /**
     * Full field-wise equality over every knob, including the
     * sub-configs. Two equal configs simulate bit-identically (the
     * determinism contract), which is what makes the service result
     * cache exact.
     */
    bool operator==(const MachineConfig &) const = default;

    /**
     * Canonical 64-bit fingerprint of the whole config: FNV-1a over a
     * fixed-order, fixed-width serialization of every field (doubles
     * by bit pattern). Process-stable and run-stable — no addresses,
     * no unordered iteration — so it can key the service ResultCache,
     * name shard work items across worker processes, and be compared
     * between hosts. operator== equal configs always fingerprint
     * equal; the service additionally verifies equality on cache hits
     * so a (astronomically unlikely) 64-bit collision degrades to a
     * miss, never a wrong result. Adding a MachineConfig field
     * requires extending the fingerprint stream in machine_config.cc
     * (the FuzzSweepService tests catch a field that changes results
     * without changing the fingerprint).
     */
    std::uint64_t fingerprint() const;

    /**
     * Version of the fingerprint stream layout. Bumped whenever the
     * field stream in machine_config.cc changes shape, so anything
     * persisted under an old layout (the on-disk result cache) can
     * never alias a new one. Folded into the stream's leading tag and
     * into service::CacheStore's file-format version.
     */
    static constexpr std::uint64_t kFingerprintVersion = 1;

    /** Human-readable one-liner for harness output. */
    std::string describe() const;
};

} // namespace wisync::core

#endif // WISYNC_CORE_MACHINE_CONFIG_HH
