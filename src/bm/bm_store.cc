#include "bm/bm_store.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace wisync::bm {

BmStore::BmStore(sim::Engine &engine, std::uint32_t num_nodes,
                 std::uint32_t words_per_node)
    : engine_(engine), numNodes_(num_nodes), words_(words_per_node),
      watches_(engine)
{
    replicas_.assign(numNodes_, std::vector<std::uint64_t>(words_, 0));
    tags_.assign(words_, kNoPid);
    scopes_.assign(words_, BmScope::Global);
}

std::uint64_t
BmStore::read(sim::NodeId node, sim::BmAddr addr) const
{
    WISYNC_ASSERT(node < numNodes_ && addr < words_, "BM read OOB");
    return replicas_[node][addr];
}

void
BmStore::writeAll(sim::BmAddr addr, std::uint64_t value)
{
    WISYNC_ASSERT(addr < words_, "BM write OOB");
    for (std::uint32_t n = 0; n < numNodes_; ++n)
        replicas_[n][addr] = value;
    for (std::uint32_t n = 0; n < numNodes_; ++n)
        if (coro::VersionedEvent *ev = watches_.find(watchKey(n, addr)))
            ev->raise();
}

void
BmStore::writeChip(sim::NodeId first, std::uint32_t count, sim::BmAddr addr,
                   std::uint64_t value)
{
    WISYNC_ASSERT(addr < words_ && first + count <= numNodes_,
                  "BM chip write OOB");
    for (std::uint32_t n = first; n < first + count; ++n)
        replicas_[n][addr] = value;
    for (std::uint32_t n = first; n < first + count; ++n)
        if (coro::VersionedEvent *ev = watches_.find(watchKey(n, addr)))
            ev->raise();
}

void
BmStore::toggleAll(sim::BmAddr addr)
{
    WISYNC_ASSERT(addr < words_, "BM toggle OOB");
    // The tone-release location "can only take the values zero or
    // non-zero" (§4.2.2).
    writeAll(addr, replicas_[0][addr] == 0 ? 1 : 0);
}

void
BmStore::toggleChip(sim::NodeId first, std::uint32_t count, sim::BmAddr addr)
{
    WISYNC_ASSERT(addr < words_ && first + count <= numNodes_,
                  "BM chip toggle OOB");
    writeChip(first, count, addr, replicas_[first][addr] == 0 ? 1 : 0);
}

bool
BmStore::replicasConsistent() const
{
    for (std::uint32_t n = 1; n < numNodes_; ++n)
        if (replicas_[n] != replicas_[0])
            return false;
    return true;
}

bool
BmStore::replicasConsistent(std::uint32_t cores_per_chip) const
{
    if (cores_per_chip == 0 || cores_per_chip >= numNodes_)
        return replicasConsistent();
    for (std::uint32_t n = 0; n < numNodes_; ++n) {
        const std::uint32_t chip_first = n - n % cores_per_chip;
        if (n != chip_first && replicas_[n] != replicas_[chip_first])
            return false;
    }
    for (std::uint32_t w = 0; w < words_; ++w) {
        if (scopes_[w] != BmScope::Global)
            continue;
        for (std::uint32_t first = cores_per_chip; first < numNodes_;
             first += cores_per_chip)
            if (replicas_[first][w] != replicas_[0][w])
                return false;
    }
    return true;
}

void
BmStore::setTag(sim::BmAddr addr, sim::Pid pid)
{
    WISYNC_ASSERT(addr < words_, "BM tag OOB");
    tags_[addr] = pid;
}

sim::Pid
BmStore::tag(sim::BmAddr addr) const
{
    WISYNC_ASSERT(addr < words_, "BM tag OOB");
    return tags_[addr];
}

void
BmStore::setScope(sim::BmAddr addr, BmScope scope)
{
    WISYNC_ASSERT(addr < words_, "BM scope OOB");
    scopes_[addr] = scope;
}

BmScope
BmStore::scope(sim::BmAddr addr) const
{
    WISYNC_ASSERT(addr < words_, "BM scope OOB");
    return scopes_[addr];
}

void
BmStore::reset()
{
    for (auto &replica : replicas_)
        std::fill(replica.begin(), replica.end(), 0);
    std::fill(tags_.begin(), tags_.end(), kNoPid);
    std::fill(scopes_.begin(), scopes_.end(), BmScope::Global);
    watches_.reset(); // recycles events instead of freeing them
}

std::uint64_t
BmStore::fingerprint() const
{
    std::uint64_t acc = 0x9E3779B97F4A7C15ull;
    for (std::uint32_t n = 0; n < numNodes_; ++n)
        for (std::uint32_t w = 0; w < words_; ++w)
            acc += sim::mix64((std::uint64_t{n} << 32 | w) ^
                              sim::mix64(replicas_[n][w]));
    for (std::uint32_t w = 0; w < words_; ++w)
        acc += sim::mix64(~std::uint64_t{w} ^ sim::mix64(tags_[w]));
    return acc;
}

coro::VersionedEvent &
BmStore::watch(sim::NodeId node, sim::BmAddr addr)
{
    return watches_[watchKey(node, addr)];
}

} // namespace wisync::bm
