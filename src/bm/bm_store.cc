#include "bm/bm_store.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace wisync::bm {

BmStore::BmStore(sim::Engine &engine, std::uint32_t num_nodes,
                 std::uint32_t words_per_node)
    : engine_(engine), numNodes_(num_nodes), words_(words_per_node)
{
    replicas_.assign(numNodes_, std::vector<std::uint64_t>(words_, 0));
    tags_.assign(words_, kNoPid);
}

std::uint64_t
BmStore::read(sim::NodeId node, sim::BmAddr addr) const
{
    WISYNC_ASSERT(node < numNodes_ && addr < words_, "BM read OOB");
    return replicas_[node][addr];
}

void
BmStore::writeAll(sim::BmAddr addr, std::uint64_t value)
{
    WISYNC_ASSERT(addr < words_, "BM write OOB");
    for (std::uint32_t n = 0; n < numNodes_; ++n)
        replicas_[n][addr] = value;
    for (std::uint32_t n = 0; n < numNodes_; ++n) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(addr) << 10) | n;
        if (const auto it = watches_.find(key); it != watches_.end())
            it->second->raise();
    }
}

void
BmStore::toggleAll(sim::BmAddr addr)
{
    WISYNC_ASSERT(addr < words_, "BM toggle OOB");
    // The tone-release location "can only take the values zero or
    // non-zero" (§4.2.2).
    writeAll(addr, replicas_[0][addr] == 0 ? 1 : 0);
}

bool
BmStore::replicasConsistent() const
{
    for (std::uint32_t n = 1; n < numNodes_; ++n)
        if (replicas_[n] != replicas_[0])
            return false;
    return true;
}

void
BmStore::setTag(sim::BmAddr addr, sim::Pid pid)
{
    WISYNC_ASSERT(addr < words_, "BM tag OOB");
    tags_[addr] = pid;
}

sim::Pid
BmStore::tag(sim::BmAddr addr) const
{
    WISYNC_ASSERT(addr < words_, "BM tag OOB");
    return tags_[addr];
}

void
BmStore::reset()
{
    for (auto &replica : replicas_)
        std::fill(replica.begin(), replica.end(), 0);
    std::fill(tags_.begin(), tags_.end(), kNoPid);
    watches_.clear();
}

std::uint64_t
BmStore::fingerprint() const
{
    std::uint64_t acc = 0x9E3779B97F4A7C15ull;
    for (std::uint32_t n = 0; n < numNodes_; ++n)
        for (std::uint32_t w = 0; w < words_; ++w)
            acc += sim::mix64((std::uint64_t{n} << 32 | w) ^
                              sim::mix64(replicas_[n][w]));
    for (std::uint32_t w = 0; w < words_; ++w)
        acc += sim::mix64(~std::uint64_t{w} ^ sim::mix64(tags_[w]));
    return acc;
}

coro::VersionedEvent &
BmStore::watch(sim::NodeId node, sim::BmAddr addr)
{
    const std::uint64_t key = (static_cast<std::uint64_t>(addr) << 10) | node;
    auto &slot = watches_[key];
    if (!slot)
        slot = std::make_unique<coro::VersionedEvent>(engine_);
    return *slot;
}

} // namespace wisync::bm
