/**
 * @file
 * The Broadcast Memory controller: WiSync's instruction surface.
 *
 * Implements the paper's §4.2 semantics on top of the Data channel,
 * Tone channel and BmStore:
 *
 *  - Plain loads read the local replica (2-cycle BM round trip) and
 *    always succeed.
 *  - Stores broadcast first; only when the wireless transfer succeeds
 *    is any replica (including the local one) updated, which yields a
 *    chip-wide total order of BM writes. The Write Completion Bit
 *    (WCB) semantics are implicit: a store coroutine resolves exactly
 *    when WCB would be set.
 *  - RMW instructions (test&set, fetch&inc, fetch&add, CAS) read the
 *    local replica, modify in the pipeline, and attempt the broadcast.
 *    If a remote store to the same address arrives in between, the
 *    Atomicity Failure Bit (AFB) is set and the write is aborted: the
 *    instruction completes without broadcasting or updating the BM,
 *    and software must retry (Fig. 4(a,b)).
 *  - Bulk load/store move 4 consecutive words; a bulk broadcast takes
 *    15 cycles instead of 4x5 (§4.1).
 *  - tone_st / tone_ld drive the Tone channel's hardware barrier
 *    (§4.2.2); the release toggles the barrier word in all replicas.
 *  - Every access checks the entry's PID tag (§4.4); a mismatch throws
 *    ProtectionFault.
 *
 * Multi-chip machines (numChips > 1) generalize this machine-wide:
 * each chip owns a contiguous block of coresPerChip nodes, its own BM
 * replica group, tone channel and die geometry (RfChannelModel); the
 * FrequencyPlan maps chips onto data channels so separate spectrum
 * slots transmit concurrently (the channel is the arbitration domain).
 * A broadcast commits on the transmitting chip at its delivery instant
 * and crosses the ChipBridge to the other replica groups afterwards;
 * per-(chip, word) version clocks make the re-apply last-writer-wins
 * and extend the AFB contract across chips: an RMW only commits if its
 * chip's replica of the word was globally current at the delivery
 * instant — otherwise AFB is raised and software retries once the
 * bridged update has landed. Words marked chip-local in the BmStore
 * (barrier counters and the like) skip the bridge entirely and keep
 * exact single-chip semantics within their chip.
 */

#ifndef WISYNC_BM_BM_SYSTEM_HH
#define WISYNC_BM_BM_SYSTEM_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bm/bm_store.hh"
#include "coro/primitives.hh"
#include "coro/task.hh"
#include "noc/chip_bridge.hh"
#include "sim/engine.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "wireless/data_channel.hh"
#include "wireless/frequency_plan.hh"
#include "wireless/mac/mac_protocol.hh"
#include "wireless/rf_model.hh"
#include "wireless/tone_channel.hh"

namespace wisync::bm {

/** BM geometry/timing knobs (Table 1 defaults). */
struct BmConfig
{
    /** Per-node BM capacity (16 KB => 2048 64-bit entries). */
    std::uint32_t bmBytes = 16 * 1024;
    /** BM access round trip, cycles. */
    std::uint32_t bmRtCycles = 2;
    /** Pipeline modify stage of an RMW, cycles. */
    std::uint32_t rmwModifyCycles = 1;
    /** AllocB/ActiveB capacity for tone barriers. */
    std::uint32_t allocSlots = 16;

    /** Field-wise equality (MachineConfig::operator== / fingerprint). */
    bool operator==(const BmConfig &) const = default;

    std::uint32_t words() const { return bmBytes / 8; }
};

/** PID-tag mismatch on a BM access (§4.4). */
class ProtectionFault : public std::runtime_error
{
  public:
    ProtectionFault(sim::BmAddr addr, sim::Pid pid)
        : std::runtime_error("BM protection fault"), addr(addr), pid(pid)
    {}
    sim::BmAddr addr;
    sim::Pid pid;
};

/** Result of a BM RMW instruction (value + AFB register). */
struct RmwResult
{
    std::uint64_t oldValue = 0;
    /** AFB: set -> the write never occurred; retry the instruction. */
    bool atomicityFailed = false;
};

/** Result of a BM CAS (Fig. 4(b) protocol). */
struct BmCasResult
{
    std::uint64_t oldValue = 0;
    /** Comparison outcome ("CAS returns zero if contents differ"). */
    bool compared = false;
    /** AFB: even a successful comparison may fail atomically. */
    bool atomicityFailed = false;

    bool succeeded() const { return compared && !atomicityFailed; }
};

/** BM-level statistics. */
struct BmStats
{
    sim::Counter loads;
    sim::Counter stores;
    sim::Counter bulkStores;
    sim::Counter rmws;
    sim::Counter afbFailures;
    /** Controller broadcasts (stores, allocs, tone announcements) the
     *  reliability layer gave up on and the controller re-issued —
     *  graceful degradation under a lossy channel: the operation just
     *  completes later, replicas never diverge. */
    sim::Counter sendReissues;
    sim::Counter toneStores;
    sim::Counter toneAnnouncements;
    sim::Counter protectionFaults;
    /** Multi-chip: RMWs aborted because the local replica was stale
     *  (a bridged update had not landed yet) — a subset of
     *  afbFailures, counted separately for the figure family. */
    sim::Counter staleRmwAborts;

    /** Zero everything (assignment cannot miss a late-added field). */
    void reset() { *this = {}; }
};

/**
 * The machine's Broadcast Memory system: replicated stores, per-node
 * MACs on the chips' Data channels, per-chip Tone channels, and (for
 * numChips > 1) the inter-chip bridge.
 */
class BmSystem
{
  public:
    /**
     * @param with_tone  False for WiSyncNoT (no Tone channel; tone_st
     *                   and tone barriers are unavailable).
     * @param num_chips  Chips in the package; num_nodes must divide
     *                   evenly. 1 keeps the exact single-chip machine.
     */
    BmSystem(sim::Engine &engine, std::uint32_t num_nodes,
             const BmConfig &cfg, const wireless::WirelessConfig &wcfg,
             sim::Rng rng, bool with_tone = true,
             std::uint32_t num_chips = 1,
             const noc::BridgeConfig &bridge_cfg = {});

    // ---- Instruction surface -------------------------------------

    /** Plain BM load: local replica, always succeeds. */
    coro::Task<std::uint64_t> load(sim::NodeId node, sim::Pid pid,
                                   sim::BmAddr addr);

    /** Plain BM store: broadcast, then update all replicas. */
    coro::Task<void> store(sim::NodeId node, sim::Pid pid,
                           sim::BmAddr addr, std::uint64_t value);

    /** Bulk load of 4 consecutive words from the local replica. */
    coro::Task<std::array<std::uint64_t, 4>> bulkLoad(sim::NodeId node,
                                                      sim::Pid pid,
                                                      sim::BmAddr addr);

    /** Bulk store of 4 consecutive words (one 15-cycle broadcast). */
    coro::Task<void> bulkStore(sim::NodeId node, sim::Pid pid,
                               sim::BmAddr addr,
                               std::array<std::uint64_t, 4> values);

    /** fetch&add (fetch&inc with delta=1). AFB semantics apply. */
    coro::Task<RmwResult> fetchAdd(sim::NodeId node, sim::Pid pid,
                                   sim::BmAddr addr, std::uint64_t delta);

    /** test&set: writes 1. AFB semantics apply. */
    coro::Task<RmwResult> testAndSet(sim::NodeId node, sim::Pid pid,
                                     sim::BmAddr addr);

    /** Compare-and-swap (Fig. 4(b)). */
    coro::Task<BmCasResult> cas(sim::NodeId node, sim::Pid pid,
                                sim::BmAddr addr, std::uint64_t expected,
                                std::uint64_t desired);

    /**
     * Convenience retry loops (the software patterns of Fig. 4):
     * repeat the RMW until AFB is clear.
     */
    coro::Task<std::uint64_t> fetchAddRetry(sim::NodeId node, sim::Pid pid,
                                            sim::BmAddr addr,
                                            std::uint64_t delta);
    coro::Task<std::uint64_t> testAndSetRetry(sim::NodeId node,
                                              sim::Pid pid,
                                              sim::BmAddr addr);

    // ---- Tone-channel instructions (§4.2.2) ----------------------

    /** tone_st: arrival at the tone barrier on @p addr. */
    coro::Task<void> toneStore(sim::NodeId node, sim::Pid pid,
                               sim::BmAddr addr);

    /** tone_ld: plain local read of the barrier word. */
    coro::Task<std::uint64_t> toneLoad(sim::NodeId node, sim::Pid pid,
                                       sim::BmAddr addr);

    // ---- Spin support ---------------------------------------------

    /** Event-driven spin on a BM word until pred(value). */
    coro::Task<std::uint64_t> spinUntil(sim::NodeId node, sim::Pid pid,
                                        sim::BmAddr addr,
                                        std::function<bool(std::uint64_t)>
                                            pred);

    // ---- Allocation hooks (used by core::Os, §4.4) ----------------

    /** Tag a chunk of words with a PID (broadcast alloc message). */
    coro::Task<void> allocEntries(sim::NodeId node, sim::Pid pid,
                                  sim::BmAddr addr, std::uint32_t count);

    /** Release entries (broadcast dealloc message). */
    coro::Task<void> deallocEntries(sim::NodeId node, sim::BmAddr addr,
                                    std::uint32_t count);

    /**
     * Register a tone barrier; false if AllocB overflows or no tone.
     * @p armed is indexed by global node id; on a multi-chip machine
     * the armed nodes must all sit on one chip (the tone channel is
     * per-die hardware) — a spanning set returns false and the caller
     * falls back to a Data-channel barrier.
     */
    bool allocToneBarrier(sim::BmAddr addr, std::vector<bool> armed);
    void deallocToneBarrier(sim::BmAddr addr);

    // ---- Introspection --------------------------------------------

    BmStore &storeArray() { return store_; }
    /** Channel 0 (the only channel on single-chip machines). */
    wireless::DataChannel &dataChannel() { return *channels_[0]; }
    /** Arbitration domains under the frequency plan. */
    std::uint32_t
    channelCount() const
    {
        return static_cast<std::uint32_t>(channels_.size());
    }
    wireless::DataChannel &
    dataChannel(std::uint32_t channel)
    {
        return *channels_[channel];
    }
    /** Chip 0's tone channel (the only one on single-chip machines). */
    wireless::ToneChannel *
    toneChannel()
    {
        return toneEnabled_ ? tones_[0].get() : nullptr;
    }
    wireless::ToneChannel *
    toneChannel(std::uint32_t chip)
    {
        return toneEnabled_ ? tones_[chip].get() : nullptr;
    }
    wireless::Mac &mac(sim::NodeId node) { return *macs_[node]; }
    /** Channel 0's MAC protocol (WirelessConfig::macKind). */
    wireless::MacProtocol &macProtocol() { return *macProtocols_[0]; }
    const wireless::MacProtocol &macProtocol() const
    {
        return *macProtocols_[0];
    }
    wireless::MacProtocol &
    macProtocol(std::uint32_t channel)
    {
        return *macProtocols_[channel];
    }
    const BmStats &stats() const { return stats_; }
    const BmConfig &config() const { return cfg_; }
    bool hasTone() const { return toneEnabled_; }

    std::uint32_t numChips() const { return numChips_; }
    std::uint32_t coresPerChip() const { return coresPerChip_; }
    std::uint32_t
    chipOf(sim::NodeId node) const
    {
        return node / coresPerChip_;
    }
    const wireless::FrequencyPlan &frequencyPlan() const { return plan_; }
    /** The inter-chip bridge (null on single-chip machines). */
    noc::ChipBridge *bridge() { return bridge_.get(); }
    const noc::ChipBridge *bridge() const { return bridge_.get(); }

    /** True if any allocated tone barrier arms @p node (global id). */
    bool anyToneArmedOn(sim::NodeId node) const;

    /** Chip 0's SNR->BER channel model (null unless berFromSnr). */
    const wireless::RfChannelModel *
    rfChannelModel() const
    {
        return rfModels_.empty() ? nullptr : rfModels_[0].get();
    }

    /**
     * Pin one link's attenuation (a blocked or resonant in-package
     * path) and re-derive the channel's drop table. Requires
     * berFromSnr; @p tx and @p rx are global node ids on the same chip
     * (cross-chip paths are not wireless links). Meant for experiments
     * and tests.
     */
    void overrideLinkPathLoss(sim::NodeId tx, sim::NodeId rx, double db);

    /**
     * Return to post-construction state, optionally retiming: zeroed
     * store, idle channels, fresh per-node MAC backoff/RNG streams
     * (@p rng must be the same fork the constructor received so a
     * reset machine draws the exact sequence a fresh one would), no
     * pending RMWs, zero stats. @p cfg / @p wcfg may change timing
     * only (capacity and AllocB slots are fixed at construction);
     * @p with_tone may flip the Tone channel on or off, and
     * @p num_chips may re-tile the machine into a different chip grid
     * (the chip-topology objects are rebuilt only when the tiling or
     * frequency plan actually changes — the common same-shape reset
     * stays allocation-free).
     */
    void reset(const BmConfig &cfg, const wireless::WirelessConfig &wcfg,
               sim::Rng rng, bool with_tone, std::uint32_t num_chips = 1,
               const noc::BridgeConfig &bridge_cfg = {});

  private:
    void checkPid(sim::BmAddr addr, sim::Pid pid, std::uint32_t count = 1);

    /** Build channels/protocols/tones/bridge for @p num_chips. */
    void rebuildChipTopology(const wireless::WirelessConfig &wcfg,
                             const noc::BridgeConfig &bridge_cfg,
                             std::uint32_t num_chips);

    /** The channel index node @p node transmits on. */
    std::uint32_t
    channelIdxOf(sim::NodeId node) const
    {
        return plan_.channelOf(chipOf(node));
    }

    /** @p node's id within its channel's arbitration domain. */
    sim::NodeId
    channelLocalNode(sim::NodeId node) const
    {
        const std::uint32_t chip = chipOf(node);
        return plan_.chipIndexOnChannel(chip) * coresPerChip_ +
               node % coresPerChip_;
    }

    /** Build (or drop) the RF channel models per @p wcfg.berFromSnr
     *  and install the per-transmitter drop tables. */
    void configureLoss(const wireless::WirelessConfig &wcfg);
    void refreshDropTable();

    /** Track a pending RMW for AFB detection. */
    struct PendingRmw
    {
        bool active = false;
        sim::BmAddr addr = 0;
        bool afb = false;
    };

    /** A pooled in-flight bridge frame (global-scope commits only). */
    struct BridgeFrame
    {
        sim::BmAddr addr = 0;
        std::uint32_t count = 0;
        std::uint32_t srcChip = 0;
        std::array<std::uint64_t, 4> values{};
        std::array<std::uint64_t, 4> versions{};
    };

    BridgeFrame *acquireFrame();
    void releaseFrame(BridgeFrame *frame);

    /** Broadcast-delivery commit for a (possibly bulk) store. */
    void deliverStore(sim::NodeId src, sim::BmAddr addr,
                      const std::uint64_t *values, std::uint32_t count);

    /**
     * Delivery-instant commit of an RMW's write. On a multi-chip
     * machine the write only commits if the transmitting chip's
     * replica of @p addr is globally current (and AFB is still clear);
     * otherwise AFB is raised and nothing is written — the RMW was
     * computed from a stale value.
     */
    void deliverRmw(sim::NodeId node, sim::BmAddr addr,
                    std::uint64_t value);

    /** Bridge arrival: LWW-apply @p frame on every other chip. */
    void applyBridged(BridgeFrame *frame);

    /** Detached tone-barrier announcement (cancellable, see §5.1). */
    coro::Task<void> announceTask(sim::NodeId node, sim::BmAddr addr,
                                  std::uint64_t epoch);

    sim::Engine &engine_;
    std::uint32_t numNodes_;
    BmConfig cfg_;
    BmStore store_;
    std::uint32_t numChips_ = 1;
    std::uint32_t coresPerChip_;
    wireless::FrequencyPlan plan_;
    /** One DataChannel per frequency-plan slot; >= 1. */
    std::vector<std::unique_ptr<wireless::DataChannel>> channels_;
    /** One MAC protocol per channel (the arbitration domain); rebuilt
     *  when reset flips macKind or the chip tiling. */
    std::vector<std::unique_ptr<wireless::MacProtocol>> macProtocols_;
    /** Per-node MAC front-ends, in global node order (RNG contract). */
    std::vector<std::unique_ptr<wireless::Mac>> macs_;
    /** One ToneChannel per chip; gated by toneEnabled_ (WiSyncNoT). */
    std::vector<std::unique_ptr<wireless::ToneChannel>> tones_;
    /** Per-chip SNR->BER attenuation matrices (only when berFromSnr). */
    std::vector<std::unique_ptr<wireless::RfChannelModel>> rfModels_;
    /** Inter-chip link (numChips > 1 only). */
    std::unique_ptr<noc::ChipBridge> bridge_;
    noc::BridgeConfig bridgeCfg_;
    /** Per-word global version clock (bumped at every global-scope
     *  commit) and per-(chip, word) applied clock; empty at 1 chip. */
    std::vector<std::uint64_t> globalVersion_;
    std::vector<std::uint64_t> appliedVersion_; // [chip * words + word]
    std::vector<std::unique_ptr<BridgeFrame>> framePool_;
    std::vector<BridgeFrame *> freeFrames_;
    bool toneEnabled_ = true;
    std::vector<PendingRmw> pendingRmw_; // per node
    BmStats stats_;
};

} // namespace wisync::bm

#endif // WISYNC_BM_BM_SYSTEM_HH
