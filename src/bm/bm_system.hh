/**
 * @file
 * The Broadcast Memory controller: WiSync's instruction surface.
 *
 * Implements the paper's §4.2 semantics on top of the Data channel,
 * Tone channel and BmStore:
 *
 *  - Plain loads read the local replica (2-cycle BM round trip) and
 *    always succeed.
 *  - Stores broadcast first; only when the wireless transfer succeeds
 *    is any replica (including the local one) updated, which yields a
 *    chip-wide total order of BM writes. The Write Completion Bit
 *    (WCB) semantics are implicit: a store coroutine resolves exactly
 *    when WCB would be set.
 *  - RMW instructions (test&set, fetch&inc, fetch&add, CAS) read the
 *    local replica, modify in the pipeline, and attempt the broadcast.
 *    If a remote store to the same address arrives in between, the
 *    Atomicity Failure Bit (AFB) is set and the write is aborted: the
 *    instruction completes without broadcasting or updating the BM,
 *    and software must retry (Fig. 4(a,b)).
 *  - Bulk load/store move 4 consecutive words; a bulk broadcast takes
 *    15 cycles instead of 4x5 (§4.1).
 *  - tone_st / tone_ld drive the Tone channel's hardware barrier
 *    (§4.2.2); the release toggles the barrier word in all replicas.
 *  - Every access checks the entry's PID tag (§4.4); a mismatch throws
 *    ProtectionFault.
 */

#ifndef WISYNC_BM_BM_SYSTEM_HH
#define WISYNC_BM_BM_SYSTEM_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bm/bm_store.hh"
#include "coro/primitives.hh"
#include "coro/task.hh"
#include "sim/engine.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "wireless/data_channel.hh"
#include "wireless/mac/mac_protocol.hh"
#include "wireless/rf_model.hh"
#include "wireless/tone_channel.hh"

namespace wisync::bm {

/** BM geometry/timing knobs (Table 1 defaults). */
struct BmConfig
{
    /** Per-node BM capacity (16 KB => 2048 64-bit entries). */
    std::uint32_t bmBytes = 16 * 1024;
    /** BM access round trip, cycles. */
    std::uint32_t bmRtCycles = 2;
    /** Pipeline modify stage of an RMW, cycles. */
    std::uint32_t rmwModifyCycles = 1;
    /** AllocB/ActiveB capacity for tone barriers. */
    std::uint32_t allocSlots = 16;

    std::uint32_t words() const { return bmBytes / 8; }
};

/** PID-tag mismatch on a BM access (§4.4). */
class ProtectionFault : public std::runtime_error
{
  public:
    ProtectionFault(sim::BmAddr addr, sim::Pid pid)
        : std::runtime_error("BM protection fault"), addr(addr), pid(pid)
    {}
    sim::BmAddr addr;
    sim::Pid pid;
};

/** Result of a BM RMW instruction (value + AFB register). */
struct RmwResult
{
    std::uint64_t oldValue = 0;
    /** AFB: set -> the write never occurred; retry the instruction. */
    bool atomicityFailed = false;
};

/** Result of a BM CAS (Fig. 4(b) protocol). */
struct BmCasResult
{
    std::uint64_t oldValue = 0;
    /** Comparison outcome ("CAS returns zero if contents differ"). */
    bool compared = false;
    /** AFB: even a successful comparison may fail atomically. */
    bool atomicityFailed = false;

    bool succeeded() const { return compared && !atomicityFailed; }
};

/** BM-level statistics. */
struct BmStats
{
    sim::Counter loads;
    sim::Counter stores;
    sim::Counter bulkStores;
    sim::Counter rmws;
    sim::Counter afbFailures;
    /** Controller broadcasts (stores, allocs, tone announcements) the
     *  reliability layer gave up on and the controller re-issued —
     *  graceful degradation under a lossy channel: the operation just
     *  completes later, replicas never diverge. */
    sim::Counter sendReissues;
    sim::Counter toneStores;
    sim::Counter toneAnnouncements;
    sim::Counter protectionFaults;

    /** Zero everything (assignment cannot miss a late-added field). */
    void reset() { *this = {}; }
};

/**
 * One chip's Broadcast Memory system: replicated stores, per-node
 * MACs on the shared Data channel, and the Tone channel controller.
 */
class BmSystem
{
  public:
    /**
     * @param with_tone  False for WiSyncNoT (no Tone channel; tone_st
     *                   and tone barriers are unavailable).
     */
    BmSystem(sim::Engine &engine, std::uint32_t num_nodes,
             const BmConfig &cfg, const wireless::WirelessConfig &wcfg,
             sim::Rng rng, bool with_tone = true);

    // ---- Instruction surface -------------------------------------

    /** Plain BM load: local replica, always succeeds. */
    coro::Task<std::uint64_t> load(sim::NodeId node, sim::Pid pid,
                                   sim::BmAddr addr);

    /** Plain BM store: broadcast, then update all replicas. */
    coro::Task<void> store(sim::NodeId node, sim::Pid pid,
                           sim::BmAddr addr, std::uint64_t value);

    /** Bulk load of 4 consecutive words from the local replica. */
    coro::Task<std::array<std::uint64_t, 4>> bulkLoad(sim::NodeId node,
                                                      sim::Pid pid,
                                                      sim::BmAddr addr);

    /** Bulk store of 4 consecutive words (one 15-cycle broadcast). */
    coro::Task<void> bulkStore(sim::NodeId node, sim::Pid pid,
                               sim::BmAddr addr,
                               std::array<std::uint64_t, 4> values);

    /** fetch&add (fetch&inc with delta=1). AFB semantics apply. */
    coro::Task<RmwResult> fetchAdd(sim::NodeId node, sim::Pid pid,
                                   sim::BmAddr addr, std::uint64_t delta);

    /** test&set: writes 1. AFB semantics apply. */
    coro::Task<RmwResult> testAndSet(sim::NodeId node, sim::Pid pid,
                                     sim::BmAddr addr);

    /** Compare-and-swap (Fig. 4(b)). */
    coro::Task<BmCasResult> cas(sim::NodeId node, sim::Pid pid,
                                sim::BmAddr addr, std::uint64_t expected,
                                std::uint64_t desired);

    /**
     * Convenience retry loops (the software patterns of Fig. 4):
     * repeat the RMW until AFB is clear.
     */
    coro::Task<std::uint64_t> fetchAddRetry(sim::NodeId node, sim::Pid pid,
                                            sim::BmAddr addr,
                                            std::uint64_t delta);
    coro::Task<std::uint64_t> testAndSetRetry(sim::NodeId node,
                                              sim::Pid pid,
                                              sim::BmAddr addr);

    // ---- Tone-channel instructions (§4.2.2) ----------------------

    /** tone_st: arrival at the tone barrier on @p addr. */
    coro::Task<void> toneStore(sim::NodeId node, sim::Pid pid,
                               sim::BmAddr addr);

    /** tone_ld: plain local read of the barrier word. */
    coro::Task<std::uint64_t> toneLoad(sim::NodeId node, sim::Pid pid,
                                       sim::BmAddr addr);

    // ---- Spin support ---------------------------------------------

    /** Event-driven spin on a BM word until pred(value). */
    coro::Task<std::uint64_t> spinUntil(sim::NodeId node, sim::Pid pid,
                                        sim::BmAddr addr,
                                        std::function<bool(std::uint64_t)>
                                            pred);

    // ---- Allocation hooks (used by core::Os, §4.4) ----------------

    /** Tag a chunk of words with a PID (broadcast alloc message). */
    coro::Task<void> allocEntries(sim::NodeId node, sim::Pid pid,
                                  sim::BmAddr addr, std::uint32_t count);

    /** Release entries (broadcast dealloc message). */
    coro::Task<void> deallocEntries(sim::NodeId node, sim::BmAddr addr,
                                    std::uint32_t count);

    /** Register a tone barrier; false if AllocB overflows or no tone. */
    bool allocToneBarrier(sim::BmAddr addr, std::vector<bool> armed);
    void deallocToneBarrier(sim::BmAddr addr);

    // ---- Introspection --------------------------------------------

    BmStore &storeArray() { return store_; }
    wireless::DataChannel &dataChannel() { return channel_; }
    wireless::ToneChannel *
    toneChannel()
    {
        return toneEnabled_ ? tone_.get() : nullptr;
    }
    wireless::Mac &mac(sim::NodeId node) { return *macs_[node]; }
    /** The channel-wide MAC protocol (WirelessConfig::macKind). */
    wireless::MacProtocol &macProtocol() { return *macProtocol_; }
    const wireless::MacProtocol &macProtocol() const
    {
        return *macProtocol_;
    }
    const BmStats &stats() const { return stats_; }
    const BmConfig &config() const { return cfg_; }
    bool hasTone() const { return toneEnabled_; }

    /** The SNR->BER channel model (null unless berFromSnr is set). */
    const wireless::RfChannelModel *
    rfChannelModel() const
    {
        return rfModel_.get();
    }

    /**
     * Pin one link's attenuation (a blocked or resonant in-package
     * path) and re-derive the channel's drop table. Requires
     * berFromSnr; meant for experiments and tests.
     */
    void overrideLinkPathLoss(sim::NodeId tx, sim::NodeId rx, double db);

    /**
     * Return to post-construction state, optionally retiming: zeroed
     * store, idle channels, fresh per-node MAC backoff/RNG streams
     * (@p rng must be the same fork the constructor received so a
     * reset machine draws the exact sequence a fresh one would), no
     * pending RMWs, zero stats. @p cfg / @p wcfg may change timing
     * only (capacity and AllocB slots are fixed at construction);
     * @p with_tone may flip the Tone channel on or off (the channel
     * hardware is always built — availability is a config property,
     * which is what lets one machine serve every ConfigKind).
     */
    void reset(const BmConfig &cfg, const wireless::WirelessConfig &wcfg,
               sim::Rng rng, bool with_tone);

  private:
    void checkPid(sim::BmAddr addr, sim::Pid pid, std::uint32_t count = 1);

    /** Build (or drop) the RF channel model per @p wcfg.berFromSnr
     *  and install the per-transmitter drop table. */
    void configureLoss(const wireless::WirelessConfig &wcfg);
    void refreshDropTable();

    /** Track a pending RMW for AFB detection. */
    struct PendingRmw
    {
        bool active = false;
        sim::BmAddr addr = 0;
        bool afb = false;
    };

    /** Broadcast-delivery commit for a (possibly bulk) store. */
    void deliverStore(sim::NodeId src, sim::BmAddr addr,
                      const std::uint64_t *values, std::uint32_t count);

    /** Detached tone-barrier announcement (cancellable, see §5.1). */
    coro::Task<void> announceTask(sim::NodeId node, sim::BmAddr addr,
                                  std::uint64_t epoch);

    sim::Engine &engine_;
    std::uint32_t numNodes_;
    BmConfig cfg_;
    BmStore store_;
    wireless::DataChannel channel_;
    /** Channel-wide MAC protocol; rebuilt when reset flips macKind. */
    std::unique_ptr<wireless::MacProtocol> macProtocol_;
    std::vector<std::unique_ptr<wireless::Mac>> macs_;
    /** Always constructed; gated by toneEnabled_ (WiSyncNoT). */
    std::unique_ptr<wireless::ToneChannel> tone_;
    /** SNR->BER attenuation matrix (only when berFromSnr). */
    std::unique_ptr<wireless::RfChannelModel> rfModel_;
    bool toneEnabled_ = true;
    std::vector<PendingRmw> pendingRmw_; // per node
    BmStats stats_;
};

} // namespace wisync::bm

#endif // WISYNC_BM_BM_SYSTEM_HH
