/**
 * @file
 * The replicated Broadcast Memory arrays (paper §3.2, §4.2).
 *
 * Every node holds a BM with space for all allocated broadcast
 * variables; the replicas hold identical values at all times because
 * the only write path is the Data-channel broadcast, whose delivery
 * instant updates every replica in one simulation step. Each 64-bit
 * entry is tagged with the PID of the owning program; a PID mismatch
 * on access is a protection violation (§4.4).
 *
 * Multi-chip: with several chips each broadcast commits on its own
 * chip's replica group first (writeChip); the inter-chip bridge
 * re-applies it on the other chips a bridge latency later. Words may
 * be marked chip-local (setScope): those never cross the bridge, and
 * the replica-consistency invariant for them holds per chip only.
 */

#ifndef WISYNC_BM_BM_STORE_HH
#define WISYNC_BM_BM_STORE_HH

#include <cstdint>
#include <vector>

#include "coro/primitives.hh"
#include "coro/watch_table.hh"
#include "sim/engine.hh"
#include "sim/types.hh"

namespace wisync::bm {

/** Tag value for unallocated entries. */
inline constexpr sim::Pid kNoPid = 0xFFFF;

/** Sharing scope of a BM word (multi-chip machines). */
enum class BmScope : std::uint8_t
{
    /** Bridged to every chip (the default; single-chip semantics). */
    Global,
    /** Never crosses the bridge; each chip's copies are independent. */
    ChipLocal,
};

/** Per-node replicated broadcast memories + word-update events. */
class BmStore
{
  public:
    BmStore(sim::Engine &engine, std::uint32_t num_nodes,
            std::uint32_t words_per_node);

    std::uint32_t words() const { return words_; }
    std::uint32_t nodes() const { return numNodes_; }

    /** Read @p node's replica of word @p addr. */
    std::uint64_t read(sim::NodeId node, sim::BmAddr addr) const;

    /**
     * Write every replica of @p addr (the broadcast-delivery commit)
     * and wake word watchers on all nodes.
     */
    void writeAll(sim::BmAddr addr, std::uint64_t value);

    /**
     * Write the replicas of nodes [@p first, @p first + @p count) only
     * (a chip-local commit or a bridged re-apply) and wake exactly
     * that range's watchers.
     */
    void writeChip(sim::NodeId first, std::uint32_t count, sim::BmAddr addr,
                   std::uint64_t value);

    /** Toggle 0 <-> 1 on every replica (tone-barrier release). */
    void toggleAll(sim::BmAddr addr);

    /** Toggle 0 <-> 1 on one chip's replicas (per-chip tone release). */
    void toggleChip(sim::NodeId first, std::uint32_t count,
                    sim::BmAddr addr);

    /** Verify all replicas agree (model invariant; for tests). */
    bool replicasConsistent() const;

    /**
     * Multi-chip invariant: within every @p cores_per_chip-node group
     * all replicas agree, and Global-scope words additionally agree
     * across groups (only meaningful at quiescence — in-flight bridge
     * frames legitimately leave chips divergent mid-run).
     */
    bool replicasConsistent(std::uint32_t cores_per_chip) const;

    /** PID tag management (chunk-granularity protection, §4.4). */
    void setTag(sim::BmAddr addr, sim::Pid pid);
    sim::Pid tag(sim::BmAddr addr) const;

    /** Sharing scope (multi-chip; Global unless marked otherwise). */
    void setScope(sim::BmAddr addr, BmScope scope);
    BmScope scope(sim::BmAddr addr) const;

    /** Per-(node,word) update event for event-driven spinning. */
    coro::VersionedEvent &watch(sim::NodeId node, sim::BmAddr addr);

    /** All replicas zero, all tags free, no watchers (no realloc). */
    void reset();

    /**
     * Order-independent digest of every replica's values plus the PID
     * tags (reset-equivalence test support).
     */
    std::uint64_t fingerprint() const;

  private:
    static std::uint64_t
    watchKey(sim::NodeId node, sim::BmAddr addr)
    {
        // 16 node bits: the old << 10 packing was exactly exhausted at
        // 1024 nodes and aliased beyond.
        return (static_cast<std::uint64_t>(addr) << 16) | node;
    }

    sim::Engine &engine_;
    std::uint32_t numNodes_;
    std::uint32_t words_;
    std::vector<std::vector<std::uint64_t>> replicas_; // [node][word]
    std::vector<sim::Pid> tags_;
    std::vector<BmScope> scopes_;
    coro::WatchTable watches_;
};

} // namespace wisync::bm

#endif // WISYNC_BM_BM_STORE_HH
