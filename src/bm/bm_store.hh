/**
 * @file
 * The replicated Broadcast Memory arrays (paper §3.2, §4.2).
 *
 * Every node holds a BM with space for all allocated broadcast
 * variables; the replicas hold identical values at all times because
 * the only write path is the Data-channel broadcast, whose delivery
 * instant updates every replica in one simulation step. Each 64-bit
 * entry is tagged with the PID of the owning program; a PID mismatch
 * on access is a protection violation (§4.4).
 */

#ifndef WISYNC_BM_BM_STORE_HH
#define WISYNC_BM_BM_STORE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "coro/primitives.hh"
#include "sim/engine.hh"
#include "sim/types.hh"

namespace wisync::bm {

/** Tag value for unallocated entries. */
inline constexpr sim::Pid kNoPid = 0xFFFF;

/** Per-node replicated broadcast memories + word-update events. */
class BmStore
{
  public:
    BmStore(sim::Engine &engine, std::uint32_t num_nodes,
            std::uint32_t words_per_node);

    std::uint32_t words() const { return words_; }
    std::uint32_t nodes() const { return numNodes_; }

    /** Read @p node's replica of word @p addr. */
    std::uint64_t read(sim::NodeId node, sim::BmAddr addr) const;

    /**
     * Write every replica of @p addr (the broadcast-delivery commit)
     * and wake word watchers on all nodes.
     */
    void writeAll(sim::BmAddr addr, std::uint64_t value);

    /** Toggle 0 <-> 1 on every replica (tone-barrier release). */
    void toggleAll(sim::BmAddr addr);

    /** Verify all replicas agree (model invariant; for tests). */
    bool replicasConsistent() const;

    /** PID tag management (chunk-granularity protection, §4.4). */
    void setTag(sim::BmAddr addr, sim::Pid pid);
    sim::Pid tag(sim::BmAddr addr) const;

    /** Per-(node,word) update event for event-driven spinning. */
    coro::VersionedEvent &watch(sim::NodeId node, sim::BmAddr addr);

    /** All replicas zero, all tags free, no watchers (no realloc). */
    void reset();

    /**
     * Order-independent digest of every replica's values plus the PID
     * tags (reset-equivalence test support).
     */
    std::uint64_t fingerprint() const;

  private:
    sim::Engine &engine_;
    std::uint32_t numNodes_;
    std::uint32_t words_;
    std::vector<std::vector<std::uint64_t>> replicas_; // [node][word]
    std::vector<sim::Pid> tags_;
    std::unordered_map<std::uint64_t,
                       std::unique_ptr<coro::VersionedEvent>>
        watches_;
};

} // namespace wisync::bm

#endif // WISYNC_BM_BM_STORE_HH
