#include "bm/bm_system.hh"

#include <utility>

#include "sim/logging.hh"

namespace wisync::bm {

BmSystem::BmSystem(sim::Engine &engine, std::uint32_t num_nodes,
                   const BmConfig &cfg, const wireless::WirelessConfig &wcfg,
                   sim::Rng rng, bool with_tone)
    : engine_(engine), numNodes_(num_nodes), cfg_(cfg),
      store_(engine, num_nodes, cfg.words()), channel_(engine, wcfg)
{
    macProtocol_ =
        wireless::makeMacProtocol(wcfg, engine_, channel_, numNodes_);
    macs_.reserve(numNodes_);
    for (std::uint32_t n = 0; n < numNodes_; ++n)
        macs_.push_back(std::make_unique<wireless::Mac>(
            engine_, channel_, *macProtocol_, n, rng.fork()));
    // The Tone channel hardware is always built; whether the config
    // exposes it (WiSync vs WiSyncNoT) is a flag, so reset() can move
    // one machine between kinds without reallocating anything.
    tone_ = std::make_unique<wireless::ToneChannel>(engine_, numNodes_,
                                                    cfg_.allocSlots);
    tone_->setReleaseHandler(
        [this](sim::BmAddr addr) { store_.toggleAll(addr); });
    toneEnabled_ = with_tone;
    pendingRmw_.resize(numNodes_);
    configureLoss(wcfg);
}

void
BmSystem::reset(const BmConfig &cfg, const wireless::WirelessConfig &wcfg,
                sim::Rng rng, bool with_tone)
{
    WISYNC_FATAL_IF(cfg.words() != cfg_.words() ||
                        cfg.allocSlots != cfg_.allocSlots,
                    "BmSystem::reset cannot change BM capacity");
    cfg_ = cfg;
    store_.reset();
    channel_.reset(wcfg);
    // Retiming may select a different MAC protocol; rebuild only then
    // (the common same-kind reset stays allocation-free). The RNG fork
    // order below matches construction either way — protocols never
    // consume machine randomness.
    if (macProtocol_->kind() != wcfg.macKind)
        macProtocol_ =
            wireless::makeMacProtocol(wcfg, engine_, channel_, numNodes_);
    else
        macProtocol_->reset();
    // Same fork order as construction: node 0 first.
    for (auto &mac : macs_)
        mac->reset(*macProtocol_, rng.fork());
    tone_->reset();
    toneEnabled_ = with_tone;
    pendingRmw_.assign(numNodes_, PendingRmw{});
    stats_.reset();
    configureLoss(wcfg);
}

void
BmSystem::configureLoss(const wireless::WirelessConfig &wcfg)
{
    if (!wcfg.berFromSnr) {
        // The channel construction/reset left the drop table empty;
        // any positive lossPct applies uniformly without a model.
        rfModel_.reset();
        return;
    }
    wireless::RfChannelConfig rc;
    rc.txPowerDbm = wcfg.txPowerDbm;
    rfModel_ =
        std::make_unique<wireless::RfChannelModel>(numNodes_, rc);
    refreshDropTable();
}

void
BmSystem::refreshDropTable()
{
    std::vector<double> data(numNodes_);
    std::vector<double> bulk(numNodes_);
    for (std::uint32_t n = 0; n < numNodes_; ++n) {
        data[n] =
            rfModel_->broadcastErrorRate(n, wireless::kDataFrameBits);
        bulk[n] =
            rfModel_->broadcastErrorRate(n, wireless::kBulkFrameBits);
    }
    channel_.setDropTable(std::move(data), std::move(bulk));
}

void
BmSystem::overrideLinkPathLoss(sim::NodeId tx, sim::NodeId rx, double db)
{
    WISYNC_ASSERT(rfModel_ != nullptr,
                  "overrideLinkPathLoss requires berFromSnr");
    rfModel_->overridePathLoss(tx, rx, db);
    refreshDropTable();
}

void
BmSystem::checkPid(sim::BmAddr addr, sim::Pid pid, std::uint32_t count)
{
    for (std::uint32_t i = 0; i < count; ++i) {
        if (store_.tag(addr + i) != pid) {
            stats_.protectionFaults.inc();
            throw ProtectionFault(addr + i, pid);
        }
    }
}

void
BmSystem::deliverStore(sim::NodeId src, sim::BmAddr addr,
                       const std::uint64_t *values, std::uint32_t count)
{
    for (std::uint32_t i = 0; i < count; ++i)
        store_.writeAll(addr + i, values[i]);
    // AFB: an incoming store that hits the address window of another
    // node's pending RMW breaks that RMW's atomicity (§4.2.1).
    for (sim::NodeId n = 0; n < numNodes_; ++n) {
        PendingRmw &p = pendingRmw_[n];
        if (p.active && n != src && p.addr >= addr && p.addr < addr + count)
            p.afb = true;
    }
}

coro::Task<std::uint64_t>
BmSystem::load(sim::NodeId node, sim::Pid pid, sim::BmAddr addr)
{
    checkPid(addr, pid);
    stats_.loads.inc();
    co_await coro::delay(engine_, cfg_.bmRtCycles);
    co_return store_.read(node, addr);
}

coro::Task<void>
BmSystem::store(sim::NodeId node, sim::Pid pid, sim::BmAddr addr,
                std::uint64_t value)
{
    checkPid(addr, pid);
    stats_.stores.inc();
    // A store has no abort path: if the reliability layer gives up,
    // the controller re-issues the whole send (fresh retry budget) —
    // WCB simply sets later. No replica changed in between, so the
    // chip-wide write order is unaffected.
    while (co_await macs_[node]->send(false,
                                      [this, node, addr, value] {
                                          const std::uint64_t v = value;
                                          deliverStore(node, addr, &v, 1);
                                      }) ==
           wireless::SendOutcome::GaveUp)
        stats_.sendReissues.inc();
    // Local BM write + WCB after the broadcast succeeds (§4.2.1).
    co_await coro::delay(engine_, cfg_.bmRtCycles);
}

coro::Task<std::array<std::uint64_t, 4>>
BmSystem::bulkLoad(sim::NodeId node, sim::Pid pid, sim::BmAddr addr)
{
    checkPid(addr, pid, 4);
    stats_.loads.inc();
    co_await coro::delay(engine_, cfg_.bmRtCycles);
    std::array<std::uint64_t, 4> out;
    for (std::uint32_t i = 0; i < 4; ++i)
        out[i] = store_.read(node, addr + i);
    co_return out;
}

coro::Task<void>
BmSystem::bulkStore(sim::NodeId node, sim::Pid pid, sim::BmAddr addr,
                    std::array<std::uint64_t, 4> values)
{
    checkPid(addr, pid, 4);
    stats_.stores.inc();
    stats_.bulkStores.inc();
    while (co_await macs_[node]->send(
               true,
               [this, node, addr, values] {
                   deliverStore(node, addr, values.data(), 4);
               }) == wireless::SendOutcome::GaveUp)
        stats_.sendReissues.inc();
    co_await coro::delay(engine_, cfg_.bmRtCycles);
}

coro::Task<RmwResult>
BmSystem::fetchAdd(sim::NodeId node, sim::Pid pid, sim::BmAddr addr,
                   std::uint64_t delta)
{
    checkPid(addr, pid);
    stats_.rmws.inc();
    co_await coro::delay(engine_, cfg_.bmRtCycles); // local BM read
    PendingRmw &p = pendingRmw_[node];
    WISYNC_ASSERT(!p.active, "one outstanding RMW per node");
    p.active = true;
    p.addr = addr;
    p.afb = false;
    const std::uint64_t old = store_.read(node, addr);
    co_await coro::delay(engine_, cfg_.rmwModifyCycles); // pipeline modify
    const std::uint64_t desired = old + delta;
    const std::function<bool()> abort = [&p] { return p.afb; };
    const auto sent = co_await macs_[node]->send(
        false,
        [this, node, addr, desired] {
            const std::uint64_t v = desired;
            deliverStore(node, addr, &v, 1);
        },
        &abort);
    // A reliability-layer give-up rides the AFB contract: the write
    // never occurred, the instruction completes, software retries
    // (Fig. 4(a)) — identical observable semantics, no new hang path.
    const bool failed =
        p.afb || sent == wireless::SendOutcome::GaveUp;
    p.active = false;
    if (failed) {
        stats_.afbFailures.inc();
    } else {
        co_await coro::delay(engine_, cfg_.bmRtCycles); // local write
    }
    co_return RmwResult{old, failed};
}

coro::Task<RmwResult>
BmSystem::testAndSet(sim::NodeId node, sim::Pid pid, sim::BmAddr addr)
{
    checkPid(addr, pid);
    stats_.rmws.inc();
    co_await coro::delay(engine_, cfg_.bmRtCycles);
    PendingRmw &p = pendingRmw_[node];
    WISYNC_ASSERT(!p.active, "one outstanding RMW per node");
    p.active = true;
    p.addr = addr;
    p.afb = false;
    const std::uint64_t old = store_.read(node, addr);
    co_await coro::delay(engine_, cfg_.rmwModifyCycles);
    const std::function<bool()> abort = [&p] { return p.afb; };
    const auto sent = co_await macs_[node]->send(
        false,
        [this, node, addr] {
            const std::uint64_t v = 1;
            deliverStore(node, addr, &v, 1);
        },
        &abort);
    // Give-up -> AFB, as in fetchAdd.
    const bool failed =
        p.afb || sent == wireless::SendOutcome::GaveUp;
    p.active = false;
    if (failed) {
        stats_.afbFailures.inc();
    } else {
        co_await coro::delay(engine_, cfg_.bmRtCycles);
    }
    co_return RmwResult{old, failed};
}

coro::Task<BmCasResult>
BmSystem::cas(sim::NodeId node, sim::Pid pid, sim::BmAddr addr,
              std::uint64_t expected, std::uint64_t desired)
{
    checkPid(addr, pid);
    stats_.rmws.inc();
    co_await coro::delay(engine_, cfg_.bmRtCycles);
    PendingRmw &p = pendingRmw_[node];
    WISYNC_ASSERT(!p.active, "one outstanding RMW per node");
    p.active = true;
    p.addr = addr;
    p.afb = false;
    const std::uint64_t old = store_.read(node, addr);
    co_await coro::delay(engine_, cfg_.rmwModifyCycles);
    if (old != expected) {
        // Comparison failed: no write is attempted (Fig. 4(b) retries
        // straight away without consulting AFB).
        p.active = false;
        co_return BmCasResult{old, false, false};
    }
    const std::function<bool()> abort = [&p] { return p.afb; };
    const auto sent = co_await macs_[node]->send(
        false,
        [this, node, addr, desired] {
            const std::uint64_t v = desired;
            deliverStore(node, addr, &v, 1);
        },
        &abort);
    // Give-up -> AFB, as in fetchAdd.
    const bool failed =
        p.afb || sent == wireless::SendOutcome::GaveUp;
    p.active = false;
    if (failed) {
        stats_.afbFailures.inc();
    } else {
        co_await coro::delay(engine_, cfg_.bmRtCycles);
    }
    co_return BmCasResult{old, true, failed};
}

coro::Task<std::uint64_t>
BmSystem::fetchAddRetry(sim::NodeId node, sim::Pid pid, sim::BmAddr addr,
                        std::uint64_t delta)
{
    for (;;) {
        const RmwResult r = co_await fetchAdd(node, pid, addr, delta);
        if (!r.atomicityFailed)
            co_return r.oldValue;
    }
}

coro::Task<std::uint64_t>
BmSystem::testAndSetRetry(sim::NodeId node, sim::Pid pid, sim::BmAddr addr)
{
    for (;;) {
        const RmwResult r = co_await testAndSet(node, pid, addr);
        if (!r.atomicityFailed)
            co_return r.oldValue;
    }
}

coro::Task<void>
BmSystem::toneStore(sim::NodeId node, sim::Pid pid, sim::BmAddr addr)
{
    checkPid(addr, pid);
    WISYNC_ASSERT(toneEnabled_,
                  "tone_st requires the Tone channel (WiSync config)");
    stats_.toneStores.inc();
    co_await coro::delay(engine_, 1); // tone-controller access
    WISYNC_ASSERT(tone_->isArmed(addr, node),
                  "tone_st from a node not armed for this barrier");
    if (tone_->needsAnnouncement(addr)) {
        // First arrival (from this node's view): the tone controller
        // announces the barrier on the Data channel with the Tone bit
        // set. tone_st itself retires immediately — the MAC transmits
        // asynchronously. If another node's announcement wins the race
        // (or the whole barrier completes) while ours waits in the
        // MAC, the controller cancels the now-redundant message at
        // its transmit slot.
        stats_.toneAnnouncements.inc();
        tone_->arrive(addr, node); // pending until activation
        coro::spawnDetached(engine_,
                            announceTask(node, addr,
                                         tone_->epochOf(addr)));
    } else {
        tone_->arrive(addr, node); // drop our tone
    }
}

coro::Task<void>
BmSystem::announceTask(sim::NodeId node, sim::BmAddr addr,
                       std::uint64_t epoch)
{
    // The abort predicate lives in this frame for the whole send.
    const std::function<bool()> abort = [this, addr, epoch] {
        return tone_->isActive(addr) || tone_->epochOf(addr) != epoch;
    };
    // Never a lost wakeup: an announcement the reliability layer gave
    // up on is re-issued until it is either delivered or genuinely
    // redundant (the abort predicate fires because another node's
    // announcement activated the barrier, or the epoch moved on).
    while (co_await macs_[node]->send(
               false, [this, addr] { tone_->activate(addr); },
               &abort) == wireless::SendOutcome::GaveUp)
        stats_.sendReissues.inc();
}

coro::Task<std::uint64_t>
BmSystem::toneLoad(sim::NodeId node, sim::Pid pid, sim::BmAddr addr)
{
    checkPid(addr, pid);
    co_await coro::delay(engine_, cfg_.bmRtCycles);
    co_return store_.read(node, addr);
}

coro::Task<std::uint64_t>
BmSystem::spinUntil(sim::NodeId node, sim::Pid pid, sim::BmAddr addr,
                    std::function<bool(std::uint64_t)> pred)
{
    for (;;) {
        coro::VersionedEvent &ev = store_.watch(node, addr);
        const std::uint64_t gen = ev.gen();
        const std::uint64_t v = co_await load(node, pid, addr);
        if (pred(v))
            co_return v;
        co_await ev.waitChangedSince(gen);
    }
}

coro::Task<void>
BmSystem::allocEntries(sim::NodeId node, sim::Pid pid, sim::BmAddr addr,
                       std::uint32_t count)
{
    WISYNC_ASSERT(addr + count <= cfg_.words(), "BM allocation OOB");
    // One broadcast allocation message carries base + PID (§4.4); on
    // delivery every node allocates and tags the same entries.
    while (co_await macs_[node]->send(
               false,
               [this, pid, addr, count] {
                   for (std::uint32_t i = 0; i < count; ++i)
                       store_.setTag(addr + i, pid);
               }) == wireless::SendOutcome::GaveUp)
        stats_.sendReissues.inc();
    co_await coro::delay(engine_, cfg_.bmRtCycles);
}

coro::Task<void>
BmSystem::deallocEntries(sim::NodeId node, sim::BmAddr addr,
                         std::uint32_t count)
{
    while (co_await macs_[node]->send(
               false,
               [this, addr, count] {
                   for (std::uint32_t i = 0; i < count; ++i)
                       store_.setTag(addr + i, kNoPid);
               }) == wireless::SendOutcome::GaveUp)
        stats_.sendReissues.inc();
}

bool
BmSystem::allocToneBarrier(sim::BmAddr addr, std::vector<bool> armed)
{
    if (!toneEnabled_)
        return false;
    return tone_->alloc(addr, std::move(armed));
}

void
BmSystem::deallocToneBarrier(sim::BmAddr addr)
{
    if (toneEnabled_)
        tone_->dealloc(addr);
}

} // namespace wisync::bm
