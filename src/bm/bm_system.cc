#include "bm/bm_system.hh"

#include <utility>

#include "sim/logging.hh"

namespace wisync::bm {

BmSystem::BmSystem(sim::Engine &engine, std::uint32_t num_nodes,
                   const BmConfig &cfg, const wireless::WirelessConfig &wcfg,
                   sim::Rng rng, bool with_tone, std::uint32_t num_chips,
                   const noc::BridgeConfig &bridge_cfg)
    : engine_(engine), numNodes_(num_nodes), cfg_(cfg),
      store_(engine, num_nodes, cfg.words())
{
    rebuildChipTopology(wcfg, bridge_cfg, num_chips);
    // Per-node MACs fork the RNG in global node order — the contract
    // that keeps a reset machine's random stream identical to a fresh
    // one regardless of the chip tiling.
    macs_.reserve(numNodes_);
    for (std::uint32_t n = 0; n < numNodes_; ++n)
        macs_.push_back(std::make_unique<wireless::Mac>(
            engine_, *channels_[channelIdxOf(n)],
            *macProtocols_[channelIdxOf(n)], channelLocalNode(n),
            rng.fork()));
    // The bridge's loss stream forks AFTER every Mac (single-chip
    // machines have no bridge, so the per-node streams stay identical
    // across chip counts — and the parent rng is discarded here, so
    // the extra fork perturbs nothing).
    if (bridge_)
        bridge_->setRng(rng.fork());
    toneEnabled_ = with_tone;
    pendingRmw_.resize(numNodes_);
    configureLoss(wcfg);
}

void
BmSystem::rebuildChipTopology(const wireless::WirelessConfig &wcfg,
                              const noc::BridgeConfig &bridge_cfg,
                              std::uint32_t num_chips)
{
    numChips_ = num_chips == 0 ? 1 : num_chips;
    WISYNC_FATAL_IF(numNodes_ % numChips_ != 0,
                    "cores must divide evenly among chips");
    coresPerChip_ = numNodes_ / numChips_;
    plan_ = wireless::FrequencyPlan(numChips_, wcfg.spectrumSlots,
                                    wcfg.channelLossBaseDb,
                                    wcfg.channelLossStepDb);
    channels_.clear();
    macProtocols_.clear();
    for (std::uint32_t ch = 0; ch < plan_.channels(); ++ch) {
        channels_.push_back(
            std::make_unique<wireless::DataChannel>(engine_, wcfg));
        macProtocols_.push_back(wireless::makeMacProtocol(
            wcfg, engine_, *channels_[ch],
            plan_.chipsOnChannel(ch) * coresPerChip_));
    }
    // The Tone channel hardware is always built; whether the config
    // exposes it (WiSync vs WiSyncNoT) is a flag, so reset() can move
    // one machine between kinds without reallocating anything.
    tones_.clear();
    for (std::uint32_t chip = 0; chip < numChips_; ++chip) {
        tones_.push_back(std::make_unique<wireless::ToneChannel>(
            engine_, coresPerChip_, cfg_.allocSlots));
        if (numChips_ == 1)
            tones_[chip]->setReleaseHandler(
                [this](sim::BmAddr addr) { store_.toggleAll(addr); });
        else
            tones_[chip]->setReleaseHandler(
                [this, chip](sim::BmAddr addr) {
                    store_.toggleChip(chip * coresPerChip_, coresPerChip_,
                                      addr);
                });
    }
    bridgeCfg_ = bridge_cfg;
    if (numChips_ > 1) {
        bridge_ = std::make_unique<noc::ChipBridge>(engine_, bridge_cfg);
        globalVersion_.assign(store_.words(), 0);
        appliedVersion_.assign(
            static_cast<std::size_t>(numChips_) * store_.words(), 0);
    } else {
        bridge_.reset();
        globalVersion_.clear();
        appliedVersion_.clear();
    }
    framePool_.clear();
    freeFrames_.clear();
}

void
BmSystem::reset(const BmConfig &cfg, const wireless::WirelessConfig &wcfg,
                sim::Rng rng, bool with_tone, std::uint32_t num_chips,
                const noc::BridgeConfig &bridge_cfg)
{
    WISYNC_FATAL_IF(cfg.words() != cfg_.words() ||
                        cfg.allocSlots != cfg_.allocSlots,
                    "BmSystem::reset cannot change BM capacity");
    cfg_ = cfg;
    store_.reset();
    const std::uint32_t chips = num_chips == 0 ? 1 : num_chips;
    const wireless::FrequencyPlan plan(chips, wcfg.spectrumSlots,
                                       wcfg.channelLossBaseDb,
                                       wcfg.channelLossStepDb);
    if (chips != numChips_ || !(plan == plan_)) {
        // Re-tiling the machine rebuilds the chip-topology objects —
        // the same license the macKind flip below already takes. MACs
        // must rebind to the new channels, so they are rebuilt too,
        // forking the RNG in the same global node order as the
        // constructor.
        rebuildChipTopology(wcfg, bridge_cfg, chips);
        macs_.clear();
        for (std::uint32_t n = 0; n < numNodes_; ++n)
            macs_.push_back(std::make_unique<wireless::Mac>(
                engine_, *channels_[channelIdxOf(n)],
                *macProtocols_[channelIdxOf(n)], channelLocalNode(n),
                rng.fork()));
        // Same fork order as construction: all Macs, then the bridge.
        if (bridge_)
            bridge_->setRng(rng.fork());
    } else {
        for (auto &channel : channels_)
            channel->reset(wcfg);
        // Retiming may select a different MAC protocol; rebuild only
        // then (the common same-kind reset stays allocation-free). The
        // RNG fork order below matches construction either way —
        // protocols never consume machine randomness.
        for (std::uint32_t ch = 0; ch < channels_.size(); ++ch) {
            if (macProtocols_[ch]->kind() != wcfg.macKind)
                macProtocols_[ch] = wireless::makeMacProtocol(
                    wcfg, engine_, *channels_[ch],
                    plan_.chipsOnChannel(ch) * coresPerChip_);
            else
                macProtocols_[ch]->reset();
        }
        // Same fork order as construction: node 0 first.
        for (std::uint32_t n = 0; n < numNodes_; ++n)
            macs_[n]->reset(*macProtocols_[channelIdxOf(n)], rng.fork());
        for (auto &tone : tones_)
            tone->reset();
        if (bridge_) {
            bridge_->reset(bridge_cfg);
            // Same fork order as construction: Macs first, then the
            // bridge's loss stream.
            bridge_->setRng(rng.fork());
        }
        bridgeCfg_ = bridge_cfg;
        std::fill(globalVersion_.begin(), globalVersion_.end(), 0);
        std::fill(appliedVersion_.begin(), appliedVersion_.end(), 0);
        // In-flight frames died with the engine reset; recycle them.
        freeFrames_.clear();
        for (auto &frame : framePool_)
            freeFrames_.push_back(frame.get());
    }
    toneEnabled_ = with_tone;
    pendingRmw_.assign(numNodes_, PendingRmw{});
    stats_.reset();
    configureLoss(wcfg);
}

void
BmSystem::configureLoss(const wireless::WirelessConfig &wcfg)
{
    if (!wcfg.berFromSnr) {
        // The channel construction/reset left the drop table empty;
        // any positive lossPct applies uniformly without a model.
        rfModels_.clear();
        return;
    }
    wireless::RfChannelConfig rc;
    rc.txPowerDbm = wcfg.txPowerDbm;
    // One attenuation matrix per chip: all dies share the geometry
    // (coresPerChip transceivers each) but each folds in its spectrum
    // slot's loss profile — chips sharing a slot share its physics —
    // and overrides stay per chip.
    rfModels_.clear();
    for (std::uint32_t chip = 0; chip < numChips_; ++chip) {
        rc.extraLossDb = plan_.channelLossDb(plan_.channelOf(chip));
        rfModels_.push_back(
            std::make_unique<wireless::RfChannelModel>(coresPerChip_, rc));
    }
    refreshDropTable();
}

void
BmSystem::refreshDropTable()
{
    for (std::uint32_t ch = 0; ch < channels_.size(); ++ch) {
        const std::uint32_t population =
            plan_.chipsOnChannel(ch) * coresPerChip_;
        std::vector<double> data(population);
        std::vector<double> bulk(population);
        for (std::uint32_t i = 0; i < population; ++i) {
            // Channel-local id i -> (chip, on-die transmitter).
            const std::uint32_t chip = plan_.chipAt(ch, i / coresPerChip_);
            const std::uint32_t local = i % coresPerChip_;
            data[i] = rfModels_[chip]->broadcastErrorRate(
                local, wireless::kDataFrameBits);
            bulk[i] = rfModels_[chip]->broadcastErrorRate(
                local, wireless::kBulkFrameBits);
        }
        channels_[ch]->setDropTable(std::move(data), std::move(bulk));
    }
}

void
BmSystem::overrideLinkPathLoss(sim::NodeId tx, sim::NodeId rx, double db)
{
    WISYNC_ASSERT(!rfModels_.empty(),
                  "overrideLinkPathLoss requires berFromSnr");
    const std::uint32_t chip = chipOf(tx);
    WISYNC_ASSERT(chip == chipOf(rx),
                  "cross-chip paths are not wireless links");
    rfModels_[chip]->overridePathLoss(tx % coresPerChip_,
                                      rx % coresPerChip_, db);
    refreshDropTable();
}

void
BmSystem::checkPid(sim::BmAddr addr, sim::Pid pid, std::uint32_t count)
{
    for (std::uint32_t i = 0; i < count; ++i) {
        if (store_.tag(addr + i) != pid) {
            stats_.protectionFaults.inc();
            throw ProtectionFault(addr + i, pid);
        }
    }
}

BmSystem::BridgeFrame *
BmSystem::acquireFrame()
{
    if (freeFrames_.empty()) {
        framePool_.push_back(std::make_unique<BridgeFrame>());
        freeFrames_.push_back(framePool_.back().get());
    }
    BridgeFrame *frame = freeFrames_.back();
    freeFrames_.pop_back();
    return frame;
}

void
BmSystem::releaseFrame(BridgeFrame *frame)
{
    freeFrames_.push_back(frame);
}

void
BmSystem::deliverStore(sim::NodeId src, sim::BmAddr addr,
                       const std::uint64_t *values, std::uint32_t count)
{
    if (numChips_ == 1) {
        for (std::uint32_t i = 0; i < count; ++i)
            store_.writeAll(addr + i, values[i]);
        // AFB: an incoming store that hits the address window of
        // another node's pending RMW breaks that RMW's atomicity
        // (§4.2.1).
        for (sim::NodeId n = 0; n < numNodes_; ++n) {
            PendingRmw &p = pendingRmw_[n];
            if (p.active && n != src && p.addr >= addr &&
                p.addr < addr + count)
                p.afb = true;
        }
        return;
    }
    // Multi-chip: commit on the transmitting chip now; global-scope
    // windows additionally bump the version clocks and cross the
    // bridge. Bulk windows may not mix scopes — the frame is one unit.
    const std::uint32_t chip = chipOf(src);
    const sim::NodeId first = chip * coresPerChip_;
    const bool global = store_.scope(addr) == BmScope::Global;
    BridgeFrame *frame = global ? acquireFrame() : nullptr;
    for (std::uint32_t i = 0; i < count; ++i) {
        WISYNC_ASSERT((store_.scope(addr + i) == BmScope::Global) == global,
                      "bulk store window mixes BM scopes");
        store_.writeChip(first, coresPerChip_, addr + i, values[i]);
        if (frame != nullptr) {
            const std::uint64_t v = ++globalVersion_[addr + i];
            appliedVersion_[static_cast<std::size_t>(chip) *
                                store_.words() +
                            addr + i] = v;
            frame->values[i] = values[i];
            frame->versions[i] = v;
        }
    }
    for (sim::NodeId n = first; n < first + coresPerChip_; ++n) {
        PendingRmw &p = pendingRmw_[n];
        if (p.active && n != src && p.addr >= addr && p.addr < addr + count)
            p.afb = true;
    }
    if (frame != nullptr) {
        frame->addr = addr;
        frame->count = count;
        frame->srcChip = chip;
        bridge_->post(count * 64,
                      [this, frame] { applyBridged(frame); });
    }
}

void
BmSystem::applyBridged(BridgeFrame *frame)
{
    for (std::uint32_t chip = 0; chip < numChips_; ++chip) {
        if (chip == frame->srcChip)
            continue;
        const sim::NodeId first = chip * coresPerChip_;
        for (std::uint32_t i = 0; i < frame->count; ++i) {
            const sim::BmAddr a = frame->addr + i;
            std::uint64_t &applied =
                appliedVersion_[static_cast<std::size_t>(chip) *
                                    store_.words() +
                                a];
            // Last-writer-wins: a later write already landed here
            // (this chip committed it locally while our frame was in
            // flight) — applying the older value would roll it back.
            if (frame->versions[i] <= applied)
                continue;
            applied = frame->versions[i];
            store_.writeChip(first, coresPerChip_, a, frame->values[i]);
            // The bridged commit breaks pending RMWs on this chip
            // exactly like a same-chip delivery would (§4.2.1,
            // extended machine-wide).
            for (sim::NodeId n = first; n < first + coresPerChip_; ++n) {
                PendingRmw &p = pendingRmw_[n];
                if (p.active && p.addr == a)
                    p.afb = true;
            }
        }
    }
    releaseFrame(frame);
}

void
BmSystem::deliverRmw(sim::NodeId node, sim::BmAddr addr,
                     std::uint64_t value)
{
    if (numChips_ > 1 && store_.scope(addr) == BmScope::Global) {
        PendingRmw &p = pendingRmw_[node];
        // Unlike same-chip commits (serialized on our channel, so they
        // cannot land mid-transmission), a bridged frame can arrive
        // between winning the slot and this delivery instant — honor
        // the AFB it raised. And if the local replica was stale when we
        // read it (our chip has not applied the latest global version),
        // the value we computed is based on a lost update: abort.
        if (p.afb ||
            appliedVersion_[static_cast<std::size_t>(chipOf(node)) *
                                store_.words() +
                            addr] != globalVersion_[addr]) {
            if (!p.afb)
                stats_.staleRmwAborts.inc();
            p.afb = true;
            return;
        }
    }
    deliverStore(node, addr, &value, 1);
}

coro::Task<std::uint64_t>
BmSystem::load(sim::NodeId node, sim::Pid pid, sim::BmAddr addr)
{
    checkPid(addr, pid);
    stats_.loads.inc();
    co_await coro::delay(engine_, cfg_.bmRtCycles);
    co_return store_.read(node, addr);
}

coro::Task<void>
BmSystem::store(sim::NodeId node, sim::Pid pid, sim::BmAddr addr,
                std::uint64_t value)
{
    checkPid(addr, pid);
    stats_.stores.inc();
    // A store has no abort path: if the reliability layer gives up,
    // the controller re-issues the whole send (fresh retry budget) —
    // WCB simply sets later. No replica changed in between, so the
    // chip-wide write order is unaffected.
    while (co_await macs_[node]->send(false,
                                      [this, node, addr, value] {
                                          const std::uint64_t v = value;
                                          deliverStore(node, addr, &v, 1);
                                      }) ==
           wireless::SendOutcome::GaveUp)
        stats_.sendReissues.inc();
    // Local BM write + WCB after the broadcast succeeds (§4.2.1).
    co_await coro::delay(engine_, cfg_.bmRtCycles);
}

coro::Task<std::array<std::uint64_t, 4>>
BmSystem::bulkLoad(sim::NodeId node, sim::Pid pid, sim::BmAddr addr)
{
    checkPid(addr, pid, 4);
    stats_.loads.inc();
    co_await coro::delay(engine_, cfg_.bmRtCycles);
    std::array<std::uint64_t, 4> out;
    for (std::uint32_t i = 0; i < 4; ++i)
        out[i] = store_.read(node, addr + i);
    co_return out;
}

coro::Task<void>
BmSystem::bulkStore(sim::NodeId node, sim::Pid pid, sim::BmAddr addr,
                    std::array<std::uint64_t, 4> values)
{
    checkPid(addr, pid, 4);
    stats_.stores.inc();
    stats_.bulkStores.inc();
    while (co_await macs_[node]->send(
               true,
               [this, node, addr, values] {
                   deliverStore(node, addr, values.data(), 4);
               }) == wireless::SendOutcome::GaveUp)
        stats_.sendReissues.inc();
    co_await coro::delay(engine_, cfg_.bmRtCycles);
}

coro::Task<RmwResult>
BmSystem::fetchAdd(sim::NodeId node, sim::Pid pid, sim::BmAddr addr,
                   std::uint64_t delta)
{
    checkPid(addr, pid);
    stats_.rmws.inc();
    co_await coro::delay(engine_, cfg_.bmRtCycles); // local BM read
    PendingRmw &p = pendingRmw_[node];
    WISYNC_ASSERT(!p.active, "one outstanding RMW per node");
    p.active = true;
    p.addr = addr;
    p.afb = false;
    const std::uint64_t old = store_.read(node, addr);
    co_await coro::delay(engine_, cfg_.rmwModifyCycles); // pipeline modify
    const std::uint64_t desired = old + delta;
    const std::function<bool()> abort = [&p] { return p.afb; };
    const auto sent = co_await macs_[node]->send(
        false,
        [this, node, addr, desired] { deliverRmw(node, addr, desired); },
        &abort);
    // A reliability-layer give-up rides the AFB contract: the write
    // never occurred, the instruction completes, software retries
    // (Fig. 4(a)) — identical observable semantics, no new hang path.
    const bool failed =
        p.afb || sent == wireless::SendOutcome::GaveUp;
    p.active = false;
    if (failed) {
        stats_.afbFailures.inc();
    } else {
        co_await coro::delay(engine_, cfg_.bmRtCycles); // local write
    }
    co_return RmwResult{old, failed};
}

coro::Task<RmwResult>
BmSystem::testAndSet(sim::NodeId node, sim::Pid pid, sim::BmAddr addr)
{
    checkPid(addr, pid);
    stats_.rmws.inc();
    co_await coro::delay(engine_, cfg_.bmRtCycles);
    PendingRmw &p = pendingRmw_[node];
    WISYNC_ASSERT(!p.active, "one outstanding RMW per node");
    p.active = true;
    p.addr = addr;
    p.afb = false;
    const std::uint64_t old = store_.read(node, addr);
    co_await coro::delay(engine_, cfg_.rmwModifyCycles);
    const std::function<bool()> abort = [&p] { return p.afb; };
    const auto sent = co_await macs_[node]->send(
        false, [this, node, addr] { deliverRmw(node, addr, 1); }, &abort);
    // Give-up -> AFB, as in fetchAdd.
    const bool failed =
        p.afb || sent == wireless::SendOutcome::GaveUp;
    p.active = false;
    if (failed) {
        stats_.afbFailures.inc();
    } else {
        co_await coro::delay(engine_, cfg_.bmRtCycles);
    }
    co_return RmwResult{old, failed};
}

coro::Task<BmCasResult>
BmSystem::cas(sim::NodeId node, sim::Pid pid, sim::BmAddr addr,
              std::uint64_t expected, std::uint64_t desired)
{
    checkPid(addr, pid);
    stats_.rmws.inc();
    co_await coro::delay(engine_, cfg_.bmRtCycles);
    PendingRmw &p = pendingRmw_[node];
    WISYNC_ASSERT(!p.active, "one outstanding RMW per node");
    p.active = true;
    p.addr = addr;
    p.afb = false;
    const std::uint64_t old = store_.read(node, addr);
    co_await coro::delay(engine_, cfg_.rmwModifyCycles);
    if (old != expected) {
        // Comparison failed: no write is attempted (Fig. 4(b) retries
        // straight away without consulting AFB).
        p.active = false;
        co_return BmCasResult{old, false, false};
    }
    const std::function<bool()> abort = [&p] { return p.afb; };
    const auto sent = co_await macs_[node]->send(
        false,
        [this, node, addr, desired] { deliverRmw(node, addr, desired); },
        &abort);
    // Give-up -> AFB, as in fetchAdd.
    const bool failed =
        p.afb || sent == wireless::SendOutcome::GaveUp;
    p.active = false;
    if (failed) {
        stats_.afbFailures.inc();
    } else {
        co_await coro::delay(engine_, cfg_.bmRtCycles);
    }
    co_return BmCasResult{old, true, failed};
}

coro::Task<std::uint64_t>
BmSystem::fetchAddRetry(sim::NodeId node, sim::Pid pid, sim::BmAddr addr,
                        std::uint64_t delta)
{
    for (;;) {
        const RmwResult r = co_await fetchAdd(node, pid, addr, delta);
        if (!r.atomicityFailed)
            co_return r.oldValue;
    }
}

coro::Task<std::uint64_t>
BmSystem::testAndSetRetry(sim::NodeId node, sim::Pid pid, sim::BmAddr addr)
{
    for (;;) {
        const RmwResult r = co_await testAndSet(node, pid, addr);
        if (!r.atomicityFailed)
            co_return r.oldValue;
    }
}

coro::Task<void>
BmSystem::toneStore(sim::NodeId node, sim::Pid pid, sim::BmAddr addr)
{
    checkPid(addr, pid);
    WISYNC_ASSERT(toneEnabled_,
                  "tone_st requires the Tone channel (WiSync config)");
    stats_.toneStores.inc();
    co_await coro::delay(engine_, 1); // tone-controller access
    wireless::ToneChannel &tone = *tones_[chipOf(node)];
    const sim::NodeId local = node % coresPerChip_;
    WISYNC_ASSERT(tone.isArmed(addr, local),
                  "tone_st from a node not armed for this barrier");
    if (tone.needsAnnouncement(addr)) {
        // First arrival (from this node's view): the tone controller
        // announces the barrier on the Data channel with the Tone bit
        // set. tone_st itself retires immediately — the MAC transmits
        // asynchronously. If another node's announcement wins the race
        // (or the whole barrier completes) while ours waits in the
        // MAC, the controller cancels the now-redundant message at
        // its transmit slot.
        stats_.toneAnnouncements.inc();
        tone.arrive(addr, local); // pending until activation
        coro::spawnDetached(engine_,
                            announceTask(node, addr, tone.epochOf(addr)));
    } else {
        tone.arrive(addr, local); // drop our tone
    }
}

coro::Task<void>
BmSystem::announceTask(sim::NodeId node, sim::BmAddr addr,
                       std::uint64_t epoch)
{
    // The announcement travels on this chip's Data channel and acts on
    // this chip's tone controller (tone barriers are per-die hardware).
    wireless::ToneChannel *tone = tones_[chipOf(node)].get();
    // The abort predicate lives in this frame for the whole send.
    const std::function<bool()> abort = [tone, addr, epoch] {
        return tone->isActive(addr) || tone->epochOf(addr) != epoch;
    };
    // Never a lost wakeup: an announcement the reliability layer gave
    // up on is re-issued until it is either delivered or genuinely
    // redundant (the abort predicate fires because another node's
    // announcement activated the barrier, or the epoch moved on).
    while (co_await macs_[node]->send(
               false, [tone, addr] { tone->activate(addr); },
               &abort) == wireless::SendOutcome::GaveUp)
        stats_.sendReissues.inc();
}

coro::Task<std::uint64_t>
BmSystem::toneLoad(sim::NodeId node, sim::Pid pid, sim::BmAddr addr)
{
    checkPid(addr, pid);
    co_await coro::delay(engine_, cfg_.bmRtCycles);
    co_return store_.read(node, addr);
}

coro::Task<std::uint64_t>
BmSystem::spinUntil(sim::NodeId node, sim::Pid pid, sim::BmAddr addr,
                    std::function<bool(std::uint64_t)> pred)
{
    for (;;) {
        coro::VersionedEvent &ev = store_.watch(node, addr);
        const std::uint64_t gen = ev.gen();
        const std::uint64_t v = co_await load(node, pid, addr);
        if (pred(v))
            co_return v;
        co_await ev.waitChangedSince(gen);
    }
}

coro::Task<void>
BmSystem::allocEntries(sim::NodeId node, sim::Pid pid, sim::BmAddr addr,
                       std::uint32_t count)
{
    WISYNC_ASSERT(addr + count <= cfg_.words(), "BM allocation OOB");
    // One broadcast allocation message carries base + PID (§4.4); on
    // delivery every node allocates and tags the same entries. On a
    // multi-chip machine the tags apply machine-wide at the delivery
    // instant: allocation is setup-plane metadata, not data — modeling
    // its bridge crossing would only delay tag visibility, never
    // reorder data commits.
    while (co_await macs_[node]->send(
               false,
               [this, pid, addr, count] {
                   for (std::uint32_t i = 0; i < count; ++i)
                       store_.setTag(addr + i, pid);
               }) == wireless::SendOutcome::GaveUp)
        stats_.sendReissues.inc();
    co_await coro::delay(engine_, cfg_.bmRtCycles);
}

coro::Task<void>
BmSystem::deallocEntries(sim::NodeId node, sim::BmAddr addr,
                         std::uint32_t count)
{
    while (co_await macs_[node]->send(
               false,
               [this, addr, count] {
                   for (std::uint32_t i = 0; i < count; ++i)
                       store_.setTag(addr + i, kNoPid);
               }) == wireless::SendOutcome::GaveUp)
        stats_.sendReissues.inc();
}

bool
BmSystem::allocToneBarrier(sim::BmAddr addr, std::vector<bool> armed)
{
    if (!toneEnabled_)
        return false;
    if (numChips_ == 1)
        return tones_[0]->alloc(addr, std::move(armed));
    // Tone barriers are per-die hardware: the armed set must sit on
    // one chip. A spanning set is not an error — the caller falls back
    // to a Data-channel barrier (and, above that, the multi-chip
    // composite barrier).
    WISYNC_ASSERT(armed.size() == numNodes_,
                  "armed vector must cover every node");
    std::uint32_t chip = numChips_;
    for (std::uint32_t n = 0; n < numNodes_; ++n) {
        if (!armed[n])
            continue;
        if (chip == numChips_)
            chip = chipOf(n);
        else if (chipOf(n) != chip)
            return false;
    }
    if (chip == numChips_)
        return false; // nobody armed
    std::vector<bool> local(coresPerChip_, false);
    for (std::uint32_t l = 0; l < coresPerChip_; ++l)
        local[l] = armed[chip * coresPerChip_ + l];
    if (!tones_[chip]->alloc(addr, std::move(local)))
        return false;
    // The barrier word toggles on this chip only; mark it chip-local
    // so the release neither crosses the bridge nor trips the global
    // consistency invariant. The scope sticks until the next reset —
    // the BM allocator never reuses words within a run.
    store_.setScope(addr, BmScope::ChipLocal);
    return true;
}

void
BmSystem::deallocToneBarrier(sim::BmAddr addr)
{
    if (!toneEnabled_)
        return;
    for (auto &tone : tones_)
        if (tone->isAllocated(addr))
            tone->dealloc(addr);
}

bool
BmSystem::anyToneArmedOn(sim::NodeId node) const
{
    if (!toneEnabled_)
        return false;
    return tones_[chipOf(node)]->anyArmedOn(node % coresPerChip_);
}

} // namespace wisync::bm
