#include "mem/cache.hh"

#include <bit>

#include "sim/logging.hh"

namespace wisync::mem {

CacheArray::CacheArray(std::uint32_t size_bytes, std::uint32_t assoc,
                       std::uint32_t line_bytes)
    : assoc_(assoc), lineBytes_(line_bytes)
{
    WISYNC_ASSERT(assoc > 0 && line_bytes > 0, "bad cache geometry");
    WISYNC_ASSERT(std::has_single_bit(line_bytes),
                  "line size must be a power of two");
    WISYNC_ASSERT(size_bytes % (assoc * line_bytes) == 0,
                  "size must be a multiple of assoc * line");
    numSets_ = size_bytes / (assoc * line_bytes);
    lines_.resize(static_cast<std::size_t>(numSets_) * assoc_);
}

void
CacheArray::reset()
{
    ++gen_;
    clock_ = 0;
}

CacheLine *
CacheArray::lookup(sim::Addr line_addr)
{
    CacheLine *line = peek(line_addr);
    if (line)
        line->lruStamp = ++clock_;
    return line;
}

CacheLine *
CacheArray::peek(sim::Addr line_addr)
{
    const std::size_t base =
        static_cast<std::size_t>(setOf(line_addr)) * assoc_;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        CacheLine &line = lines_[base + w];
        if (line.gen == gen_ && line.valid() &&
            line.lineAddr == line_addr)
            return &line;
    }
    return nullptr;
}

CacheLine *
CacheArray::victimFor(sim::Addr line_addr)
{
    const std::size_t base =
        static_cast<std::size_t>(setOf(line_addr)) * assoc_;
    CacheLine *victim = &lines_[base];
    bool victim_valid = false;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        CacheLine &line = lines_[base + w];
        if (line.gen != gen_ || !line.valid()) {
            // Stale-epoch lines are free slots; scrub so the caller
            // never mistakes one for an evictable resident.
            line.state = CohState::Invalid;
            line.gen = gen_;
            return &line;
        }
        if (!victim_valid || line.lruStamp < victim->lruStamp) {
            victim = &line;
            victim_valid = true;
        }
    }
    return victim;
}

void
CacheArray::install(CacheLine *slot, sim::Addr line_addr, CohState state)
{
    WISYNC_ASSERT(slot != nullptr, "install into null slot");
    slot->lineAddr = line_addr;
    slot->state = state;
    slot->lruStamp = ++clock_;
    slot->gen = gen_;
}

} // namespace wisync::mem
