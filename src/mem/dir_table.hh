/**
 * @file
 * Open-addressed, entry-pooling coherence directory.
 *
 * The per-bank directory used to be an
 * unordered_map<Addr, unique_ptr<DirEntry>>: one heap allocation per
 * touched line, all freed again on Machine::reset. For sweep loops
 * that reset the same machine thousands of times, that alloc/free
 * churn is pure overhead — the set of touched lines is nearly
 * identical across sweep points.
 *
 * DirTable replaces it with
 *   - a linear-probing hash table of (line -> DirEntry*) slots, and
 *   - a pool of DirEntry objects with stable addresses that are
 *     *recycled* (pushed onto a free list) on reset() instead of
 *     destroyed, so the next run re-acquires warm entries — including
 *     their sharer-bitmap capacity — without touching the allocator.
 *
 * Entry pointers are stable for the life of the table: coroutines
 * legitimately hold DirEntry& across awaits while later insertions
 * rehash the slot array underneath them.
 *
 * erase() uses tombstones (the standard open-addressing deletion
 * scheme); a rehash triggered by occupancy — live entries for growth,
 * live+tombstones for same-size cleanup — keeps probe chains short at
 * high load factor. The current protocol never erases mid-run, but
 * sparse-directory eviction (a ROADMAP direction) will.
 */

#ifndef WISYNC_MEM_DIR_TABLE_HH
#define WISYNC_MEM_DIR_TABLE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "coro/primitives.hh"
#include "sim/types.hh"

namespace wisync::mem {

/** Directory entry: MOESI owner/sharers plus the MSHR mutex. */
struct DirEntry
{
    explicit DirEntry(sim::Engine &eng) : busy(eng) {}
    sim::NodeId owner = sim::kNoNode;
    std::vector<std::uint64_t> sharers; // bitmap
    bool inL2 = false;
    coro::SimMutex busy;
};

/** One bank's directory: pooled entries behind an open-addressed map. */
class DirTable
{
  public:
    /** Allocation/recycling counters (monotonic over the table's life). */
    struct Stats
    {
        std::uint64_t allocated = 0; ///< entries constructed (pool growth)
        std::uint64_t recycled = 0;  ///< entries served from the free list
        std::uint64_t rehashes = 0;  ///< slot-array rebuilds (any cause)
    };

    /**
     * @p sharer_words is the bitmap length every entry carries
     * ((numNodes + 63) / 64); @p engine owns the entries' MSHR mutexes.
     */
    DirTable(sim::Engine &engine, std::uint32_t sharer_words);

    DirTable(const DirTable &) = delete;
    DirTable &operator=(const DirTable &) = delete;
    DirTable(DirTable &&) = default;

    /**
     * The entry for @p line, created (from the free list when possible)
     * if absent. The reference is stable until the table is destroyed —
     * reset() recycles the object but later acquisitions of any line
     * may hand it out again.
     */
    DirEntry &operator[](sim::Addr line);

    /** The entry for @p line, or nullptr. */
    DirEntry *find(sim::Addr line);

    /**
     * Recycle @p line's entry (tombstoning its slot). True if present.
     * Only legal while no coroutine still references the entry.
     */
    bool erase(sim::Addr line);

    /**
     * Return every entry to the free list and clear the map, keeping
     * the slot array and all entry capacity for the next run. Only
     * legal after the engine destroyed any frames parked on the
     * entries' mutexes (Machine::reset does this first).
     */
    void reset();

    std::size_t size() const { return size_; }
    std::size_t tombstones() const { return tombstones_; }
    std::size_t slotCount() const { return slots_.size(); }
    /** Entries sitting in the free list right now. */
    std::size_t freeCount() const { return free_.size(); }
    const Stats &stats() const { return stats_; }

  private:
    struct Slot
    {
        sim::Addr key = 0;
        DirEntry *entry = nullptr; ///< null = empty, kTombstone = deleted
    };

    static DirEntry *tombstone();
    static std::size_t hashOf(sim::Addr line);

    /** Probe for @p line; @return its slot, or the insertion slot. */
    std::size_t probe(sim::Addr line) const;

    /** Rebuild the slot array with @p new_count slots (drops tombstones). */
    void rehash(std::size_t new_count);

    /** A scrubbed entry ready for first use on a new line. */
    DirEntry *acquireEntry();

    sim::Engine &engine_;
    std::uint32_t sharerWords_;
    std::vector<Slot> slots_;
    /** Every entry ever built: stable storage behind the slot array. */
    std::vector<std::unique_ptr<DirEntry>> pool_;
    std::vector<DirEntry *> free_;
    std::size_t size_ = 0;
    std::size_t tombstones_ = 0;
    Stats stats_;
};

} // namespace wisync::mem

#endif // WISYNC_MEM_DIR_TABLE_HH
