#include "mem/memory.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace wisync::mem {

std::uint64_t
Memory::read64(sim::Addr addr) const
{
    WISYNC_ASSERT((addr & 7) == 0, "unaligned 64-bit read");
    const auto it = words_.find(addr);
    return it == words_.end() ? 0 : it->second;
}

void
Memory::write64(sim::Addr addr, std::uint64_t value)
{
    WISYNC_ASSERT((addr & 7) == 0, "unaligned 64-bit write");
    words_[addr] = value;
}

std::uint64_t
Memory::fingerprint() const
{
    // Commutative accumulation makes the digest independent of the
    // unordered_map's iteration order.
    std::uint64_t acc = 0x5851F42D4C957F2Dull;
    for (const auto &[addr, value] : words_)
        acc += sim::mix64(addr ^ sim::mix64(value));
    return acc;
}

} // namespace wisync::mem
