#include "mem/memory.hh"

#include "sim/logging.hh"

namespace wisync::mem {

std::uint64_t
Memory::read64(sim::Addr addr) const
{
    WISYNC_ASSERT((addr & 7) == 0, "unaligned 64-bit read");
    const auto it = words_.find(addr);
    return it == words_.end() ? 0 : it->second;
}

void
Memory::write64(sim::Addr addr, std::uint64_t value)
{
    WISYNC_ASSERT((addr & 7) == 0, "unaligned 64-bit write");
    words_[addr] = value;
}

} // namespace wisync::mem
