/**
 * @file
 * Set-associative cache tag array with MOESI line states.
 *
 * Holds tags and coherence state only (the functional value store is
 * mem::Memory). Used for both private L1s and shared L2 banks.
 */

#ifndef WISYNC_MEM_CACHE_HH
#define WISYNC_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace wisync::mem {

/** MOESI coherence states. */
enum class CohState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Owned,
    Modified,
};

/** True if the state permits reading without a transaction. */
inline bool
canRead(CohState s)
{
    return s != CohState::Invalid;
}

/** True if the state permits writing without a transaction. */
inline bool
canWrite(CohState s)
{
    return s == CohState::Exclusive || s == CohState::Modified;
}

/** True if this copy is responsible for supplying dirty data. */
inline bool
isOwner(CohState s)
{
    return s == CohState::Modified || s == CohState::Owned ||
           s == CohState::Exclusive;
}

/**
 * One cache line's bookkeeping.
 *
 * Deliberately no field initializers: the tag arrays are megabytes of
 * these, and value-initialization of an NSDMI-free aggregate is a
 * single memset. All-zero is the correct initial state (Invalid == 0,
 * epoch 0); CacheArray's vector value-initializes every element.
 */
struct CacheLine
{
    sim::Addr lineAddr;
    std::uint64_t lruStamp;
    /**
     * Epoch stamp: lines from older epochs read as invalid. 32 bits
     * shares the tail padding with `state`, keeping the line at 24
     * bytes; a false hit would need a line untouched across exactly
     * 2^32 resets, which no real sweep approaches.
     */
    std::uint32_t gen;
    CohState state;
    bool valid() const { return state != CohState::Invalid; }
};
static_assert(sizeof(CacheLine) == 24, "tag arrays are size-critical");
static_assert(static_cast<int>(CohState::Invalid) == 0,
              "zero-init must mean Invalid");

/**
 * Tag array: size/assoc/line-size in bytes, true-LRU replacement.
 */
class CacheArray
{
  public:
    CacheArray(std::uint32_t size_bytes, std::uint32_t assoc,
               std::uint32_t line_bytes);

    /** Aligned line address containing @p addr. */
    sim::Addr lineOf(sim::Addr addr) const
    {
        return addr & ~static_cast<sim::Addr>(lineBytes_ - 1);
    }

    /**
     * Find a valid line (touches LRU).
     * @return The line, or nullptr on miss.
     */
    CacheLine *lookup(sim::Addr line_addr);

    /** Find without touching LRU (for probes). */
    CacheLine *peek(sim::Addr line_addr);

    /**
     * Choose where @p line_addr would be installed: an invalid way if
     * available, else the LRU way (whose previous contents the caller
     * must evict). Does not modify the line.
     */
    CacheLine *victimFor(sim::Addr line_addr);

    /** Install @p line_addr into @p slot with @p state (touches LRU). */
    void install(CacheLine *slot, sim::Addr line_addr, CohState state);

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t lineBytes() const { return lineBytes_; }

    /**
     * Invalidate every line and rewind the LRU clock, in O(1): the
     * array's epoch is bumped and stale-epoch lines read as invalid
     * (they are re-stamped on install). A 512 KB bank holds megabytes
     * of tag state; sweeping it per Machine::reset would cost more
     * than the reset saves.
     */
    void reset();

  private:
    std::uint32_t setOf(sim::Addr line_addr) const
    {
        return static_cast<std::uint32_t>((line_addr / lineBytes_) %
                                          numSets_);
    }

    std::uint32_t assoc_;
    std::uint32_t lineBytes_;
    std::uint32_t numSets_;
    std::uint64_t clock_ = 0;
    std::uint32_t gen_ = 0; // current epoch (see reset())
    std::vector<CacheLine> lines_; // numSets_ x assoc_
};

} // namespace wisync::mem

#endif // WISYNC_MEM_CACHE_HH
