/**
 * @file
 * Functional backing store for the regular (cacheable) address space.
 *
 * The simulator splits function from timing: values live here with
 * word granularity, while caches/directories model only timing and
 * coherence state. A value is read/written at the instant the timing
 * model commits the corresponding access, so observed interleavings
 * are always consistent with the modelled coherence order.
 */

#ifndef WISYNC_MEM_MEMORY_HH
#define WISYNC_MEM_MEMORY_HH

#include <cstdint>
#include <unordered_map>

#include "sim/types.hh"

namespace wisync::mem {

/** Sparse 64-bit-word functional memory (zero-initialised). */
class Memory
{
  public:
    /** Read the aligned 64-bit word at @p addr. */
    std::uint64_t read64(sim::Addr addr) const;

    /** Write the aligned 64-bit word at @p addr. */
    void write64(sim::Addr addr, std::uint64_t value);

    /** Number of words ever written (for tests). */
    std::size_t footprintWords() const { return words_.size(); }

    /** Forget every written word (back to all-zero memory). */
    void clear() { words_.clear(); }

    /**
     * Order-independent digest of the full (addr, value) contents.
     * Two memories fingerprint equal iff they hold the same words —
     * used by the reset-equivalence tests to compare final state
     * without exposing the map.
     */
    std::uint64_t fingerprint() const;

  private:
    std::unordered_map<sim::Addr, std::uint64_t> words_;
};

} // namespace wisync::mem

#endif // WISYNC_MEM_MEMORY_HH
