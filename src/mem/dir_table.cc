#include "mem/dir_table.hh"

#include "sim/logging.hh"

namespace wisync::mem {

namespace {

/** Initial slot count per bank; a power of two (masked probing). */
constexpr std::size_t kInitialSlots = 64;

/**
 * Occupancy ceiling, in tenths. Beyond it probe chains degrade, so an
 * insert that would cross it rehashes first: doubling when live
 * entries alone are the pressure, same-size (tombstone purge) when
 * deletions are.
 */
constexpr std::size_t kMaxLoadTenths = 7;

} // namespace

DirTable::DirTable(sim::Engine &engine, std::uint32_t sharer_words)
    : engine_(engine), sharerWords_(sharer_words), slots_(kInitialSlots)
{}

DirEntry *
DirTable::tombstone()
{
    // A non-null sentinel that can never alias a pooled entry.
    static DirEntry *const tomb =
        reinterpret_cast<DirEntry *>(std::uintptr_t{1});
    return tomb;
}

std::size_t
DirTable::hashOf(sim::Addr line)
{
    // splitmix64 finalizer: line addresses differ only in a few middle
    // bits (low bits are the line offset, high bits the region), so
    // identity hashing would cluster badly under linear probing.
    std::uint64_t x = line;
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x);
}

std::size_t
DirTable::probe(sim::Addr line) const
{
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hashOf(line) & mask;
    std::size_t first_tomb = slots_.size(); // "none seen"
    for (;;) {
        const Slot &s = slots_[i];
        if (s.entry == nullptr)
            return first_tomb < slots_.size() ? first_tomb : i;
        if (s.entry == tombstone()) {
            if (first_tomb == slots_.size())
                first_tomb = i;
        } else if (s.key == line) {
            return i;
        }
        i = (i + 1) & mask;
    }
}

DirEntry *
DirTable::acquireEntry()
{
    DirEntry *e;
    if (!free_.empty()) {
        e = free_.back();
        free_.pop_back();
        ++stats_.recycled;
    } else {
        pool_.push_back(std::make_unique<DirEntry>(engine_));
        e = pool_.back().get();
        ++stats_.allocated;
    }
    // Scrub on acquisition (not on release): assign() reuses the
    // bitmap's capacity, so a recycled entry allocates nothing.
    e->owner = sim::kNoNode;
    e->inL2 = false;
    e->sharers.assign(sharerWords_, 0);
    e->busy.reset();
    return e;
}

DirEntry &
DirTable::operator[](sim::Addr line)
{
    std::size_t i = probe(line);
    if (slots_[i].entry != nullptr && slots_[i].entry != tombstone())
        return *slots_[i].entry;

    // Inserting: keep occupancy (live + tombstones) under the ceiling.
    if ((size_ + tombstones_ + 1) * 10 > slots_.size() * kMaxLoadTenths) {
        // Live entries past half capacity: double. Otherwise the
        // pressure is tombstones — purge them at the same size.
        const bool grow = (size_ + 1) * 2 > slots_.size();
        rehash(grow ? slots_.size() * 2 : slots_.size());
        i = probe(line);
    }

    Slot &s = slots_[i];
    if (s.entry == tombstone())
        --tombstones_;
    s.key = line;
    s.entry = acquireEntry();
    ++size_;
    return *s.entry;
}

DirEntry *
DirTable::find(sim::Addr line)
{
    const std::size_t i = probe(line);
    Slot &s = slots_[i];
    if (s.entry == nullptr || s.entry == tombstone())
        return nullptr;
    return s.entry;
}

bool
DirTable::erase(sim::Addr line)
{
    const std::size_t i = probe(line);
    Slot &s = slots_[i];
    if (s.entry == nullptr || s.entry == tombstone())
        return false;
    free_.push_back(s.entry);
    s.entry = tombstone();
    --size_;
    ++tombstones_;
    return true;
}

void
DirTable::reset()
{
    for (Slot &s : slots_) {
        if (s.entry != nullptr && s.entry != tombstone())
            free_.push_back(s.entry);
        s.entry = nullptr;
    }
    size_ = 0;
    tombstones_ = 0;
}

void
DirTable::rehash(std::size_t new_count)
{
    WISYNC_ASSERT((new_count & (new_count - 1)) == 0,
                  "DirTable slot count must stay a power of two");
    std::vector<Slot> old;
    old.swap(slots_);
    slots_.assign(new_count, Slot{});
    tombstones_ = 0;
    ++stats_.rehashes;
    const std::size_t mask = new_count - 1;
    for (const Slot &s : old) {
        if (s.entry == nullptr || s.entry == tombstone())
            continue;
        std::size_t i = hashOf(s.key) & mask;
        while (slots_[i].entry != nullptr)
            i = (i + 1) & mask;
        slots_[i] = s;
    }
}

} // namespace wisync::mem
