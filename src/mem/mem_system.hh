/**
 * @file
 * Coherent memory hierarchy: private L1s, shared banked L2 with an
 * embedded MOESI directory, and off-chip DRAM behind 4 controllers.
 *
 * Timing parameters follow the paper's Table 1:
 *   L1: private 32 KB, 2-way, 2-cycle RT, 64 B lines
 *   L2: shared, per-core 512 KB banks, 8-way, 6-cycle RT (local bank)
 *   Coherence: MOESI, directory embedded at the home L2 bank
 *   Off-chip: 4 memory controllers, 110-cycle RT
 *
 * Transaction model: each miss is a coroutine that (1) sends a request
 * to the home bank over the mesh, (2) acquires the line's busy mutex
 * (the directory MSHR), (3) performs probe/invalidation/data legs as
 * parallel sub-tasks, (4) installs the line, commits the functional
 * value, and releases the mutex. Per-line transactions are therefore
 * serialized exactly as a blocking directory would.
 *
 * Modelling notes (documented simplifications):
 *  - Clean (S/E) L1 evictions are silent; the directory may briefly
 *    hold stale sharers, and invalidating a non-holder costs a wasted
 *    message + ack, as in real sparse directories.
 *  - Dirty evictions post a detached writeback message; because values
 *    are functional, a probe racing the writeback simply falls back to
 *    the L2/DRAM copy, which is always value-correct.
 *  - DRAM: fixed 110-cycle round trip with 8 outstanding requests per
 *    controller.
 */

#ifndef WISYNC_MEM_MEM_SYSTEM_HH
#define WISYNC_MEM_MEM_SYSTEM_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>

#include "coro/primitives.hh"
#include "coro/task.hh"
#include "coro/watch_table.hh"
#include "mem/cache.hh"
#include "mem/dir_table.hh"
#include "mem/memory.hh"
#include "noc/mesh.hh"
#include "sim/engine.hh"
#include "sim/env.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace wisync::mem {

/** Memory hierarchy timing/geometry knobs (Table 1 defaults). */
struct MemConfig
{
    std::uint32_t lineBytes = 64;
    std::uint32_t l1SizeBytes = 32 * 1024;
    std::uint32_t l1Assoc = 2;
    std::uint32_t l1RtCycles = 2;
    std::uint32_t l2BankSizeBytes = 512 * 1024;
    std::uint32_t l2Assoc = 8;
    std::uint32_t l2RtCycles = 6;
    std::uint32_t dramRtCycles = 110;
    std::uint32_t numMemCtrls = 4;
    std::uint32_t dramOutstanding = 8;
    /** Control message payload (req/inv/ack), bits. */
    std::uint32_t ctrlBits = 80;
    /** Data message: 64 B line + header, bits. */
    std::uint32_t dataBits = 64 * 8 + 80;
    /** Frameless L1-hit fast path (host-time only; cycle-exact). */
    bool fastpath = sim::fastpathDefault();

    /** Field-wise equality (MachineConfig::operator== / fingerprint). */
    bool operator==(const MemConfig &) const = default;
};

/** Result of a compare-and-swap. */
struct CasResult
{
    std::uint64_t oldValue;
    bool success;
};

/** Hierarchy-wide statistics. */
struct MemStats
{
    sim::Counter loads;
    sim::Counter stores;
    sim::Counter rmws;
    sim::Counter l1Hits;
    sim::Counter l1Misses;
    sim::Counter upgrades;
    sim::Counter invalidations;
    sim::Counter writebacks;
    sim::Counter dramFetches;
    sim::Counter l2Recalls;
    sim::Accumulator missLatency;
    /** Accesses served frameless on the L1-hit fast path. */
    sim::Counter fastpathHits;
    /** Fast-path accesses that missed and fell into the coroutine
     *  transaction (only counted while the fast path is enabled). */
    sim::Counter fastpathFallbacks;

    /** Zero everything (assignment cannot miss a late-added field). */
    void reset() { *this = {}; }
};

/**
 * The coherent hierarchy for one simulated chip.
 *
 * Core-facing API: every operation is an awaitable resolving when the
 * access commits. All value semantics are 64-bit words.
 *
 * With MemConfig::fastpath (default on, kill switch
 * WISYNC_NO_FASTPATH=1) the five word operations return a frameless
 * Access awaitable: the L1 round trip is one plain callback event —
 * scheduled at the instant, and firing at the cycle, the coroutine's
 * delay awaiter would — and an L1 hit commits and resumes the caller
 * right there, with no coroutine frame at all. A miss falls into the
 * ordinary fetchLine transaction *inside that same event* (the
 * transaction coroutine starts inline and its completion resumes the
 * caller inline, exactly where the nested-coroutine path would), so
 * the event order — and therefore every simulated cycle — is
 * bit-identical with the fast path on or off.
 */
class MemSystem
{
  public:
    MemSystem(sim::Engine &engine, noc::Mesh &mesh, Memory &memory,
              std::uint32_t num_nodes, const MemConfig &cfg);

    /** Destination/sharer list type shared with the mesh layer. */
    using NodeVec = noc::Mesh::NodeVec;

    /** The five word-access operations (see Access below). */
    enum class OpKind : std::uint8_t
    {
        Load,
        Store,
        FetchAdd,
        Swap,
        Cas,
    };

    /** Type-independent state of one in-flight fast-path access. */
    class AccessBase
    {
      protected:
        AccessBase() = default;
        AccessBase(MemSystem &ms, OpKind kind, sim::NodeId node,
                   sim::Addr addr, std::uint64_t arg0, std::uint64_t arg1)
            : ms_(&ms), node_(node), addr_(addr), arg0_(arg0),
              arg1_(arg1), kind_(kind)
        {}

        friend class MemSystem;

        MemSystem *ms_ = nullptr;
        sim::NodeId node_ = 0;
        sim::Addr addr_ = 0;
        std::uint64_t arg0_ = 0; ///< store value / delta / CAS expected
        std::uint64_t arg1_ = 0; ///< CAS desired
        OpKind kind_ = OpKind::Load;
        std::coroutine_handle<> caller_;
        sim::Cycle t0_ = 0;      ///< miss start, for missLatency
        std::uint64_t out_ = 0;  ///< loaded / previous value
        bool flag_ = false;      ///< CAS comparison outcome
    };

    /**
     * Awaitable returned by the word operations.
     *
     * Fast mode carries the operation inline (no coroutine frame);
     * slow mode (fast path disabled) wraps the classic Task coroutine
     * and delegates to it via symmetric transfer, byte-for-byte the
     * old behavior. Must be awaited exactly once, in the statement
     * that created it (the standard `co_await mem.load(...)` shape).
     */
    template <typename T>
    class [[nodiscard]] Access : public AccessBase
    {
      public:
        explicit Access(coro::Task<T> task) : task_(std::move(task)) {}
        Access(MemSystem &ms, OpKind kind, sim::NodeId node,
               sim::Addr addr, std::uint64_t arg0, std::uint64_t arg1)
            : AccessBase(ms, kind, node, addr, arg0, arg1)
        {}

        bool
        await_ready() const noexcept
        {
            return task_.valid() && task_.done();
        }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<> h)
        {
            if (task_.valid()) {
                auto th = task_.raw();
                th.promise().continuation = h;
                return th; // start the task, as co_await task would
            }
            caller_ = h;
            // The L1 round trip: one callback event, scheduled here —
            // the same instant the coroutine's delay awaiter would
            // claim its sequence number.
            ms_->engine_.scheduleIn(ms_->cfg_.l1RtCycles, FireFn{this});
            return std::noop_coroutine();
        }

        T
        await_resume()
        {
            if (task_.valid())
                return task_.raw().promise().result();
            if constexpr (std::is_same_v<T, CasResult>)
                return CasResult{out_, flag_};
            else if constexpr (!std::is_void_v<T>)
                return out_;
        }

      private:
        /** 8-byte POD callback: always in the event slot's SBO. */
        struct FireFn
        {
            AccessBase *op;
            void operator()() const { op->ms_->finishAccess(*op); }
        };

        coro::Task<T> task_;
    };

    /** Coherent 64-bit load. */
    Access<std::uint64_t> load(sim::NodeId node, sim::Addr addr);

    /** Coherent 64-bit store (completes when M state is held). */
    Access<void> store(sim::NodeId node, sim::Addr addr,
                       std::uint64_t value);

    /** Atomic fetch-and-add; returns the previous value. */
    Access<std::uint64_t> fetchAdd(sim::NodeId node, sim::Addr addr,
                                   std::uint64_t delta);

    /** Atomic swap; returns the previous value. */
    Access<std::uint64_t> swap(sim::NodeId node, sim::Addr addr,
                               std::uint64_t value);

    /** Atomic test-and-set (sets to 1); returns the previous value. */
    Access<std::uint64_t> testAndSet(sim::NodeId node, sim::Addr addr);

    /** Atomic compare-and-swap. */
    Access<CasResult> cas(sim::NodeId node, sim::Addr addr,
                          std::uint64_t expected, std::uint64_t desired);

    /**
     * Event-driven spin: loads @p addr, returns once pred(value) holds;
     * between checks the thread sleeps until its cached copy of the
     * line is invalidated (i.e. someone wrote it). Timing-equivalent
     * to a test-and-test-and-set style spin on a cached line.
     */
    coro::Task<std::uint64_t> spinUntil(sim::NodeId node, sim::Addr addr,
                                        std::function<bool(std::uint64_t)>
                                            pred);

    const MemStats &stats() const { return stats_; }
    const MemConfig &config() const { return cfg_; }
    Memory &memory() { return memory_; }

    /** Home L2 bank (== directory) of a line: address-interleaved. */
    sim::NodeId
    homeOf(sim::Addr line) const
    {
        return static_cast<sim::NodeId>((line / cfg_.lineBytes) %
                                        numNodes_);
    }

    /** Observable L1 state, for white-box tests. */
    CohState l1State(sim::NodeId node, sim::Addr addr);

    /**
     * Return to post-construction state, optionally retiming: all
     * caches invalid, directory and spin-watch maps empty, DRAM
     * controllers idle, stats zero. @p cfg may change latencies but
     * must keep the geometry (line/cache sizes, associativities,
     * controller count/depth). In-flight transactions must have been
     * destroyed by the caller (Machine::reset) first.
     */
    void reset(const MemConfig &cfg);

    /**
     * Aggregate directory-pool counters over all banks, for tests and
     * bench counters: with reset-recycling, steady-state sweeps should
     * serve (nearly) every entry from the free lists.
     */
    DirTable::Stats dirPoolStats() const;

    /**
     * Spin-watch pool counters: with reset-recycling, steady-state
     * sweeps should serve (nearly) every watch event from the free
     * list (the DirTable contract, applied to watches_).
     */
    const coro::WatchTable::Stats &
    watchPoolStats() const
    {
        return watches_.stats();
    }

  private:
    struct Bank
    {
        Bank(sim::Engine &eng, const MemConfig &cfg,
             std::uint32_t sharer_words)
            : tags(cfg.l2BankSizeBytes, cfg.l2Assoc, cfg.lineBytes),
              dir(eng, sharer_words)
        {}
        CacheArray tags;
        DirTable dir;
    };

    DirEntry &dirEntry(sim::Addr line);

    /** The classic coroutine bodies behind the Access facade (the
     *  kill-switch / non-fastpath path, byte-identical to pre-fastpath
     *  behavior). */
    coro::Task<std::uint64_t> loadTask(sim::NodeId node, sim::Addr addr);
    coro::Task<void> storeTask(sim::NodeId node, sim::Addr addr,
                               std::uint64_t value);
    coro::Task<std::uint64_t> fetchAddTask(sim::NodeId node,
                                           sim::Addr addr,
                                           std::uint64_t delta);
    coro::Task<std::uint64_t> swapTask(sim::NodeId node, sim::Addr addr,
                                       std::uint64_t value);
    coro::Task<CasResult> casTask(sim::NodeId node, sim::Addr addr,
                                  std::uint64_t expected,
                                  std::uint64_t desired);

    /** Fast-path L1 round-trip completion: commit a hit frameless or
     *  fall into the coroutine transaction inside the same event. */
    void finishAccess(AccessBase &op);

    /** The miss/upgrade continuation of a fast-path access. */
    coro::Task<void> accessMissTask(AccessBase &op);

    bool sharerTest(const DirEntry &e, sim::NodeId n) const;
    void sharerSet(DirEntry &e, sim::NodeId n, bool v);
    NodeVec sharerList(const DirEntry &e, sim::NodeId exclude) const;

    /** Per-(node,line) invalidation events for spinUntil. */
    coro::VersionedEvent &watch(sim::NodeId node, sim::Addr line);

    /** Invalidate node's L1 copy (if any) and wake spinners. */
    void invalidateL1(sim::NodeId node, sim::Addr line);

    /**
     * Miss/upgrade transaction. Acquires the line at @p node with read
     * or write permission, running the full directory protocol; calls
     * @p commit at the coherence-commit instant (mutex still held).
     *
     * @p commit is a non-owning reference: callers pass a lambda that
     * lives in their own coroutine frame for the whole co_await, which
     * avoids a std::function allocation on every L1 miss.
     */
    coro::Task<void> fetchLine(sim::NodeId node, sim::Addr line,
                               bool exclusive,
                               sim::FunctionRef<void()> commit);

    /** One invalidation leg: home -> sharer -> ack to requestor. */
    coro::Task<void> invLeg(sim::NodeId home, sim::NodeId sharer,
                            sim::NodeId requestor, sim::Addr line);

    /** Probe-invalidate the owner; it forwards data/ack to requestor. */
    coro::Task<void> probeLeg(sim::NodeId home, sim::NodeId owner,
                              sim::NodeId requestor, sim::Addr line,
                              bool with_data);

    /**
     * Baseline+ invalidation: tree multicast, then parallel acks.
     * @p targets is borrowed — it lives in the caller's suspended
     * frame for the whole leg (fetchLine awaits all legs).
     */
    coro::Task<void> treeInvLeg(sim::NodeId home, const NodeVec &targets,
                                sim::NodeId requestor, sim::Addr line);

    /** Data leg from the home bank (after optional DRAM fill). */
    coro::Task<void> homeDataLeg(sim::NodeId home, sim::NodeId requestor,
                                 DirEntry &entry, sim::Addr line);

    /** Fixed-latency DRAM access through the line's controller. */
    coro::Task<void> dramAccess(sim::NodeId home, sim::Addr line);

    /** Install @p line at @p node's L1, evicting as needed. */
    void installL1(sim::NodeId node, sim::Addr line, CohState state);

    /** Detached dirty-eviction writeback. */
    coro::Task<void> writebackTask(sim::NodeId node, sim::Addr line);

    /** Detached L2-eviction recall of all cached copies. */
    coro::Task<void> recallTask(sim::NodeId home, sim::Addr line);

    /** Ensure the line is present in L2 tags (may evict + recall). */
    void touchL2(sim::Addr line);

    sim::Engine &engine_;
    noc::Mesh &mesh_;
    Memory &memory_;
    std::uint32_t numNodes_;
    MemConfig cfg_;
    std::vector<CacheArray> l1_;
    std::vector<Bank> banks_;
    std::vector<std::unique_ptr<coro::Resource>> dramCtrls_;
    coro::WatchTable watches_;
    MemStats stats_;
};

} // namespace wisync::mem

#endif // WISYNC_MEM_MEM_SYSTEM_HH
